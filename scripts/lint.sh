#!/usr/bin/env bash
# One-shot static-analysis entry point: everything the `static-analysis`
# CI job runs, in the same order, runnable locally.
#
#   scripts/lint.sh            # ibwan-lint + docs checks (+ clang-tidy
#                              # when installed and a build exists)
#   scripts/lint.sh --fast     # ibwan-lint only
#
# Exit: nonzero iff any enabled check fails. clang-tidy and the
# metrics-docs check degrade to a notice when their prerequisites
# (clang-tidy binary / a configured build) are missing, so the script
# works in minimal containers; CI installs both so nothing is skipped
# there.
set -uo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

BUILD_DIR="${IBWAN_BUILD_DIR:-build}"
fail=0

step() { printf '\n== %s ==\n' "$1"; }

step "ibwan-lint (determinism & invariant rules)"
if ! python3 tools/ibwan_lint \
    --compile-commands "$BUILD_DIR/compile_commands.json" \
    src bench examples tools; then
  fail=1
fi

if [[ "$FAST" == "1" ]]; then
  exit "$fail"
fi

step "clang-tidy (bugprone/performance profile)"
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed — skipped (CI runs it)"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "no $BUILD_DIR/compile_commands.json — configure first (cmake -B $BUILD_DIR -S .)"
else
  # Sources only; headers are covered through HeaderFilterRegex.
  mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp')
  if command -v run-clang-tidy >/dev/null 2>&1; then
    if ! run-clang-tidy -quiet -p "$BUILD_DIR" "${sources[@]}"; then
      fail=1
    fi
  else
    if ! printf '%s\n' "${sources[@]}" | \
        xargs -P "$(nproc)" -n 4 clang-tidy -quiet -p "$BUILD_DIR"; then
      fail=1
    fi
  fi
fi

step "markdown links"
if ! python3 scripts/check_md_links.py; then
  fail=1
fi

step "docs/METRICS.md vs registry"
DUMP="$BUILD_DIR/tools/metrics_schema_dump"
if [[ -x "$DUMP" ]]; then
  if ! python3 scripts/check_metrics_docs.py "$DUMP"; then
    fail=1
  fi
else
  echo "$DUMP not built — skipped (cmake --build $BUILD_DIR --target metrics_schema_dump)"
fi

if [[ "$fail" == "0" ]]; then
  printf '\nlint.sh: all checks passed\n'
else
  printf '\nlint.sh: FAILURES above\n'
fi
exit "$fail"
