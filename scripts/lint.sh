#!/usr/bin/env bash
# One-shot static-analysis entry point: everything the `static-analysis`
# CI job runs, in the same order, runnable locally.
#
#   scripts/lint.sh            # ibwan-lint + clang-tidy + docs links
#   scripts/lint.sh --fast     # ibwan-lint only
#
# Environment:
#   IBWAN_BUILD_DIR   build tree (default: build)
#   CLANG_TIDY        clang-tidy binary to use (default: clang-tidy) —
#                     CI pins a major version here so local and CI runs
#                     agree on the check set
#   IBWAN_LINT_CACHE  per-file result cache path (default:
#                     $IBWAN_BUILD_DIR/.ibwan_lint_cache.json); warm
#                     runs re-lint only changed files
#   IBWAN_LINT_SARIF  when set, also write SARIF 2.1.0 findings there
#
# Exit: nonzero iff any enabled check fails. clang-tidy degrades to a
# notice when the binary or a configured build is missing, so the
# script works in minimal containers; CI installs both so nothing is
# skipped there.
set -uo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

BUILD_DIR="${IBWAN_BUILD_DIR:-build}"
CLANG_TIDY_BIN="${CLANG_TIDY:-clang-tidy}"
LINT_CACHE="${IBWAN_LINT_CACHE:-$BUILD_DIR/.ibwan_lint_cache.json}"
LINT_SCOPE=(src bench examples tools)
fail=0

step() { printf '\n== %s ==\n' "$1"; }

step "ibwan-lint (determinism, concurrency, unit & schema rules)"
mkdir -p "$(dirname "$LINT_CACHE")"
lint_args=(
  --compile-commands "$BUILD_DIR/compile_commands.json"
  --metrics-docs docs/METRICS.md
  --cache "$LINT_CACHE"
)
[[ -n "${IBWAN_LINT_SARIF:-}" ]] && lint_args+=(--sarif "$IBWAN_LINT_SARIF")
if ! python3 tools/ibwan_lint "${lint_args[@]}" "${LINT_SCOPE[@]}"; then
  fail=1
fi

step "ibwan-lint suppression budget (tests/lint/suppressions_baseline.txt)"
if ! python3 tools/ibwan_lint \
    --compile-commands "$BUILD_DIR/compile_commands.json" \
    --metrics-docs docs/METRICS.md \
    --suppressions-baseline tests/lint/suppressions_baseline.txt \
    "${LINT_SCOPE[@]}"; then
  fail=1
fi

if [[ "$FAST" == "1" ]]; then
  exit "$fail"
fi

step "clang-tidy (bugprone/performance profile, $CLANG_TIDY_BIN)"
if ! command -v "$CLANG_TIDY_BIN" >/dev/null 2>&1; then
  echo "$CLANG_TIDY_BIN not installed — skipped (CI runs it)"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "no $BUILD_DIR/compile_commands.json — configure first (cmake -B $BUILD_DIR -S .)"
else
  # Sources only; headers are covered through HeaderFilterRegex.
  mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp')
  if ! printf '%s\n' "${sources[@]}" | \
      xargs -P "$(nproc)" -n 4 "$CLANG_TIDY_BIN" -quiet -p "$BUILD_DIR"; then
    fail=1
  fi
fi

step "markdown links"
if ! python3 scripts/check_md_links.py; then
  fail=1
fi

# docs/METRICS.md consistency is now SCHEMA001's job (the --metrics-docs
# pass above checks both directions, statically), so the old
# metrics_schema_dump based checker is gone.

if [[ "$fail" == "0" ]]; then
  printf '\nlint.sh: all checks passed\n'
else
  printf '\nlint.sh: FAILURES above\n'
fi
exit "$fail"
