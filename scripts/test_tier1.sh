#!/usr/bin/env bash
# Fast tier-1 subset runner: the unit/property suites every change must
# keep green (see README "Test tiers"). Uses the ctest label wired in
# tests/CMakeLists.txt, so a suite added there with LABELS "tier1" is
# picked up automatically.
#
#   scripts/test_tier1.sh [build-dir]      # default: build
#
# Builds only the test binaries (not the benches), then runs
# `ctest -L tier1`. The soak/check/lint labels are deliberately
# excluded here — see scripts/lint.sh and the `flake-guard` CI job for
# those tiers.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S .
fi

# Test binaries all end in _tests; building just those keeps the loop
# fast when bench/ or examples/ are mid-edit.
mapfile -t TARGETS < <(
  cmake --build "${BUILD_DIR}" --target help 2>/dev/null \
    | sed -n 's/^\.\.\. \([A-Za-z0-9_]*_tests\)$/\1/p'
)
if [[ "${#TARGETS[@]}" -gt 0 ]]; then
  cmake --build "${BUILD_DIR}" -j "$(nproc)" --target "${TARGETS[@]}"
else
  cmake --build "${BUILD_DIR}" -j "$(nproc)"
fi

exec ctest --test-dir "${BUILD_DIR}" -L tier1 --output-on-failure -j "$(nproc)"
