#!/usr/bin/env python3
"""Perf-regression gate over the committed benchmark snapshots.

Compares a freshly generated benchmark JSON (BENCH_sim_core.json or
BENCH_pdes.json) against the committed snapshot in bench/snapshots/.
Raw events/sec are not comparable across hosts, so every gated metric is
hardware-normalized:

* sim_core mixes: the gated metric is the engine-vs-baseline speedup
  (both sides of the ratio ran in the same process on the same host).
  A fresh speedup more than --max-regression (default 15%) below the
  committed one fails.
* pdes scenarios: the gated metrics are (a) exactness — the simulated
  result and total event count must be identical between the sequential
  and site-parallel runs (the "exact" flag), and (b) the wall-clock
  speedup of --par-sites 2 over sequential, gated at --speedup-gate on
  at least --min-scenarios scenarios. The speedup gate only arms when
  the fresh run's host has >= --min-hw hardware threads: on a 1-core
  host site-parallel wall-clock gains are impossible by construction,
  and pretending otherwise would gate on noise.

Event counts are deterministic and hardware-independent, so they must
match the committed snapshot exactly in both schemas — a drift means the
simulation's behaviour changed, which is a correctness question that
must not hide inside a perf diff.

Exit 0 = pass, 1 = gate failure, 2 = usage/schema error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_name(entries):
    return {e["name"]: e for e in entries}


def compare_sim_core(committed, fresh, args):
    failures = []
    fresh_mixes = by_name(fresh["mixes"])
    for name, want in by_name(committed["mixes"]).items():
        got = fresh_mixes.get(name)
        if got is None:
            failures.append(f"mix '{name}' missing from fresh run")
            continue
        if got["events"] != want["events"]:
            failures.append(
                f"mix '{name}': event count drifted "
                f"{want['events']} -> {got['events']} (behaviour change, "
                "regenerate the snapshot only with an explanation)")
        floor = want["speedup"] * (1.0 - args.max_regression)
        if got["speedup"] < floor:
            failures.append(
                f"mix '{name}': engine speedup {got['speedup']:.3f} below "
                f"{floor:.3f} (committed {want['speedup']:.3f} "
                f"- {args.max_regression:.0%})")
        else:
            print(f"ok: {name} speedup {got['speedup']:.3f} "
                  f"(committed {want['speedup']:.3f}, floor {floor:.3f})")
    return failures


def compare_pdes(committed, fresh, args):
    failures = []
    fresh_sc = by_name(fresh["scenarios"])
    for name, want in by_name(committed["scenarios"]).items():
        got = fresh_sc.get(name)
        if got is None:
            failures.append(f"scenario '{name}' missing from fresh run")
            continue
        if not got.get("exact", False):
            failures.append(
                f"scenario '{name}': sequential and site-parallel runs "
                "diverged (events or simulated result differ)")
        if got["events"] != want["events"]:
            failures.append(
                f"scenario '{name}': event count drifted "
                f"{want['events']} -> {got['events']}")
    hw = int(fresh.get("hw_concurrency", 1))
    speedups = sorted((s["speedup"] for s in fresh_sc.values()), reverse=True)
    if hw >= args.min_hw:
        passing = [s for s in speedups if s >= args.speedup_gate]
        if len(passing) < args.min_scenarios:
            failures.append(
                f"speedup gate: need >= {args.min_scenarios} scenarios at "
                f">= {args.speedup_gate:.2f}x on a {hw}-thread host, got "
                f"{len(passing)} (speedups: "
                + ", ".join(f"{s:.2f}x" for s in speedups) + ")")
        else:
            print(f"ok: speedup gate met on {hw}-thread host "
                  f"({len(passing)} scenarios >= {args.speedup_gate:.2f}x)")
    else:
        print(f"note: speedup gate disarmed (host has {hw} hardware "
              f"thread(s), gate requires >= {args.min_hw}); exactness and "
              "event counts still enforced")
    return failures


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--committed", required=True,
                   help="committed snapshot JSON (bench/snapshots/...)")
    p.add_argument("--fresh", required=True,
                   help="freshly generated benchmark JSON")
    p.add_argument("--max-regression", type=float, default=0.15,
                   help="allowed fractional speedup regression (sim_core)")
    p.add_argument("--speedup-gate", type=float, default=2.0,
                   help="required site-parallel speedup (pdes)")
    p.add_argument("--min-scenarios", type=int, default=2,
                   help="scenarios that must meet --speedup-gate (pdes)")
    p.add_argument("--min-hw", type=int, default=4,
                   help="hardware threads below which the speedup gate "
                        "disarms (pdes)")
    args = p.parse_args()

    committed = load(args.committed)
    fresh = load(args.fresh)
    kind = committed.get("benchmark")
    if kind != fresh.get("benchmark"):
        print(f"bench_compare: snapshot kinds differ "
              f"({kind} vs {fresh.get('benchmark')})", file=sys.stderr)
        sys.exit(2)
    if kind == "sim_core":
        failures = compare_sim_core(committed, fresh, args)
    elif kind == "pdes":
        failures = compare_pdes(committed, fresh, args)
    else:
        print(f"bench_compare: unknown benchmark kind '{kind}'",
              file=sys.stderr)
        sys.exit(2)

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if failures:
        sys.exit(1)
    print(f"bench_compare: {kind} within gates")


if __name__ == "__main__":
    main()
