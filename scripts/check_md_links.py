#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Usage: check_md_links.py [file.md ...]   (defaults to all tracked *.md)

Only repo-relative targets are checked (external http(s) links are
skipped — CI must not depend on the network). Anchors are stripped.
"""
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def md_files(args: list[str]) -> list[Path]:
    if args:
        return [Path(a) for a in args]
    out = subprocess.run(
        ["git", "ls-files", "*.md"], cwd=REPO, check=True,
        capture_output=True, text=True,
    ).stdout
    return [REPO / line for line in out.splitlines() if line]


def main() -> int:
    broken = []
    for md in md_files(sys.argv[1:]):
        text = md.read_text()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(REPO)}: {target}")
    for b in broken:
        print(f"BROKEN link: {b}")
    if broken:
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
