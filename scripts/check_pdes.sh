#!/usr/bin/env bash
# PDES differential oracle: regenerates every bench CSV twice — once on
# the sequential engine (IBWAN_THREADS=1, the exact path the committed
# CSVs were generated with) and once site-parallel (IBWAN_PAR_SITES=2,
# multi-threaded) — and byte-compares the outputs. Site-parallel
# execution is a pure wall-clock optimization (DESIGN.md §13): any diff
# here is a determinism bug in the conservative-PDES engine, not a
# tolerance question, so the comparison is cmp, not numdiff.
#
#   scripts/check_pdes.sh [build-dir]
#
# Benches that cannot partition (flat loss, back-to-back) fall back to
# the sequential engine internally; they still run here so the fallback
# itself is covered. Any IBWAN_PAR_SITES > 1 requests the full per-site
# partition (one LP per topology site — the only split that preserves
# byte-identity), so the same "2" covers the N-site ext_incast graphs.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${IBWAN_BUILD_DIR:-build}}"
BENCHES=(
  fig3_verbs_latency
  fig4_ud_bandwidth
  fig5_rc_bandwidth
  fig6_ipoib_ud
  fig7_ipoib_rc
  fig8_mpi_bandwidth
  fig9_mpi_threshold
  fig10_message_rate
  fig11_bcast
  fig12_nas
  fig13_nfs
  table1_delay_distance
  ablation_rc_window
  ablation_coalescing
  ablation_adaptive_threshold
  ablation_bcast_algos
  ablation_nfs_chunk
  ablation_tcp_sack
  ext_sdp_sockets
  ext_kv_datacenter
  ext_pfs_striping
  ext_sdr_fec
  ext_incast
  ext_kv_serving
)

for b in "${BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$b" ]]; then
    echo "building $b..."
    cmake --build "$BUILD_DIR" -j --target "$b" >/dev/null
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp/seq" "$tmp/pdes"
fail=0

for b in "${BENCHES[@]}"; do
  (cd "$tmp/seq" && IBWAN_THREADS=1 \
    "$OLDPWD/$BUILD_DIR/bench/$b" >/dev/null)
  (cd "$tmp/pdes" && IBWAN_PAR_SITES=2 IBWAN_THREADS="${IBWAN_THREADS:-4}" \
    "$OLDPWD/$BUILD_DIR/bench/$b" --metrics "$b.metrics.json" >/dev/null)
  # Metrics export must also be byte-stable; regenerate the sequential
  # copy for the same bench and compare both artifact kinds.
  (cd "$tmp/seq" && IBWAN_THREADS=1 \
    "$OLDPWD/$BUILD_DIR/bench/$b" --metrics "$b.metrics.json" >/dev/null)
done

count=0
for f in "$tmp/seq"/*.csv "$tmp/seq"/*.metrics.json; do
  name="$(basename "$f")"
  if ! cmp -s "$f" "$tmp/pdes/$name"; then
    echo "PDES DIVERGENCE: $name differs between sequential and site-parallel"
    diff "$f" "$tmp/pdes/$name" | head -10
    fail=1
  else
    count=$((count + 1))
  fi
done

if [[ "$fail" == "0" ]]; then
  echo "check_pdes: $count artifacts byte-identical (sequential vs site-parallel)"
fi
exit "$fail"
