#!/usr/bin/env bash
# Double-run determinism check: regenerates a representative slice of
# the paper CSVs (fig5 RC bandwidth, fig9 MPI threshold, the RC-window
# ablation, the SDR, N-site incast, and replicated-KV serving
# extensions) twice for each of two seeds and byte-compares the runs.
# Any diff means a nondeterminism bug escaped ibwan-lint — the CSVs the
# repo publishes could silently depend on hash order, addresses, or
# wall clock.
#
#   scripts/check_determinism.sh [build-dir]
#
# The second seed exercises the IBWAN_SEED override (bench::init), so
# the check also proves seed plumbing reaches every Testbed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-${IBWAN_BUILD_DIR:-build}}"
BENCHES=(fig5_rc_bandwidth fig9_mpi_threshold ablation_rc_window ext_sdr_fec
         ext_incast ext_kv_serving)
SEEDS=(42 1337)

for b in "${BENCHES[@]}"; do
  if [[ ! -x "$BUILD_DIR/bench/$b" ]]; then
    echo "building $b..."
    cmake --build "$BUILD_DIR" -j --target "$b" >/dev/null
  fi
done

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
fail=0

for seed in "${SEEDS[@]}"; do
  for run in 1 2; do
    dir="$tmp/seed$seed-run$run"
    mkdir -p "$dir"
    for b in "${BENCHES[@]}"; do
      (cd "$dir" && IBWAN_SEED="$seed" \
        "$OLDPWD/$BUILD_DIR/bench/$b" >/dev/null)
    done
  done
  for csv in "$tmp/seed$seed-run1"/*.csv; do
    name="$(basename "$csv")"
    if ! cmp -s "$csv" "$tmp/seed$seed-run2/$name"; then
      echo "NONDETERMINISM: $name differs between identical runs (seed $seed)"
      diff "$csv" "$tmp/seed$seed-run2/$name" | head -10
      fail=1
    else
      echo "ok: $name identical across runs (seed $seed)"
    fi
  done
done

# Different seeds must not produce identical files by accident either —
# that would mean the seed is not reaching the workload at all. The
# delay-grid sweep shapes are seed-insensitive by design for some
# figures, so only warn.
for csv in "$tmp/seed${SEEDS[0]}-run1"/*.csv; do
  name="$(basename "$csv")"
  if cmp -s "$csv" "$tmp/seed${SEEDS[1]}-run1/$name"; then
    echo "note: $name is seed-invariant (identical for seeds ${SEEDS[0]} and ${SEEDS[1]})"
  fi
done

if [[ "$fail" == "0" ]]; then
  echo "check_determinism: all regenerated CSVs byte-identical across runs"
fi
exit "$fail"
