#!/usr/bin/env python3
"""Verify docs/METRICS.md against the compiled metric registry.

Usage: check_metrics_docs.py <path-to-metrics_schema_dump-binary>

Runs the schema dump tool (which constructs one of every instrumented
layer and prints one `layer/metric kind unit` line per registered
instrument) and two-way diffs it against the inventory tables in
docs/METRICS.md. Rows in the docs use the form:

    | `ib.rc/window_stalls` | counter | count | ... |

Fails if a registered metric has no documentation row, or a documented
row no longer exists in code.
"""
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs" / "METRICS.md"

# | `layer/metric` | kind | unit | ...
ROW_RE = re.compile(
    r"^\|\s*`([a-z0-9_.-]+/[a-z0-9_]+)`\s*\|\s*(counter|gauge|histogram)"
    r"\s*\|\s*(count|packets|bytes|messages|ns)\s*\|"
)


def documented_rows() -> set[str]:
    rows = set()
    for line in DOCS.read_text().splitlines():
        m = ROW_RE.match(line.strip())
        if m:
            rows.add(f"{m.group(1)} {m.group(2)} {m.group(3)}")
    return rows


def registered_rows(tool: str) -> set[str]:
    out = subprocess.run(
        [tool], check=True, capture_output=True, text=True
    ).stdout
    return {line.strip() for line in out.splitlines() if line.strip()}


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    docs = documented_rows()
    code = registered_rows(sys.argv[1])
    missing_docs = sorted(code - docs)
    stale_docs = sorted(docs - code)
    for row in missing_docs:
        print(f"UNDOCUMENTED metric (add to docs/METRICS.md): {row}")
    for row in stale_docs:
        print(f"STALE docs row (metric gone from code): {row}")
    if missing_docs or stale_docs:
        return 1
    print(f"docs/METRICS.md inventory matches the registry "
          f"({len(code)} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
