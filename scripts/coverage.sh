#!/usr/bin/env bash
# Line-coverage build + report (satellite of the validation harness).
# Configures an instrumented Debug build in its own tree, runs the
# tier-1 and check test labels, then reports line coverage for src/.
#
#   scripts/coverage.sh [build-dir]        # default: build-cov
#
# With lcov installed the report is build-dir/coverage.info (+ a
# printed summary); otherwise falls back to raw gcov and aggregates the
# per-file numbers itself. Either way a one-line total
# "TOTAL lines: <hit>/<instrumented> (<pct>%)" lands on stdout and in
# build-dir/coverage_summary.txt — CI uploads that file as an artifact.
# The number is informational, not a gate (see README).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-cov}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Debug -DIBWAN_COVERAGE=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" -L 'tier1|check' --output-on-failure \
  -j "$(nproc)"

SUMMARY="${BUILD_DIR}/coverage_summary.txt"

if command -v lcov > /dev/null; then
  lcov --capture --directory "${BUILD_DIR}" \
    --output-file "${BUILD_DIR}/coverage.info" \
    --rc branch_coverage=0 --ignore-errors mismatch,inconsistent \
    > /dev/null
  # Keep only the simulator sources; system and test code would inflate
  # the figure.
  lcov --extract "${BUILD_DIR}/coverage.info" "*/src/*" \
    --output-file "${BUILD_DIR}/coverage.info" \
    --ignore-errors mismatch,inconsistent > /dev/null
  lcov --summary "${BUILD_DIR}/coverage.info" 2>&1 | tee "${SUMMARY}"
  lcov --list "${BUILD_DIR}/coverage.info" | tail -n +3 >> "${SUMMARY}"
else
  echo "lcov not found; aggregating raw gcov output" >&2
  python3 - "${BUILD_DIR}" << 'PYEOF' | tee "${SUMMARY}"
import json, pathlib, subprocess, sys

build = pathlib.Path(sys.argv[1])
per_file = {}
for gcda in sorted(build.rglob("*.gcda")):
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", str(gcda.resolve())],
        capture_output=True, text=True)
    for line in out.stdout.splitlines():
        try:
            doc = json.loads(line)
        except json.JSONDecodeError:
            continue
        for f in doc.get("files", []):
            name = f["file"]
            if "/src/" not in "/" + name or "/tests/" in name:
                continue
            name = name[name.index("src/"):] if "src/" in name else name
            # Merge by max per line number: the same header is compiled
            # into many objects.
            seen = per_file.setdefault(name, {})
            for ln in f.get("lines", []):
                n = ln["line_number"]
                seen[n] = max(seen.get(n, 0), ln["count"])

tot_hit = tot_all = 0
for name in sorted(per_file):
    seen = per_file[name]
    hit = sum(1 for c in seen.values() if c > 0)
    tot_hit += hit
    tot_all += len(seen)
    print(f"{name:56s} {hit:6d}/{len(seen):<6d}")
pct = 100.0 * tot_hit / tot_all if tot_all else 0.0
print(f"TOTAL lines: {tot_hit}/{tot_all} ({pct:.1f}%)")
PYEOF
fi
