// Prints the complete metric namespace, one line per distinct
// `<layer>/<metric>` with its kind and unit:
//
//   ib.rc/window_stalls counter count
//
// Registration is eager (layer constructors register their instruments
// whether or not metrics are enabled), so merely constructing one of
// every layer object enumerates the schema. The docs/METRICS.md
// consistency check itself is now static: ibwan-lint's SCHEMA001 rule
// resolves every registration site and diffs both directions against
// the inventory tables without running anything. This dump remains as
// a runtime cross-check / debugging aid for eyeballing the live
// namespace.
#include <cstdio>
#include <set>
#include <string>

#include "core/testbed.hpp"
#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "mpi/mpi.hpp"
#include "nfs/nfs.hpp"
#include "rpc/rpc.hpp"
#include "sdr/sdr.hpp"
#include "sim/metrics.hpp"
#include "tcp/tcp.hpp"

using namespace ibwan;

int main() {
  // Two hosts per cluster: the first pair carries an MPI job (HCA, RC
  // QPs, MPI layer), the second pair the socket/RPC stacks.
  core::Testbed tb(2, 0);
  sim::Simulator& s = tb.sim();

  // MPI over IB registers ib.hca, ib.rc and mpi on its two ranks.
  mpi::Job job(tb.fabric(), mpi::Job::split_placement(tb.fabric(), 1));

  // A UD QP (fig4's transport) on a spare node.
  ib::Hca hca_a(tb.fabric().node(tb.node_a(1)), {});
  ib::Cq scq(s), rcq(s);
  hca_a.create_ud_qp(scq, rcq);

  // TCP over IPoIB plus both RPC transports and the NFS server.
  ib::Hca hca_b(tb.fabric().node(tb.node_b(1)), {});
  ipoib::IpoibDevice dev(hca_b, {});
  tcp::TcpStack stack(dev);
  rpc::TcpRpcServer tcp_server(stack, 2049);
  rpc::TcpRpcClient tcp_client(stack, tb.node_b(1), 2049);
  rpc::RdmaRpcServer rdma_server(hca_a);
  rpc::RdmaRpcClient rdma_client(hca_b, rdma_server);
  nfs::NfsServer nfs_server(s, {});

  // The software-defined reliability transport (sdr layer).
  sdr::SdrEndpoint sdr_ep(hca_a, {});

  // Strip the instance prefix: "<instance>/<layer>/<metric>" lines
  // collapse to one row per layer-level metric.
  std::set<std::string> rows;
  for (const auto& info : s.metrics().inventory()) {
    const std::size_t slash = info.path.find('/');
    const std::string layer_metric =
        slash == std::string::npos ? info.path : info.path.substr(slash + 1);
    rows.insert(layer_metric + " " +
                sim::metric_kind_name(info.kind) + " " +
                sim::metric_unit_name(info.unit));
  }
  for (const std::string& row : rows) std::printf("%s\n", row.c_str());
  return 0;
}
