"""ibwan-lint: determinism & invariant static analysis for the IB-WAN sim.

Every figure this repository reproduces depends on byte-identical
deterministic replay.  This package makes the determinism contract
machine-checked instead of review-checked: a small rule engine walks a
token-level model of each translation unit (plus an optional libclang
AST backend when `clang.cindex` is importable) and reports violations
of the rules catalogued in DESIGN.md §10.

Since v2 the engine is two-pass and flow-aware: pass 1 distills every
file into a `FileSummary` (function spans, a lightweight call graph,
declared types for site-local resources, `_ns`/`_bytes`/`_per_s` unit
inference, metric/trace registrations) and merges them into a
`ProjectIndex`; pass 2 runs the rules with that index available.  A
content-hash cache (`--cache`) lets CI re-lint only changed files, and
`--sarif` emits SARIF 2.1.0 for code scanning.

Rules shipped here:

  DET001    banned nondeterminism APIs (rand/time/clocks/getenv/...)
  DET002    effectful iteration over unordered containers
  DET003    ordering keyed on pointer values
  DET004    RNG draws that bypass the seeded Simulator streams
  DET005    direct cross-site scheduling (selector().schedule())
  CONC001   call chains from a site selector into another LP's queue
  CONC002   site-local resources captured into Channel::push callbacks
  CONC003   mutable static state in library code (races --par-sites)
  UNIT001   arithmetic mixing inferred time/byte/rate units
  UNIT002   raw numeric literals in schedule() delay positions
  SCHEMA001 metric/trace names vs docs/METRICS.md, both directions
  SCHEMA002 metric/trace naming grammar
  INV001    direct writes to `// lint:conserved` accounting counters
  HDR001    header hygiene (guards, no <iostream> in headers)
  LNT001    suppressions must carry a reason

Suppression: append `// NOLINT-IBWAN(RULE): reason` to the offending
line, or place it alone on the line above.  `--suppressions` audits
them; `--suppressions-baseline` enforces the committed budget.
"""

__version__ = "2.0.0"
