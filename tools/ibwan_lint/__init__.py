"""ibwan-lint: determinism & invariant static analysis for the IB-WAN sim.

Every figure this repository reproduces depends on byte-identical
deterministic replay.  This package makes the determinism contract
machine-checked instead of review-checked: a small rule engine walks a
token-level model of each translation unit (plus an optional libclang
AST backend when `clang.cindex` is importable) and reports violations
of the rules catalogued in DESIGN.md §10.

Rules shipped here:

  DET001  banned nondeterminism APIs (rand/time/clocks/getenv/...)
  DET002  effectful iteration over unordered containers
  DET003  ordering keyed on pointer values
  DET004  RNG draws that bypass the seeded Simulator streams
  INV001  direct writes to `// lint:conserved` accounting counters
  HDR001  header hygiene (guards, no <iostream> in headers)
  LNT001  suppressions must carry a reason

Suppression: append `// NOLINT-IBWAN(RULE): reason` to the offending
line, or place it alone on the line above.
"""

__version__ = "1.0.0"
