"""Pass 1: the project-wide symbol index.

Every file is distilled into a `FileSummary` — a small, JSON-serializable
bag of cross-TU facts (function definitions and their callees, declared
variables with types, unit-suffix inference, metric/trace registrations,
conserved-counter and unordered-container declarations, suppressions).
`ProjectIndex.build` merges the summaries into the views pass-2 rules
consume:

  * a name-based call graph and its transitive closure onto the
    event-queue mutators (`schedule`/`schedule_at`) — CONC001;
  * a variable/member → declared-type map for the site-local resource
    watchlist (Simulator, MetricsRegistry, FlightRecorder, Rng,
    Channel) — CONC002;
  * unit inference from declaration suffixes (`_ns`, `_bytes`,
    `_per_s`, ...) — UNIT001/UNIT002;
  * the set of metric `layer/leaf` registrations and flight-recorder
    trace kinds, matched two-way against docs/METRICS.md — SCHEMA001/2;
  * the conserved-counter and unordered-container maps the v1 rules
    already used.

Because a `FileSummary` round-trips through JSON, the engine's
content-hash cache can rebuild the whole index without re-lexing
unchanged files; `ProjectIndex.digest()` covers exactly the facts rules
consume, so an edit that leaves the cross-file surface unchanged
invalidates only the edited file's pass-2 results.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .lexer import IDENT, PUNCT, STRING, Token
from .model import SourceFile

SUMMARY_VERSION = 2

# ---------------------------------------------------------------------------
# Unit-suffix inference.
# ---------------------------------------------------------------------------

# Ordered: longest suffix first so `_per_s` wins over a future `_s`.
UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_per_s", "per_s"),
    ("_bytes", "bytes"),
    ("_mbps", "per_s"),
    ("_bps", "per_s"),
    ("_ns", "ns"),
    ("_us", "us"),
    ("_ms", "ms"),
)

UNIT_HUMAN = {
    "ns": "time [ns]",
    "us": "time [us]",
    "ms": "time [ms]",
    "bytes": "bytes",
    "per_s": "rate [1/s]",
}


def unit_of(name: str) -> Optional[str]:
    """Dimension inferred from an identifier's suffix, or None.
    Trailing underscores (members) are ignored: `busy_ns_` is ns."""
    base = name.rstrip("_")
    for suffix, unit in UNIT_SUFFIXES:
        if base.endswith(suffix) and len(base) > len(suffix):
            return unit
    return None


# ---------------------------------------------------------------------------
# docs/METRICS.md parsing (the SCHEMA001 ground truth).
# ---------------------------------------------------------------------------

# | `net.link/pkts_sent` | counter | packets | ...
METRIC_ROW_RE = re.compile(
    r"^\|\s*`([A-Za-z0-9_.-]+/[A-Za-z0-9_-]+)`\s*\|\s*(\w+)\s*\|\s*(\w+)\s*\|")
# | `pkt-send` | net | ...
TRACE_ROW_RE = re.compile(r"^\|\s*`([A-Za-z0-9?-]+)`\s*\|")

METRIC_KINDS = {"counter", "gauge", "histogram"}
METRIC_UNITS = {"count", "packets", "bytes", "messages", "ns"}

LAYER_GRAMMAR = re.compile(r"^[a-z0-9]+(\.[a-z0-9_]+)*$")
LEAF_GRAMMAR = re.compile(r"^[a-z0-9_]+$")
TRACE_GRAMMAR = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")


@dataclass
class MetricsDocs:
    """Rows parsed out of docs/METRICS.md: the documented metric
    inventory and flight-recorder kinds, with line numbers so the
    docs-side SCHEMA001 findings point at the stale row."""

    path: str = ""
    # "layer/leaf" -> (kind, unit, line)
    metrics: Dict[str, Tuple[str, str, int]] = field(default_factory=dict)
    # trace kind -> line
    traces: Dict[str, int] = field(default_factory=dict)

    @staticmethod
    def load(path: str) -> Optional["MetricsDocs"]:
        if not path or not os.path.isfile(path):
            return None
        docs = MetricsDocs(path=path)
        section = ""
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, start=1):
                s = raw.strip()
                if s.startswith("## "):
                    section = s[3:].strip().lower()
                    continue
                m = METRIC_ROW_RE.match(s)
                if m and m.group(2) in METRIC_KINDS and \
                        m.group(3) in METRIC_UNITS:
                    docs.metrics[m.group(1)] = (m.group(2), m.group(3),
                                                lineno)
                    continue
                if "flight recorder" in section:
                    t = TRACE_ROW_RE.match(s)
                    if t and "/" not in t.group(1) and \
                            t.group(1) not in ("kind",):
                        docs.traces.setdefault(t.group(1), lineno)
        return docs


# ---------------------------------------------------------------------------
# Per-file summaries.
# ---------------------------------------------------------------------------

_MUNIT_MAP = {
    "kCount": "count",
    "kPackets": "packets",
    "kBytes": "bytes",
    "kMessages": "messages",
    "kNanoseconds": "ns",
}

# Types whose instances are owned by exactly one site under --par-sites.
RESOURCE_TYPES = ("Simulator", "MetricsRegistry", "FlightRecorder", "Rng",
                  "Channel")

_CALL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "catch", "assert", "defined",
    "co_await", "co_return", "co_yield", "throw", "new", "delete",
}

_REGISTER_METHODS = {"counter", "gauge", "histogram"}


@dataclass
class FileSummary:
    """Everything pass 2 may need from a file *other than* its own
    token stream.  Must stay JSON-round-trippable (see to_dict)."""

    path: str
    version: int = SUMMARY_VERSION
    # [{name, qual, line, params: [type strings], calls: [simple names]}]
    functions: List[dict] = field(default_factory=list)
    # var/member name -> (watchlist type, line)
    resource_vars: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    # declared name -> unit, from declaration-site suffix inference
    var_units: Dict[str, str] = field(default_factory=dict)
    # [(name, line)]
    conserved: List[Tuple[str, int]] = field(default_factory=list)
    unordered: List[Tuple[str, int]] = field(default_factory=list)
    # [{layer|None, leaf|None, kind, unit, line}]
    metrics: List[dict] = field(default_factory=list)
    # [(trace name, line)]
    traces: List[Tuple[str, int]] = field(default_factory=list)
    # [(rule, line, reason)]
    suppressions: List[Tuple[str, int, str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "version": self.version,
            "functions": self.functions,
            "resource_vars": {k: list(v) for k, v in
                              self.resource_vars.items()},
            "var_units": self.var_units,
            "conserved": [list(t) for t in self.conserved],
            "unordered": [list(t) for t in self.unordered],
            "metrics": self.metrics,
            "traces": [list(t) for t in self.traces],
            "suppressions": [list(t) for t in self.suppressions],
        }

    @staticmethod
    def from_dict(d: dict) -> "FileSummary":
        return FileSummary(
            path=d["path"],
            version=d.get("version", 0),
            functions=d.get("functions", []),
            resource_vars={k: (v[0], v[1]) for k, v in
                           d.get("resource_vars", {}).items()},
            var_units=d.get("var_units", {}),
            conserved=[(t[0], t[1]) for t in d.get("conserved", [])],
            unordered=[(t[0], t[1]) for t in d.get("unordered", [])],
            metrics=d.get("metrics", []),
            traces=[(t[0], t[1]) for t in d.get("traces", [])],
            suppressions=[(t[0], t[1], t[2]) for t in
                          d.get("suppressions", [])],
        )


def _match_fwd(toks: List[Token], i: int, open_: str, close: str) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == open_:
                depth += 1
            elif t.text == close:
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _split_args(toks: List[Token], lparen: int) -> Tuple[List[List[Token]],
                                                         int]:
    """Splits the argument list of the call whose '(' sits at `lparen`
    into top-level comma-separated token groups; returns (args, rparen)."""
    close = _match_fwd(toks, lparen, "(", ")")
    args: List[List[Token]] = [[]]
    depth = 0
    for k in range(lparen + 1, close):
        t = toks[k]
        if t.kind == PUNCT:
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == "," and depth == 0:
                args.append([])
                continue
        args[-1].append(t)
    if args == [[]]:
        args = []
    return args, close


def _collect_calls(toks: List[Token], start: int, end: int) -> List[str]:
    out: List[str] = []
    seen: Set[str] = set()
    for k in range(start, min(end + 1, len(toks))):
        t = toks[k]
        if t.kind != IDENT or t.text in _CALL_KEYWORDS:
            continue
        nxt = toks[k + 1] if k + 1 < len(toks) else None
        if nxt is not None and nxt.kind == PUNCT and nxt.text == "(" and \
                t.text not in seen:
            seen.add(t.text)
            out.append(t.text)
    return out


def _param_types(toks: List[Token], name_idx: int) -> List[str]:
    """Joined type text of each parameter of the function whose name
    token is at name_idx (its '(' follows immediately)."""
    lparen = name_idx + 1
    if lparen >= len(toks) or toks[lparen].text != "(":
        return []
    args, _ = _split_args(toks, lparen)
    out = []
    for arg in args:
        # Drop the trailing parameter name and default value.
        cut = len(arg)
        for k, t in enumerate(arg):
            if t.kind == PUNCT and t.text == "=":
                cut = k
                break
        core = arg[:cut]
        if core and core[-1].kind == IDENT:
            core = core[:-1]  # the parameter name
        out.append(" ".join(t.text for t in core))
    return out


def _scan_declarations(sf: SourceFile, summary: FileSummary) -> None:
    """Records watchlist-typed declarations (`Simulator& sim_;`,
    `MetricsRegistry& m = ...`) and unit-suffixed declared names."""
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        if t.text in RESOURCE_TYPES:
            # TYPE [:: nested]* [&*]* NAME  (terminated by ; = , ) { )
            j = i + 1
            while j < n and toks[j].kind == PUNCT and toks[j].text == "::":
                j += 2  # qualified mention: Type::Sub — skip the pair
            while j < n and toks[j].kind == PUNCT and \
                    toks[j].text in ("&", "*", "const"):
                j += 1
            if j < n and toks[j].kind == IDENT and toks[j].text != "const":
                k = j + 1
                if k < n and toks[k].kind == PUNCT and \
                        toks[k].text in (";", "=", ",", ")", "{"):
                    summary.resource_vars.setdefault(
                        toks[j].text, (t.text, toks[j].line))
        u = unit_of(t.text)
        if u is not None:
            nxt = toks[i + 1] if i + 1 < n else None
            prv = toks[i - 1] if i > 0 else None
            # Declaration shape: preceded by a type-ish ident or * & ,
            # and followed by ; = { , )
            if nxt is not None and nxt.kind == PUNCT and \
                    nxt.text in (";", "=", "{", ",", ")") and \
                    prv is not None and \
                    (prv.kind == IDENT or
                     (prv.kind == PUNCT and prv.text in ("&", "*", ","))):
                summary.var_units.setdefault(t.text, u)


def _resolve_scope_layer(sf: SourceFile, call_idx: int,
                         arg0: List[Token]) -> Optional[str]:
    """Layer of a metric registration: string literals in the scope
    expression (or in the initializer of the scope variable, searched
    backwards from the call), joined; the layer is the segment after
    the last '/'."""
    literals = [t for t in arg0 if t.kind == STRING]
    if not literals and len(arg0) == 1 and arg0[0].kind == IDENT:
        name = arg0[0].text
        toks = sf.tokens
        best: Optional[List[Token]] = None
        k = call_idx - 1
        while k > 0:
            t = toks[k]
            if t.kind == IDENT and t.text == name and k + 1 < len(toks) and \
                    toks[k + 1].kind == PUNCT and toks[k + 1].text == "=":
                init: List[Token] = []
                j = k + 2
                while j < len(toks) and not (toks[j].kind == PUNCT and
                                             toks[j].text == ";"):
                    init.append(toks[j])
                    j += 1
                best = init
                break
            k -= 1
        if best is not None:
            literals = [t for t in best if t.kind == STRING]
    if not literals:
        return None
    joined = "".join(t.text.strip('"') for t in literals)
    if "/" not in joined:
        return None
    return joined.rsplit("/", 1)[1]


def _scan_metrics(sf: SourceFile, summary: FileSummary) -> None:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _REGISTER_METHODS:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        prv = toks[i - 1] if i > 0 else None
        if prv is None or prv.kind != PUNCT or prv.text not in (".", "->"):
            continue  # not a registry method call
        args, _ = _split_args(toks, i + 1)
        if len(args) < 2 or len(args[1]) != 1 or args[1][0].kind != STRING:
            continue  # not the (scope, "leaf"[, unit]) shape
        leaf = args[1][0].text.strip('"')
        unit = "count"
        if len(args) >= 3:
            for at in args[2]:
                if at.kind == IDENT and at.text in _MUNIT_MAP:
                    unit = _MUNIT_MAP[at.text]
        layer = _resolve_scope_layer(sf, i, args[0])
        summary.metrics.append({
            "layer": layer,
            "leaf": leaf,
            "kind": t.text,
            "unit": unit,
            "line": t.line,
        })


def _scan_traces(sf: SourceFile, summary: FileSummary) -> None:
    """Trace kinds come from the one `trace_kind_name` switch:
    `case TraceKind::kX: return "spelling";`."""
    fn = next((f for f in sf.functions if f.name == "trace_kind_name"), None)
    if fn is None:
        return
    toks = sf.tokens
    k = fn.body_start
    while k < fn.body_end:
        t = toks[k]
        if t.kind == IDENT and t.text == "case":
            # scan forward to ':' then expect `return "..."`
            j = k + 1
            while j < fn.body_end and not (toks[j].kind == PUNCT and
                                           toks[j].text == ":"):
                j += 1
            if j + 2 < fn.body_end and toks[j + 1].kind == IDENT and \
                    toks[j + 1].text == "return" and \
                    toks[j + 2].kind == STRING:
                summary.traces.append(
                    (toks[j + 2].text.strip('"'), toks[j + 2].line))
            k = j
        k += 1


def _scan_conserved(sf: SourceFile, summary: FileSummary) -> None:
    for c in sf.comments:
        if "lint:conserved" not in c.text:
            continue
        line = c.line if not c.own_line else c.line + 1
        idx = sf.first_token_on_line(line)
        if idx is None:
            continue
        name = None
        toks = sf.tokens
        i = idx
        while i < len(toks) and toks[i].line == line:
            t = toks[i]
            if t.kind == PUNCT and t.text in (";", "=", "{"):
                break
            if t.kind == IDENT:
                name = t.text
            i += 1
        if name:
            summary.conserved.append((name, line))


_UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"}


def _scan_unordered(sf: SourceFile, summary: FileSummary) -> None:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _UNORDERED:
            continue
        j = i + 1
        if j >= n or not (toks[j].kind == PUNCT and toks[j].text == "<"):
            continue
        depth = 0
        while j < n:
            tj = toks[j]
            if tj.kind == PUNCT:
                if tj.text == "<":
                    depth += 1
                elif tj.text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif tj.text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                elif tj.text in (";", "{", "}"):
                    break
            j += 1
        k = j + 1
        while k < n and toks[k].kind == PUNCT and toks[k].text in ("&", "*"):
            k += 1
        if k < n and toks[k].kind == IDENT:
            summary.unordered.append((toks[k].text, toks[k].line))


def build_summary(sf: SourceFile) -> FileSummary:
    summary = FileSummary(path=sf.path)
    toks = sf.tokens
    for fn in sf.functions:
        summary.functions.append({
            "name": fn.name,
            "qual": fn.qual,
            "line": fn.line,
            "params": _param_types(toks, fn.name_idx),
            "calls": _collect_calls(toks, fn.body_start, fn.body_end),
        })
    _scan_declarations(sf, summary)
    _scan_metrics(sf, summary)
    _scan_traces(sf, summary)
    _scan_conserved(sf, summary)
    _scan_unordered(sf, summary)
    for s in sf.suppressions:
        summary.suppressions.append((s.rule, s.line, s.reason))
    return summary


# ---------------------------------------------------------------------------
# The merged project index.
# ---------------------------------------------------------------------------

SCHEDULE_MUTATORS = ("schedule", "schedule_at")


@dataclass
class ProjectIndex:
    """Merged pass-1 facts, plus the docs ground truth.  `digest()`
    covers exactly what rules read cross-file, so the engine can decide
    whether cached pass-2 results are still valid."""

    # v1-compatible views --------------------------------------------------
    unordered_names: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    conserved: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    # v2 views -------------------------------------------------------------
    # simple function name -> sorted callee names (unioned over overloads)
    call_graph: Dict[str, List[str]] = field(default_factory=dict)
    # functions that (transitively) call schedule/schedule_at
    reaches_schedule: Set[str] = field(default_factory=set)
    # functions that take a SiteEngine — engine-aware runners, exempt
    # from CONC001's argument form
    engine_aware: Set[str] = field(default_factory=set)
    # var/member name -> (watchlist type, path, line)
    resource_vars: Dict[str, Tuple[str, str, int]] = field(
        default_factory=dict)
    # declared name -> inferred unit
    var_units: Dict[str, str] = field(default_factory=dict)
    # "layer/leaf" -> (kind, unit, path, line); unresolved layers under
    # key "?/<leaf>"
    metric_regs: Dict[str, Tuple[str, str, str, int]] = field(
        default_factory=dict)
    # trace kind -> (path, line)
    trace_kinds: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    docs: Optional[MetricsDocs] = None
    # every suppression in the project: (path, line, rule, reason)
    all_suppressions: List[Tuple[str, int, str, str]] = field(
        default_factory=list)

    @staticmethod
    def build(summaries: Iterable[FileSummary],
              docs: Optional[MetricsDocs] = None) -> "ProjectIndex":
        idx = ProjectIndex(docs=docs)
        graph: Dict[str, Set[str]] = {}
        for s in summaries:
            for name, line in s.unordered:
                idx.unordered_names.setdefault(name, (s.path, line))
            for name, line in s.conserved:
                idx.conserved.setdefault(name, (s.path, line))
            for f in s.functions:
                graph.setdefault(f["name"], set()).update(f["calls"])
                if any("SiteEngine" in p for p in f.get("params", [])):
                    idx.engine_aware.add(f["name"])
            for name, (ty, line) in s.resource_vars.items():
                idx.resource_vars.setdefault(name, (ty, s.path, line))
            for name, u in s.var_units.items():
                idx.var_units.setdefault(name, u)
            for m in s.metrics:
                layer = m["layer"] if m["layer"] else "?"
                idx.metric_regs.setdefault(
                    f"{layer}/{m['leaf']}",
                    (m["kind"], m["unit"], s.path, m["line"]))
            for name, line in s.traces:
                idx.trace_kinds.setdefault(name, (s.path, line))
            for rule, line, reason in s.suppressions:
                idx.all_suppressions.append((s.path, line, rule, reason))
        idx.call_graph = {k: sorted(v) for k, v in graph.items()}
        idx.reaches_schedule = _closure_onto(graph, set(SCHEDULE_MUTATORS))
        idx.all_suppressions.sort()
        return idx

    def digest(self) -> str:
        """Hash of every cross-file fact pass 2 consumes."""
        doc = {
            "unordered": sorted(self.unordered_names),
            "conserved": {k: os.path.basename(v[0])
                          for k, v in sorted(self.conserved.items())},
            "reaches_schedule": sorted(self.reaches_schedule),
            "engine_aware": sorted(self.engine_aware),
            "resource_vars": {k: v[0]
                              for k, v in sorted(self.resource_vars.items())},
            "var_units": dict(sorted(self.var_units.items())),
            "metric_regs": {k: v[:2]
                            for k, v in sorted(self.metric_regs.items())},
            "trace_kinds": sorted(self.trace_kinds),
            "docs_metrics": ({k: v[:2] for k, v in
                              sorted(self.docs.metrics.items())}
                             if self.docs else None),
            "docs_traces": sorted(self.docs.traces) if self.docs else None,
        }
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()


def _closure_onto(graph: Dict[str, Set[str]],
                  targets: Set[str]) -> Set[str]:
    """Functions from which some target is reachable along call edges.
    The targets themselves are not included unless they call another
    target."""
    # Reverse edges: callee -> callers.
    rev: Dict[str, Set[str]] = {}
    for caller, callees in graph.items():
        for c in callees:
            rev.setdefault(c, set()).add(caller)
    out: Set[str] = set()
    frontier = list(targets)
    while frontier:
        cur = frontier.pop()
        for caller in rev.get(cur, ()):
            if caller not in out:
                out.add(caller)
                frontier.append(caller)
    return out
