"""A small C++ tokenizer sufficient for rule matching.

Not a full lexer: it splits source into identifier / number / string /
char / punctuation tokens with line:col positions, strips comments and
preprocessor continuations, and records every comment separately so
the engine can find `NOLINT-IBWAN(...)` suppressions and fixtures can
carry `EXPECT-IBWAN(...)` markers.  Raw strings, line continuations and
digraphs are handled; trigraphs are not (C++17 removed them).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

# Longest-match punctuation; three-char operators first.
_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "++", "--",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "::")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int  # 1-based
    col: int   # 1-based

    def __repr__(self) -> str:  # compact for test failures
        return f"{self.kind}({self.text!r}@{self.line}:{self.col})"


@dataclass(frozen=True)
class Comment:
    text: str  # comment body, without // or /* */
    line: int  # line the comment starts on
    own_line: bool  # nothing but whitespace before it on its line


class LexError(Exception):
    pass


def lex(source: str):
    """Returns (tokens, comments) for a C++ source string."""
    tokens: List[Token] = []
    comments: List[Comment] = []
    i = 0
    line = 1
    col = 1
    n = len(source)
    line_had_token = False

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        if c == "\n":
            line_had_token = False
            advance(1)
            continue
        if c in " \t\r\f\v":
            advance(1)
            continue
        if c == "\\" and i + 1 < n and source[i + 1] == "\n":
            advance(2)  # line continuation
            continue
        # Comments.
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            start_line = line
            j = i + 2
            while j < n and source[j] != "\n":
                # Line continuations extend // comments.
                if source[j] == "\\" and j + 1 < n and source[j + 1] == "\n":
                    j += 2
                    continue
                j += 1
            comments.append(Comment(source[i + 2:j].strip(), start_line,
                                    not line_had_token))
            advance(j - i)
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            start_line = line
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"unterminated block comment at line {line}")
            comments.append(Comment(source[i + 2:end].strip(), start_line,
                                    not line_had_token))
            advance(end + 2 - i)
            continue
        # Raw strings: R"delim( ... )delim"
        m = None
        if c in "RuUL":
            m = re.match(r'(?:u8|[uUL])?R"([^()\\ \t\n]{0,16})\(', source[i:])
        if m:
            closer = ")" + m.group(1) + '"'
            end = source.find(closer, i + m.end())
            if end < 0:
                raise LexError(f"unterminated raw string at line {line}")
            end += len(closer)
            tokens.append(Token(STRING, source[i:end], line, col))
            line_had_token = True
            advance(end - i)
            continue
        # Ordinary strings / chars (with optional encoding prefix).
        if c in "\"'" or (c in "uUL" and i + 1 < n and
                          source[i + 1] in "\"'") or \
           (source[i:i + 3] == 'u8"' or source[i:i + 3] == "u8'"):
            j = i
            while j < n and source[j] not in "\"'":
                j += 1
            quote = source[j]
            k = j + 1
            while k < n:
                if source[k] == "\\":
                    k += 2
                    continue
                if source[k] == quote:
                    break
                if source[k] == "\n":
                    raise LexError(f"unterminated literal at line {line}")
                k += 1
            if k >= n:
                raise LexError(f"unterminated literal at line {line}")
            kind = STRING if quote == '"' else CHAR
            tokens.append(Token(kind, source[i:k + 1], line, col))
            line_had_token = True
            advance(k + 1 - i)
            continue
        # Numbers (good enough: leading digit, or . followed by digit).
        if c in _DIGITS or (c == "." and i + 1 < n and
                            source[i + 1] in _DIGITS):
            j = i + 1
            while j < n and (source[j] in _IDENT_CONT or source[j] == "." or
                             (source[j] in "+-" and
                              source[j - 1] in "eEpP") or
                             (source[j] == "'" and j + 1 < n and
                              source[j + 1] in _IDENT_CONT)):
                j += 1  # C++14 digit separators: 1'000'000
            tokens.append(Token(NUMBER, source[i:j], line, col))
            line_had_token = True
            advance(j - i)
            continue
        # Identifiers / keywords.
        if c in _IDENT_START:
            j = i + 1
            while j < n and source[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token(IDENT, source[i:j], line, col))
            line_had_token = True
            advance(j - i)
            continue
        # Punctuation, longest match first.
        for p in _PUNCT3:
            if source.startswith(p, i):
                tokens.append(Token(PUNCT, p, line, col))
                line_had_token = True
                advance(len(p))
                break
        else:
            for p in _PUNCT2:
                if source.startswith(p, i):
                    tokens.append(Token(PUNCT, p, line, col))
                    line_had_token = True
                    advance(len(p))
                    break
            else:
                tokens.append(Token(PUNCT, c, line, col))
                line_had_token = True
                advance(1)
    return tokens, comments
