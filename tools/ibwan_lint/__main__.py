"""CLI: python3 tools/ibwan_lint [options] <paths...>

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ in (None, ""):  # `python3 tools/ibwan_lint` (path exec)
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    __package__ = "ibwan_lint"

from . import __version__, clang_backend, engine  # noqa: E402
from .rules import RULES, RULE_DOCS  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="ibwan-lint",
        description="Determinism & invariant static analysis for the "
                    "IB-WAN simulator (see DESIGN.md §10).")
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories to scan")
    ap.add_argument("-p", "--compile-commands", metavar="JSON",
                    default="build/compile_commands.json",
                    help="compile_commands.json (default: "
                         "build/compile_commands.json; used for file "
                         "discovery and by the libclang backend when "
                         "available)")
    ap.add_argument("--rules", metavar="IDS",
                    help="comma-separated rule ids (default: all)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable ibwan.lint.v1 output")
    ap.add_argument("--show-suppressed", action="store_true",
                    help="also print suppressed findings with reasons")
    ap.add_argument("--no-clang", action="store_true",
                    help="skip the libclang backend even if available")
    ap.add_argument("--version", action="version", version=__version__)
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid in sorted(RULES):
            print(f"{rid}  {RULE_DOCS[rid]}")
        return 0
    if not args.paths:
        ap.error("no paths given (try: src bench examples tools)")

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in RULES]
        if unknown:
            print(f"ibwan-lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    try:
        paths = engine.discover(args.paths, args.compile_commands)
    except FileNotFoundError as e:
        print(f"ibwan-lint: no such path: {e}", file=sys.stderr)
        return 2
    files, errors = engine.parse_files(paths)
    for e in errors:
        print(f"ibwan-lint: parse error: {e}", file=sys.stderr)

    backend = None
    if not args.no_clang:
        backend = clang_backend.load(args.compile_commands)
    findings = engine.run_rules(files, rule_ids, backend)

    if args.json:
        rc = engine.report_json(findings)
    else:
        rc = engine.report_text(findings, args.show_suppressed)
    if errors:
        rc = 2
    return rc


if __name__ == "__main__":
    sys.exit(main())
