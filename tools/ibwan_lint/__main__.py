"""CLI: python3 tools/ibwan_lint [options] <paths...>

Exit codes: 0 clean, 1 findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ in (None, ""):  # `python3 tools/ibwan_lint` (path exec)
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    __package__ = "ibwan_lint"

from . import __version__, clang_backend, engine, sarif  # noqa: E402
from .rules import RULES, RULE_DOCS  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="ibwan-lint",
        description="Determinism & invariant static analysis for the "
                    "IB-WAN simulator (see DESIGN.md §10).")
    ap.add_argument("paths", nargs="*", default=[],
                    help="files or directories to scan")
    ap.add_argument("-p", "--compile-commands", metavar="JSON",
                    default="build/compile_commands.json",
                    help="compile_commands.json (default: "
                         "build/compile_commands.json; used for file "
                         "discovery and by the libclang backend when "
                         "available)")
    ap.add_argument("--rules", metavar="IDS",
                    help="comma-separated rule ids (default: all)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable ibwan.lint.v1 output")
    ap.add_argument("--sarif", metavar="FILE",
                    help="also write findings as SARIF 2.1.0 to FILE "
                         "(GitHub code scanning)")
    ap.add_argument("--cache", metavar="FILE",
                    help="content-hash result cache: unchanged files "
                         "skip lexing and reuse their findings unless a "
                         "cross-file fact changed")
    ap.add_argument("--changed-only", action="store_true",
                    help="with --cache: report findings only for files "
                         "whose content changed (plus docs-side "
                         "SCHEMA001); exit code follows the reported set")
    ap.add_argument("--metrics-docs", metavar="MD",
                    help="docs/METRICS.md path enabling the SCHEMA001 "
                         "two-way metric/trace schema check")
    ap.add_argument("--suppressions", action="store_true",
                    help="report every NOLINT-IBWAN in the scanned tree "
                         "instead of linting")
    ap.add_argument("--suppressions-baseline", metavar="FILE",
                    help="fail if the tree carries suppressions beyond "
                         "this committed `path RULE` baseline")
    ap.add_argument("--update-baseline", action="store_true",
                    help="with --suppressions-baseline: rewrite the "
                         "baseline from the current tree instead of "
                         "checking against it")
    ap.add_argument("--show-suppressed", action="store_true",
                    help="also print suppressed findings with reasons")
    ap.add_argument("--no-clang", action="store_true",
                    help="skip the libclang backend even if available")
    ap.add_argument("--version", action="version", version=__version__)
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid in sorted(RULES):
            print(f"{rid}  {RULE_DOCS[rid]}")
        return 0
    if not args.paths:
        ap.error("no paths given (try: src bench examples tools)")

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rule_ids if r not in RULES]
        if unknown:
            print(f"ibwan-lint: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    backend = None
    if not args.no_clang:
        backend = clang_backend.load(args.compile_commands)

    try:
        res = engine.run(args.paths,
                         compile_commands=args.compile_commands,
                         rule_ids=rule_ids,
                         backend=backend,
                         cache_path=args.cache,
                         changed_only=args.changed_only,
                         metrics_docs=args.metrics_docs)
    except FileNotFoundError as e:
        print(f"ibwan-lint: no such path: {e}", file=sys.stderr)
        return 2
    for e in res.errors:
        print(f"ibwan-lint: parse error: {e}", file=sys.stderr)

    if args.suppressions or args.suppressions_baseline:
        if args.suppressions:
            rc = engine.suppression_report(res.index)
        else:
            rc = 0
        if args.suppressions_baseline:
            if args.update_baseline:
                rc = max(rc, engine.write_suppression_baseline(
                    res.index, args.suppressions_baseline))
            else:
                rc = max(rc, engine.check_suppression_baseline(
                    res.index, args.suppressions_baseline))
        return 2 if res.errors else rc

    if args.sarif:
        sarif.write_sarif(res.findings, args.sarif)
    if args.json:
        rc = engine.report_json(res.findings)
    else:
        rc = engine.report_text(res.findings, args.show_suppressed,
                                stats=res)
    if res.errors:
        rc = 2
    return rc


if __name__ == "__main__":
    sys.exit(main())
