"""File discovery, rule driving, suppression matching, reporting."""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .lexer import LexError
from .model import Finding, SourceFile
from .rules import RULES, ProjectContext

_CXX_EXT = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".hxx", ".inl")
# Directories never scanned even when a parent is given.
_SKIP_DIRS = {"build", ".git", "third_party", "fixtures"}


def discover(paths: Sequence[str],
             compile_commands: Optional[str] = None) -> List[str]:
    """Expands files/dirs to a sorted list of C++ sources.  When a
    compile_commands.json is given, its entries are added too (headers
    are still found by the directory walk)."""
    out = set()
    for p in paths:
        if os.path.isfile(p):
            out.add(os.path.normpath(p))
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for f in sorted(files):
                    if f.endswith(_CXX_EXT):
                        out.add(os.path.normpath(os.path.join(root, f)))
        else:
            raise FileNotFoundError(p)
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as fh:
            for entry in json.load(fh):
                f = os.path.normpath(
                    os.path.join(entry.get("directory", "."), entry["file"]))
                # Only files under one of the requested roots.
                for p in paths:
                    rp = os.path.abspath(p)
                    if os.path.abspath(f).startswith(rp + os.sep) or \
                            os.path.abspath(f) == rp:
                        out.add(os.path.relpath(f))
                        break
    return sorted(out)


def parse_files(paths: Iterable[str]) -> Tuple[List[SourceFile], List[str]]:
    files: List[SourceFile] = []
    errors: List[str] = []
    for p in paths:
        try:
            with open(p, "r", encoding="utf-8", errors="replace") as fh:
                files.append(SourceFile(p, fh.read()))
        except LexError as e:
            errors.append(f"{p}: {e}")
    return files, errors


def run_rules(files: List[SourceFile],
              rule_ids: Optional[Sequence[str]] = None,
              backend=None) -> List[Finding]:
    """Runs the selected rules over every file; marks suppressed
    findings instead of dropping them (reporting decides)."""
    ctx = ProjectContext.build(files)
    selected = rule_ids or sorted(RULES)
    by_file: Dict[str, SourceFile] = {sf.path: sf for sf in files}
    findings: List[Finding] = []
    for sf in files:
        for rid in selected:
            findings.extend(RULES[rid](sf, ctx))
    if backend is not None:
        seen = {(f.path, f.line, f.rule) for f in findings}
        for f in backend.verify(files, ctx):
            if (f.path, f.line, f.rule) not in seen:
                findings.append(f)
    for f in findings:
        sf = by_file.get(f.path)
        sup = sf.suppression_for(f.rule, f.line) if sf else None
        if sup is not None:
            sup.used = True
            f.suppressed = True
            f.suppress_reason = sup.reason
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def report_text(findings: List[Finding], show_suppressed: bool,
                out=sys.stdout) -> int:
    active = [f for f in findings if not f.suppressed]
    for f in active:
        print(f.format(), file=out)
    if show_suppressed:
        for f in findings:
            if f.suppressed:
                print(f"{f.format()} [suppressed: {f.suppress_reason}]",
                      file=out)
    n_sup = sum(1 for f in findings if f.suppressed)
    print(f"ibwan-lint: {len(active)} finding(s), {n_sup} suppressed",
          file=out)
    return 1 if active else 0


def report_json(findings: List[Finding], out=sys.stdout) -> int:
    doc = {
        "schema": "ibwan.lint.v1",
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "suppress_reason": f.suppress_reason,
            }
            for f in findings
        ],
    }
    json.dump(doc, out, indent=2)
    out.write("\n")
    return 1 if any(not f.suppressed for f in findings) else 0
