"""File discovery, the two-pass driver, caching, reporting.

v2 flow (`run`):

  1. discover files; hash each file's content (sha256).
  2. For files whose hash matches the cache, reuse the cached pass-1
     `FileSummary` without re-lexing; parse the rest.
  3. Merge summaries (+ docs/METRICS.md) into the `ProjectIndex` and
     compute its digest over the cross-file facts rules consume.
  4. If the digest matches the cache, unchanged files also reuse their
     cached *findings* (suppressions already resolved); only changed
     files run pass 2.  A digest mismatch — someone changed a conserved
     annotation, a metric name, the call graph shape — re-runs pass 2
     everywhere, because any file's findings may now differ.
  5. Project-level rules (docs-side SCHEMA001) always run; they are
     anchored at docs/METRICS.md, not at a cached source file.

The cache is invalidated wholesale when the linter's own sources
change (`tool` digest) so a rule edit can never serve stale results.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .index import (FileSummary, MetricsDocs, ProjectIndex, build_summary)
from .lexer import LexError
from .model import Finding, SourceFile
from .rules import PROJECT_RULES, RULES, ProjectContext

_CXX_EXT = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh", ".hxx", ".inl")
# Directories never scanned even when a parent is given.
_SKIP_DIRS = {"build", ".git", "third_party", "fixtures"}

CACHE_SCHEMA = "ibwan.lint.cache.v2"


def discover(paths: Sequence[str],
             compile_commands: Optional[str] = None) -> List[str]:
    """Expands files/dirs to a sorted list of C++ sources.  When a
    compile_commands.json is given, its entries are added too (headers
    are still found by the directory walk)."""
    out = set()
    for p in paths:
        if os.path.isfile(p):
            out.add(os.path.normpath(p))
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
                for f in sorted(files):
                    if f.endswith(_CXX_EXT):
                        out.add(os.path.normpath(os.path.join(root, f)))
        else:
            raise FileNotFoundError(p)
    if compile_commands and os.path.isfile(compile_commands):
        with open(compile_commands, "r", encoding="utf-8") as fh:
            for entry in json.load(fh):
                f = os.path.normpath(
                    os.path.join(entry.get("directory", "."), entry["file"]))
                # Only files under one of the requested roots.
                for p in paths:
                    rp = os.path.abspath(p)
                    if os.path.abspath(f).startswith(rp + os.sep) or \
                            os.path.abspath(f) == rp:
                        out.add(os.path.relpath(f))
                        break
    return sorted(out)


def parse_files(paths: Iterable[str]) -> Tuple[List[SourceFile], List[str]]:
    files: List[SourceFile] = []
    errors: List[str] = []
    for p in paths:
        try:
            with open(p, "r", encoding="utf-8", errors="replace") as fh:
                files.append(SourceFile(p, fh.read()))
        except LexError as e:
            errors.append(f"{p}: {e}")
    return files, errors


# ---------------------------------------------------------------------------
# The content-hash cache.
# ---------------------------------------------------------------------------


def tool_digest() -> str:
    """sha256 over the linter's own sources: any rule/engine edit must
    invalidate every cached result."""
    here = os.path.dirname(os.path.abspath(__file__))
    h = hashlib.sha256()
    for name in sorted(os.listdir(here)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(here, name), "rb") as fh:
            h.update(name.encode())
            h.update(fh.read())
    return h.hexdigest()


def load_cache(path: Optional[str], tool: str) -> dict:
    empty = {"schema": CACHE_SCHEMA, "tool": tool,
             "index_digest": "", "files": {}}
    if not path or not os.path.isfile(path):
        return empty
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return empty
    if doc.get("schema") != CACHE_SCHEMA or doc.get("tool") != tool:
        return empty  # stale tool: every cached result is suspect
    doc.setdefault("files", {})
    return doc


def save_cache(path: str, cache: dict) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(cache, fh, sort_keys=True)
    os.replace(tmp, path)


def _finding_to_dict(f: Finding) -> dict:
    return {"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
            "message": f.message, "suppressed": f.suppressed,
            "suppress_reason": f.suppress_reason}


def _finding_from_dict(d: dict) -> Finding:
    return Finding(d["rule"], d["path"], d["line"], d["col"], d["message"],
                   d["suppressed"], d["suppress_reason"])


# ---------------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    findings: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_total: int = 0
    files_linted: int = 0    # parsed and run through pass 2
    files_cached: int = 0    # findings served from the cache
    changed: List[str] = field(default_factory=list)
    index: Optional[ProjectIndex] = None


def _lint_one(sf: SourceFile, ctx: ProjectContext,
              selected: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    for rid in selected:
        findings.extend(RULES[rid](sf, ctx))
    for f in findings:
        sup = sf.suppression_for(f.rule, f.line)
        if sup is not None:
            sup.used = True
            f.suppressed = True
            f.suppress_reason = sup.reason
    return findings


def run(paths: Sequence[str], *,
        compile_commands: Optional[str] = None,
        rule_ids: Optional[Sequence[str]] = None,
        backend=None,
        cache_path: Optional[str] = None,
        changed_only: bool = False,
        metrics_docs: Optional[str] = None) -> RunResult:
    res = RunResult()
    file_list = discover(paths, compile_commands)
    res.files_total = len(file_list)
    selected = list(rule_ids) if rule_ids else sorted(RULES)

    tool = tool_digest()
    cache = load_cache(cache_path, tool)

    texts: Dict[str, str] = {}
    shas: Dict[str, str] = {}
    summaries: Dict[str, FileSummary] = {}
    parsed: Dict[str, SourceFile] = {}

    for p in file_list:
        try:
            with open(p, "r", encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            res.errors.append(f"{p}: {e}")
            continue
        texts[p] = text
        shas[p] = hashlib.sha256(text.encode()).hexdigest()
        ent = cache["files"].get(p)
        if ent is not None and ent.get("sha") == shas[p]:
            summaries[p] = FileSummary.from_dict(ent["summary"])
        else:
            try:
                sf = SourceFile(p, text)
            except LexError as e:
                res.errors.append(f"{p}: {e}")
                continue
            sf.summary = build_summary(sf)
            parsed[p] = sf
            summaries[p] = sf.summary

    docs = MetricsDocs.load(metrics_docs) if metrics_docs else None
    idx = ProjectIndex.build(summaries.values(), docs)
    res.index = idx
    digest = idx.digest()
    res.changed = sorted(parsed)

    # A cross-file-fact change invalidates every cached finding.
    if cache.get("index_digest") != digest:
        for p in file_list:
            if p in summaries and p not in parsed:
                try:
                    sf = SourceFile(p, texts[p])
                except LexError as e:
                    res.errors.append(f"{p}: {e}")
                    del summaries[p]
                    continue
                sf.summary = summaries[p]
                parsed[p] = sf

    ctx = ProjectContext.from_index(idx)

    new_cache = {"schema": CACHE_SCHEMA, "tool": tool,
                 "index_digest": digest, "files": {}}
    for p in file_list:
        if p not in summaries:
            continue
        if p in parsed:
            fs = _lint_one(parsed[p], ctx, selected)
            res.files_linted += 1
        else:
            fs = [_finding_from_dict(d)
                  for d in cache["files"][p].get("findings", [])
                  if d["rule"] in selected]
            res.files_cached += 1
        res.findings.extend(fs)
        new_cache["files"][p] = {
            "sha": shas[p],
            "summary": summaries[p].to_dict(),
            "findings": [_finding_to_dict(f) for f in fs],
        }

    if backend is not None and parsed:
        seen = {(f.path, f.line, f.rule) for f in res.findings}
        files = [parsed[p] for p in sorted(parsed)]
        for f in backend.verify(files, ctx):
            if (f.path, f.line, f.rule) not in seen:
                sf = parsed.get(f.path)
                sup = sf.suppression_for(f.rule, f.line) if sf else None
                if sup is not None:
                    f.suppressed = True
                    f.suppress_reason = sup.reason
                res.findings.append(f)
                ent = new_cache["files"].get(f.path)
                if ent is not None:
                    ent["findings"].append(_finding_to_dict(f))

    for rid, project_rule in sorted(PROJECT_RULES.items()):
        if rid in selected:
            res.findings.extend(project_rule(ctx))

    if changed_only:
        keep = set(parsed) | ({docs.path} if docs else set())
        res.findings = [f for f in res.findings if f.path in keep]

    res.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if cache_path:
        save_cache(cache_path, new_cache)
    return res


def run_rules(files: List[SourceFile],
              rule_ids: Optional[Sequence[str]] = None,
              backend=None,
              metrics_docs: Optional[str] = None) -> List[Finding]:
    """Cache-free entry point over pre-parsed files (tests use this).
    Runs both per-file and project-level rules."""
    docs = MetricsDocs.load(metrics_docs) if metrics_docs else None
    ctx = ProjectContext.build(files, docs)
    selected = list(rule_ids) if rule_ids else sorted(RULES)
    findings: List[Finding] = []
    for sf in files:
        findings.extend(_lint_one(sf, ctx, selected))
    if backend is not None:
        seen = {(f.path, f.line, f.rule) for f in findings}
        by_file = {sf.path: sf for sf in files}
        for f in backend.verify(files, ctx):
            if (f.path, f.line, f.rule) not in seen:
                sf = by_file.get(f.path)
                sup = sf.suppression_for(f.rule, f.line) if sf else None
                if sup is not None:
                    f.suppressed = True
                    f.suppress_reason = sup.reason
                findings.append(f)
    for rid, project_rule in sorted(PROJECT_RULES.items()):
        if rid in selected:
            findings.extend(project_rule(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Reporting.
# ---------------------------------------------------------------------------


def report_text(findings: List[Finding], show_suppressed: bool,
                out=sys.stdout, stats: Optional[RunResult] = None) -> int:
    active = [f for f in findings if not f.suppressed]
    for f in active:
        print(f.format(), file=out)
    if show_suppressed:
        for f in findings:
            if f.suppressed:
                print(f"{f.format()} [suppressed: {f.suppress_reason}]",
                      file=out)
    n_sup = sum(1 for f in findings if f.suppressed)
    extra = ""
    if stats is not None and stats.files_cached:
        extra = (f" ({stats.files_linted} linted, "
                 f"{stats.files_cached} from cache)")
    print(f"ibwan-lint: {len(active)} finding(s), {n_sup} suppressed"
          f"{extra}", file=out)
    return 1 if active else 0


def report_json(findings: List[Finding], out=sys.stdout) -> int:
    doc = {
        "schema": "ibwan.lint.v1",
        "findings": [_finding_to_dict(f) for f in findings],
    }
    json.dump(doc, out, indent=2)
    out.write("\n")
    return 1 if any(not f.suppressed for f in findings) else 0


# ---------------------------------------------------------------------------
# Suppression audit (`--suppressions` / `--suppressions-baseline`).
# ---------------------------------------------------------------------------


def suppression_report(idx: ProjectIndex, out=sys.stdout) -> int:
    """Lists every NOLINT-IBWAN in the scanned tree, one per line:
    `path:line: RULE: reason`."""
    for path, line, rule, reason in idx.all_suppressions:
        print(f"{path}:{line}: {rule}: {reason}", file=out)
    print(f"ibwan-lint: {len(idx.all_suppressions)} suppression(s)",
          file=out)
    return 0


def suppression_keys(idx: ProjectIndex) -> List[str]:
    """Line-number-free multiset keys (`path RULE`), so moving code
    within a file does not churn the baseline."""
    return sorted(f"{path} {rule}"
                  for path, _line, rule, _ in idx.all_suppressions)


def check_suppression_baseline(idx: ProjectIndex, baseline_path: str,
                               out=sys.stdout) -> int:
    """Fails (exit 1) when the tree carries suppressions beyond the
    committed baseline: adding one forces a baseline edit, which makes
    the new suppression visible in the PR diff.  Shrinking is legal and
    just suggests tightening the baseline."""
    try:
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = sorted(ln.strip() for ln in fh
                              if ln.strip() and not ln.startswith("#"))
    except OSError as e:
        print(f"ibwan-lint: cannot read baseline: {e}", file=out)
        return 2
    current = suppression_keys(idx)

    def multiset(keys):
        m: Dict[str, int] = {}
        for k in keys:
            m[k] = m.get(k, 0) + 1
        return m

    cur, base = multiset(current), multiset(baseline)
    grew = {k: c - base.get(k, 0) for k, c in cur.items()
            if c > base.get(k, 0)}
    shrank = {k: c - cur.get(k, 0) for k, c in base.items()
              if c > cur.get(k, 0)}
    if grew:
        print("ibwan-lint: suppression budget exceeded — new "
              "suppressions not in the baseline:", file=out)
        for k, extra in sorted(grew.items()):
            print(f"  +{extra}  {k}", file=out)
        print(f"update {baseline_path} in the same PR to account for "
              "them (the diff line is the audit trail)", file=out)
        return 1
    if shrank:
        print("ibwan-lint: baseline is stale (suppressions removed); "
              f"consider tightening {baseline_path}:", file=out)
        for k, fewer in sorted(shrank.items()):
            print(f"  -{fewer}  {k}", file=out)
    print(f"ibwan-lint: {len(current)} suppression(s) within baseline "
          f"budget ({len(baseline)})", file=out)
    return 0


_BASELINE_HEADER = """\
# ibwan-lint suppression budget: one `path RULE` line per
# NOLINT-IBWAN comment in the linted tree (line numbers omitted so
# moving code does not churn the file).  Adding a suppression fails CI
# until the new key lands here too — the diff line is the audit trail.
# Regenerate: python3 tools/ibwan_lint src bench examples tools \\
#   --suppressions-baseline tests/lint/suppressions_baseline.txt \\
#   --update-baseline
"""


def write_suppression_baseline(idx: ProjectIndex, baseline_path: str,
                               out=sys.stdout) -> int:
    tmp = baseline_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(_BASELINE_HEADER)
        for k in suppression_keys(idx):
            fh.write(k + "\n")
    os.replace(tmp, baseline_path)
    print(f"ibwan-lint: wrote {len(suppression_keys(idx))} suppression "
          f"key(s) to {baseline_path}", file=out)
    return 0
