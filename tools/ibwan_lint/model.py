"""Source-file model shared by all rules.

A `SourceFile` owns the token stream, the comment list, per-line
suppressions, and two derived views rules lean on:

  * `enclosing(i)` — best-effort enclosing function name (qualified with
    its namespace/class path) for token index `i`, from a single
    brace-tracking pass.  Heuristic, but exact on this codebase's
    formatting and on the fixture corpus; rules that use it (DET001's
    getenv allowlist, DET004's member/local split) fall back to the
    conservative answer ("not in an allowed context") when it returns
    None.
  * `line_text(n)` — raw text of 1-based line n.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from . import lexer
from .lexer import IDENT, PUNCT, Token

SUPPRESS_RE = re.compile(r"NOLINT-IBWAN\(([A-Z]{3,8}\d{3})\)(?::\s*(\S.*))?")
EXPECT_RE = re.compile(r"EXPECT-IBWAN\(([A-Z]{3,8}\d{3})\)")

# Keywords that can look like function names to the context tracker.
_NON_FUNC = {
    "if", "for", "while", "switch", "return", "catch", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "new", "delete", "throw",
    "co_await", "co_return", "co_yield", "assert", "defined",
}
_SCOPE_KEYWORDS = {"namespace", "class", "struct", "union", "enum"}


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    suppress_reason: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class Suppression:
    rule: str
    line: int  # line the comment sits on
    reason: str
    own_line: bool
    used: bool = False


@dataclass
class Scope:
    kind: str        # "namespace" | "class" | "function" | "block" | "other"
    name: str
    depth: int       # brace depth at which this scope was opened
    name_idx: int = -1   # token index of the defining name (functions)
    body_start: int = -1  # token index of the opening '{' (functions)


@dataclass
class FunctionSpan:
    """One function definition found by the brace-tracking pass.  Used
    by the pass-1 index (tools/ibwan_lint/index.py) to build the call
    graph and parameter lists."""
    name: str        # simple name ("schedule")
    qual: str        # qualified ("ibwan::sim::Simulator::schedule")
    line: int
    name_idx: int    # token index of the name token
    body_start: int  # token index of '{'
    body_end: int    # token index of the matching '}'


class SourceFile:
    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.split("\n")
        self.tokens, self.comments = lexer.lex(text)
        self.suppressions: List[Suppression] = []
        self.expects: List[Tuple[str, int]] = []  # fixture markers
        for c in self.comments:
            m = SUPPRESS_RE.search(c.text)
            if m:
                self.suppressions.append(
                    Suppression(m.group(1), c.line, (m.group(2) or "").strip(),
                                c.own_line))
            for em in EXPECT_RE.finditer(c.text):
                self.expects.append((em.group(1), c.line))
        self._scope_by_token: List[Optional[str]] = []
        self._kind_by_token: List[str] = []
        self.functions: List[FunctionSpan] = []
        self._build_contexts()
        self._token_index_by_line: Dict[int, int] = {}
        for idx, t in enumerate(self.tokens):
            self._token_index_by_line.setdefault(t.line, idx)
        self._code_lines = sorted(self._token_index_by_line)

    # -- suppression ----------------------------------------------------
    def suppression_for(self, rule: str, line: int) -> Optional[Suppression]:
        """Same-line suppression, or an own-line one above: it covers
        the next line that has code (comment-only lines in between,
        e.g. a multi-line suppression reason, don't break the link)."""
        for s in self.suppressions:
            if s.rule != rule:
                continue
            if s.line == line:
                return s
            if s.own_line and self._next_code_line(s.line) == line:
                return s
        return None

    def _next_code_line(self, after: int) -> Optional[int]:
        i = bisect.bisect_right(self._code_lines, after)
        return self._code_lines[i] if i < len(self._code_lines) else None

    def line_text(self, n: int) -> str:
        return self.lines[n - 1] if 1 <= n <= len(self.lines) else ""

    def is_header(self) -> bool:
        return self.path.endswith((".h", ".hpp", ".hh", ".hxx", ".inl"))

    # -- context tracking ----------------------------------------------
    def enclosing(self, i: int) -> Optional[str]:
        """Qualified name of the innermost function containing token i,
        e.g. "ibwan::bench::init"; None at namespace/class scope."""
        return self._scope_by_token[i]

    def in_function(self, i: int) -> bool:
        return self._scope_by_token[i] is not None

    def class_at(self, i: int) -> Optional[str]:
        """Innermost class/struct name containing token i, if any."""
        k = self._kind_by_token[i]
        return k if k else None

    def _build_contexts(self) -> None:
        toks = self.tokens
        stack: List[Scope] = []
        depth = 0
        # Pending scope discovered before its '{' arrives.
        pending: Optional[Scope] = None
        pending_guard = 0  # token distance guard
        scope_by_token: List[Optional[str]] = []
        kind_by_token: List[str] = []

        def current_function() -> Optional[str]:
            names = [s.name for s in stack if s.kind in ("namespace", "class")]
            for s in stack:
                if s.kind == "function":
                    return "::".join(n for n in names + [s.name] if n)
            return None

        def current_class() -> str:
            for s in reversed(stack):
                if s.kind == "class":
                    return s.name
            return ""

        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            scope_by_token.append(current_function())
            kind_by_token.append(current_class())
            if t.kind == IDENT and t.text in _SCOPE_KEYWORDS:
                # namespace foo { / class Foo ... {
                j = i + 1
                if j < n and toks[j].kind == IDENT and toks[j].text == "class":
                    j += 1  # enum class
                name = ""
                while j < n and (toks[j].kind == IDENT or
                                 (toks[j].kind == PUNCT and
                                  toks[j].text == "::")):
                    if toks[j].kind == IDENT:
                        name = toks[j].text
                    j += 1
                kind = "namespace" if t.text == "namespace" else "class"
                pending = Scope(kind, name, depth)
                pending_guard = 0
            elif t.kind == PUNCT and t.text == "(":
                # Possible function definition: ident '(' at non-function
                # scope. Confirm when we later meet '{' before ';'.
                if (current_function() is None and i > 0 and
                        toks[i - 1].kind == IDENT and
                        toks[i - 1].text not in _NON_FUNC and
                        pending is None):
                    name = toks[i - 1].text
                    # Qualified name: walk back over `Class::` pairs.
                    k = i - 1
                    quals: List[str] = []
                    while (k >= 2 and toks[k - 1].kind == PUNCT and
                           toks[k - 1].text == "::" and
                           toks[k - 2].kind == IDENT):
                        quals.insert(0, toks[k - 2].text)
                        k -= 2
                    full = "::".join(quals + [name])
                    pending = Scope("function", full, depth, i - 1)
                    pending_guard = 0
            elif t.kind == PUNCT and t.text == ";":
                # A ';' at scope depth cancels a pending declaration:
                # a function prototype, or a class/struct forward
                # declaration (`struct SiteEngine;`) whose '{' never
                # arrives — leaving it pending would swallow the next
                # definition's body into a phantom class scope.
                if pending is not None:
                    pending = None
            elif t.kind == PUNCT and t.text == "{":
                if pending is not None:
                    stack.append(Scope(pending.kind, pending.name, depth,
                                       pending.name_idx, i))
                    pending = None
                else:
                    stack.append(Scope("block", "", depth))
                depth += 1
            elif t.kind == PUNCT and t.text == "}":
                depth -= 1
                while stack and stack[-1].depth >= depth:
                    sc = stack.pop()
                    if sc.kind == "function" and sc.body_start >= 0:
                        prefix = [s.name for s in stack
                                  if s.kind in ("namespace", "class")]
                        simple = sc.name.rsplit("::", 1)[-1]
                        self.functions.append(FunctionSpan(
                            simple, "::".join(n for n in prefix + [sc.name]
                                              if n),
                            toks[sc.name_idx].line if sc.name_idx >= 0
                            else t.line,
                            sc.name_idx, sc.body_start, i))
            if pending is not None:
                pending_guard += 1
                if pending_guard > 400:  # runaway: not a definition
                    pending = None
            i += 1
        self._scope_by_token = scope_by_token
        self._kind_by_token = kind_by_token

    # -- helpers for rules ---------------------------------------------
    def first_token_on_line(self, line: int) -> Optional[int]:
        return self._token_index_by_line.get(line)
