"""Optional libclang (clang.cindex) backend.

When the Python clang bindings and a loadable libclang are present,
this backend re-checks DET001/DET003 findings against real AST
information (resolving through typedefs and using-declarations the
token-level rules cannot see) and contributes extra findings for calls
the token pass missed behind macros.

The container image this repo builds in ships only the LLVM C++
libraries (no libclang C API, no Python bindings), so the backend is
strictly optional: `load()` returns None when the bindings are absent
and the token-level rules stand alone.  CI environments with
`python3-clang`/`libclang` installed get the deeper pass for free.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional

from .model import Finding, SourceFile


_BANNED_SPELLINGS = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "random",
    "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
}


class ClangBackend:
    def __init__(self, cindex, compile_commands: Optional[str]):
        self._cindex = cindex
        self._index = cindex.Index.create()
        self._compdb = None
        if compile_commands and os.path.isfile(compile_commands):
            try:
                self._compdb = cindex.CompilationDatabase.fromDirectory(
                    os.path.dirname(os.path.abspath(compile_commands)))
            except cindex.CompilationDatabaseError:
                self._compdb = None

    def _args_for(self, path: str) -> List[str]:
        if self._compdb is not None:
            cmds = self._compdb.getCompileCommands(os.path.abspath(path))
            if cmds:
                args = list(cmds[0].arguments)[1:]
                # Strip the output/input file arguments.
                cleaned, skip = [], False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a == path or a.endswith(os.path.basename(path)):
                        continue
                    cleaned.append(a)
                return cleaned
        return ["-std=c++20", "-Isrc"]

    def verify(self, files: List[SourceFile], ctx) -> Iterable[Finding]:
        cindex = self._cindex
        out: List[Finding] = []
        for sf in files:
            if sf.is_header():
                continue  # headers are parsed through their includers
            try:
                tu = self._index.parse(sf.path, args=self._args_for(sf.path))
            except cindex.TranslationUnitLoadError:
                continue
            for cur in tu.cursor.walk_preorder():
                loc = cur.location
                if loc.file is None or \
                        os.path.normpath(loc.file.name) != sf.path:
                    continue
                if cur.kind == cindex.CursorKind.CALL_EXPR and \
                        cur.spelling in _BANNED_SPELLINGS:
                    ref = cur.referenced
                    # Only the global/libc entry points, not members.
                    if ref is not None and ref.semantic_parent is not None \
                            and ref.semantic_parent.kind in (
                                cindex.CursorKind.TRANSLATION_UNIT,
                                cindex.CursorKind.NAMESPACE):
                        out.append(Finding(
                            "DET001", sf.path, loc.line, loc.column,
                            f"[clang] call to banned API `{cur.spelling}` "
                            "(AST-confirmed)"))
        # De-duplicate against token-level findings by (path, line, rule).
        return out


def load(compile_commands: Optional[str]) -> Optional[ClangBackend]:
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:  # libclang shared object missing or unloadable
        return None
    return ClangBackend(cindex, compile_commands)
