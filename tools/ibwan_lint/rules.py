"""Rule implementations for ibwan-lint.

Each rule is a callable `rule(sf: SourceFile, ctx: ProjectContext) ->
Iterable[Finding]`.  Findings are emitted *without* suppression applied;
the engine matches them against `// NOLINT-IBWAN(RULE): reason`
comments afterwards so suppressed findings can still be counted and
audited (`--show-suppressed`).

Rules never look at comments or string literals: they walk the token
stream, so `// calls rand()` in a comment is not a finding.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .lexer import CHAR, IDENT, NUMBER, PUNCT, STRING, Token
from .model import Finding, SourceFile

# ---------------------------------------------------------------------------
# Project-wide context (built once over every scanned file).
# ---------------------------------------------------------------------------


@dataclass
class ProjectContext:
    """Cross-file facts rules need: which names are unordered
    containers, and which members are conserved counters."""

    # Variable/member names declared with an unordered container type,
    # mapped to one declaration site (path, line) for the message.
    unordered_names: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    # Conserved counter members: name -> (declaring path, line).
    conserved: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    @staticmethod
    def build(files: Iterable[SourceFile]) -> "ProjectContext":
        ctx = ProjectContext()
        for sf in files:
            _collect_unordered_decls(sf, ctx)
            _collect_conserved(sf, ctx)
        return ctx


_UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"}


def _match_angle(toks: List[Token], i: int) -> int:
    """`toks[i]` is '<'; returns the index of its matching '>' (or the
    index where scanning gave up).  Treats '>>' as two closers."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return i
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return i
            elif t.text in (";", "{", "}"):
                return i  # not a template argument list after all
        i += 1
    return n - 1


def _collect_unordered_decls(sf: SourceFile, ctx: ProjectContext) -> None:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _UNORDERED:
            continue
        j = i + 1
        if j >= n or not (toks[j].kind == PUNCT and toks[j].text == "<"):
            continue
        close = _match_angle(toks, j)
        k = close + 1
        # `unordered_map<K, V> name` — possibly with refs/pointers in
        # between (a reference to an unordered container iterates the
        # same way).
        while k < n and toks[k].kind == PUNCT and toks[k].text in ("&", "*"):
            k += 1
        if k < n and toks[k].kind == IDENT:
            ctx.unordered_names.setdefault(toks[k].text, (sf.path, toks[k].line))


def _collect_conserved(sf: SourceFile, ctx: ProjectContext) -> None:
    for c in sf.comments:
        if "lint:conserved" not in c.text:
            continue
        # The annotated declaration is the last identifier before the
        # ';' on the comment's line (or the previous line for an
        # own-line comment above the member).
        line = c.line if not c.own_line else c.line + 1
        idx = sf.first_token_on_line(line)
        if idx is None:
            continue
        name = None
        toks = sf.tokens
        i = idx
        while i < len(toks) and toks[i].line == line:
            t = toks[i]
            if t.kind == PUNCT and t.text in (";", "=", "{"):
                break
            if t.kind == IDENT:
                name = t.text
            i += 1
        if name:
            ctx.conserved.setdefault(name, (sf.path, line))


# ---------------------------------------------------------------------------
# DET001 — banned nondeterminism APIs.
# ---------------------------------------------------------------------------

_BANNED_CALLS = {
    "rand": "libc rand() is seeded process-globally",
    "srand": "seeds the process-global libc RNG",
    "rand_r": "libc PRNG outside the simulator seed",
    "drand48": "libc PRNG outside the simulator seed",
    "lrand48": "libc PRNG outside the simulator seed",
    "random": "libc PRNG outside the simulator seed",
    "time": "reads the wall clock",
    "clock": "reads the process clock",
    "gettimeofday": "reads the wall clock",
    "clock_gettime": "reads the wall clock",
    "timespec_get": "reads the wall clock",
    "localtime": "depends on host time/zone",
    "gmtime": "depends on host time",
    "strftime": "formats host time",
}
_BANNED_TYPES = {
    "random_device": "std::random_device is nondeterministic by design",
}
_CHRONO_CLOCKS = {"system_clock", "steady_clock", "high_resolution_clock"}
# getenv is allowed only inside these functions (suffix match on the
# qualified enclosing-function name).
_GETENV_ALLOWED_SUFFIXES = ("bench::init",)
# Keywords that may directly precede a banned call without making it a
# declaration (`return time(...)` is a call; `Duration time(...)` is not).
_STMT_KEYWORDS = {"return", "co_return", "co_yield", "case", "else", "do",
                  "throw"}


def _prev_punct(toks: List[Token], i: int) -> str:
    return toks[i - 1].text if i > 0 and toks[i - 1].kind == PUNCT else ""


def _is_member_access(toks: List[Token], i: int) -> bool:
    p = _prev_punct(toks, i)
    if p in (".", "->"):
        return True
    # `foo::bar(` where foo is not std — treat as project-scoped, allowed
    # for the call names (DET bans the libc/std entry points).
    if p == "::":
        k = i - 2
        if k >= 0 and toks[k].kind == IDENT and toks[k].text != "std":
            return True
    return False


def rule_det001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        name = t.text
        if name in _BANNED_TYPES and not _is_member_access(toks, i):
            yield Finding("DET001", sf.path, t.line, t.col,
                          f"use of `{name}`: {_BANNED_TYPES[name]}; "
                          "draw from Simulator::rng()/rng_stream() instead")
            continue
        nxt = toks[i + 1] if i + 1 < n else None
        is_call = nxt is not None and nxt.kind == PUNCT and nxt.text == "("
        if name in _BANNED_CALLS and is_call and \
                not _is_member_access(toks, i):
            # `time(` as a declaration like `sim::Time time(...)`? The
            # banned set is only flagged as a *call*: preceded by an
            # operator/separator/statement keyword, not by a type name.
            if i > 0 and toks[i - 1].kind == IDENT and \
                    toks[i - 1].text not in _STMT_KEYWORDS:
                continue  # `Duration time(...)` — a declaration
            yield Finding("DET001", sf.path, t.line, t.col,
                          f"call to banned API `{name}`: "
                          f"{_BANNED_CALLS[name]}; simulation code must be "
                          "deterministic (use sim::Simulator time/RNG)")
            continue
        if name in _CHRONO_CLOCKS:
            # std::chrono::steady_clock::now()
            if i + 3 < n and toks[i + 1].text == "::" and \
                    toks[i + 2].kind == IDENT and toks[i + 2].text == "now":
                yield Finding("DET001", sf.path, t.line, t.col,
                              f"`{name}::now()` reads a host clock; "
                              "simulated time comes from Simulator::now()")
            continue
        if name == "getenv" and is_call:
            fn = sf.enclosing(i) or ""
            if any(fn.endswith(sfx) for sfx in _GETENV_ALLOWED_SUFFIXES):
                continue
            yield Finding("DET001", sf.path, t.line, t.col,
                          "`getenv` outside bench::init: environment reads "
                          "must be centralized in the bench entry hook "
                          f"(enclosing function: {fn or '<file scope>'})")


# ---------------------------------------------------------------------------
# DET002 — effectful iteration over unordered containers.
# ---------------------------------------------------------------------------

# Calls that schedule events, emit traces/metrics, or write output.
_EFFECT_CALLS = {
    "schedule", "schedule_at", "cancel", "fire", "resume", "trace",
    "record", "observe", "emit", "printf", "fprintf", "fputs", "fputc",
    "fwrite", "puts", "putc", "putchar", "write_csv", "write_json",
    "add_row", "append_row", "IBWAN_TRACE", "log_line", "flush_wqe",
    "post_send", "post_recv", "deliver", "send", "complete", "fail",
}
_EFFECT_PUNCT = {"<<"}  # stream output


def _iterated_name(expr: List[Token]) -> Optional[str]:
    """Name of the container in a range-for's range expression: the
    last identifier, skipping trailing () of accessor calls."""
    ids = [t.text for t in expr if t.kind == IDENT]
    return ids[-1] if ids else None


def _match_paren(toks: List[Token], i: int) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _match_brace(toks: List[Token], i: int) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _body_effects(toks: List[Token], start: int, end: int) -> Optional[str]:
    for k in range(start, min(end + 1, len(toks))):
        t = toks[k]
        if t.kind == IDENT and t.text in _EFFECT_CALLS:
            nxt = toks[k + 1] if k + 1 < len(toks) else None
            if nxt is not None and nxt.kind == PUNCT and nxt.text == "(":
                return t.text
        if t.kind == PUNCT and t.text in _EFFECT_PUNCT:
            return "operator<<"
    return None


def rule_det002(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if not (t.kind == IDENT and t.text == "for"):
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = _match_paren(toks, i + 1)
        header = toks[i + 2:close]
        # Range-for: a ':' at top template/paren depth.
        colon = None
        depth = 0
        for k, h in enumerate(header):
            if h.kind == PUNCT:
                if h.text in ("(", "<", "["):
                    depth += 1
                elif h.text in (")", ">", "]"):
                    depth -= 1
                elif h.text == ":" and depth == 0:
                    colon = k
                elif h.text == "::":
                    continue
        if colon is None:
            # Iterator loop over `x.begin()`?
            name = _iter_loop_container(header)
            if name is None or name not in ctx.unordered_names:
                continue
        else:
            name = _iterated_name(header[colon + 1:])
            if name is None or name not in ctx.unordered_names:
                continue
        body_start = close + 1
        if body_start < n and toks[body_start].text == "{":
            body_end = _match_brace(toks, body_start)
        else:  # single statement
            body_end = body_start
            while body_end < n and toks[body_end].text != ";":
                body_end += 1
        effect = _body_effects(toks, body_start, body_end + 1)
        if effect is None:
            continue
        decl_path, decl_line = ctx.unordered_names[name]
        yield Finding(
            "DET002", sf.path, t.line, t.col,
            f"iteration over unordered container `{name}` (declared at "
            f"{os.path.basename(decl_path)}:{decl_line}) has side effects "
            f"(`{effect}`): hash order is not deterministic across "
            "platforms — use an ordered container or sort keys first")


def _iter_loop_container(header: List[Token]) -> Optional[str]:
    for k, h in enumerate(header):
        if h.kind == IDENT and h.text in ("begin", "cbegin") and k >= 2:
            if header[k - 1].kind == PUNCT and header[k - 1].text in (".", "->"):
                if header[k - 2].kind == IDENT:
                    return header[k - 2].text
    return None


# ---------------------------------------------------------------------------
# DET003 — ordering keyed on pointer values.
# ---------------------------------------------------------------------------

_ORDERED_ASSOC = {"map": 1, "multimap": 1, "set": 1, "multiset": 1,
                  "priority_queue": 1}


def _first_template_arg(toks: List[Token], lt: int) -> Tuple[List[Token], int]:
    """Tokens of the first template argument after '<' at index lt, and
    the number of top-level arguments."""
    depth = 0
    args = 1
    first: List[Token] = []
    i = lt
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text in ("<", "("):
                depth += 1
            elif t.text in (")",):
                depth -= 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    break
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    break
            elif t.text == "," and depth == 1:
                args += 1
                i += 1
                continue
        if depth >= 1 and args == 1 and i != lt:
            first.append(t)
        i += 1
    return first, args


def rule_det003(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        if t.text in _ORDERED_ASSOC:
            if i + 1 >= n or toks[i + 1].text != "<":
                continue
            # Only std:: (or unqualified) containers.
            if _prev_punct(toks, i) == "::" and i >= 2 and \
                    toks[i - 2].text != "std":
                continue
            first, nargs = _first_template_arg(toks, i + 1)
            if not first or first[-1].text != "*":
                continue
            three_arg = t.text in ("map", "multimap", "priority_queue")
            has_cmp = nargs >= (3 if three_arg else 2)
            if has_cmp:
                continue  # custom comparator: assume a stable key order
            yield Finding(
                "DET003", sf.path, t.line, t.col,
                f"`std::{t.text}` keyed on a pointer type "
                f"(`{''.join(tok.text for tok in first)}`): iteration order "
                "follows allocation addresses, which vary run to run — key "
                "on a stable id instead")
        elif t.text == "less" and i + 1 < n and toks[i + 1].text == "<":
            first, _ = _first_template_arg(toks, i + 1)
            if first and first[-1].text == "*":
                yield Finding(
                    "DET003", sf.path, t.line, t.col,
                    "`std::less` over a pointer type orders by address; "
                    "sort by a stable id instead")


# ---------------------------------------------------------------------------
# DET004 — RNG draws must route through the seeded simulator streams.
# ---------------------------------------------------------------------------

_STD_ENGINES = {"mt19937", "mt19937_64", "default_random_engine",
                "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48",
                "knuth_b"}


def rule_det004(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        if t.text in _STD_ENGINES:
            yield Finding(
                "DET004", sf.path, t.line, t.col,
                f"`std::{t.text}`: <random> engines are "
                "implementation-defined and bypass the simulator seed; all "
                "draws must come from Simulator::rng()/rng_stream()")
            continue
        if t.text == "Rng" and sf.in_function(i):
            # Default-constructed sim::Rng inside a function: a fixed
            # default seed untied to the run seed. `Rng r(seed)` and
            # `Rng r = sim.rng_stream("x")` are fine.
            j = i + 1
            if j < n and toks[j].kind == IDENT:  # `Rng name ...`
                k = j + 1
                if k < n and toks[k].kind == PUNCT and toks[k].text == ";":
                    yield Finding(
                        "DET004", sf.path, t.line, t.col,
                        f"default-constructed sim::Rng `{toks[j].text}` uses "
                        "the fixed default seed; obtain it from "
                        "Simulator::rng_stream(name) or pass the run seed")
                elif k < n and toks[k].kind == PUNCT and \
                        toks[k].text in ("(", "{") and \
                        k + 1 < n and toks[k + 1].kind == PUNCT and \
                        toks[k + 1].text in (")", "}"):
                    yield Finding(
                        "DET004", sf.path, t.line, t.col,
                        f"sim::Rng `{toks[j].text}` constructed with no "
                        "seed; obtain it from Simulator::rng_stream(name) "
                        "or pass the run seed")


# ---------------------------------------------------------------------------
# DET005 — cross-site state access must go through the WAN channel API.
# ---------------------------------------------------------------------------

# Accessors that select a specific site's Simulator (sim::SiteEngine /
# net::Fabric / core::Testbed).
_SITE_SELECTORS = {"site", "sim_of", "sim_of_node", "sim_a", "sim_b",
                   "sim_for"}
# Methods that inject events into the selected site's queue.
_SITE_MUTATORS = {"schedule", "schedule_at"}


def rule_det005(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    """Flags `<selector>(...).schedule[_at](...)` chains: scheduling
    directly into a site picked by a site selector. Under site-parallel
    execution (DESIGN.md §13) the only legal way for causality to cross
    an LP boundary is the WAN channel (net::Link in channel mode /
    sim::SiteEngine::Channel); direct injection bypasses the
    conservative merge, so the event order — and with worker threads,
    memory safety — is no longer guaranteed. Wiring code that runs
    before the engine starts may suppress with a reason."""
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _SITE_SELECTORS:
            continue
        if i + 1 >= n or not (toks[i + 1].kind == PUNCT and
                              toks[i + 1].text == "("):
            continue
        close = _match_paren(toks, i + 1)
        j = close + 1
        if j + 2 >= n or toks[j].kind != PUNCT or \
                toks[j].text not in (".", "->"):
            continue
        m = toks[j + 1]
        if m.kind != IDENT or m.text not in _SITE_MUTATORS:
            continue
        if not (toks[j + 2].kind == PUNCT and toks[j + 2].text == "("):
            continue
        yield Finding(
            "DET005", sf.path, t.line, t.col,
            f"`{t.text}(...)`.{m.text}(...) schedules directly into a "
            "selected site's event queue: cross-site causality must cross "
            "the LP boundary through the WAN channel API (net::Link in "
            "channel mode) — direct injection bypasses the conservative "
            "merge and breaks determinism under --par-sites "
            "(DESIGN.md §13)")


# ---------------------------------------------------------------------------
# INV001 — conserved counters must not be written from outside their
# owning translation-unit pair.
# ---------------------------------------------------------------------------

_WRITE_AFTER = {"=", "+=", "-=", "*=", "/=", "++", "--"}
_WRITE_BEFORE = {"++", "--"}


def _owning_stems(decl_path: str) -> Set[str]:
    base = os.path.basename(decl_path)
    stem = base.rsplit(".", 1)[0]
    return {stem}


def rule_inv001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    if not ctx.conserved:
        return
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in ctx.conserved:
            continue
        decl_path, decl_line = ctx.conserved[t.text]
        decl_stem = os.path.basename(decl_path).rsplit(".", 1)[0]
        same_unit = (os.path.basename(sf.path).rsplit(".", 1)[0] == decl_stem)
        nxt = toks[i + 1] if i + 1 < n else None
        prv = toks[i - 1] if i > 0 else None
        wrote = False
        if nxt is not None and nxt.kind == PUNCT and nxt.text in _WRITE_AFTER:
            wrote = True
        if prv is not None and prv.kind == PUNCT and prv.text in _WRITE_BEFORE:
            wrote = True
        if not wrote:
            # Prefix increment through a member chain (`++obj.counter`):
            # walk back over the access chain and look for ++/--.
            j = i
            while j > 0 and (toks[j - 1].kind == IDENT or
                             (toks[j - 1].kind == PUNCT and
                              toks[j - 1].text in (".", "->"))):
                j -= 1
            if (j > 0 and j != i and toks[j - 1].kind == PUNCT and
                    toks[j - 1].text in ("++", "--")):
                wrote = True
        if not wrote:
            continue
        if (nxt is not None and nxt.kind == PUNCT and nxt.text == "=" and
                prv is not None and
                (prv.kind == IDENT or
                 (prv.kind == PUNCT and prv.text in ("*", "&", ">")))):
            # `Type name = ...` / `Type* name = ...`: a fresh local that
            # happens to share the counter's name, not a member write.
            continue
        if same_unit:
            continue  # the owning class's own accounting
        yield Finding(
            "INV001", sf.path, t.line, t.col,
            f"direct write to conserved counter `{t.text}` (declared at "
            f"{os.path.basename(decl_path)}:{decl_line}, `// lint:conserved`)"
            " from outside its owning translation unit bypasses the "
            "accounting invariant — go through the owning class's API")


# ---------------------------------------------------------------------------
# HDR001 — header hygiene.
# ---------------------------------------------------------------------------

_BANNED_HEADER_INCLUDES = {"iostream"}


def rule_hdr001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    if not sf.is_header():
        return
    has_guard = False
    for idx, raw in enumerate(sf.lines[:60], start=1):
        s = raw.strip()
        if s.startswith("#pragma") and "once" in s:
            has_guard = True
            break
        if s.startswith("#ifndef"):
            nxt = sf.lines[idx].strip() if idx < len(sf.lines) else ""
            if nxt.startswith("#define"):
                has_guard = True
                break
    if not has_guard:
        yield Finding("HDR001", sf.path, 1, 1,
                      "header has no `#pragma once` (or include guard)")
    for idx, raw in enumerate(sf.lines, start=1):
        s = raw.strip()
        if not s.startswith("#include"):
            continue
        for banned in _BANNED_HEADER_INCLUDES:
            if f"<{banned}>" in s:
                yield Finding(
                    "HDR001", sf.path, idx, raw.index("#") + 1,
                    f"`#include <{banned}>` in a header: drags iostream "
                    "static-init into every TU — include it in the .cpp, "
                    "or use <cstdio>")


# ---------------------------------------------------------------------------
# LNT001 — suppressions must carry a reason.
# ---------------------------------------------------------------------------


def rule_lnt001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    for s in sf.suppressions:
        if not s.reason:
            yield Finding(
                "LNT001", sf.path, s.line, 1,
                f"NOLINT-IBWAN({s.rule}) without a reason: suppressions "
                "must say why (`// NOLINT-IBWAN(RULE): reason`)")


RULES = {
    "DET001": rule_det001,
    "DET002": rule_det002,
    "DET003": rule_det003,
    "DET004": rule_det004,
    "DET005": rule_det005,
    "INV001": rule_inv001,
    "HDR001": rule_hdr001,
    "LNT001": rule_lnt001,
}

RULE_DOCS = {
    "DET001": "No banned nondeterminism APIs (rand/time/clocks; getenv "
              "only in bench::init).",
    "DET002": "No effectful iteration over unordered containers "
              "(schedule/trace/metrics/output in the loop body).",
    "DET003": "No ordering keyed on pointer values (std::map<T*,...>, "
              "std::less<T*>).",
    "DET004": "RNG draws must route through Simulator::rng()/rng_stream(); "
              "no <random> engines, no default-seeded sim::Rng locals.",
    "DET005": "Cross-site event injection must go through the WAN channel "
              "API; no site(i)/sim_of*/sim_for(...).schedule[_at](...).",
    "INV001": "Conserved counters (`// lint:conserved`) are written only "
              "by their owning translation unit.",
    "HDR001": "Headers carry `#pragma once`/include guards and never "
              "include <iostream>.",
    "LNT001": "Every NOLINT-IBWAN suppression carries a reason.",
}
