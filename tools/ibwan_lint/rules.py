"""Rule implementations for ibwan-lint.

Each rule is a callable `rule(sf: SourceFile, ctx: ProjectContext) ->
Iterable[Finding]`.  Findings are emitted *without* suppression applied;
the engine matches them against `// NOLINT-IBWAN(RULE): reason`
comments afterwards so suppressed findings can still be counted and
audited (`--show-suppressed`).

Rules never look at comments or string literals: they walk the token
stream, so `// calls rand()` in a comment is not a finding.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .lexer import CHAR, IDENT, NUMBER, PUNCT, STRING, Token
from .model import Finding, SourceFile
from . import index as index_mod
from .index import (FileSummary, MetricsDocs, ProjectIndex, build_summary,
                    unit_of)

# ---------------------------------------------------------------------------
# Project-wide context (built once over every scanned file).
# ---------------------------------------------------------------------------


@dataclass
class ProjectContext:
    """Cross-file facts rules need.  Since v2 this is a thin view over
    the pass-1 `ProjectIndex` (tools/ibwan_lint/index.py), which merges
    per-file summaries — possibly loaded from the content-hash cache
    instead of re-lexed files."""

    # Variable/member names declared with an unordered container type,
    # mapped to one declaration site (path, line) for the message.
    unordered_names: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    # Conserved counter members: name -> (declaring path, line).
    conserved: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    # The full pass-1 index (None only in degenerate direct calls).
    index: Optional[ProjectIndex] = None

    @staticmethod
    def from_index(idx: ProjectIndex) -> "ProjectContext":
        return ProjectContext(dict(idx.unordered_names),
                              dict(idx.conserved), idx)

    @staticmethod
    def build(files: Iterable[SourceFile],
              docs: Optional[MetricsDocs] = None) -> "ProjectContext":
        summaries = []
        for sf in files:
            if getattr(sf, "summary", None) is None:
                sf.summary = build_summary(sf)
            summaries.append(sf.summary)
        return ProjectContext.from_index(ProjectIndex.build(summaries, docs))


def _summary_of(sf: SourceFile) -> FileSummary:
    s = getattr(sf, "summary", None)
    if s is None:
        s = build_summary(sf)
        sf.summary = s
    return s


def _match_angle(toks: List[Token], i: int) -> int:
    """`toks[i]` is '<'; returns the index of its matching '>' (or the
    index where scanning gave up).  Treats '>>' as two closers."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return i
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return i
            elif t.text in (";", "{", "}"):
                return i  # not a template argument list after all
        i += 1
    return n - 1


# ---------------------------------------------------------------------------
# DET001 — banned nondeterminism APIs.
# ---------------------------------------------------------------------------

_BANNED_CALLS = {
    "rand": "libc rand() is seeded process-globally",
    "srand": "seeds the process-global libc RNG",
    "rand_r": "libc PRNG outside the simulator seed",
    "drand48": "libc PRNG outside the simulator seed",
    "lrand48": "libc PRNG outside the simulator seed",
    "random": "libc PRNG outside the simulator seed",
    "time": "reads the wall clock",
    "clock": "reads the process clock",
    "gettimeofday": "reads the wall clock",
    "clock_gettime": "reads the wall clock",
    "timespec_get": "reads the wall clock",
    "localtime": "depends on host time/zone",
    "gmtime": "depends on host time",
    "strftime": "formats host time",
}
_BANNED_TYPES = {
    "random_device": "std::random_device is nondeterministic by design",
}
_CHRONO_CLOCKS = {"system_clock", "steady_clock", "high_resolution_clock"}
# getenv is allowed only inside these functions (suffix match on the
# qualified enclosing-function name).
_GETENV_ALLOWED_SUFFIXES = ("bench::init",)
# Keywords that may directly precede a banned call without making it a
# declaration (`return time(...)` is a call; `Duration time(...)` is not).
_STMT_KEYWORDS = {"return", "co_return", "co_yield", "case", "else", "do",
                  "throw"}


def _prev_punct(toks: List[Token], i: int) -> str:
    return toks[i - 1].text if i > 0 and toks[i - 1].kind == PUNCT else ""


def _is_member_access(toks: List[Token], i: int) -> bool:
    p = _prev_punct(toks, i)
    if p in (".", "->"):
        return True
    # `foo::bar(` where foo is not std — treat as project-scoped, allowed
    # for the call names (DET bans the libc/std entry points).
    if p == "::":
        k = i - 2
        if k >= 0 and toks[k].kind == IDENT and toks[k].text != "std":
            return True
    return False


def rule_det001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        name = t.text
        if name in _BANNED_TYPES and not _is_member_access(toks, i):
            yield Finding("DET001", sf.path, t.line, t.col,
                          f"use of `{name}`: {_BANNED_TYPES[name]}; "
                          "draw from Simulator::rng()/rng_stream() instead")
            continue
        nxt = toks[i + 1] if i + 1 < n else None
        is_call = nxt is not None and nxt.kind == PUNCT and nxt.text == "("
        if name in _BANNED_CALLS and is_call and \
                not _is_member_access(toks, i):
            # `time(` as a declaration like `sim::Time time(...)`? The
            # banned set is only flagged as a *call*: preceded by an
            # operator/separator/statement keyword, not by a type name.
            if i > 0 and toks[i - 1].kind == IDENT and \
                    toks[i - 1].text not in _STMT_KEYWORDS:
                continue  # `Duration time(...)` — a declaration
            yield Finding("DET001", sf.path, t.line, t.col,
                          f"call to banned API `{name}`: "
                          f"{_BANNED_CALLS[name]}; simulation code must be "
                          "deterministic (use sim::Simulator time/RNG)")
            continue
        if name in _CHRONO_CLOCKS:
            # std::chrono::steady_clock::now()
            if i + 3 < n and toks[i + 1].text == "::" and \
                    toks[i + 2].kind == IDENT and toks[i + 2].text == "now":
                yield Finding("DET001", sf.path, t.line, t.col,
                              f"`{name}::now()` reads a host clock; "
                              "simulated time comes from Simulator::now()")
            continue
        if name == "getenv" and is_call:
            fn = sf.enclosing(i) or ""
            if any(fn.endswith(sfx) for sfx in _GETENV_ALLOWED_SUFFIXES):
                continue
            yield Finding("DET001", sf.path, t.line, t.col,
                          "`getenv` outside bench::init: environment reads "
                          "must be centralized in the bench entry hook "
                          f"(enclosing function: {fn or '<file scope>'})")


# ---------------------------------------------------------------------------
# DET002 — effectful iteration over unordered containers.
# ---------------------------------------------------------------------------

# Calls that schedule events, emit traces/metrics, or write output.
_EFFECT_CALLS = {
    "schedule", "schedule_at", "cancel", "fire", "resume", "trace",
    "record", "observe", "emit", "printf", "fprintf", "fputs", "fputc",
    "fwrite", "puts", "putc", "putchar", "write_csv", "write_json",
    "add_row", "append_row", "IBWAN_TRACE", "log_line", "flush_wqe",
    "post_send", "post_recv", "deliver", "send", "complete", "fail",
}
_EFFECT_PUNCT = {"<<"}  # stream output


def _iterated_name(expr: List[Token]) -> Optional[str]:
    """Name of the container in a range-for's range expression: the
    last identifier, skipping trailing () of accessor calls."""
    ids = [t.text for t in expr if t.kind == IDENT]
    return ids[-1] if ids else None


def _match_paren(toks: List[Token], i: int) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _match_brace(toks: List[Token], i: int) -> int:
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i
        i += 1
    return n - 1


def _body_effects(toks: List[Token], start: int, end: int) -> Optional[str]:
    for k in range(start, min(end + 1, len(toks))):
        t = toks[k]
        if t.kind == IDENT and t.text in _EFFECT_CALLS:
            nxt = toks[k + 1] if k + 1 < len(toks) else None
            if nxt is not None and nxt.kind == PUNCT and nxt.text == "(":
                return t.text
        if t.kind == PUNCT and t.text in _EFFECT_PUNCT:
            return "operator<<"
    return None


def rule_det002(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if not (t.kind == IDENT and t.text == "for"):
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = _match_paren(toks, i + 1)
        header = toks[i + 2:close]
        # Range-for: a ':' at top template/paren depth.
        colon = None
        depth = 0
        for k, h in enumerate(header):
            if h.kind == PUNCT:
                if h.text in ("(", "<", "["):
                    depth += 1
                elif h.text in (")", ">", "]"):
                    depth -= 1
                elif h.text == ":" and depth == 0:
                    colon = k
                elif h.text == "::":
                    continue
        if colon is None:
            # Iterator loop over `x.begin()`?
            name = _iter_loop_container(header)
            if name is None or name not in ctx.unordered_names:
                continue
        else:
            name = _iterated_name(header[colon + 1:])
            if name is None or name not in ctx.unordered_names:
                continue
        body_start = close + 1
        if body_start < n and toks[body_start].text == "{":
            body_end = _match_brace(toks, body_start)
        else:  # single statement
            body_end = body_start
            while body_end < n and toks[body_end].text != ";":
                body_end += 1
        effect = _body_effects(toks, body_start, body_end + 1)
        if effect is None:
            continue
        decl_path, decl_line = ctx.unordered_names[name]
        yield Finding(
            "DET002", sf.path, t.line, t.col,
            f"iteration over unordered container `{name}` (declared at "
            f"{os.path.basename(decl_path)}:{decl_line}) has side effects "
            f"(`{effect}`): hash order is not deterministic across "
            "platforms — use an ordered container or sort keys first")


def _iter_loop_container(header: List[Token]) -> Optional[str]:
    for k, h in enumerate(header):
        if h.kind == IDENT and h.text in ("begin", "cbegin") and k >= 2:
            if header[k - 1].kind == PUNCT and header[k - 1].text in (".", "->"):
                if header[k - 2].kind == IDENT:
                    return header[k - 2].text
    return None


# ---------------------------------------------------------------------------
# DET003 — ordering keyed on pointer values.
# ---------------------------------------------------------------------------

_ORDERED_ASSOC = {"map": 1, "multimap": 1, "set": 1, "multiset": 1,
                  "priority_queue": 1}


def _first_template_arg(toks: List[Token], lt: int) -> Tuple[List[Token], int]:
    """Tokens of the first template argument after '<' at index lt, and
    the number of top-level arguments."""
    depth = 0
    args = 1
    first: List[Token] = []
    i = lt
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == PUNCT:
            if t.text in ("<", "("):
                depth += 1
            elif t.text in (")",):
                depth -= 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    break
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    break
            elif t.text == "," and depth == 1:
                args += 1
                i += 1
                continue
        if depth >= 1 and args == 1 and i != lt:
            first.append(t)
        i += 1
    return first, args


def rule_det003(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        if t.text in _ORDERED_ASSOC:
            if i + 1 >= n or toks[i + 1].text != "<":
                continue
            # Only std:: (or unqualified) containers.
            if _prev_punct(toks, i) == "::" and i >= 2 and \
                    toks[i - 2].text != "std":
                continue
            first, nargs = _first_template_arg(toks, i + 1)
            if not first or first[-1].text != "*":
                continue
            three_arg = t.text in ("map", "multimap", "priority_queue")
            has_cmp = nargs >= (3 if three_arg else 2)
            if has_cmp:
                continue  # custom comparator: assume a stable key order
            yield Finding(
                "DET003", sf.path, t.line, t.col,
                f"`std::{t.text}` keyed on a pointer type "
                f"(`{''.join(tok.text for tok in first)}`): iteration order "
                "follows allocation addresses, which vary run to run — key "
                "on a stable id instead")
        elif t.text == "less" and i + 1 < n and toks[i + 1].text == "<":
            first, _ = _first_template_arg(toks, i + 1)
            if first and first[-1].text == "*":
                yield Finding(
                    "DET003", sf.path, t.line, t.col,
                    "`std::less` over a pointer type orders by address; "
                    "sort by a stable id instead")


# ---------------------------------------------------------------------------
# DET004 — RNG draws must route through the seeded simulator streams.
# ---------------------------------------------------------------------------

_STD_ENGINES = {"mt19937", "mt19937_64", "default_random_engine",
                "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48",
                "knuth_b"}


def rule_det004(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT:
            continue
        if t.text in _STD_ENGINES:
            yield Finding(
                "DET004", sf.path, t.line, t.col,
                f"`std::{t.text}`: <random> engines are "
                "implementation-defined and bypass the simulator seed; all "
                "draws must come from Simulator::rng()/rng_stream()")
            continue
        if t.text == "Rng" and sf.in_function(i):
            # Default-constructed sim::Rng inside a function: a fixed
            # default seed untied to the run seed. `Rng r(seed)` and
            # `Rng r = sim.rng_stream("x")` are fine.
            j = i + 1
            if j < n and toks[j].kind == IDENT:  # `Rng name ...`
                k = j + 1
                if k < n and toks[k].kind == PUNCT and toks[k].text == ";":
                    yield Finding(
                        "DET004", sf.path, t.line, t.col,
                        f"default-constructed sim::Rng `{toks[j].text}` uses "
                        "the fixed default seed; obtain it from "
                        "Simulator::rng_stream(name) or pass the run seed")
                elif k < n and toks[k].kind == PUNCT and \
                        toks[k].text in ("(", "{") and \
                        k + 1 < n and toks[k + 1].kind == PUNCT and \
                        toks[k + 1].text in (")", "}"):
                    yield Finding(
                        "DET004", sf.path, t.line, t.col,
                        f"sim::Rng `{toks[j].text}` constructed with no "
                        "seed; obtain it from Simulator::rng_stream(name) "
                        "or pass the run seed")


# ---------------------------------------------------------------------------
# DET005 — cross-site state access must go through the WAN channel API.
# ---------------------------------------------------------------------------

# Accessors that select a specific site's Simulator (sim::SiteEngine /
# net::Fabric / core::Testbed).
_SITE_SELECTORS = {"site", "sim_of", "sim_of_node", "sim_of_site", "sim_a",
                   "sim_b", "sim_for"}
# Methods that inject events into the selected site's queue.
_SITE_MUTATORS = {"schedule", "schedule_at"}


def rule_det005(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    """Flags `<selector>(...).schedule[_at](...)` chains: scheduling
    directly into a site picked by a site selector. Under site-parallel
    execution (DESIGN.md §13) the only legal way for causality to cross
    an LP boundary is the WAN channel (net::Link in channel mode /
    sim::SiteEngine::Channel); direct injection bypasses the
    conservative merge, so the event order — and with worker threads,
    memory safety — is no longer guaranteed. Wiring code that runs
    before the engine starts may suppress with a reason."""
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _SITE_SELECTORS:
            continue
        if i + 1 >= n or not (toks[i + 1].kind == PUNCT and
                              toks[i + 1].text == "("):
            continue
        close = _match_paren(toks, i + 1)
        j = close + 1
        if j + 2 >= n or toks[j].kind != PUNCT or \
                toks[j].text not in (".", "->"):
            continue
        m = toks[j + 1]
        if m.kind != IDENT or m.text not in _SITE_MUTATORS:
            continue
        if not (toks[j + 2].kind == PUNCT and toks[j + 2].text == "("):
            continue
        yield Finding(
            "DET005", sf.path, t.line, t.col,
            f"`{t.text}(...)`.{m.text}(...) schedules directly into a "
            "selected site's event queue: cross-site causality must cross "
            "the LP boundary through the WAN channel API (net::Link in "
            "channel mode) — direct injection bypasses the conservative "
            "merge and breaks determinism under --par-sites "
            "(DESIGN.md §13)")


# ---------------------------------------------------------------------------
# INV001 — conserved counters must not be written from outside their
# owning translation-unit pair.
# ---------------------------------------------------------------------------

_WRITE_AFTER = {"=", "+=", "-=", "*=", "/=", "++", "--"}
_WRITE_BEFORE = {"++", "--"}


def _owning_stems(decl_path: str) -> Set[str]:
    base = os.path.basename(decl_path)
    stem = base.rsplit(".", 1)[0]
    return {stem}


def rule_inv001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    if not ctx.conserved:
        return
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in ctx.conserved:
            continue
        decl_path, decl_line = ctx.conserved[t.text]
        decl_stem = os.path.basename(decl_path).rsplit(".", 1)[0]
        same_unit = (os.path.basename(sf.path).rsplit(".", 1)[0] == decl_stem)
        nxt = toks[i + 1] if i + 1 < n else None
        prv = toks[i - 1] if i > 0 else None
        wrote = False
        if nxt is not None and nxt.kind == PUNCT and nxt.text in _WRITE_AFTER:
            wrote = True
        if prv is not None and prv.kind == PUNCT and prv.text in _WRITE_BEFORE:
            wrote = True
        if not wrote:
            # Prefix increment through a member chain (`++obj.counter`):
            # walk back over the access chain and look for ++/--.
            j = i
            while j > 0 and (toks[j - 1].kind == IDENT or
                             (toks[j - 1].kind == PUNCT and
                              toks[j - 1].text in (".", "->"))):
                j -= 1
            if (j > 0 and j != i and toks[j - 1].kind == PUNCT and
                    toks[j - 1].text in ("++", "--")):
                wrote = True
        if not wrote:
            continue
        if (nxt is not None and nxt.kind == PUNCT and nxt.text == "=" and
                prv is not None and
                (prv.kind == IDENT or
                 (prv.kind == PUNCT and prv.text in ("*", "&", ">")))):
            # `Type name = ...` / `Type* name = ...`: a fresh local that
            # happens to share the counter's name, not a member write.
            continue
        if same_unit:
            continue  # the owning class's own accounting
        yield Finding(
            "INV001", sf.path, t.line, t.col,
            f"direct write to conserved counter `{t.text}` (declared at "
            f"{os.path.basename(decl_path)}:{decl_line}, `// lint:conserved`)"
            " from outside its owning translation unit bypasses the "
            "accounting invariant — go through the owning class's API")


# ---------------------------------------------------------------------------
# HDR001 — header hygiene.
# ---------------------------------------------------------------------------

_BANNED_HEADER_INCLUDES = {"iostream"}


def rule_hdr001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    if not sf.is_header():
        return
    has_guard = False
    for idx, raw in enumerate(sf.lines[:60], start=1):
        s = raw.strip()
        if s.startswith("#pragma") and "once" in s:
            has_guard = True
            break
        if s.startswith("#ifndef"):
            nxt = sf.lines[idx].strip() if idx < len(sf.lines) else ""
            if nxt.startswith("#define"):
                has_guard = True
                break
    if not has_guard:
        yield Finding("HDR001", sf.path, 1, 1,
                      "header has no `#pragma once` (or include guard)")
    for idx, raw in enumerate(sf.lines, start=1):
        s = raw.strip()
        if not s.startswith("#include"):
            continue
        for banned in _BANNED_HEADER_INCLUDES:
            if f"<{banned}>" in s:
                yield Finding(
                    "HDR001", sf.path, idx, raw.index("#") + 1,
                    f"`#include <{banned}>` in a header: drags iostream "
                    "static-init into every TU — include it in the .cpp, "
                    "or use <cstdio>")


# ---------------------------------------------------------------------------
# LNT001 — suppressions must carry a reason.
# ---------------------------------------------------------------------------


def rule_lnt001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    for s in sf.suppressions:
        if not s.reason:
            yield Finding(
                "LNT001", sf.path, s.line, 1,
                f"NOLINT-IBWAN({s.rule}) without a reason: suppressions "
                "must say why (`// NOLINT-IBWAN(RULE): reason`)")


# ---------------------------------------------------------------------------
# CONC001 — site selection flowing into the scheduler through a call
# chain (DET005 deepened with the pass-1 call graph).
# ---------------------------------------------------------------------------


def _enclosing_call_name(toks: List[Token], i: int) -> Optional[str]:
    """Name of the call whose argument list contains token i, or None
    when i is not inside a call's parentheses (statement boundary hit
    first)."""
    depth = 0
    k = i - 1
    while k >= 0:
        t = toks[k]
        if t.kind == PUNCT:
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                if depth == 0:
                    if k > 0 and toks[k - 1].kind == IDENT:
                        return toks[k - 1].text
                    return None
                depth -= 1
            elif depth == 0 and t.text in (";", "{", "}"):
                return None
        k -= 1
    return None


def rule_conc001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    """DET005 catches `site(i).schedule(...)` in one expression.  With
    the pass-1 call graph we can also catch the indirect forms: calling
    a method on a selected site that *transitively* reaches
    schedule/schedule_at, and passing a selected site's Simulator into
    a free function that does.  Functions that take a `SiteEngine`
    parameter are engine-aware runners (they own the cross-LP
    coordination) and are exempt."""
    idx = ctx.index
    if idx is None:
        return
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _SITE_SELECTORS:
            continue
        if i + 1 >= n or not (toks[i + 1].kind == PUNCT and
                              toks[i + 1].text == "("):
            continue
        close = _match_paren(toks, i + 1)
        j = close + 1
        # Chain form: selector(...).m(...) where m reaches the
        # scheduler through its body (DET005 already owns m being
        # schedule/schedule_at itself).
        if j + 2 < n and toks[j].kind == PUNCT and \
                toks[j].text in (".", "->") and \
                toks[j + 1].kind == IDENT and \
                toks[j + 2].kind == PUNCT and toks[j + 2].text == "(":
            m = toks[j + 1].text
            if m not in _SITE_MUTATORS and m in idx.reaches_schedule:
                yield Finding(
                    "CONC001", sf.path, t.line, t.col,
                    f"`{t.text}(...)`.{m}(...) reaches "
                    "Simulator::schedule through the call graph "
                    f"(`{m}` -> ... -> schedule): cross-site causality "
                    "must cross the LP boundary through the WAN channel "
                    "API, not a call chain into another site's queue "
                    "(DESIGN.md §13)")
                continue
        # Argument form: f(selector(...), ...) where f reaches the
        # scheduler and is not an engine-aware runner.
        caller = _enclosing_call_name(toks, i)
        if caller and caller not in _SITE_SELECTORS and \
                caller not in _SITE_MUTATORS and \
                caller in idx.reaches_schedule and \
                caller not in idx.engine_aware:
            yield Finding(
                "CONC001", sf.path, t.line, t.col,
                f"`{t.text}(...)` passed to `{caller}`, which reaches "
                "Simulator::schedule: the callee will inject events into "
                "the selected site's queue without crossing a Channel — "
                "make it engine-aware (take the SiteEngine) or route "
                "through the WAN channel API (DESIGN.md §13)")


# ---------------------------------------------------------------------------
# CONC002 — site-local resources captured into cross-site callbacks.
# ---------------------------------------------------------------------------

# Types whose instances belong to exactly one LP.  A Channel::push
# callback runs when the *destination* site pops the event, so touching
# the source site's Simulator/metrics/traces/RNG from it is a data race
# under --par-sites.
_CONC002_TYPES = {"Simulator", "MetricsRegistry", "FlightRecorder", "Rng"}


def rule_conc002(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    idx = ctx.index
    if idx is None:
        return
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text != "push":
            continue
        if _prev_punct(toks, i) not in (".", "->"):
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = _match_paren(toks, i + 1)
        # Find lambda arguments: a '[' at paren depth 1.
        depth = 0
        k = i + 1
        while k <= close:
            tk = toks[k]
            if tk.kind == PUNCT:
                if tk.text == "(":
                    depth += 1
                elif tk.text == ")":
                    depth -= 1
                elif tk.text == "[" and depth == 1:
                    # Capture list: idents up to the matching ']'.
                    j = k + 1
                    while j < n and not (toks[j].kind == PUNCT and
                                         toks[j].text == "]"):
                        cj = toks[j]
                        if cj.kind == IDENT and cj.text != "this" and \
                                cj.text in idx.resource_vars:
                            ty, dp, dl = idx.resource_vars[cj.text]
                            if ty in _CONC002_TYPES:
                                yield Finding(
                                    "CONC002", sf.path, cj.line, cj.col,
                                    f"site-local `{ty}` `{cj.text}` "
                                    f"(declared at "
                                    f"{os.path.basename(dp)}:{dl}) captured "
                                    "into a Channel::push callback: the "
                                    "callback runs on the destination LP, "
                                    "so this touches another site's state "
                                    "without crossing the channel — capture "
                                    "plain data and resolve the resource on "
                                    "the receiving side (DESIGN.md §13)")
                        j += 1
                    k = j
            k += 1


# ---------------------------------------------------------------------------
# CONC003 — mutable static state breaks site-parallel determinism.
# ---------------------------------------------------------------------------

# bench/examples/tools are single-threaded drivers; the rule guards the
# library code that runs inside LPs.
_CONC003_EXEMPT_ROOTS = {"bench", "examples", "tools"}
_CONST_QUALS = {"const", "constexpr", "constinit"}


def rule_conc003(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    if _CONC003_EXEMPT_ROOTS & set(os.path.normpath(sf.path).split(os.sep)):
        return
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in ("static", "thread_local"):
            continue
        # `static thread_local X` — report once, at the first keyword.
        if i > 0 and toks[i - 1].kind == IDENT and \
                toks[i - 1].text in ("static", "thread_local"):
            continue
        is_const = False
        is_func = False
        name = None
        j = i + 1
        while j < n:
            tj = toks[j]
            if tj.kind == IDENT:
                if tj.text in _CONST_QUALS:
                    is_const = True
                name = tj.text
            elif tj.kind == PUNCT:
                if tj.text == "<":
                    j = _match_angle(toks, j)
                elif tj.text == "(":
                    is_func = True
                    break
                elif tj.text in (";", "=", "{"):
                    break
            j += 1
        if is_func or is_const or name is None:
            continue
        kw = t.text
        if i + 1 < n and toks[i + 1].kind == IDENT and \
                toks[i + 1].text in ("static", "thread_local"):
            kw = f"{kw} {toks[i + 1].text}"
        yield Finding(
            "CONC003", sf.path, t.line, t.col,
            f"mutable `{kw}` state `{name}`: function-local/namespace "
            "statics are shared across LPs and break determinism (or "
            "race outright) under --par-sites — move the state into the "
            "per-site Simulator/owning object, or suppress with the "
            "single-threaded-setup reason if it is only touched before "
            "the engine starts")


# ---------------------------------------------------------------------------
# UNIT001 — arithmetic mixing inferred time/byte/rate dimensions.
# ---------------------------------------------------------------------------

_UNIT_MIX_OPS = {"+", "-", "+=", "-=", "=", "<", ">", "<=", ">=",
                 "==", "!="}
_DIMENSION = {"ns": "time", "us": "time", "ms": "time",
              "bytes": "bytes", "per_s": "rate"}
# Multiplicative neighbors make the operand's dimension ambiguous
# (`bytes + rate * time` is fine); member/scope access re-types it.
_GUARD_BEFORE = {"*", "/", ".", "->", "::"}
_GUARD_AFTER = {"*", "/", ".", "->", "::", "("}


def rule_unit001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    idx = ctx.index
    var_units = idx.var_units if idx is not None else {}
    toks = sf.tokens
    n = len(toks)
    for i in range(1, n - 1):
        op = toks[i]
        if op.kind != PUNCT or op.text not in _UNIT_MIX_OPS:
            continue
        a, b = toks[i - 1], toks[i + 1]
        if a.kind != IDENT or b.kind != IDENT:
            continue
        ua = unit_of(a.text) or var_units.get(a.text)
        ub = unit_of(b.text) or var_units.get(b.text)
        if ua is None or ub is None or ua == ub:
            continue
        if i >= 2 and toks[i - 2].kind == PUNCT and \
                toks[i - 2].text in ("*", "/"):
            continue  # `c * a_unit OP b` — a's term has another dimension
        if i + 2 < n and toks[i + 2].kind == PUNCT and \
                toks[i + 2].text in _GUARD_AFTER:
            continue  # `a OP b_unit * c` / `a OP b.member(...)`
        da, db = _DIMENSION[ua], _DIMENSION[ub]
        if da != db:
            yield Finding(
                "UNIT001", sf.path, op.line, op.col,
                f"`{a.text} {op.text} {b.text}` mixes "
                f"{index_mod.UNIT_HUMAN[ua]} with "
                f"{index_mod.UNIT_HUMAN[ub]}: both sides are plain "
                "integers, so nothing stops this dimensional error — "
                "convert explicitly or fix the operand")
        else:
            yield Finding(
                "UNIT001", sf.path, op.line, op.col,
                f"`{a.text} {op.text} {b.text}` mixes "
                f"{index_mod.UNIT_HUMAN[ua]} with "
                f"{index_mod.UNIT_HUMAN[ub]}: same dimension, different "
                "scale — convert explicitly (e.g. `* 1000`) so the "
                "factor is visible")


# ---------------------------------------------------------------------------
# UNIT002 — raw time literals in schedule/delay positions.
# ---------------------------------------------------------------------------

_TIME_CONSTS = {"kNanosecond", "kMicrosecond", "kMillisecond", "kSecond"}
# An explicit cast/construction to the time types is an explicit unit
# statement (Duration is defined as nanoseconds).
_TIME_TYPES = {"Duration", "Time"}


def _is_unitized_number(text: str) -> bool:
    return text.endswith(("_ns", "_us", "_ms", "_s"))


def _raw_number_value(text: str) -> Optional[int]:
    t = text.replace("'", "").rstrip("uUlL")
    try:
        return int(t, 0)
    except ValueError:
        return None


def rule_unit002(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    toks = sf.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text not in _SITE_MUTATORS:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue
        close = _match_paren(toks, i + 1)
        # First top-level argument.
        arg: List[Token] = []
        depth = 0
        for k in range(i + 2, close):
            tk = toks[k]
            if tk.kind == PUNCT:
                if tk.text in ("(", "[", "{"):
                    depth += 1
                elif tk.text in (")", "]", "}"):
                    depth -= 1
                elif tk.text == "," and depth == 0:
                    break
            arg.append(tk)
        if not arg:
            continue
        has_marker = any(
            (tk.kind == NUMBER and _is_unitized_number(tk.text)) or
            (tk.kind == IDENT and
             (tk.text in _TIME_CONSTS or tk.text in _TIME_TYPES or
              (unit_of(tk.text) in ("ns", "us", "ms"))))
            for tk in arg)
        if has_marker:
            continue
        for tk in arg:
            if tk.kind != NUMBER or _is_unitized_number(tk.text):
                continue
            v = _raw_number_value(tk.text)
            if v == 0:
                continue  # zero is scale-free ("now")
            yield Finding(
                "UNIT002", sf.path, tk.line, tk.col,
                f"raw literal `{tk.text}` in a {t.text}() delay position: "
                "nothing says whether this is ns, us or ms — use the "
                "unit literals (`100_ns`, `10_us`; "
                "`using namespace sim::literals`) or the kNanosecond/"
                "kMicrosecond/kMillisecond constants")
            break  # one finding per call is enough


# ---------------------------------------------------------------------------
# SCHEMA001 — metric/trace names must match docs/METRICS.md, both ways.
# ---------------------------------------------------------------------------


def rule_schema001(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    """Source side: every metric registration whose scope resolves to a
    `.../layer` string, and every flight-recorder kind, must have a
    docs/METRICS.md row with the same kind and unit.  The docs side
    (documented-but-unregistered rows) is checked once per run by
    `project_schema001`.  Needs `--metrics-docs`; silent without it."""
    idx = ctx.index
    docs = idx.docs if idx is not None else None
    if docs is None:
        return
    summary = _summary_of(sf)
    for m in summary.metrics:
        if m["layer"] is None:
            continue  # scope not statically resolvable (e.g. a param)
        key = f"{m['layer']}/{m['leaf']}"
        row = docs.metrics.get(key)
        if row is None:
            yield Finding(
                "SCHEMA001", sf.path, m["line"], 1,
                f"metric `{key}` ({m['kind']}, {m['unit']}) is registered "
                f"here but has no row in {docs.path} — document it in the "
                "metric inventory")
        elif (row[0], row[1]) != (m["kind"], m["unit"]):
            yield Finding(
                "SCHEMA001", sf.path, m["line"], 1,
                f"metric `{key}` is registered as ({m['kind']}, "
                f"{m['unit']}) but {docs.path}:{row[2]} documents "
                f"({row[0]}, {row[1]}) — the schema and the code "
                "disagree")
    for name, line in summary.traces:
        if name == "?":
            continue  # the unknown-kind fallback arm
        if name not in docs.traces:
            yield Finding(
                "SCHEMA001", sf.path, line, 1,
                f"trace kind `{name}` is emitted by the flight recorder "
                f"but has no row in the {docs.path} flight-recorder "
                "table — document it")


def project_schema001(ctx: ProjectContext) -> Iterable[Finding]:
    """Docs-side SCHEMA001: rows documenting metrics/trace kinds that no
    scanned source registers.  Anchored at the stale docs row."""
    idx = ctx.index
    docs = idx.docs if idx is not None else None
    if docs is None:
        return
    unresolved_leaves = {k.split("/", 1)[1]
                        for k in idx.metric_regs if k.startswith("?/")}
    for key, (kind, unit, line) in sorted(docs.metrics.items()):
        if key in idx.metric_regs:
            continue
        leaf = key.rsplit("/", 1)[1]
        if leaf in unresolved_leaves:
            continue  # registered somewhere under a dynamic scope
        yield Finding(
            "SCHEMA001", docs.path, line, 1,
            f"documented metric `{key}` ({kind}, {unit}) is not "
            "registered anywhere in the scanned sources — delete the "
            "row or restore the metric")
    for name, line in sorted(docs.traces.items()):
        if name not in idx.trace_kinds:
            yield Finding(
                "SCHEMA001", docs.path, line, 1,
                f"documented trace kind `{name}` is not produced by "
                "trace_kind_name() — delete the row or restore the kind")


# ---------------------------------------------------------------------------
# SCHEMA002 — metric/trace names must match the naming grammar.
# ---------------------------------------------------------------------------


def rule_schema002(sf: SourceFile, ctx: ProjectContext) -> Iterable[Finding]:
    summary = _summary_of(sf)
    for m in summary.metrics:
        if m["layer"] is not None and \
                not index_mod.LAYER_GRAMMAR.match(m["layer"]):
            yield Finding(
                "SCHEMA002", sf.path, m["line"], 1,
                f"metric layer `{m['layer']}` violates the naming "
                "grammar `layer.component` (lowercase dot-separated "
                "segments, e.g. `net.link`, `ib.rc`)")
        if not index_mod.LEAF_GRAMMAR.match(m["leaf"]):
            yield Finding(
                "SCHEMA002", sf.path, m["line"], 1,
                f"metric name `{m['leaf']}` violates the naming grammar "
                "`[a-z0-9_]+` (lowercase snake_case)")
    for name, line in summary.traces:
        if name == "?":
            continue
        if not index_mod.TRACE_GRAMMAR.match(name):
            yield Finding(
                "SCHEMA002", sf.path, line, 1,
                f"trace kind `{name}` violates the naming grammar "
                "`[a-z0-9]+(-[a-z0-9]+)*` (lowercase kebab-case)")


RULES = {
    "DET001": rule_det001,
    "DET002": rule_det002,
    "DET003": rule_det003,
    "DET004": rule_det004,
    "DET005": rule_det005,
    "CONC001": rule_conc001,
    "CONC002": rule_conc002,
    "CONC003": rule_conc003,
    "UNIT001": rule_unit001,
    "UNIT002": rule_unit002,
    "SCHEMA001": rule_schema001,
    "SCHEMA002": rule_schema002,
    "INV001": rule_inv001,
    "HDR001": rule_hdr001,
    "LNT001": rule_lnt001,
}

# Rules that run once per project (not per file); keyed by the same ids
# so `--rules` selection covers both halves.
PROJECT_RULES = {
    "SCHEMA001": project_schema001,
}

RULE_DOCS = {
    "DET001": "No banned nondeterminism APIs (rand/time/clocks; getenv "
              "only in bench::init).",
    "DET002": "No effectful iteration over unordered containers "
              "(schedule/trace/metrics/output in the loop body).",
    "DET003": "No ordering keyed on pointer values (std::map<T*,...>, "
              "std::less<T*>).",
    "DET004": "RNG draws must route through Simulator::rng()/rng_stream(); "
              "no <random> engines, no default-seeded sim::Rng locals.",
    "DET005": "Cross-site event injection must go through the WAN channel "
              "API; no site(i)/sim_of*/sim_for(...).schedule[_at](...).",
    "CONC001": "No call chain from a site selector into another site's "
               "scheduler (call-graph-deep DET005); engine-aware "
               "functions taking a SiteEngine are exempt.",
    "CONC002": "No site-local Simulator/MetricsRegistry/FlightRecorder/"
               "Rng captured into Channel::push callbacks (they run on "
               "the destination LP).",
    "CONC003": "No mutable function-local/namespace static state in "
               "library code: statics are shared across LPs under "
               "--par-sites.",
    "UNIT001": "No arithmetic/assignment mixing inferred time/byte/rate "
               "units (`_ns`/`_bytes`/`_per_s` suffix inference).",
    "UNIT002": "No raw numeric literals in schedule()/schedule_at() "
               "delay positions; use `_ns`/`_us`/`_ms` literals or the "
               "kNanosecond-family constants.",
    "SCHEMA001": "Metric and trace names must match docs/METRICS.md "
                 "rows both ways (kind and unit included); needs "
                 "--metrics-docs.",
    "SCHEMA002": "Metric layers are lowercase dot-separated, leaves "
                 "snake_case, trace kinds kebab-case.",
    "INV001": "Conserved counters (`// lint:conserved`) are written only "
              "by their owning translation unit.",
    "HDR001": "Headers carry `#pragma once`/include guards and never "
              "include <iostream>.",
    "LNT001": "Every NOLINT-IBWAN suppression carries a reason.",
}
