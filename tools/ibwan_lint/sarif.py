"""SARIF 2.1.0 output for GitHub code scanning.

One run, one tool (`ibwan-lint`), one rule entry per catalogued rule,
one result per finding.  Suppressed findings are emitted with a SARIF
`suppressions` entry (kind "inSource") so code scanning shows them as
reviewed rather than open.
"""

from __future__ import annotations

import json
from typing import List

from . import __version__
from .model import Finding
from .rules import RULE_DOCS

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

# GitHub maps SARIF levels onto annotation severities; everything this
# linter ships is a correctness invariant, so findings are errors.
_LEVEL = "error"


def to_sarif(findings: List[Finding]) -> dict:
    rules = [
        {
            "id": rid,
            "name": rid,
            "shortDescription": {"text": doc},
            "defaultConfiguration": {"level": _LEVEL},
        }
        for rid, doc in sorted(RULE_DOCS.items())
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": _LEVEL,
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": max(1, f.col),
                    },
                },
            }],
        }
        if f.suppressed:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": f.suppress_reason,
            }]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "ibwan-lint",
                    "version": __version__,
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file:///"},
            },
            "results": results,
        }],
    }


def write_sarif(findings: List[Finding], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings), fh, indent=2, sort_keys=True)
        fh.write("\n")
