// Ablation: the adaptive rendezvous-threshold policy against fixed
// settings across the whole delay grid. Figure 9 tunes one point by
// hand; the paper suggests "adaptive tuning of MPI protocol ... likely
// to yield the best performance" — this bench shows the policy tracks
// the best fixed setting everywhere.
#include "bench_common.hpp"
#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"
#include "core/wan_opt.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Ablation: adaptive rendezvous threshold vs fixed (16 KB "
      "messages, MillionBytes/s)");

  const core::AdaptiveRendezvousThreshold policy;
  const int iters = 5 * bench::scale();

  bench::SweepRunner runner;
  const auto results =
      runner.map(bench::delay_grid(), [&](sim::Duration delay) {
        bench::Rows rows;
        const double x = static_cast<double>(delay) / 1000.0;
        const sim::Duration rtt = 2 * delay + 15'000;  // wire + fabric
        const std::uint64_t adaptive = policy.threshold_for_rtt(rtt);

        core::mpibench::OsuConfig base{.msg_size = 16 << 10,
                                       .window = 64,
                                       .iterations = iters};
        {
          core::Testbed tb(1, delay);
          auto cfg = base;
          cfg.rendezvous_threshold = 8 << 10;
          rows.push_back({"fixed-8K", x, core::mpibench::osu_bw(tb, cfg)});
        }
        {
          core::Testbed tb(1, delay);
          auto cfg = base;
          cfg.rendezvous_threshold = 64 << 10;
          rows.push_back({"fixed-64K", x, core::mpibench::osu_bw(tb, cfg)});
        }
        {
          core::Testbed tb(1, delay);
          auto cfg = base;
          cfg.rendezvous_threshold = adaptive;
          rows.push_back({"adaptive", x, core::mpibench::osu_bw(tb, cfg)});
        }
        return rows;
      });

  core::Table table("osu_bw at 16 KB by threshold policy", "delay_us");
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& row : results[i]) table.add(row.series, row.x, row.y);
    const double x = results[i].front().x;
    std::printf("  delay %8.0fus -> adaptive threshold %llu KB\n", x,
                static_cast<unsigned long long>(
                    policy.threshold_for_rtt(2 * bench::delay_grid()[i] +
                                             15'000) >>
                    10));
  }
  bench::finish(table, "ablation_adaptive_threshold");
  std::printf(
      "\nReading: fixed-8K loses badly at long delays (handshake-bound).\n"
      "The adaptive policy keeps the LAN default at short range and\n"
      "tracks the best fixed setting once the WAN dominates.\n");

  // Oracle audit: wire-rate bound everywhere, and the adaptive policy
  // must track the best fixed setting once the WAN dominates — that
  // claim is this bench's reason to exist. (At short range the policy
  // deliberately keeps the LAN default, which may trail fixed-64K.)
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      const std::string ctx =
          "ablation_adaptive_threshold " + bench::delay_label(delay);
      const double fixed8 = table.series("fixed-8K").at(x);
      const double fixed64 = table.series("fixed-64K").at(x);
      const double adaptive = table.series("adaptive").at(x);
      check::check_mpi_bw(report, ctx, fc, delay, fixed8, tol);
      check::check_mpi_bw(report, ctx, fc, delay, fixed64, tol);
      check::check_mpi_bw(report, ctx, fc, delay, adaptive, tol);
      if (delay >= 100'000) {
        report.expect_ge("adaptive-tracks-best", ctx, adaptive,
                         std::max(fixed8, fixed64), 0.05);
      }
    }
  }
  return bench::selfcheck_exit();
}
