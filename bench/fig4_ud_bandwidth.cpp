// Figure 4: verbs-level UD throughput vs message size, one curve per
// emulated WAN delay. (a) unidirectional, (b) bidirectional.
//
// Expected shape: curves for every delay coincide — UD has no
// acknowledgements, so the pipe is always full; peak ~967 MB/s at 2 KB
// and ~1930 MB/s bidirectional.
#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"

using namespace ibwan;
using ib::perftest::Transport;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner("Figure 4: Verbs-level throughput using UD (MillionBytes/s)");

  struct DelayResult {
    bench::Rows uni, bidir;
  };
  bench::SweepRunner runner;
  const auto results =
      runner.map(bench::delay_grid(), [](sim::Duration delay) {
        DelayResult r;
        const std::string label = bench::delay_label(delay);
        for (std::uint32_t size : {2u, 16u, 128u, 512u, 1024u, 2048u}) {
          const int iters = ib::perftest::iters_for_bytes(
              (4u << 20) * bench::scale(), size, 256, 8192);
          {
            core::Testbed tb(1, delay);
            r.uni.push_back(
                {label, static_cast<double>(size),
                 ib::perftest::run_bandwidth(
                     tb.fabric(), tb.node_a(), tb.node_b(), Transport::kUd,
                     {.msg_size = size, .iterations = iters})
                     .mbytes_per_sec});
          }
          {
            core::Testbed tb(1, delay);
            r.bidir.push_back(
                {label, static_cast<double>(size),
                 ib::perftest::run_bidir_bandwidth(
                     tb.fabric(), tb.node_a(), tb.node_b(), Transport::kUd,
                     {.msg_size = size, .iterations = iters})
                     .mbytes_per_sec});
          }
        }
        return r;
      });

  core::Table uni("(a) UD bandwidth", "msg_bytes");
  core::Table bidir("(b) UD bidirectional bandwidth", "msg_bytes");
  for (const auto& r : results) {
    for (const auto& row : r.uni) uni.add(row.series, row.x, row.y);
    for (const auto& row : r.bidir) bidir.add(row.series, row.x, row.y);
  }
  bench::finish(uni, "fig4a_ud_bw");
  bench::finish(bidir, "fig4b_ud_bibw");

  // Oracle audit: every delay curve must equal the exact UD engine/wire
  // model — identical curves across delays IS Figure 4's claim. The
  // bidirectional run is bounded by twice the model and can't fall
  // below the unidirectional measurement.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const std::string label = bench::delay_label(delay);
      for (std::uint32_t size : {2u, 16u, 128u, 512u, 1024u, 2048u}) {
        const std::string ctx =
            "fig4 " + label + " " + std::to_string(size) + "B";
        const double model = check::ud_bw_model_mbps(fc, {}, size);
        const double uni_mbps = uni.series(label).at(size);
        const double bidir_mbps = bidir.series(label).at(size);
        report.expect_near("ud-bw-model", ctx, uni_mbps, model,
                           tol.exact_rel);
        report.expect_le("ud-bibw-bound", ctx, bidir_mbps, 2.0 * model,
                         tol.bound_slack);
        report.expect_ge("ud-bibw-floor", ctx, bidir_mbps, uni_mbps,
                         tol.monotone_rel);
      }
    }
  }
  return bench::selfcheck_exit();
}
