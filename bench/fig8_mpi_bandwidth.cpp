// Figure 8: MPI-level throughput (MVAPICH2-style library) vs message
// size, one curve per WAN delay. (a) osu_bw, (b) osu_bibw.
//
// Expected shape: mirrors the verbs RC curves (peak ~969 MB/s) with an
// additional dip for medium messages — the rendezvous handshake costs a
// round trip, which is what Figure 9 then tunes away.
#include "bench_common.hpp"
#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Figure 8: MPI-level throughput using MVAPICH2-style library "
      "(MillionBytes/s)");

  const std::vector<std::uint64_t> sizes = {
      1u << 10, 4u << 10, 16u << 10, 64u << 10,
      256u << 10, 1u << 20, 4u << 20};

  struct DelayResult {
    bench::Rows uni, bidir;
  };
  bench::SweepRunner runner;
  const auto results =
      runner.map(bench::delay_grid(), [&](sim::Duration delay) {
        DelayResult r;
        const std::string label = bench::delay_label(delay);
        for (std::uint64_t size : sizes) {
          const int window = size >= (1u << 20) ? 16 : 64;
          const int iters =
              std::max<int>(2, static_cast<int>(((8u << 20) * bench::scale()) /
                                                (size * window)));
          {
            core::Testbed tb(1, delay);
            r.uni.push_back({label, static_cast<double>(size),
                             core::mpibench::osu_bw(tb, {.msg_size = size,
                                                         .window = window,
                                                         .iterations = iters})});
          }
          {
            core::Testbed tb(1, delay);
            r.bidir.push_back(
                {label, static_cast<double>(size),
                 core::mpibench::osu_bibw(tb, {.msg_size = size,
                                               .window = window,
                                               .iterations = iters})});
          }
        }
        return r;
      });

  core::Table uni("(a) MPI bandwidth", "msg_bytes");
  core::Table bidir("(b) MPI bidirectional bandwidth", "msg_bytes");
  for (const auto& r : results) {
    for (const auto& row : r.uni) uni.add(row.series, row.x, row.y);
    for (const auto& row : r.bidir) bidir.add(row.series, row.x, row.y);
  }
  bench::finish(uni, "fig8a_mpi_bw");
  bench::finish(bidir, "fig8b_mpi_bibw");

  // Oracle audit: MPI payload throughput can never exceed the wire
  // (headers and handshakes only subtract), in either direction.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const std::string label = bench::delay_label(delay);
      for (std::uint64_t size : sizes) {
        const std::string ctx =
            "fig8 " + label + " " + std::to_string(size) + "B";
        check::check_mpi_bw(report, ctx, fc, delay,
                            uni.series(label).at(static_cast<double>(size)),
                            tol);
        report.expect_le(
            "mpi-bibw-bound", ctx,
            bidir.series(label).at(static_cast<double>(size)),
            2.0 * 1000.0 * check::cross_wan_path(fc).wan_rate,
            tol.bound_slack);
      }
    }
  }
  return bench::selfcheck_exit();
}
