// Figure 12: NAS class-B benchmarks across the WAN, 2 x 32 processes,
// runtime vs emulated delay (normalized to the 0-delay run).
//
// Expected shape: IS and FT stay near 1.0 out to ~1 ms (their traffic is
// dominated by large messages: 100% and 83% respectively per the
// paper's profile); CG degrades markedly (latency-bound dot-product
// allreduces); EP is flat. Timed iterations are truncated and projected
// per iteration (IBWAN_FULL=1 runs more).
#include "apps/nas.hpp"
#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "mpi/mpi.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Figure 12: NAS class-B benchmarks, 2 x 32 processes "
      "(projected runtime, s; and ratio vs 0-delay)");

  const int per_cluster = 32;
  const int iters = bench::scale() > 1 ? 4 : 2;
  apps::NasConfig cfg{.cls = apps::NasClass::kB, .iterations = iters};
  const std::vector<apps::NasBenchmark> benches = {
      apps::make_is(cfg), apps::make_ft(cfg), apps::make_cg(cfg),
      apps::make_mg(cfg), apps::make_ep(cfg), apps::make_lu(cfg),
      apps::make_bt(cfg)};

  // One sweep point per benchmark: the point walks the whole delay grid
  // so the 0-delay base for the ratio stays local to the worker.
  struct BenchResult {
    bench::Rows runtime, ratio;
  };
  bench::SweepRunner runner;
  const auto results = runner.map(benches, [&](const apps::NasBenchmark& b) {
    BenchResult r;
    double base = 0;
    for (sim::Duration delay : bench::delay_grid()) {
      core::Testbed tb(per_cluster, delay);
      mpi::Job job(tb.fabric(),
                   mpi::Job::split_placement(tb.fabric(), per_cluster));
      const double secs = apps::run_nas(job, b);
      if (delay == 0) base = secs;
      const double x = static_cast<double>(delay) / 1000.0;
      r.runtime.push_back({b.name, x, secs});
      r.ratio.push_back({b.name, x, base > 0 ? secs / base : 0.0});
    }
    return r;
  });

  core::Table runtime("projected runtime (s)", "delay_us");
  core::Table ratio("runtime ratio vs 0-delay", "delay_us");
  for (const auto& r : results) {
    for (const auto& row : r.runtime) runtime.add(row.series, row.x, row.y);
    for (const auto& row : r.ratio) ratio.add(row.series, row.x, row.y);
  }
  bench::finish(runtime, "fig12_nas_runtime");
  ratio.print("%12.3f");
  ratio.write_csv("fig12_nas_ratio.csv");

  // Oracle audit: the ratio table bypasses finish() (custom print
  // format), so replicate its generic sanity sweep; additionally no
  // benchmark may speed up when delay is added.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const check::Tolerances tol;
    for (const auto& s : ratio.all_series()) {
      for (const auto& [x, y] : s.points) {
        report.expect_true("table-sane",
                           "fig12_nas_ratio " + s.name + " x=" +
                               std::to_string(x),
                           std::isfinite(y) && y >= 0.0,
                           "y=" + std::to_string(y));
        report.expect_ge("nas-slowdown-floor",
                         "fig12_nas_ratio " + s.name + " x=" +
                             std::to_string(x),
                         y, 1.0, tol.monotone_rel);
      }
    }
  }
  return bench::selfcheck_exit();
}
