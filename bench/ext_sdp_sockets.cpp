// Extension: Sockets Direct Protocol vs IPoIB across WAN delays
// (the related-work comparison [19], regenerated on this stack).
//
// Expected shape: SDP runs near verbs bandwidth at short range (zero
// copy), then falls onto the RC window bound over long delays, while
// IPoIB stays stack-limited everywhere.
#include "bench_common.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "sdp/sdp.hpp"

using namespace ibwan;

namespace {

double sdp_throughput(core::Testbed& tb, std::uint64_t bytes) {
  ib::Hca hca_a(tb.fabric().node(tb.node_a()), {});
  ib::Hca hca_b(tb.fabric().node(tb.node_b()), {});
  sdp::SdpStack client(hca_a);
  sdp::SdpStack server(hca_b);
  server.listen(22, [](sdp::SdpConnection&) {});
  sdp::SdpConnection& c = client.connect(server, 22);
  c.send(bytes);
  sim::Time done = 0;
  // on_acked fires on the client's site, whose clock is tb.sim().
  c.set_on_acked([&](std::uint64_t acked) {
    if (acked == bytes) done = tb.sim().now();
  });
  tb.run();
  return static_cast<double>(bytes) / sim::to_seconds(done) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Extension: sockets over IB WAN — SDP vs IPoIB (MillionBytes/s)");

  const std::uint64_t volume = (32ull << 20) * bench::scale();
  core::Table table("single-stream socket throughput", "delay_us");
  for (sim::Duration delay : bench::delay_grid()) {
    const double x = static_cast<double>(delay) / 1000.0;
    {
      core::Testbed tb(1, delay);
      table.add("SDP", x, sdp_throughput(tb, volume));
    }
    {
      core::Testbed tb(1, delay);
      table.add("IPoIB-UD", x,
                core::tcpbench::tcp_throughput(
                    tb, {.device = core::ipoib_ud(),
                         .tcp = core::tcp_window(),
                         .streams = 1,
                         .bytes_per_stream = volume}));
    }
    {
      core::Testbed tb(1, delay);
      table.add("IPoIB-RC-64K", x,
                core::tcpbench::tcp_throughput(
                    tb, {.device = core::ipoib_rc(ipoib::kConnectedIpMtu),
                         .tcp = core::tcp_window(),
                         .streams = 1,
                         .bytes_per_stream = volume}));
    }
  }
  bench::finish(table, "ext_sdp_sockets");

  // Oracle audit: the IPoIB curves obey the TCP window bounds (SDP has
  // its own flow control; the generic table-sane sweep covers it).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      check::check_tcp_bw(report, "ext_sdp IPoIB-UD " +
                              bench::delay_label(delay),
                          fc, core::tcp_window().window_bytes, 1, delay,
                          table.series("IPoIB-UD").at(x), tol,
                          /*cm_mtu=*/0, /*cm_rc_window=*/16, volume);
      check::check_tcp_bw(report, "ext_sdp IPoIB-RC-64K " +
                              bench::delay_label(delay),
                          fc, core::tcp_window().window_bytes, 1, delay,
                          table.series("IPoIB-RC-64K").at(x), tol,
                          ipoib::kConnectedIpMtu,
                          ib::HcaConfig{}.rc_max_inflight_msgs, volume);
    }
  }
  return bench::selfcheck_exit();
}
