// Figure 10: aggregate multi-pair message rate (osu_mbw_mr pattern) for
// 4/8/16 pairs at (a) 10 us, (b) 1 ms, (c) 10 ms delay.
//
// Expected shape: for small messages the rate grows proportionally with
// the pair count; at higher delays extra pairs also lift medium message
// sizes — parallelism fills the long pipe.
#include "bench_common.hpp"
#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;
using namespace ibwan::sim::literals;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Figure 10: Multi-pair aggregate message rate "
      "(Million messages/s)");

  const std::vector<std::uint64_t> sizes = {4,    64,        1u << 10,
                                            4u << 10, 16u << 10, 32u << 10};
  const std::pair<const char*, sim::Duration> delays[] = {
      {"(a) 10us delay", 10_us},
      {"(b) 1ms delay", 1000_us},
      {"(c) 10ms delay", 10'000_us},
  };

  // One sweep point per (delay, pair-count) curve; each point measures
  // the full size axis so merged rows land in the original add order.
  struct Point {
    int part;
    sim::Duration delay;
    int pairs;
  };
  std::vector<Point> points;
  for (int part = 0; part < 3; ++part) {
    for (int pairs : {4, 8, 16}) {
      points.push_back({part, delays[part].second, pairs});
    }
  }

  bench::SweepRunner runner;
  const auto results = runner.map(points, [&](const Point& p) {
    bench::Rows rows;
    for (std::uint64_t size : sizes) {
      core::Testbed tb(p.pairs, p.delay);
      const int iters =
          std::max(2, (size <= 1024 ? 8 : 4) * bench::scale() / 2);
      const double rate = core::mpibench::multi_pair_message_rate(
          tb, p.pairs,
          {.msg_size = size, .window = 64, .iterations = iters});
      rows.push_back({std::to_string(p.pairs) + "-pairs",
                      static_cast<double>(size), rate});
    }
    return rows;
  });

  static const char* names[] = {"fig10a_rate_10us", "fig10b_rate_1ms",
                                "fig10c_rate_10ms"};
  for (int part = 0; part < 3; ++part) {
    core::Table table(delays[part].first, "msg_bytes");
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].part != part) continue;
      for (const auto& row : results[i]) table.add(row.series, row.x, row.y);
    }
    bench::finish(table, names[part]);

    // Oracle audit: the aggregate rate is bounded by the per-pair
    // sender engines and the shared wire.
    if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
      auto& report = check::selfcheck_report();
      const check::Tolerances tol;
      for (int pairs : {4, 8, 16}) {
        const net::FabricConfig fc = core::fabric_defaults(pairs, pairs);
        const std::string name = std::to_string(pairs) + "-pairs";
        for (std::uint64_t size : sizes) {
          report.expect_le(
              "msg-rate-bound",
              std::string(names[part]) + " " + name + " " +
                  std::to_string(size) + "B",
              table.series(name).at(static_cast<double>(size)),
              check::mpi_msg_rate_bound_mmps(fc, {}, pairs, size),
              tol.bound_slack);
        }
      }
    }
  }
  return bench::selfcheck_exit();
}
