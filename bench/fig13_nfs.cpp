// Figure 13: NFS read throughput (IOzone, 512 MB file, 256 KB records,
// single server, 1-8 client threads).
//  (a) NFS/RDMA: LAN baseline plus WAN at 0/100/1000/10000 us;
//  (b) NFS/RDMA vs NFS/IPoIB-RC vs NFS/IPoIB-UD at 100 us;
//  (c) the same comparison at 1000 us.
//
// Expected shape: (a) WAN costs ~35% vs LAN (SDR vs DDR) and the 4 KB
// RDMA chunking collapses throughput as delay grows. (b) at 100 us,
// RDMA > IPoIB-RC > IPoIB-UD. (c) at 1000 us IPoIB-RC wins — TCP
// windows over the 64 KB MTU pipeline better than 4 KB chunks.
#include "bench_common.hpp"
#include "core/nfs_bench.hpp"

using namespace ibwan;
using namespace ibwan::sim::literals;
using core::nfsbench::NfsBenchConfig;
using core::nfsbench::Transport;

namespace {

double read_bw(Transport t, sim::Duration delay, bool lan, int threads,
               std::uint64_t file_bytes) {
  return core::nfsbench::run(NfsBenchConfig{.transport = t,
                                            .wan_delay = delay,
                                            .lan = lan,
                                            .threads = threads,
                                            .file_bytes = file_bytes})
      .mbytes_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Figure 13: NFS read throughput, IOzone-style, 256 KB records "
      "(MillionBytes/s)");

  const std::uint64_t file_bytes = (64ull << 20) * bench::scale();
  const std::vector<int> threads_grid = {1, 2, 4, 8};

  core::Table a("(a) NFS/RDMA: LAN and WAN delays", "threads");
  bench::sweep_into(a, threads_grid, [&](int threads) {
    bench::Rows rows;
    rows.push_back(
        {"LAN", static_cast<double>(threads),
         read_bw(Transport::kRdma, 0, /*lan=*/true, threads, file_bytes)});
    for (sim::Duration d : {sim::Duration{0}, 100_us, 1000_us, 10'000_us}) {
      rows.push_back(
          {bench::delay_label(d), static_cast<double>(threads),
           read_bw(Transport::kRdma, d, false, threads, file_bytes)});
    }
    return rows;
  });
  bench::finish(a, "fig13a_nfs_rdma");

  core::Table b("(b) transports at 100 us delay", "threads");
  bench::sweep_into(b, threads_grid, [&](int threads) {
    bench::Rows rows;
    rows.push_back(
        {"RDMA", static_cast<double>(threads),
         read_bw(Transport::kRdma, 100_us, false, threads, file_bytes)});
    rows.push_back(
        {"IPoIB-RC", static_cast<double>(threads),
         read_bw(Transport::kIpoibRc, 100_us, false, threads, file_bytes)});
    rows.push_back(
        {"IPoIB-UD", static_cast<double>(threads),
         read_bw(Transport::kIpoibUd, 100_us, false, threads, file_bytes)});
    return rows;
  });
  bench::finish(b, "fig13b_nfs_100us");

  core::Table c("(c) transports at 1000 us delay", "threads");
  bench::sweep_into(c, threads_grid, [&](int threads) {
    bench::Rows rows;
    rows.push_back(
        {"RDMA", static_cast<double>(threads),
         read_bw(Transport::kRdma, 1000_us, false, threads, file_bytes)});
    rows.push_back(
        {"IPoIB-RC", static_cast<double>(threads),
         read_bw(Transport::kIpoibRc, 1000_us, false, threads, file_bytes)});
    rows.push_back(
        {"IPoIB-UD", static_cast<double>(threads),
         read_bw(Transport::kIpoibUd, 1000_us, false, threads, file_bytes)});
    return rows;
  });
  bench::finish(c, "fig13c_nfs_1000us");

  // Oracle audit: every NFS point is capped by
  // min(wire, server window * chunk / RTT) — the 4 KB RDMA chunking
  // bound — or the wire alone for the TCP transports (chunk 0).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(2, 2);
    const ib::HcaConfig server_hca = core::nfs_server_hca();
    const std::uint64_t rdma_chunk = core::nfs_rdma_defaults().chunk_bytes;
    const check::Tolerances tol;
    const auto audit = [&](core::Table& t, const char* tag,
                           const std::string& series, sim::Duration d,
                           bool lan, std::uint64_t chunk) {
      for (int threads : threads_grid) {
        report.expect_le(
            "nfs-bw-bound",
            std::string(tag) + " " + series + " threads=" +
                std::to_string(threads),
            t.series(series).at(threads),
            check::nfs_bw_bound_mbps(fc, server_hca, chunk, d, lan),
            tol.bound_slack);
      }
    };
    audit(a, "fig13a", "LAN", 0, /*lan=*/true, rdma_chunk);
    for (sim::Duration d : {sim::Duration{0}, 100_us, 1000_us, 10'000_us}) {
      audit(a, "fig13a", bench::delay_label(d), d, false, rdma_chunk);
    }
    const struct {
      const char* tag;
      core::Table* tbl;
      sim::Duration d;
    } parts[] = {{"fig13b", &b, 100_us}, {"fig13c", &c, 1000_us}};
    for (const auto& p : parts) {
      audit(*p.tbl, p.tag, "RDMA", p.d, false, rdma_chunk);
      audit(*p.tbl, p.tag, "IPoIB-RC", p.d, false, 0);
      audit(*p.tbl, p.tag, "IPoIB-UD", p.d, false, 0);
    }
  }
  return bench::selfcheck_exit();
}
