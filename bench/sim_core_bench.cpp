// Microbenchmarks for the simulator's hot paths (these gate how large a
// WAN experiment is practical to simulate).
//
// Default mode runs hand-rolled event-mix benchmarks against both the
// current engine (sim/simulator.hpp: indexed 4-ary heap + same-instant
// FIFO + inline callbacks) and a benchmark-local copy of the previous
// engine (std::function + std::priority_queue + tombstone set), reports
// events/sec for each, and writes BENCH_sim_core.json.
//
// Pass --gbench to run the google-benchmark micro suite instead (event
// scheduling, link packet delivery, RC message transfer); remaining
// arguments are forwarded to google-benchmark.
//
// Pass --pdes to run the site-parallel scaling suite instead: heavy
// scenarios (NAS kernels at 2 x 16 ranks, the WAN KV service, an RC
// incast on a 4-site hub/spoke graph, quorum-replicated KV serving on
// a 3-site mesh) executed sequentially and site-parallel (one LP per
// topology site), reporting wall-clock speedup and asserting the
// simulated results and event counts match exactly. Writes
// BENCH_pdes.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "apps/nas.hpp"
#include "core/parallel.hpp"
#include "core/testbed.hpp"
#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "kv/kv.hpp"
#include "kv/loadgen.hpp"
#include "kv/replicated.hpp"
#include "kv/slo.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "rpc/rpc.hpp"
#include "sim/simulator.hpp"

namespace baseline {

// The engine this repository shipped with before the event-core rewrite,
// kept verbatim as the comparison baseline for the mix benchmarks below.
// It is not used anywhere outside this file.
using ibwan::sim::Duration;
using ibwan::sim::Time;
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  EventId schedule(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  EventId schedule_at(Time t, Callback cb) {
    const EventId id = next_seq_++;
    queue_.push(Entry{t, id, std::move(cb)});
    return id;
  }

  void cancel(EventId id) { cancelled_.insert(id); }

  void run() {
    while (step()) {
    }
  }

  bool step() {
    while (!queue_.empty()) {
      Entry& top = const_cast<Entry&>(queue_.top());
      const Time t = top.time;
      const EventId id = top.seq;
      Callback cb = std::move(top.cb);
      queue_.pop();
      if (auto it = cancelled_.find(id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = t;
      ++executed_;
      cb();
      return true;
    }
    return false;
  }

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    Time time;
    EventId seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  Time now_ = 0;
  EventId next_seq_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace baseline

namespace {

using namespace ibwan;
using namespace ibwan::sim::literals;

// ---------------------------------------------------------------------------
// Event mixes. Each is a template over the engine so the exact same
// callbacks (capture sizes included) run on both implementations.
// ---------------------------------------------------------------------------

struct Lcg {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

// Steady-state schedule/fire mix, protocol-shaped: each "wire" event
// (delayed, like a packet arrival) schedules the next wire event plus two
// same-instant dispatch events (like CQ callbacks / coroutine resumes).
// Captures are 40 bytes — past std::function's 16-byte inline buffer, the
// size real packet/completion callbacks have in this codebase.
template <class Sim>
struct ProtocolMix {
  Sim& sim;
  std::uint64_t remaining;
  std::uint64_t sink = 0;

  void fire() {
    if (remaining == 0) return;
    --remaining;
    const std::uint64_t p[4] = {remaining, sink, remaining ^ sink, 42};
    sim.schedule(0, [this, p] { sink += p[0] ^ p[3]; });
    sim.schedule(0, [this, p] { sink += p[1] + p[2]; });
    sim.schedule(100_ns, [this] { fire(); });
  }

  void seed_queue(int depth) {
    for (int i = 0; i < depth; ++i) {
      sim.schedule(static_cast<sim::Duration>(i + 1), [this] { fire(); });
    }
  }
};

// Churn mix: a pool of `depth` self-rescheduling events with
// pseudo-random delays — a pure heap workout with no same-instant
// shortcut available.
template <class Sim>
struct ChurnMix {
  Sim& sim;
  std::uint64_t remaining;
  Lcg lcg;
  std::uint64_t sink = 0;

  void fire() {
    if (remaining == 0) return;
    --remaining;
    const std::uint64_t p[4] = {remaining, sink, lcg.state, 7};
    sim.schedule(static_cast<sim::Duration>(lcg.next() % 8192 + 1),
                 [this, p] {
                   sink += p[0] + p[1] + p[2] + p[3];
                   fire();
                 });
  }

  void seed_queue(int depth) {
    for (int i = 0; i < depth; ++i) fire();
  }
};

// Schedule/cancel timer mix: every completion schedules a guard timeout
// and a completion; the completion fires first and cancels the timeout —
// the retransmit-timer pattern in the TCP and RC transport layers.
template <class Sim>
struct CancelMix {
  Sim& sim;
  std::uint64_t remaining;
  Lcg lcg;
  std::uint64_t sink = 0;

  void step() {
    if (remaining == 0) return;
    --remaining;
    const auto timeout = sim.schedule(10_us, [this] { ++sink; });
    sim.schedule(static_cast<sim::Duration>(lcg.next() % 1000 + 1),
                 [this, timeout] {
                   sim.cancel(timeout);
                   step();
                 });
  }
};

struct MixResult {
  std::string name;
  std::uint64_t events_baseline = 0;
  std::uint64_t events_engine = 0;
  double baseline_eps = 0;
  double engine_eps = 0;
  double speedup() const {
    return baseline_eps > 0 ? engine_eps / baseline_eps : 0;
  }
};

template <class Fn>
double best_events_per_sec(int reps, Fn&& run, std::uint64_t* events_out) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    // NOLINT-IBWAN(DET001): measures the harness's real wall-clock
    // throughput (events/sec of the engine itself), not simulated time
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t events = run();
    // NOLINT-IBWAN(DET001): same wall-clock measurement as t0 above
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (events_out != nullptr) *events_out = events;
    if (secs > 0) best = std::max(best, static_cast<double>(events) / secs);
  }
  return best;
}

template <template <class> class Mix>
MixResult run_mix(const std::string& name, int depth, std::uint64_t work,
                  int reps) {
  MixResult r;
  r.name = name;
  r.baseline_eps = best_events_per_sec(
      reps,
      [&] {
        baseline::Simulator s;
        Mix<baseline::Simulator> mix{s, work};
        if constexpr (requires { mix.seed_queue(depth); }) {
          mix.seed_queue(depth);
        } else {
          mix.step();
        }
        s.run();
        return s.events_executed();
      },
      &r.events_baseline);
  r.engine_eps = best_events_per_sec(
      reps,
      [&] {
        sim::Simulator s;
        Mix<sim::Simulator> mix{s, work};
        if constexpr (requires { mix.seed_queue(depth); }) {
          mix.seed_queue(depth);
        } else {
          mix.step();
        }
        s.run();
        return s.events_executed();
      },
      &r.events_engine);
  return r;
}

int run_mix_suite() {
  const int reps = 3;
  std::vector<MixResult> results;
  results.push_back(
      run_mix<ProtocolMix>("steady_state_schedule_fire_d256", 256, 500'000,
                           reps));
  results.push_back(
      run_mix<ProtocolMix>("steady_state_schedule_fire_d1024", 1024, 500'000,
                           reps));
  results.push_back(run_mix<ChurnMix>("churn_random_delay_d64", 64, 1'500'000,
                                      reps));
  results.push_back(
      run_mix<ChurnMix>("churn_random_delay_d1024", 1024, 1'500'000, reps));
  results.push_back(
      run_mix<ChurnMix>("churn_random_delay_d16384", 16384, 1'500'000, reps));
  results.push_back(run_mix<CancelMix>("schedule_cancel_timers", 1, 300'000,
                                       reps));

  std::printf("%-36s %14s %14s %9s\n", "mix", "baseline ev/s", "engine ev/s",
              "speedup");
  for (const auto& r : results) {
    std::printf("%-36s %14.0f %14.0f %8.2fx\n", r.name.c_str(),
                r.baseline_eps, r.engine_eps, r.speedup());
    if (r.events_baseline != r.events_engine) {
      std::printf("  WARNING: executed-event mismatch (%llu vs %llu)\n",
                  static_cast<unsigned long long>(r.events_baseline),
                  static_cast<unsigned long long>(r.events_engine));
    }
  }

  std::FILE* f = std::fopen("BENCH_sim_core.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sim_core.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"sim_core\",\n  \"unit\": "
                  "\"events_per_second\",\n  \"mixes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"baseline_events_per_sec\": %.0f, "
                 "\"engine_events_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(),
                 static_cast<unsigned long long>(r.events_engine),
                 r.baseline_eps, r.engine_eps, r.speedup(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json: BENCH_sim_core.json]\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Site-parallel (PDES) scaling suite (run with --pdes).
// ---------------------------------------------------------------------------

/// One measured execution: total events across all sites plus the
/// scenario's simulated result (used as an exactness witness between
/// the sequential and site-parallel runs).
struct PdesRun {
  std::uint64_t events = 0;
  double result = 0;
};

struct PdesScenario {
  std::string name;
  std::function<PdesRun()> run;
};

PdesRun run_nas_scenario(const apps::NasBenchmark& b, int per_cluster) {
  core::Testbed tb(per_cluster, 1'000'000);  // 1 ms one-way: a real WAN
  mpi::Job job(tb.fabric(),
               mpi::Job::split_placement(tb.fabric(), per_cluster));
  const double secs = apps::run_nas(job, b);
  return {tb.engine().events_executed(), secs};
}

PdesRun run_kv_scenario(int clients, int ops_per_client) {
  core::Testbed tb(1, 1'000'000);
  ib::Hca server_hca(tb.fabric().node(tb.node_a()), {});
  ib::Hca client_hca(tb.fabric().node(tb.node_b()), {});
  rpc::RdmaRpcServer rpc_server(server_hca);
  rpc::RdmaRpcClient rpc_client(client_hca, rpc_server);
  kv::KvServer server(tb.sim_a());
  rpc_server.set_handler(server.handler());
  for (std::uint64_t k = 0; k < 256; ++k) server.preload(k, 4096);
  kv::KvClient client(rpc_client);
  const kv::KvResult r =
      kv::run_kv_workload(tb.sim_for(tb.node_b()), client,
                          {.clients = clients,
                           .ops_per_client = ops_per_client,
                           .get_fraction = 0.9,
                           .value_bytes = 4096,
                           .key_space = 256},
                          &tb.engine());
  return {tb.engine().events_executed(), r.kops_per_sec};
}

/// Concurrent RC incast on an N-site hub/spoke graph (one node per
/// site, 1 ms WAN edges): the smallest scenario whose site-parallel run
/// exercises more than two LPs and the hub's WAN-ingress demux. One
/// hand-rolled verbs flow per spoke, windowed like ext_incast.
PdesRun run_incast_scenario(int spokes, int iters) {
  net::TopologyConfig topo = net::TopologyConfig::hub_spoke(spokes, 1);
  core::Testbed tb(core::TestbedOptions{.topology = &topo,
                                        .wan_delay = 1'000'000});
  net::Fabric& fabric = tb.fabric();
  constexpr std::uint32_t kMsg = 8192;

  net::Node& hub_node = fabric.node(tb.node_at(0));
  ib::Hca hub_hca(hub_node, {});
  ib::Cq hub_scq(hub_node.sim());
  ib::Cq hub_rcq(hub_node.sim());

  struct Flow {
    std::unique_ptr<ib::Hca> hca;
    std::unique_ptr<ib::Cq> scq;
    std::unique_ptr<ib::Cq> rcq;
    ib::RcQp* qp = nullptr;
    int posted = 0;
  };
  std::vector<std::unique_ptr<Flow>> flows;

  int received = 0;
  sim::Time last_arrival = 0;
  hub_rcq.set_callback([&](const ib::Cqe&) {
    ++received;
    if (received == spokes * iters) last_arrival = hub_node.sim().now();
  });

  for (int s = 0; s < spokes; ++s) {
    auto flow = std::make_unique<Flow>();
    net::Node& sp_node = fabric.node(tb.node_at(s + 1));
    flow->hca = std::make_unique<ib::Hca>(sp_node, ib::HcaConfig{});
    flow->scq = std::make_unique<ib::Cq>(sp_node.sim());
    flow->rcq = std::make_unique<ib::Cq>(sp_node.sim());
    flow->qp = &flow->hca->create_rc_qp(*flow->scq, *flow->rcq);
    ib::RcQp& hub_qp = hub_hca.create_rc_qp(hub_scq, hub_rcq);
    flow->qp->connect(hub_hca.lid(), hub_qp.qpn());
    hub_qp.connect(flow->hca->lid(), flow->qp->qpn());
    for (int i = 0; i < iters; ++i) {
      hub_qp.post_recv(ib::RecvWr{.max_length = kMsg});
    }
    flows.push_back(std::move(flow));
  }

  for (auto& fp : flows) {
    Flow* f = fp.get();
    auto post_one = [f]() {
      ++f->posted;
      f->qp->post_send(ib::SendWr{
          .wr_id = static_cast<std::uint64_t>(f->posted), .length = kMsg});
    };
    f->scq->set_callback([f, post_one, iters](const ib::Cqe&) {
      if (f->posted < iters) post_one();
    });
    const int burst = std::min(16, iters);
    for (int i = 0; i < burst; ++i) post_one();
  }

  tb.run();
  const double goodput =
      last_arrival > 0 ? static_cast<double>(received) * kMsg /
                             static_cast<double>(last_arrival) * 1e3
                       : 0;
  return {tb.engine().events_executed(), goodput};
}

/// Quorum-replicated KV serving over an N-site full mesh (two nodes
/// per site): R/W fan-out from a client LP to one replica LP per site,
/// driven by the deterministic open-loop generator. Exercises the
/// coroutine-heavy RPC quorum/timeout path under site parallelism.
PdesRun run_serving_scenario(int sites, std::uint64_t total_ops) {
  net::TopologyConfig topo = net::TopologyConfig::full_mesh(sites, 2);
  core::Testbed tb(core::TestbedOptions{.topology = &topo,
                                        .wan_delay = 1'000'000});
  net::Fabric& fabric = tb.fabric();
  const net::NodeId client_node = tb.node_at(0, 1);
  ib::Hca client_hca(fabric.node(client_node), {});
  std::vector<std::unique_ptr<ib::Hca>> hcas;
  std::vector<std::unique_ptr<rpc::RdmaRpcServer>> servers;
  std::vector<std::unique_ptr<kv::ReplicaServer>> replicas;
  std::vector<std::unique_ptr<rpc::RdmaRpcClient>> clients;
  std::vector<rpc::RpcClient*> channels;
  for (int s = 0; s < sites; ++s) {
    const net::NodeId node = tb.node_at(s);
    hcas.push_back(
        std::make_unique<ib::Hca>(fabric.node(node), ib::HcaConfig{}));
    servers.push_back(std::make_unique<rpc::RdmaRpcServer>(*hcas.back()));
    replicas.push_back(
        std::make_unique<kv::ReplicaServer>(tb.sim_for(node), node));
    servers.back()->set_handler(replicas.back()->handler());
    clients.push_back(
        std::make_unique<rpc::RdmaRpcClient>(client_hca, *servers.back()));
    channels.push_back(clients.back().get());
    for (std::uint64_t k = 0; k < 64; ++k) {
      replicas.back()->preload(k, 4096, kv::Version{1, 0});
    }
  }
  kv::QuorumConfig qc;
  qc.op_timeout = 250 * sim::kMillisecond;
  kv::ReplicatedKv coord(tb.sim_for(client_node), client_node,
                         std::move(channels), qc);
  kv::LoadGenConfig lc;
  lc.mode = kv::ArrivalMode::kOpen;
  lc.offered_kops = 0.8;
  lc.total_ops = total_ops;
  lc.key_space = 64;
  lc.value_bytes = 4096;
  kv::LoadGen gen(tb.sim_for(client_node), coord, lc);
  gen.start();
  tb.run();
  return {tb.engine().events_executed(),
          kv::make_slo_report(gen.stats()).goodput_kops};
}

struct PdesResult {
  std::string name;
  std::uint64_t events = 0;
  double seq_seconds = 0;
  double pdes_seconds = 0;
  bool exact = true;  // result + event count identical across modes
  double speedup() const {
    return pdes_seconds > 0 ? seq_seconds / pdes_seconds : 0;
  }
};

int run_pdes_suite() {
  const apps::NasConfig nas_cfg{.cls = apps::NasClass::kB, .iterations = 2};
  const std::vector<PdesScenario> scenarios = {
      {"nas_ft_2x16_1ms",
       [&] { return run_nas_scenario(apps::make_ft(nas_cfg), 16); }},
      {"nas_is_2x16_1ms",
       [&] { return run_nas_scenario(apps::make_is(nas_cfg), 16); }},
      {"nas_cg_2x16_1ms",
       [&] { return run_nas_scenario(apps::make_cg(nas_cfg), 16); }},
      {"ext_kv_16clients_1ms", [] { return run_kv_scenario(16, 300); }},
      {"incast_hub3spokes_1ms", [] { return run_incast_scenario(3, 2000); }},
      {"kv_serving_3site_1ms", [] { return run_serving_scenario(3, 400); }},
  };

  // NOLINT-IBWAN(DET001): reported context for the perf gate — speedup
  // claims are only meaningful on multi-core hosts
  const unsigned hw = std::thread::hardware_concurrency();
  const int reps = 2;
  std::vector<PdesResult> results;
  int exact_failures = 0;

  for (const PdesScenario& s : scenarios) {
    PdesResult r;
    r.name = s.name;
    PdesRun seq_run, pdes_run;
    core::set_par_sites(1);
    double seq_best = 1e300;
    for (int i = 0; i < reps; ++i) {
      // NOLINT-IBWAN(DET001): wall-clock measurement of the harness
      const auto t0 = std::chrono::steady_clock::now();
      seq_run = s.run();
      // NOLINT-IBWAN(DET001): wall-clock measurement of the harness
      const auto t1 = std::chrono::steady_clock::now();
      seq_best =
          std::min(seq_best, std::chrono::duration<double>(t1 - t0).count());
    }
    core::set_par_sites(2);
    double pdes_best = 1e300;
    for (int i = 0; i < reps; ++i) {
      // NOLINT-IBWAN(DET001): wall-clock measurement of the harness
      const auto t0 = std::chrono::steady_clock::now();
      pdes_run = s.run();
      // NOLINT-IBWAN(DET001): wall-clock measurement of the harness
      const auto t1 = std::chrono::steady_clock::now();
      pdes_best =
          std::min(pdes_best, std::chrono::duration<double>(t1 - t0).count());
    }
    core::set_par_sites(1);
    r.events = seq_run.events;
    r.seq_seconds = seq_best;
    r.pdes_seconds = pdes_best;
    r.exact = seq_run.events == pdes_run.events &&
              seq_run.result == pdes_run.result;
    if (!r.exact) {
      ++exact_failures;
      std::printf(
          "  EXACTNESS FAILURE %s: events %llu vs %llu, result %.17g vs "
          "%.17g\n",
          s.name.c_str(), static_cast<unsigned long long>(seq_run.events),
          static_cast<unsigned long long>(pdes_run.events), seq_run.result,
          pdes_run.result);
    }
    results.push_back(r);
  }

  std::printf("hardware threads: %u (speedup is ~1.0 by design on 1 core)\n",
              hw);
  std::printf("%-28s %12s %10s %10s %9s %6s\n", "scenario", "events",
              "seq s", "pdes s", "speedup", "exact");
  for (const auto& r : results) {
    std::printf("%-28s %12llu %10.3f %10.3f %8.2fx %6s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.seq_seconds,
                r.pdes_seconds, r.speedup(), r.exact ? "yes" : "NO");
  }

  std::FILE* f = std::fopen("BENCH_pdes.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pdes.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"pdes\",\n  \"unit\": \"seconds\",\n"
               "  \"hw_concurrency\": %u,\n  \"scenarios\": [\n",
               hw);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"seq_seconds\": %.4f, \"pdes_seconds\": %.4f, "
                 "\"speedup\": %.3f, \"exact\": %s}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.events),
                 r.seq_seconds, r.pdes_seconds, r.speedup(),
                 r.exact ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("[json: BENCH_pdes.json]\n");
  return exact_failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark micro suite (run with --gbench).
// ---------------------------------------------------------------------------

void BM_EventSchedule(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t executed = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      sim.schedule(static_cast<sim::Duration>(i % 97), [&] { ++executed; });
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(executed));
}
BENCHMARK(BM_EventSchedule);

void BM_LinkPacketDelivery(benchmark::State& state) {
  sim::Simulator sim;
  net::Link link(sim, {.bytes_per_ns = 1.0, .propagation = 100}, "bench");
  std::uint64_t delivered = 0;
  link.set_sink([&](net::Packet&&) { ++delivered; });
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      net::Packet p;
      p.wire_size = 2048;
      link.send(std::move(p));
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_LinkPacketDelivery);

void BM_RcMessageTransfer(benchmark::State& state) {
  const auto msg_size = static_cast<std::uint64_t>(state.range(0));
  sim::Simulator sim;
  net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1});
  ib::Hca ha(fabric.node(0), {});
  ib::Hca hb(fabric.node(1), {});
  ib::Cq scq(sim), rcq(sim), scq2(sim), rcq2(sim);
  ib::RcQp& qa = ha.create_rc_qp(scq, rcq);
  ib::RcQp& qb = hb.create_rc_qp(scq2, rcq2);
  qa.connect(hb.lid(), qb.qpn());
  qb.connect(ha.lid(), qa.qpn());
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    qb.post_recv(ib::RecvWr{});
    qa.post_send(ib::SendWr{.length = msg_size});
    sim.run();
    bytes += msg_size;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RcMessageTransfer)->Arg(2048)->Arg(65536)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  bool pdes = false;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--gbench") {
      gbench = true;
    } else if (std::string_view(argv[i]) == "--pdes") {
      pdes = true;
    } else {
      fwd.push_back(argv[i]);
    }
  }
  if (pdes) return run_pdes_suite();
  if (!gbench) return run_mix_suite();
  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
