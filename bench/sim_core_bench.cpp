// google-benchmark microbenchmarks for the simulator's hot paths (these
// gate how large a WAN experiment is practical to simulate).
#include <benchmark/benchmark.h>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "net/fabric.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ibwan;

void BM_EventSchedule(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t executed = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      sim.schedule(static_cast<sim::Duration>(i % 97), [&] { ++executed; });
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(executed));
}
BENCHMARK(BM_EventSchedule);

void BM_LinkPacketDelivery(benchmark::State& state) {
  sim::Simulator sim;
  net::Link link(sim, {.bytes_per_ns = 1.0, .propagation = 100}, "bench");
  std::uint64_t delivered = 0;
  link.set_sink([&](net::Packet&&) { ++delivered; });
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      net::Packet p;
      p.wire_size = 2048;
      link.send(std::move(p));
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_LinkPacketDelivery);

void BM_RcMessageTransfer(benchmark::State& state) {
  const auto msg_size = static_cast<std::uint64_t>(state.range(0));
  sim::Simulator sim;
  net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1});
  ib::Hca ha(fabric.node(0), {});
  ib::Hca hb(fabric.node(1), {});
  ib::Cq scq(sim), rcq(sim), scq2(sim), rcq2(sim);
  ib::RcQp& qa = ha.create_rc_qp(scq, rcq);
  ib::RcQp& qb = hb.create_rc_qp(scq2, rcq2);
  qa.connect(hb.lid(), qb.qpn());
  qb.connect(ha.lid(), qa.qpn());
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    qb.post_recv(ib::RecvWr{});
    qa.post_send(ib::SendWr{.length = msg_size});
    sim.run();
    bytes += msg_size;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_RcMessageTransfer)->Arg(2048)->Arg(65536)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
