// Figure 6: IPoIB-UD TCP throughput across WAN delays.
//  (a) single stream with varying socket window (64K/256K/512K/default);
//  (b) parallel streams (1..8) with the default window.
//
// Expected shape: larger windows win; every single-stream curve decays
// at long delays; two or more streams sustain the peak out to ~1 ms
// (up to ~50% improvement at high delay).
#include "bench_common.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner("Figure 6: IPoIB-UD TCP throughput (MillionBytes/s)");

  const std::uint64_t volume = (24ull << 20) * bench::scale();

  struct DelayResult {
    bench::Rows single, parallel;
  };
  bench::SweepRunner runner;
  const auto results =
      runner.map(bench::delay_grid(), [&](sim::Duration delay) {
        DelayResult r;
        const double x = static_cast<double>(delay) / 1000.0;
        const std::pair<const char*, std::uint32_t> windows[] = {
            {"64k-window", 64u << 10},
            {"256k-window", 256u << 10},
            {"512k-window", 512u << 10},
            {"default(1M)", 1u << 20},
        };
        for (const auto& [name, wnd] : windows) {
          core::Testbed tb(1, delay);
          r.single.push_back({name, x,
                              core::tcpbench::tcp_throughput(
                                  tb, {.device = core::ipoib_ud(),
                                       .tcp = core::tcp_window(wnd),
                                       .streams = 1,
                                       .bytes_per_stream = volume})});
        }
        for (int streams : {1, 2, 4, 6, 8}) {
          core::Testbed tb(1, delay);
          r.parallel.push_back(
              {std::to_string(streams) + "-streams", x,
               core::tcpbench::tcp_throughput(
                   tb, {.device = core::ipoib_ud(),
                        .tcp = core::tcp_window(1u << 20),
                        .streams = streams,
                        .bytes_per_stream = volume / streams})});
        }
        return r;
      });

  core::Table single("(a) single stream, window sweep", "delay_us");
  core::Table parallel("(b) parallel streams, default window", "delay_us");
  for (const auto& r : results) {
    for (const auto& row : r.single) single.add(row.series, row.x, row.y);
    for (const auto& row : r.parallel) parallel.add(row.series, row.x, row.y);
  }
  bench::finish(single, "fig6a_ipoib_ud_window");
  bench::finish(parallel, "fig6b_ipoib_ud_streams");

  // Oracle audit: acked TCP throughput over IPoIB-UD respects
  // min(wire, aggregate window / RTT) at every point (datagram mode:
  // no connected-mode RC window cap, cm_mtu = 0).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    const std::pair<const char*, std::uint32_t> windows[] = {
        {"64k-window", 64u << 10},
        {"256k-window", 256u << 10},
        {"512k-window", 512u << 10},
        {"default(1M)", 1u << 20},
    };
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      for (const auto& [name, wnd] : windows) {
        check::check_tcp_bw(report,
                            "fig6a " + std::string(name) + " " +
                                bench::delay_label(delay),
                            fc, wnd, 1, delay, single.series(name).at(x), tol,
                            /*cm_mtu=*/0, /*cm_rc_window=*/16, volume);
      }
      for (int streams : {1, 2, 4, 6, 8}) {
        const std::string name = std::to_string(streams) + "-streams";
        check::check_tcp_bw(
            report, "fig6b " + name + " " + bench::delay_label(delay), fc,
            1u << 20, streams, delay, parallel.series(name).at(x), tol,
            /*cm_mtu=*/0, /*cm_rc_window=*/16, volume / streams);
      }
    }
  }
  return bench::selfcheck_exit();
}
