// Figure 6: IPoIB-UD TCP throughput across WAN delays.
//  (a) single stream with varying socket window (64K/256K/512K/default);
//  (b) parallel streams (1..8) with the default window.
//
// Expected shape: larger windows win; every single-stream curve decays
// at long delays; two or more streams sustain the peak out to ~1 ms
// (up to ~50% improvement at high delay).
#include "bench_common.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;

int main() {
  core::banner("Figure 6: IPoIB-UD TCP throughput (MillionBytes/s)");

  const std::uint64_t volume = (24ull << 20) * bench::scale();

  core::Table single("(a) single stream, window sweep", "delay_us");
  const std::pair<const char*, std::uint32_t> windows[] = {
      {"64k-window", 64u << 10},
      {"256k-window", 256u << 10},
      {"512k-window", 512u << 10},
      {"default(1M)", 1u << 20},
  };
  for (sim::Duration delay : bench::delay_grid()) {
    for (const auto& [name, wnd] : windows) {
      core::Testbed tb(1, delay);
      const double mbps = core::tcpbench::tcp_throughput(
          tb, {.device = core::ipoib_ud(),
               .tcp = core::tcp_window(wnd),
               .streams = 1,
               .bytes_per_stream = volume});
      single.add(name, static_cast<double>(delay) / 1000.0, mbps);
    }
  }
  bench::finish(single, "fig6a_ipoib_ud_window");

  core::Table parallel("(b) parallel streams, default window", "delay_us");
  for (sim::Duration delay : bench::delay_grid()) {
    for (int streams : {1, 2, 4, 6, 8}) {
      core::Testbed tb(1, delay);
      const double mbps = core::tcpbench::tcp_throughput(
          tb, {.device = core::ipoib_ud(),
               .tcp = core::tcp_window(1u << 20),
               .streams = streams,
               .bytes_per_stream = volume / streams});
      parallel.add(std::to_string(streams) + "-streams",
                   static_cast<double>(delay) / 1000.0, mbps);
    }
  }
  bench::finish(parallel, "fig6b_ipoib_ud_streams");
  return 0;
}
