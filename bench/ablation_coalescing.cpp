// Ablation: MPI small-message coalescing — the paper's "transferring
// data using large messages (message coalescing)" optimization, made
// concrete: consecutive small eager sends to the same destination ride
// one verbs message, spending one in-flight window slot instead of many.
//
// Expected shape: at short range coalescing is near-neutral (the wire
// is never the constraint); over WAN delays it multiplies the
// achievable small-message rate, because the RC window carries bundles
// instead of single messages.
#include "bench_common.hpp"
#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;
using namespace ibwan::sim::literals;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Ablation: eager-message coalescing, aggregate message rate "
      "(Million messages/s, 8 pairs, 64 B messages)");

  const int iters = 6 * bench::scale();
  core::Table table("message rate by coalescing setting", "delay_us");
  bench::sweep_into(table, bench::delay_grid(), [&](sim::Duration delay) {
    bench::Rows rows;
    const double x = static_cast<double>(delay) / 1000.0;
    {
      core::Testbed tb(8, delay);
      rows.push_back({"off", x,
                      core::mpibench::multi_pair_message_rate(
                          tb, 8,
                          {.msg_size = 64, .window = 64,
                           .iterations = iters})});
    }
    {
      core::Testbed tb(8, delay);
      rows.push_back({"on", x,
                      core::mpibench::multi_pair_message_rate(
                          tb, 8,
                          {.msg_size = 64,
                           .window = 64,
                           .iterations = iters,
                           .coalescing = true})});
    }
    return rows;
  });
  bench::finish(table, "ablation_coalescing");
  std::printf(
      "\nReading: a bundle occupies one transport window slot, so the\n"
      "rate over a long pipe scales by the bundling factor — the paper's\n"
      "large-message recommendation applied inside the MPI library.\n");

  // Oracle audit: the uncoalesced rate obeys the per-pair engine/wire
  // bound, and bundling never reduces the rate.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(8, 8);
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      const std::string ctx =
          "ablation_coalescing " + bench::delay_label(delay);
      const double off = table.series("off").at(x);
      const double on = table.series("on").at(x);
      report.expect_le("msg-rate-bound", ctx, off,
                       check::mpi_msg_rate_bound_mmps(fc, {}, 8, 64),
                       tol.bound_slack);
      report.expect_ge("coalescing-gain", ctx, on, off, 0.05);
    }
  }
  return bench::selfcheck_exit();
}
