// Figure 7: IPoIB-RC (connected mode) TCP throughput across WAN delays.
//  (a) single stream with varying IP MTU (2K/16K/64K);
//  (b) parallel streams (1..8) at the 64K MTU.
//
// Expected shape: the 64 KB MTU wins (~890 MB/s — fewer host-stack
// traversals per byte); single-stream bandwidth drops sharply past
// ~100 us (the verbs-level medium-message cliff plus TCP windowing);
// two or more streams sustain bandwidth over a wider delay range.
#include "bench_common.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner("Figure 7: IPoIB-RC TCP throughput (MillionBytes/s)");

  const std::uint64_t volume = (48ull << 20) * bench::scale();

  struct DelayResult {
    bench::Rows single, parallel;
  };
  bench::SweepRunner runner;
  const auto results =
      runner.map(bench::delay_grid(), [&](sim::Duration delay) {
        DelayResult r;
        const double x = static_cast<double>(delay) / 1000.0;
        const std::pair<const char*, std::uint32_t> mtus[] = {
            {"2K-MTU", 2044u},
            {"16K-MTU", 16u << 10},
            {"64K-MTU", ipoib::kConnectedIpMtu},
        };
        for (const auto& [name, mtu] : mtus) {
          core::Testbed tb(1, delay);
          r.single.push_back({name, x,
                              core::tcpbench::tcp_throughput(
                                  tb, {.device = core::ipoib_rc(mtu),
                                       .tcp = core::tcp_window(1u << 20),
                                       .streams = 1,
                                       .bytes_per_stream = volume})});
        }
        for (int streams : {1, 2, 4, 6, 8}) {
          core::Testbed tb(1, delay);
          r.parallel.push_back(
              {std::to_string(streams) + "-streams", x,
               core::tcpbench::tcp_throughput(
                   tb, {.device = core::ipoib_rc(ipoib::kConnectedIpMtu),
                        .tcp = core::tcp_window(1u << 20),
                        .streams = streams,
                        .bytes_per_stream = volume / streams})});
        }
        return r;
      });

  core::Table single("(a) single stream, MTU sweep", "delay_us");
  core::Table parallel("(b) parallel streams, 64K MTU", "delay_us");
  for (const auto& r : results) {
    for (const auto& row : r.single) single.add(row.series, row.x, row.y);
    for (const auto& row : r.parallel) parallel.add(row.series, row.x, row.y);
  }
  bench::finish(single, "fig7a_ipoib_rc_mtu");
  bench::finish(parallel, "fig7b_ipoib_rc_streams");

  // Oracle audit: connected mode shares one RC QP across the bundle, so
  // the aggregate window is additionally capped by
  // rc_max_inflight_msgs * ip_mtu (the cm_mtu parameter).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const int rc_window = ib::HcaConfig{}.rc_max_inflight_msgs;
    const check::Tolerances tol;
    const std::pair<const char*, std::uint32_t> mtus[] = {
        {"2K-MTU", 2044u},
        {"16K-MTU", 16u << 10},
        {"64K-MTU", ipoib::kConnectedIpMtu},
    };
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      for (const auto& [name, mtu] : mtus) {
        check::check_tcp_bw(report,
                            "fig7a " + std::string(name) + " " +
                                bench::delay_label(delay),
                            fc, 1u << 20, 1, delay, single.series(name).at(x),
                            tol, mtu, rc_window, volume);
      }
      for (int streams : {1, 2, 4, 6, 8}) {
        const std::string name = std::to_string(streams) + "-streams";
        check::check_tcp_bw(report,
                            "fig7b " + name + " " + bench::delay_label(delay),
                            fc, 1u << 20, streams, delay,
                            parallel.series(name).at(x), tol,
                            ipoib::kConnectedIpMtu, rc_window,
                            volume / streams);
      }
    }
  }
  return bench::selfcheck_exit();
}
