// Ablation: the RC in-flight message window — the single parameter
// behind Figure 5's medium-message WAN cliff. Sweeping it shows the
// knee is window*size/RTT, and that "more in flight" is equivalent to
// "bigger messages" (the paper's message-coalescing recommendation).
#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Ablation: RC in-flight window vs WAN delay (64 KB messages, "
      "MillionBytes/s)");

  core::Table table("throughput by window size", "delay_us");
  bench::sweep_into(table, bench::delay_grid(), [](sim::Duration delay) {
    bench::Rows rows;
    const double x = static_cast<double>(delay) / 1000.0;
    for (int window : {2, 4, 8, 16, 32, 64}) {
      core::Testbed tb(1, delay);
      ib::perftest::TestConfig cfg;
      cfg.msg_size = 64 << 10;
      cfg.iterations = ib::perftest::iters_for_bytes(
          (16u << 20) * bench::scale(), cfg.msg_size, 64, 4096);
      cfg.hca.rc_max_inflight_msgs = window;
      rows.push_back({"window-" + std::to_string(window), x,
                      ib::perftest::run_bandwidth(
                          tb.fabric(), tb.node_a(), tb.node_b(),
                          ib::perftest::Transport::kRc, cfg)
                          .mbytes_per_sec});
    }
    return rows;
  });
  bench::finish(table, "ablation_rc_window");
  std::printf(
      "\nReading: throughput ~ min(wire, window*64KB/RTT). Doubling the\n"
      "window doubles WAN throughput until the SDR wire saturates —\n"
      "the same lever as the paper's large-message coalescing.\n");

  // Oracle audit: this bench IS the knee model — every (window, delay)
  // point must respect min(wire, window*size/RTT) and land on the right
  // side of its BDP knee.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    const std::uint64_t size = 64 << 10;
    const int iters = ib::perftest::iters_for_bytes(
        (16u << 20) * bench::scale(), size, 64, 4096);
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      for (int window : {2, 4, 8, 16, 32, 64}) {
        ib::HcaConfig hca;
        hca.rc_max_inflight_msgs = window;
        check::check_rc_bw(
            report,
            "ablation_rc_window window-" + std::to_string(window) + " " +
                bench::delay_label(delay),
            fc, hca, size, delay,
            table.series("window-" + std::to_string(window)).at(x), tol,
            static_cast<std::uint64_t>(iters) * size);
      }
    }
  }
  return bench::selfcheck_exit();
}
