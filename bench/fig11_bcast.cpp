// Figure 11: MPI broadcast latency over IB WAN — the library default
// ("Original": binomial / scatter+ring-allgather, topology-agnostic)
// against the WAN-aware hierarchical broadcast ("Modified": one WAN
// crossing, then per-cluster trees) at 10 us / 100 us / 1000 us delay.
//
// The paper runs 2 x 64 processes; we place one rank per node, 64 nodes
// per cluster (DESIGN.md notes the substitution). Expected shape: the
// modified algorithm wins for medium and large messages, with the gap
// widening as delay grows; small messages are comparable.
#include "bench_common.hpp"
#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;
using namespace ibwan::sim::literals;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Figure 11: MPI broadcast latency, Original vs Modified "
      "(hierarchical), 2 x 64 processes (us)");

  const int per_cluster = 64;
  const int iters = 3;
  const std::vector<std::uint64_t> sizes = {
      4, 1u << 10, 8u << 10, 32u << 10, 128u << 10};
  const std::pair<const char*, sim::Duration> delays[] = {
      {"(a) 10us delay", 10_us},
      {"(b) 100us delay", 100_us},
      {"(c) 1000us delay", 1000_us},
  };

  // One sweep point per (delay, size) pair; each point measures both
  // algorithms so the Original/Modified add order is preserved.
  struct Point {
    int part;
    sim::Duration delay;
    std::uint64_t size;
  };
  std::vector<Point> points;
  for (int part = 0; part < 3; ++part) {
    for (std::uint64_t size : sizes) {
      points.push_back({part, delays[part].second, size});
    }
  }

  bench::SweepRunner runner;
  const auto results = runner.map(points, [&](const Point& p) {
    bench::Rows rows;
    {
      core::Testbed tb(per_cluster, p.delay);
      rows.push_back({"Original", static_cast<double>(p.size),
                      core::mpibench::bcast_latency_us(
                          tb, {.ranks_per_cluster = per_cluster,
                               .msg_size = p.size,
                               .iterations = iters,
                               .hierarchical = false})});
    }
    {
      core::Testbed tb(per_cluster, p.delay);
      rows.push_back({"Modified", static_cast<double>(p.size),
                      core::mpibench::bcast_latency_us(
                          tb, {.ranks_per_cluster = per_cluster,
                               .msg_size = p.size,
                               .iterations = iters,
                               .hierarchical = true})});
    }
    return rows;
  });

  static const char* names[] = {"fig11a_bcast_10us", "fig11b_bcast_100us",
                                "fig11c_bcast_1000us"};
  for (int part = 0; part < 3; ++part) {
    core::Table table(delays[part].first, "msg_bytes");
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].part != part) continue;
      for (const auto& row : results[i]) table.add(row.series, row.x, row.y);
    }
    bench::finish(table, names[part]);

    // Oracle audit: no broadcast iteration (root in A, acker in B) can
    // beat one WAN round trip, whichever algorithm runs.
    if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
      auto& report = check::selfcheck_report();
      const net::FabricConfig fc =
          core::fabric_defaults(per_cluster, per_cluster);
      const double floor =
          check::bcast_floor_us(fc, delays[part].second);
      for (std::uint64_t size : sizes) {
        const double x = static_cast<double>(size);
        const std::string ctx =
            std::string(names[part]) + " " + std::to_string(size) + "B";
        report.expect_ge("bcast-floor", ctx, table.series("Original").at(x),
                         floor);
        report.expect_ge("bcast-floor", ctx, table.series("Modified").at(x),
                         floor);
      }
    }
  }
  return bench::selfcheck_exit();
}
