// Extension: production-serving scenarios — a replicated KV store with
// quorum reads/writes over an N-site WAN graph, driven to its SLO cliff
// (DESIGN.md §16).
//
// Three replicas live on distinct sites; a client-side coordinator
// (kv::ReplicatedKv) runs R=2/W=2 quorums over one RPC client per
// replica, on each of the three transports the repo models: RPC/RC
// (chunked RDMA, the paper's NFS/RDMA design), RPC/TCP (IPoIB), and
// RPC/SDR (FEC over UD). An open-loop Poisson generator sweeps offered
// load at fixed WAN delays, clean and under an embedded Gilbert-Elliott
// bursty-loss plan: open-loop arrivals do not slow down when the system
// does, so when a transport's capacity is crossed the latency tail
// jumps from ~RTT to the quorum timeout ladder — the SLO cliff. A
// closed-loop table on a 3-site full mesh (client colocated with one
// replica) gives the classic concurrency-scaling view.
//
// Expected shape: RC's bounded per-QP window caps each replica channel
// at window/RTT, so at 10 ms one-way its cliff sits near the bottom of
// the load grid and bursty loss (go-back-N per flow) drags it lower
// still. SDR keeps streaming through loss via local FEC repair, holding
// its cliff above RC's — the pinned oracle. TCP lands between them
// (larger window, loss-blind retransmission timer).
//
// Outputs: p99/goodput CSVs per (transport, delay, fault) series over
// offered load, the closed-loop mesh table, and one SLO JSON document
// ("ibwan.kv_slo.v1") with the full kv::SloReport of every run.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "kv/loadgen.hpp"
#include "kv/replicated.hpp"
#include "kv/slo.hpp"
#include "rpc/rpc.hpp"
#include "sdr/sdr.hpp"
#include "tcp/tcp.hpp"

using namespace ibwan;

namespace {

constexpr int kReplicas = 3;
constexpr std::uint64_t kValueBytes = 16384;
constexpr std::uint64_t kKeySpace = 256;
/// Quorum attempt deadline; ops that cross it resolve via the retry
/// ladder, so a saturated transport's p99 jumps to a multiple of this —
/// the cliff the SLO threshold below detects.
constexpr sim::Duration kOpTimeout = 250 * sim::kMillisecond;
constexpr double kSloP99Us = 200'000.0;  // p99 at/above this = cliff
constexpr double kSloTimeoutRate = 0.05;

enum class Transport { kRc, kTcp, kSdr };
const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kRc: return "rc";
    case Transport::kTcp: return "tcp";
    case Transport::kSdr: return "sdr";
  }
  return "?";
}

std::vector<sim::Duration> serving_delay_grid() {
  return {1'000'000, 10'000'000};  // 1 ms, 10 ms one-way
}

/// Offered open-loop load grid (kops/s). Spans RC's window/RTT capacity
/// at both delays so the cliff lands inside the grid.
std::vector<double> load_grid() {
  if (net::global_fault_plan() != nullptr) return {0.2, 1.6};
  return {0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
}

/// The ext_incast bursty-loss shape: ~2% of time in a bad state losing
/// 20% of packets, on every WAN edge.
net::FaultPlanConfig bursty_plan() {
  net::FaultPlanConfig plan;
  plan.ge.p_good_to_bad = 0.002;
  plan.ge.p_bad_to_good = 0.1;
  plan.ge.loss_good = 0.0001;
  plan.ge.loss_bad = 0.2;
  return plan;
}

std::uint64_t total_ops() {
  // Under an external --faults plan (the chaos determinism job) the
  // run's only purpose is the sequential-vs-par-sites byte comparison.
  if (net::global_fault_plan() != nullptr) return 60;
  return 200 * static_cast<std::uint64_t>(bench::scale());
}

sdr::SdrConfig serving_sdr_config() {
  sdr::SdrConfig cfg;
  cfg.scheme = sdr::Scheme::kRs;
  cfg.parity_per_group = 4;
  return cfg;
}

/// Wires one coordinator against kReplicas replica servers over the
/// chosen transport and drives `load` to completion. The coordinator,
/// generator, and all RPC clients live on the client node's simulator;
/// replicas interact with it only through the wire (site-parallel safe).
kv::SloReport run_serving(Transport transport,
                          const net::TopologyConfig& topo, int client_site,
                          int client_idx,
                          const std::vector<int>& replica_sites,
                          sim::Duration delay,
                          const net::FaultPlanConfig* plan,
                          const kv::LoadGenConfig& load) {
  core::Testbed tb(core::TestbedOptions{
      .topology = &topo, .wan_delay = delay, .faults = plan});
  net::Fabric& fabric = tb.fabric();
  const net::NodeId client_node = tb.node_at(client_site, client_idx);
  std::vector<net::NodeId> replica_nodes;
  for (const int s : replica_sites) replica_nodes.push_back(tb.node_at(s));

  struct Replica {
    std::unique_ptr<ib::Hca> hca;
    std::unique_ptr<kv::ReplicaServer> server;
    // Transport-specific endpoints (only one set is populated).
    std::unique_ptr<rpc::RdmaRpcServer> rdma_server;
    std::unique_ptr<rpc::RdmaRpcClient> rdma_client;
    std::unique_ptr<ipoib::IpoibDevice> dev;
    std::unique_ptr<tcp::TcpStack> stack;
    std::unique_ptr<rpc::TcpRpcServer> tcp_server;
    std::unique_ptr<rpc::TcpRpcClient> tcp_client;
    std::unique_ptr<rpc::SdrRpcServer> sdr_server;
    std::unique_ptr<rpc::SdrRpcClient> sdr_client;
  };

  ib::Hca client_hca(fabric.node(client_node), {});
  std::unique_ptr<ipoib::IpoibDevice> client_dev;
  std::unique_ptr<tcp::TcpStack> client_stack;
  if (transport == Transport::kTcp) {
    client_dev = std::make_unique<ipoib::IpoibDevice>(client_hca,
                                                      core::ipoib_ud());
    client_stack =
        std::make_unique<tcp::TcpStack>(*client_dev, core::tcp_window());
  }

  std::vector<std::unique_ptr<Replica>> reps;
  std::vector<rpc::RpcClient*> channels;
  for (int i = 0; i < kReplicas; ++i) {
    const net::NodeId rn = replica_nodes[static_cast<std::size_t>(i)];
    auto r = std::make_unique<Replica>();
    r->hca = std::make_unique<ib::Hca>(fabric.node(rn), ib::HcaConfig{});
    r->server =
        std::make_unique<kv::ReplicaServer>(tb.sim_for(rn), rn, kv::ReplicaConfig{});
    for (std::uint64_t k = 0; k < kKeySpace; ++k) {
      r->server->preload(k, load.value_bytes);
    }
    switch (transport) {
      case Transport::kRc:
        r->rdma_server = std::make_unique<rpc::RdmaRpcServer>(*r->hca);
        r->rdma_server->set_handler(r->server->handler());
        r->rdma_client =
            std::make_unique<rpc::RdmaRpcClient>(client_hca, *r->rdma_server);
        channels.push_back(r->rdma_client.get());
        break;
      case Transport::kTcp: {
        r->dev = std::make_unique<ipoib::IpoibDevice>(*r->hca,
                                                      core::ipoib_ud());
        ipoib::IpoibDevice::link(*client_dev, *r->dev);
        r->stack = std::make_unique<tcp::TcpStack>(*r->dev,
                                                   core::tcp_window());
        r->tcp_server = std::make_unique<rpc::TcpRpcServer>(*r->stack, 7000);
        r->tcp_server->set_handler(r->server->handler());
        r->tcp_client = std::make_unique<rpc::TcpRpcClient>(
            *client_stack, r->stack->lid(), 7000);
        channels.push_back(r->tcp_client.get());
        break;
      }
      case Transport::kSdr:
        r->sdr_server = std::make_unique<rpc::SdrRpcServer>(
            *r->hca, serving_sdr_config());
        r->sdr_server->set_handler(r->server->handler());
        r->sdr_client = std::make_unique<rpc::SdrRpcClient>(
            client_hca, *r->sdr_server, serving_sdr_config());
        channels.push_back(r->sdr_client.get());
        break;
    }
    reps.push_back(std::move(r));
  }

  kv::QuorumConfig qc;
  qc.read_quorum = 2;
  qc.write_quorum = 2;
  qc.op_timeout = kOpTimeout;
  qc.max_retries = 1;
  kv::ReplicatedKv coord(tb.sim_for(client_node), client_node,
                         std::move(channels), qc);
  kv::LoadGen gen(tb.sim_for(client_node), coord, load);
  gen.start();
  tb.run();
  return kv::make_slo_report(gen.stats());
}

/// One open-loop sweep cell (grid-ordered for deterministic output).
struct OpenRun {
  Transport transport = Transport::kRc;
  sim::Duration delay = 0;
  bool bursty = false;
  double kops = 0;
  kv::SloReport slo;
};

kv::LoadGenConfig open_load(double kops) {
  kv::LoadGenConfig load;
  load.mode = kv::ArrivalMode::kOpen;
  load.offered_kops = kops;
  load.total_ops = total_ops();
  load.get_fraction = 0.7;
  load.key_space = kKeySpace;
  load.zipf_s = 0.99;
  load.value_bytes = kValueBytes;
  return load;
}

/// First load-grid index at which the transport misses the SLO (p99 at
/// or above the threshold, or too many timeouts); loads.size() when the
/// whole grid stays healthy.
std::size_t cliff_index(const std::vector<const OpenRun*>& runs) {
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const kv::SloReport& s = runs[i]->slo;
    if (s.p99_us >= kSloP99Us || s.timeout_rate > kSloTimeoutRate) return i;
  }
  return runs.size();
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Extension: replicated KV serving over an N-site WAN — quorum "
      "R=2/W=2, open/closed-loop load, SLO cliffs per transport");

  const net::TopologyConfig hub = net::TopologyConfig::hub_spoke(kReplicas, 1);

  // Open-loop sweep: transport x delay x {clean, bursty} x load.
  std::vector<OpenRun> points;
  for (const Transport t : {Transport::kRc, Transport::kTcp, Transport::kSdr}) {
    for (const sim::Duration d : serving_delay_grid()) {
      for (const bool bursty : {false, true}) {
        for (const double kops : load_grid()) {
          points.push_back(OpenRun{t, d, bursty, kops, {}});
        }
      }
    }
  }
  bench::SweepRunner runner;
  const auto open_runs = runner.map(points, [&hub](const OpenRun& p) {
    OpenRun r = p;
    const net::FaultPlanConfig plan = bursty_plan();
    r.slo = run_serving(r.transport, hub, /*client_site=*/0, /*client_idx=*/0,
                        {1, 2, 3}, r.delay, r.bursty ? &plan : nullptr,
                        open_load(r.kops));
    return r;
  });

  core::Table p99("(a) open-loop p99 latency (us) vs offered load, hub-spoke",
                  "offered_kops");
  core::Table goodput("(b) open-loop goodput (kops/s) vs offered load",
                      "offered_kops");
  for (const OpenRun& r : open_runs) {
    const std::string series = std::string(transport_name(r.transport)) +
                               "-" + std::to_string(r.delay / 1'000'000) +
                               "ms" + (r.bursty ? "-bursty" : "");
    p99.add(series, r.kops, r.slo.p99_us);
    goodput.add(series, r.kops, r.slo.goodput_kops);
  }

  // Closed-loop mesh: client shares a site with replica 0, the other
  // two replicas are one WAN hop away — concurrency scaling at 10 ms.
  const net::TopologyConfig mesh = net::TopologyConfig::full_mesh(kReplicas, 2);
  struct ClosedRun {
    Transport transport = Transport::kRc;
    int concurrency = 1;
    kv::SloReport slo;
  };
  std::vector<ClosedRun> closed_points;
  for (const Transport t : {Transport::kRc, Transport::kTcp, Transport::kSdr}) {
    for (const int c : {1, 4, 16}) {
      closed_points.push_back(ClosedRun{t, c, {}});
    }
  }
  const auto closed_runs =
      runner.map(closed_points, [&mesh](const ClosedRun& p) {
        ClosedRun r = p;
        kv::LoadGenConfig load;
        load.mode = kv::ArrivalMode::kClosed;
        load.concurrency = r.concurrency;
        load.total_ops = total_ops();
        load.get_fraction = 0.7;
        load.key_space = kKeySpace;
        load.zipf_s = 0.99;
        load.value_bytes = kValueBytes;
        r.slo = run_serving(r.transport, mesh, /*client_site=*/0,
                            /*client_idx=*/1, {0, 1, 2}, 10'000'000, nullptr,
                            load);
        return r;
      });
  core::Table mesh_tbl("(c) closed-loop goodput (kops/s) vs concurrency, "
                       "3-site mesh at 10 ms",
                       "concurrency");
  for (const ClosedRun& r : closed_runs) {
    mesh_tbl.add(transport_name(r.transport), r.concurrency,
                 r.slo.goodput_kops);
  }

  bench::finish(p99, "ext_kv_serving_p99");
  bench::finish(goodput, "ext_kv_serving_goodput");
  bench::finish(mesh_tbl, "ext_kv_serving_mesh");

  // Per-run SLO reports, grid-ordered (byte-identical across runs and
  // --par-sites settings, like the CSVs).
  {
    FILE* f = std::fopen("ext_kv_serving_slo.json", "w");
    if (f != nullptr) {
      std::fprintf(f, "{\"version\":\"ibwan.kv_slo.v1\",\"runs\":[\n");
      bool first = true;
      for (const OpenRun& r : open_runs) {
        std::fprintf(
            f, "%s{\"mode\":\"open\",\"transport\":\"%s\",\"oneway_ms\":%llu,"
            "\"bursty\":%s,\"offered_kops\":%.3f,\"slo\":%s}",
            first ? "" : ",\n", transport_name(r.transport),
            static_cast<unsigned long long>(r.delay / 1'000'000),
            r.bursty ? "true" : "false", r.kops, kv::to_json(r.slo).c_str());
        first = false;
      }
      for (const ClosedRun& r : closed_runs) {
        std::fprintf(
            f, "%s{\"mode\":\"closed\",\"transport\":\"%s\",\"oneway_ms\":10,"
            "\"bursty\":false,\"concurrency\":%d,\"slo\":%s}",
            first ? "" : ",\n", transport_name(r.transport), r.concurrency,
            kv::to_json(r.slo).c_str());
        first = false;
      }
      std::fprintf(f, "\n]}\n");
      std::fclose(f);
      std::printf("  [slo: ext_kv_serving_slo.json]\n");
    }
  }

  // Oracle audit: op conservation per run, the quorum propagation
  // floor, and the pinned cliff ordering (RC cliffs before SDR under
  // bursty loss at 10 ms one-way).
  if (bench::selfcheck_enabled()) {
    auto& report = check::selfcheck_report();
    for (const OpenRun& r : open_runs) {
      const std::string ctx =
          std::string("open ") + transport_name(r.transport) + " " +
          std::to_string(r.delay / 1'000'000) + "ms" +
          (r.bursty ? " bursty" : "") + " kops=" + std::to_string(r.kops);
      report.expect_eq_u64("kv-op-accounting", ctx,
                           r.slo.completed + r.slo.timed_out + r.slo.aborted,
                           r.slo.issued);
    }
    for (const ClosedRun& r : closed_runs) {
      const std::string ctx = std::string("closed ") +
                              transport_name(r.transport) +
                              " c=" + std::to_string(r.concurrency);
      report.expect_eq_u64("kv-op-accounting", ctx,
                           r.slo.completed + r.slo.timed_out + r.slo.aborted,
                           r.slo.issued);
    }
  }
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    // Every quorum needs an ack from at least one WAN-remote replica
    // (hub-spoke: all three are remote), so no completed op can beat
    // two one-way propagation floors to the nearest spoke.
    for (const OpenRun& r : open_runs) {
      if (r.bursty || r.slo.completed == 0) continue;
      const double floor =
          2.0 * check::topology_oneway_floor_us(hub, 0, 1, r.delay);
      const std::string ctx =
          std::string("open ") + transport_name(r.transport) + " " +
          std::to_string(r.delay / 1'000'000) +
          "ms kops=" + std::to_string(r.kops);
      report.expect_ge("kv-quorum-floor", ctx, r.slo.min_us, floor);
    }
    // The pinned SLO-cliff ordering. Collect each transport's bursty
    // 10 ms series in load order and compare first-miss indices.
    const auto series_of = [&open_runs](Transport t) {
      std::vector<const OpenRun*> v;
      for (const OpenRun& r : open_runs) {
        if (r.transport == t && r.delay == 10'000'000 && r.bursty) {
          v.push_back(&r);
        }
      }
      return v;
    };
    const std::size_t rc_cliff = cliff_index(series_of(Transport::kRc));
    const std::size_t sdr_cliff = cliff_index(series_of(Transport::kSdr));
    const std::size_t nloads = load_grid().size();
    report.expect_true(
        "kv-slo-cliff", "rc cliffs within the grid at 10ms bursty",
        rc_cliff < nloads, "rc_cliff_index=" + std::to_string(rc_cliff));
    report.expect_true(
        "kv-slo-cliff", "sdr holds the SLO to higher load than rc",
        sdr_cliff > rc_cliff,
        "rc_cliff_index=" + std::to_string(rc_cliff) +
            " sdr_cliff_index=" + std::to_string(sdr_cliff));
  }
  return bench::selfcheck_exit();
}
