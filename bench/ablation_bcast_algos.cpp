// Ablation: broadcast algorithms over the WAN. Compares the binomial
// tree (topology-unaware schedule), scatter + ring allgather (the
// large-message default), and the WAN-aware hierarchical tree across
// sizes and delays — the detailed collective study the paper's future
// work calls for.
#include <memory>

#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "mpi/mpi.hpp"

using namespace ibwan;
using namespace ibwan::sim::literals;

namespace {

enum class Algo { kBinomial, kScatterRing, kHierarchical };

double bcast_us(Algo algo, std::uint64_t bytes, sim::Duration delay,
                int per_cluster, int iters) {
  core::Testbed tb(per_cluster, delay);
  mpi::Job job(tb.fabric(),
               mpi::Job::split_placement(tb.fabric(), per_cluster));
  const int acker = 2 * per_cluster - 1;
  auto t0 = std::make_shared<sim::Time>(0);
  auto t1 = std::make_shared<sim::Time>(0);
  job.execute([=](mpi::Rank& r) -> sim::Coro<void> {
    co_await r.barrier();
    if (r.rank() == 0) *t0 = r.sim().now();
    for (int it = 0; it < iters; ++it) {
      switch (algo) {
        case Algo::kBinomial:
          co_await r.bcast_binomial(0, bytes);
          break;
        case Algo::kScatterRing:
          co_await r.bcast_scatter_allgather(0, bytes);
          break;
        case Algo::kHierarchical:
          co_await r.bcast_hierarchical(0, bytes);
          break;
      }
      if (r.rank() == acker) {
        co_await r.send(0, 4, 1 << 21);
      } else if (r.rank() == 0) {
        co_await r.recv(acker, 1 << 21);
        *t1 = r.sim().now();
      }
    }
  });
  return sim::to_microseconds(*t1 - *t0) / iters;
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Ablation: broadcast algorithms over IB WAN (latency us, "
      "2 x 32 processes)");

  const int per_cluster = 32;
  const int iters = 2 * bench::scale();
  const sim::Duration delays[] = {100_us, 1000_us};

  // One sweep point per (delay, size); each point runs the three
  // algorithms so their add order inside a size group is preserved.
  struct Point {
    int part;
    sim::Duration delay;
    std::uint64_t size;
  };
  std::vector<Point> points;
  for (int part = 0; part < 2; ++part) {
    for (std::uint64_t size : {1u << 10, 16u << 10, 128u << 10, 1u << 20}) {
      points.push_back({part, delays[part], size});
    }
  }

  bench::SweepRunner runner;
  const auto results = runner.map(points, [&](const Point& p) {
    bench::Rows rows;
    const double x = static_cast<double>(p.size);
    rows.push_back({"binomial", x,
                    bcast_us(Algo::kBinomial, p.size, p.delay, per_cluster,
                             iters)});
    rows.push_back({"scatter+ring", x,
                    bcast_us(Algo::kScatterRing, p.size, p.delay, per_cluster,
                             iters)});
    rows.push_back({"hierarchical", x,
                    bcast_us(Algo::kHierarchical, p.size, p.delay,
                             per_cluster, iters)});
    return rows;
  });

  static const char* names[] = {"ablation_bcast_100us",
                                "ablation_bcast_1000us"};
  for (int part = 0; part < 2; ++part) {
    core::Table table(part == 0 ? "(a) 100us delay" : "(b) 1000us delay",
                      "msg_bytes");
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].part != part) continue;
      for (const auto& row : results[i]) table.add(row.series, row.x, row.y);
    }
    bench::finish(table, names[part]);

    // Oracle audit: no algorithm's bcast+ack iteration can beat one WAN
    // round trip.
    if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
      auto& report = check::selfcheck_report();
      const net::FabricConfig fc =
          core::fabric_defaults(per_cluster, per_cluster);
      const double floor = check::bcast_floor_us(fc, delays[part]);
      for (std::uint64_t size : {1u << 10, 16u << 10, 128u << 10, 1u << 20}) {
        const double x = static_cast<double>(size);
        for (const char* algo : {"binomial", "scatter+ring", "hierarchical"}) {
          report.expect_ge("bcast-floor",
                           std::string(names[part]) + " " + algo + " " +
                               std::to_string(size) + "B",
                           table.series(algo).at(x), floor);
        }
      }
    }
  }
  return bench::selfcheck_exit();
}
