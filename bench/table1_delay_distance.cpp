// Table 1: delay overhead corresponding to wire length (5 us/km), plus a
// measured verbs-level 1-byte latency column showing the emulated
// distance is what the wire sees.
#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Table 1: Delay overhead corresponding to wire length\n"
      "(Obsidian Longbow XR delay knob; 5 us of one-way delay per km)");

  core::Table table("distance -> delay -> measured verbs latency",
                    "distance_km");
  for (double km : {1.0, 2.0, 20.0, 200.0, 2000.0}) {
    const sim::Duration delay = core::delay_for_km(km);
    core::Testbed tb(1, delay);
    const auto lat = ib::perftest::run_latency(
        tb.fabric(), tb.node_a(), tb.node_b(), ib::perftest::Transport::kRc,
        ib::perftest::Op::kSendRecv,
        {.msg_size = 1, .iterations = 50 * bench::scale()});
    table.add("delay_us", km, static_cast<double>(delay) / 1000.0);
    table.add("rc_latency_us", km, lat.avg_us);
  }
  bench::finish(table, "table1_delay_distance");

  // Oracle audit: the delay column is exactly 5 us/km (Table 1), and the
  // measured 1-byte RC latency equals the closed-form model at that
  // delay.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    for (double km : {1.0, 2.0, 20.0, 200.0, 2000.0}) {
      const std::string ctx = "table1 " + std::to_string(km) + "km";
      report.expect_near("delay-per-km", ctx, table.series("delay_us").at(km),
                         check::km_latency_increment_us(km), 1e-12);
      report.expect_near(
          "latency-model", ctx, table.series("rc_latency_us").at(km),
          check::verbs_latency_model_us(fc, {}, ib::perftest::Transport::kRc,
                                        ib::perftest::Op::kSendRecv, 1,
                                        core::delay_for_km(km)),
          tol.exact_rel);
    }
  }
  return bench::selfcheck_exit();
}
