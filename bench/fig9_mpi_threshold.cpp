// Figure 9: MPI protocol-threshold tuning at 1 ms WAN delay.
//  (a) osu_bw, original (8 KB rendezvous threshold) vs tuned (64 KB);
//  (b) osu_bibw, threshold 8 KB vs 64 KB.
//
// Expected shape: the tuned threshold keeps 8-32 KB messages on the
// eager path, avoiding the RTS/CTS round trip; the paper reports ~40%
// for 8 KB unidirectional and up to 83% bidirectional. Also prints the
// threshold the adaptive policy (core/wan_opt.hpp) would pick.
#include "bench_common.hpp"
#include "core/mpi_bench.hpp"
#include "core/testbed.hpp"
#include "core/wan_opt.hpp"

using namespace ibwan;
using namespace ibwan::sim::literals;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Figure 9: MPI threshold tuning at 1 ms delay (MillionBytes/s)");

  const sim::Duration delay = 1000_us;
  const core::AdaptiveRendezvousThreshold policy;
  std::printf("adaptive policy threshold for RTT=2ms: %llu bytes\n",
              static_cast<unsigned long long>(
                  policy.threshold_for_rtt(2 * delay)));

  const int iters = 4 * bench::scale();

  core::Table uni("(a) bandwidth, original vs tuned threshold",
                  "msg_bytes");
  const std::vector<std::uint64_t> uni_sizes = {
      1u << 10, 2u << 10, 4u << 10, 8u << 10, 16u << 10, 32u << 10};
  bench::sweep_into(uni, uni_sizes, [&](std::uint64_t size) {
    bench::Rows rows;
    {
      core::Testbed tb(1, delay);
      rows.push_back(
          {"original(8K)", static_cast<double>(size),
           core::mpibench::osu_bw(
               tb, {.msg_size = size, .window = 64, .iterations = iters})});
    }
    {
      core::Testbed tb(1, delay);
      rows.push_back(
          {"tuned(64K)", static_cast<double>(size),
           core::mpibench::osu_bw(tb, {.msg_size = size,
                                       .window = 64,
                                       .iterations = iters,
                                       .rendezvous_threshold = 64u << 10})});
    }
    return rows;
  });
  bench::finish(uni, "fig9a_mpi_threshold_bw");

  core::Table bidir("(b) bidirectional bandwidth, thresh-8K vs thresh-64K",
                    "msg_bytes");
  const std::vector<std::uint64_t> bidir_sizes = {
      4u << 10, 8u << 10, 16u << 10, 32u << 10, 64u << 10};
  bench::sweep_into(bidir, bidir_sizes, [&](std::uint64_t size) {
    bench::Rows rows;
    {
      core::Testbed tb(1, delay);
      rows.push_back({"thresh-8k", static_cast<double>(size),
                      core::mpibench::osu_bibw(
                          tb, {.msg_size = size, .window = 64,
                               .iterations = iters})});
    }
    {
      core::Testbed tb(1, delay);
      rows.push_back({"thresh-64k", static_cast<double>(size),
                      core::mpibench::osu_bibw(
                          tb, {.msg_size = size, .window = 64,
                               .iterations = iters,
                               .rendezvous_threshold = 64u << 10})});
    }
    return rows;
  });
  bench::finish(bidir, "fig9b_mpi_threshold_bibw");

  // Oracle audit: wire-rate bound everywhere; and the tuned threshold
  // must not lose on the 8-32 KB sizes it moves onto the eager path —
  // that improvement is Figure 9's claim.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    for (std::uint64_t size : uni_sizes) {
      const double x = static_cast<double>(size);
      const std::string ctx = "fig9a " + std::to_string(size) + "B";
      check::check_mpi_bw(report, ctx, fc, delay,
                          uni.series("original(8K)").at(x), tol);
      check::check_mpi_bw(report, ctx, fc, delay,
                          uni.series("tuned(64K)").at(x), tol);
      if (size >= (8u << 10)) {
        report.expect_ge("threshold-tuning", ctx,
                         uni.series("tuned(64K)").at(x),
                         uni.series("original(8K)").at(x), tol.monotone_rel);
      }
    }
    for (std::uint64_t size : bidir_sizes) {
      const double x = static_cast<double>(size);
      const std::string ctx = "fig9b " + std::to_string(size) + "B";
      const double cap = 2.0 * 1000.0 * check::cross_wan_path(fc).wan_rate;
      report.expect_le("mpi-bibw-bound", ctx, bidir.series("thresh-8k").at(x),
                       cap, tol.bound_slack);
      report.expect_le("mpi-bibw-bound", ctx,
                       bidir.series("thresh-64k").at(x), cap,
                       tol.bound_slack);
    }
  }
  return bench::selfcheck_exit();
}
