// Shared bench scaffolding: the paper's delay grid, scaling control, and
// CSV output location.
//
// Each bench binary regenerates one table or figure of the paper. By
// default the per-point transfer volumes are sized for quick runs;
// setting IBWAN_FULL=1 in the environment multiplies the measured
// volume (more iterations, tighter statistics, same shapes).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/report.hpp"
#include "sim/time.hpp"

namespace ibwan::bench {

/// The emulated one-way delays the paper sweeps (Table 1 distances).
inline std::vector<sim::Duration> delay_grid() {
  return {0, 10'000, 100'000, 1'000'000, 10'000'000};
}

inline std::string delay_label(sim::Duration d) {
  if (d == 0) return "no-delay";
  return std::to_string(d / 1000) + "us-delay";
}

/// Volume multiplier: 1 for quick runs, larger with IBWAN_FULL=1.
inline int scale() {
  const char* full = std::getenv("IBWAN_FULL");
  return (full != nullptr && full[0] == '1') ? 8 : 1;
}

/// Writes the CSV next to the binary's working directory.
inline void finish(core::Table& table, const std::string& csv_name) {
  table.print();
  const std::string path = csv_name + ".csv";
  if (table.write_csv(path)) {
    std::printf("  [csv: %s]\n", path.c_str());
  }
}

}  // namespace ibwan::bench
