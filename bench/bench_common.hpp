// Shared bench scaffolding: the paper's delay grid, scaling control,
// CSV output location, and the threaded sweep runner.
//
// Each bench binary regenerates one table or figure of the paper. By
// default the per-point transfer volumes are sized for quick runs;
// setting IBWAN_FULL=1 in the environment multiplies the measured
// volume (more iterations, tighter statistics, same shapes).
//
// Sweeps fan out across a thread pool (SweepRunner). Every grid point
// owns its own Simulator seeded identically to a serial run, and rows
// are merged back in grid order, so the CSVs are bit-for-bit identical
// at any thread count — threading only changes wall-clock time. Set
// IBWAN_THREADS to override the pool size (IBWAN_THREADS=1 forces a
// serial sweep).
#pragma once

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/oracles.hpp"
#include "check/selfcheck.hpp"
#include "core/calibration.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/seed.hpp"
#include "net/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace ibwan::bench {

namespace detail {
/// Destination of the merged metrics export; empty when --metrics was
/// not given.
inline std::string g_metrics_path;  // NOLINT: bench-process singleton
/// --selfcheck: run the analytic-oracle audit alongside the measurement.
inline bool g_selfcheck = false;  // NOLINT: bench-process singleton
}  // namespace detail

/// Bench entry hook: parses `--metrics <out.json>` (or
/// `--metrics=<out.json>`). When present, activates the process-wide
/// MetricsAggregator — every core::Testbed built afterwards enables its
/// registry and feeds the aggregator on teardown — and arranges for the
/// merged "ibwan.metrics.v1" JSON document to be written at exit.
/// Without the flag this is a no-op and the bench output (including the
/// CSV bytes) is identical to a build without metrics at all.
///
/// Also parses `--faults <plan.json>` (or `--faults=<plan.json>`): the
/// fault plan (see src/net/faults.hpp for the format) is installed
/// process-wide, and every Testbed built afterwards attaches it to its
/// WAN links. The plan is set once before any sweep worker starts and
/// is read-only thereafter, so threaded sweeps stay deterministic.
inline void init(int argc, char** argv) {
  // IBWAN_SEED=N re-runs the whole bench under a different master seed
  // (default 42, the seed the committed CSVs were generated with).
  // Read once here, before any Testbed or sweep worker exists, so the
  // override is part of the declared run input. (getenv is legal in
  // bench::init by DET001's allowlist — this is where env knobs live.)
  if (const char* env = std::getenv("IBWAN_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0') {
      std::fprintf(stderr, "bad IBWAN_SEED '%s': not an integer\n", env);
      std::exit(2);
    }
    core::set_default_seed(v);
    if (v != 42) std::printf("  [seed: %llu]\n", v);
  }
  // IBWAN_PAR_SITES=N / --par-sites N requests site-parallel execution
  // (one logical process per cluster, DESIGN.md §13). The knob is a
  // pure wall-clock optimization: every CSV and metrics byte is
  // identical to the sequential run. The flag wins over the env var.
  if (const char* env = std::getenv("IBWAN_PAR_SITES")) {
    const int n = std::atoi(env);
    if (n < 1) {
      std::fprintf(stderr, "bad IBWAN_PAR_SITES '%s': want >= 1\n", env);
      std::exit(2);
    }
    core::set_par_sites(n);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string path;
    std::string faults_path;
    std::string par_sites_arg;
    if (arg == "--par-sites" && i + 1 < argc) {
      par_sites_arg = argv[++i];
    } else if (arg.rfind("--par-sites=", 0) == 0) {
      par_sites_arg = std::string(arg.substr(12));
    }
    if (!par_sites_arg.empty()) {
      const int n = std::atoi(par_sites_arg.c_str());
      if (n < 1) {
        std::fprintf(stderr, "bad --par-sites '%s': want >= 1\n",
                     par_sites_arg.c_str());
        std::exit(2);
      }
      core::set_par_sites(n);
      continue;
    }
    if (arg == "--selfcheck") {
      detail::g_selfcheck = true;
      // The conservation audit in selfcheck_exit() reads the merged
      // end-of-run snapshot, so every testbed must feed the aggregator
      // (no JSON is written unless --metrics also asked for one).
      sim::MetricsAggregator::global().activate();
      std::printf("  [selfcheck: on]\n");
      continue;
    }
    if (arg == "--metrics" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      path = std::string(arg.substr(10));
    } else if (arg == "--faults" && i + 1 < argc) {
      faults_path = argv[++i];
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_path = std::string(arg.substr(9));
    }
    if (!faults_path.empty()) {
      net::FaultPlanConfig plan;
      std::string err;
      if (!net::load_fault_plan(faults_path, &plan, &err)) {
        std::fprintf(stderr, "bad fault plan %s: %s\n", faults_path.c_str(),
                     err.c_str());
        std::exit(2);
      }
      net::set_global_fault_plan(plan);
      std::printf("  [faults: %s]\n", faults_path.c_str());
      continue;
    }
    // (fallthrough: unrecognized args are ignored, as before)
    if (path.empty()) continue;
    detail::g_metrics_path = path;
    sim::MetricsAggregator::global().activate();
    std::atexit([] {
      const sim::MetricsSnapshot snap =
          sim::MetricsAggregator::global().merged();
      if (snap.write_json(detail::g_metrics_path)) {
        std::printf("  [metrics: %s]\n", detail::g_metrics_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     detail::g_metrics_path.c_str());
      }
    });
  }
  if (core::par_sites() > 1) {
    std::printf("  [par-sites: %d]\n", core::par_sites());
  }
}

/// The emulated one-way delays the paper sweeps (Table 1 distances).
inline std::vector<sim::Duration> delay_grid() {
  return {0, 10'000, 100'000, 1'000'000, 10'000'000};
}

inline std::string delay_label(sim::Duration d) {
  if (d == 0) return "no-delay";
  return std::to_string(d / 1000) + "us-delay";
}

/// Volume multiplier: 1 for quick runs, larger with IBWAN_FULL=1.
inline int scale() {
  // NOLINT-IBWAN(DET001): explicit user knob, read once before sweeps start
  const char* full = std::getenv("IBWAN_FULL");
  return (full != nullptr && full[0] == '1') ? 8 : 1;
}

/// One (series, x, y) measurement produced inside a sweep worker.
struct Row {
  std::string series;
  double x;
  double y;
};
using Rows = std::vector<Row>;

/// Fans independent measurement points across a std::thread pool.
///
/// Determinism: workers never touch shared state — each point builds its
/// own Testbed/Simulator — and map() stores result i in slot i, so the
/// merged output is identical to a serial run regardless of thread count
/// or completion order.
class SweepRunner {
 public:
  explicit SweepRunner(int threads = default_threads()) : threads_(threads) {}

  /// Pool size: IBWAN_THREADS if set, else hardware concurrency.
  static int default_threads() {
    // NOLINT-IBWAN(DET001): pool size never affects CSV bytes (rows
    // merge in grid order); read once before workers start
    if (const char* env = std::getenv("IBWAN_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? static_cast<int>(hw) : 1;
  }

  /// Runs fn(i) for each i in [0, n), distributing i across the pool.
  template <class Fn>
  void for_each(std::size_t n, Fn&& fn) const {
    const std::size_t workers =
        std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    auto work = [&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 1; t < workers; ++t) pool.emplace_back(work);
    work();
    for (auto& th : pool) th.join();
  }

  /// Maps points to fn(point) concurrently, preserving input order.
  template <class T, class Fn>
  auto map(const std::vector<T>& points, Fn&& fn) const {
    using R = std::invoke_result_t<Fn&, const T&>;
    std::vector<R> out(points.size());
    for_each(points.size(), [&](std::size_t i) { out[i] = fn(points[i]); });
    return out;
  }

 private:
  int threads_;
};

/// A (delay, seed) sweep point for multi-seed repetitions of the grid.
struct SweepPoint {
  sim::Duration delay;
  std::uint64_t seed;
};

/// The delay grid crossed with `seeds` repetition seeds counting up
/// from the master seed (42, 43, ... by default; IBWAN_SEED shifts the
/// base), delay-major so merged output groups repetitions per delay.
inline std::vector<SweepPoint> delay_seed_grid(
    int seeds = 1, std::uint64_t first_seed = core::default_seed()) {
  std::vector<SweepPoint> points;
  for (sim::Duration d : delay_grid()) {
    for (int s = 0; s < seeds; ++s) {
      points.push_back({d, first_seed + static_cast<std::uint64_t>(s)});
    }
  }
  return points;
}

/// Appends per-point row batches to `table` in grid order.
inline void add_rows(core::Table& table, const std::vector<Rows>& per_point) {
  for (const auto& rows : per_point) {
    for (const auto& r : rows) table.add(r.series, r.x, r.y);
  }
}

/// Maps each point to a Rows batch on the pool, then fills the table in
/// deterministic grid order.
template <class T, class Fn>
void sweep_into(core::Table& table, const std::vector<T>& points, Fn&& fn) {
  SweepRunner runner;
  add_rows(table, runner.map(points, std::forward<Fn>(fn)));
}

/// True when the bench ran with --selfcheck; per-figure oracle blocks
/// gate on this (and usually on no --faults plan being active, since
/// value oracles assume clean runs).
inline bool selfcheck_enabled() { return detail::g_selfcheck; }

/// Writes the CSV next to the binary's working directory. Under
/// --selfcheck every emitted point is also audited for the generic
/// invariants no figure may violate: finite, non-negative values.
inline void finish(core::Table& table, const std::string& csv_name) {
  table.print();
  const std::string path = csv_name + ".csv";
  if (table.write_csv(path)) {
    std::printf("  [csv: %s]\n", path.c_str());
  }
  if (!detail::g_selfcheck) return;
  auto& report = check::selfcheck_report();
  for (const auto& s : table.all_series()) {
    for (const auto& [x, y] : s.points) {
      report.expect_true(
          "table-sane", csv_name + " " + s.name + " x=" + std::to_string(x),
          std::isfinite(y) && y >= 0.0, "y=" + std::to_string(y));
    }
  }
}

/// Bench epilogue under --selfcheck: folds the conservation audit over
/// the merged metrics snapshot into the process report, prints the
/// verdict, and returns the bench's exit code (1 on any failed check).
/// A no-op returning 0 when --selfcheck was not given.
inline int selfcheck_exit() {
  if (!detail::g_selfcheck) return 0;
  auto& report = check::selfcheck_report();
  // Link conservation is exact even under a fault plan (drops are
  // accounted); exact WQE accounting is not (error flushes race the
  // snapshot against retransmit state), so it stays one-sided here.
  check::ConservationOptions copt;
  check::check_conservation(report, "merged",
                            sim::MetricsAggregator::global().merged(), copt);
  std::printf("  [selfcheck] %s\n", report.summary().c_str());
  if (!report.ok()) {
    std::fputs(report.failure_log().c_str(), stderr);
    return 1;
  }
  return 0;
}

}  // namespace ibwan::bench
