// Figure 3: verbs-level small-message latency for Send/Recv over UD,
// Send/Recv over RC, and RDMA Write over RC — through the Longbow pair
// at zero emulated delay — against back-to-back connected nodes.
//
// Expected shape: the Longbow pair adds ~5 us; RDMA Write stays below
// Send/Recv; both clusters are DDR so back-to-back latency is low.
#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"
#include "net/fabric.hpp"

using namespace ibwan;
using ib::perftest::Op;
using ib::perftest::Transport;

namespace {

double through_longbows(Transport t, Op op, std::uint32_t size, int iters) {
  core::Testbed tb(1, 0);
  return ib::perftest::run_latency(tb.fabric(), tb.node_a(), tb.node_b(), t,
                                   op, {.msg_size = size, .iterations = iters})
      .avg_us;
}

double back_to_back(Transport t, Op op, std::uint32_t size, int iters) {
  sim::Simulator sim;
  net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1, .back_to_back = true});
  return ib::perftest::run_latency(fabric, 0, 1, t, op,
                                   {.msg_size = size, .iterations = iters})
      .avg_us;
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Figure 3: Verbs-level latency (us), Longbow pair at 0 km vs "
      "back-to-back");

  const int iters = 200 * bench::scale();
  const std::vector<std::uint32_t> sizes = {1u, 8u, 64u, 256u, 1024u};

  core::Table table("one-way latency (us) by message size", "msg_bytes");
  bench::sweep_into(table, sizes, [&](std::uint32_t size) {
    bench::Rows rows;
    rows.push_back({"SendRecv/UD", static_cast<double>(size),
                    through_longbows(Transport::kUd, Op::kSendRecv, size,
                                     iters)});
    rows.push_back({"SendRecv/RC", static_cast<double>(size),
                    through_longbows(Transport::kRc, Op::kSendRecv, size,
                                     iters)});
    rows.push_back({"RDMAWrite/RC", static_cast<double>(size),
                    through_longbows(Transport::kRc, Op::kRdmaWrite, size,
                                     iters)});
    rows.push_back({"BackToBack-SR/RC", static_cast<double>(size),
                    back_to_back(Transport::kRc, Op::kSendRecv, size, iters)});
    rows.push_back({"BackToBack-Write/RC", static_cast<double>(size),
                    back_to_back(Transport::kRc, Op::kRdmaWrite, size,
                                 iters)});
    return rows;
  });
  bench::finish(table, "fig3_verbs_latency");

  // Oracle audit: the through-Longbow curves must equal the closed-form
  // per-hop latency model exactly (back-to-back uses a different path,
  // so only the generic table-sane checks cover it).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const check::Tolerances tol;
    const struct {
      const char* series;
      Transport t;
      Op op;
    } curves[] = {
        {"SendRecv/UD", Transport::kUd, Op::kSendRecv},
        {"SendRecv/RC", Transport::kRc, Op::kSendRecv},
        {"RDMAWrite/RC", Transport::kRc, Op::kRdmaWrite},
    };
    for (const auto& c : curves) {
      for (std::uint32_t size : sizes) {
        report.expect_near(
            "latency-model",
            "fig3 " + std::string(c.series) + " " + std::to_string(size) + "B",
            table.series(c.series).at(size),
            check::verbs_latency_model_us(fc, {}, c.t, c.op, size, 0),
            tol.exact_rel);
      }
    }
  }
  return bench::selfcheck_exit();
}
