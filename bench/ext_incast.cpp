// Extension: N-site incast over the WAN — RC vs SDR into one hub
// (DESIGN.md §15).
//
// The paper's testbed stops at two clusters; the topology-graph fabric
// lets us ask the next question a multi-site deployment poses: what
// happens when N spoke sites stream into one hub concurrently? Each
// spoke owns a private Longbow pair into the hub (a hub/spoke WAN
// graph), so the WAN is not shared — the contention point is the hub's
// DDR edge and the per-flow reliability protocol's reaction to the
// bandwidth-delay product.
//
// Sweeps aggregate delivered goodput at the hub for RC (hand-rolled
// concurrent verbs flows, one QP pair per spoke) against SDR (rs FEC,
// one endpoint per spoke into a single hub endpoint): (a) over one-way
// delay at a fixed spoke count, (b) over spoke count at a fixed 10 ms
// delay, clean and under an embedded Gilbert-Elliott bursty-loss plan
// on every WAN edge; plus (c) spoke-to-spoke ping-pong latency — the
// first committed curve whose path crosses two WAN hops and a transit
// site's switch, audited against the multi-hop propagation floor
// (check::topology_oneway_floor_us).
//
// Expected shape: at low delay RC and SDR both fill the hub edge and
// goodput grows with spoke count until the hub link saturates. As
// delay grows, RC's bounded per-flow window caps each spoke at
// window/RTT while SDR's chunk pipeline keeps streaming, so the
// aggregate RC curve decays the same way Figure 5 does — incast
// parallelism does not buy back the BDP the window cannot cover. Under
// bursty loss the gap widens (go-back-N per flow vs local FEC repair).
#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/perftest.hpp"
#include "ib/qp.hpp"
#include "sdr/sdr.hpp"

using namespace ibwan;
using ib::perftest::Transport;

namespace {

constexpr std::uint64_t kMsgBytes = 1ull << 20;
constexpr int kFixedSpokes = 4;
constexpr sim::Duration kFixedDelay = 10'000'000;  // 10 ms one-way

/// Delay grid for the incast sweeps: LAN range to the paper's longest
/// emulated distance.
std::vector<sim::Duration> incast_delay_grid() {
  return {0, 1'000'000, 10'000'000, 20'000'000};
}

std::vector<int> spoke_grid() { return {2, 4, 8}; }

/// Embedded bursty-loss plan (the ext_sdr_fec shape): ~2% of time in a
/// bad state losing 20% of packets. Applied to every WAN edge — each
/// edge's GE chain draws from its own link-name-keyed RNG stream.
net::FaultPlanConfig bursty_plan() {
  net::FaultPlanConfig plan;
  plan.ge.p_good_to_bad = 0.002;
  plan.ge.p_bad_to_good = 0.1;
  plan.ge.loss_good = 0.0001;
  plan.ge.loss_bad = 0.2;
  return plan;
}

/// Bytes each spoke streams into the hub. Under an external --faults
/// plan (the chaos CI determinism check) the volume shrinks: the run's
/// only purpose there is the sequential-vs-par-sites byte comparison,
/// and RC's go-back-N under WAN jitter costs a BDP per reorder.
std::uint64_t per_spoke_volume() {
  if (net::global_fault_plan() != nullptr) return 2ull << 20;
  return (8ull << 20) * static_cast<std::uint64_t>(bench::scale());
}

struct IncastOutcome {
  double goodput = 0;  // aggregate delivered MB/s at the hub
  std::uint64_t hub_noroute = 0;  // hub switch drops_no_route after run
};

/// Concurrent RC incast: one hand-rolled verbs flow per spoke (own HCA,
/// CQs, and RC QP on both ends — ib::perftest::run_bandwidth drains the
/// whole fabric per flow, so concurrency needs the flows started before
/// a single run). Aggregate goodput is total bytes over the last
/// receive completion at the hub.
IncastOutcome run_rc_incast(int spokes, sim::Duration delay,
                            const net::FaultPlanConfig* plan) {
  net::TopologyConfig topo = net::TopologyConfig::hub_spoke(spokes, 1);
  core::Testbed tb(core::TestbedOptions{
      .topology = &topo, .wan_delay = delay, .faults = plan});
  net::Fabric& fabric = tb.fabric();

  const int iters = ib::perftest::iters_for_bytes(
      per_spoke_volume(), kMsgBytes, 2, 4096);
  const int window = 16;

  net::Node& hub_node = fabric.node(tb.node_at(0));
  ib::Hca hub_hca(hub_node, {});
  ib::Cq hub_scq(hub_node.sim());
  ib::Cq hub_rcq(hub_node.sim());

  struct SpokeFlow {
    std::unique_ptr<ib::Hca> hca;
    std::unique_ptr<ib::Cq> scq;
    std::unique_ptr<ib::Cq> rcq;
    ib::RcQp* qp = nullptr;
    int posted = 0;
  };
  std::vector<std::unique_ptr<SpokeFlow>> flows;

  int received = 0;
  sim::Time last_arrival = 0;
  hub_rcq.set_callback([&](const ib::Cqe&) {
    ++received;
    if (received == spokes * iters) last_arrival = hub_node.sim().now();
  });

  for (int s = 0; s < spokes; ++s) {
    auto flow = std::make_unique<SpokeFlow>();
    net::Node& sp_node = fabric.node(tb.node_at(s + 1));
    flow->hca = std::make_unique<ib::Hca>(sp_node, ib::HcaConfig{});
    flow->scq = std::make_unique<ib::Cq>(sp_node.sim());
    flow->rcq = std::make_unique<ib::Cq>(sp_node.sim());
    flow->qp = &flow->hca->create_rc_qp(*flow->scq, *flow->rcq);
    ib::RcQp& hub_qp = hub_hca.create_rc_qp(hub_scq, hub_rcq);
    flow->qp->connect(hub_hca.lid(), hub_qp.qpn());
    hub_qp.connect(flow->hca->lid(), flow->qp->qpn());
    for (int i = 0; i < iters; ++i) {
      hub_qp.post_recv(ib::RecvWr{.max_length = kMsgBytes});
    }
    flows.push_back(std::move(flow));
  }

  // Each spoke posts a bounded window and chains the rest off its send
  // completions, like perftest's Streamer.
  for (auto& flow : flows) {
    SpokeFlow* f = flow.get();
    auto post_one = [f]() {
      ++f->posted;
      f->qp->post_send(ib::SendWr{
          .wr_id = static_cast<std::uint64_t>(f->posted),
          .length = kMsgBytes});
    };
    f->scq->set_callback([f, post_one, iters](const ib::Cqe&) {
      if (f->posted < iters) post_one();
    });
    const int burst = std::min(window, iters);
    for (int i = 0; i < burst; ++i) post_one();
  }

  tb.run();

  IncastOutcome out;
  out.hub_noroute = fabric.site_switch(0).drops_no_route();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(received) * kMsgBytes;
  if (last_arrival > 0) {
    out.goodput =
        static_cast<double>(bytes) / static_cast<double>(last_arrival) * 1e3;
  }
  return out;
}

/// Concurrent SDR incast: one endpoint per spoke streaming rs-coded
/// messages into a single hub endpoint (SDR demuxes receive state per
/// source). Makespan is the last sender-confirmed completion.
IncastOutcome run_sdr_incast(int spokes, sim::Duration delay,
                             const net::FaultPlanConfig* plan) {
  net::TopologyConfig topo = net::TopologyConfig::hub_spoke(spokes, 1);
  core::Testbed tb(core::TestbedOptions{
      .topology = &topo, .wan_delay = delay, .faults = plan});
  net::Fabric& fabric = tb.fabric();

  // The whole per-spoke budget is issued up front — SDR's chunk queue
  // paces the wire across message boundaries, so the measurement is
  // protocol-limited, not issue-limited.
  const int msgs_per_spoke =
      static_cast<int>(per_spoke_volume() / kMsgBytes);
  const int window = msgs_per_spoke;

  ib::Hca hub_hca(fabric.node(tb.node_at(0)), {});
  sdr::SdrConfig cfg;
  cfg.scheme = sdr::Scheme::kRs;
  cfg.parity_per_group = 4;
  sdr::SdrEndpoint hub(hub_hca, cfg);

  struct SpokeTx {
    std::unique_ptr<ib::Hca> hca;
    std::unique_ptr<sdr::SdrEndpoint> ep;
    int issued = 0;
    std::function<void()> issue_next;
  };
  std::vector<std::unique_ptr<SpokeTx>> txs;
  sim::Time last_done = 0;

  for (int s = 0; s < spokes; ++s) {
    auto tx = std::make_unique<SpokeTx>();
    tx->hca = std::make_unique<ib::Hca>(fabric.node(tb.node_at(s + 1)),
                                        ib::HcaConfig{});
    tx->ep = std::make_unique<sdr::SdrEndpoint>(*tx->hca, cfg);
    SpokeTx* t = tx.get();
    tx->issue_next = [t, &hub, &last_done, msgs_per_spoke]() {
      if (t->issued == msgs_per_spoke) return;
      ++t->issued;
      t->ep->send(hub.dest(), kMsgBytes, [t, &last_done](bool ok) {
        if (ok) last_done = std::max(last_done, t->hca->sim().now());
        t->issue_next();
      });
    };
    txs.push_back(std::move(tx));
  }
  for (auto& tx : txs) {
    for (int i = 0; i < window; ++i) tx->issue_next();
  }

  tb.run();

  IncastOutcome out;
  out.hub_noroute = fabric.site_switch(0).drops_no_route();
  if (last_done > 0) {
    out.goodput = static_cast<double>(hub.stats().msg_bytes_delivered) /
                  static_cast<double>(last_done) * 1e3;
  }
  return out;
}

/// Spoke-to-spoke ping-pong: node on site 1 to node on site 2, routed
/// through the hub — two WAN hops plus a transit through the hub's
/// switch, exercising the multi-hop routing tables end to end.
ib::perftest::LatencyResult run_spoke_latency(sim::Duration delay) {
  net::TopologyConfig topo =
      net::TopologyConfig::hub_spoke(kFixedSpokes, 1);
  core::Testbed tb(
      core::TestbedOptions{.topology = &topo, .wan_delay = delay});
  const int iters = net::global_fault_plan() != nullptr ? 50 : 200;
  return ib::perftest::run_latency(
      tb.fabric(), tb.node_at(1), tb.node_at(2), Transport::kRc,
      ib::perftest::Op::kSendRecv,
      {.msg_size = 2, .iterations = iters, .warmup = 5});
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Extension: N-site incast — RC vs SDR into one hub over a "
      "hub/spoke WAN graph (MillionBytes/s)");

  // (a)+(b) goodput vs one-way delay at 4 spokes, clean and bursty.
  // Workers never touch shared state (SweepRunner runs them on a
  // pool); the hub's no-route drop counts ride back in the results.
  struct DelayPoint {
    bench::Rows clean, bursty;
    std::uint64_t noroute = 0;
  };
  bench::SweepRunner runner;
  const auto by_delay =
      runner.map(incast_delay_grid(), [](sim::Duration delay) {
        DelayPoint r;
        const double x = static_cast<double>(delay) / 1e6;  // ms one-way
        const net::FaultPlanConfig plan = bursty_plan();
        for (const bool lossy : {false, true}) {
          const net::FaultPlanConfig* p = lossy ? &plan : nullptr;
          const IncastOutcome rc = run_rc_incast(kFixedSpokes, delay, p);
          const IncastOutcome sdr = run_sdr_incast(kFixedSpokes, delay, p);
          (lossy ? r.bursty : r.clean).push_back({"rc", x, rc.goodput});
          (lossy ? r.bursty : r.clean).push_back({"sdr-rs", x, sdr.goodput});
          r.noroute += rc.hub_noroute + sdr.hub_noroute;
        }
        return r;
      });

  // (c) goodput vs spoke count at 10 ms, clean and bursty.
  struct SpokePoint {
    bench::Rows clean, bursty;
    std::uint64_t noroute = 0;
  };
  const auto by_spokes = runner.map(spoke_grid(), [](int spokes) {
    SpokePoint r;
    const double x = spokes;
    const net::FaultPlanConfig plan = bursty_plan();
    for (const bool lossy : {false, true}) {
      const net::FaultPlanConfig* p = lossy ? &plan : nullptr;
      const IncastOutcome rc = run_rc_incast(spokes, kFixedDelay, p);
      const IncastOutcome sdr = run_sdr_incast(spokes, kFixedDelay, p);
      (lossy ? r.bursty : r.clean).push_back({"rc", x, rc.goodput});
      (lossy ? r.bursty : r.clean).push_back({"sdr-rs", x, sdr.goodput});
      r.noroute += rc.hub_noroute + sdr.hub_noroute;
    }
    return r;
  });
  std::uint64_t noroute_total = 0;
  for (const auto& r : by_delay) noroute_total += r.noroute;
  for (const auto& r : by_spokes) noroute_total += r.noroute;

  // (d) spoke->spoke half-RTT through the hub (two WAN hops).
  struct LatPoint {
    bench::Rows rows;
    double min_us = 0;
  };
  const auto lat_points =
      runner.map(incast_delay_grid(), [](sim::Duration delay) {
        LatPoint r;
        const double x = static_cast<double>(delay) / 1e6;
        const ib::perftest::LatencyResult res = run_spoke_latency(delay);
        r.rows.push_back({"rc-2hop", x, res.avg_us});
        r.min_us = res.min_us;
        return r;
      });

  core::Table vs_delay("(a) aggregate goodput vs delay, 4 spokes, clean",
                       "oneway_ms");
  core::Table vs_delay_loss(
      "(b) aggregate goodput vs delay, 4 spokes, bursty loss", "oneway_ms");
  for (const auto& r : by_delay) {
    for (const auto& row : r.clean) vs_delay.add(row.series, row.x, row.y);
    for (const auto& row : r.bursty) {
      vs_delay_loss.add(row.series, row.x, row.y);
    }
  }
  core::Table vs_spokes("(c) aggregate goodput vs spoke count at 10 ms",
                        "spokes");
  for (const auto& r : by_spokes) {
    for (const auto& row : r.clean) vs_spokes.add(row.series, row.x, row.y);
    for (const auto& row : r.bursty) {
      vs_spokes.add(row.series + std::string("-bursty"), row.x, row.y);
    }
  }
  core::Table lat("(d) spoke-to-spoke half-RTT through the hub",
                  "oneway_ms");
  for (const auto& r : lat_points) {
    for (const auto& row : r.rows) lat.add(row.series, row.x, row.y);
  }

  bench::finish(vs_delay, "ext_incast_goodput");
  bench::finish(vs_delay_loss, "ext_incast_goodput_bursty");
  bench::finish(vs_spokes, "ext_incast_spokes");
  bench::finish(lat, "ext_incast_latency");

  // Oracle audit: the multi-hop propagation floor, conservation of the
  // incast traffic, and the hub's routing tables (no no-route drops).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::TopologyConfig topo =
        net::TopologyConfig::hub_spoke(kFixedSpokes, 1);
    const auto grid = incast_delay_grid();
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const double floor =
          check::topology_oneway_floor_us(topo, 1, 2, grid[i]);
      report.expect_ge(
          "incast-2hop-floor",
          "oneway_ms=" + std::to_string(grid[i] / 1'000'000),
          lat_points[i].min_us, floor);
    }
    // Aggregate goodput can never beat the hub's DDR edge nor the sum
    // of the spokes' SDR WAN pipes (raw rates — a strict bound).
    const double hub_edge_mbps = topo.lan_rate * 1e3;
    for (const auto* tbl : {&vs_delay, &vs_spokes}) {
      for (const auto& s : tbl->all_series()) {
        for (const auto& [x, y] : s.points) {
          const double spokes =
              tbl == &vs_spokes ? x : static_cast<double>(kFixedSpokes);
          const double bound = std::min(hub_edge_mbps, spokes * 1e3);
          report.expect_le("incast-wire-bound",
                           s.name + " x=" + std::to_string(x), y, bound,
                           0.02);
        }
      }
    }
    report.expect_true("incast-no-route-drops", "all committed runs",
                       noroute_total == 0,
                       "drops_no_route=" + std::to_string(noroute_total));
    // Exact conservation on a dedicated clean 3-spoke run.
    {
      net::TopologyConfig t3 = net::TopologyConfig::hub_spoke(3, 1);
      core::Testbed tb(core::TestbedOptions{
          .topology = &t3, .wan_delay = kFixedDelay, .metrics = true});
      ib::Hca hub_hca(tb.fabric().node(tb.node_at(0)), {});
      sdr::SdrEndpoint hub(hub_hca, {});
      std::vector<std::unique_ptr<ib::Hca>> hcas;
      std::vector<std::unique_ptr<sdr::SdrEndpoint>> eps;
      for (int s = 1; s <= 3; ++s) {
        hcas.push_back(std::make_unique<ib::Hca>(
            tb.fabric().node(tb.node_at(s)), ib::HcaConfig{}));
        eps.push_back(
            std::make_unique<sdr::SdrEndpoint>(*hcas.back(), sdr::SdrConfig{}));
        for (int i = 0; i < 2; ++i) eps.back()->send(hub.dest(), kMsgBytes);
      }
      tb.run();
      check::ConservationOptions copt;
      copt.exact_sdr = true;
      check::check_conservation(report, "incast-3spoke",
                                tb.metrics_snapshot(), copt);
    }
  }
  return bench::selfcheck_exit();
}
