// Figure 5: verbs-level RC throughput vs message size, one curve per
// emulated WAN delay. (a) unidirectional, (b) bidirectional.
//
// Expected shape: peak ~985 MB/s; small/medium messages degrade
// progressively with delay (the bounded in-flight window cannot fill
// the long pipe) while large messages recover the peak — the knee moves
// right as delay grows.
#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"

using namespace ibwan;
using ib::perftest::Transport;

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner("Figure 5: Verbs-level throughput using RC (MillionBytes/s)");

  const std::vector<std::uint32_t> sizes = {
      1u << 10, 4u << 10, 16u << 10, 64u << 10,
      256u << 10, 1u << 20, 4u << 20};

  struct DelayResult {
    bench::Rows uni, bidir;
  };
  bench::SweepRunner runner;
  const auto results =
      runner.map(bench::delay_grid(), [&](sim::Duration delay) {
        DelayResult r;
        const std::string label = bench::delay_label(delay);
        for (std::uint32_t size : sizes) {
          const int iters = ib::perftest::iters_for_bytes(
              (32u << 20) * bench::scale(), size, 32, 4096);
          {
            core::Testbed tb(1, delay);
            r.uni.push_back(
                {label, static_cast<double>(size),
                 ib::perftest::run_bandwidth(
                     tb.fabric(), tb.node_a(), tb.node_b(), Transport::kRc,
                     {.msg_size = size, .iterations = iters})
                     .mbytes_per_sec});
          }
          {
            core::Testbed tb(1, delay);
            r.bidir.push_back(
                {label, static_cast<double>(size),
                 ib::perftest::run_bidir_bandwidth(
                     tb.fabric(), tb.node_a(), tb.node_b(), Transport::kRc,
                     {.msg_size = size, .iterations = iters})
                     .mbytes_per_sec});
          }
        }
        return r;
      });

  core::Table uni("(a) RC bandwidth", "msg_bytes");
  core::Table bidir("(b) RC bidirectional bandwidth", "msg_bytes");
  for (const auto& r : results) {
    for (const auto& row : r.uni) uni.add(row.series, row.x, row.y);
    for (const auto& row : r.bidir) bidir.add(row.series, row.x, row.y);
  }
  bench::finish(uni, "fig5a_rc_bw");
  bench::finish(bidir, "fig5b_rc_bibw");

  // Oracle audit: every (size, delay) point must respect the
  // min(wire, window/RTT) bound and land on the right side of the
  // BDP knee; bidirectional traffic is capped by twice the wire peak.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const ib::HcaConfig hca;
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const std::string label = bench::delay_label(delay);
      for (std::uint32_t size : sizes) {
        const std::string ctx =
            "fig5 " + label + " " + std::to_string(size) + "B";
        const int iters = ib::perftest::iters_for_bytes(
            (32u << 20) * bench::scale(), size, 32, 4096);
        const std::uint64_t total =
            static_cast<std::uint64_t>(iters) * size;
        check::check_rc_bw(report, ctx, fc, hca, size, delay,
                           uni.series(label).at(size), tol, total);
        report.expect_le("rc-bibw-bound", ctx, bidir.series(label).at(size),
                         2.0 * check::rc_wire_peak_mbps(fc, hca, size),
                         tol.bound_slack);
      }
    }
  }
  return bench::selfcheck_exit();
}
