// Ablation: TCP selective acknowledgment on a lossy WAN. The paper's
// IPoIB measurements ran on the era's default (no-SACK-equivalent)
// recovery; this quantifies how much loss resilience SACK buys over
// go-back-N as the loss rate and delay grow.
#include "bench_common.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;
using namespace ibwan::sim::literals;

namespace {

double throughput(bool sack, double loss, sim::Duration delay,
                  std::uint64_t bytes, std::uint64_t seed) {
  // Built directly (not via Testbed): loss injection is a fabric-build
  // parameter.
  sim::Simulator sim;
  sim.seed(seed);
  net::FabricConfig fc = core::fabric_defaults(1, 1);
  fc.longbow.loss_rate = loss;
  net::Fabric fabric(sim, fc);
  fabric.set_wan_delay(delay);
  ib::Hca hca_a(fabric.node(0), {});
  ib::Hca hca_b(fabric.node(1), {});
  ipoib::IpoibDevice dev_a(hca_a, {});
  ipoib::IpoibDevice dev_b(hca_b, {});
  ipoib::IpoibDevice::link(dev_a, dev_b);
  tcp::TcpConfig cfg = core::tcp_window();
  cfg.sack = sack;
  tcp::TcpStack client(dev_a, cfg);
  tcp::TcpStack server(dev_b, cfg);
  server.listen(5001, [](tcp::TcpConnection&) {});
  tcp::TcpConnection& c = client.connect(1, 5001);
  c.send(bytes);
  sim::Time done = 0;
  c.set_on_acked([&](std::uint64_t acked) {
    if (acked == bytes) done = sim.now();
  });
  sim.run();
  return static_cast<double>(bytes) / sim::to_seconds(done) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Ablation: TCP SACK vs go-back-N on a lossy WAN link "
      "(IPoIB-UD, 100 us delay, MillionBytes/s)");

  const std::uint64_t bytes = (16ull << 20) * bench::scale();
  const std::vector<double> losses = {0.0, 0.001, 0.005, 0.01, 0.02};

  core::Table table("throughput by loss rate", "loss_pct");
  bench::sweep_into(table, losses, [&](double loss) {
    double gbn = 0, sack = 0;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      gbn += throughput(false, loss, 100_us, bytes, seed) / 3.0;
      sack += throughput(true, loss, 100_us, bytes, seed) / 3.0;
    }
    bench::Rows rows;
    rows.push_back({"go-back-N", loss * 100.0, gbn});
    rows.push_back({"SACK", loss * 100.0, sack});
    return rows;
  });
  bench::finish(table, "ablation_tcp_sack");

  // Oracle audit: goodput never exceeds the WAN wire rate at any loss
  // rate, and selective acknowledgment never loses to go-back-N (the
  // loss injection is seed-averaged, so allow a little wiggle).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const double wire = 1000.0 * check::cross_wan_path(fc).wan_rate;
    const check::Tolerances tol;
    for (double loss : losses) {
      const double x = loss * 100.0;
      const std::string ctx =
          "ablation_tcp_sack loss=" + std::to_string(loss);
      const double gbn = table.series("go-back-N").at(x);
      const double sack_bw = table.series("SACK").at(x);
      report.expect_le("tcp-bw-bound", ctx, gbn, wire, tol.bound_slack);
      report.expect_le("tcp-bw-bound", ctx, sack_bw, wire, tol.bound_slack);
      report.expect_ge("sack-no-regression", ctx, sack_bw, gbn, 0.05);
    }
  }
  return bench::selfcheck_exit();
}
