// Ablation: NFS/RDMA bulk chunk size. The measured design fragments
// READ data into 4 KB RDMA writes — the root cause of Figure 13's WAN
// collapse. Larger chunks shift the cliff outward, quantifying the
// paper's "transfer data using large messages" recommendation.
#include "bench_common.hpp"
#include "core/calibration.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "nfs/nfs.hpp"
#include "rpc/rpc.hpp"

using namespace ibwan;

namespace {

double nfs_read_mbps(std::uint32_t chunk_bytes, sim::Duration delay,
                     std::uint64_t file_bytes) {
  core::Testbed tb(1, delay);
  ib::Hca server_hca(tb.fabric().node(tb.node_a()),
                     core::nfs_server_hca());
  ib::Hca client_hca(tb.fabric().node(tb.node_b()), {});
  rpc::RdmaRpcServer rpc_server(server_hca, {.chunk_bytes = chunk_bytes});
  rpc::RdmaRpcClient rpc_client(client_hca, rpc_server);
  nfs::NfsConfig nfs_cfg = core::nfs_rdma_defaults();
  nfs_cfg.chunk_bytes = chunk_bytes;
  nfs::NfsServer server(tb.sim_a(), nfs_cfg);
  server.add_file(1, file_bytes);
  rpc_server.set_handler(server.handler());
  nfs::NfsClient client(rpc_client);
  return nfs::run_iozone(tb.sim_b(), client,
                         {.file_bytes = file_bytes,
                          .record_bytes = 256 << 10,
                          .threads = 4},
                         &tb.engine())
      .mbytes_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Ablation: NFS/RDMA chunk size vs WAN delay (MillionBytes/s, "
      "4 IOzone threads)");

  const std::uint64_t file_bytes = (32ull << 20) * bench::scale();
  core::Table table("read throughput by chunk size", "delay_us");
  bench::sweep_into(table, bench::delay_grid(), [&](sim::Duration delay) {
    bench::Rows rows;
    const double x = static_cast<double>(delay) / 1000.0;
    for (std::uint32_t chunk : {4u << 10, 16u << 10, 64u << 10,
                                256u << 10}) {
      rows.push_back({std::to_string(chunk >> 10) + "K-chunks", x,
                      nfs_read_mbps(chunk, delay, file_bytes)});
    }
    return rows;
  });
  bench::finish(table, "ablation_nfs_chunk");
  std::printf(
      "\nReading: the 4 KB design is latency-bound past ~100 us; 64 KB+\n"
      "chunks hold wire rate out to millisecond delays — the NFS/RDMA\n"
      "redesign the paper's analysis implies.\n");

  // Oracle audit: each chunk-size curve is capped by its own
  // min(wire, server window * chunk / RTT) bound.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const ib::HcaConfig server_hca = core::nfs_server_hca();
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      for (std::uint32_t chunk : {4u << 10, 16u << 10, 64u << 10,
                                  256u << 10}) {
        const std::string name = std::to_string(chunk >> 10) + "K-chunks";
        report.expect_le("nfs-bw-bound",
                         "ablation_nfs_chunk " + name + " " +
                             bench::delay_label(delay),
                         table.series(name).at(x),
                         check::nfs_bw_bound_mbps(fc, server_hca, chunk,
                                                  delay, false),
                         tol.bound_slack);
      }
    }
  }
  return bench::selfcheck_exit();
}
