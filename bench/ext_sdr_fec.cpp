// Extension: software-defined reliability (SDR) over the WAN — FEC vs
// retransmission at high bandwidth-delay product (docs/TRANSPORTS.md,
// DESIGN.md §14).
//
// Sweeps goodput, redundancy overhead, and message latency for the SDR
// transport (none / xor / rs / adaptive) head-to-head against RC and
// TCP, on a delay grid extended to 40 ms one-way (8000 km — four times
// the paper's longest emulated distance), under a clean WAN and under
// an embedded Gilbert-Elliott bursty-loss plan; plus goodput vs loss
// severity at the 8000 km point.
//
// Expected shape: on a clean pipe RC leads at LAN range, but from
// ~10 ms out SDR's deep chunk pipeline hides the BDP that RC's bounded
// window cannot; parity and chunk headers stay pure overhead when
// nothing is lost (rs trails none on every clean point). Under bursty
// loss at high BDP the gap blows open — RC's go-back-N and bounded
// window collapse, while SDR repairs losses locally from parity and
// NACKs only the holes, so its goodput stays near the wire rate. The
// --selfcheck audit pins the inversion: SDR(rs) must beat RC at
// >= 8000 km under the bursty plan.
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "ib/perftest.hpp"
#include "sdr/sdr.hpp"

using namespace ibwan;
using ib::perftest::Transport;

namespace {

/// Delay grid: the paper's top two points plus 4000/8000 km.
std::vector<sim::Duration> fec_delay_grid() {
  return {0, 1'000'000, 10'000'000, 20'000'000, 40'000'000};
}

/// The embedded bursty-loss plan (examples/chaos_plan.json shape):
/// ~2% of time in the bad state losing 20% of packets in bursts.
net::FaultPlanConfig bursty_plan(double loss_bad = 0.2) {
  net::FaultPlanConfig plan;
  plan.ge.p_good_to_bad = 0.002;
  plan.ge.p_bad_to_good = 0.1;
  plan.ge.loss_good = 0.0001;
  plan.ge.loss_bad = loss_bad;
  return plan;
}

struct SdrOutcome {
  double goodput = 0;       // delivered MB/s over the whole run
  double overhead_pct = 0;  // (parity + retrans) / data chunks, %
  double msg_ms = 0;        // mean completed-message latency
};

constexpr std::uint64_t kMsgBytes = 2ull << 20;

SdrOutcome run_sdr(sim::Duration delay, const net::FaultPlanConfig* plan,
                   sdr::Scheme scheme, int parity, bool adaptive) {
  core::Testbed tb(core::TestbedOptions{
      .nodes_a = 1, .nodes_b = 1, .wan_delay = delay, .faults = plan});
  ib::Hca hca_a(tb.fabric().node(tb.node_a()), {});
  ib::Hca hca_b(tb.fabric().node(tb.node_b()), {});
  sdr::SdrConfig cfg;
  cfg.scheme = scheme;
  cfg.parity_per_group = parity;
  cfg.adaptive = adaptive;
  sdr::SdrEndpoint src(hca_a, cfg);
  sdr::SdrEndpoint dst(hca_b, cfg);

  // A full window of messages is issued up front — the transport's
  // chunk queue keeps the wire saturated across message boundaries (no
  // per-message round-trip serialization), which is what lets FEC hide
  // the BDP — and each completion chains the next message, so the
  // adaptive policy's loss EWMA (fed by completions) informs the parity
  // level of the second half of the transfer.
  const int window = 16;
  const int total_msgs = 32 * bench::scale();
  int issued = 0;
  sim::Time last_done = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t completed = 0;
  std::function<void()> issue_next = [&]() {
    if (issued == total_msgs) return;
    ++issued;
    const sim::Time t0 = hca_a.sim().now();
    src.send(dst.dest(), kMsgBytes, [&, t0](bool ok) {
      if (ok) {
        last_done = hca_a.sim().now();
        total_ns += static_cast<std::uint64_t>(last_done - t0);
        ++completed;
      }
      issue_next();
    });
  };
  for (int i = 0; i < window; ++i) issue_next();
  tb.run();

  SdrOutcome out;
  const sdr::SdrStats& rx = dst.stats();
  const sdr::SdrStats& tx = src.stats();
  if (last_done > 0) {
    out.goodput = static_cast<double>(rx.msg_bytes_delivered) /
                  static_cast<double>(last_done) * 1e3;
  }
  if (tx.data_chunks_sent > 0) {
    out.overhead_pct =
        100.0 *
        static_cast<double>(tx.parity_chunks_sent + tx.retrans_chunks_sent) /
        static_cast<double>(tx.data_chunks_sent);
  }
  if (completed > 0) {
    out.msg_ms = static_cast<double>(total_ns) /
                 static_cast<double>(completed) / 1e6;
  }
  return out;
}

/// Transfer volume for the RC/TCP comparison legs. Under an external
/// --faults plan (the chaos CI determinism check) the legs shrink:
/// plan jitter reorders the WAN, and RC reads out-of-order PSNs as
/// loss, so go-back-N re-sends a BDP per "loss" — full volume at 40 ms
/// costs minutes of wall clock for a run whose only purpose is the
/// sequential-vs-par-sites byte comparison, not the committed curves.
std::uint64_t comparison_volume() {
  if (net::global_fault_plan() != nullptr) return 4ull << 20;
  return (32ull << 20) * static_cast<std::uint64_t>(bench::scale());
}

double run_rc(sim::Duration delay, const net::FaultPlanConfig* plan) {
  core::Testbed tb(core::TestbedOptions{
      .nodes_a = 1, .nodes_b = 1, .wan_delay = delay, .faults = plan});
  const int iters = ib::perftest::iters_for_bytes(comparison_volume(),
                                                  kMsgBytes, 2, 4096);
  return ib::perftest::run_bandwidth(
             tb.fabric(), tb.node_a(), tb.node_b(), Transport::kRc,
             {.msg_size = kMsgBytes, .iterations = iters})
      .mbytes_per_sec;
}

double run_tcp(sim::Duration delay, const net::FaultPlanConfig* plan) {
  core::Testbed tb(core::TestbedOptions{
      .nodes_a = 1, .nodes_b = 1, .wan_delay = delay, .faults = plan});
  return core::tcpbench::tcp_throughput(
      tb, {.streams = 1, .bytes_per_stream = comparison_volume()});
}

struct SdrSeries {
  const char* name;
  sdr::Scheme scheme;
  int parity;
  bool adaptive;
};

constexpr SdrSeries kSdrSeries[] = {
    {"sdr-none", sdr::Scheme::kNone, 0, false},
    {"sdr-xor", sdr::Scheme::kXor, 1, false},
    {"sdr-rs", sdr::Scheme::kRs, 4, false},
    {"sdr-adaptive", sdr::Scheme::kRs, 0, true},
};

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Extension: SDR goodput under loss — FEC vs retransmission at high "
      "BDP (MillionBytes/s)");

  struct PointResult {
    bench::Rows clean, bursty, overhead, latency;
  };
  bench::SweepRunner runner;
  const auto results =
      runner.map(fec_delay_grid(), [&](sim::Duration delay) {
        PointResult r;
        const double x = static_cast<double>(delay) / 1e6;  // ms one-way
        const net::FaultPlanConfig plan = bursty_plan();
        for (const SdrSeries& s : kSdrSeries) {
          const SdrOutcome clean =
              run_sdr(delay, nullptr, s.scheme, s.parity, s.adaptive);
          const SdrOutcome lossy =
              run_sdr(delay, &plan, s.scheme, s.parity, s.adaptive);
          r.clean.push_back({s.name, x, clean.goodput});
          r.bursty.push_back({s.name, x, lossy.goodput});
          r.overhead.push_back({s.name, x, lossy.overhead_pct});
          r.latency.push_back({s.name, x, clean.msg_ms});
        }
        r.clean.push_back({"rc", x, run_rc(delay, nullptr)});
        r.bursty.push_back({"rc", x, run_rc(delay, &plan)});
        r.clean.push_back({"tcp", x, run_tcp(delay, nullptr)});
        r.bursty.push_back({"tcp", x, run_tcp(delay, &plan)});
        return r;
      });

  core::Table clean("(a) goodput vs delay, clean WAN", "oneway_ms");
  core::Table bursty("(b) goodput vs delay, bursty loss", "oneway_ms");
  core::Table overhead("(c) redundancy overhead under bursty loss",
                       "oneway_ms");
  core::Table latency("(d) mean message latency, clean WAN", "oneway_ms");
  for (const auto& r : results) {
    for (const auto& row : r.clean) clean.add(row.series, row.x, row.y);
    for (const auto& row : r.bursty) bursty.add(row.series, row.x, row.y);
    for (const auto& row : r.overhead) {
      overhead.add(row.series, row.x, row.y);
    }
    for (const auto& row : r.latency) latency.add(row.series, row.x, row.y);
  }

  // (e) loss severity at the 8000 km point: how fast does each recovery
  // strategy degrade as the bad state gets worse?
  const std::vector<double> loss_grid = {0.05, 0.1, 0.2, 0.4};
  struct LossResult {
    bench::Rows rows;
  };
  const auto loss_results = runner.map(loss_grid, [&](double loss_bad) {
    LossResult r;
    const net::FaultPlanConfig plan = bursty_plan(loss_bad);
    constexpr sim::Duration kFar = 40'000'000;
    r.rows.push_back(
        {"sdr-rs", loss_bad,
         run_sdr(kFar, &plan, sdr::Scheme::kRs, 4, false).goodput});
    r.rows.push_back(
        {"sdr-adaptive", loss_bad,
         run_sdr(kFar, &plan, sdr::Scheme::kRs, 0, true).goodput});
    r.rows.push_back({"rc", loss_bad, run_rc(kFar, &plan)});
    return r;
  });
  core::Table vs_loss("(e) goodput vs bad-state loss at 8000 km",
                      "loss_bad");
  for (const auto& r : loss_results) {
    for (const auto& row : r.rows) vs_loss.add(row.series, row.x, row.y);
  }

  bench::finish(clean, "ext_sdr_fec_clean");
  bench::finish(bursty, "ext_sdr_fec_bursty");
  bench::finish(overhead, "ext_sdr_fec_overhead");
  bench::finish(latency, "ext_sdr_fec_latency");
  bench::finish(vs_loss, "ext_sdr_fec_loss");

  // Oracle audit. The headline claim: at high BDP under bursty loss,
  // FEC + selective repeat strictly beats RC's go-back-N (the paper's
  // collapse, inverted). Clean SDR runs must also conserve exactly:
  // every chunk sent arrives, every delivered byte was decoded.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    for (const auto& r : {results[3], results[4]}) {  // >= 4000 km
      double sdr_rs = 0, rc = 0, x = 0;
      for (const auto& row : r.bursty) {
        if (row.series == std::string("sdr-rs")) {
          sdr_rs = row.y;
          x = row.x;
        }
        if (row.series == std::string("rc")) rc = row.y;
      }
      report.expect_true(
          "sdr-beats-rc", "bursty oneway_ms=" + std::to_string(x),
          sdr_rs > rc,
          "sdr-rs=" + std::to_string(sdr_rs) + " rc=" + std::to_string(rc));
    }
    // Wire bound: no SDR goodput may exceed the wire's payload rate.
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    const ib::HcaConfig hca;
    for (const auto& s : clean.all_series()) {
      for (const auto& [x, y] : s.points) {
        report.expect_le(
            "sdr-wire-bound", s.name + " oneway_ms=" + std::to_string(x), y,
            check::ud_bw_model_mbps(fc, hca, hca.mtu), 0.02);
      }
    }
    // Exact conservation on dedicated clean runs (sequential, so the
    // report stays deterministic): one near, one at 8000 km.
    for (sim::Duration delay : {sim::Duration{0}, sim::Duration{40'000'000}}) {
      core::Testbed tb(core::TestbedOptions{.nodes_a = 1,
                                            .nodes_b = 1,
                                            .wan_delay = delay,
                                            .metrics = true});
      ib::Hca hca_a(tb.fabric().node(tb.node_a()), {});
      ib::Hca hca_b(tb.fabric().node(tb.node_b()), {});
      sdr::SdrEndpoint src(hca_a, {});
      sdr::SdrEndpoint dst(hca_b, {});
      for (int i = 0; i < 4; ++i) src.send(dst.dest(), kMsgBytes);
      tb.run();
      check::ConservationOptions copt;
      copt.exact_sdr = true;
      check::check_conservation(
          report, "sdr-clean " + bench::delay_label(delay),
          tb.metrics_snapshot(), copt);
    }
  }
  return bench::selfcheck_exit();
}
