// Extension: parallel-filesystem striping over IB WAN — the paper's
// "parallel file-systems" future-work context (cf. the Lustre /
// UltraScienceNet study in its related work [6]).
//
// Expected shape: each stripe adds an independent in-flight window, so
// aggregate read bandwidth scales with stripe count until the SDR WAN
// link saturates — the file-system version of Figures 6(b)/7(b).
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/calibration.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "nfs/nfs.hpp"
#include "pfs/pfs.hpp"
#include "rpc/rpc.hpp"

using namespace ibwan;

namespace {

double striped_read_mbps(int servers, sim::Duration delay,
                         std::uint64_t file_bytes) {
  core::Testbed tb(servers, 1, delay);
  ib::Hca client_hca(
      tb.fabric().node(tb.fabric().node_id(net::Cluster::kB, 0)), {});
  std::vector<std::unique_ptr<ib::Hca>> hcas;
  std::vector<std::unique_ptr<rpc::RdmaRpcServer>> rpcs;
  std::vector<std::unique_ptr<rpc::RdmaRpcClient>> rpc_clients;
  std::vector<std::unique_ptr<nfs::NfsServer>> servers_;
  std::vector<std::unique_ptr<nfs::NfsClient>> clients_;
  std::vector<nfs::NfsClient*> mounts;
  for (int s = 0; s < servers; ++s) {
    hcas.push_back(std::make_unique<ib::Hca>(
        tb.fabric().node(tb.fabric().node_id(net::Cluster::kA, s)),
        core::nfs_server_hca()));
    rpcs.push_back(std::make_unique<rpc::RdmaRpcServer>(*hcas.back()));
    rpc_clients.push_back(
        std::make_unique<rpc::RdmaRpcClient>(client_hca, *rpcs.back()));
    servers_.push_back(std::make_unique<nfs::NfsServer>(
        tb.sim_a(), core::nfs_rdma_defaults()));
    servers_.back()->add_file(1, file_bytes);
    rpcs.back()->set_handler(servers_.back()->handler());
    clients_.push_back(
        std::make_unique<nfs::NfsClient>(*rpc_clients.back()));
    mounts.push_back(clients_.back().get());
  }
  // The striped file and its reader coroutines live on the client node
  // (cluster B); the object servers run on cluster A.
  sim::Simulator& client_sim = tb.sim_b();
  pfs::StripedFile file(client_sim, mounts, 1, {.stripe_bytes = 1 << 20});
  return pfs::run_striped_read(client_sim, file, file_bytes, 4 << 20, 2,
                               &tb.engine())
      .mbytes_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Extension: striped parallel-filesystem reads over IB WAN "
      "(MillionBytes/s)");

  const std::uint64_t file_bytes = (32ull << 20) * bench::scale();
  core::Table table("aggregate read bandwidth by stripe count",
                    "delay_us");
  for (sim::Duration delay : bench::delay_grid()) {
    const double x = static_cast<double>(delay) / 1000.0;
    for (int stripes : {1, 2, 4, 8}) {
      table.add(std::to_string(stripes) + "-stripes", x,
                striped_read_mbps(stripes, delay, file_bytes));
    }
  }
  bench::finish(table, "ext_pfs_striping");

  // Oracle audit: each stripe adds one server's chunk window, so the
  // aggregate is capped by min(wire, stripes * per-server bound).
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const ib::HcaConfig server_hca = core::nfs_server_hca();
    const std::uint64_t chunk = core::nfs_rdma_defaults().chunk_bytes;
    const check::Tolerances tol;
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      for (int stripes : {1, 2, 4, 8}) {
        const net::FabricConfig fc = core::fabric_defaults(stripes, 1);
        const double wire =
            check::nfs_bw_bound_mbps(fc, server_hca, 0, delay, false);
        const double per_server =
            check::nfs_bw_bound_mbps(fc, server_hca, chunk, delay, false);
        report.expect_le("pfs-bw-bound",
                         "ext_pfs " + std::to_string(stripes) + "-stripes " +
                             bench::delay_label(delay),
                         table.series(std::to_string(stripes) + "-stripes")
                             .at(x),
                         std::min(wire, stripes * per_server),
                         tol.bound_slack);
      }
    }
  }
  return bench::selfcheck_exit();
}
