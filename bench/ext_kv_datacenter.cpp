// Extension: an RDMA key-value service across the WAN — the
// "data-centers" future-work context from the paper's conclusions.
// Closed-loop GET-heavy workload; latency tracks the round trip, and
// the paper's parallel-streams lesson reappears as client concurrency.
#include "bench_common.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "kv/kv.hpp"
#include "rpc/rpc.hpp"

using namespace ibwan;

namespace {

kv::KvResult run_kv(sim::Duration delay, int clients,
                    std::uint64_t value_bytes, int ops_per_client) {
  core::Testbed tb(1, delay);
  ib::Hca server_hca(tb.fabric().node(tb.node_a()), {});
  ib::Hca client_hca(tb.fabric().node(tb.node_b()), {});
  rpc::RdmaRpcServer rpc_server(server_hca);
  rpc::RdmaRpcClient rpc_client(client_hca, rpc_server);
  kv::KvServer server(tb.sim_a());
  rpc_server.set_handler(server.handler());
  for (std::uint64_t k = 0; k < 256; ++k) server.preload(k, value_bytes);
  kv::KvClient client(rpc_client);
  return kv::run_kv_workload(tb.sim_for(tb.node_b()), client,
                             {.clients = clients,
                              .ops_per_client = ops_per_client,
                              .get_fraction = 0.9,
                              .value_bytes = value_bytes,
                              .key_space = 256},
                             &tb.engine());
}

}  // namespace

int main(int argc, char** argv) {
  ibwan::bench::init(argc, argv);
  core::banner(
      "Extension: RDMA key-value service over IB WAN "
      "(90% GET, 4 KB values)");

  const int ops = 50 * bench::scale();

  core::Table lat("mean operation latency (us), 4 clients", "delay_us");
  core::Table thr("throughput (K ops/s) by client count", "delay_us");
  for (sim::Duration delay : bench::delay_grid()) {
    const double x = static_cast<double>(delay) / 1000.0;
    for (std::uint64_t vb : {128ull, 4096ull, 65536ull}) {
      const auto r = run_kv(delay, 4, vb, ops);
      lat.add(std::to_string(vb) + "B-values", x, r.avg_latency_us);
    }
    for (int clients : {1, 4, 16}) {
      const auto r = run_kv(delay, clients, 4096, ops);
      thr.add(std::to_string(clients) + "-clients", x, r.kops_per_sec);
    }
  }
  lat.print();
  lat.write_csv("ext_kv_latency.csv");
  bench::finish(thr, "ext_kv_throughput");

  // Oracle audit: a closed-loop KV operation crosses the WAN twice
  // (request + response), so mean latency can't beat two one-way
  // propagation floors. The latency table bypasses finish(), so its
  // generic sanity sweep is replicated here.
  if (bench::selfcheck_enabled() && net::global_fault_plan() == nullptr) {
    auto& report = check::selfcheck_report();
    const net::FabricConfig fc = core::fabric_defaults(1, 1);
    for (sim::Duration delay : bench::delay_grid()) {
      const double x = static_cast<double>(delay) / 1000.0;
      const double floor = 2.0 * check::oneway_floor_us(fc, delay);
      for (const auto& s : lat.all_series()) {
        const double y = s.at(x);
        const std::string ctx =
            "ext_kv_latency " + s.name + " " + bench::delay_label(delay);
        report.expect_true("table-sane", ctx, std::isfinite(y) && y >= 0.0,
                           "y=" + std::to_string(y));
        report.expect_ge("latency-floor", ctx, y, floor);
      }
    }
  }
  return bench::selfcheck_exit();
}
