#include "sdr/code.hpp"

#include <cassert>
#include <cstddef>

#include "sdr/gf256.hpp"

namespace ibwan::sdr {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone: return "none";
    case Scheme::kXor: return "xor";
    case Scheme::kRs: return "rs";
  }
  return "?";
}

int effective_parity(Scheme s, int r) {
  switch (s) {
    case Scheme::kNone: return 0;
    case Scheme::kXor: return r > 0 ? 1 : 0;
    case Scheme::kRs: return r;
  }
  return 0;
}

bool recoverable(Scheme s, int k, int data_present, int parity_present) {
  if (data_present >= k) return true;
  switch (s) {
    case Scheme::kNone:
      return false;
    case Scheme::kXor:
    case Scheme::kRs:
      // MDS: any k of the k+r shards reconstruct the group.
      return data_present + parity_present >= k;
  }
  return false;
}

Codec::Codec(Scheme scheme, int k, int r)
    : scheme_(scheme), k_(k), r_(effective_parity(scheme, r)) {
  assert(k_ >= 1 && r_ >= 0 && k_ + r_ <= 128);
}

std::uint8_t Codec::coeff(int row, int col) const {
  if (scheme_ == Scheme::kXor) return 1;
  // Cauchy: x_row = row, y_col = r_ + col — disjoint index sets, so
  // x_row ^ y_col is never zero (k + r <= 128 keeps both below 256).
  return gf::inv(static_cast<std::uint8_t>(row ^ (r_ + col)));
}

void Codec::encode(const std::vector<std::vector<std::uint8_t>>& data,
                   std::vector<std::vector<std::uint8_t>>* parity) const {
  assert(static_cast<int>(data.size()) == k_);
  const std::size_t len = data.empty() ? 0 : data[0].size();
  parity->assign(static_cast<std::size_t>(r_),
                 std::vector<std::uint8_t>(len, 0));
  for (int p = 0; p < r_; ++p) {
    std::vector<std::uint8_t>& out = (*parity)[static_cast<std::size_t>(p)];
    for (int d = 0; d < k_; ++d) {
      const std::vector<std::uint8_t>& in = data[static_cast<std::size_t>(d)];
      assert(in.size() == len);
      const std::uint8_t c = coeff(p, d);
      for (std::size_t b = 0; b < len; ++b) {
        out[b] = gf::add(out[b], gf::mul(c, in[b]));
      }
    }
  }
}

bool Codec::decode(std::vector<std::vector<std::uint8_t>>* shards) const {
  assert(static_cast<int>(shards->size()) == k_ + r_);
  // Pick k surviving shards, data first (identity rows keep the matrix
  // close to I, and present data shards never need recomputation).
  std::vector<int> rows;
  rows.reserve(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_ + r_ && static_cast<int>(rows.size()) < k_; ++i) {
    if (!(*shards)[static_cast<std::size_t>(i)].empty()) rows.push_back(i);
  }
  if (static_cast<int>(rows.size()) < k_) return false;

  std::size_t len = 0;
  for (const int row : rows) {
    len = (*shards)[static_cast<std::size_t>(row)].size();
  }

  // m = the k x k generator submatrix for the chosen shards, augmented
  // with the identity; Gauss-Jordan leaves the inverse on the right.
  const int n = k_;
  std::vector<std::vector<std::uint8_t>> m(
      static_cast<std::size_t>(n),
      std::vector<std::uint8_t>(static_cast<std::size_t>(2 * n), 0));
  for (int t = 0; t < n; ++t) {
    const int shard = rows[static_cast<std::size_t>(t)];
    auto& row = m[static_cast<std::size_t>(t)];
    if (shard < k_) {
      row[static_cast<std::size_t>(shard)] = 1;
    } else {
      for (int d = 0; d < k_; ++d) {
        row[static_cast<std::size_t>(d)] = coeff(shard - k_, d);
      }
    }
    row[static_cast<std::size_t>(n + t)] = 1;
  }
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int row = col; row < n; ++row) {
      if (m[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] !=
          0) {
        pivot = row;
        break;
      }
    }
    if (pivot < 0) return false;  // cannot happen for an MDS generator
    m[static_cast<std::size_t>(col)].swap(m[static_cast<std::size_t>(pivot)]);
    const std::uint8_t p =
        m[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
    for (int j = 0; j < 2 * n; ++j) {
      auto& cell = m[static_cast<std::size_t>(col)][static_cast<std::size_t>(j)];
      cell = gf::div(cell, p);
    }
    for (int row = 0; row < n; ++row) {
      if (row == col) continue;
      const std::uint8_t f =
          m[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      if (f == 0) continue;
      for (int j = 0; j < 2 * n; ++j) {
        auto& cell =
            m[static_cast<std::size_t>(row)][static_cast<std::size_t>(j)];
        cell = gf::add(cell, gf::mul(f, m[static_cast<std::size_t>(col)]
                                            [static_cast<std::size_t>(j)]));
      }
    }
  }

  // data_d = sum_t inv[d][t] * shards[rows[t]], only for erased d.
  for (int d = 0; d < k_; ++d) {
    auto& out = (*shards)[static_cast<std::size_t>(d)];
    if (!out.empty()) continue;
    out.assign(len, 0);
    for (int t = 0; t < n; ++t) {
      const std::uint8_t c =
          m[static_cast<std::size_t>(d)][static_cast<std::size_t>(n + t)];
      if (c == 0) continue;
      const auto& in =
          (*shards)[static_cast<std::size_t>(rows[static_cast<std::size_t>(t)])];
      for (std::size_t b = 0; b < len; ++b) {
        out[b] = gf::add(out[b], gf::mul(c, in[b]));
      }
    }
  }
  return true;
}

}  // namespace ibwan::sdr
