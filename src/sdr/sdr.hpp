// Software-defined reliability transport (SDR-RDMA style, ROADMAP item
// 1 / DESIGN.md §14): reliable large-message delivery built entirely on
// unreliable datagrams.
//
// Large messages are split into MTU-sized chunks tracked by a receive
// bitmap. Chunks are grouped (k data + r parity) and protected by a
// pluggable redundancy scheme (sdr/code.hpp): none, XOR parity, or MDS
// Reed-Solomon over GF(2^8). Any loss within a group's correction
// budget is repaired locally at the receiver — no WAN round trip, which
// is why the transport keeps its goodput at high bandwidth-delay
// product where RC's retransmission window collapses (the paper's
// central negative result, bench/ext_sdr_fec.cpp). Loss beyond the
// budget falls back to selective-repeat NACKs; an adaptive policy
// retunes the redundancy ratio from a loss EWMA observed in receiver
// feedback.
//
// The transport rides UD queue pairs through the ordinary net::Link /
// LongbowPair path, so Gilbert-Elliott loss, flaps, jitter, and
// brownouts (src/net/faults.cpp) apply to it unmodified. All state and
// timers live on the owning node's simulator, so the endpoint is
// site-parallel safe (DESIGN.md §13): the only cross-site interaction
// is datagrams on the wire.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/verbs.hpp"
#include "sdr/code.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ibwan::sdr {

/// Per-chunk protocol header carried on the wire in front of the
/// payload (sequence + group geometry, like SDR-RDMA's chunk header).
inline constexpr std::uint32_t kSdrHeaderBytes = 32;
/// Fixed part of a NACK/DONE/PROBE control datagram.
inline constexpr std::uint32_t kSdrCtrlBytes = 40;

struct SdrConfig {
  Scheme scheme = Scheme::kRs;
  /// Data chunks per redundancy group (k).
  int group_data_chunks = 16;
  /// Parity chunks per group (r). kXor caps this at 1, kNone at 0.
  int parity_per_group = 2;
  /// Retune r per message from the observed-loss EWMA. Draws live on
  /// the named RNG stream "sdr.adaptive" (Simulator::rng_stream), so
  /// enabling the policy cannot perturb the main RNG sequence.
  bool adaptive = false;
  double ewma_alpha = 0.25;
  /// Target redundancy ratio = loss_safety * loss EWMA (headroom for
  /// burstiness above the mean loss rate).
  double loss_safety = 3.0;
  int adaptive_max_parity = 8;
  /// Chunks outstanding on the local wire (UD send-completion paced) —
  /// delay-independent, like perftest's tx_depth.
  int tx_depth = 64;
  /// Receiver inactivity window before a selective-repeat NACK; backs
  /// off exponentially across quiet rounds, resets on progress.
  sim::Duration nack_timeout = 2 * sim::kMillisecond;
  int max_nack_rounds = 24;
  /// Sender probe for a lost DONE (or a fully-lost tail); backs off
  /// exponentially, bounded like RC's retry count.
  sim::Duration probe_timeout = 10 * sim::kMillisecond;
  int max_probes = 24;
  /// Receiver CPU cost per repaired chunk (Gauss-Jordan solve); XOR
  /// repair is a plain wide XOR and costs ~nothing in comparison.
  sim::Duration decode_ns_per_chunk = 400;
  /// Missing-chunk indices per NACK datagram (clamped to the MTU).
  std::uint32_t max_nack_chunks = 256;
  /// Receive WQEs kept pre-posted (UD drops datagrams with no recv).
  int recv_slots = 2048;
};

/// Non-empty human-readable reason when the config is unusable (the
/// wire header carries k and r as uint16, and GF(2^8) Reed-Solomon
/// bounds a group at 255 symbols, so out-of-range values would silently
/// truncate and corrupt group accounting); empty string when valid.
/// SdrEndpoint construction rejects invalid configs with this message.
std::string validate(const SdrConfig& config);

/// Accounting; conservation identities over these are oracle-checked
/// (src/check/oracles.cpp, `/sdr` scopes):
///   msgs_completed + msgs_failed == msgs_initiated     (drained)
///   chunks_repaired              <= parity_chunks_received
///   data_chunks_delivered        <= data_chunks_received + repaired
///   msg_bytes_delivered          <= decoded_bytes
///   sum(rx chunks + dups)        <= sum(tx chunks)     (global)
/// The `lint:conserved` counters may only be written by sdr.cpp
/// (ibwan-lint INV001).
struct SdrStats {
  // --- sender ---
  // Named `msgs_initiated` (not `msgs_sent`) because INV001 ownership
  // is by bare identifier and ib::QueuePair::Stats::msgs_sent exists.
  std::uint64_t msgs_initiated = 0;       // lint:conserved
  std::uint64_t msgs_completed = 0;       // lint:conserved
  std::uint64_t msgs_failed = 0;          // lint:conserved
  std::uint64_t data_chunks_sent = 0;     // lint:conserved
  std::uint64_t parity_chunks_sent = 0;   // lint:conserved
  std::uint64_t retrans_chunks_sent = 0;  // lint:conserved
  std::uint64_t chunk_bytes_sent = 0;     // lint:conserved
  std::uint64_t nacks_received = 0;       // lint:conserved
  std::uint64_t probes_sent = 0;          // lint:conserved
  // --- receiver ---
  std::uint64_t data_chunks_received = 0;    // lint:conserved
  std::uint64_t parity_chunks_received = 0;  // lint:conserved
  std::uint64_t dup_chunks = 0;              // lint:conserved
  std::uint64_t chunks_repaired = 0;         // lint:conserved
  std::uint64_t data_chunks_delivered = 0;   // lint:conserved
  std::uint64_t decoded_bytes = 0;           // lint:conserved
  std::uint64_t groups_decoded = 0;          // lint:conserved
  std::uint64_t nacks_sent = 0;              // lint:conserved
  std::uint64_t dones_sent = 0;              // lint:conserved
  std::uint64_t msgs_delivered = 0;      // lint:conserved
  std::uint64_t msg_bytes_delivered = 0;  // lint:conserved
  std::uint64_t msgs_abandoned = 0;      // lint:conserved
};

/// One SDR datagram's typed content, carried end-to-end through
/// SendWr::app_payload (the simulator moves byte counts; this is the
/// metadata real headers would encode).
struct SdrDatagram {
  enum class Type : std::uint8_t { kChunk, kNack, kDone, kProbe };
  Type type = Type::kChunk;
  std::uint64_t msg_id = 0;
  // Message geometry (chunk + probe): enough to (re)create receive
  // state from any single datagram.
  std::uint64_t msg_bytes = 0;
  std::uint32_t total_data_chunks = 0;
  std::uint16_t k = 0;
  std::uint16_t r = 0;
  Scheme scheme = Scheme::kNone;
  // Chunk identity.
  std::uint32_t group = 0;
  std::uint16_t idx_in_group = 0;
  bool parity = false;
  bool retrans = false;
  // Application payload descriptor (chunk datagrams only): the typed
  // message the upper layer attached to send(); every chunk carries the
  // same shared pointer, so whichever chunks survive the WAN reconstruct
  // it at the receiver (the simulator moves byte counts, not bytes).
  std::shared_ptr<const void> app;
  // NACK: missing global data-chunk indices (capped per datagram).
  std::vector<std::uint32_t> missing;
  // DONE: receiver-side loss feedback for the adaptive policy.
  std::uint64_t rx_chunks = 0;  // unique + duplicate arrivals
  std::uint32_t repaired = 0;
};

/// A reliability endpoint bound to one HCA: owns a UD QP, sends and
/// receives SDR messages. Peer discovery is out-of-band (exchange
/// dest() before the run, as CM does for RC).
class SdrEndpoint {
 public:
  using CompletionFn = std::function<void(bool ok)>;
  /// Upper-layer delivery hook: fires once per fully delivered message
  /// (the same instant `msgs_delivered` ticks), with the sender's
  /// address, the message size, and the application payload attached to
  /// send() (null when the sender attached none). Runs after the
  /// endpoint's own bookkeeping, so the handler may immediately send()
  /// on this endpoint (request/reply protocols, rpc/sdr_transport.cpp).
  using DeliveryFn = std::function<void(
      const ib::UdDest& src, std::uint64_t bytes,
      const std::shared_ptr<const void>& app)>;

  SdrEndpoint(ib::Hca& hca, SdrConfig config = {});
  ~SdrEndpoint();

  SdrEndpoint(const SdrEndpoint&) = delete;
  SdrEndpoint& operator=(const SdrEndpoint&) = delete;

  /// Address remote endpoints send to.
  ib::UdDest dest() const;

  /// Starts a reliable transfer of `bytes` to `dst`; `done(true)` fires
  /// when the receiver confirmed full delivery, `done(false)` when the
  /// probe budget is exhausted (severed WAN). Returns the message id.
  /// `app` is an opaque payload descriptor handed to the receiver's
  /// delivery handler with the completed message.
  std::uint64_t send(ib::UdDest dst, std::uint64_t bytes,
                     CompletionFn done = {},
                     std::shared_ptr<const void> app = {});

  /// Registers the receive-side delivery hook (at most one).
  void set_delivery_handler(DeliveryFn fn) { on_deliver_ = std::move(fn); }

  const SdrConfig& config() const { return cfg_; }
  const SdrStats& stats() const { return stats_; }
  /// Payload bytes per chunk (MTU minus the SDR header).
  std::uint32_t chunk_payload() const { return chunk_payload_; }
  /// Observed-loss EWMA driving the adaptive policy.
  double loss_ewma() const { return loss_ewma_; }
  /// Parity chunks per group the next message will use.
  int next_parity() const;

 private:
  struct TxMsg {
    ib::UdDest dst;
    std::uint64_t bytes = 0;
    std::uint32_t total_data = 0;
    std::uint16_t k = 0;
    std::uint16_t r = 0;
    std::uint64_t chunks_tx = 0;     // data + parity + retrans posted
    std::uint64_t wire_pending = 0;  // posted but not yet serialized
    bool all_enqueued = false;
    int probes = 0;
    sim::EventId probe_timer = 0;
    bool probe_armed = false;
    sim::Time start = 0;
    CompletionFn done;
    std::shared_ptr<const void> app;
  };
  struct RxGroup {
    std::vector<bool> data_present;
    std::vector<bool> parity_present;
    int data_have = 0;
    int parity_have = 0;
    bool decoded = false;
    bool decoding = false;
  };
  struct RxMsg {
    ib::UdDest src;
    std::uint64_t msg_bytes = 0;
    std::uint32_t total_data = 0;
    std::uint16_t k = 0;
    std::uint16_t r = 0;
    Scheme scheme = Scheme::kNone;
    std::vector<RxGroup> groups;
    std::uint32_t groups_done = 0;
    std::uint64_t rx_chunks = 0;  // unique + duplicate arrivals
    std::uint32_t repaired = 0;
    sim::Time last_arrival = 0;
    sim::EventId nack_timer = 0;
    bool nack_armed = false;
    int quiet_rounds = 0;
    std::shared_ptr<const void> app;
  };
  struct DoneInfo {
    ib::UdDest src;
    std::uint64_t rx_chunks = 0;
    std::uint32_t repaired = 0;
  };
  struct TxChunk {
    std::uint64_t msg_id = 0;
    std::uint32_t chunk = 0;  // global data index, or parity ordinal
    bool parity = false;
    bool retrans = false;
  };
  /// (sender lid << 32 | sender qpn, msg id) — sender-unique message key.
  using RxKey = std::pair<std::uint64_t, std::uint64_t>;

  void pump();
  void post_chunk(TxMsg& m, const TxChunk& c);
  void send_ctrl(const ib::UdDest& to, std::shared_ptr<SdrDatagram> d,
                 std::uint32_t wire_bytes);
  void on_send_cqe(const ib::Cqe& cqe);
  void on_recv_cqe(const ib::Cqe& cqe);
  void on_chunk(const RxKey& key, const SdrDatagram& d, const ib::UdDest& src);
  void on_nack(const SdrDatagram& d);
  void on_done(const SdrDatagram& d);
  void on_probe(const RxKey& key, const SdrDatagram& d,
                const ib::UdDest& src);
  RxMsg& ensure_rx(const RxKey& key, const SdrDatagram& d,
                   const ib::UdDest& src);
  void try_decode_group(const RxKey& key, RxMsg& m, std::uint32_t g);
  void finish_rx(const RxKey& key, RxMsg& m);
  void send_nack(const RxKey& key, RxMsg& m);
  void arm_nack_timer(const RxKey& key, RxMsg& m, sim::Duration d);
  void nack_timer_fire(const RxKey& key);
  void arm_probe_timer(std::uint64_t msg_id, TxMsg& m);
  void probe_timer_fire(std::uint64_t msg_id);
  void complete_tx(std::uint64_t msg_id, TxMsg& m, bool ok);
  void update_loss_ewma(const TxMsg& m, std::uint64_t rx_chunks);
  std::uint32_t group_k(const RxMsg& m, std::uint32_t g) const;
  std::uint32_t chunk_bytes(std::uint64_t msg_bytes,
                            std::uint32_t chunk) const;

  ib::Hca& hca_;
  sim::Simulator& sim_;
  SdrConfig cfg_;
  ib::Cq send_cq_;
  ib::Cq recv_cq_;
  ib::UdQp* qp_;
  std::uint32_t chunk_payload_;
  sim::Rng adaptive_rng_;
  double loss_ewma_ = 0.0;
  DeliveryFn on_deliver_;

  std::uint64_t next_msg_id_ = 1;
  std::map<std::uint64_t, TxMsg> tx_;
  std::deque<TxChunk> txq_;
  int wire_outstanding_ = 0;
  std::map<RxKey, RxMsg> rx_;
  std::map<RxKey, DoneInfo> rx_done_;
  /// Receives we gave up on (selective repeat exhausted): probes and
  /// stray chunks for these keys are ignored, which guarantees the
  /// probe/NACK exchange drains even under a permanently severed WAN.
  std::set<RxKey> rx_abandoned_;

  SdrStats stats_;

  // Registered metrics (docs/METRICS.md §sdr); scope "node<lid>/sdr".
  struct Obs {
    sim::Counter* msgs_sent;
    sim::Counter* msgs_completed;
    sim::Counter* msgs_failed;
    sim::Counter* data_chunks_sent;
    sim::Counter* parity_chunks_sent;
    sim::Counter* retrans_chunks_sent;
    sim::Counter* chunk_bytes_sent;
    sim::Counter* nacks_received;
    sim::Counter* probes_sent;
    sim::Counter* data_chunks_received;
    sim::Counter* parity_chunks_received;
    sim::Counter* dup_chunks;
    sim::Counter* chunks_repaired;
    sim::Counter* data_chunks_delivered;
    sim::Counter* decoded_bytes;
    sim::Counter* groups_decoded;
    sim::Counter* nacks_sent;
    sim::Counter* dones_sent;
    sim::Counter* msgs_delivered;
    sim::Counter* msg_bytes_delivered;
    sim::Counter* msgs_abandoned;
    sim::Counter* decode_ns;
    sim::Gauge* loss_ewma_ppm;
    sim::Gauge* parity_level;
    sim::Histogram* msg_ns;
  };
  Obs obs_;
  char trace_tag_[12];  // "sdr-<lid>"
};

}  // namespace ibwan::sdr
