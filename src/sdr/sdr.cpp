#include "sdr/sdr.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sim/trace.hpp"

namespace ibwan::sdr {

namespace {
/// Backoff shift caps keep timer growth bounded (2 ms << 8 = 512 ms).
constexpr int kMaxNackShift = 8;
constexpr int kMaxProbeShift = 6;

std::uint64_t rx_peer_key(ib::Lid lid, ib::Qpn qpn) {
  return (static_cast<std::uint64_t>(lid) << 32) | qpn;
}
}  // namespace

std::string validate(const SdrConfig& config) {
  // The chunk header carries k and r as uint16, and a GF(2^8)
  // Reed-Solomon group holds at most 255 symbols; out-of-range values
  // used to truncate silently in the header encode.
  constexpr int kMaxGroupSymbols = 255;
  if (config.group_data_chunks < 1) {
    return "group_data_chunks must be >= 1, got " +
           std::to_string(config.group_data_chunks);
  }
  if (config.group_data_chunks > kMaxGroupSymbols) {
    return "group_data_chunks must be <= 255 (GF(2^8) group), got " +
           std::to_string(config.group_data_chunks);
  }
  if (config.parity_per_group < 0) {
    return "parity_per_group must be >= 0, got " +
           std::to_string(config.parity_per_group);
  }
  if (config.adaptive_max_parity < 0) {
    return "adaptive_max_parity must be >= 0, got " +
           std::to_string(config.adaptive_max_parity);
  }
  if (config.group_data_chunks + config.parity_per_group > kMaxGroupSymbols) {
    return "group_data_chunks + parity_per_group must be <= 255, got " +
           std::to_string(config.group_data_chunks + config.parity_per_group);
  }
  if (config.group_data_chunks + config.adaptive_max_parity >
      kMaxGroupSymbols) {
    return "group_data_chunks + adaptive_max_parity must be <= 255, got " +
           std::to_string(config.group_data_chunks +
                          config.adaptive_max_parity);
  }
  return "";
}

SdrEndpoint::SdrEndpoint(ib::Hca& hca, SdrConfig config)
    : hca_(hca),
      sim_(hca.sim()),
      cfg_(config),
      send_cq_(hca.sim()),
      recv_cq_(hca.sim()),
      qp_(&hca.create_ud_qp(send_cq_, recv_cq_)),
      chunk_payload_(hca.config().mtu - kSdrHeaderBytes),
      adaptive_rng_(0) {
  assert(hca_.config().mtu > kSdrHeaderBytes);
  if (const std::string err = validate(cfg_); !err.empty()) {
    std::fprintf(stderr, "SdrEndpoint (lid %u): invalid SdrConfig: %s\n",
                 hca_.lid(), err.c_str());
    std::abort();
  }
  // Named stream: retuning redundancy must never perturb the main RNG
  // sequence (faults-off runs stay byte-identical; DESIGN.md §14).
  adaptive_rng_ = sim_.rng_stream("sdr.adaptive");
  std::snprintf(trace_tag_, sizeof(trace_tag_), "sdr-%u", hca_.lid());

  send_cq_.set_callback([this](const ib::Cqe& cqe) { on_send_cqe(cqe); });
  recv_cq_.set_callback([this](const ib::Cqe& cqe) { on_recv_cqe(cqe); });
  for (int i = 0; i < cfg_.recv_slots; ++i) {
    qp_->post_recv({.wr_id = static_cast<std::uint64_t>(i),
                    .max_length = hca_.config().mtu});
  }

  auto& m = sim_.metrics();
  const std::string scope = "node" + std::to_string(hca_.lid()) + "/sdr";
  using sim::MetricUnit;
  obs_.msgs_sent = &m.counter(scope, "msgs_sent", MetricUnit::kMessages);
  obs_.msgs_completed =
      &m.counter(scope, "msgs_completed", MetricUnit::kMessages);
  obs_.msgs_failed = &m.counter(scope, "msgs_failed", MetricUnit::kMessages);
  obs_.data_chunks_sent =
      &m.counter(scope, "data_chunks_sent", MetricUnit::kPackets);
  obs_.parity_chunks_sent =
      &m.counter(scope, "parity_chunks_sent", MetricUnit::kPackets);
  obs_.retrans_chunks_sent =
      &m.counter(scope, "retrans_chunks_sent", MetricUnit::kPackets);
  obs_.chunk_bytes_sent =
      &m.counter(scope, "chunk_bytes_sent", MetricUnit::kBytes);
  obs_.nacks_received = &m.counter(scope, "nacks_received");
  obs_.probes_sent = &m.counter(scope, "probes_sent");
  obs_.data_chunks_received =
      &m.counter(scope, "data_chunks_received", MetricUnit::kPackets);
  obs_.parity_chunks_received =
      &m.counter(scope, "parity_chunks_received", MetricUnit::kPackets);
  obs_.dup_chunks = &m.counter(scope, "dup_chunks", MetricUnit::kPackets);
  obs_.chunks_repaired =
      &m.counter(scope, "chunks_repaired", MetricUnit::kPackets);
  obs_.data_chunks_delivered =
      &m.counter(scope, "data_chunks_delivered", MetricUnit::kPackets);
  obs_.decoded_bytes = &m.counter(scope, "decoded_bytes", MetricUnit::kBytes);
  obs_.groups_decoded = &m.counter(scope, "groups_decoded");
  obs_.nacks_sent = &m.counter(scope, "nacks_sent");
  obs_.dones_sent = &m.counter(scope, "dones_sent");
  obs_.msgs_delivered =
      &m.counter(scope, "msgs_delivered", MetricUnit::kMessages);
  obs_.msg_bytes_delivered =
      &m.counter(scope, "msg_bytes_delivered", MetricUnit::kBytes);
  obs_.msgs_abandoned =
      &m.counter(scope, "msgs_abandoned", MetricUnit::kMessages);
  obs_.decode_ns = &m.counter(scope, "decode_ns", MetricUnit::kNanoseconds);
  obs_.loss_ewma_ppm = &m.gauge(scope, "loss_ewma_ppm");
  obs_.parity_level = &m.gauge(scope, "parity_level");
  obs_.msg_ns = &m.histogram(scope, "msg_ns", MetricUnit::kNanoseconds);
}

SdrEndpoint::~SdrEndpoint() {
  // Endpoints normally outlive a drained run; cancel any armed timers so
  // teardown mid-run cannot leave events pointing at freed state.
  for (auto& [id, m] : tx_) {
    if (m.probe_armed) sim_.cancel(m.probe_timer);
  }
  for (auto& [key, m] : rx_) {
    if (m.nack_armed) sim_.cancel(m.nack_timer);
  }
}

ib::UdDest SdrEndpoint::dest() const {
  return {.lid = hca_.lid(), .qpn = qp_->qpn()};
}

int SdrEndpoint::next_parity() const {
  if (!cfg_.adaptive) {
    return effective_parity(cfg_.scheme, cfg_.parity_per_group);
  }
  // Worst case of the dithered rounding in send(): fractional targets
  // round up here, so the reported level is what the next message may
  // use, not a long-run average.
  const double ratio = std::min(cfg_.loss_safety * loss_ewma_, 1.0);
  const double r_real = ratio * cfg_.group_data_chunks;
  const int base = static_cast<int>(r_real);
  const int up = r_real > static_cast<double>(base) ? base + 1 : base;
  return effective_parity(cfg_.scheme,
                          std::min(up, cfg_.adaptive_max_parity));
}

std::uint64_t SdrEndpoint::send(ib::UdDest dst, std::uint64_t bytes,
                                CompletionFn done,
                                std::shared_ptr<const void> app) {
  assert(bytes > 0);
  const std::uint64_t id = next_msg_id_++;
  TxMsg& m = tx_[id];
  m.dst = dst;
  m.bytes = bytes;
  m.app = std::move(app);
  m.total_data = static_cast<std::uint32_t>((bytes + chunk_payload_ - 1) /
                                            chunk_payload_);
  // Fits: construction validated group_data_chunks <= 255.
  m.k = static_cast<std::uint16_t>(cfg_.group_data_chunks);
  // Dithered rounding of the adaptive ratio: the fractional parity is
  // realized probabilistically on the named stream, so the long-run
  // redundancy matches the target without quantization bias.
  int r = effective_parity(cfg_.scheme, cfg_.parity_per_group);
  if (cfg_.adaptive) {
    const double ratio = std::min(cfg_.loss_safety * loss_ewma_, 1.0);
    const double r_real = ratio * cfg_.group_data_chunks;
    int base = static_cast<int>(r_real);
    const double frac = r_real - base;
    if (frac > 0.0 && adaptive_rng_.uniform_double() < frac) ++base;
    r = effective_parity(cfg_.scheme,
                         std::min(base, cfg_.adaptive_max_parity));
  }
  m.r = static_cast<std::uint16_t>(r);
  m.start = sim_.now();
  m.done = std::move(done);

  const std::uint32_t n_groups = (m.total_data + m.k - 1) / m.k;
  for (std::uint32_t g = 0; g < n_groups; ++g) {
    const std::uint32_t first = g * m.k;
    const std::uint32_t kg = std::min<std::uint32_t>(m.k, m.total_data - first);
    for (std::uint32_t i = 0; i < kg; ++i) {
      txq_.push_back({id, first + i, /*parity=*/false, /*retrans=*/false});
    }
    for (std::uint32_t p = 0; p < m.r; ++p) {
      txq_.push_back({id, (g << 8) | p, /*parity=*/true, /*retrans=*/false});
    }
    m.wire_pending += kg + m.r;
  }
  m.all_enqueued = true;

  ++stats_.msgs_initiated;
  obs_.msgs_sent->add();
  obs_.parity_level->set(r);
  pump();
  return id;
}

void SdrEndpoint::pump() {
  while (wire_outstanding_ < cfg_.tx_depth && !txq_.empty()) {
    const TxChunk c = txq_.front();
    txq_.pop_front();
    auto it = tx_.find(c.msg_id);
    if (it == tx_.end()) continue;  // message completed/failed meanwhile
    post_chunk(it->second, c);
  }
}

void SdrEndpoint::post_chunk(TxMsg& m, const TxChunk& c) {
  auto d = std::make_shared<SdrDatagram>();
  d->type = SdrDatagram::Type::kChunk;
  d->msg_id = c.msg_id;
  d->msg_bytes = m.bytes;
  d->total_data_chunks = m.total_data;
  d->k = m.k;
  d->r = m.r;
  d->scheme = cfg_.scheme;
  d->parity = c.parity;
  d->retrans = c.retrans;
  d->app = m.app;
  std::uint32_t payload = 0;
  if (c.parity) {
    d->group = c.chunk >> 8;
    d->idx_in_group = static_cast<std::uint16_t>(c.chunk & 0xff);
    payload = chunk_payload_;  // parity shards are always full length
    ++stats_.parity_chunks_sent;
    obs_.parity_chunks_sent->add();
  } else {
    d->group = c.chunk / m.k;
    d->idx_in_group = static_cast<std::uint16_t>(c.chunk % m.k);
    payload = chunk_bytes(m.bytes, c.chunk);
    if (c.retrans) {
      ++stats_.retrans_chunks_sent;
      obs_.retrans_chunks_sent->add();
    } else {
      ++stats_.data_chunks_sent;
      obs_.data_chunks_sent->add();
    }
  }
  const std::uint64_t wire = kSdrHeaderBytes + payload;
  stats_.chunk_bytes_sent += wire;
  obs_.chunk_bytes_sent->add(wire);
  ++m.chunks_tx;
  ++wire_outstanding_;
  sim_.recorder().record(sim_.now(), sim::TraceKind::kSdrChunkSend,
                         trace_tag_, c.msg_id, c.chunk,
                         c.parity ? 1 : (c.retrans ? 2 : 0));
  qp_->post_send({.wr_id = c.msg_id, .length = wire, .app_payload = d},
                 m.dst);
}

void SdrEndpoint::send_ctrl(const ib::UdDest& to,
                            std::shared_ptr<SdrDatagram> d,
                            std::uint32_t wire_bytes) {
  // wr_id 0 marks control: not paced by (or counted against) tx_depth.
  qp_->post_send({.wr_id = 0, .length = wire_bytes, .app_payload = d}, to);
}

void SdrEndpoint::on_send_cqe(const ib::Cqe& cqe) {
  if (cqe.wr_id == 0) return;  // control datagram
  --wire_outstanding_;
  auto it = tx_.find(cqe.wr_id);
  if (it != tx_.end()) {
    TxMsg& m = it->second;
    if (m.wire_pending > 0) --m.wire_pending;
    if (m.wire_pending == 0 && m.all_enqueued && !m.probe_armed) {
      arm_probe_timer(it->first, m);
    }
  }
  pump();
}

void SdrEndpoint::arm_probe_timer(std::uint64_t msg_id, TxMsg& m) {
  const sim::Duration t = cfg_.probe_timeout
                          << std::min(m.probes, kMaxProbeShift);
  m.probe_armed = true;
  m.probe_timer = sim_.schedule(t, [this, msg_id] { probe_timer_fire(msg_id); });
}

void SdrEndpoint::probe_timer_fire(std::uint64_t msg_id) {
  auto it = tx_.find(msg_id);
  if (it == tx_.end()) return;
  TxMsg& m = it->second;
  m.probe_armed = false;
  if (m.wire_pending > 0) return;  // a NACK queued repairs; re-arms later
  ++m.probes;
  if (m.probes > cfg_.max_probes) {
    complete_tx(msg_id, m, /*ok=*/false);
    return;
  }
  auto d = std::make_shared<SdrDatagram>();
  d->type = SdrDatagram::Type::kProbe;
  d->msg_id = msg_id;
  d->msg_bytes = m.bytes;
  d->total_data_chunks = m.total_data;
  d->k = m.k;
  d->r = m.r;
  d->scheme = cfg_.scheme;
  ++stats_.probes_sent;
  obs_.probes_sent->add();
  sim_.recorder().record(sim_.now(), sim::TraceKind::kSdrProbe, trace_tag_,
                         msg_id, static_cast<std::uint64_t>(m.probes));
  send_ctrl(m.dst, std::move(d), kSdrCtrlBytes);
  arm_probe_timer(msg_id, m);
}

void SdrEndpoint::complete_tx(std::uint64_t msg_id, TxMsg& m, bool ok) {
  if (m.probe_armed) {
    sim_.cancel(m.probe_timer);
    m.probe_armed = false;
  }
  if (ok) {
    ++stats_.msgs_completed;
    obs_.msgs_completed->add();
    obs_.msg_ns->observe(sim_.now() - m.start);
  } else {
    ++stats_.msgs_failed;
    obs_.msgs_failed->add();
  }
  const CompletionFn done = std::move(m.done);
  tx_.erase(msg_id);
  if (done) done(ok);
}

void SdrEndpoint::update_loss_ewma(const TxMsg& m, std::uint64_t rx_chunks) {
  if (m.chunks_tx == 0) return;
  const double seen = std::min<double>(static_cast<double>(rx_chunks),
                                       static_cast<double>(m.chunks_tx));
  const double loss = 1.0 - seen / static_cast<double>(m.chunks_tx);
  loss_ewma_ = (1.0 - cfg_.ewma_alpha) * loss_ewma_ + cfg_.ewma_alpha * loss;
  obs_.loss_ewma_ppm->set(static_cast<std::int64_t>(loss_ewma_ * 1e6));
}

// --- receive path ----------------------------------------------------

void SdrEndpoint::on_recv_cqe(const ib::Cqe& cqe) {
  qp_->post_recv({.wr_id = cqe.wr_id, .max_length = hca_.config().mtu});
  const SdrDatagram& d = cqe.payload_as<SdrDatagram>();
  const RxKey key{rx_peer_key(cqe.src_lid, cqe.src_qpn), d.msg_id};
  const ib::UdDest src{.lid = cqe.src_lid, .qpn = cqe.src_qpn};
  switch (d.type) {
    case SdrDatagram::Type::kChunk:
      on_chunk(key, d, src);
      break;
    case SdrDatagram::Type::kNack:
      on_nack(d);
      break;
    case SdrDatagram::Type::kDone:
      on_done(d);
      break;
    case SdrDatagram::Type::kProbe:
      on_probe(key, d, src);
      break;
  }
}

SdrEndpoint::RxMsg& SdrEndpoint::ensure_rx(const RxKey& key,
                                           const SdrDatagram& d,
                                           const ib::UdDest& src) {
  auto it = rx_.find(key);
  if (it != rx_.end()) return it->second;
  RxMsg& m = rx_[key];
  m.src = src;
  m.msg_bytes = d.msg_bytes;
  m.total_data = d.total_data_chunks;
  m.k = d.k;
  m.r = d.r;
  m.scheme = d.scheme;
  const std::uint32_t n_groups = (m.total_data + m.k - 1) / m.k;
  m.groups.resize(n_groups);
  for (std::uint32_t g = 0; g < n_groups; ++g) {
    m.groups[g].data_present.assign(group_k(m, g), false);
    m.groups[g].parity_present.assign(m.r, false);
  }
  m.last_arrival = sim_.now();
  arm_nack_timer(key, m, cfg_.nack_timeout);
  return m;
}

std::uint32_t SdrEndpoint::group_k(const RxMsg& m, std::uint32_t g) const {
  return std::min<std::uint32_t>(m.k, m.total_data - g * m.k);
}

std::uint32_t SdrEndpoint::chunk_bytes(std::uint64_t msg_bytes,
                                       std::uint32_t chunk) const {
  const std::uint64_t offset =
      static_cast<std::uint64_t>(chunk) * chunk_payload_;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(chunk_payload_, msg_bytes - offset));
}

void SdrEndpoint::on_chunk(const RxKey& key, const SdrDatagram& d,
                           const ib::UdDest& src) {
  if (rx_done_.count(key) != 0 || rx_abandoned_.count(key) != 0) {
    ++stats_.dup_chunks;
    obs_.dup_chunks->add();
    return;
  }
  RxMsg& m = ensure_rx(key, d, src);
  // Receive state can be created by a probe (which carries no payload
  // descriptor); adopt it from the first chunk that brings one.
  if (m.app == nullptr && d.app != nullptr) m.app = d.app;
  ++m.rx_chunks;
  m.last_arrival = sim_.now();
  RxGroup& g = m.groups[d.group];
  bool fresh = false;
  if (g.decoded || g.decoding) {
    // Raced a local repair — the group no longer needs it.
  } else if (d.parity) {
    if (!g.parity_present[d.idx_in_group]) {
      g.parity_present[d.idx_in_group] = true;
      ++g.parity_have;
      ++stats_.parity_chunks_received;
      obs_.parity_chunks_received->add();
      fresh = true;
    }
  } else {
    if (!g.data_present[d.idx_in_group]) {
      g.data_present[d.idx_in_group] = true;
      ++g.data_have;
      ++stats_.data_chunks_received;
      obs_.data_chunks_received->add();
      fresh = true;
    }
  }
  if (!fresh) {
    ++stats_.dup_chunks;
    obs_.dup_chunks->add();
    return;
  }
  m.quiet_rounds = 0;
  try_decode_group(key, m, d.group);
}

void SdrEndpoint::try_decode_group(const RxKey& key, RxMsg& m,
                                   std::uint32_t g_idx) {
  RxGroup& g = m.groups[g_idx];
  const std::uint32_t kg = group_k(m, g_idx);
  if (g.decoded || g.decoding ||
      !recoverable(m.scheme, static_cast<int>(kg), g.data_have,
                   g.parity_have)) {
    return;
  }
  g.decoding = true;
  const std::uint32_t missing = kg - static_cast<std::uint32_t>(g.data_have);
  // Repair cost: one Gauss-Jordan backsolve per missing shard. A group
  // with no erasures decodes for free (systematic code).
  const sim::Duration cost = cfg_.decode_ns_per_chunk * missing;
  sim_.schedule(cost, [this, key, g_idx, missing, cost] {
    auto it = rx_.find(key);
    if (it == rx_.end()) return;  // abandoned while decoding
    RxMsg& msg = it->second;
    RxGroup& grp = msg.groups[g_idx];
    grp.decoding = false;
    grp.decoded = true;
    const std::uint32_t kg2 = group_k(msg, g_idx);
    stats_.chunks_repaired += missing;
    obs_.chunks_repaired->add(missing);
    stats_.data_chunks_delivered += kg2;
    obs_.data_chunks_delivered->add(kg2);
    std::uint64_t bytes = 0;
    for (std::uint32_t i = 0; i < kg2; ++i) {
      bytes += chunk_bytes(msg.msg_bytes, g_idx * msg.k + i);
    }
    stats_.decoded_bytes += bytes;
    obs_.decoded_bytes->add(bytes);
    ++stats_.groups_decoded;
    obs_.groups_decoded->add();
    obs_.decode_ns->add(cost);
    msg.repaired += missing;
    ++msg.groups_done;
    sim_.recorder().record(sim_.now(), sim::TraceKind::kSdrRepair, trace_tag_,
                           key.second, g_idx, missing);
    if (msg.groups_done == msg.groups.size()) finish_rx(key, msg);
  });
}

void SdrEndpoint::finish_rx(const RxKey& key, RxMsg& m) {
  if (m.nack_armed) {
    sim_.cancel(m.nack_timer);
    m.nack_armed = false;
  }
  ++stats_.msgs_delivered;
  obs_.msgs_delivered->add();
  stats_.msg_bytes_delivered += m.msg_bytes;
  obs_.msg_bytes_delivered->add(m.msg_bytes);
  sim_.recorder().record(sim_.now(), sim::TraceKind::kSdrMsgDone, trace_tag_,
                         key.second, m.msg_bytes, m.repaired);
  DoneInfo& info = rx_done_[key];
  info.src = m.src;
  info.rx_chunks = m.rx_chunks;
  info.repaired = m.repaired;
  const std::uint64_t msg_id = key.second;
  auto d = std::make_shared<SdrDatagram>();
  d->type = SdrDatagram::Type::kDone;
  d->msg_id = msg_id;
  d->rx_chunks = info.rx_chunks;
  d->repaired = info.repaired;
  ++stats_.dones_sent;
  obs_.dones_sent->add();
  const ib::UdDest src = m.src;
  const std::uint64_t msg_bytes = m.msg_bytes;
  const std::shared_ptr<const void> app = std::move(m.app);
  rx_.erase(key);
  send_ctrl(src, std::move(d), kSdrCtrlBytes);
  // Upper-layer hand-off last: the handler may send() right back on
  // this endpoint, and all message state is already retired above.
  if (on_deliver_) on_deliver_(src, msg_bytes, app);
}

void SdrEndpoint::arm_nack_timer(const RxKey& key, RxMsg& m,
                                 sim::Duration delay) {
  m.nack_armed = true;
  m.nack_timer = sim_.schedule(delay, [this, key] { nack_timer_fire(key); });
}

void SdrEndpoint::nack_timer_fire(const RxKey& key) {
  auto it = rx_.find(key);
  if (it == rx_.end()) return;
  RxMsg& m = it->second;
  m.nack_armed = false;
  const sim::Duration timeout =
      cfg_.nack_timeout << std::min(m.quiet_rounds, kMaxNackShift);
  const sim::Time deadline = m.last_arrival + timeout;
  if (sim_.now() < deadline) {  // traffic since arming: not quiet yet
    arm_nack_timer(key, m, deadline - sim_.now());
    return;
  }
  ++m.quiet_rounds;
  if (m.quiet_rounds > cfg_.max_nack_rounds) {
    ++stats_.msgs_abandoned;
    obs_.msgs_abandoned->add();
    rx_abandoned_.insert(key);
    rx_.erase(key);
    return;
  }
  send_nack(key, m);
  arm_nack_timer(key, m,
                 cfg_.nack_timeout << std::min(m.quiet_rounds, kMaxNackShift));
}

void SdrEndpoint::send_nack(const RxKey& key, RxMsg& m) {
  const std::uint32_t cap =
      std::min(cfg_.max_nack_chunks,
               (hca_.config().mtu - kSdrCtrlBytes) / 4u);
  auto d = std::make_shared<SdrDatagram>();
  d->type = SdrDatagram::Type::kNack;
  d->msg_id = key.second;
  for (std::uint32_t g = 0;
       g < m.groups.size() && d->missing.size() < cap; ++g) {
    const RxGroup& grp = m.groups[g];
    if (grp.decoded || grp.decoding) continue;
    const std::uint32_t kg = group_k(m, g);
    for (std::uint32_t i = 0; i < kg && d->missing.size() < cap; ++i) {
      if (!grp.data_present[i]) d->missing.push_back(g * m.k + i);
    }
  }
  if (d->missing.empty()) return;  // everything is decoded or decoding
  ++stats_.nacks_sent;
  obs_.nacks_sent->add();
  sim_.recorder().record(sim_.now(), sim::TraceKind::kSdrNackSend, trace_tag_,
                         key.second, d->missing.size());
  const std::uint32_t wire =
      kSdrCtrlBytes + 4u * static_cast<std::uint32_t>(d->missing.size());
  send_ctrl(m.src, std::move(d), wire);
}

void SdrEndpoint::on_nack(const SdrDatagram& d) {
  auto it = tx_.find(d.msg_id);
  if (it == tx_.end() || d.missing.empty()) return;
  TxMsg& m = it->second;
  ++stats_.nacks_received;
  obs_.nacks_received->add();
  // The receiver is alive and asking: reset the probe budget and push
  // the probe out until the repairs have drained onto the wire.
  m.probes = 0;
  if (m.probe_armed) {
    sim_.cancel(m.probe_timer);
    m.probe_armed = false;
  }
  // Selective repeat: retransmissions jump the queue ahead of fresh
  // messages (they gate an in-flight delivery).
  for (auto mi = d.missing.rbegin(); mi != d.missing.rend(); ++mi) {
    txq_.push_front({d.msg_id, *mi, /*parity=*/false, /*retrans=*/true});
    ++m.wire_pending;
  }
  pump();
}

void SdrEndpoint::on_done(const SdrDatagram& d) {
  auto it = tx_.find(d.msg_id);
  if (it == tx_.end()) return;  // duplicate DONE
  update_loss_ewma(it->second, d.rx_chunks);
  complete_tx(d.msg_id, it->second, /*ok=*/true);
}

void SdrEndpoint::on_probe(const RxKey& key, const SdrDatagram& d,
                           const ib::UdDest& src) {
  auto done_it = rx_done_.find(key);
  if (done_it != rx_done_.end()) {
    // The DONE was lost; replay it.
    auto reply = std::make_shared<SdrDatagram>();
    reply->type = SdrDatagram::Type::kDone;
    reply->msg_id = key.second;
    reply->rx_chunks = done_it->second.rx_chunks;
    reply->repaired = done_it->second.repaired;
    ++stats_.dones_sent;
    obs_.dones_sent->add();
    send_ctrl(done_it->second.src, std::move(reply), kSdrCtrlBytes);
    return;
  }
  if (rx_abandoned_.count(key) != 0) return;  // give up stays given up
  // A probe for a message we have partial (or no) state for: the tail —
  // possibly the whole message — was lost. The probe carries the full
  // geometry, so we can NACK everything still missing.
  RxMsg& m = ensure_rx(key, d, src);
  send_nack(key, m);
}

}  // namespace ibwan::sdr
