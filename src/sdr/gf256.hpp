// GF(2^8) arithmetic for the Reed-Solomon erasure code (sdr/code.hpp).
//
// The field is built over the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d) with generator 2 — the conventional choice for storage and
// network erasure codes. Multiplication goes through constexpr exp/log
// tables; the exp table is doubled so mul() needs no modular reduction.
#pragma once

#include <array>
#include <cstdint>

namespace ibwan::sdr::gf {

namespace detail {

struct Tables {
  std::array<std::uint8_t, 512> exp{};
  std::array<std::uint8_t, 256> log{};
};

constexpr Tables build_tables() {
  Tables t{};
  unsigned x = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if ((x & 0x100U) != 0) x ^= 0x11dU;
  }
  for (int i = 255; i < 512; ++i) {
    t.exp[static_cast<std::size_t>(i)] =
        t.exp[static_cast<std::size_t>(i - 255)];
  }
  return t;
}

inline constexpr Tables kTables = build_tables();

}  // namespace detail

/// Addition == subtraction == XOR in characteristic 2.
constexpr std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

constexpr std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return detail::kTables.exp[static_cast<std::size_t>(
      detail::kTables.log[a] + detail::kTables.log[b])];
}

/// Multiplicative inverse; a must be nonzero.
constexpr std::uint8_t inv(std::uint8_t a) {
  return detail::kTables.exp[static_cast<std::size_t>(
      255 - detail::kTables.log[a])];
}

/// a / b; b must be nonzero.
constexpr std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return detail::kTables.exp[static_cast<std::size_t>(
      detail::kTables.log[a] + 255 - detail::kTables.log[b])];
}

}  // namespace ibwan::sdr::gf
