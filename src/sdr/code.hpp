// Pluggable redundancy schemes for the SDR transport (DESIGN.md §14):
//
//   kNone — no parity; every loss needs a selective-repeat round trip.
//   kXor  — one parity shard per group (the generator row is all ones);
//           repairs any single erasure per group.
//   kRs   — systematic MDS Reed-Solomon over GF(2^8) built from a
//           Cauchy matrix: any k of the k+r shards reconstruct the
//           data, so up to r erasures per group repair locally, with
//           no WAN round trip.
//
// The simulator moves byte *counts*, not buffers, so the transport only
// consults recoverable(); Codec carries real bytes and exists for the
// property tests that pin down the MDS claim (tests/sdr/gf256_test.cpp:
// encode -> erase any r shards -> decode roundtrips).
#pragma once

#include <cstdint>
#include <vector>

namespace ibwan::sdr {

enum class Scheme : std::uint8_t { kNone, kXor, kRs };

const char* scheme_name(Scheme s);

/// Parity shards per group the scheme actually emits for a configured
/// ratio: kNone sends none, kXor exactly one, kRs the requested r.
int effective_parity(Scheme s, int r);

/// True when a group of `k` data shards with `data_present` of them
/// received plus `parity_present` parity shards can be decoded. Both
/// kXor and kRs are MDS: any k of the k+r shards suffice.
bool recoverable(Scheme s, int k, int data_present, int parity_present);

/// Byte-level systematic erasure codec over equal-length shards.
/// Generator matrix G = [I_k ; C] with C an r x k Cauchy matrix
/// (C[i][j] = 1 / (x_i + y_j), all x_i, y_j distinct), so every k x k
/// submatrix of G is invertible — the MDS property. Requires
/// k >= 1, r >= 0, k + r <= 128.
class Codec {
 public:
  Codec(Scheme scheme, int k, int r);

  Scheme scheme() const { return scheme_; }
  int k() const { return k_; }
  int r() const { return r_; }

  /// Fills `parity` (resized to r() shards of data[0].size() bytes)
  /// from exactly k() equal-length data shards.
  void encode(const std::vector<std::vector<std::uint8_t>>& data,
              std::vector<std::vector<std::uint8_t>>* parity) const;

  /// `shards` holds k()+r() entries in [data..., parity...] order;
  /// erased shards are empty vectors. Reconstructs every missing data
  /// shard in place and returns true, or returns false (shards
  /// untouched) when fewer than k() shards survive.
  bool decode(std::vector<std::vector<std::uint8_t>>* shards) const;

 private:
  std::uint8_t coeff(int row, int col) const;

  Scheme scheme_;
  int k_;
  int r_;
};

}  // namespace ibwan::sdr
