#include "check/properties.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/time.hpp"

namespace ibwan::check {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string rel_ctx(const char* name, const Scenario& s) {
  return std::string(name) + " " + s.id() + " " + s.describe();
}

/// The derived-delay step shared by the monotonicity and additivity
/// relations: +1 ms of one-way WAN delay (exactly 1000 us on the
/// one-way latency, per the paper's 5 us/km law).
constexpr sim::Duration kDelayStep = sim::kMillisecond;
constexpr double kDelayStepUs = 1000.0;

// -- latency-monotone-delay + delay-additivity (one derived run) ------

bool latency_delay_applies(const Scenario& s) {
  return !s.faults && (s.stack == Stack::kVerbsLatency ||
                       s.stack == Stack::kMpiBcast);
}

void latency_delay_check(const Scenario& s, const ScenarioResult& base,
                         OracleReport& report, const Tolerances& tol) {
  if (!base.completed) return;
  Scenario far = s;
  far.wan_delay += kDelayStep;
  const ScenarioResult r = run_scenario(far);
  const std::string ctx = rel_ctx("latency-monotone-delay", s);
  report.expect_true("latency-monotone-delay", ctx, r.completed,
                     "derived run did not complete");
  if (!r.completed) return;
  report.expect_ge("latency-monotone-delay", ctx, r.value, base.value);
  if (s.stack == Stack::kVerbsLatency) {
    // One-way latency grows by exactly the added one-way delay.
    report.expect_near("delay-additivity", ctx, r.value - base.value,
                       kDelayStepUs, tol.exact_rel);
  }
}

// -- bw-monotone-delay ------------------------------------------------

bool bw_delay_applies(const Scenario& s) {
  return !s.faults &&
         (s.stack == Stack::kVerbsRcBw || s.stack == Stack::kTcpStreams);
}

void bw_delay_check(const Scenario& s, const ScenarioResult& base,
                    OracleReport& report, const Tolerances& tol) {
  if (!base.completed) return;
  Scenario far = s;
  far.wan_delay += kDelayStep;
  const ScenarioResult r = run_scenario(far);
  const std::string ctx = rel_ctx("bw-monotone-delay", s);
  report.expect_true("bw-monotone-delay", ctx, r.completed,
                     "derived run did not complete");
  if (!r.completed) return;
  // More delay never helps: window-limited regions fall, wire-limited
  // regions stay flat.
  report.expect_le("bw-monotone-delay", ctx, r.value, base.value,
                   tol.monotone_rel);
}

// -- stream-monotone --------------------------------------------------

bool stream_applies(const Scenario& s) {
  return !s.faults && s.stack == Stack::kTcpStreams && s.streams < 3;
}

void stream_check(const Scenario& s, const ScenarioResult& base,
                  OracleReport& report, const Tolerances& /*tol*/) {
  if (!base.completed) return;
  Scenario more = s;
  more.streams = s.streams + 1;
  const ScenarioResult r = run_scenario(more);
  const std::string ctx = rel_ctx("stream-monotone", s);
  report.expect_true("stream-monotone", ctx, r.completed,
                     "derived run did not complete");
  if (!r.completed) return;
  // An extra stream adds window; aggregate throughput must not drop
  // (5% slack: streams share the wire once it saturates).
  report.expect_ge("stream-monotone", ctx, r.value, base.value, 0.05);
}

// -- window-monotone --------------------------------------------------

bool window_applies(const Scenario& s) {
  return !s.faults && s.stack == Stack::kVerbsRcBw && s.rc_window <= 32;
}

void window_check(const Scenario& s, const ScenarioResult& base,
                  OracleReport& report, const Tolerances& /*tol*/) {
  if (!base.completed) return;
  Scenario wide = s;
  wide.rc_window = s.rc_window * 2;
  const ScenarioResult r = run_scenario(wide);
  const std::string ctx = rel_ctx("window-monotone", s);
  report.expect_true("window-monotone", ctx, r.completed,
                     "derived run did not complete");
  if (!r.completed) return;
  report.expect_ge("window-monotone", ctx, r.value, base.value, 0.05);
}

// -- faults-inert-noop ------------------------------------------------
// An all-zero FaultPlanConfig installs no hooks and draws nothing, so a
// run with it attached must be byte-identical to one without any plan
// (the contract net/faults.hpp documents). Strided over index so one in
// three cases pays the extra run.

bool inert_applies(const Scenario& s) {
  return !s.faults && s.index % 3 == 0;
}

void inert_check(const Scenario& s, const ScenarioResult& base,
                 OracleReport& report, const Tolerances& /*tol*/) {
  RunOptions opt;
  opt.force_inert_plan = true;
  const ScenarioResult r = run_scenario(s, opt);
  const std::string ctx = rel_ctx("faults-inert-noop", s);
  report.expect_true(
      "faults-inert-noop", ctx,
      r.completed == base.completed && r.value == base.value,
      "base=" + fmt(base.value) + " inert=" + fmt(r.value));
}

// -- metrics-noop -----------------------------------------------------
// The MetricsRegistry observes; it never schedules or perturbs events
// (PR 2 contract). Disabling it must leave the measurement bit-exact.

bool metrics_noop_applies(const Scenario& s) { return s.index % 3 == 1; }

void metrics_noop_check(const Scenario& s, const ScenarioResult& base,
                        OracleReport& report, const Tolerances& /*tol*/) {
  RunOptions opt;
  opt.metrics = false;
  const ScenarioResult r = run_scenario(s, opt);
  const std::string ctx = rel_ctx("metrics-noop", s);
  report.expect_true(
      "metrics-noop", ctx,
      r.completed == base.completed && r.value == base.value,
      "base=" + fmt(base.value) + " metrics-off=" + fmt(r.value));
}

// -- seed-replay ------------------------------------------------------
// The whole-stack determinism law: identical (scenario, seed) must give
// an identical measurement and identical counter rows.

bool replay_applies(const Scenario& s) { return s.index % 3 == 2; }

void replay_check(const Scenario& s, const ScenarioResult& base,
                  OracleReport& report, const Tolerances& /*tol*/) {
  const ScenarioResult r = run_scenario(s);
  const std::string ctx = rel_ctx("seed-replay", s);
  report.expect_true(
      "seed-replay", ctx,
      r.completed == base.completed && r.value == base.value,
      "base=" + fmt(base.value) + " replay=" + fmt(r.value));
  const auto& a = base.metrics.counters;
  const auto& b = r.metrics.counters;
  bool counters_equal = a.size() == b.size();
  std::string diff;
  for (std::size_t i = 0; counters_equal && i < a.size(); ++i) {
    if (a[i].path != b[i].path || a[i].value != b[i].value) {
      counters_equal = false;
      diff = a[i].path + "=" + std::to_string(a[i].value) + " vs " +
             b[i].path + "=" + std::to_string(b[i].value);
    }
  }
  if (a.size() != b.size())
    diff = std::to_string(a.size()) + " vs " + std::to_string(b.size()) +
           " counter rows";
  report.expect_true("seed-replay-counters", ctx, counters_equal, diff);
}

}  // namespace

const std::vector<Relation>& relation_catalog() {
  static const std::vector<Relation> kCatalog = {
      {"latency-monotone-delay",
       "one-way latency is non-decreasing in WAN delay",
       latency_delay_applies, latency_delay_check},
      {"delay-additivity",
       "adding d to the WAN delay adds exactly d to one-way verbs latency",
       latency_delay_applies, latency_delay_check},
      {"bw-monotone-delay",
       "throughput is non-increasing in WAN delay", bw_delay_applies,
       bw_delay_check},
      {"stream-monotone",
       "aggregate TCP throughput is non-decreasing in stream count",
       stream_applies, stream_check},
      {"window-monotone",
       "RC throughput is non-decreasing in the send window",
       window_applies, window_check},
      {"faults-inert-noop",
       "an all-zero fault plan leaves the run byte-identical",
       inert_applies, inert_check},
      {"metrics-noop",
       "disabling the metrics registry leaves the run byte-identical",
       metrics_noop_applies, metrics_noop_check},
      {"seed-replay",
       "identical scenario and seed replay to identical results",
       replay_applies, replay_check},
  };
  return kCatalog;
}

ScenarioResult check_scenario(const Scenario& s, OracleReport& report,
                              const Tolerances& tol) {
  const ScenarioResult base = run_scenario(s);
  check_scenario_oracles(s, base, report, tol);
  // latency-monotone-delay and delay-additivity share one derived run
  // (one Relation::check does both); skip the duplicate catalog entry.
  const auto& catalog = relation_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == std::string("delay-additivity")) continue;
    if (catalog[i].applies(s)) catalog[i].check(s, base, report, tol);
  }
  return base;
}

}  // namespace ibwan::check
