#include "check/selfcheck.hpp"

namespace ibwan::check {

OracleReport& selfcheck_report() {
  // NOLINT-IBWAN(CONC003): bench-process singleton, written only by the
  // single-threaded selfcheck pass after the engine has drained
  static OracleReport report;  // NOLINT: bench-process singleton
  return report;
}

}  // namespace ibwan::check
