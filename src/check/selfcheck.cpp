#include "check/selfcheck.hpp"

namespace ibwan::check {

OracleReport& selfcheck_report() {
  static OracleReport report;  // NOLINT: bench-process singleton
  return report;
}

}  // namespace ibwan::check
