#include "check/scenario_gen.hpp"

#include <algorithm>
#include <cmath>

#include "core/calibration.hpp"
#include "core/mpi_bench.hpp"
#include "core/nfs_bench.hpp"
#include "core/tcp_bench.hpp"
#include "core/testbed.hpp"
#include "sim/rng.hpp"

namespace ibwan::check {

namespace {

using ib::perftest::Op;
using ib::perftest::Transport;

/// Splitmix-style case-key derivation, so consecutive indices give
/// unrelated parameter draws while staying a pure function of
/// (seed, index) — the DET004 requirement.
std::uint64_t case_key(std::uint64_t seed, int index) {
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(index) + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Log-uniform integer draw in [lo, hi].
std::uint64_t log_uniform(sim::Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  const double llo = std::log2(static_cast<double>(lo));
  const double lhi = std::log2(static_cast<double>(hi));
  const double v = llo + rng.uniform_double() * (lhi - llo);
  const auto r = static_cast<std::uint64_t>(std::pow(2.0, v));
  return std::clamp(r, lo, hi);
}

template <class T, std::size_t N>
T pick(sim::Rng& rng, const T (&options)[N]) {
  return options[rng.uniform(N)];
}

}  // namespace

net::FaultPlanConfig generate_fault_plan(sim::Rng& rng) {
  net::FaultPlanConfig plan;
  if (rng.chance(0.5)) {
    plan.ge.p_good_to_bad = 0.001 + rng.uniform_double() * 0.05;
    plan.ge.p_bad_to_good = 0.1 + rng.uniform_double() * 0.4;
    plan.ge.loss_bad = 0.05 + rng.uniform_double() * 0.25;
    plan.ge.loss_good = rng.chance(0.3) ? rng.uniform_double() * 0.005 : 0.0;
  }
  if (rng.chance(0.4)) {
    plan.jitter_max = rng.uniform(1, 20) * sim::kMicrosecond;
  }
  if (rng.chance(0.3)) {
    const int flaps = static_cast<int>(rng.uniform(1, 2));
    for (int i = 0; i < flaps; ++i) {
      plan.flaps.push_back(net::FlapWindow{
          .down_at = rng.uniform(0, 5000) * sim::kMicrosecond,
          .down_for = rng.uniform(10, 2000) * sim::kMicrosecond});
    }
  }
  if (rng.chance(0.3)) {
    plan.brownouts.push_back(net::BrownoutWindow{
        .at = rng.uniform(0, 5000) * sim::kMicrosecond,
        .duration = rng.uniform(100, 5000) * sim::kMicrosecond,
        .buffer_bytes = rng.uniform(4096, 65536)});
  }
  // Ensure the plan is never accidentally empty when faults were asked
  // for — an inert plan is covered by the faults-inert relation instead.
  if (!plan.any()) plan.jitter_max = 5 * sim::kMicrosecond;
  return plan;
}

namespace {

core::Testbed make_testbed(const Scenario& s, const RunOptions& opt,
                           int nodes_per_cluster,
                           const net::FaultPlanConfig* inert) {
  core::TestbedOptions tbo;
  tbo.nodes_a = nodes_per_cluster;
  tbo.nodes_b = nodes_per_cluster;
  tbo.wan_delay = s.wan_delay;
  tbo.seed = s.run_seed;
  tbo.metrics = opt.metrics;
  if (opt.force_inert_plan) {
    tbo.faults = inert;
  } else if (s.faults) {
    tbo.faults = &s.fault_plan;
  }
  return core::Testbed(tbo);
}

ib::HcaConfig scenario_hca(const Scenario& s) {
  ib::HcaConfig hca;
  hca.mtu = s.mtu;
  hca.rc_max_inflight_msgs = s.rc_window;
  return hca;
}

/// Transfer volumes shared by run_scenario and the finite-volume oracle
/// corrections (they must agree, or the corrected floors are wrong).
constexpr std::uint64_t kTcpBytesPerStream = 1u << 20;

int rc_bw_iters(const Scenario& s) {
  return ib::perftest::iters_for_bytes(
      512 << 10, static_cast<std::uint32_t>(s.msg_size), 16, 1024);
}

std::uint64_t rc_bw_total_bytes(const Scenario& s) {
  return static_cast<std::uint64_t>(rc_bw_iters(s)) * s.msg_size;
}

}  // namespace

const char* stack_name(Stack s) {
  switch (s) {
    case Stack::kVerbsLatency: return "verbs-lat";
    case Stack::kVerbsRcBw: return "rc-bw";
    case Stack::kVerbsUdBw: return "ud-bw";
    case Stack::kTcpStreams: return "tcp";
    case Stack::kMpiPt2pt: return "mpi-bw";
    case Stack::kMpiBcast: return "mpi-bcast";
    case Stack::kNfs: return "nfs";
  }
  return "?";
}

std::string Scenario::id() const {
  return std::to_string(seed) + ":" + std::to_string(index);
}

std::string Scenario::describe() const {
  std::string d = std::string(stack_name(stack)) +
                  " delay=" + std::to_string(wan_delay) +
                  " size=" + std::to_string(msg_size) +
                  " mtu=" + std::to_string(mtu) +
                  " window=" + std::to_string(rc_window);
  switch (stack) {
    case Stack::kVerbsLatency:
      d += lat_transport == Transport::kUd ? " ud" : " rc";
      d += lat_op == Op::kRdmaWrite ? " write" : " sendrecv";
      break;
    case Stack::kTcpStreams:
      d += " streams=" + std::to_string(streams) +
           " tcp_window=" + std::to_string(tcp_window_bytes) +
           " ipoib_mtu=" + std::to_string(ipoib_mtu);
      break;
    case Stack::kMpiPt2pt:
      d += " threshold=" + std::to_string(rendezvous_threshold) +
           (coalescing ? " coalesce" : "");
      break;
    case Stack::kMpiBcast:
      d += " ranks=" + std::to_string(ranks_per_cluster) +
           (hierarchical ? " hier" : " orig");
      break;
    case Stack::kNfs:
      d += std::string(nfs_rdma ? " rdma" : " ipoib") +
           " threads=" + std::to_string(nfs_threads) +
           (nfs_write ? " write" : " read");
      break;
    default:
      break;
  }
  if (faults) {
    d += " faults[";
    if (fault_plan.ge.enabled()) d += "ge,";
    if (fault_plan.jitter_max > 0) d += "jitter,";
    if (!fault_plan.flaps.empty()) d += "flaps,";
    if (!fault_plan.brownouts.empty()) d += "brownout,";
    d += "]";
  }
  return d;
}

Scenario generate_scenario(std::uint64_t seed, int index) {
  sim::Rng rng(case_key(seed, index));
  Scenario s;
  s.seed = seed;
  s.index = index;
  s.run_seed = rng.next_u64();

  static constexpr sim::Duration kDelays[] = {
      0,       10 * sim::kMicrosecond,  100 * sim::kMicrosecond,
      500 * sim::kMicrosecond,          1 * sim::kMillisecond,
      5 * sim::kMillisecond,            10 * sim::kMillisecond};
  s.wan_delay = pick(rng, kDelays);
  static constexpr std::uint32_t kMtus[] = {256, 512, 1024, 2048, 4096};
  s.mtu = pick(rng, kMtus);
  static constexpr int kWindows[] = {1, 2, 4, 8, 16, 32, 64};
  s.rc_window = pick(rng, kWindows);

  const std::uint64_t die = rng.uniform(100);
  if (die < 20) {
    s.stack = Stack::kVerbsLatency;
    s.lat_transport = rng.chance(0.35) ? Transport::kUd : Transport::kRc;
    s.lat_op = (s.lat_transport == Transport::kRc && rng.chance(0.4))
                   ? Op::kRdmaWrite
                   : Op::kSendRecv;
    // Single-packet sizes so the closed-form latency oracle is exact.
    s.msg_size = log_uniform(rng, 1, s.mtu);
  } else if (die < 40) {
    s.stack = Stack::kVerbsRcBw;
    s.msg_size = log_uniform(rng, 64, 262144);
  } else if (die < 52) {
    s.stack = Stack::kVerbsUdBw;
    s.msg_size = log_uniform(rng, 2, s.mtu);  // UD: one datagram <= MTU
  } else if (die < 68) {
    s.stack = Stack::kTcpStreams;
    s.streams = static_cast<int>(rng.uniform(1, 4));
    static constexpr std::uint32_t kTcpWindows[] = {
        64 << 10, 256 << 10, 512 << 10, 1 << 20};
    s.tcp_window_bytes = pick(rng, kTcpWindows);
    // 65520 == ipoib::kConnectedIpMtu — the device asserts mtu <= it.
    static constexpr std::uint32_t kIpoibMtus[] = {0, 2048, 16384, 65520};
    s.ipoib_mtu = pick(rng, kIpoibMtus);
  } else if (die < 80) {
    s.stack = Stack::kMpiPt2pt;
    s.msg_size = log_uniform(rng, 256, 262144);
    static constexpr std::uint64_t kThresholds[] = {0, 1024, 8192, 65536,
                                                    262144};
    s.rendezvous_threshold = pick(rng, kThresholds);
    s.coalescing = rng.chance(0.3);
    s.mtu = 2048;  // MPI drivers use the library HCA defaults
  } else if (die < 88) {
    s.stack = Stack::kMpiBcast;
    s.ranks_per_cluster = static_cast<int>(rng.uniform(2, 4));
    s.hierarchical = rng.chance(0.5);
    s.msg_size = log_uniform(rng, 4, 65536);
  } else {
    s.stack = Stack::kNfs;
    s.nfs_rdma = rng.chance(0.6);
    s.nfs_threads = static_cast<int>(rng.uniform(1, 4));
    s.nfs_write = rng.chance(0.3);
    s.nfs_file_bytes = (1ull + rng.uniform(3)) << 20;
    // Bound the simulated transfer time in the window-collapse regime.
    s.wan_delay = std::min(s.wan_delay, sim::Duration{1 * sim::kMillisecond});
  }

  // Fault plans only where recovery is exercised end-to-end and the
  // measurement convention tolerates partial delivery (see DESIGN.md
  // §11); the remaining stacks get faults-off runs whose equivalence to
  // no-plan runs is itself a checked relation.
  if ((s.stack == Stack::kVerbsRcBw || s.stack == Stack::kTcpStreams ||
       s.stack == Stack::kVerbsUdBw) &&
      rng.chance(0.3)) {
    s.faults = true;
    s.fault_plan = generate_fault_plan(rng);
    // Jitter reorders the wire; RC answers reordering with go-back-N,
    // so long messages under heavy jitter retransmit their whole tail
    // per gap. Keep faulted RC messages to a few packets so a fuzz case
    // stays milliseconds instead of minutes.
    if (s.stack == Stack::kVerbsRcBw && s.fault_plan.jitter_max > 0) {
      s.msg_size = std::min<std::uint64_t>(s.msg_size, 16 * s.mtu);
    }
  }
  return s;
}

ScenarioResult run_scenario(const Scenario& s, const RunOptions& opt) {
  static const net::FaultPlanConfig kInertPlan{};
  ScenarioResult out;
  switch (s.stack) {
    case Stack::kVerbsLatency: {
      core::Testbed tb = make_testbed(s, opt, 1, &kInertPlan);
      ib::perftest::TestConfig tc;
      tc.msg_size = static_cast<std::uint32_t>(s.msg_size);
      tc.iterations = 20;
      tc.warmup = 4;
      tc.hca = scenario_hca(s);
      const auto r = ib::perftest::run_latency(
          tb.fabric(), tb.node_a(), tb.node_b(), s.lat_transport, s.lat_op,
          tc);
      tb.run();
      out.completed = r.iterations > 0 && r.avg_us > 0;
      out.value = r.avg_us;
      out.unit = "us";
      out.metrics = tb.metrics_snapshot();
      break;
    }
    case Stack::kVerbsRcBw:
    case Stack::kVerbsUdBw: {
      core::Testbed tb = make_testbed(s, opt, 1, &kInertPlan);
      ib::perftest::TestConfig tc;
      tc.msg_size = static_cast<std::uint32_t>(s.msg_size);
      tc.iterations = rc_bw_iters(s);
      tc.warmup = 2;
      tc.hca = scenario_hca(s);
      const auto transport = s.stack == Stack::kVerbsRcBw ? Transport::kRc
                                                          : Transport::kUd;
      const auto r = ib::perftest::run_bandwidth(tb.fabric(), tb.node_a(),
                                                 tb.node_b(), transport, tc);
      tb.run();
      // A severed run leaves end_time unset; the unsigned subtraction
      // then reports an absurd elapsed time, which is the signal.
      out.completed = r.seconds > 0 && r.seconds < 1e5;
      out.value = r.mbytes_per_sec;
      out.unit = "MB/s";
      out.metrics = tb.metrics_snapshot();
      break;
    }
    case Stack::kTcpStreams: {
      core::Testbed tb = make_testbed(s, opt, 1, &kInertPlan);
      core::tcpbench::StreamConfig sc;
      sc.device = s.ipoib_mtu == 0 ? core::ipoib_ud()
                                   : core::ipoib_rc(s.ipoib_mtu);
      sc.tcp = core::tcp_window(s.tcp_window_bytes);
      sc.streams = s.streams;
      // Faulted runs skip the value oracles, so they can move less data
      // (jitter-reordered connected-mode streams retransmit heavily).
      sc.bytes_per_stream = s.faults ? (256u << 10) : kTcpBytesPerStream;
      const double mbps = core::tcpbench::tcp_throughput(tb, sc);
      tb.run();
      out.completed = mbps > 0;
      out.value = mbps;
      out.unit = "MB/s";
      out.metrics = tb.metrics_snapshot();
      break;
    }
    case Stack::kMpiPt2pt: {
      core::Testbed tb = make_testbed(s, opt, 1, &kInertPlan);
      core::mpibench::OsuConfig oc;
      oc.msg_size = s.msg_size;
      oc.window = 32;
      oc.iterations = 4;
      oc.warmup = 1;
      oc.rendezvous_threshold = s.rendezvous_threshold;
      oc.coalescing = s.coalescing;
      const double mbps = core::mpibench::osu_bw(tb, oc);
      tb.run();
      out.completed = mbps > 0;
      out.value = mbps;
      out.unit = "MB/s";
      out.metrics = tb.metrics_snapshot();
      break;
    }
    case Stack::kMpiBcast: {
      core::Testbed tb = make_testbed(s, opt, s.ranks_per_cluster,
                                      &kInertPlan);
      core::mpibench::BcastConfig bc;
      bc.ranks_per_cluster = s.ranks_per_cluster;
      bc.msg_size = s.msg_size;
      bc.iterations = 4;
      bc.hierarchical = s.hierarchical;
      const double us = core::mpibench::bcast_latency_us(tb, bc);
      tb.run();
      out.completed = us > 0;
      out.value = us;
      out.unit = "us";
      out.metrics = tb.metrics_snapshot();
      break;
    }
    case Stack::kNfs: {
      core::nfsbench::NfsBenchConfig nc;
      nc.transport = s.nfs_rdma ? core::nfsbench::Transport::kRdma
                                : core::nfsbench::Transport::kIpoibRc;
      nc.wan_delay = s.wan_delay;
      nc.threads = s.nfs_threads;
      nc.file_bytes = s.nfs_file_bytes;
      nc.record_bytes = 256 << 10;
      nc.write = s.nfs_write;
      if (s.faults && !opt.force_inert_plan) nc.faults = &s.fault_plan;
      if (opt.force_inert_plan) nc.faults = &kInertPlan;
      sim::MetricsSnapshot snap;
      if (opt.metrics) nc.metrics_out = &snap;
      const nfs::IozoneResult r = core::nfsbench::run(nc);
      out.completed = r.mbytes_per_sec > 0;
      out.value = r.mbytes_per_sec;
      out.unit = "MB/s";
      out.metrics = std::move(snap);
      break;
    }
  }
  return out;
}

void check_scenario_oracles(const Scenario& s, const ScenarioResult& result,
                            OracleReport& report, const Tolerances& tol) {
  const net::FabricConfig cfg = core::fabric_defaults(1, 1);
  const ib::HcaConfig hca = scenario_hca(s);
  const std::string ctx = s.id() + " " + s.describe();

  if (result.completed) {
    // Finite, non-negative measurement — the generic sanity oracle.
    report.expect_true("value-sane", ctx,
                       std::isfinite(result.value) && result.value >= 0,
                       "value=" + std::to_string(result.value));
  }

  if (result.completed && !s.faults) {
    switch (s.stack) {
      case Stack::kVerbsLatency: {
        const double model = verbs_latency_model_us(
            cfg, hca, s.lat_transport, s.lat_op, s.msg_size, s.wan_delay);
        report.expect_near("latency-model", ctx, result.value, model,
                           tol.exact_rel);
        report.expect_ge("latency-floor", ctx, result.value,
                         oneway_floor_us(cfg, s.wan_delay));
        break;
      }
      case Stack::kVerbsRcBw:
        check_rc_bw(report, ctx, cfg, hca, s.msg_size, s.wan_delay,
                    result.value, tol, rc_bw_total_bytes(s));
        break;
      case Stack::kVerbsUdBw:
        report.expect_near("ud-bw-model", ctx, result.value,
                           ud_bw_model_mbps(cfg, hca, s.msg_size),
                           tol.exact_rel);
        break;
      case Stack::kTcpStreams:
        check_tcp_bw(report, ctx, cfg, s.tcp_window_bytes, s.streams,
                     s.wan_delay, result.value, tol, s.ipoib_mtu,
                     ib::HcaConfig{}.rc_max_inflight_msgs,
                     kTcpBytesPerStream);
        break;
      case Stack::kMpiPt2pt:
        check_mpi_bw(report, ctx, cfg, s.wan_delay, result.value, tol);
        break;
      case Stack::kMpiBcast:
        report.expect_ge("bcast-floor", ctx, result.value,
                         bcast_floor_us(cfg, s.wan_delay));
        break;
      case Stack::kNfs:
        report.expect_le(
            "nfs-bw-bound", ctx, result.value,
            nfs_bw_bound_mbps(cfg, core::nfs_server_hca(),
                              s.nfs_rdma ? 4096 : 0, s.wan_delay,
                              /*lan=*/false),
            tol.bound_slack);
        break;
    }
  } else if (result.completed && s.faults) {
    // Loss and outages only slow a run down: upper bounds still hold
    // for goodput-measuring stacks (UD's receiver-interval convention
    // over-counts lost datagrams, so it is excluded).
    if (s.stack == Stack::kVerbsRcBw) {
      report.expect_le("rc-bw-bound", ctx, result.value,
                       std::min(rc_wire_peak_mbps(cfg, hca, s.msg_size),
                                rc_window_bound_mbps(cfg, hca, s.msg_size,
                                                     s.wan_delay)),
                       tol.bound_slack);
    } else if (s.stack == Stack::kTcpStreams) {
      const double wire = 1000.0 * std::min(cfg.lan_rate,
                                            cfg.longbow.wan_rate);
      report.expect_le("tcp-bw-bound", ctx, result.value, wire,
                       tol.bound_slack);
    }
  }

  // Conservation holds drained, faulted or not; exact WQE accounting
  // needs a fault-free, read-free (verbs) workload.
  ConservationOptions copt;
  copt.exact_links = true;
  copt.exact_rc_wqes =
      !s.faults && (s.stack == Stack::kVerbsRcBw ||
                    (s.stack == Stack::kVerbsLatency &&
                     s.lat_transport == Transport::kRc));
  check_conservation(report, ctx, result.metrics, copt);
}

Scenario shrink_scenario(
    const Scenario& s,
    const std::function<bool(const Scenario&)>& still_fails, int budget) {
  Scenario best = s;
  bool progressed = true;
  while (progressed && budget > 0) {
    progressed = false;
    std::vector<Scenario> candidates;
    if (best.faults) {
      Scenario c = best;
      c.faults = false;
      c.fault_plan = net::FaultPlanConfig{};
      candidates.push_back(c);
    }
    if (best.wan_delay > 0) {
      Scenario c = best;
      c.wan_delay = best.wan_delay / 10;
      candidates.push_back(c);
    }
    if (best.msg_size > 64) {
      Scenario c = best;
      c.msg_size = std::max<std::uint64_t>(64, best.msg_size / 4);
      candidates.push_back(c);
    }
    if (best.streams > 1) {
      Scenario c = best;
      c.streams = 1;
      candidates.push_back(c);
    }
    if (best.rc_window != 16) {
      Scenario c = best;
      c.rc_window = 16;
      candidates.push_back(c);
    }
    if (best.mtu != 2048) {
      Scenario c = best;
      c.mtu = 2048;
      if (c.msg_size > c.mtu &&
          (c.stack == Stack::kVerbsUdBw || c.stack == Stack::kVerbsLatency))
        c.msg_size = c.mtu;
      candidates.push_back(c);
    }
    if (best.rendezvous_threshold != 0) {
      Scenario c = best;
      c.rendezvous_threshold = 0;
      candidates.push_back(c);
    }
    for (const Scenario& c : candidates) {
      if (budget <= 0) break;
      --budget;
      if (still_fails(c)) {
        best = c;
        progressed = true;
        break;
      }
    }
  }
  return best;
}

}  // namespace ibwan::check
