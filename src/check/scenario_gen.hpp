// Seeded scenario fuzzing: a deterministic generator that samples
// delay/MTU/window/threshold/fault-plan combinations across the
// protocol stacks, runs each against a fresh Testbed, and hands the
// measurement plus a drained metrics snapshot to the oracle and
// metamorphic-relation catalogs (DESIGN.md §11).
//
// Determinism contract (ibwan-lint DET004): every draw comes from a
// sim::Rng explicitly seeded from (master seed, case index), so
// `generate_scenario(seed, i)` is a pure function and a failing case
// replays from its "seed:index" id alone.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "check/oracles.hpp"
#include "ib/perftest.hpp"
#include "net/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ibwan::check {

enum class Stack {
  kVerbsLatency,  // RC/UD ping-pong, SendRecv or RDMA write
  kVerbsRcBw,     // RC streaming bandwidth
  kVerbsUdBw,     // UD streaming bandwidth
  kTcpStreams,    // IPoIB TCP stream aggregate
  kMpiPt2pt,      // osu_bw
  kMpiBcast,      // OSU broadcast latency
  kNfs,           // IOzone over NFS/RDMA or NFS/IPoIB
};

const char* stack_name(Stack s);

/// One generated test case. All fields are derived deterministically
/// from (seed, index); run_seed seeds the Testbed's simulator.
struct Scenario {
  std::uint64_t seed = 42;
  int index = 0;
  Stack stack = Stack::kVerbsRcBw;
  sim::Duration wan_delay = 0;
  std::uint64_t msg_size = 2048;
  std::uint32_t mtu = 2048;
  int rc_window = 16;
  ib::perftest::Transport lat_transport = ib::perftest::Transport::kRc;
  ib::perftest::Op lat_op = ib::perftest::Op::kSendRecv;
  std::uint32_t tcp_window_bytes = 1u << 20;
  std::uint32_t ipoib_mtu = 0;  // 0 = datagram mode; else connected mode
  int streams = 1;
  std::uint64_t rendezvous_threshold = 0;  // 0 = library default
  bool coalescing = false;
  int ranks_per_cluster = 2;
  bool hierarchical = false;
  int nfs_threads = 1;
  bool nfs_rdma = true;
  bool nfs_write = false;
  std::uint64_t nfs_file_bytes = 2u << 20;
  bool faults = false;
  net::FaultPlanConfig fault_plan{};
  std::uint64_t run_seed = 42;

  /// Replay handle, printed on failure: pass as `--scenario seed:index`.
  std::string id() const;
  /// Deterministic one-line description for the fuzzing log.
  std::string describe() const;
};

Scenario generate_scenario(std::uint64_t seed, int index);

/// Samples a never-empty fault-plan mix (Gilbert–Elliott loss, jitter,
/// link flaps, buffer brownouts) from `rng` — the same distribution the
/// scenario fuzzer applies. Exposed so property tests (e.g.
/// tests/kv/quorum_property_test.cpp) can sweep the identical fault
/// space from their own seeded streams.
net::FaultPlanConfig generate_fault_plan(sim::Rng& rng);

struct ScenarioResult {
  /// The measurement ran to completion. Fault plans can legitimately
  /// sever a run (RC retry exhaustion); value oracles are skipped then,
  /// conservation still holds.
  bool completed = false;
  double value = 0.0;
  const char* unit = "";
  sim::MetricsSnapshot metrics;  // drained end-of-run snapshot
};

struct RunOptions {
  bool metrics = true;
  /// Apply an all-zero fault plan instead of the scenario's (for the
  /// faults-off ≡ no-FaultPlan relation).
  bool force_inert_plan = false;
};

ScenarioResult run_scenario(const Scenario& s, const RunOptions& opt = {});

/// Applies every value and conservation oracle appropriate for the
/// scenario's stack to `result` (closed-form latency/UD models and
/// two-sided knee checks only on fault-free runs; upper bounds whenever
/// the run completed; conservation always).
void check_scenario_oracles(const Scenario& s, const ScenarioResult& result,
                            OracleReport& report, const Tolerances& tol = {});

/// Greedy deterministic shrinking: tries a fixed sequence of
/// simplifications (faults off, shorter delay, smaller message, fewer
/// streams, default window/mtu) and keeps each one that still fails,
/// calling `still_fails` at most `budget` times.
Scenario shrink_scenario(const Scenario& s,
                         const std::function<bool(const Scenario&)>& still_fails,
                         int budget = 24);

}  // namespace ibwan::check
