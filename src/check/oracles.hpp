// Analytic oracles: closed-form predictions and bounds computed from
// configuration, never from simulation output (DESIGN.md §11).
//
// The byte-identical CSV regression can lock in a wrong curve; these
// oracles check that the curves follow from first principles instead:
//
//   * one-way verbs latency  = per-hop costs + the 5 us/km WAN delay
//     (paper Table 1 / Figure 3) — exact for single-packet messages;
//   * RC throughput         <= min(wire rate, window / RTT), with the
//     knee located by the bandwidth-delay product (Figure 5);
//   * UD throughput          = min(sender engine rate, wire rate),
//     delay-independent (Figure 4);
//   * TCP / MPI / NFS        upper-bounded by the same wire and window
//     arguments (Figures 6-13);
//   * conservation laws over a MetricsSnapshot — every byte a link
//     serialized was delivered or dropped, every RC WQE that started
//     transmission completed or was flushed.
//
// All tolerances live in Tolerances so tests can tighten them to prove
// a broken oracle fails the suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ib/perftest.hpp"
#include "ib/verbs.hpp"
#include "net/fabric.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace ibwan::check {

// ---- Check report ---------------------------------------------------

struct CheckResult {
  std::string oracle;   // catalog name, e.g. "rc-bw-bound"
  std::string context;  // scenario / bench row the check ran against
  bool pass = false;
  std::string detail;  // "measured=... predicted=... tol=..."
};

/// Accumulates oracle/relation verdicts. Append-only; the log is
/// deterministic (insertion order, fixed float formatting) so a fuzzing
/// run's full report can be compared byte-for-byte across reruns.
class OracleReport {
 public:
  /// measured == predicted within relative tolerance `rel` (plus a tiny
  /// absolute epsilon for values near zero).
  void expect_near(const std::string& oracle, const std::string& context,
                   double measured, double predicted, double rel,
                   double abs_eps = 1e-9);
  /// measured <= bound * (1 + slack).
  void expect_le(const std::string& oracle, const std::string& context,
                 double measured, double bound, double slack = 0.0);
  /// measured >= floor * (1 - slack).
  void expect_ge(const std::string& oracle, const std::string& context,
                 double measured, double floor, double slack = 0.0);
  /// Exact unsigned equality (conservation counters).
  void expect_eq_u64(const std::string& oracle, const std::string& context,
                     std::uint64_t measured, std::uint64_t expected);
  void expect_true(const std::string& oracle, const std::string& context,
                   bool ok, const std::string& detail);

  void merge(const OracleReport& other);

  bool ok() const { return failures_ == 0; }
  std::size_t total() const { return checks_.size(); }
  std::size_t failures() const { return failures_; }
  const std::vector<CheckResult>& checks() const { return checks_; }

  /// One line per failed check.
  std::string failure_log() const;
  /// "N checks, M failed" summary line.
  std::string summary() const;

 private:
  void add(CheckResult r);

  std::vector<CheckResult> checks_;
  std::size_t failures_ = 0;
};

// ---- Tolerance policy (DESIGN.md §11) -------------------------------

struct Tolerances {
  /// Closed-form latency / UD bandwidth predictions are exact in the
  /// model; 1% absorbs integer-ns serialization rounding.
  double exact_rel = 0.01;
  /// Upper bounds (wire rate, window/RTT) are hard; 2% absorbs timing
  /// windows that start after the first byte is already in flight.
  double bound_slack = 0.02;
  /// Above the knee (window*size >= 2*BDP) RC must reach this fraction
  /// of the wire peak.
  double knee_high_frac = 0.8;
  /// Below the knee (window*size <= BDP/2) the measured/window-bound
  /// ratio must land in [knee_low_frac, 1 + bound_slack].
  double knee_low_frac = 0.5;
  /// Monotonicity comparisons allow this relative wiggle.
  double monotone_rel = 0.02;
};

// ---- Path model -----------------------------------------------------

/// Deterministic facts about the cross-WAN path of a cluster-of-clusters
/// fabric: host -> switch A -> Longbow A -> WAN -> Longbow B ->
/// switch B -> host (net/fabric.cpp).
struct PathModel {
  double lan_rate = 2.0;       // bytes/ns on the four LAN links
  double wan_rate = 1.0;       // bytes/ns on the long-haul link
  sim::Duration fixed_prop = 0;  // one-way propagation at zero delay
  int lan_links = 4;             // serializing LAN hops on the path
};

PathModel cross_wan_path(const net::FabricConfig& cfg);

/// Serialization of `wire_bytes` across every link of the path (each
/// link rounds up to whole ns, as net/link.cpp does).
sim::Duration path_serialization_ns(const PathModel& path,
                                    std::uint64_t wire_bytes);

// ---- Latency oracles ------------------------------------------------

/// Oracle "latency-model": exact one-way verbs latency in microseconds
/// for a single-packet message (msg_size <= mtu). Sum of propagation,
/// per-link serialization, and HCA costs; SendRecv pays receive-WQE
/// matching and CQE delivery, RDMA write only write detection.
double verbs_latency_model_us(const net::FabricConfig& cfg,
                              const ib::HcaConfig& hca,
                              ib::perftest::Transport transport,
                              ib::perftest::Op op, std::uint64_t msg_size,
                              sim::Duration wan_delay);

/// Oracle "latency-floor": no cross-WAN message, any stack, can beat
/// the one-way propagation floor (microseconds).
double oneway_floor_us(const net::FabricConfig& cfg, sim::Duration wan_delay);

/// Topology-graph generalization of the latency floor (DESIGN.md §15):
/// the one-way propagation floor in microseconds between hosts of two
/// sites, along the build-time shortest-path route — every LAN cable,
/// switch hop, Longbow pipeline, per-edge WAN propagation, and
/// `wan_delay` of emulated distance per WAN edge crossed. Matches
/// oneway_floor_us on the two-site wrapper. Negative when unreachable.
double topology_oneway_floor_us(const net::TopologyConfig& topo, int src_site,
                                int dst_site, sim::Duration wan_delay);

/// Oracle "delay-per-km": the latency increment for `km` kilometres of
/// emulated distance (paper Table 1: exactly 5 us/km).
double km_latency_increment_us(double km);

// ---- Bandwidth oracles ----------------------------------------------

/// Payload throughput the bottleneck (WAN) link supports once per-packet
/// headers are paid, in MB/s (1 MB = 1e6 bytes, the paper's unit).
double rc_wire_peak_mbps(const net::FabricConfig& cfg,
                         const ib::HcaConfig& hca, std::uint64_t msg_size);

/// window-limited RC throughput bound: window * msg_size / RTT_min.
double rc_window_bound_mbps(const net::FabricConfig& cfg,
                            const ib::HcaConfig& hca, std::uint64_t msg_size,
                            sim::Duration wan_delay);

/// Bandwidth-delay product of the WAN path at minimum RTT, in bytes.
std::uint64_t bdp_bytes(const net::FabricConfig& cfg, sim::Duration wan_delay);

/// Oracles "rc-bw-bound" + "rc-knee": measured RC streaming bandwidth
/// must respect min(wire, window/RTT), reach knee_high_frac of the wire
/// peak when window*size >= 2*BDP, and track the window bound when
/// window*size <= BDP/2 (Figure 5's knee, located from the BDP).
///
/// `total_bytes` is the measured transfer volume; the perftest timing
/// convention spans pipeline fill, so finite transfers pay one extra
/// RTT over the pure serialization time and both knee floors are
/// corrected to total / (total/rate + RTT). 0 means "steady state"
/// (volume >> BDP): no correction, as for the committed CSV volumes.
void check_rc_bw(OracleReport& report, const std::string& context,
                 const net::FabricConfig& cfg, const ib::HcaConfig& hca,
                 std::uint64_t msg_size, sim::Duration wan_delay,
                 double measured_mbps, const Tolerances& tol = {},
                 std::uint64_t total_bytes = 0);

/// Oracle "ud-bw-model": exact UD streaming bandwidth — the slower of
/// the sender engine (wqe + per-packet overhead) and the wire.
/// Delay-independent, which is Figure 4's point.
double ud_bw_model_mbps(const net::FabricConfig& cfg,
                        const ib::HcaConfig& hca, std::uint64_t msg_size);

/// Oracle "tcp-bw-bound": aggregate acked TCP throughput across
/// `streams` streams <= min(wire rate, aggregate window / RTT_min);
/// below half the BDP the window bound must also be tracked from below.
///
/// In IPoIB connected mode every stream shares one IpoibDevice pair and
/// thus one underlying RC QP, so the aggregate window is
/// min(streams * window_bytes, cm_rc_window * cm_mtu) — the RC layer's
/// message window caps the whole bundle (cm_mtu = 0 means datagram
/// mode: no RC window). `bytes_per_stream` gates the lower-bound check:
/// short flows are slow-start-dominated, so it only applies to flows of
/// at least 8 windows, with an 8-RTT ramp correction (0 = steady state,
/// no gating: the fig6/fig7 bench volumes).
void check_tcp_bw(OracleReport& report, const std::string& context,
                  const net::FabricConfig& cfg, std::uint32_t window_bytes,
                  int streams, sim::Duration wan_delay, double measured_mbps,
                  const Tolerances& tol = {}, std::uint32_t cm_mtu = 0,
                  int cm_rc_window = 16, std::uint64_t bytes_per_stream = 0);

/// Oracle "mpi-bw-bound": MPI pt2pt streaming bandwidth <= wire rate
/// (headers ignored — a strict upper bound).
void check_mpi_bw(OracleReport& report, const std::string& context,
                  const net::FabricConfig& cfg, sim::Duration wan_delay,
                  double measured_mbps, const Tolerances& tol = {});

/// Oracle "msg-rate-bound": aggregate message rate of `pairs`
/// sender/receiver pairs, million messages per second — bounded by the
/// per-pair sender engine and the shared wire.
double mpi_msg_rate_bound_mmps(const net::FabricConfig& cfg,
                               const ib::HcaConfig& hca, int pairs,
                               std::uint64_t msg_size);

/// Oracle "bcast-floor": a cross-cluster broadcast iteration (root in
/// A, acker in B) cannot beat one WAN round trip, in microseconds.
double bcast_floor_us(const net::FabricConfig& cfg, sim::Duration wan_delay);

/// Oracle "nfs-bw-bound": NFS throughput <= min(wire rate, server
/// window * chunk / RTT_min) for the RDMA transport (chunk_bytes > 0),
/// or the wire rate alone (lan=true uses the LAN rate: no Longbows).
double nfs_bw_bound_mbps(const net::FabricConfig& cfg,
                         const ib::HcaConfig& server_hca,
                         std::uint64_t chunk_bytes, sim::Duration wan_delay,
                         bool lan);

// ---- Conservation oracles -------------------------------------------

struct ConservationOptions {
  /// Exact per-link equality (bytes_sent == delivered + dropped).
  /// Requires a drained simulator; aggregated bench snapshots are
  /// drained too (every driver runs its simulator to completion), so
  /// this defaults on.
  bool exact_links = true;
  /// Assert msgs_sent == send_completions per ib.rc scope. Valid only
  /// for fault-free workloads with no RDMA reads (verbs scenarios);
  /// otherwise only send_completions <= msgs_sent is checked.
  bool exact_rc_wqes = false;
  /// Tighten the SDR inequalities to equalities: every chunk sent was
  /// received (no loss, no duplicates) and every delivered message's
  /// bytes were decoded. Valid only for drained fault-free runs whose
  /// sender and receiver scopes are both in the snapshot.
  bool exact_sdr = false;
};

/// Oracles "link-conservation" + "rc-wqe-conservation" +
/// "sdr-conservation" over a (possibly merged) metrics snapshot. The
/// SDR identities (src/sdr/sdr.hpp SdrStats) are checked per scope
/// where local, and summed across all `/sdr` scopes where they relate
/// a sender to a receiver (chunks on the wire, messages delivered).
void check_conservation(OracleReport& report, const std::string& context,
                        const sim::MetricsSnapshot& snap,
                        const ConservationOptions& opt = {});

}  // namespace ibwan::check
