// Process-wide oracle report for bench --selfcheck runs.
//
// Benches accumulate verdicts into one report: generic table sanity
// checks from bench::finish(), per-figure oracle blocks in each bench's
// main(), and the conservation audit over the merged metrics snapshot
// in bench::selfcheck_exit(). Main-thread only by construction — sweep
// workers produce rows, never verdicts (checks run after the pool has
// joined), so no locking is needed.
#pragma once

#include "check/oracles.hpp"

namespace ibwan::check {

OracleReport& selfcheck_report();

}  // namespace ibwan::check
