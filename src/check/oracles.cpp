#include "check/oracles.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ibwan::check {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The slower of the LAN and WAN serialization rates — the path's
/// throughput bottleneck.
double bottleneck_rate(const PathModel& path) {
  return std::min(path.lan_rate, path.wan_rate);
}

/// Minimum round trip of the cross-WAN path: propagation only, no
/// serialization or HCA costs, so it lower-bounds every real RTT and
/// window/RTT_min upper-bounds every window-limited throughput.
sim::Duration rtt_min_ns(const PathModel& path, sim::Duration wan_delay) {
  return 2 * (path.fixed_prop + wan_delay);
}

std::uint64_t packets_for(std::uint64_t msg_size, std::uint32_t mtu) {
  return msg_size == 0 ? 1 : (msg_size + mtu - 1) / mtu;
}

/// Finite-volume throughput: transferring `total` bytes at steady rate
/// `rate_mbps` still pays `ramp_ns` of pipeline fill (the measurement
/// convention times first doorbell to last completion). Returns the
/// corrected MB/s; total == 0 returns the steady rate unchanged.
double finite_volume_mbps(double rate_mbps, std::uint64_t total,
                          double ramp_ns) {
  if (total == 0 || rate_mbps <= 0.0) return rate_mbps;
  const double wire_ns = 1000.0 * static_cast<double>(total) / rate_mbps;
  return 1000.0 * static_cast<double>(total) / (wire_ns + ramp_ns);
}

}  // namespace

// ---- OracleReport ---------------------------------------------------

void OracleReport::add(CheckResult r) {
  if (!r.pass) ++failures_;
  checks_.push_back(std::move(r));
}

void OracleReport::expect_near(const std::string& oracle,
                               const std::string& context, double measured,
                               double predicted, double rel, double abs_eps) {
  const double err = std::abs(measured - predicted);
  const bool pass = err <= std::abs(predicted) * rel + abs_eps;
  add({oracle, context, pass,
       "measured=" + fmt(measured) + " predicted=" + fmt(predicted) +
           " rel_tol=" + fmt(rel)});
}

void OracleReport::expect_le(const std::string& oracle,
                             const std::string& context, double measured,
                             double bound, double slack) {
  const bool pass = measured <= bound * (1.0 + slack);
  add({oracle, context, pass,
       "measured=" + fmt(measured) + " bound=" + fmt(bound) +
           " slack=" + fmt(slack)});
}

void OracleReport::expect_ge(const std::string& oracle,
                             const std::string& context, double measured,
                             double floor, double slack) {
  const bool pass = measured >= floor * (1.0 - slack);
  add({oracle, context, pass,
       "measured=" + fmt(measured) + " floor=" + fmt(floor) +
           " slack=" + fmt(slack)});
}

void OracleReport::expect_eq_u64(const std::string& oracle,
                                 const std::string& context,
                                 std::uint64_t measured,
                                 std::uint64_t expected) {
  add({oracle, context, measured == expected,
       "measured=" + std::to_string(measured) +
           " expected=" + std::to_string(expected)});
}

void OracleReport::expect_true(const std::string& oracle,
                               const std::string& context, bool ok,
                               const std::string& detail) {
  add({oracle, context, ok, detail});
}

void OracleReport::merge(const OracleReport& other) {
  for (const CheckResult& r : other.checks_) add(r);
}

std::string OracleReport::failure_log() const {
  std::string out;
  for (const CheckResult& r : checks_) {
    if (r.pass) continue;
    out += "FAIL [" + r.oracle + "] " + r.context + ": " + r.detail + "\n";
  }
  return out;
}

std::string OracleReport::summary() const {
  return std::to_string(checks_.size()) + " checks, " +
         std::to_string(failures_) + " failed";
}

// ---- Path model -----------------------------------------------------

PathModel cross_wan_path(const net::FabricConfig& cfg) {
  PathModel path;
  path.lan_rate = cfg.lan_rate;
  path.wan_rate = cfg.longbow.wan_rate;
  // host->switch, switch->longbow, longbow->switch, switch->host cables
  // plus two switch hops, two Longbow pipeline traversals, and the
  // zero-distance fiber (net/fabric.cpp build_cluster_of_clusters).
  path.fixed_prop = 4 * cfg.host_link_prop + 2 * cfg.switch_latency +
                    2 * cfg.longbow.pipeline_latency +
                    cfg.longbow.base_propagation;
  path.lan_links = 4;
  return path;
}

sim::Duration path_serialization_ns(const PathModel& path,
                                    std::uint64_t wire_bytes) {
  const sim::Duration lan = sim::duration_ceil(
      static_cast<double>(wire_bytes) / path.lan_rate);
  const sim::Duration wan = sim::duration_ceil(
      static_cast<double>(wire_bytes) / path.wan_rate);
  return static_cast<sim::Duration>(path.lan_links) * lan + wan;
}

// ---- Latency oracles ------------------------------------------------

double verbs_latency_model_us(const net::FabricConfig& cfg,
                              const ib::HcaConfig& hca,
                              ib::perftest::Transport transport,
                              ib::perftest::Op op, std::uint64_t msg_size,
                              sim::Duration wan_delay) {
  const PathModel path = cross_wan_path(cfg);
  const std::uint32_t hdr = transport == ib::perftest::Transport::kUd
                                ? ib::kUdHeaderBytes
                                : ib::kRcHeaderBytes;
  // Sender: doorbell + per-packet engine. Receiver: per-packet rx cost,
  // then either receive-WQE matching + CQE delivery (channel semantics)
  // or the cheaper RDMA write detection (memory polling, no CQE).
  sim::Duration hca_ns = hca.wqe_overhead + hca.pkt_overhead +
                         hca.rx_pkt_overhead;
  if (op == ib::perftest::Op::kRdmaWrite) {
    hca_ns += hca.rdma_detect_overhead;
  } else {
    hca_ns += hca.recv_match_overhead + hca.cqe_latency;
  }
  const sim::Duration total = path.fixed_prop + wan_delay +
                              path_serialization_ns(path, msg_size + hdr) +
                              hca_ns;
  return static_cast<double>(total) / 1000.0;
}

double oneway_floor_us(const net::FabricConfig& cfg, sim::Duration wan_delay) {
  return static_cast<double>(cross_wan_path(cfg).fixed_prop + wan_delay) /
         1000.0;
}

double topology_oneway_floor_us(const net::TopologyConfig& topo, int src_site,
                                int dst_site, sim::Duration wan_delay) {
  const net::WanRoutes routes = net::compute_wan_routes(topo);
  const sim::Duration floor =
      net::path_floor_ns(topo, routes, src_site, dst_site, wan_delay);
  return static_cast<double>(floor) / 1000.0;
}

double km_latency_increment_us(double km) { return 5.0 * km; }

// ---- Bandwidth oracles ----------------------------------------------

double rc_wire_peak_mbps(const net::FabricConfig& cfg,
                         const ib::HcaConfig& hca, std::uint64_t msg_size) {
  const PathModel path = cross_wan_path(cfg);
  const std::uint64_t pkts = packets_for(msg_size, hca.mtu);
  const std::uint64_t wire = msg_size + pkts * ib::kRcHeaderBytes;
  return 1000.0 * bottleneck_rate(path) * static_cast<double>(msg_size) /
         static_cast<double>(wire);
}

double rc_window_bound_mbps(const net::FabricConfig& cfg,
                            const ib::HcaConfig& hca, std::uint64_t msg_size,
                            sim::Duration wan_delay) {
  const PathModel path = cross_wan_path(cfg);
  const double rtt = static_cast<double>(rtt_min_ns(path, wan_delay));
  return 1000.0 * static_cast<double>(hca.rc_max_inflight_msgs) *
         static_cast<double>(msg_size) / rtt;
}

std::uint64_t bdp_bytes(const net::FabricConfig& cfg,
                        sim::Duration wan_delay) {
  const PathModel path = cross_wan_path(cfg);
  return static_cast<std::uint64_t>(
      bottleneck_rate(path) *
      static_cast<double>(rtt_min_ns(path, wan_delay)));
}

void check_rc_bw(OracleReport& report, const std::string& context,
                 const net::FabricConfig& cfg, const ib::HcaConfig& hca,
                 std::uint64_t msg_size, sim::Duration wan_delay,
                 double measured_mbps, const Tolerances& tol,
                 std::uint64_t total_bytes) {
  const PathModel path = cross_wan_path(cfg);
  const double rtt = static_cast<double>(rtt_min_ns(path, wan_delay));
  const double wire = rc_wire_peak_mbps(cfg, hca, msg_size);
  const double window = rc_window_bound_mbps(cfg, hca, msg_size, wan_delay);
  report.expect_le("rc-bw-bound", context, measured_mbps,
                   std::min(wire, window), tol.bound_slack);
  const double window_product =
      static_cast<double>(hca.rc_max_inflight_msgs) *
      static_cast<double>(msg_size);
  const double bdp = static_cast<double>(bdp_bytes(cfg, wan_delay));
  if (window_product >= 2.0 * bdp) {
    // Above the knee the window covers the pipe: near-wire throughput,
    // minus the one-RTT pipeline fill a finite transfer pays.
    report.expect_ge("rc-knee", context + " above-knee", measured_mbps,
                     finite_volume_mbps(wire, total_bytes, rtt) *
                         tol.knee_high_frac);
  } else if (window_product <= 0.5 * bdp &&
             (total_bytes == 0 ||
              static_cast<double>(total_bytes) >= 4.0 * window_product)) {
    // Well below the knee the window bound is tight from both sides —
    // once the flow wraps the window enough times to reach steady state.
    report.expect_ge("rc-knee", context + " below-knee", measured_mbps,
                     finite_volume_mbps(window, total_bytes, rtt) *
                         tol.knee_low_frac);
  }
}

double ud_bw_model_mbps(const net::FabricConfig& cfg,
                        const ib::HcaConfig& hca, std::uint64_t msg_size) {
  const PathModel path = cross_wan_path(cfg);
  const std::uint64_t pkts = packets_for(msg_size, hca.mtu);
  // Steady-state inter-message gap: the sender engine (doorbell + one
  // engine tick per packet) or the per-message wire time on the slowest
  // link, whichever is longer. UD never waits for acks, so WAN delay
  // does not appear — Figure 4's delay-independence.
  const sim::Duration engine =
      hca.wqe_overhead + pkts * hca.pkt_overhead;
  const std::uint64_t full = hca.mtu + ib::kUdHeaderBytes;
  const std::uint64_t last =
      msg_size - (pkts - 1) * hca.mtu + ib::kUdHeaderBytes;
  const double rate = bottleneck_rate(path);
  const sim::Duration wire =
      (pkts - 1) * sim::duration_ceil(static_cast<double>(full) / rate) +
      sim::duration_ceil(static_cast<double>(last) / rate);
  const sim::Duration gap = std::max(engine, wire);
  return 1000.0 * static_cast<double>(msg_size) / static_cast<double>(gap);
}

void check_tcp_bw(OracleReport& report, const std::string& context,
                  const net::FabricConfig& cfg, std::uint32_t window_bytes,
                  int streams, sim::Duration wan_delay, double measured_mbps,
                  const Tolerances& tol, std::uint32_t cm_mtu,
                  int cm_rc_window, std::uint64_t bytes_per_stream) {
  const PathModel path = cross_wan_path(cfg);
  const double wire = 1000.0 * bottleneck_rate(path);
  const double rtt = static_cast<double>(rtt_min_ns(path, wan_delay));
  // All streams share one IpoibDevice pair; in connected mode that is
  // one RC QP whose message window caps the aggregate regardless of the
  // per-stream TCP windows.
  double window_product =
      static_cast<double>(streams) * static_cast<double>(window_bytes);
  if (cm_mtu != 0) {
    window_product =
        std::min(window_product, static_cast<double>(cm_rc_window) *
                                     static_cast<double>(cm_mtu));
  }
  const double window = 1000.0 * window_product / rtt;
  report.expect_le("tcp-bw-bound", context, measured_mbps,
                   std::min(wire, window), tol.bound_slack);
  const double bdp = static_cast<double>(bdp_bytes(cfg, wan_delay));
  const bool long_flow =
      bytes_per_stream == 0 ||
      static_cast<double>(bytes_per_stream) >= 8.0 * window_bytes;
  if (window_product <= 0.5 * bdp && long_flow) {
    // Slow start ramps to the window within a few RTTs; an 8-RTT ramp
    // allowance covers it for flows long enough to reach steady state.
    const std::uint64_t total =
        bytes_per_stream * static_cast<std::uint64_t>(streams);
    report.expect_ge("tcp-bw-bound", context + " window-limited",
                     measured_mbps,
                     finite_volume_mbps(window, total, 8.0 * rtt) *
                         tol.knee_low_frac);
  }
}

void check_mpi_bw(OracleReport& report, const std::string& context,
                  const net::FabricConfig& cfg, sim::Duration wan_delay,
                  double measured_mbps, const Tolerances& tol) {
  (void)wan_delay;  // the wire bound holds at every delay
  const double wire = 1000.0 * bottleneck_rate(cross_wan_path(cfg));
  report.expect_le("mpi-bw-bound", context, measured_mbps, wire,
                   tol.bound_slack);
}

double mpi_msg_rate_bound_mmps(const net::FabricConfig& cfg,
                               const ib::HcaConfig& hca, int pairs,
                               std::uint64_t msg_size) {
  const PathModel path = cross_wan_path(cfg);
  // Per-pair sender engine: one message per wqe+pkt overhead. Shared
  // wire: one message per wire time of its (single-packet) frame.
  const double engine =
      static_cast<double>(pairs) * 1000.0 /
      static_cast<double>(hca.wqe_overhead + hca.pkt_overhead);
  const double wire = 1000.0 * bottleneck_rate(path) /
                      static_cast<double>(msg_size + ib::kRcHeaderBytes);
  return std::min(engine, wire);
}

double bcast_floor_us(const net::FabricConfig& cfg, sim::Duration wan_delay) {
  // Broadcast data crosses to cluster B, the designated acker's reply
  // crosses back: at least one full propagation round trip.
  return static_cast<double>(rtt_min_ns(cross_wan_path(cfg), wan_delay)) /
         1000.0;
}

double nfs_bw_bound_mbps(const net::FabricConfig& cfg,
                         const ib::HcaConfig& server_hca,
                         std::uint64_t chunk_bytes, sim::Duration wan_delay,
                         bool lan) {
  if (lan) {
    // Server and client share one switch; no Longbow on the path and
    // negligible RTT, so only the LAN rate binds.
    return 1000.0 * cfg.lan_rate;
  }
  const PathModel path = cross_wan_path(cfg);
  const double wire = 1000.0 * bottleneck_rate(path);
  if (chunk_bytes == 0) return wire;  // IPoIB transport: wire bound only
  const double rtt = static_cast<double>(rtt_min_ns(path, wan_delay));
  const double window = 1000.0 *
                        static_cast<double>(server_hca.rc_max_inflight_msgs) *
                        static_cast<double>(chunk_bytes) / rtt;
  return std::min(wire, window);
}

// ---- Conservation ---------------------------------------------------

void check_conservation(OracleReport& report, const std::string& context,
                        const sim::MetricsSnapshot& snap,
                        const ConservationOptions& opt) {
  // Group counter rows by "<instance>/<layer>" scope. std::map keeps
  // the iteration (and thus the report) deterministic.
  std::map<std::string, std::map<std::string, std::uint64_t>> scopes;
  for (const auto& row : snap.counters) {
    const std::size_t slash = row.path.rfind('/');
    if (slash == std::string::npos) continue;
    scopes[row.path.substr(0, slash)][row.path.substr(slash + 1)] = row.value;
  }
  auto value = [](const std::map<std::string, std::uint64_t>& m,
                  const char* key) -> std::uint64_t {
    const auto it = m.find(key);
    return it == m.end() ? 0 : it->second;
  };
  // Cross-scope SDR totals: a sender's chunks land in its peer's
  // receiver counters, so wire- and message-level identities only close
  // over the sum of every /sdr scope in the snapshot.
  std::uint64_t sdr_scopes = 0;
  std::uint64_t sdr_tx_chunks = 0, sdr_rx_chunks = 0;
  std::uint64_t sdr_msgs_completed = 0, sdr_msgs_delivered = 0;
  for (const auto& [scope, m] : scopes) {
    const std::string ctx = context + " " + scope;
    if (ends_with(scope, "/net.link")) {
      // Every wire byte a link serialized was delivered or dropped in
      // flight; buffer/brownout drops happen before serialization and
      // are outside the equation (net/link.hpp Stats).
      const std::uint64_t bytes_sent = value(m, "bytes_sent");
      const std::uint64_t bytes_out =
          value(m, "bytes_delivered") + value(m, "bytes_dropped");
      const std::uint64_t pkts_sent = value(m, "pkts_sent");
      const std::uint64_t pkts_out =
          value(m, "pkts_delivered") + value(m, "drops_loss") +
          value(m, "drops_fault") + value(m, "drops_link_down");
      if (opt.exact_links) {
        report.expect_eq_u64("link-conservation", ctx + " bytes", bytes_out,
                             bytes_sent);
        report.expect_eq_u64("link-conservation", ctx + " packets", pkts_out,
                             pkts_sent);
      } else {
        report.expect_true("link-conservation", ctx,
                           bytes_out <= bytes_sent && pkts_out <= pkts_sent,
                           "delivered+dropped <= sent (bytes " +
                               std::to_string(bytes_out) + "/" +
                               std::to_string(bytes_sent) + ")");
      }
    } else if (ends_with(scope, "/ib.rc")) {
      const std::uint64_t sent = value(m, "msgs_sent");
      const std::uint64_t completed = value(m, "send_completions");
      report.expect_true("rc-wqe-conservation", ctx, completed <= sent,
                         "send_completions=" + std::to_string(completed) +
                             " msgs_sent=" + std::to_string(sent));
      if (opt.exact_rc_wqes) {
        report.expect_eq_u64("rc-wqe-conservation", ctx + " exact", completed,
                             sent);
      }
    } else if (ends_with(scope, "/sdr")) {
      ++sdr_scopes;
      // Sender side: every message drained to exactly one terminal
      // state (the DONE/probe exchange guarantees liveness).
      report.expect_eq_u64(
          "sdr-conservation", ctx + " msgs",
          value(m, "msgs_completed") + value(m, "msgs_failed"),
          value(m, "msgs_sent"));
      // Receiver side: repairs consume parity, deliveries are backed by
      // received or repaired chunks, delivered bytes were decoded.
      report.expect_true(
          "sdr-conservation", ctx + " repairs",
          value(m, "chunks_repaired") <= value(m, "parity_chunks_received"),
          "chunks_repaired=" + std::to_string(value(m, "chunks_repaired")) +
              " parity_chunks_received=" +
              std::to_string(value(m, "parity_chunks_received")));
      const std::uint64_t delivered = value(m, "data_chunks_delivered");
      const std::uint64_t backed =
          value(m, "data_chunks_received") + value(m, "chunks_repaired");
      if (opt.exact_sdr) {
        report.expect_eq_u64("sdr-conservation", ctx + " chunks", delivered,
                             backed);
        report.expect_eq_u64("sdr-conservation", ctx + " bytes",
                             value(m, "msg_bytes_delivered"),
                             value(m, "decoded_bytes"));
      } else {
        report.expect_true("sdr-conservation", ctx + " chunks",
                           delivered <= backed,
                           "data_chunks_delivered=" + std::to_string(delivered) +
                               " received+repaired=" + std::to_string(backed));
        report.expect_true(
            "sdr-conservation", ctx + " bytes",
            value(m, "msg_bytes_delivered") <= value(m, "decoded_bytes"),
            "msg_bytes_delivered=" +
                std::to_string(value(m, "msg_bytes_delivered")) +
                " decoded_bytes=" + std::to_string(value(m, "decoded_bytes")));
      }
      sdr_tx_chunks += value(m, "data_chunks_sent") +
                       value(m, "parity_chunks_sent") +
                       value(m, "retrans_chunks_sent");
      sdr_rx_chunks += value(m, "data_chunks_received") +
                       value(m, "parity_chunks_received") +
                       value(m, "dup_chunks");
      sdr_msgs_completed += value(m, "msgs_completed");
      sdr_msgs_delivered += value(m, "msgs_delivered");
    } else if (ends_with(scope, "/kv.client")) {
      // Every quorum op terminates (finite timeout + bounded retries +
      // early abort), so the outcome split is exact at drain.
      report.expect_eq_u64(
          "kv-conservation", ctx + " ops",
          value(m, "ops_completed") + value(m, "ops_timed_out") +
              value(m, "ops_aborted"),
          value(m, "ops_issued"));
      // Replica calls resolve to ack/fail/late or are still suspended in
      // a transport at drain (an RC client waiting forever on a severed
      // WAN), hence one-sided.
      const std::uint64_t resolved = value(m, "replica_acks") +
                                     value(m, "replica_fails") +
                                     value(m, "replica_late");
      const std::uint64_t calls = value(m, "replica_calls");
      report.expect_true("kv-conservation", ctx + " replica-calls",
                         resolved <= calls,
                         "acks+fails+late=" + std::to_string(resolved) +
                             " replica_calls=" + std::to_string(calls));
    } else if (ends_with(scope, "/kv.replica")) {
      // The replica handler always replies, and classifies every
      // request as exactly one of read / applied write / stale write.
      const std::uint64_t requests = value(m, "requests");
      report.expect_eq_u64("kv-conservation", ctx + " replies",
                           value(m, "replies"), requests);
      report.expect_eq_u64("kv-conservation", ctx + " ops",
                           value(m, "reads_served") +
                               value(m, "writes_applied") +
                               value(m, "writes_stale"),
                           requests);
    }
  }
  if (sdr_scopes > 0) {
    // Chunks cross the wire at most once each; with exact_sdr (no loss)
    // every one of them arrived. A completed message was delivered by
    // some receiver (delivered-but-DONE-lost leaves delivered > completed).
    const std::string ctx = context + " sdr-global";
    if (opt.exact_sdr) {
      report.expect_eq_u64("sdr-conservation", ctx + " chunks", sdr_rx_chunks,
                           sdr_tx_chunks);
    } else {
      report.expect_true("sdr-conservation", ctx + " chunks",
                         sdr_rx_chunks <= sdr_tx_chunks,
                         "rx=" + std::to_string(sdr_rx_chunks) +
                             " tx=" + std::to_string(sdr_tx_chunks));
    }
    report.expect_true("sdr-conservation", ctx + " msgs",
                       sdr_msgs_completed <= sdr_msgs_delivered,
                       "completed=" + std::to_string(sdr_msgs_completed) +
                           " delivered=" + std::to_string(sdr_msgs_delivered));
  }
}

}  // namespace ibwan::check
