// Metamorphic relations: properties that tie *pairs* of runs together
// when no closed-form prediction exists for either run alone
// (DESIGN.md §11). Each relation derives a second scenario from the
// base one (more delay, more streams, a bigger window, an inert fault
// plan, a disabled metrics registry, the very same seed) and checks
// the pair of measurements against the relation's contract — from
// directional monotonicity down to bit-exact equality for the noop and
// replay relations.
#pragma once

#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "check/scenario_gen.hpp"

namespace ibwan::check {

/// One metamorphic relation. `applies` gates on the scenario (stack,
/// faults, and an index stride for the expensive bit-exact relations);
/// `check` runs the derived scenario(s) and records verdicts.
struct Relation {
  const char* name;
  const char* description;
  bool (*applies)(const Scenario& s);
  void (*check)(const Scenario& s, const ScenarioResult& base,
                OracleReport& report, const Tolerances& tol);
};

/// The fixed relation catalog (ISSUE 5 asks for >= 5; there are 8).
const std::vector<Relation>& relation_catalog();

/// Runs the scenario once, applies every value/conservation oracle and
/// every applicable metamorphic relation, and returns the base result.
/// This is the single entry point the fuzz test and --scenario replay
/// use per case.
ScenarioResult check_scenario(const Scenario& s, OracleReport& report,
                              const Tolerances& tol = {});

}  // namespace ibwan::check
