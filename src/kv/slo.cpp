#include "kv/slo.hpp"

#include <cstdio>

namespace ibwan::kv {

SloReport make_slo_report(const LoadStats& stats) {
  SloReport r;
  r.issued = stats.issued;
  r.completed = stats.completed;
  r.timed_out = stats.timed_out;
  r.aborted = stats.aborted;
  const auto q_us = [&stats](double p) {
    return static_cast<double>(stats.latency_ns.quantile(p)) / 1000.0;
  };
  r.p50_us = q_us(0.50);
  r.p99_us = q_us(0.99);
  r.p999_us = q_us(0.999);
  r.mean_us = stats.latency_us.mean();
  r.min_us = stats.latency_us.min();
  r.max_us = stats.latency_us.max();
  if (stats.last_done > stats.first_issue) {
    const double ms = static_cast<double>(stats.last_done -
                                          stats.first_issue) /
                      1.0e6;
    r.duration_ms = ms;
    r.goodput_kops = static_cast<double>(r.completed) / ms;
  }
  if (r.issued > 0) {
    r.timeout_rate =
        static_cast<double>(r.timed_out) / static_cast<double>(r.issued);
    r.abort_rate =
        static_cast<double>(r.aborted) / static_cast<double>(r.issued);
  }
  return r;
}

std::string to_json(const SloReport& r) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"issued\":%llu,\"completed\":%llu,\"timed_out\":%llu,"
      "\"aborted\":%llu,\"p50_us\":%.3f,\"p99_us\":%.3f,\"p999_us\":%.3f,"
      "\"mean_us\":%.3f,\"min_us\":%.3f,\"max_us\":%.3f,"
      "\"goodput_kops\":%.4f,\"timeout_rate\":%.6f,\"abort_rate\":%.6f,"
      "\"duration_ms\":%.3f}",
      static_cast<unsigned long long>(r.issued),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.timed_out),
      static_cast<unsigned long long>(r.aborted), r.p50_us, r.p99_us,
      r.p999_us, r.mean_us, r.min_us, r.max_us, r.goodput_kops,
      r.timeout_rate, r.abort_rate, r.duration_ms);
  return buf;
}

}  // namespace ibwan::kv
