// SLO accounting for a finished serving run: tail-latency quantiles
// from the log2 latency histogram, goodput, and failure-mode rates.
// The JSON form is written per run by bench/ext_kv_serving so the SLO
// cliff (p99 vs offered load) can be read without re-running anything.
#pragma once

#include <cstdint>
#include <string>

#include "kv/loadgen.hpp"

namespace ibwan::kv {

struct SloReport {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t aborted = 0;
  /// Quantiles are lower log2-bin edges (true value within 2x), in
  /// microseconds; mean/min/max are exact.
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double mean_us = 0;
  double min_us = 0;
  double max_us = 0;
  /// Completed ops per millisecond of run (== kops/s of goodput).
  double goodput_kops = 0;
  double timeout_rate = 0;
  double abort_rate = 0;
  double duration_ms = 0;
};

/// Folds a drained run's LoadStats into the report.
SloReport make_slo_report(const LoadStats& stats);

/// One-line JSON object (stable key order, fixed float formatting) —
/// deterministic for the byte-identity checks.
std::string to_json(const SloReport& report);

}  // namespace ibwan::kv
