// RDMA key-value service — the "data-centers" context the paper's
// conclusions name for future IB-WAN work. A single-server KV store
// over the RPC/RDMA transport: GET replies place the value with chunked
// RDMA writes, PUT pushes the value via server-initiated RDMA reads —
// so the WAN behaviour tracks the NFS/RDMA results (Figure 13) at
// data-center object sizes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "rpc/rpc.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ibwan::kv {

enum class Op : std::uint32_t { kGet = 1, kPut = 2 };

struct KvArgs {
  Op op = Op::kGet;
  std::uint64_t key = 0;
  std::uint64_t value_bytes = 0;  // for puts
};

struct KvConfig {
  /// Server CPU per operation (hash lookup, request handling).
  sim::Duration per_op_cpu = 2 * sim::kMicrosecond;
};

class KvServer {
 public:
  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t misses = 0;
  };

  KvServer(sim::Simulator& sim, KvConfig config = {});

  void preload(std::uint64_t key, std::uint64_t value_bytes) {
    store_[key] = value_bytes;
  }
  std::uint64_t value_size(std::uint64_t key) const {
    auto it = store_.find(key);
    return it == store_.end() ? 0 : it->second;
  }

  rpc::Handler handler();
  const Stats& stats() const { return stats_; }

 private:
  sim::Coro<rpc::ReplyInfo> dispatch(const rpc::CallArgs& call);

  sim::Simulator& sim_;
  KvConfig config_;
  std::unordered_map<std::uint64_t, std::uint64_t> store_;
  sim::Time cpu_busy_ = 0;
  Stats stats_;
};

class KvClient {
 public:
  explicit KvClient(rpc::RpcClient& rpc) : rpc_(rpc) {}

  /// Returns the value size; 0 on miss.
  sim::Coro<std::uint64_t> get(std::uint64_t key);
  sim::Coro<void> put(std::uint64_t key, std::uint64_t value_bytes);

 private:
  rpc::RpcClient& rpc_;
};

/// Closed-loop mixed workload driver.
struct KvWorkloadConfig {
  int clients = 4;
  int ops_per_client = 200;
  double get_fraction = 0.9;
  std::uint64_t value_bytes = 4096;
  std::uint64_t key_space = 1024;
  std::uint64_t seed = 7;
};

struct KvResult {
  double kops_per_sec = 0;
  double avg_latency_us = 0;
  std::uint64_t ops = 0;
};

/// Runs the workload to completion (drives the simulator). `sim` is the
/// client's own site; passing the owning SiteEngine drains every site
/// and reads the merged end time, which is required when the testbed
/// runs site-parallel (and equivalent when sequential).
KvResult run_kv_workload(sim::Simulator& sim, KvClient& client,
                         const KvWorkloadConfig& cfg,
                         sim::SiteEngine* engine = nullptr);

}  // namespace ibwan::kv
