#include "kv/loadgen.hpp"

#include <algorithm>
#include <cmath>

#include "sim/task.hpp"

namespace ibwan::kv {

LoadGen::LoadGen(sim::Simulator& sim, ReplicatedKv& kv, LoadGenConfig config)
    : sim_(sim),
      kv_(kv),
      config_(config),
      arrivals_(sim.rng_stream("kv.load.arrivals")),
      keys_(sim.rng_stream("kv.load.keys")) {
  if (config_.zipf_s > 0.0 && config_.key_space > 1) {
    zipf_cdf_.resize(config_.key_space);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < config_.key_space; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_s);
      zipf_cdf_[i] = sum;
    }
    for (double& c : zipf_cdf_) c /= sum;
  }
}

std::uint64_t LoadGen::draw_key() {
  if (zipf_cdf_.empty()) return keys_.uniform(config_.key_space);
  const double u = keys_.uniform_double();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::uint64_t>(it - zipf_cdf_.begin());
}

void LoadGen::start() {
  if (config_.mode == ArrivalMode::kOpen) {
    open_arrivals();
    return;
  }
  const int workers = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(std::max(config_.concurrency, 1)),
      config_.total_ops);
  for (int i = 0; i < workers; ++i) worker();
}

sim::Task LoadGen::open_arrivals() {
  // Poisson process at the offered rate: exponential inter-arrival gaps,
  // op issued regardless of how many are already inflight — overload
  // shows up as queueing (the SLO cliff), not as a slowed generator.
  const double mean_gap_ns = 1.0e6 / std::max(config_.offered_kops, 1e-9);
  while (launched_ < config_.total_ops) {
    const auto gap =
        static_cast<sim::Duration>(arrivals_.exponential(mean_gap_ns));
    co_await sim::SleepAwaiter(sim_, gap);
    ++launched_;
    // Locals pin the draw order (argument evaluation order would not).
    const std::uint64_t key = draw_key();
    const bool is_get = keys_.uniform_double() < config_.get_fraction;
    spawn_op(key, is_get);
  }
}

sim::Task LoadGen::worker() {
  while (launched_ < config_.total_ops) {
    ++launched_;
    // Draw key then op type, same order as the open-loop path, so the
    // workload sequence depends only on the "kv.load.keys" stream.
    const std::uint64_t key = draw_key();
    const bool is_get = keys_.uniform_double() < config_.get_fraction;
    co_await run_op(key, is_get);
    if (config_.think_time > 0) {
      co_await sim::SleepAwaiter(sim_, config_.think_time);
    }
  }
}

sim::Task LoadGen::spawn_op(std::uint64_t key, bool is_get) {
  co_await run_op(key, is_get);
}

sim::Coro<void> LoadGen::run_op(std::uint64_t key, bool is_get) {
  const sim::Time t0 = sim_.now();
  if (stats_.issued == 0) stats_.first_issue = t0;
  ++stats_.issued;
  const OpResult r = is_get ? co_await kv_.get(key)
                            : co_await kv_.put(key, config_.value_bytes);
  switch (r.status) {
    case OpStatus::kCompleted:
      ++stats_.completed;
      break;
    case OpStatus::kTimedOut:
      ++stats_.timed_out;
      break;
    case OpStatus::kAborted:
      ++stats_.aborted;
      break;
  }
  const sim::Time elapsed = sim_.now() - t0;
  stats_.latency_ns.add(static_cast<std::uint64_t>(elapsed));
  stats_.latency_us.add(static_cast<double>(elapsed) / 1000.0);
  stats_.last_done = std::max(stats_.last_done, sim_.now());
  ++resolved_;
}

}  // namespace ibwan::kv
