// Deterministic load generators for the replicated KV serving scenarios
// (DESIGN.md §16): open-loop Poisson arrivals — the load model where SLO
// cliffs appear, because arrivals do not slow down when the system does
// — and closed-loop fixed-concurrency workers with think time, the
// classic benchmark shape. Key popularity is Zipfian (s > 0) or uniform
// (s == 0). All randomness comes from named RNG streams derived from
// the run seed, so a given (seed, config) replays byte-identically,
// sequential or site-parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/replicated.hpp"
#include "sim/coro.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace ibwan::kv {

enum class ArrivalMode : std::uint8_t {
  kClosed = 0,  // fixed concurrency, optional think time between ops
  kOpen = 1,    // Poisson arrivals at the offered rate, unbounded inflight
};

struct LoadGenConfig {
  ArrivalMode mode = ArrivalMode::kClosed;
  /// Closed loop: number of concurrent workers and the think time each
  /// waits between an op resolving and the next being issued.
  int concurrency = 8;
  sim::Duration think_time = 0;
  /// Open loop: offered load in thousands of ops per simulated second.
  double offered_kops = 1.0;
  /// Ops to issue in total (both modes terminate).
  std::uint64_t total_ops = 200;
  double get_fraction = 0.9;
  std::uint64_t key_space = 256;
  /// Zipf exponent for key popularity; 0 selects the uniform draw.
  double zipf_s = 0.99;
  std::uint64_t value_bytes = 65536;
};

/// Outcome of a finished run (valid after the simulator drains).
struct LoadStats {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t aborted = 0;
  /// Latency of every resolved op (any status), nanoseconds.
  sim::LogHistogram latency_ns;
  sim::OnlineStats latency_us;  // exact min/mean/max
  sim::Time first_issue = 0;
  sim::Time last_done = 0;
};

/// Drives one ReplicatedKv coordinator. start() spawns the generator
/// tasks and returns; run the simulator (or the owning SiteEngine) to
/// completion, then read stats().
class LoadGen {
 public:
  LoadGen(sim::Simulator& sim, ReplicatedKv& kv, LoadGenConfig config);

  void start();
  bool done() const { return resolved_ == config_.total_ops; }
  const LoadStats& stats() const { return stats_; }
  const LoadGenConfig& config() const { return config_; }

 private:
  sim::Task open_arrivals();
  sim::Task worker();
  sim::Task spawn_op(std::uint64_t key, bool is_get);
  sim::Coro<void> run_op(std::uint64_t key, bool is_get);
  std::uint64_t draw_key();

  sim::Simulator& sim_;
  ReplicatedKv& kv_;
  LoadGenConfig config_;
  sim::Rng arrivals_;  // stream "kv.load.arrivals": inter-arrival gaps
  sim::Rng keys_;      // stream "kv.load.keys": key + op-mix draws
  /// Zipf CDF over key ranks (empty when uniform); draw_key binary
  /// searches a uniform double against it.
  std::vector<double> zipf_cdf_;
  std::uint64_t launched_ = 0;
  std::uint64_t resolved_ = 0;
  LoadStats stats_;
};

}  // namespace ibwan::kv
