#include "kv/replicated.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/task.hpp"

namespace ibwan::kv {

std::string validate(const QuorumConfig& config, int replicas) {
  if (replicas < 1) {
    return "need at least one replica, got " + std::to_string(replicas);
  }
  if (config.read_quorum < 1 || config.read_quorum > replicas) {
    return "read_quorum must be in [1, " + std::to_string(replicas) +
           "], got " + std::to_string(config.read_quorum);
  }
  if (config.write_quorum < 1 || config.write_quorum > replicas) {
    return "write_quorum must be in [1, " + std::to_string(replicas) +
           "], got " + std::to_string(config.write_quorum);
  }
  if (config.read_quorum + config.write_quorum <= replicas) {
    return "read_quorum + write_quorum must exceed the replica count (" +
           std::to_string(replicas) +
           ") for quorum intersection, got " +
           std::to_string(config.read_quorum + config.write_quorum);
  }
  if (config.op_timeout <= 0) {
    return "op_timeout must be positive (every op must terminate), got " +
           std::to_string(config.op_timeout);
  }
  if (config.max_retries < 0) {
    return "max_retries must be >= 0, got " +
           std::to_string(config.max_retries);
  }
  if (config.backoff < 1.0) {
    return "backoff must be >= 1.0, got " + std::to_string(config.backoff);
  }
  return "";
}

// ---------------------------------------------------------------------------
// Replica server
// ---------------------------------------------------------------------------

ReplicaServer::ReplicaServer(sim::Simulator& sim, net::NodeId lid,
                             ReplicaConfig config)
    : sim_(sim), config_(config) {
  auto& m = sim_.metrics();
  const std::string scope = "node" + std::to_string(lid) + "/kv.replica";
  using sim::MetricUnit;
  obs_.requests = &m.counter(scope, "requests", MetricUnit::kMessages);
  obs_.replies = &m.counter(scope, "replies", MetricUnit::kMessages);
  obs_.reads_served = &m.counter(scope, "reads_served", MetricUnit::kCount);
  obs_.read_misses = &m.counter(scope, "read_misses", MetricUnit::kCount);
  obs_.writes_applied =
      &m.counter(scope, "writes_applied", MetricUnit::kCount);
  obs_.writes_stale = &m.counter(scope, "writes_stale", MetricUnit::kCount);
}

rpc::Handler ReplicaServer::handler() {
  return [this](const rpc::CallArgs& call) { return dispatch(call); };
}

sim::Coro<rpc::ReplyInfo> ReplicaServer::dispatch(
    const rpc::CallArgs& call) {
  const auto& args = call.args_as<ReplicaArgs>();
  ++stats_.requests;
  obs_.requests->add();
  cpu_busy_ = std::max(sim_.now(), cpu_busy_) + config_.per_op_cpu;
  co_await sim::SleepAwaiter(sim_, cpu_busy_ - sim_.now());
  auto rep = std::make_shared<ReplicaReply>();
  rpc::ReplyInfo out{.reply_bytes = kReplicaReplyBytes};
  if (args.op == ReplicaOp::kRead) {
    ++stats_.reads_served;
    obs_.reads_served->add();
    auto it = store_.find(args.key);
    if (it == store_.end()) {
      ++stats_.read_misses;
      obs_.read_misses->add();
    } else {
      rep->version = it->second.version;
      rep->value_bytes = it->second.value_bytes;
    }
    out.data_to_client = rep->value_bytes;
  } else {
    // Monotone last-writer-wins apply: replayed or reordered writes
    // (RPC-level retries, read repair racing a newer write) can never
    // roll a key's version back.
    Slot& slot = store_[args.key];
    if (args.version > slot.version) {
      slot = Slot{args.version, args.value_bytes};
      rep->applied = true;
      ++stats_.writes_applied;
      obs_.writes_applied->add();
    } else {
      ++stats_.writes_stale;
      obs_.writes_stale->add();
    }
    rep->version = slot.version;
    rep->value_bytes = slot.value_bytes;
  }
  ++stats_.replies;
  obs_.replies->add();
  out.body = std::move(rep);
  co_return out;
}

// ---------------------------------------------------------------------------
// Quorum coordinator
// ---------------------------------------------------------------------------

/// Per-attempt shared state: detached replica-call tasks write into it,
/// the coordinator waits on the trigger racing a timeout timer. Held by
/// shared_ptr because a suspended replica call can outlive the attempt
/// (and the op) by an arbitrary margin — late replies must land in
/// still-valid memory to be counted as late.
struct ReplicatedKv::Attempt {
  Attempt(sim::Simulator& s, int n) : trigger(s), seen(n), replied(n, false) {}
  sim::Trigger trigger;
  int acks = 0;
  int fails = 0;
  Version best{};
  std::uint64_t best_value = 0;
  std::vector<Version> seen;
  std::vector<bool> replied;
  bool quorum = false;
  bool aborted = false;
  /// A decision fired the trigger (quorum, abort, or timeout); replies
  /// arriving at the same instant still fold into the tallies but can
  /// no longer change the outcome.
  bool settled = false;
  /// The coordinator moved on (retry or op resolution): replies from
  /// here on count as late.
  bool abandoned = false;
};

ReplicatedKv::ReplicatedKv(sim::Simulator& sim, net::NodeId lid,
                           std::vector<rpc::RpcClient*> replicas,
                           QuorumConfig config)
    : sim_(sim), config_(config), replicas_(std::move(replicas)) {
  if (const std::string err =
          validate(config_, static_cast<int>(replicas_.size()));
      !err.empty()) {
    std::fprintf(stderr, "ReplicatedKv (node %u): invalid QuorumConfig: %s\n",
                 lid, err.c_str());
    std::abort();
  }
  auto& m = sim_.metrics();
  const std::string scope = "node" + std::to_string(lid) + "/kv.client";
  using sim::MetricUnit;
  obs_.ops_issued = &m.counter(scope, "ops_issued", MetricUnit::kMessages);
  obs_.ops_completed =
      &m.counter(scope, "ops_completed", MetricUnit::kMessages);
  obs_.ops_timed_out =
      &m.counter(scope, "ops_timed_out", MetricUnit::kMessages);
  obs_.ops_aborted = &m.counter(scope, "ops_aborted", MetricUnit::kMessages);
  obs_.replica_calls =
      &m.counter(scope, "replica_calls", MetricUnit::kMessages);
  obs_.replica_acks =
      &m.counter(scope, "replica_acks", MetricUnit::kMessages);
  obs_.replica_fails =
      &m.counter(scope, "replica_fails", MetricUnit::kMessages);
  obs_.replica_late =
      &m.counter(scope, "replica_late", MetricUnit::kMessages);
  obs_.retries = &m.counter(scope, "retries", MetricUnit::kCount);
  obs_.read_repairs = &m.counter(scope, "read_repairs", MetricUnit::kCount);
  obs_.inflight_ops = &m.gauge(scope, "inflight_ops", MetricUnit::kCount);
  obs_.op_ns = &m.histogram(scope, "op_ns", MetricUnit::kNanoseconds);
}

sim::Coro<OpResult> ReplicatedKv::get(std::uint64_t key) {
  co_return co_await quorum_op(
      ReplicaArgs{.op = ReplicaOp::kRead, .key = key}, config_.read_quorum);
}

sim::Coro<OpResult> ReplicatedKv::put(std::uint64_t key,
                                      std::uint64_t value_bytes) {
  // Versions must be distinct per coordinator even for back-to-back
  // same-instant issues (open-loop bursts), so the stamp is bumped past
  // the previous one when the clock has not advanced.
  last_stamp_ = std::max(sim_.now(), last_stamp_ + 1);
  co_return co_await quorum_op(
      ReplicaArgs{.op = ReplicaOp::kWrite,
                  .key = key,
                  .version = Version{last_stamp_, config_.writer_id},
                  .value_bytes = value_bytes},
      config_.write_quorum);
}

sim::Coro<OpResult> ReplicatedKv::quorum_op(ReplicaArgs args, int need) {
  const int n = replicas();
  ++stats_.ops_issued;
  obs_.ops_issued->add();
  ++inflight_;
  obs_.inflight_ops->set(inflight_);
  const sim::Time t0 = sim_.now();
  OpResult res;
  res.status = OpStatus::kTimedOut;
  sim::Duration timeout = config_.op_timeout;
  std::shared_ptr<Attempt> at;
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    res.attempts = attempt + 1;
    at = std::make_shared<Attempt>(sim_, n);
    for (int i = 0; i < n; ++i) replica_call(at, i, args, need);
    const sim::EventId timer = sim_.schedule(timeout, [at] {
      if (at->settled) return;
      at->settled = true;
      at->trigger.fire();
    });
    if (!at->settled) co_await at->trigger.wait();
    if (at->quorum || at->aborted) sim_.cancel(timer);
    at->abandoned = true;  // replies from here on are late
    if (at->quorum) {
      res.status = OpStatus::kCompleted;
      if (args.op == ReplicaOp::kWrite) {
        res.version = args.version;
        res.value_bytes = args.value_bytes;
      } else {
        res.version = at->best;
        res.value_bytes = at->best_value;
      }
      break;
    }
    if (at->aborted) {
      res.status = OpStatus::kAborted;
      break;
    }
    if (attempt < config_.max_retries) {
      ++stats_.retries;
      obs_.retries->add();
      timeout = static_cast<sim::Duration>(static_cast<double>(timeout) *
                                           config_.backoff);
    }
  }
  switch (res.status) {
    case OpStatus::kCompleted:
      ++stats_.ops_completed;
      obs_.ops_completed->add();
      break;
    case OpStatus::kTimedOut:
      ++stats_.ops_timed_out;
      obs_.ops_timed_out->add();
      break;
    case OpStatus::kAborted:
      ++stats_.ops_aborted;
      obs_.ops_aborted->add();
      break;
  }
  obs_.op_ns->observe(sim_.now() - t0);
  --inflight_;
  obs_.inflight_ops->set(inflight_);
  // Read repair rides behind the completed read: push the newest
  // version to every responder that returned something older. Detached
  // and asynchronous — the op's latency does not pay for it.
  if (res.status == OpStatus::kCompleted && args.op == ReplicaOp::kRead &&
      config_.read_repair && at != nullptr) {
    for (int i = 0; i < n; ++i) {
      if (!at->replied[i] || !(at->seen[i] < at->best)) continue;
      ++stats_.read_repairs;
      obs_.read_repairs->add();
      repair_write(i, ReplicaArgs{.op = ReplicaOp::kWrite,
                                  .key = args.key,
                                  .version = at->best,
                                  .value_bytes = at->best_value});
    }
  }
  co_return res;
}

sim::Task ReplicatedKv::replica_call(std::shared_ptr<Attempt> at, int idx,
                                     ReplicaArgs args, int need) {
  ++stats_.replica_calls;
  obs_.replica_calls->add();
  auto body = std::make_shared<ReplicaArgs>(args);
  rpc::CallArgs call{
      .proc = static_cast<std::uint32_t>(args.op),
      .arg_bytes = kReplicaArgBytes,
      .data_to_server =
          args.op == ReplicaOp::kWrite ? args.value_bytes : 0,
      .body = std::move(body)};
  rpc::ReplyInfo r =
      co_await replicas_[static_cast<std::size_t>(idx)]->call(
          std::move(call));
  if (at->abandoned) {
    ++stats_.replica_late;
    obs_.replica_late->add();
    co_return;
  }
  if (!r.ok) {
    ++at->fails;
    ++stats_.replica_fails;
    obs_.replica_fails->add();
    // Early abort: with this many hard failures even every remaining
    // reply cannot assemble the quorum, so waiting out the timer (and
    // the retry ladder — the transport already exhausted its own
    // give-up budget) would change nothing.
    if (!at->settled && replicas() - at->fails < need) {
      at->settled = true;
      at->aborted = true;
      at->trigger.fire();
    }
    co_return;
  }
  ++at->acks;
  ++stats_.replica_acks;
  obs_.replica_acks->add();
  const auto& rep = *static_cast<const ReplicaReply*>(r.body.get());
  at->replied[static_cast<std::size_t>(idx)] = true;
  at->seen[static_cast<std::size_t>(idx)] = rep.version;
  if (at->acks == 1 || rep.version > at->best) {
    at->best = rep.version;
    at->best_value = rep.value_bytes;
  }
  if (!at->settled && at->acks >= need) {
    at->settled = true;
    at->quorum = true;
    at->trigger.fire();
  }
}

sim::Task ReplicatedKv::repair_write(int idx, ReplicaArgs args) {
  auto body = std::make_shared<ReplicaArgs>(args);
  rpc::CallArgs call{.proc = static_cast<std::uint32_t>(ReplicaOp::kWrite),
                     .arg_bytes = kReplicaArgBytes,
                     .data_to_server = args.value_bytes,
                     .body = std::move(body)};
  co_await replicas_[static_cast<std::size_t>(idx)]->call(std::move(call));
}

}  // namespace ibwan::kv
