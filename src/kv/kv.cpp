#include "kv/kv.hpp"

#include <algorithm>
#include <memory>

#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace ibwan::kv {

KvServer::KvServer(sim::Simulator& sim, KvConfig config)
    : sim_(sim), config_(config) {}

rpc::Handler KvServer::handler() {
  return [this](const rpc::CallArgs& call) { return dispatch(call); };
}

sim::Coro<rpc::ReplyInfo> KvServer::dispatch(const rpc::CallArgs& call) {
  const auto& args = call.args_as<KvArgs>();
  cpu_busy_ = std::max(sim_.now(), cpu_busy_) + config_.per_op_cpu;
  co_await sim::SleepAwaiter(sim_, cpu_busy_ - sim_.now());
  if (args.op == Op::kGet) {
    ++stats_.gets;
    const std::uint64_t size = value_size(args.key);
    if (size == 0) ++stats_.misses;
    co_return rpc::ReplyInfo{.reply_bytes = 64, .data_to_client = size};
  }
  ++stats_.puts;
  store_[args.key] = args.value_bytes;
  co_return rpc::ReplyInfo{.reply_bytes = 64};
}

sim::Coro<std::uint64_t> KvClient::get(std::uint64_t key) {
  auto args = std::make_shared<KvArgs>();
  args->op = Op::kGet;
  args->key = key;
  rpc::CallArgs call{.proc = std::uint32_t(Op::kGet),
                     .arg_bytes = 24,
                     .body = std::move(args)};
  rpc::ReplyInfo reply = co_await rpc_.call(std::move(call));
  co_return reply.data_to_client;
}

sim::Coro<void> KvClient::put(std::uint64_t key,
                              std::uint64_t value_bytes) {
  auto args = std::make_shared<KvArgs>();
  args->op = Op::kPut;
  args->key = key;
  args->value_bytes = value_bytes;
  rpc::CallArgs call{.proc = std::uint32_t(Op::kPut),
                     .arg_bytes = 24,
                     .data_to_server = value_bytes,
                     .body = std::move(args)};
  co_await rpc_.call(std::move(call));
}

namespace {
sim::Task kv_worker(sim::Simulator& sim, KvClient& client,
                    const KvWorkloadConfig& cfg, sim::Rng* rng,
                    sim::OnlineStats* latency, sim::WaitGroup* wg) {
  for (int i = 0; i < cfg.ops_per_client; ++i) {
    const std::uint64_t key = rng->uniform(cfg.key_space);
    const sim::Time t0 = sim.now();
    if (rng->uniform_double() < cfg.get_fraction) {
      co_await client.get(key);
    } else {
      co_await client.put(key, cfg.value_bytes);
    }
    latency->add(static_cast<double>(sim.now() - t0));
  }
  wg->done();
}
}  // namespace

KvResult run_kv_workload(sim::Simulator& sim, KvClient& client,
                         const KvWorkloadConfig& cfg,
                         sim::SiteEngine* engine) {
  sim::Rng rng(cfg.seed);
  sim::OnlineStats latency;
  sim::WaitGroup wg(sim);
  wg.add(cfg.clients);
  const sim::Time t0 = sim.now();
  for (int c = 0; c < cfg.clients; ++c) {
    kv_worker(sim, client, cfg, &rng, &latency, &wg);
  }
  if (engine != nullptr) {
    engine->run();
  } else {
    sim.run();
  }
  KvResult r;
  r.ops = latency.count();
  // Merged end time (max over site clocks) == the sequential final now.
  const sim::Time t_end = engine != nullptr ? engine->now() : sim.now();
  const double secs = sim::to_seconds(t_end - t0);
  r.kops_per_sec = secs > 0 ? static_cast<double>(r.ops) / secs / 1e3 : 0;
  r.avg_latency_us = latency.mean() / 1000.0;
  return r;
}

}  // namespace ibwan::kv
