// Replicated key-value serving over an N-site WAN (DESIGN.md §16,
// ROADMAP item 3): N replica servers on distinct topology sites, a
// client-side coordinator running quorum reads and writes over any
// rpc::RpcClient transport (RPC/RC, RPC/TCP, RPC/SDR).
//
// Consistency model: last-writer-wins versions totally ordered by
// (coordinator issue time, writer id), applied monotonically at every
// replica. With R + W > N a read quorum intersects every completed
// write quorum, so a read that completes after a completed write
// returns a version at least as new — the property pinned by
// tests/kv/quorum_property_test.cpp across seeds, site counts, and
// fuzzed fault plans.
//
// Failure model: each quorum attempt races replica replies against a
// per-attempt timeout; timeouts retry with multiplicative backoff up to
// a bounded budget (kTimedOut after that). Hard transport failures
// (ReplyInfo::ok == false: RC flush, TCP/SDR give-up) count toward an
// early abort — once quorum is provably unreachable in this attempt the
// op resolves kAborted instead of waiting out the timer. Every op
// therefore terminates, which is what makes the client-side op
// conservation identity (issued == completed + timed_out + aborted)
// exact at drain (src/check/oracles.cpp, kv-conservation).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rpc/rpc.hpp"
#include "sim/coro.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan::kv {

/// Totally ordered write version: coordinator issue time, ties broken
/// by writer id. Zero-initialized == "never written".
struct Version {
  sim::Time stamp = 0;
  std::uint32_t writer = 0;
  friend constexpr bool operator==(const Version&, const Version&) = default;
  friend constexpr auto operator<=>(const Version&, const Version&) = default;
};

enum class ReplicaOp : std::uint32_t { kRead = 1, kWrite = 2 };

/// Wire args of one replica-level operation (24 bytes of key/version
/// metadata plus the op code, modeled by kReplicaArgBytes).
struct ReplicaArgs {
  ReplicaOp op = ReplicaOp::kRead;
  std::uint64_t key = 0;
  Version version{};              // writes: the version to install
  std::uint64_t value_bytes = 0;  // writes: payload size
};

struct ReplicaReply {
  Version version{};              // stored version after the op
  std::uint64_t value_bytes = 0;  // reads: stored size (0 on miss)
  bool applied = false;           // writes: version advanced the store
};

inline constexpr std::uint64_t kReplicaArgBytes = 40;
inline constexpr std::uint64_t kReplicaReplyBytes = 64;

struct ReplicaConfig {
  /// Server CPU per operation (hash probe, version compare, logging).
  sim::Duration per_op_cpu = 2 * sim::kMicrosecond;
};

/// One replica server: a versioned store with monotone last-writer-wins
/// apply, dispatched behind any RPC transport. Requests serialize on a
/// single server CPU like the single-server KvServer.
class ReplicaServer {
 public:
  /// Accounting; requests == replies is oracle-checked per scope
  /// (kv-conservation) — the handler always replies, so an imbalance
  /// means a dispatch hung. The `lint:conserved` counters may only be
  /// written by replicated.cpp (ibwan-lint INV001).
  struct Stats {
    std::uint64_t requests = 0;       // lint:conserved
    std::uint64_t replies = 0;        // lint:conserved
    std::uint64_t reads_served = 0;   // lint:conserved
    std::uint64_t read_misses = 0;    // lint:conserved
    std::uint64_t writes_applied = 0;  // lint:conserved
    std::uint64_t writes_stale = 0;    // lint:conserved
  };

  ReplicaServer(sim::Simulator& sim, net::NodeId lid,
                ReplicaConfig config = {});

  void preload(std::uint64_t key, std::uint64_t value_bytes,
               Version version = {1, 0}) {
    store_[key] = Slot{version, value_bytes};
  }
  /// Stored version of a key ({0,0} when never written).
  Version version_of(std::uint64_t key) const {
    auto it = store_.find(key);
    return it == store_.end() ? Version{} : it->second.version;
  }
  std::uint64_t value_size(std::uint64_t key) const {
    auto it = store_.find(key);
    return it == store_.end() ? 0 : it->second.value_bytes;
  }

  rpc::Handler handler();
  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    Version version{};
    std::uint64_t value_bytes = 0;
  };
  sim::Coro<rpc::ReplyInfo> dispatch(const rpc::CallArgs& call);

  sim::Simulator& sim_;
  ReplicaConfig config_;
  // Ordered map: deterministic iteration if anything ever walks it.
  std::map<std::uint64_t, Slot> store_;
  sim::Time cpu_busy_ = 0;
  Stats stats_;

  // Registered metrics (docs/METRICS.md §kv); scope "node<lid>/kv.replica".
  struct Obs {
    sim::Counter* requests;
    sim::Counter* replies;
    sim::Counter* reads_served;
    sim::Counter* read_misses;
    sim::Counter* writes_applied;
    sim::Counter* writes_stale;
  };
  Obs obs_;
};

// ---------------------------------------------------------------------------
// Client-side quorum coordinator
// ---------------------------------------------------------------------------

struct QuorumConfig {
  /// Replies needed for a read / write to complete. Quorum safety
  /// (stale-read freedom) requires read_quorum + write_quorum > N.
  int read_quorum = 2;
  int write_quorum = 2;
  /// First attempt's reply deadline; must be > 0 so every op terminates.
  sim::Duration op_timeout = 50 * sim::kMillisecond;
  /// Extra attempts after the first timeout; each waits backoff× longer.
  int max_retries = 2;
  double backoff = 2.0;
  /// Push the newest version to stale read responders (asynchronous).
  bool read_repair = true;
  /// Writer id breaking version ties between concurrent coordinators.
  std::uint32_t writer_id = 0;
};

/// Non-empty human-readable reason when the config is unusable against
/// `replicas` servers (quorums out of range, non-positive timeout, or
/// R + W <= N, which silently forfeits read-your-writes); empty when
/// valid. ReplicatedKv construction rejects invalid configs with it.
std::string validate(const QuorumConfig& config, int replicas);

enum class OpStatus : std::uint8_t {
  kCompleted = 0,  // quorum reached
  kTimedOut = 1,   // retry budget exhausted without quorum
  kAborted = 2,    // quorum provably unreachable (hard replica failures)
};

struct OpResult {
  OpStatus status = OpStatus::kCompleted;
  /// Reads: newest version among responders (and its value size).
  /// Writes: the version installed.
  Version version{};
  std::uint64_t value_bytes = 0;
  int attempts = 1;
};

/// The quorum coordinator: one per client, over one RpcClient per
/// replica (index i is replica i, everywhere). All state lives on the
/// client node's simulator, so the coordinator is site-parallel safe.
class ReplicatedKv {
 public:
  /// Accounting; identities oracle-checked (src/check/oracles.cpp,
  /// `/kv.client` scopes):
  ///   ops_completed + ops_timed_out + ops_aborted == ops_issued
  ///   replica_acks + replica_fails + replica_late <= replica_calls
  /// (the remainder of the second is calls still outstanding at drain —
  /// a transport waiting forever on a severed WAN). The lint:conserved
  /// counters may only be written by replicated.cpp (INV001).
  struct Stats {
    std::uint64_t ops_issued = 0;     // lint:conserved
    std::uint64_t ops_completed = 0;  // lint:conserved
    std::uint64_t ops_timed_out = 0;  // lint:conserved
    std::uint64_t ops_aborted = 0;    // lint:conserved
    std::uint64_t replica_calls = 0;  // lint:conserved
    std::uint64_t replica_acks = 0;   // lint:conserved
    std::uint64_t replica_fails = 0;  // lint:conserved
    std::uint64_t replica_late = 0;   // lint:conserved
    std::uint64_t retries = 0;
    std::uint64_t read_repairs = 0;
  };

  ReplicatedKv(sim::Simulator& sim, net::NodeId lid,
               std::vector<rpc::RpcClient*> replicas, QuorumConfig config);

  sim::Coro<OpResult> get(std::uint64_t key);
  sim::Coro<OpResult> put(std::uint64_t key, std::uint64_t value_bytes);

  const QuorumConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  int replicas() const { return static_cast<int>(replicas_.size()); }

 private:
  struct Attempt;
  sim::Coro<OpResult> quorum_op(ReplicaArgs args, int need);
  sim::Task replica_call(std::shared_ptr<Attempt> at, int idx,
                         ReplicaArgs args, int need);
  sim::Task repair_write(int idx, ReplicaArgs args);

  sim::Simulator& sim_;
  QuorumConfig config_;
  std::vector<rpc::RpcClient*> replicas_;
  Stats stats_;
  int inflight_ = 0;
  /// Last version stamp handed out; put() bumps past it when the clock
  /// has not advanced so same-instant writes stay totally ordered.
  sim::Time last_stamp_ = 0;

  // Registered metrics (docs/METRICS.md §kv); scope "node<lid>/kv.client".
  struct Obs {
    sim::Counter* ops_issued;
    sim::Counter* ops_completed;
    sim::Counter* ops_timed_out;
    sim::Counter* ops_aborted;
    sim::Counter* replica_calls;
    sim::Counter* replica_acks;
    sim::Counter* replica_fails;
    sim::Counter* replica_late;
    sim::Counter* retries;
    sim::Counter* read_repairs;
    sim::Gauge* inflight_ops;
    sim::Histogram* op_ns;
  };
  Obs obs_;
};

}  // namespace ibwan::kv
