// Process-wide knobs for site-parallel (PDES) execution, DESIGN.md §13.
//
// `par_sites` is the requested number of logical processes per
// simulation (one per cluster; 1 = today's sequential engine). Benches
// set it from `--par-sites N` / IBWAN_PAR_SITES (bench::init); tests
// set it directly. Like the seed knob it must be set before testbeds
// are constructed and is read-only while sweeps run.
//
// `IBWAN_THREADS=1` doubles as the differential oracle switch: with a
// one-thread budget the partition is pointless, so Testbed collapses to
// one site and runs the exact sequential path the committed CSVs were
// generated with.
#pragma once

#include <cstdlib>

namespace ibwan::core {

namespace detail {
inline int& par_sites_storage() {
  // NOLINT-IBWAN(CONC003): process-wide CLI knob, set once before any run
  static int sites = 1;  // NOLINT: process-wide knob, set before runs start
  return sites;
}
}  // namespace detail

inline int par_sites() { return detail::par_sites_storage(); }

inline void set_par_sites(int sites) {
  detail::par_sites_storage() = sites < 1 ? 1 : sites;
}

/// PDES worker budget: IBWAN_THREADS when set, else 0 (auto — the
/// engine sizes its pool from hardware concurrency). A value of 1
/// forces sequential execution.
inline int pdes_threads() {
  // NOLINT-IBWAN(DET001): explicit user knob; the worker budget never
  // affects simulated outputs, only wall-clock time
  if (const char* env = std::getenv("IBWAN_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;
}

}  // namespace ibwan::core
