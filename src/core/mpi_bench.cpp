#include "core/mpi_bench.hpp"

#include <memory>
#include <vector>

#include "core/calibration.hpp"

namespace ibwan::core::mpibench {

namespace {

/// Streams `iters` windows of isends from `me` to `peer` and waits for
/// the peer's final 4-byte ack.
sim::Coro<void> bw_sender(mpi::Rank& r, int peer, const OsuConfig& cfg) {
  for (int it = 0; it < cfg.warmup + cfg.iterations; ++it) {
    std::vector<mpi::Request> reqs;
    reqs.reserve(cfg.window);
    for (int w = 0; w < cfg.window; ++w) {
      reqs.push_back(r.isend(peer, cfg.msg_size, it));
    }
    co_await r.wait_all(std::move(reqs));
  }
  co_await r.recv(peer, 1 << 20);  // final handshake
}

sim::Coro<void> bw_receiver(mpi::Rank& r, int peer, const OsuConfig& cfg) {
  for (int it = 0; it < cfg.warmup + cfg.iterations; ++it) {
    std::vector<mpi::Request> reqs;
    reqs.reserve(cfg.window);
    for (int w = 0; w < cfg.window; ++w) {
      reqs.push_back(r.irecv(peer, it));
    }
    co_await r.wait_all(std::move(reqs));
  }
  co_await r.send(peer, 4, 1 << 20);
}

struct Timed {
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  double seconds() const { return sim::to_seconds(t1 - t0); }
};

mpi::MpiConfig job_config(const OsuConfig& cfg) {
  mpi::MpiConfig mc = mpi_defaults();
  mc.coalescing = cfg.coalescing;
  return mc;
}

}  // namespace

double osu_bw(Testbed& tb, const OsuConfig& cfg) {
  mpi::Job job(tb.fabric(), {tb.node_a(), tb.node_b()}, job_config(cfg));
  auto timed = std::make_shared<Timed>();
  job.execute([cfg, timed](mpi::Rank& r) -> sim::Coro<void> {
    if (cfg.rendezvous_threshold != 0) {
      r.set_rendezvous_threshold(cfg.rendezvous_threshold);
    }
    // Untimed warmup runs inside the streaming loops; the timed region
    // is bounded by barriers.
    co_await r.barrier();
    if (r.rank() == 0) timed->t0 = r.sim().now();
    if (r.rank() == 0) {
      co_await bw_sender(r, 1, cfg);
    } else {
      co_await bw_receiver(r, 0, cfg);
    }
    co_await r.barrier();
    if (r.rank() == 0) timed->t1 = r.sim().now();
  });
  const double bytes = static_cast<double>(cfg.msg_size) * cfg.window *
                       (cfg.warmup + cfg.iterations);
  return bytes / timed->seconds() / 1e6;
}

double osu_bibw(Testbed& tb, const OsuConfig& cfg) {
  mpi::Job job(tb.fabric(), {tb.node_a(), tb.node_b()}, job_config(cfg));
  auto timed = std::make_shared<Timed>();
  job.execute([cfg, timed](mpi::Rank& r) -> sim::Coro<void> {
    if (cfg.rendezvous_threshold != 0) {
      r.set_rendezvous_threshold(cfg.rendezvous_threshold);
    }
    co_await r.barrier();
    if (r.rank() == 0) timed->t0 = r.sim().now();
    const int peer = 1 - r.rank();
    // Both directions at once: stream out while sinking the peer's
    // traffic (tags partition the two directions).
    for (int it = 0; it < cfg.warmup + cfg.iterations; ++it) {
      std::vector<mpi::Request> reqs;
      reqs.reserve(2 * cfg.window);
      for (int w = 0; w < cfg.window; ++w) {
        reqs.push_back(r.isend(peer, cfg.msg_size, it));
        reqs.push_back(r.irecv(peer, it));
      }
      co_await r.wait_all(std::move(reqs));
    }
    co_await r.barrier();
    if (r.rank() == 0) timed->t1 = r.sim().now();
  });
  const double bytes = 2.0 * static_cast<double>(cfg.msg_size) *
                       cfg.window * (cfg.warmup + cfg.iterations);
  return bytes / timed->seconds() / 1e6;
}

double multi_pair_message_rate(Testbed& tb, int pairs,
                               const OsuConfig& cfg) {
  mpi::Job job(tb.fabric(),
               mpi::Job::split_placement(tb.fabric(), pairs),
               job_config(cfg));
  auto timed = std::make_shared<Timed>();
  job.execute([cfg, pairs, timed](mpi::Rank& r) -> sim::Coro<void> {
    if (cfg.rendezvous_threshold != 0) {
      r.set_rendezvous_threshold(cfg.rendezvous_threshold);
    }
    co_await r.barrier();
    if (r.rank() == 0) timed->t0 = r.sim().now();
    if (r.rank() < pairs) {
      co_await bw_sender(r, r.rank() + pairs, cfg);
    } else {
      co_await bw_receiver(r, r.rank() - pairs, cfg);
    }
    co_await r.barrier();
    if (r.rank() == 0) timed->t1 = r.sim().now();
  });
  const double msgs = static_cast<double>(pairs) * cfg.window *
                      (cfg.warmup + cfg.iterations);
  return msgs / timed->seconds() / 1e6;
}

double bcast_latency_us(Testbed& tb, const BcastConfig& cfg) {
  mpi::Job job(tb.fabric(),
               mpi::Job::split_placement(tb.fabric(), cfg.ranks_per_cluster),
               mpi_defaults());
  auto timed = std::make_shared<Timed>();
  const int np = 2 * cfg.ranks_per_cluster;
  const int acker = np - 1;  // pre-selected greatest-ack-time process
  job.execute([cfg, acker, timed](mpi::Rank& r) -> sim::Coro<void> {
    co_await r.barrier();
    if (r.rank() == 0) timed->t0 = r.sim().now();
    for (int it = 0; it < cfg.iterations; ++it) {
      if (cfg.hierarchical) {
        co_await r.bcast_hierarchical(0, cfg.msg_size);
      } else {
        co_await r.bcast(0, cfg.msg_size);
      }
      // OSU bcast protocol: the slowest process acks the root, which
      // then proceeds to the next broadcast.
      if (r.rank() == acker) {
        co_await r.send(0, 4, 1 << 21);
      } else if (r.rank() == 0) {
        co_await r.recv(acker, 1 << 21);
        timed->t1 = r.sim().now();
      }
    }
  });
  return sim::to_microseconds(timed->t1 - timed->t0) / cfg.iterations;
}

}  // namespace ibwan::core::mpibench
