// IPoIB/TCP throughput driver (the Figure 6/7 measurement: single and
// parallel streams between one host of each cluster).
#pragma once

#include <cstdint>

#include "core/testbed.hpp"
#include "ipoib/ipoib.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::core::tcpbench {

struct StreamConfig {
  ipoib::IpoibConfig device{};
  tcp::TcpConfig tcp{};
  int streams = 1;
  /// Application bytes pushed per stream (2 MB application messages in
  /// the paper; the total just needs to dwarf the handshake).
  std::uint64_t bytes_per_stream = 32ull << 20;
};

/// Aggregate acked throughput in MB/s across all streams.
double tcp_throughput(Testbed& tb, const StreamConfig& cfg);

}  // namespace ibwan::core::tcpbench
