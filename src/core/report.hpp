// Result reporting: paper-style tables on stdout plus CSV files.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace ibwan::core {

/// A labelled table: one row per x value, one column per series, printed
/// the way the paper's figures tabulate (x, then each curve).
class Table {
 public:
  Table(std::string title, std::string x_label)
      : title_(std::move(title)), x_label_(std::move(x_label)) {}

  sim::Series& series(const std::string& name);
  void add(const std::string& series_name, double x, double y) {
    series(series_name).add(x, y);
  }

  /// Prints an aligned table to stdout.
  void print(const char* number_format = "%12.2f") const;

  /// Writes "x,series1,series2,..." CSV.
  bool write_csv(const std::string& path) const;

  const std::vector<sim::Series>& all_series() const { return series_; }

 private:
  std::vector<double> sorted_xs() const;

  std::string title_;
  std::string x_label_;
  std::vector<sim::Series> series_;
};

/// Prints a section banner (one per table/figure in the bench output).
void banner(const std::string& text);

}  // namespace ibwan::core
