// NFS read/write throughput driver (the Figure 13 measurement: single
// server, multi-threaded IOzone client, RDMA vs IPoIB transports).
#pragma once

#include <cstdint>

#include "net/faults.hpp"
#include "nfs/nfs.hpp"
#include "sim/metrics.hpp"
#include "sim/time.hpp"

namespace ibwan::core::nfsbench {

enum class Transport { kRdma, kIpoibRc, kIpoibUd };

struct NfsBenchConfig {
  Transport transport = Transport::kRdma;
  sim::Duration wan_delay = 0;
  /// LAN baseline: server and client in the same cluster (no Longbows).
  bool lan = false;
  int threads = 1;
  std::uint64_t file_bytes = 512ull << 20;
  std::uint64_t record_bytes = 256 << 10;
  bool write = false;
  /// Per-run fault plan for the WAN links (nullptr: the process-global
  /// bench --faults plan, if any). Used by the src/check/ harness.
  const net::FaultPlanConfig* faults = nullptr;
  /// Enable the run's MetricsRegistry and copy the drained snapshot out
  /// (nullptr: aggregator-driven behaviour only).
  sim::MetricsSnapshot* metrics_out = nullptr;
};

/// Builds a fresh testbed, mounts, runs IOzone, returns the result.
nfs::IozoneResult run(const NfsBenchConfig& cfg);

}  // namespace ibwan::core::nfsbench
