// NFS read/write throughput driver (the Figure 13 measurement: single
// server, multi-threaded IOzone client, RDMA vs IPoIB transports).
#pragma once

#include <cstdint>

#include "nfs/nfs.hpp"
#include "sim/time.hpp"

namespace ibwan::core::nfsbench {

enum class Transport { kRdma, kIpoibRc, kIpoibUd };

struct NfsBenchConfig {
  Transport transport = Transport::kRdma;
  sim::Duration wan_delay = 0;
  /// LAN baseline: server and client in the same cluster (no Longbows).
  bool lan = false;
  int threads = 1;
  std::uint64_t file_bytes = 512ull << 20;
  std::uint64_t record_bytes = 256 << 10;
  bool write = false;
};

/// Builds a fresh testbed, mounts, runs IOzone, returns the result.
nfs::IozoneResult run(const NfsBenchConfig& cfg);

}  // namespace ibwan::core::nfsbench
