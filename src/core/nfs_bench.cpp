#include "core/nfs_bench.hpp"

#include <memory>

#include "core/calibration.hpp"
#include "core/testbed.hpp"
#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "rpc/rpc.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::core::nfsbench {

nfs::IozoneResult run(const NfsBenchConfig& cfg) {
  // Two hosts per cluster so the LAN baseline can stay on one switch.
  Testbed tb(TestbedOptions{.nodes_a = 2,
                            .nodes_b = 2,
                            .wan_delay = cfg.wan_delay,
                            .faults = cfg.faults,
                            .metrics = cfg.metrics_out != nullptr});
  const net::NodeId server_node = tb.node_a(0);
  const net::NodeId client_node = cfg.lan ? tb.node_a(1) : tb.node_b(0);

  nfs::IozoneConfig io;
  io.file_bytes = cfg.file_bytes;
  io.record_bytes = cfg.record_bytes;
  io.threads = cfg.threads;
  io.write = cfg.write;

  if (cfg.transport == Transport::kRdma) {
    ib::Hca server_hca(tb.fabric().node(server_node), nfs_server_hca());
    ib::Hca client_hca(tb.fabric().node(client_node), {});
    rpc::RdmaRpcServer rpc_server(server_hca);
    rpc::RdmaRpcClient rpc_client(client_hca, rpc_server);
    nfs::NfsServer server(tb.sim_for(server_node), nfs_rdma_defaults());
    server.add_file(io.fh, cfg.file_bytes);
    rpc_server.set_handler(server.handler());
    nfs::NfsClient client(rpc_client);
    const nfs::IozoneResult result =
        nfs::run_iozone(tb.sim_for(client_node), client, io, &tb.engine());
    if (cfg.metrics_out != nullptr) *cfg.metrics_out = tb.metrics_snapshot();
    return result;
  }

  const ipoib::IpoibConfig dev_cfg = cfg.transport == Transport::kIpoibRc
                                         ? ipoib_rc(ipoib::kConnectedIpMtu)
                                         : ipoib_ud();
  ib::Hca server_hca(tb.fabric().node(server_node), {});
  ib::Hca client_hca(tb.fabric().node(client_node), {});
  ipoib::IpoibDevice server_dev(server_hca, dev_cfg);
  ipoib::IpoibDevice client_dev(client_hca, dev_cfg);
  ipoib::IpoibDevice::link(client_dev, server_dev);
  tcp::TcpStack server_stack(server_dev, tcp_window());
  tcp::TcpStack client_stack(client_dev, tcp_window());
  rpc::TcpRpcServer rpc_server(server_stack, 2049);
  rpc::TcpRpcClient rpc_client(client_stack, server_stack.lid(), 2049);
  nfs::NfsServer server(tb.sim_for(server_node), nfs_ipoib_defaults());
  server.add_file(io.fh, cfg.file_bytes);
  rpc_server.set_handler(server.handler());
  nfs::NfsClient client(rpc_client);
  const nfs::IozoneResult result =
      nfs::run_iozone(tb.sim_for(client_node), client, io, &tb.engine());
  if (cfg.metrics_out != nullptr) *cfg.metrics_out = tb.metrics_snapshot();
  return result;
}

}  // namespace ibwan::core::nfsbench
