// OSU-microbenchmark-style MPI measurement drivers (OMB), used by the
// Figure 8-11 benches and the integration tests.
#pragma once

#include <cstdint>

#include "core/testbed.hpp"
#include "mpi/mpi.hpp"

namespace ibwan::core::mpibench {

struct OsuConfig {
  std::uint64_t msg_size = 1024;
  /// Outstanding sends per iteration (osu_bw window).
  int window = 64;
  int iterations = 20;
  int warmup = 2;
  /// 0 keeps the library default (8 KB); Figure 9 tunes this.
  std::uint64_t rendezvous_threshold = 0;
  /// Enable eager-message coalescing in the library under test.
  bool coalescing = false;
};

/// osu_bw: rank 0 (cluster A) streams to rank 1 (cluster B). MB/s.
double osu_bw(Testbed& tb, const OsuConfig& cfg);

/// osu_bibw: both directions concurrently. Aggregate MB/s.
double osu_bibw(Testbed& tb, const OsuConfig& cfg);

/// osu_mbw_mr: `pairs` sender/receiver pairs across the WAN; aggregate
/// message rate in million messages per second.
double multi_pair_message_rate(Testbed& tb, int pairs,
                               const OsuConfig& cfg);

struct BcastConfig {
  int ranks_per_cluster = 8;
  std::uint64_t msg_size = 1024;
  int iterations = 10;
  bool hierarchical = false;  // false = the library default ("Original")
};

/// The paper's OSU bcast benchmark: the root broadcasts and waits for an
/// ack from the pre-selected slowest process before the next iteration.
/// Returns average per-broadcast latency in microseconds.
double bcast_latency_us(Testbed& tb, const BcastConfig& cfg);

}  // namespace ibwan::core::mpibench
