#include "core/tcp_bench.hpp"

#include <memory>
#include <vector>

#include "ib/hca.hpp"

namespace ibwan::core::tcpbench {

double tcp_throughput(Testbed& tb, const StreamConfig& cfg) {
  sim::Simulator& sim = tb.sim();
  ib::Hca server_hca(tb.fabric().node(tb.node_b()), {});
  ib::Hca client_hca(tb.fabric().node(tb.node_a()), {});
  ipoib::IpoibDevice server_dev(server_hca, cfg.device);
  ipoib::IpoibDevice client_dev(client_hca, cfg.device);
  ipoib::IpoibDevice::link(client_dev, server_dev);
  tcp::TcpStack server(server_dev, cfg.tcp);
  tcp::TcpStack client(client_dev, cfg.tcp);

  server.listen(5001, [](tcp::TcpConnection&) {});

  int done = 0;
  sim::Time t_end = 0;
  const sim::Time t0 = sim.now();
  std::vector<tcp::TcpConnection*> conns;
  for (int s = 0; s < cfg.streams; ++s) {
    tcp::TcpConnection& c = client.connect(server.lid(), 5001);
    c.send(cfg.bytes_per_stream);
    c.set_on_acked([&, &c = c](std::uint64_t acked) {
      if (acked == cfg.bytes_per_stream) {
        if (++done == cfg.streams) t_end = sim.now();
      }
    });
    conns.push_back(&c);
  }
  tb.run();
  const double secs = sim::to_seconds(t_end - t0);
  const double bytes =
      static_cast<double>(cfg.bytes_per_stream) * cfg.streams;
  return secs > 0 ? bytes / secs / 1e6 : 0;
}

}  // namespace ibwan::core::tcpbench
