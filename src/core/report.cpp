#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace ibwan::core {

sim::Series& Table::series(const std::string& name) {
  for (auto& s : series_) {
    if (s.name == name) return s;
  }
  series_.push_back(sim::Series{name, {}});
  return series_.back();
}

std::vector<double> Table::sorted_xs() const {
  std::set<double> xs;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) xs.insert(x);
  }
  return {xs.begin(), xs.end()};
}

void Table::print(const char* number_format) const {
  std::printf("\n%s\n", title_.c_str());
  std::printf("%-14s", x_label_.c_str());
  for (const auto& s : series_) std::printf(" %16s", s.name.c_str());
  std::printf("\n");
  for (double x : sorted_xs()) {
    if (x == static_cast<double>(static_cast<long long>(x))) {
      std::printf("%-14lld", static_cast<long long>(x));
    } else {
      std::printf("%-14.2f", x);
    }
    for (const auto& s : series_) {
      const double y = s.at(x);
      if (std::isnan(y)) {
        std::printf(" %16s", "-");
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), number_format, y);
        std::printf(" %16s", buf);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%s", x_label_.c_str());
  for (const auto& s : series_) std::fprintf(f, ",%s", s.name.c_str());
  std::fprintf(f, "\n");
  for (double x : sorted_xs()) {
    std::fprintf(f, "%g", x);
    for (const auto& s : series_) {
      const double y = s.at(x);
      if (std::isnan(y)) {
        std::fprintf(f, ",");
      } else {
        std::fprintf(f, ",%g", y);
      }
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return true;
}

void banner(const std::string& text) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("============================================================\n");
  std::fflush(stdout);
}

}  // namespace ibwan::core
