// WAN-aware protocol optimizations — the paper's proposed fixes, packaged
// as policies a middleware can consult at runtime.
//
//  * Figure 9 showed that re-tuning the MPI rendezvous threshold for the
//    measured WAN delay recovers medium-message bandwidth; the paper
//    concludes "mechanisms like adaptive tuning of MPI protocol ... are
//    likely to yield the best performance". AdaptiveRendezvousThreshold
//    is that mechanism.
//  * Figures 6(b)/7(b) showed parallel TCP streams sustain peak
//    bandwidth across wide delay ranges; ParallelStreamPolicy picks the
//    stream count from the bandwidth-delay product.
//  * Figure 11's hierarchical broadcast lives in
//    mpi::Rank::bcast_hierarchical.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace ibwan::core {

/// Picks an eager/rendezvous switchover from the measured round-trip
/// time. Rationale: rendezvous trades two buffer copies for an RTS/CTS
/// handshake whose control messages serialize against the same bounded
/// in-flight window as the data. Over a long pipe the handshake loss
/// dominates until messages approach a sizeable fraction of the
/// bandwidth-delay product, so the switchover scales with BDP (divisor
/// chosen empirically against the Figure 9 sweep; the copy-cost ceiling
/// bounds it above).
class AdaptiveRendezvousThreshold {
 public:
  struct Params {
    std::uint64_t floor_bytes = 8 * 1024;    // the LAN default
    std::uint64_t ceiling_bytes = 1 << 20;   // copy/registration bound
    double wire_bytes_per_ns = 1.0;          // WAN SDR data rate
    double bdp_divisor = 4.0;
  };

  AdaptiveRendezvousThreshold() = default;
  explicit AdaptiveRendezvousThreshold(Params p) : p_(p) {}

  std::uint64_t threshold_for_rtt(sim::Duration rtt) const {
    const double bdp =
        p_.wire_bytes_per_ns * static_cast<double>(rtt);
    const auto ideal = static_cast<std::uint64_t>(bdp / p_.bdp_divisor);
    return std::clamp(ideal, p_.floor_bytes, p_.ceiling_bytes);
  }

 private:
  Params p_{};
};

/// Picks a number of parallel TCP streams so that the aggregate
/// effective window covers the bandwidth-delay product (Figures 6b/7b:
/// "applications with parallel TCP streams have high potential to
/// maximize the utility of the WAN links").
class ParallelStreamPolicy {
 public:
  struct Params {
    double wire_bytes_per_ns = 1.0;
    int max_streams = 8;
  };

  ParallelStreamPolicy() = default;
  explicit ParallelStreamPolicy(Params p) : p_(p) {}

  int streams_for(sim::Duration rtt, std::uint64_t window_bytes) const {
    const double bdp = p_.wire_bytes_per_ns * static_cast<double>(rtt);
    if (window_bytes == 0) return 1;
    const double needed = bdp / static_cast<double>(window_bytes);
    const int n = static_cast<int>(needed) + 1;
    return std::clamp(n, 1, p_.max_streams);
  }

 private:
  Params p_{};
};

}  // namespace ibwan::core
