// Process-wide default master seed (42, the repo's published-CSV seed).
//
// bench::init overrides it from IBWAN_SEED before any sweep starts, so
// every Testbed and delay_seed_grid() built afterwards derives from the
// user's seed without each bench threading a parameter through. The
// value is set once, pre-threads, and read-only thereafter — the same
// contract as the global fault plan.
#pragma once

#include <cstdint>

namespace ibwan::core {

namespace detail {
inline std::uint64_t& default_seed_storage() {
  // NOLINT-IBWAN(CONC003): process-wide seed knob, set once at startup
  // (IBWAN_SEED/bench::init) before any simulator is constructed
  static std::uint64_t seed = 42;
  return seed;
}
}  // namespace detail

/// The master seed a run derives from when no explicit seed is given.
inline std::uint64_t default_seed() { return detail::default_seed_storage(); }

/// Set before any simulation is constructed (bench::init does this from
/// IBWAN_SEED); changing it mid-run would split one run across seeds.
inline void set_default_seed(std::uint64_t seed) {
  detail::default_seed_storage() = seed;
}

}  // namespace ibwan::core
