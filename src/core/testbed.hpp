// The experiment testbed: the paper's two clusters joined by an Obsidian
// Longbow XR pair (Figure 2), with the delay knob exposed in both
// microseconds and kilometres.
#pragma once

#include <algorithm>
#include <memory>

#include "core/calibration.hpp"
#include "core/parallel.hpp"
#include "core/seed.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace ibwan::core {

/// Owns a fresh Simulator and Fabric per measurement (experiments are
/// independent runs, as on real hardware after a reboot).
///
/// When the process-wide MetricsAggregator is active (a bench ran with
/// --metrics), each testbed enables its simulator's registry up front
/// and folds the final snapshot into the aggregator on teardown, so a
/// sweep's merged export covers every grid point.
/// Per-testbed construction knobs. The harness in src/check/ builds
/// many testbeds with scenario-local fault plans and metrics, so the
/// process-global channels (bench --faults / --metrics) are optional
/// here: an explicit `faults` plan takes precedence over the global
/// one, and `metrics` force-enables the registry without requiring an
/// active aggregator.
struct TestbedOptions {
  int nodes_a = 1;
  int nodes_b = 1;
  /// N-site topology graph (DESIGN.md §15). When set it overrides
  /// nodes_a/nodes_b entirely — the fabric is built from this graph —
  /// and a parallel run gets one LP per site of this graph instead of
  /// 2. Must outlive the Testbed.
  const net::TopologyConfig* topology = nullptr;
  sim::Duration wan_delay = 0;
  std::uint64_t seed = default_seed();
  /// Fault plan for the WAN links; nullptr falls back to the global
  /// plan (bench --faults). Must outlive the Testbed.
  const net::FaultPlanConfig* faults = nullptr;
  /// Enable this simulator's MetricsRegistry even when no process-wide
  /// aggregator is active (read the snapshot via sim().metrics()).
  bool metrics = false;
  /// Logical processes for site-parallel execution (DESIGN.md §13):
  /// 0 falls back to the process-wide knob (core::par_sites, bench
  /// --par-sites), 1 forces the sequential engine, any larger value
  /// partitions fully — one LP per topology site (2 for the classic
  /// two-cluster testbed), since a partial partition cannot preserve
  /// byte-identity. IBWAN_THREADS=1 always collapses to 1 (the
  /// differential oracle); either way the outputs are byte-identical.
  int par_sites = 0;
};

class Testbed {
 public:
  explicit Testbed(int nodes_per_cluster = 1,
                   sim::Duration wan_delay = 0,
                   std::uint64_t seed = default_seed())
      : Testbed(nodes_per_cluster, nodes_per_cluster, wan_delay, seed) {}

  Testbed(int nodes_a, int nodes_b, sim::Duration wan_delay,
          std::uint64_t seed = default_seed())
      : Testbed(TestbedOptions{.nodes_a = nodes_a,
                               .nodes_b = nodes_b,
                               .wan_delay = wan_delay,
                               .seed = seed}) {}

  explicit Testbed(const TestbedOptions& opt)
      : engine_(effective_sites(opt), pdes_threads()),
        fabric_(opt.topology != nullptr
                    ? std::make_unique<net::Fabric>(engine_, *opt.topology)
                    : std::make_unique<net::Fabric>(
                          engine_,
                          fabric_defaults(opt.nodes_a, opt.nodes_b))) {
    engine_.seed(opt.seed);
    fabric_->set_wan_delay(opt.wan_delay);
    // A fault plan (per-testbed, else the process-wide bench --faults
    // one) attaches to every WAN edge; seeding first keeps the fault
    // RNG streams (keyed by per-edge link names) tied to this run's
    // seed.
    const net::FaultPlanConfig* fp =
        opt.faults != nullptr ? opt.faults : net::global_fault_plan();
    if (fp != nullptr) {
      for (int e = 0; e < fabric_->wan_edge_count(); ++e) {
        fabric_->wan_pair(e).apply_faults(*fp);
      }
    }
    if (opt.metrics || sim::MetricsAggregator::global().active()) {
      for (int i = 0; i < engine_.sites(); ++i) {
        engine_.site(i).metrics().set_enabled(true);
      }
    }
  }

  ~Testbed() {
    auto& agg = sim::MetricsAggregator::global();
    if (!agg.active()) return;
    // Instrument scopes are per-instance names, so per-site snapshots
    // cover disjoint path sets and the merged export is byte-identical
    // to a sequential run's single-registry snapshot.
    for (int i = 0; i < engine_.sites(); ++i) {
      agg.absorb(engine_.site(i).metrics().snapshot());
    }
  }

  /// Site 0's simulator (the only one when running sequentially).
  /// Partition-sensitive code should use sim_a()/sim_b()/sim_for().
  sim::Simulator& sim() { return fabric_->sim(); }
  net::Fabric& fabric() { return *fabric_; }
  sim::SiteEngine& engine() { return engine_; }

  sim::Simulator& sim_a() { return fabric_->sim_of(net::Cluster::kA); }
  sim::Simulator& sim_b() { return fabric_->sim_of(net::Cluster::kB); }
  sim::Simulator& sim_for(net::NodeId id) { return fabric_->sim_of_node(id); }

  /// Runs the simulation to drain (all sites, all channels).
  void run() { fabric_->run_all(); }
  /// Simulated end time after run(): max over site clocks, equal to the
  /// sequential run's final now().
  sim::Time now() const { return fabric_->max_now(); }

  /// Merged metrics across sites (equals sim().metrics().snapshot()
  /// when sequential).
  sim::MetricsSnapshot metrics_snapshot() {
    sim::MetricsSnapshot snap = engine_.site(0).metrics().snapshot();
    for (int i = 1; i < engine_.sites(); ++i) {
      snap.merge(engine_.site(i).metrics().snapshot());
    }
    return snap;
  }

  void set_wan_delay(sim::Duration d) { fabric_->set_wan_delay(d); }
  void set_distance_km(double km) { fabric_->set_wan_delay(delay_for_km(km)); }
  sim::Duration wan_delay() const { return fabric_->wan_delay(); }

  /// First host of cluster A / cluster B (the WAN-facing test nodes).
  net::NodeId node_a(int i = 0) {
    return fabric_->node_id(net::Cluster::kA, i);
  }
  net::NodeId node_b(int i = 0) {
    return fabric_->node_id(net::Cluster::kB, i);
  }
  /// First host of an arbitrary topology site.
  net::NodeId node_at(int site, int i = 0) {
    return fabric_->node_id(site, i);
  }

 private:
  /// Sites actually constructed: any parallel request partitions fully
  /// (one LP per topology site — the only partition that preserves
  /// byte-identity, see Fabric), with IBWAN_THREADS=1 forcing the
  /// sequential oracle.
  static int effective_sites(const TestbedOptions& opt) {
    int req = opt.par_sites > 0 ? opt.par_sites : par_sites();
    const int max_sites =
        opt.topology != nullptr
            ? static_cast<int>(opt.topology->sites.size())
            : 2;  // the classic testbed is one LP per cluster
    if (req > 1) req = max_sites;
    if (req > 1 && pdes_threads() == 1) req = 1;
    if (req > 1) {
      // Shapes the partition cannot support run sequentially (the
      // fabric would fall back anyway; keep the engine in sync).
      const net::TopologyConfig topo =
          opt.topology != nullptr
              ? *opt.topology
              : net::to_topology(fabric_defaults(opt.nodes_a, opt.nodes_b));
      if (topo.back_to_back) req = 1;
      for (const net::WanEdgeConfig& e : topo.wan) {
        if (e.longbow.loss_rate > 0.0) req = 1;
      }
    }
    return req < 1 ? 1 : req;
  }

  sim::SiteEngine engine_;
  std::unique_ptr<net::Fabric> fabric_;
};

}  // namespace ibwan::core
