// The experiment testbed: the paper's two clusters joined by an Obsidian
// Longbow XR pair (Figure 2), with the delay knob exposed in both
// microseconds and kilometres.
#pragma once

#include <memory>

#include "core/calibration.hpp"
#include "core/seed.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"

namespace ibwan::core {

/// Owns a fresh Simulator and Fabric per measurement (experiments are
/// independent runs, as on real hardware after a reboot).
///
/// When the process-wide MetricsAggregator is active (a bench ran with
/// --metrics), each testbed enables its simulator's registry up front
/// and folds the final snapshot into the aggregator on teardown, so a
/// sweep's merged export covers every grid point.
/// Per-testbed construction knobs. The harness in src/check/ builds
/// many testbeds with scenario-local fault plans and metrics, so the
/// process-global channels (bench --faults / --metrics) are optional
/// here: an explicit `faults` plan takes precedence over the global
/// one, and `metrics` force-enables the registry without requiring an
/// active aggregator.
struct TestbedOptions {
  int nodes_a = 1;
  int nodes_b = 1;
  sim::Duration wan_delay = 0;
  std::uint64_t seed = default_seed();
  /// Fault plan for the WAN links; nullptr falls back to the global
  /// plan (bench --faults). Must outlive the Testbed.
  const net::FaultPlanConfig* faults = nullptr;
  /// Enable this simulator's MetricsRegistry even when no process-wide
  /// aggregator is active (read the snapshot via sim().metrics()).
  bool metrics = false;
};

class Testbed {
 public:
  explicit Testbed(int nodes_per_cluster = 1,
                   sim::Duration wan_delay = 0,
                   std::uint64_t seed = default_seed())
      : Testbed(nodes_per_cluster, nodes_per_cluster, wan_delay, seed) {}

  Testbed(int nodes_a, int nodes_b, sim::Duration wan_delay,
          std::uint64_t seed = default_seed())
      : Testbed(TestbedOptions{.nodes_a = nodes_a,
                               .nodes_b = nodes_b,
                               .wan_delay = wan_delay,
                               .seed = seed}) {}

  explicit Testbed(const TestbedOptions& opt)
      : fabric_(sim_, fabric_defaults(opt.nodes_a, opt.nodes_b)) {
    sim_.seed(opt.seed);
    fabric_.set_wan_delay(opt.wan_delay);
    // A fault plan (per-testbed, else the process-wide bench --faults
    // one) attaches to the WAN links; seeding first keeps the fault RNG
    // streams tied to this run's seed.
    const net::FaultPlanConfig* fp =
        opt.faults != nullptr ? opt.faults : net::global_fault_plan();
    if (fp != nullptr && fabric_.longbows() != nullptr) {
      fabric_.longbows()->apply_faults(*fp);
    }
    if (opt.metrics || sim::MetricsAggregator::global().active()) {
      sim_.metrics().set_enabled(true);
    }
  }

  ~Testbed() {
    auto& agg = sim::MetricsAggregator::global();
    if (agg.active()) agg.absorb(sim_.metrics().snapshot());
  }

  sim::Simulator& sim() { return sim_; }
  net::Fabric& fabric() { return fabric_; }

  void set_wan_delay(sim::Duration d) { fabric_.set_wan_delay(d); }
  void set_distance_km(double km) { fabric_.set_wan_delay(delay_for_km(km)); }
  sim::Duration wan_delay() const { return fabric_.wan_delay(); }

  /// First host of cluster A / cluster B (the WAN-facing test nodes).
  net::NodeId node_a(int i = 0) { return fabric_.node_id(net::Cluster::kA, i); }
  net::NodeId node_b(int i = 0) { return fabric_.node_id(net::Cluster::kB, i); }

 private:
  sim::Simulator sim_;
  net::Fabric fabric_;
};

}  // namespace ibwan::core
