// Model calibration constants (DESIGN.md §6).
//
// Every default in the simulator was chosen so the zero-delay absolute
// numbers land near the paper's 2007-era testbed (dual 3.6 GHz Xeons,
// MT25208 DDR HCAs, OFED 1.2, Obsidian Longbow XR):
//
//   * verbs RC WAN peak   ~985 MB/s  (paper: ~980; SDR minus headers)
//   * verbs UD WAN peak   ~967 MB/s  (paper: 967; GRH adds 40 B/pkt)
//   * Longbow pair adds   ~5 us      (paper, Section 3.2.1)
//   * IPoIB-UD stream     ~350 MB/s  (host-stack bound)
//   * IPoIB-RC 64K MTU    ~890 MB/s  (paper: 890)
//   * MPI peak            ~969 MB/s  (paper: 969)
//   * NFS/RDMA LAN        ~1.1 GB/s : WAN 0-delay ratio ~0.7 (paper: -36%)
//
// Change them here, not inline.
#pragma once

#include "ib/verbs.hpp"
#include "ipoib/ipoib.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "nfs/nfs.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::core {

/// Wire delay per kilometre of fiber (paper, Table 1: 5 us/km).
inline constexpr double kDelayUsPerKm = 5.0;

constexpr sim::Duration delay_for_km(double km) {
  return static_cast<sim::Duration>(km * kDelayUsPerKm * 1000.0);
}
constexpr double km_for_delay(sim::Duration d) {
  return static_cast<double>(d) / 1000.0 / kDelayUsPerKm;
}

/// The paper's emulated-delay grid: 0 us .. 10 ms (0 .. 2000 km).
inline constexpr sim::Duration kDelayGrid[] = {
    0, 10'000, 100'000, 1'000'000, 10'000'000};

/// Fabric with the testbed's rates: DDR hosts, SDR WAN, ~5 us Longbows.
inline net::FabricConfig fabric_defaults(int nodes_a, int nodes_b) {
  net::FabricConfig cfg;
  cfg.nodes_a = nodes_a;
  cfg.nodes_b = nodes_b;
  cfg.lan_rate = 2.0;              // DDR: 16 Gb/s data = 2 B/ns
  cfg.host_link_prop = 100;        // cable
  cfg.switch_latency = 200;        // cut-through hop
  cfg.longbow.wan_rate = 1.0;      // SDR: 8 Gb/s data
  cfg.longbow.pipeline_latency = 1'700;
  cfg.longbow.base_propagation = 500;
  return cfg;
}

/// HCA defaults are in ib::HcaConfig itself; re-exported for visibility.
inline ib::HcaConfig hca_defaults() { return {}; }

/// The NFS/RDMA server posts deep chunk-write queues (knfsd keeps many
/// RPCs in flight); its HCA sustains more in-flight messages than the
/// perftest default. 64 x 4 KB chunks keep NFS/RDMA ahead of NFS/IPoIB
/// at 100 us (Figure 13b) while still collapsing at 1 ms (Figure 13c).
inline ib::HcaConfig nfs_server_hca() {
  ib::HcaConfig cfg;
  cfg.rc_max_inflight_msgs = 64;
  return cfg;
}

/// IPoIB datagram mode (2044-byte IP MTU over the 2 KB path MTU).
inline ipoib::IpoibConfig ipoib_ud() { return {}; }

/// IPoIB connected mode with a given IP MTU (2 KB / 16 KB / 64 KB in
/// Figure 7).
inline ipoib::IpoibConfig ipoib_rc(std::uint32_t mtu) {
  ipoib::IpoibConfig cfg;
  cfg.mode = ipoib::Mode::kConnected;
  cfg.mtu = mtu;
  return cfg;
}

/// TCP with a given receive window (Figure 6's -w knob). The era's
/// "default" large window is 1 MB.
inline tcp::TcpConfig tcp_window(std::uint32_t window_bytes = 1 << 20) {
  tcp::TcpConfig cfg;
  cfg.window_bytes = window_bytes;
  return cfg;
}

/// NFS over RDMA: 4 KB chunking (the paper's measured design).
inline nfs::NfsConfig nfs_rdma_defaults() {
  nfs::NfsConfig cfg;
  cfg.chunk_bytes = 4096;
  return cfg;
}

/// NFS over IPoIB: bulk data inline in the TCP stream.
inline nfs::NfsConfig nfs_ipoib_defaults() { return {}; }

/// MVAPICH2-style MPI defaults (8 KB rendezvous threshold).
inline mpi::MpiConfig mpi_defaults() { return {}; }

}  // namespace ibwan::core
