#include "apps/nas.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace ibwan::apps {

namespace {

/// Problem parameters per class (NPB specification).
struct IsParams {
  std::uint64_t keys;
  int buckets;
  int iterations;
};
IsParams is_params(NasClass c) {
  switch (c) {
    case NasClass::kS: return {1u << 16, 1 << 9, 10};
    case NasClass::kA: return {1u << 23, 1 << 10, 10};
    case NasClass::kB: return {1u << 25, 1 << 10, 10};
  }
  return {1u << 25, 1 << 10, 10};
}

struct FtParams {
  std::uint64_t nx, ny, nz;
  int iterations;
};
FtParams ft_params(NasClass c) {
  switch (c) {
    case NasClass::kS: return {64, 64, 64, 6};
    case NasClass::kA: return {256, 256, 128, 6};
    case NasClass::kB: return {512, 256, 256, 20};
  }
  return {512, 256, 256, 20};
}

struct CgParams {
  std::uint64_t na;
  std::uint64_t nonzer;
  int outer_iterations;  // NPB "niter"
  int inner_cg_iterations = 25;
};
CgParams cg_params(NasClass c) {
  switch (c) {
    case NasClass::kS: return {1400, 7, 15};
    case NasClass::kA: return {14000, 11, 15};
    case NasClass::kB: return {75000, 13, 75};
  }
  return {75000, 13, 75};
}

struct MgParams {
  std::uint64_t n;  // grid edge
  int iterations;
};
MgParams mg_params(NasClass c) {
  switch (c) {
    case NasClass::kS: return {32, 4};
    case NasClass::kA: return {256, 4};
    case NasClass::kB: return {256, 20};
  }
  return {256, 20};
}

sim::Duration flops_time(double flops, double rate) {
  return sim::duration_ceil(flops / rate * 1e9);
}

int effective_iters(int standard, int requested) {
  if (requested <= 0) return standard;
  return std::min(standard, requested);
}

}  // namespace

// ---------------------------------------------------------------------------
// IS — integer sort. Per iteration: local ranking, an allreduce on the
// bucket histogram, an alltoall of per-destination counts, then an
// alltoallv redistributing essentially all keys (large messages).
// ---------------------------------------------------------------------------
NasBenchmark make_is(const NasConfig& cfg) {
  const IsParams p = is_params(cfg.cls);
  const int iters = effective_iters(p.iterations, cfg.iterations);
  const double rate = cfg.flops_per_second;
  auto program = [p, iters, rate](mpi::Rank& r) -> sim::Coro<void> {
    const int np = r.size();
    const std::uint64_t local_keys = p.keys / np;
    // Key counting + bucket ranking: a handful of passes over the keys,
    // but random-access memory-bound — ~100 effective "ops" per key at
    // the nominal flop rate.
    const sim::Duration rank_time =
        flops_time(static_cast<double>(local_keys) * 100.0, rate);
    // Uniform random keys: each process ships (local_keys/np) 4-byte
    // keys to every other process.
    const std::uint64_t per_pair = local_keys / np * 4;
    std::vector<std::uint64_t> dist(np, per_pair);
    dist[r.rank()] = 0;
    for (int it = 0; it < iters; ++it) {
      co_await r.compute(rank_time);
      co_await r.allreduce(static_cast<std::uint64_t>(p.buckets) * 4);
      co_await r.alltoall(4 * sizeof(std::uint64_t));  // send counts
      co_await r.alltoallv(dist);
      // Local re-rank of received keys.
      co_await r.compute(rank_time / 2);
    }
    // Full verification.
    co_await r.allreduce(8);
  };
  return {"IS", p.iterations, iters, program};
}

// ---------------------------------------------------------------------------
// FT — 3-D FFT. Per iteration: local 2-D FFT planes, then the global
// transpose (alltoall moving the full grid: per-pair = grid/(np^2)),
// then local 1-D FFTs and a checksum allreduce.
// ---------------------------------------------------------------------------
NasBenchmark make_ft(const NasConfig& cfg) {
  const FtParams p = ft_params(cfg.cls);
  const int iters = effective_iters(p.iterations, cfg.iterations);
  const double rate = cfg.flops_per_second;
  auto program = [p, iters, rate](mpi::Rank& r) -> sim::Coro<void> {
    const int np = r.size();
    const std::uint64_t points = p.nx * p.ny * p.nz;
    const std::uint64_t grid_bytes = points * 16;  // double complex
    const std::uint64_t per_pair =
        grid_bytes / static_cast<std::uint64_t>(np) / np;
    // 5 N log2(N) flops for the FFT passes, split across processes.
    const double fft_flops = 5.0 * static_cast<double>(points) *
                             std::log2(static_cast<double>(points)) /
                             static_cast<double>(np);
    // Warm-up: initial field evolution (untimed in NPB; kept small).
    co_await r.compute(flops_time(fft_flops / 4, rate));
    for (int it = 0; it < iters; ++it) {
      co_await r.compute(flops_time(fft_flops / 2, rate));
      co_await r.alltoall(per_pair);  // global transpose
      co_await r.compute(flops_time(fft_flops / 2, rate));
      co_await r.allreduce(16);  // checksum
    }
  };
  return {"FT", p.iterations, iters, program};
}

// ---------------------------------------------------------------------------
// CG — conjugate gradient. Processes form a 2-D grid. Each CG iteration
// does a sparse matvec (row-group reductions exchanging vector segments
// of na/row_len doubles, plus a transpose exchange) and two dot-product
// allreduces of 8 bytes — the latency-bound part that makes CG the
// paper's delay-sensitive case.
// ---------------------------------------------------------------------------
NasBenchmark make_cg(const NasConfig& cfg) {
  const CgParams p = cg_params(cfg.cls);
  const int iters = effective_iters(p.outer_iterations, cfg.iterations);
  const double rate = cfg.flops_per_second;
  auto program = [p, iters, rate](mpi::Rank& r) -> sim::Coro<void> {
    const int np = r.size();
    const int rows = static_cast<int>(std::sqrt(static_cast<double>(np)));
    const int row_len = np / rows;
    const std::uint64_t seg_bytes =
        p.na / static_cast<std::uint64_t>(row_len) * 8;
    // Nonzeros per row ~ nonzer * (nonzer + 1); flops = 2 * nnz / np.
    const double nnz = static_cast<double>(p.na) *
                       static_cast<double>(p.nonzer) *
                       (static_cast<double>(p.nonzer) + 1.0);
    const sim::Duration matvec_time = flops_time(2.0 * nnz / np, rate);
    const int row_steps = std::max(
        1, static_cast<int>(std::log2(static_cast<double>(row_len))));
    for (int outer = 0; outer < iters; ++outer) {
      for (int inner = 0; inner < p.inner_cg_iterations; ++inner) {
        co_await r.compute(matvec_time);
        // Row-group sum of the matvec result: log(row_len) exchanges.
        for (int s = 0; s < row_steps; ++s) {
          const int partner = r.rank() ^ (1 << s);
          if (partner < np) {
            mpi::Request sreq = r.isend(partner, seg_bytes, 1000 + s);
            mpi::Request rreq = r.irecv(partner, 1000 + s);
            co_await r.wait(sreq);
            co_await r.wait(rreq);
          }
        }
        // Two dot products per CG iteration: tiny, latency-bound.
        co_await r.allreduce(8);
        co_await r.allreduce(8);
      }
      co_await r.allreduce(8);  // residual norm
    }
  };
  return {"CG", p.outer_iterations, iters, program};
}

// ---------------------------------------------------------------------------
// MG — multigrid V-cycles: halo exchanges that shrink with each level
// (face = (n/level)^2 doubles with 6 neighbours), plus tiny coarse-grid
// traffic. A mix of medium and small messages.
// ---------------------------------------------------------------------------
NasBenchmark make_mg(const NasConfig& cfg) {
  const MgParams p = mg_params(cfg.cls);
  const int iters = effective_iters(p.iterations, cfg.iterations);
  const double rate = cfg.flops_per_second;
  auto program = [p, iters, rate](mpi::Rank& r) -> sim::Coro<void> {
    const int np = r.size();
    const std::uint64_t points = p.n * p.n * p.n;
    const sim::Duration smooth_time =
        flops_time(15.0 * static_cast<double>(points) / np, rate);
    const int levels = static_cast<int>(std::log2(p.n)) - 1;
    for (int it = 0; it < iters; ++it) {
      for (int level = 0; level < levels; ++level) {
        const std::uint64_t edge = std::max<std::uint64_t>(p.n >> level, 2);
        // Face area per process, 8 B/point; 3 dimension exchanges.
        const std::uint64_t face =
            std::max<std::uint64_t>(edge * edge * 8 / np, 16);
        co_await r.compute(smooth_time >> level);
        for (int d = 0; d < 3; ++d) {
          // XOR pairing is symmetric only while in range; out-of-range
          // partners are skipped on both sides.
          const int partner = r.rank() ^ (1 << d);
          if (partner >= np || partner == r.rank()) continue;
          mpi::Request sreq = r.isend(partner, face, 2000 + level * 4 + d);
          mpi::Request rreq = r.irecv(partner, 2000 + level * 4 + d);
          co_await r.wait(sreq);
          co_await r.wait(rreq);
        }
      }
      co_await r.allreduce(8);  // norm
    }
  };
  return {"MG", p.iterations, iters, program};
}

// ---------------------------------------------------------------------------
// EP — embarrassingly parallel: heavy local compute, three small
// allreduces at the end. The delay-insensitive control.
// ---------------------------------------------------------------------------
NasBenchmark make_ep(const NasConfig& cfg) {
  const std::uint64_t pairs = cfg.cls == NasClass::kB   ? 1ull << 30
                              : cfg.cls == NasClass::kA ? 1ull << 28
                                                        : 1ull << 24;
  const double rate = cfg.flops_per_second;
  auto program = [pairs, rate](mpi::Rank& r) -> sim::Coro<void> {
    co_await r.compute(
        flops_time(30.0 * static_cast<double>(pairs) / r.size(), rate));
    for (int i = 0; i < 3; ++i) co_await r.allreduce(80);
  };
  return {"EP", 1, 1, program};
}

// ---------------------------------------------------------------------------
// LU — SSOR with wavefront pipelining. Ranks form a 2-D grid; each of
// the nz k-planes is computed after receiving the plane's boundary rows
// from the north and west neighbours and is then forwarded south/east.
// The messages are tiny and strictly dependent, so every WAN crossing
// sits on the critical path twice per plane — the suite's most
// delay-sensitive pattern.
// ---------------------------------------------------------------------------
namespace {
struct LuParams {
  std::uint64_t n;  // grid edge (cubic)
  int iterations;
};
LuParams lu_params(NasClass c) {
  switch (c) {
    case NasClass::kS: return {12, 50};
    case NasClass::kA: return {64, 250};
    case NasClass::kB: return {102, 250};
  }
  return {102, 250};
}

/// Largest divisor of np that is <= sqrt(np): the process-grid width.
int grid_cols(int np) {
  int best = 1;
  for (int d = 1; d * d <= np; ++d) {
    if (np % d == 0) best = d;
  }
  return best;
}
}  // namespace

NasBenchmark make_lu(const NasConfig& cfg) {
  const LuParams p = lu_params(cfg.cls);
  const int iters = effective_iters(p.iterations, cfg.iterations);
  const double rate = cfg.flops_per_second;
  auto program = [p, iters, rate](mpi::Rank& r) -> sim::Coro<void> {
    const int np = r.size();
    const int cols = grid_cols(np);
    const int rows = np / cols;
    const int my_row = r.rank() / cols;
    const int my_col = r.rank() % cols;
    const int north = my_row > 0 ? r.rank() - cols : -1;
    const int south = my_row < rows - 1 ? r.rank() + cols : -1;
    const int west = my_col > 0 ? r.rank() - 1 : -1;
    const int east = my_col < cols - 1 ? r.rank() + 1 : -1;
    // Boundary row per plane: (n / cols) points x 5 doubles.
    const std::uint64_t row_bytes = std::max<std::uint64_t>(
        p.n / static_cast<std::uint64_t>(cols) * 5 * 8, 40);
    const std::uint64_t nz = p.n;
    // ~150 flops per point per SSOR sweep pair, split over planes.
    const sim::Duration plane_time = flops_time(
        150.0 * static_cast<double>(p.n * p.n) / np, rate);
    for (int it = 0; it < iters; ++it) {
      // Lower-triangular sweep: waves flow from (0,0) to (rows-1,cols-1).
      for (std::uint64_t k = 0; k < nz; ++k) {
        const int tag = static_cast<int>(k % 64);
        if (north >= 0) co_await r.recv(north, 100 + tag);
        if (west >= 0) co_await r.recv(west, 200 + tag);
        co_await r.compute(plane_time);
        if (south >= 0) co_await r.send(south, row_bytes, 100 + tag);
        if (east >= 0) co_await r.send(east, row_bytes, 200 + tag);
      }
      // Upper-triangular sweep: waves flow back.
      for (std::uint64_t k = 0; k < nz; ++k) {
        const int tag = static_cast<int>(k % 64);
        if (south >= 0) co_await r.recv(south, 300 + tag);
        if (east >= 0) co_await r.recv(east, 400 + tag);
        co_await r.compute(plane_time);
        if (north >= 0) co_await r.send(north, row_bytes, 300 + tag);
        if (west >= 0) co_await r.send(west, row_bytes, 400 + tag);
      }
      co_await r.allreduce(40);  // residual norms
    }
  };
  return {"LU", p.iterations, iters, program};
}

// ---------------------------------------------------------------------------
// BT — block-tridiagonal line solves in each dimension plus face halo
// exchanges: medium pipelined messages (a middle ground between FT's
// bulk and LU's trickle).
// ---------------------------------------------------------------------------
namespace {
struct BtParams {
  std::uint64_t n;
  int iterations;
};
BtParams bt_params(NasClass c) {
  switch (c) {
    case NasClass::kS: return {12, 20};
    case NasClass::kA: return {64, 200};
    case NasClass::kB: return {102, 200};
  }
  return {102, 200};
}
}  // namespace

NasBenchmark make_bt(const NasConfig& cfg) {
  const BtParams p = bt_params(cfg.cls);
  const int iters = effective_iters(p.iterations, cfg.iterations);
  const double rate = cfg.flops_per_second;
  auto program = [p, iters, rate](mpi::Rank& r) -> sim::Coro<void> {
    const int np = r.size();
    const int cols = grid_cols(np);
    const int rows = np / cols;
    const int my_row = r.rank() / cols;
    const int my_col = r.rank() % cols;
    // Interface block shipped along a solve line: 25 doubles per cell
    // over the local face.
    const std::uint64_t line_bytes = std::max<std::uint64_t>(
        p.n * p.n / static_cast<std::uint64_t>(np) * 25 * 8, 200);
    const std::uint64_t face_bytes = std::max<std::uint64_t>(
        p.n * p.n / static_cast<std::uint64_t>(np) * 5 * 8, 200);
    const sim::Duration rhs_time = flops_time(
        500.0 * static_cast<double>(p.n * p.n * p.n) / np / 3.0, rate);
    for (int it = 0; it < iters; ++it) {
      co_await r.compute(rhs_time);
      // x-sweep along my row, forward then back-substitution.
      for (int phase = 0; phase < 2; ++phase) {
        const bool fwd = phase == 0;
        const int prev = fwd ? (my_col > 0 ? r.rank() - 1 : -1)
                             : (my_col < cols - 1 ? r.rank() + 1 : -1);
        const int next = fwd ? (my_col < cols - 1 ? r.rank() + 1 : -1)
                             : (my_col > 0 ? r.rank() - 1 : -1);
        if (prev >= 0) co_await r.recv(prev, 500 + phase);
        co_await r.compute(rhs_time / 4);
        if (next >= 0) co_await r.send(next, line_bytes, 500 + phase);
      }
      // y-sweep along my column.
      for (int phase = 0; phase < 2; ++phase) {
        const bool fwd = phase == 0;
        const int prev = fwd ? (my_row > 0 ? r.rank() - cols : -1)
                             : (my_row < rows - 1 ? r.rank() + cols : -1);
        const int next = fwd ? (my_row < rows - 1 ? r.rank() + cols : -1)
                             : (my_row > 0 ? r.rank() - cols : -1);
        if (prev >= 0) co_await r.recv(prev, 510 + phase);
        co_await r.compute(rhs_time / 4);
        if (next >= 0) co_await r.send(next, line_bytes, 510 + phase);
      }
      // Halo exchange of cell faces with the four grid neighbours.
      std::vector<mpi::Request> reqs;
      auto exchange = [&](int partner, int tag) {
        if (partner < 0) return;
        reqs.push_back(r.isend(partner, face_bytes, tag));
        reqs.push_back(r.irecv(partner, tag));
      };
      exchange(my_col > 0 ? r.rank() - 1 : -1, 520);
      exchange(my_col < cols - 1 ? r.rank() + 1 : -1, 520);
      exchange(my_row > 0 ? r.rank() - cols : -1, 521);
      exchange(my_row < rows - 1 ? r.rank() + cols : -1, 521);
      co_await r.wait_all(std::move(reqs));
    }
  };
  return {"BT", p.iterations, iters, program};
}

double run_nas(mpi::Job& job, const NasBenchmark& bench) {
  const double measured = job.execute(bench.program);
  if (bench.run_iterations <= 0 || bench.standard_iterations <= 0 ||
      bench.run_iterations >= bench.standard_iterations) {
    return measured;
  }
  return measured * static_cast<double>(bench.standard_iterations) /
         static_cast<double>(bench.run_iterations);
}

}  // namespace ibwan::apps
