// NAS Parallel Benchmark kernels (communication-accurate models).
//
// Each benchmark issues the *communication pattern and message sizes* of
// the real NPB code (class sizes from the NPB 2.4/3.x specification) and
// models computation as calibrated busy time. This reproduces what
// Figure 12 measures: IS and FT move mostly large messages (bandwidth
// robust across the WAN), CG mixes medium vector exchanges with
// latency-bound dot-product allreduces (degrades with delay), EP hardly
// communicates at all.
//
// The paper profiles exactly this: "IS and FT involve a high percentage
// (100% and 83%) of large messages while CG has ... small and medium".
#pragma once

#include <cstdint>
#include <string>

#include "mpi/mpi.hpp"

namespace ibwan::apps {

enum class NasClass { kS, kA, kB };

struct NasConfig {
  NasClass cls = NasClass::kB;
  /// 0 = the benchmark's standard iteration count; smaller values run a
  /// truncated-but-representative number of timed iterations (results
  /// scale per-iteration).
  int iterations = 0;
  /// Per-process sustained compute speed (2007-era Xeon core).
  double flops_per_second = 4e9;
};

/// A runnable NAS kernel: program + metadata.
struct NasBenchmark {
  std::string name;
  int standard_iterations = 0;
  int run_iterations = 0;
  mpi::Job::Program program;
};

NasBenchmark make_is(const NasConfig& cfg = {});
NasBenchmark make_ft(const NasConfig& cfg = {});
NasBenchmark make_cg(const NasConfig& cfg = {});
NasBenchmark make_mg(const NasConfig& cfg = {});
NasBenchmark make_ep(const NasConfig& cfg = {});
/// LU (SSOR wavefront): tiny pipelined messages — the most
/// latency-sensitive pattern in the suite.
NasBenchmark make_lu(const NasConfig& cfg = {});
/// BT (block-tridiagonal line solves): medium pipelined messages plus
/// face halo exchanges.
NasBenchmark make_bt(const NasConfig& cfg = {});

/// Runs the kernel on the job and returns the projected full-run time in
/// seconds (measured time scaled from run_iterations to
/// standard_iterations).
double run_nas(mpi::Job& job, const NasBenchmark& bench);

}  // namespace ibwan::apps
