#include "sdp/sdp.hpp"

#include <algorithm>
#include <cassert>

namespace ibwan::sdp {

SdpStack::SdpStack(ib::Hca& hca, SdpConfig config)
    : hca_(hca), config_(config), scq_(hca.sim()), rcq_(hca.sim()) {
  scq_.set_callback([this](const ib::Cqe& e) {
    if (auto it = conns_.find(e.qpn); it != conns_.end()) {
      it->second->on_send_cqe(e);
    }
  });
  rcq_.set_callback([this](const ib::Cqe& e) {
    if (auto it = conns_.find(e.qpn); it != conns_.end()) {
      it->second->on_recv_cqe(e);
    }
  });
}

void SdpStack::listen(Port port,
                      std::function<void(SdpConnection&)> on_accept) {
  listeners_[port] = std::move(on_accept);
}

SdpConnection& SdpStack::connect(SdpStack& server, Port port) {
  assert(server.listeners_.count(port) != 0 && "no SDP listener on port");
  ib::RcQp& mine = hca_.create_rc_qp(scq_, rcq_);
  ib::RcQp& theirs = server.hca_.create_rc_qp(server.scq_, server.rcq_);
  mine.connect(server.lid(), theirs.qpn());
  theirs.connect(lid(), mine.qpn());
  for (int i = 0; i < config_.prepost_recvs; ++i) {
    mine.post_recv(ib::RecvWr{});
    theirs.post_recv(ib::RecvWr{});
  }
  auto client_conn =
      std::unique_ptr<SdpConnection>(new SdpConnection(*this, mine));
  SdpConnection& client_ref = *client_conn;
  conns_[mine.qpn()] = std::move(client_conn);
  auto server_conn = std::unique_ptr<SdpConnection>(
      new SdpConnection(server, theirs));
  SdpConnection& server_ref = *server_conn;
  server.conns_[theirs.qpn()] = std::move(server_conn);
  server.listeners_[port](server_ref);
  return client_ref;
}

sim::Time SdpStack::charge_cpu(std::uint64_t bytes) {
  sim::Duration cost = config_.per_msg_cpu;
  if (bytes < config_.zcopy_threshold) {
    cost += sim::duration_ceil(static_cast<double>(bytes) *
                               config_.bcopy_ns_per_byte);
  }
  cpu_busy_ = std::max(sim().now(), cpu_busy_) + cost;
  return cpu_busy_;
}

SdpConnection::SdpConnection(SdpStack& stack, ib::RcQp& qp)
    : stack_(stack), qp_(qp) {}

void SdpConnection::send(std::uint64_t bytes) {
  app_bytes_ += bytes;
  pump();
}

void SdpConnection::pump() {
  const SdpConfig& cfg = stack_.config();
  while (sent_ < app_bytes_) {
    const std::uint64_t seg =
        std::min<std::uint64_t>(cfg.message_bytes, app_bytes_ - sent_);
    sent_ += seg;
    const sim::Time t = stack_.charge_cpu(seg);
    stack_.sim().schedule_at(t, [this, seg, &cfg] {
      qp_.post_send(ib::SendWr{.wr_id = seg,
                               .length = seg + cfg.header_bytes});
    });
  }
}

void SdpConnection::on_send_cqe(const ib::Cqe& cqe) {
  // wr_id carries the payload size of the completed segment.
  acked_ += cqe.wr_id;
  if (on_acked_) on_acked_(acked_);
}

void SdpConnection::on_recv_cqe(const ib::Cqe& cqe) {
  qp_.post_recv(ib::RecvWr{});
  const std::uint64_t payload =
      cqe.byte_len - stack_.config().header_bytes;
  // Receive-path host work, then delivery to the app.
  const sim::Time t = stack_.charge_cpu(payload);
  stack_.sim().schedule_at(t, [this, payload] {
    delivered_ += payload;
    if (on_delivered_) on_delivered_(delivered_);
  });
}

}  // namespace ibwan::sdp
