// Sockets Direct Protocol (SDP).
//
// The era's third sockets option next to IPoIB (the paper's related
// work [19] benchmarks TTCP over SDP/IB through the Longbows): a
// byte-stream socket mapped directly onto an RC channel. Small payloads
// use buffered copy ("bcopy"); large payloads go zero-copy, so SDP
// avoids almost all of the host-stack cost that caps IPoIB — but it
// inherits RC's bounded in-flight window, and with it the WAN
// medium-message cliff.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "sim/simulator.hpp"

namespace ibwan::sdp {

using Port = std::uint16_t;
using net::NodeId;

struct SdpConfig {
  /// Bulk segmentation unit (one RC message per segment).
  std::uint64_t message_bytes = 64 << 10;
  /// Segments of at least this size skip the copy (zcopy path).
  std::uint64_t zcopy_threshold = 16 << 10;
  /// Copy cost on the bcopy path, per byte (both ends).
  double bcopy_ns_per_byte = 0.4;
  /// Socket/SDP per-message processing.
  sim::Duration per_msg_cpu = 800;
  /// SDP BSDH header per message.
  std::uint32_t header_bytes = 16;
  int prepost_recvs = 256;
};

class SdpStack;

class SdpConnection {
 public:
  /// Queues application bytes; segmentation and transmission proceed in
  /// simulated time.
  void send(std::uint64_t bytes);

  void set_on_delivered(std::function<void(std::uint64_t)> cb) {
    on_delivered_ = std::move(cb);
  }
  /// Fires as the cumulative remotely-received byte count advances
  /// (send-side completions).
  void set_on_acked(std::function<void(std::uint64_t)> cb) {
    on_acked_ = std::move(cb);
  }

  std::uint64_t bytes_acked() const { return acked_; }
  std::uint64_t bytes_delivered() const { return delivered_; }

 private:
  friend class SdpStack;
  SdpConnection(SdpStack& stack, ib::RcQp& qp);
  void pump();
  void on_send_cqe(const ib::Cqe& cqe);
  void on_recv_cqe(const ib::Cqe& cqe);

  SdpStack& stack_;
  ib::RcQp& qp_;
  std::uint64_t app_bytes_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t delivered_ = 0;
  std::function<void(std::uint64_t)> on_delivered_;
  std::function<void(std::uint64_t)> on_acked_;
};

/// Per-node SDP endpoint. Connection management is out-of-band (as with
/// the library's other simulated CM exchanges): connect() takes the
/// server stack directly.
class SdpStack {
 public:
  SdpStack(ib::Hca& hca, SdpConfig config = {});

  SdpStack(const SdpStack&) = delete;
  SdpStack& operator=(const SdpStack&) = delete;

  void listen(Port port, std::function<void(SdpConnection&)> on_accept);
  SdpConnection& connect(SdpStack& server, Port port);

  NodeId lid() const { return hca_.lid(); }
  sim::Simulator& sim() { return hca_.sim(); }
  const SdpConfig& config() const { return config_; }

 private:
  friend class SdpConnection;
  /// Host CPU charge for one segment of `bytes` (tx or rx side).
  sim::Time charge_cpu(std::uint64_t bytes);

  ib::Hca& hca_;
  SdpConfig config_;
  ib::Cq scq_;
  ib::Cq rcq_;
  std::map<Port, std::function<void(SdpConnection&)>> listeners_;
  std::map<ib::Qpn, std::unique_ptr<SdpConnection>> conns_;
  sim::Time cpu_busy_ = 0;
};

}  // namespace ibwan::sdp
