#include "tcp/tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::tcp {

// ---------------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------------

TcpStack::TcpStack(ipoib::IpoibDevice& device, TcpConfig defaults)
    : device_(device), defaults_(defaults) {
  device_.set_ip_sink([this](ipoib::IpPacket&& p) { on_ip(std::move(p)); });
}

std::uint32_t TcpStack::effective_mss(const TcpConfig& cfg) const {
  if (cfg.mss != 0) return cfg.mss;
  return device_.config().mtu - 40;  // IP (20) + TCP (20) headers
}

TcpConnection& TcpStack::connect(NodeId dst, Port dst_port,
                                 std::optional<TcpConfig> cfg) {
  const Port local = next_ephemeral_++;
  auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(
      *this, dst, local, dst_port, cfg.value_or(defaults_),
      /*is_client=*/true));
  TcpConnection& ref = *conn;
  conns_[ConnKey{dst, local, dst_port}] = std::move(conn);
  // Active open: SYN, retransmitted with backoff until established
  // (handshake datagrams are as loss-exposed as anything else).
  ref.syn_sent_ = true;
  ref.syn_sent_at_ = sim().now();
  ref.emit(0, 0, /*syn=*/true, /*syn_ack=*/false, /*force_ack=*/false);
  ref.arm_syn_retry();
  return ref;
}

void TcpStack::listen(Port port, std::function<void(TcpConnection&)> cb) {
  listeners_[port] = std::move(cb);
}

void TcpStack::on_ip(ipoib::IpPacket&& pkt) {
  const Segment seg = pkt.l4_as<Segment>();
  const ConnKey key{pkt.src, seg.dst_port, seg.src_port};
  auto it = conns_.find(key);
  if (it == conns_.end()) {
    if (seg.syn && listeners_.count(seg.dst_port) != 0) {
      // Passive open: create the server-side connection.
      auto conn = std::unique_ptr<TcpConnection>(
          new TcpConnection(*this, pkt.src, seg.dst_port, seg.src_port,
                            defaults_, /*is_client=*/false));
      TcpConnection& ref = *conn;
      conns_[key] = std::move(conn);
      ref.on_segment(seg);
      listeners_[seg.dst_port](ref);
      return;
    }
    IBWAN_DEBUG(sim().now(), "tcp", "lid=%u no connection for %u<-%u:%u",
                lid(), seg.dst_port, pkt.src, seg.src_port);
    return;
  }
  it->second->on_segment(seg);
}

void TcpStack::transmit(NodeId dst, const Segment& seg) {
  ipoib::IpPacket pkt;
  pkt.dst = dst;
  pkt.payload_bytes = seg.len;
  pkt.header_bytes = 40;
  pkt.l4 = std::make_shared<Segment>(seg);
  device_.send_ip(std::move(pkt));
}

// ---------------------------------------------------------------------------
// TcpConnection
// ---------------------------------------------------------------------------

TcpConnection::TcpConnection(TcpStack& stack, NodeId peer, Port local_port,
                             Port remote_port, TcpConfig cfg, bool is_client)
    : stack_(stack),
      peer_(peer),
      local_port_(local_port),
      remote_port_(remote_port),
      cfg_(cfg),
      is_client_(is_client) {
  const double mss = stack_.effective_mss(cfg_);
  cwnd_ = mss * cfg_.init_cwnd_segs;
  peer_wnd_ = cfg_.window_bytes;  // refined by the first ack received
  rto_ = std::max<sim::Duration>(cfg_.min_rto, 10 * sim::kMillisecond);

  auto& m = stack_.sim().metrics();
  const std::string scope = "node" + std::to_string(stack_.lid()) + "/tcp";
  using sim::MetricUnit;
  obs_.segs_sent = &m.counter(scope, "segs_sent", MetricUnit::kPackets);
  obs_.segs_received =
      &m.counter(scope, "segs_received", MetricUnit::kPackets);
  obs_.acks_sent = &m.counter(scope, "acks_sent", MetricUnit::kPackets);
  obs_.retransmits = &m.counter(scope, "retransmits", MetricUnit::kPackets);
  obs_.fast_retransmits =
      &m.counter(scope, "fast_retransmits", MetricUnit::kCount);
  obs_.rto_fires = &m.counter(scope, "rto_fires", MetricUnit::kCount);
  obs_.cwnd_stalls = &m.counter(scope, "cwnd_stalls", MetricUnit::kCount);
  obs_.rwnd_stalls = &m.counter(scope, "rwnd_stalls", MetricUnit::kCount);
  obs_.stall_ns = &m.counter(scope, "stall_ns", MetricUnit::kNanoseconds);
  obs_.sack_blocks_advertised =
      &m.counter(scope, "sack_blocks_advertised", MetricUnit::kCount);
  obs_.sack_hole_retransmits =
      &m.counter(scope, "sack_hole_retransmits", MetricUnit::kCount);
  obs_.cwnd_bytes = &m.gauge(scope, "cwnd_bytes", MetricUnit::kBytes);
  obs_.srtt_ns = &m.gauge(scope, "srtt_ns", MetricUnit::kNanoseconds);
  std::snprintf(trace_tag_, sizeof(trace_tag_), "tcp-%u-%u",
                static_cast<unsigned>(stack_.lid()),
                static_cast<unsigned>(local_port_));
}

void TcpConnection::send(std::uint64_t bytes) {
  app_bytes_ += bytes;
  if (established_) pump();
}

void TcpConnection::send_marked(std::uint64_t bytes,
                                std::shared_ptr<const void> marker) {
  app_bytes_ += bytes;
  markers_.emplace_back(app_bytes_, std::move(marker));
  if (established_) pump();
}

void TcpConnection::enter_established() {
  if (established_) return;
  established_ = true;
  if (on_established_) on_established_();
  pump();
}

void TcpConnection::on_segment(const Segment& seg) {
  ++stats_.segs_received;
  obs_.segs_received->add();
  if (seg.syn && !seg.syn_ack) {
    // Server side: answer SYN with SYN|ACK. Data may ride later segments.
    emit(0, 0, /*syn=*/false, /*syn_ack=*/true, /*force_ack=*/false);
    return;
  }
  if (seg.syn_ack) {
    // Client side: handshake done; the ACK is implied by the first
    // data segment or a pure ack. The SYN round trip seeds the RTT
    // estimator so the first data RTO is never below the path RTT.
    peer_wnd_ = seg.wnd;
    const double sample =
        static_cast<double>(stack_.sim().now() - syn_sent_at_);
    srtt_ns_ = sample;
    rttvar_ns_ = sample / 2;
    stats_.srtt_us = srtt_ns_ / 1000.0;
    obs_.srtt_ns->set(static_cast<std::int64_t>(srtt_ns_));
    rto_ = std::clamp<sim::Duration>(
        static_cast<sim::Duration>(3.0 * sample), cfg_.min_rto,
        cfg_.max_rto);
    enter_established();
    if (snd_nxt_ >= app_bytes_) send_pure_ack();
    return;
  }
  // Server completes on first ack/data from the client.
  enter_established();
  if (seg.len > 0) on_data(seg);
  on_ack(seg);
}

void TcpConnection::on_data(const Segment& seg) {
  if (seg.seq == rcv_nxt_) {
    rcv_nxt_ += seg.len;
    if (on_delivered_) on_delivered_(seg.len);
    for (const auto& [offset, marker] : seg.markers) {
      if (offset <= rcv_nxt_ && on_marker_) on_marker_(marker);
    }
    if (cfg_.sack && !ooo_.empty()) {
      drain_ooo();
      // Filling a hole deserves an immediate ack with updated blocks.
      send_pure_ack();
      return;
    }
    ++unacked_segs_;
    maybe_delayed_ack();
  } else if (seg.seq > rcv_nxt_) {
    // A hole upstream. With SACK the data is kept and advertised;
    // without, it is dropped and the dup-ack asks for a full resend.
    if (cfg_.sack) buffer_ooo(seg);
    send_pure_ack();
  } else {
    // Old retransmission; re-ack.
    send_pure_ack();
  }
}

void TcpConnection::buffer_ooo(const Segment& seg) {
  std::uint64_t start = seg.seq;
  std::uint64_t end = seg.seq + seg.len;
  for (const auto& [offset, marker] : seg.markers) {
    ooo_markers_.emplace_back(offset, marker);
  }
  // Merge with overlapping/adjacent ranges.
  auto it = ooo_.lower_bound(start);
  if (it != ooo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = ooo_.erase(prev);
    }
  }
  while (it != ooo_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ooo_.erase(it);
  }
  ooo_[start] = end;
}

void TcpConnection::drain_ooo() {
  auto it = ooo_.begin();
  while (it != ooo_.end() && it->first <= rcv_nxt_) {
    if (it->second > rcv_nxt_) {
      const std::uint64_t newly = it->second - rcv_nxt_;
      rcv_nxt_ = it->second;
      if (on_delivered_) on_delivered_(newly);
    }
    it = ooo_.erase(it);
  }
  flush_ready_markers();
}

void TcpConnection::flush_ready_markers() {
  // Buffered markers fire once their byte is in order; keep stream order.
  std::sort(ooo_markers_.begin(), ooo_markers_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  auto it = ooo_markers_.begin();
  while (it != ooo_markers_.end() && it->first <= rcv_nxt_) {
    if (on_marker_) on_marker_(it->second);
    it = ooo_markers_.erase(it);
  }
}

void TcpConnection::on_ack(const Segment& seg) {
  peer_wnd_ = seg.wnd;
  const double mss = stack_.effective_mss(cfg_);
  // SACK scoreboard upkeep.
  if (cfg_.sack) {
    for (const auto& [start, end] : seg.sack_blocks) {
      auto it = sacked_.lower_bound(start);
      std::uint64_t s = start, e = end;
      if (it != sacked_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= s) {
          s = prev->first;
          e = std::max(e, prev->second);
          it = sacked_.erase(prev);
        }
      }
      while (it != sacked_.end() && it->first <= e) {
        e = std::max(e, it->second);
        it = sacked_.erase(it);
      }
      sacked_[s] = e;
    }
  }
  if (seg.ack > snd_una_) {
    const std::uint64_t newly = seg.ack - snd_una_;
    snd_una_ = seg.ack;
    // An ack for data in flight before a go-back-N rewind can move
    // snd_una past the rewound snd_nxt; transmission resumes from the
    // acked point.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    dup_acks_ = 0;
    episode_resent_.clear();
    while (!sacked_.empty() && sacked_.begin()->second <= snd_una_) {
      sacked_.erase(sacked_.begin());
    }
    while (!markers_.empty() && markers_.front().first <= snd_una_) {
      markers_.pop_front();
    }
    // RTT sample (Karn: only for never-retransmitted probes).
    if (rtt_probe_ && snd_una_ > rtt_probe_->first) {
      const double sample =
          static_cast<double>(stack_.sim().now() - rtt_probe_->second);
      if (srtt_ns_ == 0) {
        srtt_ns_ = sample;
        rttvar_ns_ = sample / 2;
      } else {
        const double err = sample - srtt_ns_;
        srtt_ns_ += 0.125 * err;
        rttvar_ns_ += 0.25 * (std::abs(err) - rttvar_ns_);
      }
      stats_.srtt_us = srtt_ns_ / 1000.0;
      obs_.srtt_ns->set(static_cast<std::int64_t>(srtt_ns_));
      rto_ = std::clamp<sim::Duration>(
          static_cast<sim::Duration>(srtt_ns_ + 4 * rttvar_ns_),
          cfg_.min_rto, cfg_.max_rto);
      rtt_probe_.reset();
    }
    // Congestion control.
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(std::min<std::uint64_t>(
          newly, static_cast<std::uint64_t>(mss)));
    } else {
      cwnd_ += mss * mss / cwnd_;
    }
    disarm_rto();
    if (snd_nxt_ > snd_una_) arm_rto();
    if (on_acked_) on_acked_(snd_una_);
    pump();
  } else if (seg.len == 0 && snd_nxt_ > snd_una_) {
    ++dup_acks_;
    if (cfg_.sack) {
      if (dup_acks_ == 3) {
        // Enter fast recovery once; holes-only retransmission.
        ++stats_.fast_retransmits;
        obs_.fast_retransmits->add();
        stack_.sim().recorder().record(stack_.sim().now(),
                                       sim::TraceKind::kFastRetransmit,
                                       trace_tag_, snd_una_);
        const double flight = static_cast<double>(snd_nxt_ - snd_una_);
        ssthresh_ = std::max(flight / 2, 2 * mss);
        cwnd_ = ssthresh_;
        rtt_probe_.reset();
      }
      if (dup_acks_ >= 3) retransmit_holes();
    } else if (dup_acks_ == 3) {
      // Fast retransmit; go-back-N (no SACK) with multiplicative decrease.
      ++stats_.fast_retransmits;
      obs_.fast_retransmits->add();
      stack_.sim().recorder().record(stack_.sim().now(),
                                     sim::TraceKind::kFastRetransmit,
                                     trace_tag_, snd_una_);
      const double flight = static_cast<double>(snd_nxt_ - snd_una_);
      ssthresh_ = std::max(flight / 2, 2 * mss);
      cwnd_ = ssthresh_;
      dup_acks_ = 0;
      rewind_high_ = std::max(rewind_high_, snd_nxt_);
      snd_nxt_ = snd_una_;
      rtt_probe_.reset();
      pump();
    }
  }
}

void TcpConnection::retransmit_holes() {
  // Resend un-sacked gaps between snd_una and the highest sacked byte,
  // once per recovery episode.
  std::uint64_t cursor = snd_una_;
  for (const auto& [start, end] : sacked_) {
    if (start > cursor && episode_resent_.insert(cursor).second) {
      ++stats_.retransmits;
      obs_.retransmits->add();
      obs_.sack_hole_retransmits->add();
      emit_range(cursor, start);
    }
    cursor = std::max(cursor, end);
  }
  // The rescue retransmission (after RFC 6675's rule 4): a dropped
  // final segment sits above every SACK block, so the hole pass never
  // touches it and it used to wait out a full RTO. Resend only the last
  // segment, once per episode — the rest of the un-sacked tail is
  // usually still in flight, and if it really is lost the SACK this
  // elicits turns it into an ordinary hole for the pass above.
  if (!sacked_.empty() && cursor < snd_nxt_ &&
      episode_resent_.insert(snd_nxt_).second) {
    const std::uint32_t mss = stack_.effective_mss(cfg_);
    const std::uint64_t from =
        std::max(cursor, snd_nxt_ - std::min<std::uint64_t>(mss, snd_nxt_));
    ++stats_.retransmits;
    obs_.retransmits->add();
    obs_.sack_hole_retransmits->add();
    emit_range(from, snd_nxt_);
  }
}

void TcpConnection::emit_range(std::uint64_t from, std::uint64_t to) {
  const std::uint32_t mss = stack_.effective_mss(cfg_);
  while (from < to) {
    const auto len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(mss, to - from));
    emit(from, len, false, false, false);
    from += len;
  }
}

void TcpConnection::pump() {
  const std::uint32_t mss = stack_.effective_mss(cfg_);
  const std::uint64_t wnd = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(cwnd_), peer_wnd_);
  while (snd_nxt_ < app_bytes_ && snd_nxt_ - snd_una_ < wnd) {
    const std::uint64_t room = wnd - (snd_nxt_ - snd_una_);
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {static_cast<std::uint64_t>(mss), app_bytes_ - snd_nxt_, room}));
    if (len == 0) break;
    if (snd_nxt_ < snd_una_ + static_cast<std::uint64_t>(cwnd_)) {
      if (!rtt_probe_) rtt_probe_ = {snd_nxt_, stack_.sim().now()};
    }
    emit(snd_nxt_, len, false, false, false);
    // Anything below the rewind watermark has been on the wire before —
    // this send is a go-back-N retransmission. (snd_nxt_ < snd_una_ can
    // never hold here: the ack path clamps snd_nxt_ up to snd_una_.)
    if (snd_nxt_ < rewind_high_) {
      ++stats_.retransmits;
      obs_.retransmits->add();
    }
    snd_nxt_ += len;
    arm_rto();
  }
  // Sender-stall accounting: data queued but the effective window —
  // min(cwnd, peer rwnd) — is exhausted. Which limit binds tells the
  // per-layer WAN story (rwnd: fig6a's -w knob; cwnd: loss recovery).
  const bool blocked =
      established_ && snd_nxt_ < app_bytes_ && snd_nxt_ - snd_una_ >= wnd;
  if (blocked && !stalled_) {
    stalled_ = true;
    stall_since_ = stack_.sim().now();
    const bool rwnd_limited = static_cast<double>(peer_wnd_) < cwnd_;
    (rwnd_limited ? obs_.rwnd_stalls : obs_.cwnd_stalls)->add();
    stack_.sim().recorder().record(
        stack_.sim().now(),
        rwnd_limited ? sim::TraceKind::kRwndStall : sim::TraceKind::kCwndStall,
        trace_tag_, static_cast<std::uint64_t>(cwnd_), peer_wnd_);
  } else if (!blocked && stalled_) {
    stalled_ = false;
    obs_.stall_ns->add(stack_.sim().now() - stall_since_);
  }
  obs_.cwnd_bytes->set(static_cast<std::int64_t>(cwnd_));
}

void TcpConnection::emit(std::uint64_t seq, std::uint32_t len, bool syn,
                         bool syn_ack, bool /*force_ack*/) {
  Segment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_port_;
  seg.seq = seq;
  seg.len = len;
  seg.ack = rcv_nxt_;
  seg.wnd = cfg_.window_bytes;
  seg.syn = syn;
  seg.syn_ack = syn_ack;
  // Record-marking: ship any message boundaries this segment completes
  // (kept until acked so retransmissions re-carry them).
  for (const auto& [offset, marker] : markers_) {
    if (offset > seq + len) break;
    if (offset > seq) seg.markers.emplace_back(offset, marker);
  }
  ++stats_.segs_sent;
  obs_.segs_sent->add();
  if (len > 0) {
    // Data segments piggyback the current ack state.
    unacked_segs_ = 0;
    if (dack_armed_) {
      stack_.sim().cancel(dack_timer_);
      dack_armed_ = false;
    }
  }
  stack_.transmit(peer_, seg);
}

void TcpConnection::send_pure_ack() {
  ++stats_.acks_sent;
  obs_.acks_sent->add();
  unacked_segs_ = 0;
  if (dack_armed_) {
    stack_.sim().cancel(dack_timer_);
    dack_armed_ = false;
  }
  Segment seg;
  seg.src_port = local_port_;
  seg.dst_port = remote_port_;
  seg.seq = snd_nxt_;
  seg.len = 0;
  seg.ack = rcv_nxt_;
  seg.wnd = cfg_.window_bytes;
  if (cfg_.sack) {
    // Advertise up to three buffered ranges (most recent first is not
    // modeled; any order suffices for the scoreboard).
    int n = 0;
    for (const auto& [start, end] : ooo_) {
      if (++n > 3) break;
      seg.sack_blocks.emplace_back(start, end);
    }
    obs_.sack_blocks_advertised->add(seg.sack_blocks.size());
  }
  stack_.transmit(peer_, seg);
}

void TcpConnection::maybe_delayed_ack() {
  if (unacked_segs_ >= cfg_.ack_every) {
    send_pure_ack();
    return;
  }
  if (!dack_armed_) {
    dack_armed_ = true;
    dack_timer_ = stack_.sim().schedule(cfg_.delayed_ack_timeout, [this] {
      dack_armed_ = false;
      if (unacked_segs_ > 0) send_pure_ack();
    });
  }
}

void TcpConnection::arm_syn_retry() {
  syn_timer_ = stack_.sim().schedule(rto_, [this] {
    if (established_) return;
    ++stats_.retransmits;
    obs_.retransmits->add();
    emit(0, 0, /*syn=*/true, /*syn_ack=*/false, /*force_ack=*/false);
    rto_ = std::min<sim::Duration>(rto_ * 2, cfg_.max_rto);
    arm_syn_retry();
  });
}

void TcpConnection::arm_rto() {
  if (rto_armed_) return;
  rto_armed_ = true;
  rto_timer_ = stack_.sim().schedule(rto_, [this] {
    rto_armed_ = false;
    on_rto();
  });
}

void TcpConnection::disarm_rto() {
  if (!rto_armed_) return;
  stack_.sim().cancel(rto_timer_);
  rto_armed_ = false;
}

void TcpConnection::on_rto() {
  if (snd_nxt_ <= snd_una_) return;  // nothing outstanding
  ++stats_.rto_fires;
  obs_.rto_fires->add();
  stack_.sim().recorder().record(stack_.sim().now(), sim::TraceKind::kTcpRto,
                                 trace_tag_, snd_una_);
  const double mss = stack_.effective_mss(cfg_);
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2, 2 * mss);
  cwnd_ = mss;
  rewind_high_ = std::max(rewind_high_, snd_nxt_);
  snd_nxt_ = snd_una_;  // go-back-N; pump() counts the resends
  rtt_probe_.reset();
  rto_ = std::min<sim::Duration>(rto_ * 2, cfg_.max_rto);  // backoff
  pump();
}

}  // namespace ibwan::tcp
