// TCP over IPoIB.
//
// A byte-stream TCP modeled at segment granularity: sliding window
// bounded by min(cwnd, peer receive window), slow start and congestion
// avoidance (Reno-style), delayed acknowledgements, duplicate-ack fast
// retransmit and an adaptive retransmission timeout with go-back-N
// recovery (no SACK — matching the era's default RHEL stacks).
//
// The receive-window knob is the paper's Figure 6(a) parameter; the
// segment size follows the IPoIB device MTU, which is Figure 7(a)'s
// parameter.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "ipoib/ipoib.hpp"
#include "sim/simulator.hpp"

namespace ibwan::tcp {

using Port = std::uint16_t;
using net::NodeId;

struct TcpConfig {
  /// Receive window / socket buffer in bytes (benchmark -w flag).
  std::uint32_t window_bytes = 1 << 20;
  /// Max segment payload; 0 derives device MTU - 40 (IP+TCP headers).
  std::uint32_t mss = 0;
  /// Initial congestion window, in segments.
  std::uint32_t init_cwnd_segs = 2;
  /// Ack every N data segments (delayed ack), with a timer fallback.
  std::uint32_t ack_every = 2;
  sim::Duration delayed_ack_timeout = 500 * sim::kMicrosecond;
  sim::Duration min_rto = 2 * sim::kMillisecond;
  sim::Duration max_rto = 500 * sim::kMillisecond;
  /// Selective acknowledgment: the receiver buffers out-of-order data
  /// and advertises it; the sender retransmits only the holes. Off by
  /// default (the era's stacks the paper measured ran without it on
  /// IPoIB); the ablation bench quantifies what it would have bought.
  bool sack = false;
};

/// TCP header descriptor carried inside an IpPacket.
struct Segment {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint64_t seq = 0;  // first payload byte
  std::uint32_t len = 0;  // payload bytes
  std::uint64_t ack = 0;  // cumulative ack (next expected byte)
  std::uint32_t wnd = 0;  // advertised receive window
  bool syn = false;
  bool syn_ack = false;
  /// SACK blocks: received-but-not-yet-acked ranges [start, end).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack_blocks;
  /// Stream markers (end_offset, descriptor) completed by this segment.
  /// This is how record-marked protocols (RPC) ride the simulated
  /// stream: the simulator carries no payload bytes, so message
  /// boundaries travel as metadata attached to the segment that carries
  /// the record's final byte.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const void>>> markers;
};

class TcpStack;

class TcpConnection {
 public:
  struct Stats {
    std::uint64_t segs_sent = 0;
    std::uint64_t segs_received = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t rto_fires = 0;
    std::uint64_t fast_retransmits = 0;
    double srtt_us = 0;
  };

  /// Queues `bytes` of application data for transmission.
  void send(std::uint64_t bytes);

  /// Queues `bytes` and marks the end of the record with `marker`, which
  /// pops out at the peer (set_on_marker) once the final byte is
  /// delivered in order. This is RPC record marking.
  void send_marked(std::uint64_t bytes, std::shared_ptr<const void> marker);

  /// Receiver-side: fires once per marker, in stream order.
  void set_on_marker(
      std::function<void(std::shared_ptr<const void>)> cb) {
    on_marker_ = std::move(cb);
  }

  /// Receiver-side: invoked with each chunk of newly delivered in-order
  /// payload bytes.
  void set_on_delivered(std::function<void(std::uint64_t)> cb) {
    on_delivered_ = std::move(cb);
  }
  /// Sender-side: invoked as the cumulative acked byte count advances.
  void set_on_acked(std::function<void(std::uint64_t)> cb) {
    on_acked_ = std::move(cb);
  }
  /// Invoked once when the handshake completes (client side).
  void set_on_established(std::function<void()> cb) {
    on_established_ = std::move(cb);
  }

  bool established() const { return established_; }
  std::uint64_t bytes_delivered() const { return rcv_nxt_; }
  std::uint64_t bytes_acked() const { return snd_una_; }
  double cwnd_bytes() const { return cwnd_; }
  const Stats& stats() const { return stats_; }
  const TcpConfig& config() const { return cfg_; }

 private:
  friend class TcpStack;
  TcpConnection(TcpStack& stack, NodeId peer, Port local_port,
                Port remote_port, TcpConfig cfg, bool is_client);

  void on_segment(const Segment& seg);
  void on_data(const Segment& seg);
  void on_ack(const Segment& seg);
  void buffer_ooo(const Segment& seg);
  void drain_ooo();
  void flush_ready_markers();
  void retransmit_holes();
  void emit_range(std::uint64_t from, std::uint64_t to);
  void arm_syn_retry();
  void pump();
  void emit(std::uint64_t seq, std::uint32_t len, bool syn, bool syn_ack,
            bool force_ack);
  void send_pure_ack();
  void maybe_delayed_ack();
  void enter_established();
  void arm_rto();
  void disarm_rto();
  void on_rto();

  TcpStack& stack_;
  NodeId peer_;
  Port local_port_;
  Port remote_port_;
  TcpConfig cfg_;
  bool is_client_;
  bool established_ = false;
  bool syn_sent_ = false;
  sim::Time syn_sent_at_ = 0;
  sim::EventId syn_timer_ = 0;

  // Sender.
  std::uint64_t app_bytes_ = 0;  // total bytes the app has queued
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  /// Highest snd_nxt_ reached before any go-back-N rewind; sends below
  /// it are retransmissions (counted in Stats::retransmits by pump()).
  std::uint64_t rewind_high_ = 0;
  double cwnd_ = 0;
  double ssthresh_ = 1e18;
  std::uint32_t peer_wnd_ = 0;
  int dup_acks_ = 0;
  sim::EventId rto_timer_ = 0;
  bool rto_armed_ = false;
  sim::Duration rto_ = 0;
  double srtt_ns_ = 0;
  double rttvar_ns_ = 0;
  std::optional<std::pair<std::uint64_t, sim::Time>> rtt_probe_;

  // Receiver.
  std::uint64_t rcv_nxt_ = 0;
  std::uint32_t unacked_segs_ = 0;
  sim::EventId dack_timer_ = 0;
  bool dack_armed_ = false;
  /// SACK receiver: buffered out-of-order ranges (start -> end, merged)
  /// and the markers they carried.
  std::map<std::uint64_t, std::uint64_t> ooo_;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const void>>>
      ooo_markers_;

  // SACK sender scoreboard.
  std::map<std::uint64_t, std::uint64_t> sacked_;
  std::set<std::uint64_t> episode_resent_;

  std::function<void(std::uint64_t)> on_delivered_;
  std::function<void(std::uint64_t)> on_acked_;
  std::function<void()> on_established_;
  std::function<void(std::shared_ptr<const void>)> on_marker_;
  /// Sender-side pending markers, ascending by end offset; entries are
  /// dropped once cumulatively acked.
  std::deque<std::pair<std::uint64_t, std::shared_ptr<const void>>>
      markers_;
  Stats stats_;

  // Registered metrics (docs/METRICS.md §tcp); scope "node<lid>/tcp".
  struct Obs {
    sim::Counter* segs_sent;
    sim::Counter* segs_received;
    sim::Counter* acks_sent;
    sim::Counter* retransmits;
    sim::Counter* fast_retransmits;
    sim::Counter* rto_fires;
    sim::Counter* cwnd_stalls;
    sim::Counter* rwnd_stalls;
    sim::Counter* stall_ns;
    sim::Counter* sack_blocks_advertised;
    sim::Counter* sack_hole_retransmits;
    sim::Gauge* cwnd_bytes;
    sim::Gauge* srtt_ns;
  };
  Obs obs_;
  char trace_tag_[15];  // "tcp-<lid>-<port>"
  // Sender-stall tracking: stalled whenever queued app data cannot move
  // because min(cwnd, peer window) is exhausted (fig6's WAN bottleneck).
  bool stalled_ = false;
  sim::Time stall_since_ = 0;
};

/// Per-node TCP endpoint: demultiplexes segments from the IPoIB device
/// to connections, owns ports.
class TcpStack {
 public:
  TcpStack(ipoib::IpoibDevice& device, TcpConfig defaults = {});

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Active open. The returned connection buffers sends until the
  /// handshake completes.
  TcpConnection& connect(NodeId dst, Port dst_port,
                         std::optional<TcpConfig> cfg = std::nullopt);

  /// Passive open: `on_accept` fires with each new established
  /// connection on `port`.
  void listen(Port port, std::function<void(TcpConnection&)> on_accept);

  NodeId lid() const { return device_.lid(); }
  sim::Simulator& sim() { return device_.sim(); }
  ipoib::IpoibDevice& device() { return device_; }
  std::uint32_t effective_mss(const TcpConfig& cfg) const;

 private:
  friend class TcpConnection;
  struct ConnKey {
    NodeId peer;
    Port local;
    Port remote;
    bool operator<(const ConnKey& o) const {
      if (peer != o.peer) return peer < o.peer;
      if (local != o.local) return local < o.local;
      return remote < o.remote;
    }
  };

  void on_ip(ipoib::IpPacket&& pkt);
  void transmit(NodeId dst, const Segment& seg);

  ipoib::IpoibDevice& device_;
  TcpConfig defaults_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> conns_;
  std::map<Port, std::function<void(TcpConnection&)>> listeners_;
  Port next_ephemeral_ = 40000;
};

}  // namespace ibwan::tcp
