#include <cassert>
#include <memory>
#include <utility>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "sim/log.hpp"

namespace ibwan::ib {

UdQp::UdQp(Hca& hca, Qpn qpn, Cq& send_cq, Cq& recv_cq)
    : QpBase(hca, qpn, send_cq, recv_cq) {
  auto& m = hca_.sim().metrics();
  const std::string scope = "node" + std::to_string(hca_.lid()) + "/ib.ud";
  using sim::MetricUnit;
  obs_sent_ = &m.counter(scope, "datagrams_sent", MetricUnit::kPackets);
  obs_received_ =
      &m.counter(scope, "datagrams_received", MetricUnit::kPackets);
  obs_dropped_ =
      &m.counter(scope, "drops_no_recv", MetricUnit::kPackets);
  obs_bytes_sent_ = &m.counter(scope, "bytes_sent", MetricUnit::kBytes);
}

void UdQp::post_send(const SendWr& wr, UdDest dest) {
  assert(wr.opcode == Opcode::kSend && "UD supports channel semantics only");
  assert(wr.length <= hca_.config().mtu && "UD datagram exceeds path MTU");
  auto pkt = std::make_shared<IbPacket>();
  pkt->type = IbPacketType::kData;
  pkt->dst_qpn = dest.qpn;
  pkt->src_qpn = qpn_;
  pkt->op = Opcode::kSend;
  pkt->payload_bytes = static_cast<std::uint32_t>(wr.length);
  pkt->first = pkt->last = true;
  pkt->total_length = wr.length;
  pkt->imm = wr.imm;
  pkt->app_payload = wr.app_payload;
  ++stats_.datagrams_sent;
  stats_.bytes_sent += wr.length;
  obs_sent_->add();
  obs_bytes_sent_->add(wr.length);
  // UD completion semantics: the WQE is done once the datagram is on the
  // wire — no acknowledgement exists. This is what makes Figure 4's UD
  // bandwidth independent of WAN delay.
  const std::uint64_t wr_id = wr.wr_id;
  const std::uint64_t len = wr.length;
  auto on_wire = [this, wr_id, len] {
    send_cq_->push_after(hca_.config().cqe_latency,
                         Cqe{.type = CqeType::kSendComplete,
                             .wr_id = wr_id,
                             .qpn = qpn_,
                             .byte_len = len});
  };
  hca_.transmit(dest.lid, std::move(pkt),
                static_cast<std::uint32_t>(wr.length) + kUdHeaderBytes,
                /*first_of_msg=*/true, std::move(on_wire));
}

void UdQp::post_recv(const RecvWr& wr) { rq_.push_back(wr); }

void UdQp::handle_packet(const IbPacket& pkt, Lid src_lid) {
  assert(pkt.type == IbPacketType::kData);
  if (rq_.empty()) {
    // No receive posted: the HCA silently drops the datagram.
    ++stats_.datagrams_dropped_no_recv;
    obs_dropped_->add();
    IBWAN_DEBUG(hca_.sim().now(), "ud-qp", "qpn=%u drop (no recv posted)",
                qpn_);
    return;
  }
  const RecvWr r = rq_.front();
  rq_.pop_front();
  ++stats_.datagrams_received;
  obs_received_->add();
  const HcaConfig& cfg = hca_.config();
  recv_cq_->push_after(cfg.recv_match_overhead + cfg.cqe_latency,
                       Cqe{.type = CqeType::kRecvComplete,
                           .wr_id = r.wr_id,
                           .qpn = qpn_,
                           .byte_len = pkt.total_length,
                           .imm = pkt.imm,
                           .src_lid = src_lid,
                           .src_qpn = pkt.src_qpn,
                           .app_payload = pkt.app_payload});
}

}  // namespace ibwan::ib
