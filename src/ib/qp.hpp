// Queue pairs: Reliable Connected (RC) and Unreliable Datagram (UD).
//
// RC implements the transport behaviour the paper's WAN results hinge on:
// MTU segmentation, PSN sequencing, cumulative ACK/NAK with go-back-N
// retransmission, a bounded in-flight message window, RDMA write (with
// and without immediate) and RDMA read. UD is fire-and-forget, one MTU
// per datagram, no acknowledgements — which is exactly why its WAN
// bandwidth is delay-independent (Figure 4).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ib/cq.hpp"
#include "ib/verbs.hpp"
#include "ib/wire.hpp"
#include "sim/simulator.hpp"

namespace ibwan::ib {

class Hca;
class RcQp;

/// Shared receive queue: a pool of receive WQEs consumed by any RC QP
/// attached to it (how middleware scales receive buffering across many
/// connections).
class Srq {
 public:
  void post_recv(const RecvWr& wr);
  void attach(RcQp* qp) { qps_.push_back(qp); }
  std::size_t depth() const { return q_.size(); }

 private:
  friend class RcQp;
  std::deque<RecvWr> q_;
  std::vector<RcQp*> qps_;
};

class QpBase {
 public:
  QpBase(Hca& hca, Qpn qpn, Cq& send_cq, Cq& recv_cq)
      : hca_(hca), qpn_(qpn), send_cq_(&send_cq), recv_cq_(&recv_cq) {}
  virtual ~QpBase() = default;

  QpBase(const QpBase&) = delete;
  QpBase& operator=(const QpBase&) = delete;

  Qpn qpn() const { return qpn_; }

  /// Inbound packet dispatch (called by the owning HCA's receive engine).
  virtual void handle_packet(const IbPacket& pkt, Lid src_lid) = 0;

 protected:
  Hca& hca_;
  Qpn qpn_;
  Cq* send_cq_;
  Cq* recv_cq_;
};

/// Reliable Connected queue pair.
class RcQp : public QpBase {
 public:
  struct Stats {
    std::uint64_t msgs_sent = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t pkts_retransmitted = 0;
    std::uint64_t naks_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t rto_fires = 0;
    std::uint64_t retries_exhausted = 0;  // error-state transitions
    std::uint64_t flushed_wqes = 0;       // WQEs completed with success=false
    /// Send/RDMA-write WQEs completed with success=true. Conservation
    /// (src/check/oracles.cpp): on a drained, fault-free run with no
    /// RDMA reads, send_completions == msgs_sent; in general
    /// send_completions <= msgs_sent (internal read responses and
    /// error-state flushes account for the difference).
    std::uint64_t send_completions = 0;
  };

  RcQp(Hca& hca, Qpn qpn, Cq& send_cq, Cq& recv_cq);
  ~RcQp() override;

  /// One-sided connection setup (LID + QPN exchange is assumed done
  /// out-of-band by the subnet/communication manager).
  void connect(Lid remote_lid, Qpn remote_qpn);
  bool connected() const { return remote_qpn_ != 0; }
  Lid remote_lid() const { return remote_lid_; }

  void post_send(const SendWr& wr);
  void post_recv(const RecvWr& wr);

  /// Attaches a shared receive queue; incoming sends consume from it
  /// when the QP's own receive queue is empty.
  void set_srq(Srq* srq) {
    srq_ = srq;
    srq->attach(this);
  }

  /// Observer for completed inbound RDMA writes (address, byte count,
  /// immediate-present). Fires once per write message, at placement time.
  void set_rdma_write_listener(
      std::function<void(std::uint64_t, std::uint64_t, bool)> cb) {
    rdma_listener_ = std::move(cb);
  }

  const Stats& stats() const { return stats_; }
  std::size_t send_queue_depth() const {
    return sq_.size() + inflight_.size();
  }

  /// True once retry-count exhaustion moved the QP to the error state:
  /// every outstanding WQE has been flushed with success=false and
  /// further posts complete immediately the same way.
  bool in_error() const { return error_; }

  void handle_packet(const IbPacket& pkt, Lid src_lid) override;

 private:
  struct InflightMsg {
    SendWr wr;
    std::uint64_t msg_seq = 0;
    std::uint64_t start_psn = 0;
    std::uint64_t end_psn = 0;  // inclusive
    bool internal = false;      // read responses complete no local CQE
    sim::Time sent_at = 0;      // first emission time (ack-latency metric)
  };
  struct IncomingMsg {
    std::uint64_t msg_seq = 0;
    Opcode op = Opcode::kSend;
    std::uint64_t total_length = 0;
    std::uint64_t received = 0;
    std::uint64_t remote_addr = 0;
    std::uint32_t imm = 0;
    bool has_imm = false;
    std::uint64_t read_wr_id = 0;
    std::uint64_t atomic_value = 0;
    std::uint64_t atomic_compare = 0;
    std::shared_ptr<const void> app_payload;
  };
  struct PendingRead {
    SendWr wr;
    sim::EventId retry_timer = 0;
    int retries = 0;
  };

  friend class Srq;
  void try_transmit();
  void start_message(const SendWr& wr, bool internal,
                     std::uint64_t read_wr_id);
  void emit_packets(const InflightMsg& m, std::uint64_t from_psn,
                    std::uint64_t read_wr_id);
  void deliver_message(const IncomingMsg& m);
  void match_receives();
  void send_ack(IbPacketType type);
  void handle_ack(std::uint64_t ack_psn);
  void retransmit_from(std::uint64_t psn);
  void arm_rto();
  void disarm_rto();
  void issue_read(const SendWr& wr);
  void send_read_request(const SendWr& wr, int retries);
  void enter_error();
  void flush_wqe(CqeType type, const SendWr& wr);

  // --- Requester / sender state ---
  Lid remote_lid_ = 0;
  Qpn remote_qpn_ = 0;
  std::deque<SendWr> sq_;
  std::deque<InflightMsg> inflight_;
  std::uint64_t next_msg_seq_ = 0;
  std::uint64_t next_psn_ = 0;
  std::uint64_t snd_una_ = 0;  // oldest unacked PSN
  sim::EventId rto_timer_ = 0;
  bool rto_armed_ = false;
  int rto_retries_ = 0;  // consecutive fires with no ack progress
  bool error_ = false;
  // Maps in-flight read wr_id -> pending request (bounded by
  // rc_max_outstanding_reads; excess queued in read_queue_).
  std::deque<SendWr> read_queue_;
  std::deque<PendingRead> pending_reads_;
  /// Responder side: read ids with an active/queued response stream, so
  /// retried requests are not served twice.
  std::unordered_set<std::uint64_t> active_read_resps_;

  // --- Responder / receiver state ---
  std::uint64_t expected_psn_ = 0;
  std::optional<IncomingMsg> assembling_;
  std::uint32_t pkts_since_ack_ = 0;
  bool nak_outstanding_ = false;
  std::deque<RecvWr> rq_;
  Srq* srq_ = nullptr;
  std::deque<IncomingMsg> unclaimed_;  // sends that arrived before a recv
  std::function<void(std::uint64_t, std::uint64_t, bool)> rdma_listener_;
  /// Requester-side atomics awaiting their response: wr_id -> request.
  std::unordered_map<std::uint64_t, SendWr> pending_atomics_;

  Stats stats_;

  // Registered metrics (docs/METRICS.md §ib.rc); scope "node<lid>/ib.rc".
  struct Obs {
    sim::Counter* msgs_sent;
    sim::Counter* bytes_sent;
    sim::Counter* pkts_retransmitted;
    sim::Counter* acks_sent;
    sim::Counter* naks_sent;
    sim::Counter* rto_fires;
    sim::Counter* retries_exhausted;
    sim::Counter* flushed_wqes;
    sim::Counter* send_completions;
    sim::Counter* window_stalls;
    sim::Counter* window_stall_ns;
    sim::Gauge* outstanding_wqes;
    sim::Histogram* ack_ns;
  };
  Obs obs_;
  char trace_tag_[12];  // "rc-qp<N>"
  // Send-window stall tracking: stalled whenever the SQ is non-empty but
  // the bounded in-flight window is full (the fig5 WAN bottleneck).
  bool win_stalled_ = false;
  sim::Time win_stall_since_ = 0;
};

/// Unreliable Datagram queue pair.
class UdQp : public QpBase {
 public:
  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t datagrams_dropped_no_recv = 0;
    std::uint64_t bytes_sent = 0;
  };

  UdQp(Hca& hca, Qpn qpn, Cq& send_cq, Cq& recv_cq);

  /// Sends one datagram (payload must fit the path MTU).
  void post_send(const SendWr& wr, UdDest dest);
  void post_recv(const RecvWr& wr);

  const Stats& stats() const { return stats_; }

  void handle_packet(const IbPacket& pkt, Lid src_lid) override;

 private:
  std::deque<RecvWr> rq_;
  Stats stats_;
  // Registered metrics (docs/METRICS.md §ib.ud); scope "node<lid>/ib.ud".
  sim::Counter* obs_sent_ = nullptr;
  sim::Counter* obs_received_ = nullptr;
  sim::Counter* obs_dropped_ = nullptr;
  sim::Counter* obs_bytes_sent_ = nullptr;
};

}  // namespace ibwan::ib
