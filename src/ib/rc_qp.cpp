#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "sim/log.hpp"

namespace ibwan::ib {

namespace {
/// Packets needed for a message of `len` payload bytes (min 1: zero-length
/// messages still occupy one packet on the wire).
std::uint64_t packet_count(std::uint64_t len, std::uint32_t mtu) {
  return len == 0 ? 1 : (len + mtu - 1) / mtu;
}

bool is_atomic(Opcode op) {
  return op == Opcode::kFetchAdd || op == Opcode::kCompareSwap;
}

/// Atomics and their replies travel as fixed-size control messages
/// inside the reliable stream (which gives them exactly-once execution).
constexpr std::uint64_t kAtomicMsgBytes = 32;
}  // namespace

void Srq::post_recv(const RecvWr& wr) {
  q_.push_back(wr);
  // A refill may unblock any attached QP holding unclaimed messages.
  for (RcQp* qp : qps_) qp->match_receives();
}

RcQp::RcQp(Hca& hca, Qpn qpn, Cq& send_cq, Cq& recv_cq)
    : QpBase(hca, qpn, send_cq, recv_cq) {
  auto& m = hca_.sim().metrics();
  const std::string scope = "node" + std::to_string(hca_.lid()) + "/ib.rc";
  using sim::MetricUnit;
  obs_.msgs_sent = &m.counter(scope, "msgs_sent", MetricUnit::kMessages);
  obs_.bytes_sent = &m.counter(scope, "bytes_sent", MetricUnit::kBytes);
  obs_.pkts_retransmitted =
      &m.counter(scope, "pkts_retransmitted", MetricUnit::kPackets);
  obs_.acks_sent = &m.counter(scope, "acks_sent", MetricUnit::kPackets);
  obs_.naks_sent = &m.counter(scope, "naks_sent", MetricUnit::kPackets);
  obs_.rto_fires = &m.counter(scope, "rto_fires", MetricUnit::kCount);
  obs_.retries_exhausted =
      &m.counter(scope, "retries_exhausted", MetricUnit::kCount);
  obs_.flushed_wqes =
      &m.counter(scope, "flushed_wqes", MetricUnit::kMessages);
  obs_.send_completions =
      &m.counter(scope, "send_completions", MetricUnit::kMessages);
  obs_.window_stalls =
      &m.counter(scope, "window_stalls", MetricUnit::kCount);
  obs_.window_stall_ns =
      &m.counter(scope, "window_stall_ns", MetricUnit::kNanoseconds);
  obs_.outstanding_wqes =
      &m.gauge(scope, "outstanding_wqes", MetricUnit::kMessages);
  obs_.ack_ns = &m.histogram(scope, "ack_ns", MetricUnit::kNanoseconds);
  std::snprintf(trace_tag_, sizeof(trace_tag_), "rc-qp%u", qpn_);
}

RcQp::~RcQp() {
  disarm_rto();
  for (auto& pr : pending_reads_) hca_.sim().cancel(pr.retry_timer);
}

void RcQp::connect(Lid remote_lid, Qpn remote_qpn) {
  assert(remote_qpn != 0 && "QPN 0 is reserved");
  remote_lid_ = remote_lid;
  remote_qpn_ = remote_qpn;
}

void RcQp::post_send(const SendWr& wr) {
  assert(connected() && "post_send on unconnected RC QP");
  if (error_) {
    // Error state: complete immediately, flushed.
    flush_wqe(wr.opcode == Opcode::kRdmaRead ? CqeType::kRdmaReadComplete
              : is_atomic(wr.opcode)         ? CqeType::kAtomicComplete
                                             : CqeType::kSendComplete,
              wr);
    return;
  }
  if (wr.opcode == Opcode::kRdmaRead) {
    issue_read(wr);
    return;
  }
  if (is_atomic(wr.opcode)) {
    SendWr req = wr;
    req.length = kAtomicMsgBytes;
    pending_atomics_[req.wr_id] = req;
    sq_.push_back(req);
    try_transmit();
    return;
  }
  sq_.push_back(wr);
  try_transmit();
}

void RcQp::post_recv(const RecvWr& wr) {
  rq_.push_back(wr);
  match_receives();
}

// ---------------------------------------------------------------------------
// Requester side.
// ---------------------------------------------------------------------------

void RcQp::try_transmit() {
  const int window = hca_.config().rc_max_inflight_msgs;
  while (static_cast<int>(inflight_.size()) < window && !sq_.empty()) {
    if (win_stalled_) {
      // The window just reopened; account the time the SQ sat blocked.
      win_stalled_ = false;
      const sim::Duration stalled = hca_.sim().now() - win_stall_since_;
      obs_.window_stall_ns->add(stalled);
      hca_.sim().recorder().record(hca_.sim().now(),
                                   sim::TraceKind::kWindowResume, trace_tag_,
                                   stalled);
    }
    SendWr wr = sq_.front();
    sq_.pop_front();
    start_message(wr, /*internal=*/false, /*read_wr_id=*/0);
  }
  if (!win_stalled_ && !sq_.empty() &&
      static_cast<int>(inflight_.size()) >= window) {
    win_stalled_ = true;
    win_stall_since_ = hca_.sim().now();
    obs_.window_stalls->add();
    hca_.sim().recorder().record(hca_.sim().now(),
                                 sim::TraceKind::kWindowStall, trace_tag_,
                                 sq_.size(), inflight_.size());
  }
  obs_.outstanding_wqes->set(static_cast<std::int64_t>(inflight_.size()));
}

void RcQp::start_message(const SendWr& wr, bool internal,
                         std::uint64_t read_wr_id) {
  if (read_wr_id == 0 &&
      (is_atomic(wr.opcode) || wr.opcode == Opcode::kAtomicResp)) {
    read_wr_id = wr.wr_id;  // atomics correlate request and response
  }
  const std::uint32_t mtu = hca_.config().mtu;
  const std::uint64_t pkts = packet_count(wr.length, mtu);
  InflightMsg m{.wr = wr,
                .msg_seq = next_msg_seq_++,
                .start_psn = next_psn_,
                .end_psn = next_psn_ + pkts - 1,
                .internal = internal,
                .sent_at = hca_.sim().now()};
  next_psn_ += pkts;
  inflight_.push_back(m);
  ++stats_.msgs_sent;
  stats_.bytes_sent += wr.length;
  obs_.msgs_sent->add();
  obs_.bytes_sent->add(wr.length);
  emit_packets(m, m.start_psn, read_wr_id);
  arm_rto();
}

void RcQp::emit_packets(const InflightMsg& m, std::uint64_t from_psn,
                        std::uint64_t read_wr_id) {
  const std::uint32_t mtu = hca_.config().mtu;
  for (std::uint64_t psn = from_psn; psn <= m.end_psn; ++psn) {
    const std::uint64_t idx = psn - m.start_psn;
    const std::uint64_t offset = idx * mtu;
    const std::uint32_t payload = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(mtu, m.wr.length - offset));
    auto pkt = std::make_shared<IbPacket>();
    pkt->type = IbPacketType::kData;
    pkt->dst_qpn = remote_qpn_;
    pkt->src_qpn = qpn_;
    pkt->op = m.wr.opcode;
    pkt->msg_seq = m.msg_seq;
    pkt->psn = psn;
    pkt->payload_bytes = payload;
    pkt->first = (psn == m.start_psn);
    pkt->last = (psn == m.end_psn);
    pkt->offset = offset;
    pkt->remote_addr = m.wr.remote_addr;
    pkt->total_length = m.wr.length;
    pkt->imm = m.wr.imm;
    pkt->has_imm = (m.wr.opcode == Opcode::kSend ||
                    m.wr.opcode == Opcode::kRdmaWriteWithImm);
    pkt->read_wr_id = read_wr_id;
    pkt->atomic_value = m.wr.atomic_operand;
    pkt->atomic_compare = m.wr.atomic_compare;
    if (pkt->last) pkt->app_payload = m.wr.app_payload;
    hca_.transmit(remote_lid_, std::move(pkt), payload + kRcHeaderBytes,
                  /*first_of_msg=*/psn == m.start_psn);
  }
}

void RcQp::handle_ack(std::uint64_t ack_psn) {
  if (ack_psn <= snd_una_) return;  // stale
  snd_una_ = ack_psn;
  rto_retries_ = 0;  // the wire is moving again
  bool completed_any = false;
  std::uint64_t completed_msgs = 0;
  while (!inflight_.empty() && inflight_.front().end_psn < ack_psn) {
    const InflightMsg m = inflight_.front();
    inflight_.pop_front();
    completed_any = true;
    ++completed_msgs;
    obs_.ack_ns->observe(hca_.sim().now() - m.sent_at);
    if (m.internal) {
      // A fully-acked read response; allow future requests for this id.
      active_read_resps_.erase(m.wr.wr_id);
    }
    if (is_atomic(m.wr.opcode)) {
      // The atomic request is on the wire reliably; its completion
      // comes with the kAtomicResp message, not the ack.
      continue;
    }
    if (!m.internal) {
      ++stats_.send_completions;
      obs_.send_completions->add();
      send_cq_->push_after(hca_.config().cqe_latency,
                           Cqe{.type = CqeType::kSendComplete,
                               .wr_id = m.wr.wr_id,
                               .qpn = qpn_,
                               .byte_len = m.wr.length});
    }
  }
  if (sim::FlightRecorder& fr = hca_.sim().recorder(); fr.armed())
    fr.record(hca_.sim().now(), sim::TraceKind::kAckRecv, trace_tag_,
              ack_psn, completed_msgs);
  if (completed_any) {
    // Ack progress: restart the retransmission clock.
    disarm_rto();
    arm_rto();
    try_transmit();
  }
}

void RcQp::retransmit_from(std::uint64_t psn) {
  for (const InflightMsg& m : inflight_) {
    if (m.end_psn < psn) continue;
    const std::uint64_t from = std::max(psn, m.start_psn);
    stats_.pkts_retransmitted += m.end_psn - from + 1;
    obs_.pkts_retransmitted->add(m.end_psn - from + 1);
    hca_.sim().recorder().record(hca_.sim().now(), sim::TraceKind::kRetransmit,
                                 trace_tag_, from, next_psn_);
    // Read/atomic traffic must re-carry its correlation id.
    const bool correlated = m.wr.opcode == Opcode::kRdmaReadResp ||
                            m.wr.opcode == Opcode::kAtomicResp ||
                            is_atomic(m.wr.opcode);
    emit_packets(m, from, correlated ? m.wr.wr_id : 0);
  }
}

void RcQp::arm_rto() {
  if (rto_armed_ || inflight_.empty()) return;
  rto_armed_ = true;
  rto_timer_ = hca_.sim().schedule(hca_.config().rto, [this] {
    rto_armed_ = false;
    if (inflight_.empty()) return;
    ++stats_.rto_fires;
    obs_.rto_fires->add();
    hca_.sim().recorder().record(hca_.sim().now(), sim::TraceKind::kRtoFire,
                                 trace_tag_, snd_una_);
    if (++rto_retries_ > hca_.config().rc_retry_count) {
      enter_error();
      return;
    }
    IBWAN_WARN(hca_.sim().now(), "rc-qp", "qpn=%u RTO, resend from psn=%llu",
               qpn_, static_cast<unsigned long long>(snd_una_));
    retransmit_from(snd_una_);
    arm_rto();
  });
}

void RcQp::disarm_rto() {
  if (!rto_armed_) return;
  hca_.sim().cancel(rto_timer_);
  rto_armed_ = false;
}

void RcQp::flush_wqe(CqeType type, const SendWr& wr) {
  ++stats_.flushed_wqes;
  obs_.flushed_wqes->add();
  send_cq_->push_after(hca_.config().cqe_latency, Cqe{.type = type,
                                                      .wr_id = wr.wr_id,
                                                      .qpn = qpn_,
                                                      .byte_len = wr.length,
                                                      .success = false});
}

void RcQp::enter_error() {
  if (error_) return;
  error_ = true;
  ++stats_.retries_exhausted;
  obs_.retries_exhausted->add();
  const std::uint64_t outstanding = inflight_.size() + sq_.size() +
                                    pending_reads_.size() +
                                    read_queue_.size() +
                                    pending_atomics_.size();
  hca_.sim().recorder().record(hca_.sim().now(), sim::TraceKind::kQpError,
                               trace_tag_, snd_una_, outstanding);
  IBWAN_WARN(hca_.sim().now(), "rc-qp",
             "qpn=%u retry count exhausted, flushing %llu WQEs", qpn_,
             static_cast<unsigned long long>(outstanding));
  disarm_rto();
  // Flush every requester-side WQE with an error completion, oldest
  // first. Atomics complete through pending_atomics_ (their inflight/SQ
  // entry carries the same wr) and internal messages never complete
  // locally.
  for (const InflightMsg& m : inflight_) {
    if (m.internal) {
      active_read_resps_.erase(m.wr.wr_id);
      continue;
    }
    if (is_atomic(m.wr.opcode)) continue;
    flush_wqe(CqeType::kSendComplete, m.wr);
  }
  inflight_.clear();
  for (const SendWr& wr : sq_) {
    if (is_atomic(wr.opcode)) continue;
    flush_wqe(CqeType::kSendComplete, wr);
  }
  sq_.clear();
  for (const PendingRead& pr : pending_reads_) {
    hca_.sim().cancel(pr.retry_timer);
    flush_wqe(CqeType::kRdmaReadComplete, pr.wr);
  }
  pending_reads_.clear();
  for (const SendWr& wr : read_queue_) {
    flush_wqe(CqeType::kRdmaReadComplete, wr);
  }
  read_queue_.clear();
  // Deterministic flush order for the atomics map: by wr_id.
  std::vector<std::uint64_t> atomic_ids;
  atomic_ids.reserve(pending_atomics_.size());
  for (const auto& [id, wr] : pending_atomics_) atomic_ids.push_back(id);
  std::sort(atomic_ids.begin(), atomic_ids.end());
  for (std::uint64_t id : atomic_ids) {
    flush_wqe(CqeType::kAtomicComplete, pending_atomics_[id]);
  }
  pending_atomics_.clear();
  if (win_stalled_) {
    win_stalled_ = false;
    obs_.window_stall_ns->add(hca_.sim().now() - win_stall_since_);
  }
  obs_.outstanding_wqes->set(0);
}

// ---------------------------------------------------------------------------
// RDMA read (requester).
// ---------------------------------------------------------------------------

void RcQp::issue_read(const SendWr& wr) {
  if (static_cast<int>(pending_reads_.size()) <
      hca_.config().rc_max_outstanding_reads) {
    send_read_request(wr, /*retries=*/0);
  } else {
    read_queue_.push_back(wr);
  }
}

void RcQp::send_read_request(const SendWr& wr, int retries) {
  auto pkt = std::make_shared<IbPacket>();
  pkt->type = IbPacketType::kRdmaReadReq;
  pkt->dst_qpn = remote_qpn_;
  pkt->src_qpn = qpn_;
  pkt->remote_addr = wr.remote_addr;
  pkt->total_length = wr.length;
  pkt->read_wr_id = wr.wr_id;
  hca_.transmit(remote_lid_, std::move(pkt), kRcHeaderBytes,
                /*first_of_msg=*/true);
  // Requests are not covered by the PSN stream; a per-read timer retries
  // if the response never starts (request lost on the wire), up to the
  // QP retry budget — then the whole QP faults.
  PendingRead pr{.wr = wr, .retry_timer = 0, .retries = retries};
  pr.retry_timer = hca_.sim().schedule(hca_.config().rto, [this, wr,
                                                           retries] {
    for (auto& p : pending_reads_) {
      if (p.wr.wr_id == wr.wr_id) {
        if (retries + 1 > hca_.config().rc_retry_count) {
          enter_error();
          return;
        }
        IBWAN_WARN(hca_.sim().now(), "rc-qp", "qpn=%u read retry wr=%llu",
                   qpn_, static_cast<unsigned long long>(wr.wr_id));
        // Re-send the request and re-arm by replacing the entry.
        p.retry_timer = 0;
        pending_reads_.erase(
            std::find_if(pending_reads_.begin(), pending_reads_.end(),
                         [&](const PendingRead& q) {
                           return q.wr.wr_id == wr.wr_id;
                         }));
        send_read_request(wr, retries + 1);
        return;
      }
    }
  });
  pending_reads_.push_back(pr);
}

// ---------------------------------------------------------------------------
// Responder / receiver side.
// ---------------------------------------------------------------------------

void RcQp::handle_packet(const IbPacket& pkt, Lid /*src_lid*/) {
  // An errored QP neither sends nor receives (IB error-state semantics);
  // late acks and stale data are dropped on the floor.
  if (error_) return;
  switch (pkt.type) {
    case IbPacketType::kAck:
      handle_ack(pkt.ack_psn);
      return;
    case IbPacketType::kNak:
      handle_ack(pkt.ack_psn);
      retransmit_from(pkt.ack_psn);
      return;
    case IbPacketType::kRdmaReadReq: {
      // Duplicate requests (retry raced with a served response) are
      // ignored if a response stream is already active for this id.
      if (active_read_resps_.count(pkt.read_wr_id) != 0) return;
      active_read_resps_.insert(pkt.read_wr_id);
      SendWr resp{.wr_id = pkt.read_wr_id,
                  .opcode = Opcode::kRdmaReadResp,
                  .length = pkt.total_length,
                  .remote_addr = pkt.remote_addr};
      start_message(resp, /*internal=*/true, pkt.read_wr_id);
      return;
    }
    case IbPacketType::kData:
      break;
  }

  // --- Reliable in-order data stream ---
  if (pkt.psn < expected_psn_) {
    // Duplicate from go-back-N: re-acknowledge so the sender advances.
    send_ack(IbPacketType::kAck);
    return;
  }
  if (pkt.psn > expected_psn_) {
    if (!nak_outstanding_) {
      nak_outstanding_ = true;
      ++stats_.naks_sent;
      obs_.naks_sent->add();
      hca_.sim().recorder().record(hca_.sim().now(), sim::TraceKind::kNakSend,
                                   trace_tag_, expected_psn_, pkt.psn);
      send_ack(IbPacketType::kNak);
    }
    return;
  }
  nak_outstanding_ = false;
  ++expected_psn_;
  ++pkts_since_ack_;

  if (pkt.first) {
    assembling_ = IncomingMsg{.msg_seq = pkt.msg_seq,
                              .op = pkt.op,
                              .total_length = pkt.total_length,
                              .received = 0,
                              .remote_addr = pkt.remote_addr,
                              .imm = pkt.imm,
                              .has_imm = pkt.has_imm,
                              .read_wr_id = pkt.read_wr_id,
                              .atomic_value = pkt.atomic_value,
                              .atomic_compare = pkt.atomic_compare};
  }
  assert(assembling_.has_value() && "mid-message packet with no assembly");
  assembling_->received += pkt.payload_bytes;

  if (pkt.last) {
    assert(assembling_->received == assembling_->total_length);
    assembling_->app_payload = pkt.app_payload;
    const IncomingMsg m = *assembling_;
    assembling_.reset();
    deliver_message(m);
    pkts_since_ack_ = 0;
    send_ack(IbPacketType::kAck);
  } else if (pkts_since_ack_ >= hca_.config().ack_interval_pkts) {
    pkts_since_ack_ = 0;
    send_ack(IbPacketType::kAck);
  }
}

void RcQp::send_ack(IbPacketType type) {
  auto pkt = std::make_shared<IbPacket>();
  pkt->type = type;
  pkt->dst_qpn = remote_qpn_;
  pkt->src_qpn = qpn_;
  pkt->ack_psn = expected_psn_;
  ++stats_.acks_sent;
  obs_.acks_sent->add();
  if (sim::FlightRecorder& fr = hca_.sim().recorder(); fr.armed())
    fr.record(hca_.sim().now(), sim::TraceKind::kAckSend, trace_tag_,
              expected_psn_);
  hca_.transmit(remote_lid_, std::move(pkt), kAckBytes,
                /*first_of_msg=*/false, /*on_serialized=*/{},
                /*control=*/true);
}

void RcQp::deliver_message(const IncomingMsg& m) {
  ++stats_.msgs_received;
  stats_.bytes_received += m.total_length;
  const HcaConfig& cfg = hca_.config();
  switch (m.op) {
    case Opcode::kSend:
    case Opcode::kRdmaWriteWithImm:
      if (m.op == Opcode::kRdmaWriteWithImm && rdma_listener_) {
        hca_.sim().schedule(cfg.rdma_detect_overhead,
                            [cb = rdma_listener_, m] {
                              cb(m.remote_addr, m.total_length, true);
                            });
      }
      unclaimed_.push_back(m);
      match_receives();
      break;
    case Opcode::kRdmaWrite:
      if (rdma_listener_) {
        hca_.sim().schedule(cfg.rdma_detect_overhead,
                            [cb = rdma_listener_, m] {
                              cb(m.remote_addr, m.total_length, false);
                            });
      }
      break;
    case Opcode::kRdmaReadResp: {
      // Requester side: a read we issued has fully landed.
      auto it = std::find_if(
          pending_reads_.begin(), pending_reads_.end(),
          [&](const PendingRead& p) { return p.wr.wr_id == m.read_wr_id; });
      if (it == pending_reads_.end()) return;  // duplicate response
      hca_.sim().cancel(it->retry_timer);
      const SendWr wr = it->wr;
      pending_reads_.erase(it);
      send_cq_->push_after(cfg.rdma_detect_overhead + cfg.cqe_latency,
                           Cqe{.type = CqeType::kRdmaReadComplete,
                               .wr_id = wr.wr_id,
                               .qpn = qpn_,
                               .byte_len = wr.length});
      if (!read_queue_.empty()) {
        SendWr next = read_queue_.front();
        read_queue_.pop_front();
        send_read_request(next, /*retries=*/0);
      }
      break;
    }
    case Opcode::kFetchAdd:
    case Opcode::kCompareSwap: {
      // Responder: execute on the target word, reply with the old value.
      // Exactly-once is inherited from the stream's reliable delivery.
      std::uint64_t& word = hca_.memory_word(m.remote_addr);
      const std::uint64_t old = word;
      if (m.op == Opcode::kFetchAdd) {
        word += m.atomic_value;
      } else if (word == m.atomic_compare) {
        word = m.atomic_value;
      }
      SendWr resp{.wr_id = m.read_wr_id,
                  .opcode = Opcode::kAtomicResp,
                  .length = kAtomicMsgBytes,
                  .atomic_operand = old};
      start_message(resp, /*internal=*/true, m.read_wr_id);
      break;
    }
    case Opcode::kAtomicResp: {
      // Requester: complete the pending atomic with its old value.
      auto it = pending_atomics_.find(m.read_wr_id);
      if (it == pending_atomics_.end()) break;
      const SendWr req = it->second;
      pending_atomics_.erase(it);
      send_cq_->push_after(cfg.rdma_detect_overhead + cfg.cqe_latency,
                           Cqe{.type = CqeType::kAtomicComplete,
                               .wr_id = req.wr_id,
                               .qpn = qpn_,
                               .byte_len = 8,
                               .atomic_old = m.atomic_value});
      break;
    }
    case Opcode::kRdmaRead:
      assert(false && "kRdmaRead never appears as a data stream opcode");
      break;
  }
}

void RcQp::match_receives() {
  const HcaConfig& cfg = hca_.config();
  while (!unclaimed_.empty()) {
    // The QP's own receive queue has priority; fall back to the SRQ.
    std::deque<RecvWr>* pool = nullptr;
    if (!rq_.empty()) {
      pool = &rq_;
    } else if (srq_ != nullptr && !srq_->q_.empty()) {
      pool = &srq_->q_;
    } else {
      return;
    }
    const IncomingMsg m = unclaimed_.front();
    unclaimed_.pop_front();
    const RecvWr r = pool->front();
    pool->pop_front();
    recv_cq_->push_after(cfg.recv_match_overhead + cfg.cqe_latency,
                         Cqe{.type = m.op == Opcode::kSend
                                         ? CqeType::kRecvComplete
                                         : CqeType::kRecvRdmaImm,
                             .wr_id = r.wr_id,
                             .qpn = qpn_,
                             .byte_len = m.total_length,
                             .imm = m.imm,
                             .has_imm = m.has_imm,
                             .src_qpn = remote_qpn_,
                             .app_payload = m.app_payload});
  }
}

}  // namespace ibwan::ib
