// Connection Manager (CM).
//
// An on-the-wire RC connection establishment protocol in the style of
// the IB CM MADs: REQ -> REP -> RTU over the general-service UD QP
// (QP 1). Everything else in the library offers simulator-convenient
// out-of-band connects; CmAgent is the faithful alternative — the
// handshake crosses the WAN, pays its latency, retries on datagram
// loss, and can be rejected.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "sim/coro.hpp"
#include "sim/task.hpp"

namespace ibwan::ib {

/// The well-known general-service QPN the agent listens on.
inline constexpr Qpn kCmQpn = 1;

class CmAgent {
 public:
  struct Config {
    /// REQ/REP retransmission timeout (datagrams are unreliable).
    sim::Duration retry_timeout = 4 * sim::kMillisecond;
    int max_retries = 8;
    /// CM MAD size on the wire.
    std::uint32_t mad_bytes = 256;
  };

  /// Must be constructed before any other QP on the HCA so the agent
  /// owns QPN 1 (the GSI convention).
  explicit CmAgent(Hca& hca) : CmAgent(hca, Config{}) {}
  CmAgent(Hca& hca, Config config);

  /// Passive side: accept connections for `service_id`. The callback
  /// receives each newly connected QP once the RTU arrives. New QPs use
  /// the provided CQs.
  void listen(std::uint32_t service_id, Cq& scq, Cq& rcq,
              std::function<void(RcQp&)> on_connect);

  /// Active side: connect to `service_id` at `dst`. Returns the
  /// connected QP, or nullptr on rejection / retry exhaustion.
  sim::Coro<RcQp*> connect(Lid dst, std::uint32_t service_id, Cq& scq,
                           Cq& rcq);

  struct Stats {
    std::uint64_t reqs_sent = 0;
    std::uint64_t reps_sent = 0;
    std::uint64_t rejects_sent = 0;
    std::uint64_t retries = 0;
    std::uint64_t connections = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct CmMad;
  struct Listener {
    Cq* scq;
    Cq* rcq;
    std::function<void(RcQp&)> on_connect;
  };
  struct ActiveConn {
    explicit ActiveConn(sim::Simulator& sim) : done(sim) {}
    RcQp* qp = nullptr;
    bool rejected = false;
    bool replied = false;
    sim::Trigger done;
  };
  struct PassiveConn {
    RcQp* qp = nullptr;
    bool established = false;
  };

  void on_mad(const Cqe& cqe);
  void send_mad(Lid dst, const CmMad& mad);
  sim::Task retry_loop(Lid dst, std::uint64_t conn_id, CmMad req);

  Hca& hca_;
  Config config_;
  Cq scq_;
  Cq rcq_;
  UdQp* qp1_ = nullptr;
  std::unordered_map<std::uint32_t, Listener> listeners_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ActiveConn>> active_;
  /// Passive-side dedup: connections already set up, by initiator conn id.
  std::unordered_map<std::uint64_t, PassiveConn> passive_;
  std::uint64_t next_conn_id_ = 1;
  Stats stats_;
};

}  // namespace ibwan::ib
