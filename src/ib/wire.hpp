// IB wire packet descriptor (internal to the ib module and its tests).
#pragma once

#include <cstdint>
#include <memory>

#include "ib/verbs.hpp"

namespace ibwan::ib {

enum class IbPacketType : std::uint8_t {
  kData,         // segment of a send / RDMA write / RDMA read response
  kAck,          // cumulative acknowledgement
  kNak,          // out-of-sequence: retransmit from ack_psn
  kRdmaReadReq,  // read request carrying (remote_addr, length)
};

struct IbPacket {
  IbPacketType type = IbPacketType::kData;
  Qpn dst_qpn = 0;
  Qpn src_qpn = 0;

  // kData fields.
  Opcode op = Opcode::kSend;
  std::uint64_t msg_seq = 0;   // message number within the QP stream
  std::uint64_t psn = 0;       // packet sequence number
  std::uint32_t payload_bytes = 0;
  bool first = false;
  bool last = false;
  std::uint64_t offset = 0;       // byte offset within the message
  std::uint64_t remote_addr = 0;  // RDMA placement address
  std::uint64_t total_length = 0; // message length (on first packet)
  std::uint32_t imm = 0;
  bool has_imm = false;
  std::uint64_t read_wr_id = 0;  // ties read/atomic responses to requests
  std::uint64_t atomic_value = 0;  // operand (request) / old value (resp)
  std::uint64_t atomic_compare = 0;
  /// Message content descriptor (carried on the last packet only).
  std::shared_ptr<const void> app_payload;

  // kAck / kNak: next PSN the receiver expects (cumulative).
  std::uint64_t ack_psn = 0;
};

}  // namespace ibwan::ib
