// Verbs-level micro-benchmarks, mirroring the OFED perftest suite the
// paper uses for its Section 3.2 evaluation (ib_send_lat / ib_send_bw /
// ib_write_lat and the bidirectional variants).
#pragma once

#include <cstdint>

#include "ib/verbs.hpp"
#include "net/fabric.hpp"

namespace ibwan::ib::perftest {

enum class Transport { kRc, kUd };
enum class Op { kSendRecv, kRdmaWrite };

struct LatencyResult {
  double avg_us = 0;  // one-way (half round-trip), perftest convention
  double min_us = 0;
  double max_us = 0;
  int iterations = 0;
};

struct BandwidthResult {
  double mbytes_per_sec = 0;  // MillionBytes/s, the paper's unit
  std::uint64_t total_bytes = 0;
  double seconds = 0;
  int iterations = 0;
};

struct TestConfig {
  std::uint32_t msg_size = 2;
  int iterations = 1000;
  int warmup = 10;
  /// Sender queue depth (outstanding WQEs), perftest's --tx-depth.
  int tx_depth = 128;
  HcaConfig hca{};
};

/// Ping-pong latency between two fabric nodes. RDMA-write flavour spins
/// on memory (write listener) instead of consuming receive WQEs.
LatencyResult run_latency(net::Fabric& fabric, net::NodeId a, net::NodeId b,
                          Transport transport, Op op, const TestConfig& cfg);

/// Unidirectional streaming bandwidth a -> b (send completions timed).
BandwidthResult run_bandwidth(net::Fabric& fabric, net::NodeId a,
                              net::NodeId b, Transport transport,
                              const TestConfig& cfg);

/// Bidirectional streaming bandwidth (both directions concurrently;
/// reports aggregate).
BandwidthResult run_bidir_bandwidth(net::Fabric& fabric, net::NodeId a,
                                    net::NodeId b, Transport transport,
                                    const TestConfig& cfg);

/// Picks an iteration count that moves ~`target_bytes` per measurement
/// while staying within [min_iters, max_iters].
int iters_for_bytes(std::uint64_t target_bytes, std::uint32_t msg_size,
                    int min_iters = 64, int max_iters = 16384);

}  // namespace ibwan::ib::perftest
