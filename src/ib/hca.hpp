// Host Channel Adapter.
//
// One HCA per fabric node. Owns the QP namespace, a transmit engine that
// charges per-WQE and per-packet processing costs before handing packets
// to the node's uplink, and a receive engine that charges per-packet
// processing before demultiplexing to QPs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ib/cq.hpp"
#include "ib/qp.hpp"
#include "ib/verbs.hpp"
#include "ib/wire.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace ibwan::ib {

class Hca {
 public:
  struct Stats {
    std::uint64_t pkts_tx = 0;
    std::uint64_t pkts_rx = 0;
    std::uint64_t pkts_unroutable = 0;
  };

  Hca(net::Node& node, HcaConfig config);

  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;

  Lid lid() const { return node_.id(); }
  sim::Simulator& sim() { return node_.sim(); }
  const HcaConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  RcQp& create_rc_qp(Cq& send_cq, Cq& recv_cq);
  UdQp& create_ud_qp(Cq& send_cq, Cq& recv_cq);

  /// Registers a memory region of `length` bytes in the node's simulated
  /// address space and returns its token.
  Mr register_mr(std::uint64_t length);

  /// 64-bit word at a simulated address — the target store for RDMA
  /// atomics (fetch-add / compare-swap). Unwritten words read as zero.
  std::uint64_t& memory_word(std::uint64_t addr) { return memory_[addr]; }

  /// Internal: QPs hand fully-formed packets to the transmit engine.
  /// `first_of_msg` charges the per-WQE cost; `on_serialized` (optional)
  /// fires when the packet clears the local wire (UD send completions).
  /// `control` routes the packet through the priority lane (ACK/NAK).
  void transmit(Lid dst, std::shared_ptr<const IbPacket> pkt,
                std::uint32_t wire_size, bool first_of_msg,
                std::function<void()> on_serialized = {},
                bool control = false);

 private:
  struct TxItem {
    Lid dst;
    std::shared_ptr<const IbPacket> pkt;
    std::uint32_t wire_size;
    bool first_of_msg;
    bool control;
    std::function<void()> on_serialized;
  };

  void on_node_packet(net::Packet&& p);
  void tx_drain();

  net::Node& node_;
  HcaConfig config_;
  std::vector<std::unique_ptr<QpBase>> qps_;
  std::unordered_map<Qpn, QpBase*> qp_index_;
  Qpn next_qpn_ = 1;
  std::uint64_t next_mr_addr_ = 0x1000;
  std::uint32_t next_rkey_ = 1;
  std::unordered_map<std::uint64_t, std::uint64_t> memory_;
  std::deque<TxItem> txq_data_;
  std::deque<TxItem> txq_ctrl_;
  bool tx_busy_ = false;
  sim::Time rx_busy_ = 0;
  std::uint64_t next_pkt_id_ = 1;
  Stats stats_;
  // Registered metrics (docs/METRICS.md §ib.hca); scope "node<lid>/ib.hca".
  sim::Counter* obs_pkts_tx_ = nullptr;
  sim::Counter* obs_pkts_rx_ = nullptr;
  sim::Counter* obs_pkts_unroutable_ = nullptr;
};

}  // namespace ibwan::ib
