#include "ib/hca.hpp"

#include <cassert>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::ib {

Hca::Hca(net::Node& node, HcaConfig config)
    : node_(node), config_(config) {
  node_.set_receiver([this](net::Packet&& p) { on_node_packet(std::move(p)); });
  auto& m = sim().metrics();
  const std::string scope = "node" + std::to_string(lid()) + "/ib.hca";
  obs_pkts_tx_ = &m.counter(scope, "pkts_tx", sim::MetricUnit::kPackets);
  obs_pkts_rx_ = &m.counter(scope, "pkts_rx", sim::MetricUnit::kPackets);
  obs_pkts_unroutable_ =
      &m.counter(scope, "pkts_unroutable", sim::MetricUnit::kPackets);
}

RcQp& Hca::create_rc_qp(Cq& send_cq, Cq& recv_cq) {
  auto qp = std::make_unique<RcQp>(*this, next_qpn_++, send_cq, recv_cq);
  RcQp& ref = *qp;
  qp_index_[ref.qpn()] = qp.get();
  qps_.push_back(std::move(qp));
  return ref;
}

UdQp& Hca::create_ud_qp(Cq& send_cq, Cq& recv_cq) {
  auto qp = std::make_unique<UdQp>(*this, next_qpn_++, send_cq, recv_cq);
  UdQp& ref = *qp;
  qp_index_[ref.qpn()] = qp.get();
  qps_.push_back(std::move(qp));
  return ref;
}

Mr Hca::register_mr(std::uint64_t length) {
  Mr mr{.addr = next_mr_addr_, .length = length, .rkey = next_rkey_++};
  // Page-align the next region so addresses stay visually distinct.
  next_mr_addr_ += (length + 4095) & ~std::uint64_t{4095};
  return mr;
}

void Hca::transmit(Lid dst, std::shared_ptr<const IbPacket> pkt,
                   std::uint32_t wire_size, bool first_of_msg,
                   std::function<void()> on_serialized, bool control) {
  TxItem item{.dst = dst,
              .pkt = std::move(pkt),
              .wire_size = wire_size,
              .first_of_msg = first_of_msg,
              .control = control,
              .on_serialized = std::move(on_serialized)};
  (control ? txq_ctrl_ : txq_data_).push_back(std::move(item));
  if (!tx_busy_) tx_drain();
}

void Hca::tx_drain() {
  std::deque<TxItem>* q = !txq_ctrl_.empty()
                              ? &txq_ctrl_
                              : (!txq_data_.empty() ? &txq_data_ : nullptr);
  if (q == nullptr) {
    tx_busy_ = false;
    return;
  }
  tx_busy_ = true;
  auto item = std::make_shared<TxItem>(std::move(q->front()));
  q->pop_front();
  // Control packets are responder-generated; they skip the WQE fetch.
  sim::Duration cost = config_.pkt_overhead;
  if (item->first_of_msg && !item->control) cost += config_.wqe_overhead;
  ++stats_.pkts_tx;
  obs_pkts_tx_->add();
  const std::uint64_t id = next_pkt_id_++;
  sim().schedule(cost, [this, item, id] {
    net::Packet p;
    p.dst = item->dst;
    p.wire_size = item->wire_size;
    p.id = id;
    p.control = item->control;
    p.payload = std::move(item->pkt);
    p.on_serialized = std::move(item->on_serialized);
    node_.send(std::move(p));
    tx_drain();
  });
}

void Hca::on_node_packet(net::Packet&& p) {
  sim::Simulator& s = sim();
  const sim::Time start =
      std::max(s.now(), rx_busy_) + config_.rx_pkt_overhead;
  rx_busy_ = start;
  ++stats_.pkts_rx;
  obs_pkts_rx_->add();
  auto payload =
      std::static_pointer_cast<const IbPacket>(std::move(p.payload));
  const Lid src = p.src;
  s.schedule_at(start, [this, payload = std::move(payload), src] {
    auto it = qp_index_.find(payload->dst_qpn);
    if (it == qp_index_.end()) {
      ++stats_.pkts_unroutable;
      obs_pkts_unroutable_->add();
      IBWAN_WARN(sim().now(), "hca", "lid=%u: packet for unknown qpn=%u",
                 lid(), payload->dst_qpn);
      return;
    }
    it->second->handle_packet(*payload, src);
  });
}

}  // namespace ibwan::ib
