// InfiniBand verbs API surface.
//
// Mirrors the shape of the OFED verbs interface the paper's middleware is
// built on: queue pairs (RC and UD), work requests, completion queues,
// memory regions. Data is modeled as byte counts; RDMA addresses index a
// simulated remote address space.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace ibwan::ib {

using Lid = net::NodeId;
using Qpn = std::uint32_t;

/// Work-request opcodes (the subset the paper's middleware uses).
enum class Opcode : std::uint8_t {
  kSend,
  kRdmaWrite,
  kRdmaWriteWithImm,
  kRdmaRead,
  /// Atomic fetch-and-add on a remote 64-bit word.
  kFetchAdd,
  /// Atomic compare-and-swap on a remote 64-bit word.
  kCompareSwap,
  /// Internal: responder->requester data stream answering a kRdmaRead.
  kRdmaReadResp,
  /// Internal: responder->requester reply carrying an atomic's old value.
  kAtomicResp,
};

/// Wire header sizes. LRH+BTH+iCRC/vCRC come to ~30 bytes per IB packet;
/// UD adds a 40-byte GRH. These produce the paper's observed peaks:
/// RC 2048/2078 = 985 MB/s, UD 2048/2118 = 967 MB/s over an SDR WAN link.
inline constexpr std::uint32_t kRcHeaderBytes = 30;
inline constexpr std::uint32_t kGrhBytes = 40;
inline constexpr std::uint32_t kUdHeaderBytes = kRcHeaderBytes + kGrhBytes;
inline constexpr std::uint32_t kAckBytes = 30;

/// Remote destination of a UD datagram.
struct UdDest {
  Lid lid = 0;
  Qpn qpn = 0;
};

/// Send-side work request.
struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kSend;
  /// Payload length in bytes.
  std::uint64_t length = 0;
  /// Target address for RDMA operations (simulated remote VA).
  std::uint64_t remote_addr = 0;
  /// Immediate data, delivered with kSend and kRdmaWriteWithImm.
  std::uint32_t imm = 0;
  /// Atomic operand: the addend (kFetchAdd) or swap value (kCompareSwap).
  std::uint64_t atomic_operand = 0;
  /// Atomic compare value (kCompareSwap only).
  std::uint64_t atomic_compare = 0;
  /// Opaque message content descriptor, delivered with the completion on
  /// the remote side (stands in for the actual buffer bytes, which the
  /// simulator does not carry). Upper layers put protocol headers here.
  std::shared_ptr<const void> app_payload;
};

/// Receive-side work request.
struct RecvWr {
  std::uint64_t wr_id = 0;
  std::uint64_t max_length = 0;
};

enum class CqeType : std::uint8_t {
  kSendComplete,      // send/RDMA-write WQE finished (acked for RC)
  kRecvComplete,      // incoming send consumed a receive WQE
  kRecvRdmaImm,       // incoming RDMA-write-with-imm consumed a receive WQE
  kRdmaReadComplete,  // RDMA read data fully arrived at the requester
  kAtomicComplete,    // fetch-add / compare-swap done; old value returned
};

/// Completion queue entry.
struct Cqe {
  CqeType type = CqeType::kSendComplete;
  std::uint64_t wr_id = 0;
  Qpn qpn = 0;  // local QP that completed
  std::uint64_t byte_len = 0;
  std::uint32_t imm = 0;
  bool has_imm = false;
  /// Source of a UD datagram (valid for UD kRecvComplete only).
  Lid src_lid = 0;
  Qpn src_qpn = 0;
  bool success = true;
  /// Old value of the remote word (kAtomicComplete only).
  std::uint64_t atomic_old = 0;
  /// The sender's SendWr::app_payload, if any.
  std::shared_ptr<const void> app_payload;

  template <typename T>
  const T& payload_as() const {
    return *static_cast<const T*>(app_payload.get());
  }
};

/// Registered memory region (token only; the simulator carries no bytes).
struct Mr {
  std::uint64_t addr = 0;
  std::uint64_t length = 0;
  std::uint32_t rkey = 0;
};

/// Per-HCA tunables. Defaults are calibrated in core/calibration.hpp to
/// land near the paper's zero-delay absolute numbers; see DESIGN.md §6.
struct HcaConfig {
  /// IB path MTU (payload bytes per packet).
  std::uint32_t mtu = 2048;
  /// RC transport window: messages transmitted but not yet fully acked.
  /// This is the bound the paper identifies ("limits the number of
  /// messages that can be in flight to a maximum supported window size").
  int rc_max_inflight_msgs = 16;
  /// Outstanding RDMA reads per QP (IB max_rd_atomic).
  int rc_max_outstanding_reads = 4;
  /// Sender-side work-request processing cost (doorbell + WQE fetch).
  sim::Duration wqe_overhead = 250;
  /// Sender-side per-packet engine cost.
  sim::Duration pkt_overhead = 30;
  /// Receiver-side per-packet processing cost.
  sim::Duration rx_pkt_overhead = 120;
  /// Extra receive path cost to match and consume a receive WQE
  /// (channel semantics); RDMA-write completion detection is cheaper,
  /// which is why RDMA wins the Figure 3 latency comparison.
  sim::Duration recv_match_overhead = 250;
  sim::Duration rdma_detect_overhead = 80;
  /// Completion delivery cost (CQE write + poll detection).
  sim::Duration cqe_latency = 300;
  /// Receiver acks at least every this many packets within a message
  /// (plus always on the last packet of a message).
  std::uint32_t ack_interval_pkts = 64;
  /// Retransmission timeout for tail loss (NAKs handle the common
  /// case). Must exceed the worst-case WAN round trip: IB local ack
  /// timeouts are configured in the hundreds of milliseconds.
  sim::Duration rto = 200 * sim::kMillisecond;
  /// Consecutive unproductive retries (RTO fires with no ack progress,
  /// or unanswered RDMA-read requests) before the QP transitions to the
  /// error state and flushes outstanding WQEs with success=false — the
  /// IB retry_cnt semantics. Without the bound, a severed WAN link
  /// would retransmit forever and the requester would hang.
  int rc_retry_count = 7;
};

}  // namespace ibwan::ib
