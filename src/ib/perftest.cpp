#include "ib/perftest.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "sim/stats.hpp"

namespace ibwan::ib::perftest {

namespace {

/// Per-node verbs context for a two-party test.
struct Party {
  explicit Party(net::Node& node, const HcaConfig& cfg)
      : hca(node, cfg), scq(node.sim()), rcq(node.sim()) {}
  Hca hca;
  Cq scq;
  Cq rcq;
  RcQp* rc = nullptr;
  UdQp* ud = nullptr;
};

struct Pair {
  Pair(net::Fabric& fabric, net::NodeId a, net::NodeId b, Transport t,
       const HcaConfig& cfg)
      : pa(fabric.node(a), cfg), pb(fabric.node(b), cfg) {
    if (t == Transport::kRc) {
      pa.rc = &pa.hca.create_rc_qp(pa.scq, pa.rcq);
      pb.rc = &pb.hca.create_rc_qp(pb.scq, pb.rcq);
      pa.rc->connect(pb.hca.lid(), pb.rc->qpn());
      pb.rc->connect(pa.hca.lid(), pa.rc->qpn());
    } else {
      pa.ud = &pa.hca.create_ud_qp(pa.scq, pa.rcq);
      pb.ud = &pb.hca.create_ud_qp(pb.scq, pb.rcq);
    }
  }
  Party pa;
  Party pb;
};

}  // namespace

int iters_for_bytes(std::uint64_t target_bytes, std::uint32_t msg_size,
                    int min_iters, int max_iters) {
  const std::uint64_t want = target_bytes / std::max<std::uint32_t>(1, msg_size);
  return static_cast<int>(std::clamp<std::uint64_t>(
      want, static_cast<std::uint64_t>(min_iters),
      static_cast<std::uint64_t>(max_iters)));
}

LatencyResult run_latency(net::Fabric& fabric, net::NodeId a, net::NodeId b,
                          Transport transport, Op op, const TestConfig& cfg) {
  // The ping-pong timing callbacks all fire on side A's node, so they
  // read side A's clock (the only one when running sequentially).
  sim::Simulator& sim = fabric.sim_of_node(a);
  Pair pair(fabric, a, b, transport, cfg.hca);
  Party& pa = pair.pa;
  Party& pb = pair.pb;

  const int total = cfg.iterations + cfg.warmup;
  sim::OnlineStats rtt_ns;
  int done = 0;
  sim::Time sent_at = 0;

  auto a_send = [&] {
    sent_at = sim.now();
    SendWr wr{.wr_id = 1, .length = cfg.msg_size};
    if (transport == Transport::kRc) {
      if (op == Op::kRdmaWrite) wr.opcode = Opcode::kRdmaWrite;
      pa.rc->post_send(wr);
    } else {
      pa.ud->post_send(wr, UdDest{pb.hca.lid(), pb.ud->qpn()});
    }
  };
  auto b_send = [&] {
    SendWr wr{.wr_id = 2, .length = cfg.msg_size};
    if (transport == Transport::kRc) {
      if (op == Op::kRdmaWrite) wr.opcode = Opcode::kRdmaWrite;
      pb.rc->post_send(wr);
    } else {
      pb.ud->post_send(wr, UdDest{pa.hca.lid(), pa.ud->qpn()});
    }
  };

  auto on_a_gets_reply = [&] {
    ++done;
    if (done > cfg.warmup) {
      rtt_ns.add(static_cast<double>(sim.now() - sent_at));
    }
    if (done < total) a_send();
  };

  if (op == Op::kSendRecv) {
    for (int i = 0; i < total; ++i) {
      if (transport == Transport::kRc) {
        pa.rc->post_recv(RecvWr{.wr_id = 10, .max_length = cfg.msg_size});
        pb.rc->post_recv(RecvWr{.wr_id = 20, .max_length = cfg.msg_size});
      } else {
        pa.ud->post_recv(RecvWr{.wr_id = 10, .max_length = cfg.msg_size});
        pb.ud->post_recv(RecvWr{.wr_id = 20, .max_length = cfg.msg_size});
      }
    }
    pb.rcq.set_callback([&](const Cqe&) { b_send(); });
    pa.rcq.set_callback([&](const Cqe&) { on_a_gets_reply(); });
  } else {
    assert(transport == Transport::kRc && "RDMA write requires RC");
    // ib_write_lat style: each side polls its buffer for the peer's write.
    pb.rc->set_rdma_write_listener(
        [&](std::uint64_t, std::uint64_t, bool) { b_send(); });
    pa.rc->set_rdma_write_listener(
        [&](std::uint64_t, std::uint64_t, bool) { on_a_gets_reply(); });
  }

  a_send();
  fabric.run_all();
  assert(done == total && "latency test did not complete");

  LatencyResult r;
  r.iterations = cfg.iterations;
  r.avg_us = rtt_ns.mean() / 2.0 / 1000.0;
  r.min_us = rtt_ns.min() / 2.0 / 1000.0;
  r.max_us = rtt_ns.max() / 2.0 / 1000.0;
  return r;
}

namespace {

/// Streams `iters` messages from src to dst, keeping at most tx_depth
/// WQEs outstanding. RC throughput is timed on sender completions (they
/// are ack-clocked to the true bottleneck, matching ib_send_bw). UD has
/// no acks — the sender only observes its local DDR host link — so UD is
/// timed on receiver arrivals, first completion to last (the delivered
/// rate ib_send_bw reports on the server side).
class Streamer {
 public:
  Streamer(Party& src, Party& dst, Transport t, const TestConfig& cfg,
           std::function<void()> done)
      : src_(src), dst_(dst), transport_(t), cfg_(cfg),
        done_(std::move(done)) {
    if (t == Transport::kUd) {
      for (int i = 0; i < cfg_.iterations; ++i) {
        dst_.ud->post_recv(RecvWr{.max_length = cfg_.msg_size});
      }
      dst_.rcq.set_callback([this](const Cqe&) {
        if (received_ == 0) first_arrival_ = dst_.hca.sim().now();
        if (++received_ == cfg_.iterations) {
          last_arrival_ = dst_.hca.sim().now();
          done_();
        }
      });
      // Send completions only pace the posting loop.
      src_.scq.set_callback([this](const Cqe&) {
        if (posted_ < cfg_.iterations) post_one();
      });
    } else {
      for (int i = 0; i < cfg_.iterations; ++i) {
        dst_.rc->post_recv(RecvWr{.max_length = cfg_.msg_size});
      }
      src_.scq.set_callback([this](const Cqe&) {
        ++completed_;
        if (posted_ < cfg_.iterations) {
          post_one();
        } else if (completed_ == cfg_.iterations) {
          end_time_ = src_.hca.sim().now();
          done_();
        }
      });
    }
  }

  void start() {
    start_time_ = src_.hca.sim().now();
    const int burst = std::min(cfg_.tx_depth, cfg_.iterations);
    for (int i = 0; i < burst; ++i) post_one();
  }

  /// Measured (bytes, seconds) for this direction once done() has fired.
  std::pair<std::uint64_t, double> measured() const {
    if (transport_ == Transport::kUd) {
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(cfg_.iterations - 1) * cfg_.msg_size;
      return {bytes, sim::to_seconds(last_arrival_ - first_arrival_)};
    }
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(cfg_.iterations) * cfg_.msg_size;
    return {bytes, sim::to_seconds(end_time_ - start_time_)};
  }

 private:
  void post_one() {
    ++posted_;
    SendWr wr{.wr_id = static_cast<std::uint64_t>(posted_),
              .length = cfg_.msg_size};
    if (transport_ == Transport::kRc) {
      src_.rc->post_send(wr);
    } else {
      src_.ud->post_send(wr, UdDest{dst_.hca.lid(), dst_.ud->qpn()});
    }
  }

  Party& src_;
  Party& dst_;
  Transport transport_;
  TestConfig cfg_;
  std::function<void()> done_;
  int posted_ = 0;
  int completed_ = 0;
  int received_ = 0;
  sim::Time start_time_ = 0;
  sim::Time end_time_ = 0;
  sim::Time first_arrival_ = 0;
  sim::Time last_arrival_ = 0;
};

}  // namespace

BandwidthResult run_bandwidth(net::Fabric& fabric, net::NodeId a,
                              net::NodeId b, Transport transport,
                              const TestConfig& cfg) {
  Pair pair(fabric, a, b, transport, cfg.hca);
  Streamer s(pair.pa, pair.pb, transport, cfg, [] {});
  s.start();
  fabric.run_all();
  const auto [bytes, seconds] = s.measured();
  BandwidthResult r;
  r.iterations = cfg.iterations;
  r.total_bytes = bytes;
  r.seconds = seconds;
  r.mbytes_per_sec =
      seconds > 0 ? static_cast<double>(bytes) / seconds / 1e6 : 0;
  return r;
}

BandwidthResult run_bidir_bandwidth(net::Fabric& fabric, net::NodeId a,
                                    net::NodeId b, Transport transport,
                                    const TestConfig& cfg) {
  Pair pair(fabric, a, b, transport, cfg.hca);
  Streamer fwd(pair.pa, pair.pb, transport, cfg, [] {});
  Streamer rev(pair.pb, pair.pa, transport, cfg, [] {});
  fwd.start();
  rev.start();
  fabric.run_all();
  // Aggregate: each direction's delivered rate, summed (both run
  // concurrently over the same interval).
  const auto [bytes_f, secs_f] = fwd.measured();
  const auto [bytes_r, secs_r] = rev.measured();
  BandwidthResult r;
  r.iterations = cfg.iterations;
  r.total_bytes = bytes_f + bytes_r;
  r.seconds = std::max(secs_f, secs_r);
  const double rate_f =
      secs_f > 0 ? static_cast<double>(bytes_f) / secs_f / 1e6 : 0;
  const double rate_r =
      secs_r > 0 ? static_cast<double>(bytes_r) / secs_r / 1e6 : 0;
  r.mbytes_per_sec = rate_f + rate_r;
  return r;
}

}  // namespace ibwan::ib::perftest
