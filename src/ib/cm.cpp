#include "ib/cm.hpp"

#include <cassert>

#include "sim/log.hpp"

namespace ibwan::ib {

struct CmAgent::CmMad {
  enum class Kind : std::uint8_t { kReq, kRep, kRej, kRtu };
  Kind kind = Kind::kReq;
  std::uint32_t service_id = 0;
  std::uint64_t conn_id = 0;  // initiator-assigned
  Lid src_lid = 0;
  Qpn qpn = 0;  // sender's data QP
};

CmAgent::CmAgent(Hca& hca, Config config)
    : hca_(hca), config_(config), scq_(hca.sim()), rcq_(hca.sim()) {
  scq_.set_callback([](const Cqe&) {});
  rcq_.set_callback([this](const Cqe& e) { on_mad(e); });
  qp1_ = &hca_.create_ud_qp(scq_, rcq_);
  assert(qp1_->qpn() == kCmQpn &&
         "CmAgent must be the first QP created on the HCA (GSI QP 1)");
  for (int i = 0; i < 128; ++i) qp1_->post_recv(RecvWr{});
}

void CmAgent::listen(std::uint32_t service_id, Cq& scq, Cq& rcq,
                     std::function<void(RcQp&)> on_connect) {
  listeners_[service_id] = Listener{&scq, &rcq, std::move(on_connect)};
}

void CmAgent::send_mad(Lid dst, const CmMad& mad) {
  SendWr wr{.length = config_.mad_bytes,
            .app_payload = std::make_shared<CmMad>(mad)};
  qp1_->post_send(wr, UdDest{dst, kCmQpn});
}

sim::Task CmAgent::retry_loop(Lid dst, std::uint64_t conn_id, CmMad req) {
  auto conn = active_.at(conn_id);
  // conn->done is the final-outcome trigger (fired on REP/REJ by
  // on_mad, or on retry exhaustion here); per-attempt pacing is a
  // plain sleep-and-check so the trigger never needs re-arming.
  for (int attempt = 0; attempt < config_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    ++stats_.reqs_sent;
    send_mad(dst, req);
    co_await sim::SleepAwaiter(hca_.sim(), config_.retry_timeout);
    if (conn->replied || conn->rejected) co_return;
  }
  // Retries exhausted: surface as rejection.
  conn->rejected = true;
  conn->done.fire();
}

sim::Coro<RcQp*> CmAgent::connect(Lid dst, std::uint32_t service_id,
                                  Cq& scq, Cq& rcq) {
  const std::uint64_t conn_id =
      (static_cast<std::uint64_t>(hca_.lid()) << 32) | next_conn_id_++;
  auto conn = std::make_shared<ActiveConn>(hca_.sim());
  conn->qp = &hca_.create_rc_qp(scq, rcq);
  active_[conn_id] = conn;

  CmMad req{.kind = CmMad::Kind::kReq,
            .service_id = service_id,
            .conn_id = conn_id,
            .src_lid = hca_.lid(),
            .qpn = conn->qp->qpn()};
  retry_loop(dst, conn_id, req);
  if (!conn->done.fired()) co_await conn->done.wait();
  assert(conn->replied || conn->rejected);
  active_.erase(conn_id);
  if (conn->rejected) co_return nullptr;
  ++stats_.connections;
  co_return conn->qp;
}

void CmAgent::on_mad(const Cqe& cqe) {
  qp1_->post_recv(RecvWr{});
  if (!cqe.app_payload) return;
  const CmMad& mad = cqe.payload_as<CmMad>();
  switch (mad.kind) {
    case CmMad::Kind::kReq: {
      auto lit = listeners_.find(mad.service_id);
      if (lit == listeners_.end()) {
        ++stats_.rejects_sent;
        send_mad(mad.src_lid, CmMad{.kind = CmMad::Kind::kRej,
                                    .service_id = mad.service_id,
                                    .conn_id = mad.conn_id,
                                    .src_lid = hca_.lid()});
        return;
      }
      // Duplicate REQ (our REP was lost): resend the REP.
      auto pit = passive_.find(mad.conn_id);
      if (pit == passive_.end()) {
        RcQp& qp = hca_.create_rc_qp(*lit->second.scq, *lit->second.rcq);
        qp.connect(mad.src_lid, mad.qpn);
        pit = passive_.emplace(mad.conn_id, PassiveConn{&qp, false}).first;
      }
      ++stats_.reps_sent;
      send_mad(mad.src_lid, CmMad{.kind = CmMad::Kind::kRep,
                                  .service_id = mad.service_id,
                                  .conn_id = mad.conn_id,
                                  .src_lid = hca_.lid(),
                                  .qpn = pit->second.qp->qpn()});
      return;
    }
    case CmMad::Kind::kRep: {
      auto it = active_.find(mad.conn_id);
      if (it == active_.end()) return;  // stale/duplicate
      auto conn = it->second;
      if (!conn->replied) {
        conn->qp->connect(mad.src_lid, mad.qpn);
        conn->replied = true;
      }
      // Ready-to-use confirms the passive side (resent on dup REPs).
      send_mad(mad.src_lid, CmMad{.kind = CmMad::Kind::kRtu,
                                  .service_id = mad.service_id,
                                  .conn_id = mad.conn_id,
                                  .src_lid = hca_.lid()});
      conn->done.fire();
      return;
    }
    case CmMad::Kind::kRej: {
      auto it = active_.find(mad.conn_id);
      if (it == active_.end()) return;
      it->second->rejected = true;
      it->second->done.fire();
      return;
    }
    case CmMad::Kind::kRtu: {
      auto it = passive_.find(mad.conn_id);
      if (it == passive_.end() || it->second.established) return;
      it->second.established = true;
      ++stats_.connections;
      const std::uint32_t service = mad.service_id;
      if (auto lit = listeners_.find(service); lit != listeners_.end()) {
        lit->second.on_connect(*it->second.qp);
      }
      return;
    }
  }
}

}  // namespace ibwan::ib
