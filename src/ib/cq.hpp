// Completion queue.
//
// Completions can be consumed either by polling (poll()) or, the natural
// style in a discrete-event simulation, by registering a callback that
// fires as each CQE lands (models an armed CQ event channel).
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "ib/verbs.hpp"
#include "sim/simulator.hpp"

namespace ibwan::ib {

class Cq {
 public:
  explicit Cq(sim::Simulator& sim) : sim_(sim) {}

  Cq(const Cq&) = delete;
  Cq& operator=(const Cq&) = delete;

  /// Event-driven consumption: invoked once per CQE, in completion order.
  /// When set, entries bypass the polling queue.
  void set_callback(std::function<void(const Cqe&)> cb) {
    callback_ = std::move(cb);
  }

  /// Polling consumption: pops the oldest completion if any.
  std::optional<Cqe> poll() {
    if (queue_.empty()) return std::nullopt;
    Cqe e = queue_.front();
    queue_.pop_front();
    return e;
  }

  std::size_t depth() const { return queue_.size(); }
  std::uint64_t completions() const { return completions_; }

  /// Internal: HCA-side delivery after `delay` ns of completion latency.
  void push_after(sim::Duration delay, Cqe e) {
    sim_.schedule(delay, [this, e] {
      ++completions_;
      if (callback_) {
        callback_(e);
      } else {
        queue_.push_back(e);
      }
    });
  }

 private:
  sim::Simulator& sim_;
  std::function<void(const Cqe&)> callback_;
  std::deque<Cqe> queue_;
  std::uint64_t completions_ = 0;
};

}  // namespace ibwan::ib
