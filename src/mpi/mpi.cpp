// Point-to-point engine (eager + rendezvous) and job management.
#include "mpi/mpi.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::mpi {

// ---------------------------------------------------------------------------
// Wire header and bookkeeping records.
// ---------------------------------------------------------------------------

struct Rank::MsgHeader {
  enum class Kind : std::uint8_t { kEager, kRts, kCts, kFin, kBundle };
  Kind kind = Kind::kEager;
  int src_rank = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sender_req = 0;
  std::uint64_t recv_req = 0;
  /// kBundle: the coalesced eager headers, in send order.
  std::shared_ptr<std::vector<MsgHeader>> bundle;
};

struct Rank::CoalesceBuf {
  std::vector<MsgHeader> msgs;
  std::uint64_t bytes = 0;
  bool timer_armed = false;
};

struct Rank::PostedRecv {
  int src = kAnySource;
  int tag = kAnyTag;
  std::uint64_t req_id = 0;
  std::shared_ptr<detail::RequestState> req;
};

struct Rank::UnexpectedMsg {
  MsgHeader header;
};

namespace {
// Send-CQE wr_id encoding: request id in the high bits, kind in the low 3.
enum WrKind : std::uint64_t {
  kWrEager = 0,
  kWrRts = 1,
  kWrCts = 2,
  kWrFin = 3,
  kWrData = 4,
};
std::uint64_t encode_wr(std::uint64_t req_id, WrKind kind) {
  return req_id * 8 + kind;
}
WrKind wr_kind(std::uint64_t wr_id) { return WrKind(wr_id % 8); }
std::uint64_t wr_req(std::uint64_t wr_id) { return wr_id / 8; }
}  // namespace

// ---------------------------------------------------------------------------
// Rank
// ---------------------------------------------------------------------------

Rank::Rank(Job& job, int rank, net::Node& node, const MpiConfig& cfg)
    : job_(job),
      rank_(rank),
      node_(node),
      cluster_(job.fabric().cluster_of(node.id())),
      cfg_(cfg),
      rendezvous_threshold_(cfg.rendezvous_threshold) {
  hca_ = std::make_unique<ib::Hca>(node_, cfg_.hca);
  scq_ = std::make_unique<ib::Cq>(node_.sim());
  rcq_ = std::make_unique<ib::Cq>(node_.sim());
  scq_->set_callback([this](const ib::Cqe& e) { on_send_cqe(e); });
  rcq_->set_callback([this](const ib::Cqe& e) { on_recv_cqe(e); });

  auto& m = sim().metrics();
  const std::string scope = "node" + std::to_string(node_.id()) + "/mpi";
  using sim::MetricUnit;
  obs_.eager_sent = &m.counter(scope, "eager_sent", MetricUnit::kMessages);
  obs_.rndv_sent = &m.counter(scope, "rndv_sent", MetricUnit::kMessages);
  obs_.msgs_received =
      &m.counter(scope, "msgs_received", MetricUnit::kMessages);
  obs_.unexpected = &m.counter(scope, "unexpected", MetricUnit::kMessages);
  obs_.bytes_sent = &m.counter(scope, "bytes_sent", MetricUnit::kBytes);
  obs_.coalesce_flushes =
      &m.counter(scope, "coalesce_flushes", MetricUnit::kCount);
  obs_.bcast_ns = &m.histogram(scope, "bcast_ns", MetricUnit::kNanoseconds);
  std::snprintf(trace_tag_, sizeof(trace_tag_), "rank%d", rank_);
}

int Rank::size() const { return job_.size(); }
sim::Simulator& Rank::sim() { return node_.sim(); }

sim::Time Rank::charge_cpu(sim::Duration d) {
  cpu_busy_ = std::max(sim().now(), cpu_busy_) + d;
  return cpu_busy_;
}

ib::RcQp* Rank::qp_to(int peer) {
  if (auto it = qps_.find(peer); it != qps_.end()) return it->second;
  // Connection establishment is done out-of-band (the CM exchange the
  // real library performs at init); both endpoints are created here.
  Rank& other = job_.rank(peer);
  ib::RcQp& mine = hca_->create_rc_qp(*scq_, *rcq_);
  ib::RcQp& theirs = other.hca_->create_rc_qp(*other.scq_, *other.rcq_);
  mine.connect(other.hca_->lid(), theirs.qpn());
  theirs.connect(hca_->lid(), mine.qpn());
  qps_[peer] = &mine;
  other.qps_[rank_] = &theirs;
  by_qpn_[mine.qpn()] = &mine;
  other.by_qpn_[theirs.qpn()] = &theirs;
  for (int i = 0; i < cfg_.prepost_recvs_per_qp; ++i) {
    mine.post_recv(ib::RecvWr{});
    theirs.post_recv(ib::RecvWr{});
  }
  return &mine;
}

void Rank::post_ctrl(int peer, const MsgHeader& h, std::uint32_t wire_bytes,
                     std::uint64_t wr_id) {
  ib::SendWr wr{.wr_id = wr_id,
                .length = wire_bytes,
                .app_payload = std::make_shared<MsgHeader>(h)};
  qp_to(peer)->post_send(wr);
}

Request Rank::isend(int dst, std::uint64_t bytes, int tag) {
  assert(dst >= 0 && dst < size() && dst != rank_);
  auto state = std::make_shared<detail::RequestState>(sim());
  const std::uint64_t id = next_req_id();
  active_sends_[id] = state;
  stats_.bytes_sent += bytes;

  if (bytes < rendezvous_threshold_) {
    ++stats_.eager_sent;
    obs_.eager_sent->add();
    obs_.bytes_sent->add(bytes);
    sim().recorder().record(sim().now(), sim::TraceKind::kEagerSend,
                            trace_tag_, dst, bytes);
    // Eager is a *buffered* send: the request completes once the data
    // is copied into the pre-registered buffer (MVAPICH2 semantics);
    // the RC transport delivers reliably behind the application's back.
    active_sends_.erase(id);
    const auto copy = sim::duration_ceil(static_cast<double>(bytes) *
                                         cfg_.copy_ns_per_byte);
    const sim::Time t = charge_cpu(cfg_.call_overhead + copy);
    MsgHeader h{.kind = MsgHeader::Kind::kEager,
                .src_rank = rank_,
                .tag = tag,
                .bytes = bytes,
                .sender_req = id};
    if (cfg_.coalescing && bytes < cfg_.coalesce_msg_max) {
      sim().schedule_at(t, [this, dst, h, bytes, state] {
        auto& buf = coalesce_[dst];
        if (!buf) buf = std::make_unique<CoalesceBuf>();
        buf->msgs.push_back(h);
        buf->bytes += bytes;
        state->done = true;
        state->trigger.fire();
        if (buf->bytes >= cfg_.coalesce_flush_bytes) {
          flush_coalesce(dst);
        } else if (!buf->timer_armed) {
          buf->timer_armed = true;
          sim().schedule(cfg_.coalesce_flush_delay,
                         [this, dst] { flush_coalesce(dst); });
        }
      });
      return Request(state);
    }
    sim().schedule_at(t, [this, dst, h, bytes, id, state] {
      flush_coalesce(dst);  // non-overtaking: pending bundle goes first
      ib::SendWr wr{.wr_id = encode_wr(id, kWrEager),
                    .length = bytes + cfg_.eager_header_bytes,
                    .app_payload = std::make_shared<MsgHeader>(h)};
      qp_to(dst)->post_send(wr);
      state->done = true;
      state->trigger.fire();
    });
  } else {
    ++stats_.rndv_sent;
    obs_.rndv_sent->add();
    obs_.bytes_sent->add(bytes);
    sim().recorder().record(sim().now(), sim::TraceKind::kRndvRts,
                            trace_tag_, dst, bytes);
    rndv_bytes_[id] = bytes;
    const sim::Time t = charge_cpu(cfg_.call_overhead);
    MsgHeader h{.kind = MsgHeader::Kind::kRts,
                .src_rank = rank_,
                .tag = tag,
                .bytes = bytes,
                .sender_req = id};
    sim().schedule_at(t, [this, dst, h, id] {
      flush_coalesce(dst);  // non-overtaking vs buffered eager traffic
      post_ctrl(dst, h, cfg_.ctrl_bytes, encode_wr(id, kWrRts));
    });
  }
  return Request(state);
}

void Rank::flush_coalesce(int dst) {
  auto it = coalesce_.find(dst);
  if (it == coalesce_.end() || !it->second || it->second->msgs.empty()) {
    return;
  }
  obs_.coalesce_flushes->add();
  CoalesceBuf& buf = *it->second;
  MsgHeader h{.kind = MsgHeader::Kind::kBundle,
              .src_rank = rank_,
              .bytes = buf.bytes};
  h.bundle =
      std::make_shared<std::vector<MsgHeader>>(std::move(buf.msgs));
  const std::uint64_t wire =
      buf.bytes + h.bundle->size() * cfg_.eager_header_bytes;
  buf.msgs.clear();
  buf.bytes = 0;
  buf.timer_armed = false;
  ib::SendWr wr{.wr_id = encode_wr(0, kWrEager),
                .length = wire,
                .app_payload = std::make_shared<MsgHeader>(h)};
  qp_to(dst)->post_send(wr);
}

Request Rank::irecv(int src, int tag) {
  auto state = std::make_shared<detail::RequestState>(sim());
  const std::uint64_t id = next_req_id();
  active_recvs_[id] = state;

  // Check the unexpected queue first (in arrival order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    const MsgHeader& h = it->header;
    const bool match = (src == kAnySource || src == h.src_rank) &&
                       (tag == kAnyTag || tag == h.tag);
    if (!match) continue;
    MsgHeader copy = h;
    unexpected_.erase(it);
    if (copy.kind == MsgHeader::Kind::kEager) {
      complete_eager_recv(state, copy);
    } else {
      assert(copy.kind == MsgHeader::Kind::kRts);
      send_cts(copy.src_rank, copy.sender_req, id);
    }
    return Request(state);
  }
  posted_recvs_.push_back(PostedRecv{src, tag, id, state});
  return Request(state);
}

bool Rank::matches(const PostedRecv& r, int src, int tag) const {
  return (r.src == kAnySource || r.src == src) &&
         (r.tag == kAnyTag || r.tag == tag);
}

void Rank::complete_eager_recv(std::shared_ptr<detail::RequestState> req,
                               const MsgHeader& h) {
  ++stats_.msgs_received;
  obs_.msgs_received->add();
  const auto copy = sim::duration_ceil(static_cast<double>(h.bytes) *
                                       cfg_.copy_ns_per_byte);
  const sim::Time t = charge_cpu(cfg_.call_overhead + copy);
  sim().schedule_at(t, [req, h] {
    req->bytes = h.bytes;
    req->src_rank = h.src_rank;
    req->done = true;
    req->trigger.fire();
  });
}

void Rank::send_cts(int src_rank, std::uint64_t sender_req,
                    std::uint64_t recv_req) {
  sim().recorder().record(sim().now(), sim::TraceKind::kRndvCts, trace_tag_,
                          src_rank);
  MsgHeader h{.kind = MsgHeader::Kind::kCts,
              .src_rank = rank_,
              .tag = 0,
              .bytes = 0,
              .sender_req = sender_req,
              .recv_req = recv_req};
  const sim::Time t = charge_cpu(cfg_.call_overhead);
  sim().schedule_at(t, [this, src_rank, h] {
    post_ctrl(src_rank, h, cfg_.ctrl_bytes, encode_wr(0, kWrCts));
  });
}

void Rank::on_recv_cqe(const ib::Cqe& cqe) {
  // Keep the channel's receive queue topped up.
  if (auto it = by_qpn_.find(cqe.qpn); it != by_qpn_.end()) {
    it->second->post_recv(ib::RecvWr{});
  }
  if (!cqe.app_payload) return;
  const MsgHeader& h = cqe.payload_as<MsgHeader>();
  switch (h.kind) {
    case MsgHeader::Kind::kEager:
      handle_eager(h);
      break;
    case MsgHeader::Kind::kBundle:
      for (const MsgHeader& sub : *h.bundle) handle_eager(sub);
      break;
    case MsgHeader::Kind::kRts:
      handle_rts(h);
      break;
    case MsgHeader::Kind::kCts:
      handle_cts(h);
      break;
    case MsgHeader::Kind::kFin:
      handle_fin(h);
      break;
  }
}

void Rank::handle_eager(const MsgHeader& h) {
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    if (matches(*it, h.src_rank, h.tag)) {
      auto req = it->req;
      posted_recvs_.erase(it);
      complete_eager_recv(req, h);
      return;
    }
  }
  ++stats_.unexpected;
  obs_.unexpected->add();
  unexpected_.push_back(UnexpectedMsg{h});
}

void Rank::handle_rts(const MsgHeader& h) {
  for (auto it = posted_recvs_.begin(); it != posted_recvs_.end(); ++it) {
    if (matches(*it, h.src_rank, h.tag)) {
      const std::uint64_t recv_req = it->req_id;
      posted_recvs_.erase(it);
      send_cts(h.src_rank, h.sender_req, recv_req);
      return;
    }
  }
  ++stats_.unexpected;
  obs_.unexpected->add();
  unexpected_.push_back(UnexpectedMsg{h});
}

void Rank::handle_cts(const MsgHeader& h) {
  // We are the rendezvous sender; the receiver is ready.
  auto it = rndv_bytes_.find(h.sender_req);
  assert(it != rndv_bytes_.end() && "CTS for unknown rendezvous send");
  const std::uint64_t bytes = it->second;
  rndv_bytes_.erase(it);
  const int dst = h.src_rank;
  MsgHeader fin{.kind = MsgHeader::Kind::kFin,
                .src_rank = rank_,
                .tag = 0,
                .bytes = bytes,
                .sender_req = h.sender_req,
                .recv_req = h.recv_req};
  const std::uint64_t id = h.sender_req;
  const sim::Time t = charge_cpu(cfg_.call_overhead);
  sim().schedule_at(t, [this, dst, bytes, fin, id] {
    ib::RcQp* qp = qp_to(dst);
    // Zero-copy payload, then FIN; RC ordering delivers FIN after data.
    qp->post_send(ib::SendWr{.wr_id = encode_wr(id, kWrData),
                             .opcode = ib::Opcode::kRdmaWrite,
                             .length = bytes});
    ib::SendWr finwr{.wr_id = encode_wr(id, kWrFin),
                     .length = cfg_.fin_bytes,
                     .app_payload = std::make_shared<MsgHeader>(fin)};
    qp->post_send(finwr);
  });
}

void Rank::handle_fin(const MsgHeader& h) {
  ++stats_.msgs_received;
  obs_.msgs_received->add();
  sim().recorder().record(sim().now(), sim::TraceKind::kRndvFin, trace_tag_,
                          h.src_rank, h.bytes);
  auto it = active_recvs_.find(h.recv_req);
  assert(it != active_recvs_.end() && "FIN for unknown receive");
  auto req = it->second;
  active_recvs_.erase(it);
  const sim::Time t = charge_cpu(cfg_.call_overhead);
  sim().schedule_at(t, [req, h] {
    req->bytes = h.bytes;
    req->src_rank = h.src_rank;
    req->done = true;
    req->trigger.fire();
  });
}

void Rank::on_send_cqe(const ib::Cqe& cqe) {
  const WrKind kind = wr_kind(cqe.wr_id);
  if (kind != kWrEager && kind != kWrFin) return;
  const std::uint64_t id = wr_req(cqe.wr_id);
  auto it = active_sends_.find(id);
  if (it == active_sends_.end()) return;
  auto req = it->second;
  active_sends_.erase(it);
  req->done = true;
  req->trigger.fire();
}

sim::Coro<void> Rank::wait(Request r) {
  assert(r.valid());
  if (!r.state_->done) co_await r.state_->trigger.wait();
}

sim::Coro<void> Rank::wait_all(std::vector<Request> rs) {
  for (auto& r : rs) co_await wait(r);
}

namespace {
// Detached watcher: signals the future with this request's index on
// completion (first writer wins).
sim::Task watch_request(std::shared_ptr<detail::RequestState> state,
                        int index, sim::Future<int> result,
                        std::shared_ptr<bool> signalled) {
  if (!state->done) co_await state->trigger.wait();
  if (!*signalled) {
    *signalled = true;
    result.set_value(index);
  }
}
}  // namespace

sim::Coro<int> Rank::wait_any(std::vector<Request> rs) {
  assert(!rs.empty());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    if (rs[i].done()) co_return static_cast<int>(i);
  }
  sim::Future<int> result(sim());
  auto signalled = std::make_shared<bool>(false);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    watch_request(rs[i].state_, static_cast<int>(i), result, signalled);
  }
  co_return co_await result;
}

sim::Coro<void> Rank::send(int dst, std::uint64_t bytes, int tag) {
  // Named local: GCC 12 double-destroys prvalue temporaries passed by
  // value into an awaited coroutine (see nfs.cpp for the same pattern).
  Request r = isend(dst, bytes, tag);
  co_await wait(r);
}

sim::Coro<std::uint64_t> Rank::recv(int src, int tag) {
  Request r = irecv(src, tag);
  co_await wait(r);
  co_return r.bytes();
}

// ---------------------------------------------------------------------------
// Job
// ---------------------------------------------------------------------------

Job::Job(net::Fabric& fabric, std::vector<net::NodeId> placement,
         MpiConfig cfg)
    : fabric_(fabric), cfg_(cfg) {
  assert(!placement.empty());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    for (std::size_t j = i + 1; j < placement.size(); ++j) {
      assert(placement[i] != placement[j] &&
             "one rank per node: placements must not repeat");
    }
  }
  ranks_.reserve(placement.size());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    ranks_.push_back(std::unique_ptr<Rank>(new Rank(
        *this, static_cast<int>(i), fabric_.node(placement[i]), cfg_)));
    if (ranks_.back()->cluster() == net::Cluster::kA) {
      ranks_a_.push_back(static_cast<int>(i));
    } else {
      ranks_b_.push_back(static_cast<int>(i));
    }
  }
}

Job::~Job() = default;

std::vector<net::NodeId> Job::split_placement(net::Fabric& fabric,
                                              int per_cluster) {
  std::vector<net::NodeId> placement;
  placement.reserve(2 * per_cluster);
  for (int i = 0; i < per_cluster; ++i) {
    placement.push_back(fabric.node_id(net::Cluster::kA, i));
  }
  for (int i = 0; i < per_cluster; ++i) {
    placement.push_back(fabric.node_id(net::Cluster::kB, i));
  }
  return placement;
}

sim::Task Job::run_rank(Rank& r, Program program) {
  co_await program(r);
  // The completion event runs on this rank's own site, whose clock at
  // that instant equals the sequential run's global clock there.
  finish_time_[static_cast<std::size_t>(r.rank())] = r.sim().now();
}

void Job::preconnect_cross_site() {
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      if (rank(i).cluster() != rank(j).cluster()) rank(i).qp_to(j);
    }
  }
}

void Job::run(Program program) {
  start_time_ = fabric_.max_now();
  finish_time_.assign(static_cast<std::size_t>(size()), kUnfinished);
  if (fabric_.partitioned()) preconnect_cross_site();
  for (auto& r : ranks_) run_rank(*r, program);
}

double Job::execute(Program program) {
  run(std::move(program));
  fabric_.run_all();
  if (!finished()) {
    std::fprintf(stderr,
                 "mpi::Job: deadlock — %d of %d ranks finished with the "
                 "network idle\n",
                 finished_ranks(), size());
    std::abort();
  }
  return elapsed_seconds();
}

int Job::finished_ranks() const {
  int n = 0;
  for (const sim::Time t : finish_time_) n += (t != kUnfinished) ? 1 : 0;
  return n;
}

double Job::elapsed_seconds() const {
  sim::Time last = start_time_;
  for (const sim::Time t : finish_time_) {
    if (t != kUnfinished && t > last) last = t;
  }
  return sim::to_seconds(last - start_time_);
}

}  // namespace ibwan::mpi
