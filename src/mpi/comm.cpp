#include "mpi/comm.hpp"

#include <algorithm>
#include <cassert>

namespace ibwan::mpi {

namespace {
/// Communicator tag space, disjoint from the world collectives' block
/// (kCollTagBase = 1<<28 in collectives.cpp).
constexpr int kCommTagBase = 1 << 27;
}  // namespace

int Comm::next_tag(Rank& r, int rounds) {
  const int seq = coll_seq_[r.rank()]++;
  (void)rounds;
  return kCommTagBase + (id_ % 1024) * (1 << 17) + (seq % 2048) * 64;
}

sim::Coro<void> Comm::barrier(Rank& r) {
  const int tag = next_tag(r);
  const int p = size();
  const int me = comm_rank(r.rank());
  assert(me >= 0 && "barrier on a communicator this rank is not in");
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int to = member((me + k) % p);
    const int from = member((me - k + p) % p);
    Request s = r.isend(to, 1, tag + round);
    Request q = r.irecv(from, tag + round);
    co_await r.wait(s);
    co_await r.wait(q);
  }
}

sim::Coro<void> Comm::bcast(Rank& r, int root, std::uint64_t bytes) {
  const int tag = next_tag(r);
  const int p = size();
  const int me = comm_rank(r.rank());
  assert(me >= 0);
  const int vrank = (me - root + p) % p;
  auto real = [&](int v) { return member((v + root) % p); };
  int recv_mask = 1;
  while (recv_mask < p) {
    if (vrank & recv_mask) {
      co_await r.recv(real(vrank - recv_mask), tag);
      break;
    }
    recv_mask <<= 1;
  }
  // Largest-subtree-first: the WAN-aware schedule (contrast with the
  // world default's generic order; see collectives.cpp).
  int top = 1;
  if (vrank == 0) {
    while (top * 2 < p) top <<= 1;
  } else {
    top = recv_mask >> 1;
  }
  for (int mask = top; mask >= 1; mask >>= 1) {
    if (vrank + mask < p) {
      co_await r.send(real(vrank + mask), bytes, tag);
    }
  }
}

sim::Coro<void> Comm::reduce(Rank& r, int root, std::uint64_t bytes) {
  const int tag = next_tag(r);
  const int p = size();
  const int me = comm_rank(r.rank());
  assert(me >= 0);
  const int vrank = (me - root + p) % p;
  auto real = [&](int v) { return member((v + root) % p); };
  const auto combine =
      sim::duration_ceil(static_cast<double>(bytes) * 0.25);
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      co_await r.send(real(vrank - mask), bytes, tag);
      break;
    }
    if (vrank + mask < p) {
      co_await r.recv(real(vrank + mask), tag);
      co_await r.compute(combine);
    }
    mask <<= 1;
  }
}

sim::Coro<void> Comm::allreduce(Rank& r, std::uint64_t bytes) {
  const int p = size();
  if ((p & (p - 1)) != 0) {
    co_await reduce(r, 0, bytes);
    co_await bcast(r, 0, bytes);
    co_return;
  }
  const int tag = next_tag(r);
  const int me = comm_rank(r.rank());
  assert(me >= 0);
  const auto combine =
      sim::duration_ceil(static_cast<double>(bytes) * 0.25);
  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    const int partner = member(me ^ mask);
    Request s = r.isend(partner, bytes, tag + round);
    Request q = r.irecv(partner, tag + round);
    co_await r.wait(s);
    co_await r.wait(q);
    co_await r.compute(combine);
  }
}

sim::Coro<void> Comm::allgather(Rank& r, std::uint64_t bytes_per_rank) {
  const int tag = next_tag(r);
  const int p = size();
  const int me = comm_rank(r.rank());
  assert(me >= 0);
  const int right = member((me + 1) % p);
  const int left = member((me - 1 + p) % p);
  for (int step = 0; step < p - 1; ++step) {
    Request s = r.isend(right, bytes_per_rank, tag + step % 64);
    Request q = r.irecv(left, tag + step % 64);
    co_await r.wait(s);
    co_await r.wait(q);
  }
}

sim::Coro<std::shared_ptr<Comm>> CommSplitter::split(Rank& r, int color,
                                                     int key) {
  // Timing: the real operation allgathers (color, key); synchronize
  // like a barrier before the local bookkeeping.
  co_await r.barrier();

  const int seq = split_seq_[r.rank()]++;
  auto& op = pending_[seq];
  if (!op) op = std::make_unique<PendingSplit>(r.sim());
  op->by_color[color].emplace_back(key, r.rank());
  op->color_of_rank[r.rank()] = color;
  ++op->arrived;

  if (op->arrived == job_.size()) {
    for (auto& [c, entries] : op->by_color) {
      std::sort(entries.begin(), entries.end());
      auto comm = std::make_shared<Comm>();
      comm->id_ = next_comm_id_++;
      for (const auto& [k, rank] : entries) {
        comm->index_[rank] = static_cast<int>(comm->members_.size());
        comm->members_.push_back(rank);
      }
      for (int rank : comm->members_) op->comm_of_rank[rank] = comm;
    }
    op->done.fire();
  } else if (!op->done.fired()) {
    co_await op->done.wait();
  }
  co_return op->comm_of_rank.at(r.rank());
}

}  // namespace ibwan::mpi
