// Collective operations, composed from point-to-point.
//
// The default broadcast is topology-agnostic (binomial for small
// messages, scatter + ring allgather for large, as in MVAPICH2); the
// hierarchical variant is the paper's WAN-aware optimization: it crosses
// the Longbow link exactly once, then broadcasts inside each cluster.
#include <cassert>
#include <vector>

#include "mpi/mpi.hpp"
#include "sim/trace.hpp"

namespace ibwan::mpi {

namespace {
/// Internal tag space: one block of 64 tags per collective instance.
constexpr int kCollTagBase = 1 << 28;
int coll_tag(int seq, int round = 0) {
  return kCollTagBase + seq * 64 + round;
}
}  // namespace

sim::Coro<void> Rank::barrier() {
  const int seq = coll_seq_++;
  const int p = size();
  int round = 0;
  for (int k = 1; k < p; k <<= 1, ++round) {
    const int to = (rank_ + k) % p;
    const int from = (rank_ - k + p) % p;
    Request s = isend(to, 1, coll_tag(seq, round));
    Request r = irecv(from, coll_tag(seq, round));
    co_await wait(s);
    co_await wait(r);
  }
}

sim::Coro<void> Rank::bcast(int root, std::uint64_t bytes) {
  if (bytes >= cfg_.bcast_large_threshold && size() > 2) {
    co_await bcast_scatter_allgather(root, bytes);
  } else {
    co_await bcast_binomial(root, bytes);
  }
}

sim::Coro<void> Rank::bcast_binomial(int root, std::uint64_t bytes) {
  const sim::Time t0 = sim().now();
  if (sim::FlightRecorder& fr = sim().recorder(); fr.armed()) {
    fr.record(t0, sim::TraceKind::kBcastStart, trace_tag_,
              static_cast<std::uint64_t>(root), bytes, 0);
  }
  const int seq = coll_seq_++;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  auto real = [&](int v) { return (v + root) % p; };

  int recv_mask = 1;
  while (recv_mask < p) {
    if (vrank & recv_mask) {
      co_await recv(real(vrank - recv_mask), coll_tag(seq));
      break;
    }
    recv_mask <<= 1;
  }
  // Topology-unaware child schedule: ascending mask, so whichever child
  // happens to sit across the WAN is serviced on the library's generic
  // order, not first. The WAN-aware variant (bcast_hierarchical) fixes
  // exactly this — it forwards over the long link before local fan-out.
  const int limit = (vrank == 0) ? p : recv_mask;
  for (int mask = 1; mask < limit; mask <<= 1) {
    if (vrank + mask < p) {
      co_await send(real(vrank + mask), bytes, coll_tag(seq));
    }
  }
  const sim::Time elapsed = sim().now() - t0;
  obs_.bcast_ns->observe(elapsed);
  if (sim::FlightRecorder& fr = sim().recorder(); fr.armed()) {
    fr.record(sim().now(), sim::TraceKind::kBcastDone, trace_tag_,
              static_cast<std::uint64_t>(root), bytes,
              static_cast<std::uint64_t>(elapsed));
  }
}

sim::Coro<void> Rank::bcast_scatter_allgather(int root, std::uint64_t bytes) {
  const sim::Time t0 = sim().now();
  if (sim::FlightRecorder& fr = sim().recorder(); fr.armed()) {
    fr.record(t0, sim::TraceKind::kBcastStart, trace_tag_,
              static_cast<std::uint64_t>(root), bytes, 1);
  }
  const int seq = coll_seq_++;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  auto real = [&](int v) { return (v + root) % p; };
  const std::uint64_t chunk = (bytes + p - 1) / p;
  auto block_bytes = [&](int b) {
    const std::uint64_t start = static_cast<std::uint64_t>(b) * chunk;
    return start >= bytes ? std::uint64_t{0}
                          : std::min<std::uint64_t>(chunk, bytes - start);
  };
  // Bytes owned by virtual rank v after the binomial scatter: blocks
  // [v, v + min(lowbit(v), p - v)).
  auto owned_blocks = [&](int v) {
    if (v == 0) return p;
    const int low = v & -v;
    return std::min(low, p - v);
  };
  auto owned_bytes = [&](int v, int nblocks) {
    std::uint64_t total = 0;
    for (int b = v; b < v + nblocks; ++b) total += block_bytes(b);
    return total;
  };

  // Phase 1: binomial scatter of the p blocks.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      co_await recv(real(vrank - mask), coll_tag(seq, 0));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const int child = vrank + mask;
    if (child < p) {
      const std::uint64_t n = owned_bytes(child, owned_blocks(child));
      if (n > 0) co_await send(real(child), n, coll_tag(seq, 0));
    }
    mask >>= 1;
  }

  // Phase 2: ring allgather of the blocks (p-1 steps).
  const int right = real((vrank + 1) % p);
  const int left = real((vrank - 1 + p) % p);
  for (int step = 0; step < p - 1; ++step) {
    const int send_block = (vrank - step + p) % p;
    const int recv_block = (vrank - step - 1 + 2 * p) % p;
    const int round = 1 + step % 63;  // rounds stay within the tag block
    std::vector<Request> reqs;
    if (block_bytes(send_block) > 0) {
      reqs.push_back(
          isend(right, block_bytes(send_block), coll_tag(seq, round)));
    }
    if (block_bytes(recv_block) > 0) {
      reqs.push_back(irecv(left, coll_tag(seq, round)));
    }
    co_await wait_all(std::move(reqs));
  }
  const sim::Time elapsed = sim().now() - t0;
  obs_.bcast_ns->observe(elapsed);
  if (sim::FlightRecorder& fr = sim().recorder(); fr.armed()) {
    fr.record(sim().now(), sim::TraceKind::kBcastDone, trace_tag_,
              static_cast<std::uint64_t>(root), bytes,
              static_cast<std::uint64_t>(elapsed));
  }
}

sim::Coro<void> Rank::bcast_hierarchical(int root, std::uint64_t bytes) {
  const sim::Time t0 = sim().now();
  if (sim::FlightRecorder& fr = sim().recorder(); fr.armed()) {
    fr.record(t0, sim::TraceKind::kBcastStart, trace_tag_,
              static_cast<std::uint64_t>(root), bytes, 2);
  }
  const int seq = coll_seq_++;
  const net::Cluster root_cluster = job_.rank(root).cluster();
  const auto& local = job_.ranks_in(cluster_);

  // Phase 1: the root forwards across the WAN to each remote cluster's
  // leader — exactly one crossing per remote cluster.
  if (rank_ == root) {
    for (net::Cluster c : {net::Cluster::kA, net::Cluster::kB}) {
      if (c == root_cluster) continue;
      const auto& remote = job_.ranks_in(c);
      if (!remote.empty()) {
        co_await send(remote.front(), bytes, coll_tag(seq, 0));
      }
    }
  } else if (cluster_ != root_cluster && !local.empty() &&
             rank_ == local.front()) {
    co_await recv(root, coll_tag(seq, 0));
  }

  // Phase 2: binomial tree within the cluster, over local indices.
  const int lp = static_cast<int>(local.size());
  if (lp <= 1) {
    const sim::Time elapsed = sim().now() - t0;
    obs_.bcast_ns->observe(elapsed);
    if (sim::FlightRecorder& fr = sim().recorder(); fr.armed()) {
      fr.record(sim().now(), sim::TraceKind::kBcastDone, trace_tag_,
                static_cast<std::uint64_t>(root), bytes,
                static_cast<std::uint64_t>(elapsed));
    }
    co_return;
  }
  int lroot = 0;
  if (cluster_ == root_cluster) {
    for (int i = 0; i < lp; ++i) {
      if (local[i] == root) lroot = i;
    }
  }
  int lrank = 0;
  for (int i = 0; i < lp; ++i) {
    if (local[i] == rank_) lrank = i;
  }
  const int vrank = (lrank - lroot + lp) % lp;
  auto real = [&](int v) { return local[(v + lroot) % lp]; };

  int mask = 1;
  while (mask < lp) {
    if (vrank & mask) {
      co_await recv(real(vrank - mask), coll_tag(seq, 1));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < lp) {
      co_await send(real(vrank + mask), bytes, coll_tag(seq, 1));
    }
    mask >>= 1;
  }
  const sim::Time elapsed = sim().now() - t0;
  obs_.bcast_ns->observe(elapsed);
  if (sim::FlightRecorder& fr = sim().recorder(); fr.armed()) {
    fr.record(sim().now(), sim::TraceKind::kBcastDone, trace_tag_,
              static_cast<std::uint64_t>(root), bytes,
              static_cast<std::uint64_t>(elapsed));
  }
}

sim::Coro<void> Rank::reduce(int root, std::uint64_t bytes) {
  const int seq = coll_seq_++;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  auto real = [&](int v) { return (v + root) % p; };
  const auto combine = sim::duration_ceil(static_cast<double>(bytes) *
                                          cfg_.reduce_ns_per_byte);
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      co_await send(real(vrank - mask), bytes, coll_tag(seq));
      break;
    }
    if (vrank + mask < p) {
      co_await recv(real(vrank + mask), coll_tag(seq));
      co_await compute(combine);
    }
    mask <<= 1;
  }
}

sim::Coro<void> Rank::allreduce(std::uint64_t bytes) {
  const int p = size();
  const bool pow2 = (p & (p - 1)) == 0;
  if (!pow2) {
    // General sizes: reduce to 0 then broadcast.
    co_await reduce(0, bytes);
    co_await bcast(0, bytes);
    co_return;
  }
  const int seq = coll_seq_++;
  const auto combine = sim::duration_ceil(static_cast<double>(bytes) *
                                          cfg_.reduce_ns_per_byte);
  int round = 0;
  for (int mask = 1; mask < p; mask <<= 1, ++round) {
    const int partner = rank_ ^ mask;
    Request s = isend(partner, bytes, coll_tag(seq, round));
    Request r = irecv(partner, coll_tag(seq, round));
    co_await wait(s);
    co_await wait(r);
    co_await compute(combine);
  }
}

sim::Coro<void> Rank::alltoall(std::uint64_t bytes_per_pair) {
  // Named local: keeps the argument out of the co_await full expression
  // (GCC 12 coroutine temporary-lifetime bugs).
  const std::vector<std::uint64_t> sizes(size(), bytes_per_pair);
  co_await alltoallv(sizes);
}

sim::Coro<void> Rank::alltoallv(const std::vector<std::uint64_t>& bytes_to) {
  assert(static_cast<int>(bytes_to.size()) == size());
  const int seq = coll_seq_++;
  const int p = size();
  // Post every send and receive up front (the basic MPI_Alltoall(v)
  // algorithm for large transfers): rendezvous handshakes overlap, so
  // the shared WAN link's bandwidth — not per-step round trips — bounds
  // the exchange. This is what makes IS/FT delay-tolerant (Figure 12).
  std::vector<Request> reqs;
  reqs.reserve(2 * (p - 1));
  for (int step = 1; step < p; ++step) {
    const int to = (rank_ + step) % p;
    const int from = (rank_ - step + p) % p;
    // Zero-byte entries still send one tiny message so receivers need no
    // out-of-band size knowledge.
    reqs.push_back(
        isend(to, std::max<std::uint64_t>(bytes_to[to], 1), coll_tag(seq)));
    reqs.push_back(irecv(from, coll_tag(seq)));
  }
  co_await wait_all(std::move(reqs));
}

sim::Coro<void> Rank::gather(int root, std::uint64_t bytes_per_rank) {
  const int seq = coll_seq_++;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  auto real = [&](int v) { return (v + root) % p; };
  // Subtree size of virtual rank v in the binomial tree.
  auto subtree = [&](int v) {
    if (v == 0) return p;
    const int low = v & -v;
    return std::min(low, p - v);
  };
  // Children deliver their whole subtree's data, largest subtree last so
  // the most data moves after the most aggregation (classic gather).
  const int limit = (vrank == 0) ? p : (vrank & -vrank);
  for (int mask = 1; mask < limit; mask <<= 1) {
    const int child = vrank + mask;
    if (child < p) {
      co_await recv(real(child), coll_tag(seq));
    }
  }
  if (vrank != 0) {
    const int parent = vrank - (vrank & -vrank);
    co_await send(real(parent),
                  static_cast<std::uint64_t>(subtree(vrank)) * bytes_per_rank,
                  coll_tag(seq));
  }
}

sim::Coro<void> Rank::scatter(int root, std::uint64_t bytes_per_rank) {
  const int seq = coll_seq_++;
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  auto real = [&](int v) { return (v + root) % p; };
  auto subtree = [&](int v) {
    if (v == 0) return p;
    const int low = v & -v;
    return std::min(low, p - v);
  };
  // Receive our subtree's block from the parent, then split it down.
  int recv_mask = 1;
  while (recv_mask < p) {
    if (vrank & recv_mask) {
      co_await recv(real(vrank - recv_mask), coll_tag(seq));
      break;
    }
    recv_mask <<= 1;
  }
  // Largest power-of-two child offset (tree edges are always powers of
  // two, even when p is not).
  int top;
  if (vrank == 0) {
    top = 1;
    while (top * 2 < p) top <<= 1;
  } else {
    top = recv_mask >> 1;
  }
  for (int mask = top; mask >= 1; mask >>= 1) {
    const int child = vrank + mask;
    if (child < p) {
      co_await send(
          real(child),
          static_cast<std::uint64_t>(subtree(child)) * bytes_per_rank,
          coll_tag(seq));
    }
  }
}

sim::Coro<void> Rank::reduce_scatter(std::uint64_t bytes_per_rank) {
  const int p = size();
  const bool pow2 = (p & (p - 1)) == 0;
  if (!pow2) {
    // General sizes: full reduce then scatter of the result.
    co_await reduce(0, static_cast<std::uint64_t>(p) * bytes_per_rank);
    co_await scatter(0, bytes_per_rank);
    co_return;
  }
  // Recursive halving: each step exchanges (and reduces) half of the
  // remaining data with a partner at decreasing distance.
  const int seq = coll_seq_++;
  const auto combine_per_byte = cfg_.reduce_ns_per_byte;
  std::uint64_t chunk = static_cast<std::uint64_t>(p) * bytes_per_rank / 2;
  int round = 0;
  for (int mask = p / 2; mask >= 1; mask >>= 1, ++round) {
    const int partner = rank_ ^ mask;
    Request s = isend(partner, chunk, coll_tag(seq, round));
    Request r = irecv(partner, coll_tag(seq, round));
    co_await wait(s);
    co_await wait(r);
    co_await compute(sim::duration_ceil(static_cast<double>(chunk) *
                                        combine_per_byte));
    chunk = std::max<std::uint64_t>(chunk / 2, 1);
  }
}

sim::Coro<void> Rank::allgather(std::uint64_t bytes_per_rank) {
  const int seq = coll_seq_++;
  const int p = size();
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    Request s = isend(right, bytes_per_rank, coll_tag(seq, step % 64));
    Request r = irecv(left, coll_tag(seq, step % 64));
    co_await wait(s);
    co_await wait(r);
  }
}

}  // namespace ibwan::mpi
