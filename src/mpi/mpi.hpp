// MPI-like message passing library over IB verbs (MVAPICH2-style).
//
// Point-to-point uses the two protocols whose WAN behaviour the paper
// studies: eager (one send, copies on both sides) below the rendezvous
// threshold, and rendezvous (RTS -> CTS -> zero-copy RDMA write -> FIN)
// at or above it. The threshold is the Figure 9 tuning knob. Collectives
// are built on point-to-point, including the WAN-aware hierarchical
// broadcast of Figure 11.
//
// Programs are coroutines: a Job places one rank per fabric node and
// runs `Coro<void> program(Rank&)` on every rank.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "net/fabric.hpp"
#include "sim/coro.hpp"
#include "sim/task.hpp"

namespace ibwan::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct MpiConfig {
  /// Messages of at least this many bytes use the rendezvous protocol
  /// (MVAPICH2 defaults to switching around 8 KB).
  std::uint64_t rendezvous_threshold = 8 * 1024;
  /// Library header prepended to eager data on the wire.
  std::uint32_t eager_header_bytes = 32;
  /// RTS / CTS control message size.
  std::uint32_t ctrl_bytes = 64;
  /// FIN control message size.
  std::uint32_t fin_bytes = 32;
  /// Eager-path buffer copy cost, charged on each side (ns per byte).
  double copy_ns_per_byte = 0.4;
  /// Library software overhead per operation.
  sim::Duration call_overhead = 200;
  /// Receive WQEs kept posted per connection.
  int prepost_recvs_per_qp = 64;
  /// Broadcasts at or above this size use scatter + ring allgather
  /// (the MPICH-lineage large-message algorithm); below it, binomial.
  std::uint64_t bcast_large_threshold = 512 * 1024;
  /// Reduction arithmetic cost (ns per byte), for (all)reduce.
  double reduce_ns_per_byte = 0.25;
  /// Eager-message coalescing — the paper's "transferring data using
  /// large messages (message coalescing)" optimization: consecutive
  /// small eager sends to one destination share a single verbs message
  /// (one transport window slot instead of many).
  bool coalescing = false;
  /// Only messages below this size join a bundle.
  std::uint64_t coalesce_msg_max = 1024;
  /// Flush when the bundle reaches this many payload bytes.
  std::uint64_t coalesce_flush_bytes = 8192;
  /// Flush timer for stragglers (bounded added latency).
  sim::Duration coalesce_flush_delay = 5'000;
  ib::HcaConfig hca{};
};

namespace detail {
struct RequestState {
  explicit RequestState(sim::Simulator& sim) : trigger(sim) {}
  bool done = false;
  std::uint64_t bytes = 0;
  int src_rank = kAnySource;  // filled in for receives
  sim::Trigger trigger;
};
}  // namespace detail

/// Handle to a pending nonblocking operation.
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done; }
  /// Transferred bytes (valid once done).
  std::uint64_t bytes() const { return state_ ? state_->bytes : 0; }
  /// Matched source rank (receives; valid once done).
  int source() const { return state_ ? state_->src_rank : kAnySource; }

 private:
  friend class Rank;
  explicit Request(std::shared_ptr<detail::RequestState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

class Job;

/// Per-process MPI context. All operations must be called from that
/// rank's program coroutine.
class Rank {
 public:
  int rank() const { return rank_; }
  int size() const;
  net::Cluster cluster() const { return cluster_; }
  sim::Simulator& sim();
  Job& job() { return job_; }

  /// Models local computation.
  sim::SleepAwaiter compute(sim::Duration d) { return {sim(), d}; }

  // --- Point-to-point ---
  Request isend(int dst, std::uint64_t bytes, int tag = 0);
  Request irecv(int src, int tag = kAnyTag);
  sim::Coro<void> wait(Request r);
  sim::Coro<void> wait_all(std::vector<Request> rs);
  /// Suspends until any request completes; returns its index.
  sim::Coro<int> wait_any(std::vector<Request> rs);
  sim::Coro<void> send(int dst, std::uint64_t bytes, int tag = 0);
  /// Returns the received byte count.
  sim::Coro<std::uint64_t> recv(int src, int tag = kAnyTag);

  // --- Collectives (every rank of the job must participate) ---
  sim::Coro<void> barrier();
  /// Default broadcast: binomial below bcast_large_threshold,
  /// scatter + ring allgather at or above (MVAPICH2-style); both are
  /// topology-agnostic — the Figure 11 "Original".
  sim::Coro<void> bcast(int root, std::uint64_t bytes);
  sim::Coro<void> bcast_binomial(int root, std::uint64_t bytes);
  sim::Coro<void> bcast_scatter_allgather(int root, std::uint64_t bytes);
  /// WAN-aware broadcast: exactly one WAN crossing, then local binomial
  /// trees — the Figure 11 "Modified".
  sim::Coro<void> bcast_hierarchical(int root, std::uint64_t bytes);
  sim::Coro<void> reduce(int root, std::uint64_t bytes);
  sim::Coro<void> allreduce(std::uint64_t bytes);
  sim::Coro<void> alltoall(std::uint64_t bytes_per_pair);
  sim::Coro<void> alltoallv(const std::vector<std::uint64_t>& bytes_to);
  sim::Coro<void> allgather(std::uint64_t bytes_per_rank);
  sim::Coro<void> gather(int root, std::uint64_t bytes_per_rank);
  sim::Coro<void> scatter(int root, std::uint64_t bytes_per_rank);
  sim::Coro<void> reduce_scatter(std::uint64_t bytes_per_rank);

  /// Figure 9 knob (per-rank override of the job-wide config).
  void set_rendezvous_threshold(std::uint64_t t) {
    rendezvous_threshold_ = t;
  }
  std::uint64_t rendezvous_threshold() const {
    return rendezvous_threshold_;
  }

  /// Messaging statistics for tests.
  struct Stats {
    std::uint64_t eager_sent = 0;
    std::uint64_t rndv_sent = 0;
    std::uint64_t msgs_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t unexpected = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class Job;
  Rank(Job& job, int rank, net::Node& node, const MpiConfig& cfg);

  struct MsgHeader;
  struct PostedRecv;
  struct UnexpectedMsg;

  void on_recv_cqe(const ib::Cqe& cqe);
  void on_send_cqe(const ib::Cqe& cqe);
  void handle_eager(const MsgHeader& h);
  void handle_rts(const MsgHeader& h);
  void handle_cts(const MsgHeader& h);
  void handle_fin(const MsgHeader& h);
  void complete_eager_recv(std::shared_ptr<detail::RequestState> req,
                           const MsgHeader& h);
  void send_cts(int src_rank, std::uint64_t sender_req,
                std::uint64_t recv_req);
  bool matches(const PostedRecv& r, int src, int tag) const;
  std::uint64_t next_req_id() { return next_req_id_++; }
  ib::RcQp* qp_to(int peer);
  /// Sends any pending coalesce bundle for `dst` (keeps MPI's
  /// non-overtaking order when a non-bundled message follows).
  void flush_coalesce(int dst);
  /// Charges sequential CPU time on this rank; returns completion time.
  sim::Time charge_cpu(sim::Duration d);
  void post_ctrl(int peer, const MsgHeader& h, std::uint32_t wire_bytes,
                 std::uint64_t wr_id);

  Job& job_;
  int rank_;
  net::Node& node_;
  net::Cluster cluster_;
  const MpiConfig& cfg_;
  std::uint64_t rendezvous_threshold_;
  std::unique_ptr<ib::Hca> hca_;
  std::unique_ptr<ib::Cq> scq_;
  std::unique_ptr<ib::Cq> rcq_;
  std::unordered_map<int, ib::RcQp*> qps_;
  std::unordered_map<ib::Qpn, ib::RcQp*> by_qpn_;
  sim::Time cpu_busy_ = 0;

  std::list<PostedRecv> posted_recvs_;
  std::list<UnexpectedMsg> unexpected_;
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::RequestState>>
      active_sends_;
  std::unordered_map<std::uint64_t, std::shared_ptr<detail::RequestState>>
      active_recvs_;
  /// Rendezvous sends parked until their CTS arrives: req id -> bytes.
  std::unordered_map<std::uint64_t, std::uint64_t> rndv_bytes_;
  struct CoalesceBuf;
  std::unordered_map<int, std::unique_ptr<CoalesceBuf>> coalesce_;
  int coll_seq_ = 0;  // per-rank collective instance counter
  /// Request ids are rank-local: they key only this rank's own maps
  /// (peers echo them back opaquely), and keeping the counter here
  /// means two ranks progressing in parallel sites never share mutable
  /// state on the send path.
  std::uint64_t next_req_id_ = 1;
  Stats stats_;

  // Registered metrics (docs/METRICS.md §mpi); scope "node<id>/mpi".
  struct Obs {
    sim::Counter* eager_sent;
    sim::Counter* rndv_sent;
    sim::Counter* msgs_received;
    sim::Counter* unexpected;
    sim::Counter* bytes_sent;
    sim::Counter* coalesce_flushes;
    sim::Histogram* bcast_ns;
  };
  Obs obs_;
  char trace_tag_[12];  // "rank<N>"
};

/// A parallel job: one rank per fabric node (placement must not repeat
/// nodes — each simulated node runs a single process).
class Job {
 public:
  using Program = std::function<sim::Coro<void>(Rank&)>;

  Job(net::Fabric& fabric, std::vector<net::NodeId> placement,
      MpiConfig cfg = {});
  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  int size() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int i) { return *ranks_.at(i); }
  net::Fabric& fabric() { return fabric_; }
  const MpiConfig& config() const { return cfg_; }

  /// Ranks placed in a given cluster, ascending (used by the WAN-aware
  /// collectives).
  const std::vector<int>& ranks_in(net::Cluster c) const {
    return c == net::Cluster::kA ? ranks_a_ : ranks_b_;
  }

  /// Spawns `program` on every rank. Call sim().run() (or execute()) to
  /// drive it.
  void run(Program program);

  /// Runs the program to completion and returns elapsed seconds of
  /// simulated time. Aborts if the program deadlocks (network idle with
  /// unfinished ranks).
  double execute(Program program);

  bool finished() const { return finished_ranks() == size(); }
  int finished_ranks() const;
  double elapsed_seconds() const;

  /// Convenience placement: the first `per_cluster` hosts of each side.
  static std::vector<net::NodeId> split_placement(net::Fabric& fabric,
                                                  int per_cluster);

 private:
  friend class Rank;
  sim::Task run_rank(Rank& r, Program program);
  /// Creates every cross-cluster QP pair up front when the fabric is
  /// site-partitioned. The lazy first-use path in Rank::qp_to would
  /// otherwise mutate the peer rank's tables from the sender's site
  /// mid-run; connection setup is out-of-band CM (no events, no CPU
  /// charge, no metrics), so doing it eagerly is timing-invisible.
  void preconnect_cross_site();

  static constexpr sim::Time kUnfinished = ~sim::Time{0};

  net::Fabric& fabric_;
  MpiConfig cfg_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::vector<int> ranks_a_;
  std::vector<int> ranks_b_;
  sim::Time start_time_ = 0;
  /// Per-rank completion times (kUnfinished while running): each rank
  /// records its own site's clock, so no cross-site writes race; the
  /// job's elapsed time is the max, identical to the sequential value.
  std::vector<sim::Time> finish_time_;
};

}  // namespace ibwan::mpi
