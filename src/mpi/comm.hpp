// Sub-communicators.
//
// MPI_Comm_split-style groups over a Job's ranks, with collectives that
// run inside the subgroup. This is the building block WAN-aware
// middleware uses: split the world by cluster, run local collectives on
// the cluster communicator, and bridge the WAN explicitly — the
// generalization of the paper's hierarchical broadcast.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mpi/mpi.hpp"
#include "sim/coro.hpp"
#include "sim/task.hpp"

namespace ibwan::mpi {

class Comm {
 public:
  int size() const { return static_cast<int>(members_.size()); }
  /// This job-rank's position within the communicator (-1 if absent).
  int comm_rank(int job_rank) const {
    auto it = index_.find(job_rank);
    return it == index_.end() ? -1 : it->second;
  }
  int member(int comm_rank) const { return members_.at(comm_rank); }
  const std::vector<int>& members() const { return members_; }
  int id() const { return id_; }

  // --- Collectives over the subgroup (call from member ranks only) ---
  sim::Coro<void> barrier(Rank& r);
  /// Binomial broadcast rooted at comm rank `root`.
  sim::Coro<void> bcast(Rank& r, int root, std::uint64_t bytes);
  sim::Coro<void> reduce(Rank& r, int root, std::uint64_t bytes);
  sim::Coro<void> allreduce(Rank& r, std::uint64_t bytes);
  sim::Coro<void> allgather(Rank& r, std::uint64_t bytes_per_rank);

 private:
  friend class CommSplitter;
  int next_tag(Rank& r, int rounds = 64);

  int id_ = 0;
  std::vector<int> members_;           // job ranks, ordered by (key, rank)
  std::unordered_map<int, int> index_;  // job rank -> comm rank
  std::unordered_map<int, int> coll_seq_;  // per member
};

/// Collective communicator construction. All ranks of the job must call
/// split() in the same order; ranks passing the same color land in the
/// same communicator, ordered by (key, job rank). Synchronizes like a
/// barrier (the color allgather the real operation performs).
class CommSplitter {
 public:
  explicit CommSplitter(Job& job) : job_(job) {}

  sim::Coro<std::shared_ptr<Comm>> split(Rank& r, int color, int key = 0);

 private:
  struct PendingSplit {
    explicit PendingSplit(sim::Simulator& sim) : done(sim) {}
    std::map<int, std::vector<std::pair<int, int>>> by_color;  // (key,rank)
    std::unordered_map<int, std::shared_ptr<Comm>> comm_of_rank;
    std::unordered_map<int, int> color_of_rank;
    int arrived = 0;
    sim::Trigger done;
  };

  Job& job_;
  std::unordered_map<int, std::unique_ptr<PendingSplit>> pending_;
  std::unordered_map<int, int> split_seq_;  // per rank call counter
  int next_comm_id_ = 1;
};

}  // namespace ibwan::mpi
