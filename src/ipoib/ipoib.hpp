// IPoIB network device (IP-over-InfiniBand, the ib-ipoib Linux driver).
//
// Two modes, as in OFED 1.2:
//  * Datagram (UD): one UD QP, IP MTU capped at the IB MTU minus the
//    4-byte IPoIB encapsulation header (2044 bytes at a 2 KB path MTU).
//  * Connected (RC): one RC QP per peer, IP MTU up to 65520 — larger IP
//    packets mean fewer trips through the host stack per byte, which is
//    why IPoIB-RC wins the paper's Figure 7.
//
// The device models host-stack cost: a per-packet charge plus a per-byte
// charge, serialized on per-direction CPU resources. This is the
// "TCP stack processing overhead" that keeps IPoIB far below verbs
// bandwidth (Section 3.3), and it is shared by all connections on the
// node — which is what lets parallel streams *sustain* (not multiply)
// peak bandwidth.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"

namespace ibwan::ipoib {

using net::NodeId;

/// An IP packet (headers counted, payload carried as a descriptor).
struct IpPacket {
  NodeId src = 0;
  NodeId dst = 0;
  /// L4 payload bytes (TCP segment data).
  std::uint32_t payload_bytes = 0;
  /// IP + L4 header bytes on the wire.
  std::uint32_t header_bytes = 40;
  /// L4 header descriptor (e.g. tcp::Segment).
  std::shared_ptr<const void> l4;

  template <typename T>
  const T& l4_as() const {
    return *static_cast<const T*>(l4.get());
  }
};

/// IPoIB 4-byte encapsulation header.
inline constexpr std::uint32_t kEncapBytes = 4;
/// Max IP MTU in datagram mode at a 2048-byte IB path MTU.
inline constexpr std::uint32_t kUdIpMtu = 2048 - kEncapBytes;
/// Max IP MTU in connected mode (as in the ipoib driver).
inline constexpr std::uint32_t kConnectedIpMtu = 65520;

enum class Mode { kDatagram, kConnected };

struct IpoibConfig {
  Mode mode = Mode::kDatagram;
  /// IP MTU. Datagram mode requires <= kUdIpMtu.
  std::uint32_t mtu = kUdIpMtu;
  /// Host stack cost per data packet (interrupt, demux, socket work).
  sim::Duration cpu_per_packet = 4'000;
  /// Host stack cost per payload byte (checksums + copies), ns/byte.
  double cpu_per_byte = 1.0;
  /// Cheaper path for zero-payload segments (pure acks).
  sim::Duration cpu_per_ack = 1'200;
  /// Receive WQEs kept posted per QP.
  int prepost_recvs = 512;
};

class IpoibDevice {
 public:
  struct Stats {
    std::uint64_t ip_tx = 0;
    std::uint64_t ip_rx = 0;
    std::uint64_t tx_no_neighbor = 0;
  };

  IpoibDevice(ib::Hca& hca, IpoibConfig config);

  IpoibDevice(const IpoibDevice&) = delete;
  IpoibDevice& operator=(const IpoibDevice&) = delete;

  NodeId lid() const { return hca_.lid(); }
  const IpoibConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  sim::Simulator& sim() { return hca_.sim(); }

  /// Upper layer (TCP) receive hook.
  void set_ip_sink(std::function<void(IpPacket&&)> sink) {
    ip_sink_ = std::move(sink);
  }

  /// Transmits one IP packet. Total size must fit the IP MTU.
  void send_ip(IpPacket&& pkt);

  /// Neighbor/connection establishment between two devices (stands in
  /// for ARP + the IPoIB connected-mode CM exchange). Both directions.
  static void link(IpoibDevice& a, IpoibDevice& b);

 private:
  void deliver_up(const ib::Cqe& cqe);
  void post_to_fabric(const IpPacket& pkt);
  sim::Duration tx_cpu_cost(const IpPacket& pkt) const;

  ib::Hca& hca_;
  IpoibConfig config_;
  ib::Cq scq_;
  ib::Cq rcq_;
  ib::UdQp* ud_qp_ = nullptr;                      // datagram mode
  std::unordered_map<NodeId, ib::Qpn> neighbors_;  // datagram mode
  std::unordered_map<NodeId, ib::RcQp*> peers_;    // connected mode
  std::unordered_map<ib::Qpn, ib::RcQp*> by_qpn_;  // recv repost demux
  std::function<void(IpPacket&&)> ip_sink_;
  sim::Time tx_cpu_busy_ = 0;
  sim::Time rx_cpu_busy_ = 0;
  Stats stats_;
};

}  // namespace ibwan::ipoib
