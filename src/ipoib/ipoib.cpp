#include "ipoib/ipoib.hpp"

#include <cassert>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::ipoib {

IpoibDevice::IpoibDevice(ib::Hca& hca, IpoibConfig config)
    : hca_(hca), config_(config), scq_(hca.sim()), rcq_(hca.sim()) {
  if (config_.mode == Mode::kDatagram) {
    assert(config_.mtu <= kUdIpMtu && "datagram-mode MTU exceeds IB MTU");
  } else {
    assert(config_.mtu <= kConnectedIpMtu);
  }
  scq_.set_callback([](const ib::Cqe&) {});  // send completions unused
  rcq_.set_callback([this](const ib::Cqe& cqe) {
    // Repost the consumed receive, then walk the packet up the stack.
    if (config_.mode == Mode::kDatagram) {
      ud_qp_->post_recv(ib::RecvWr{});
    } else if (auto it = by_qpn_.find(cqe.qpn); it != by_qpn_.end()) {
      it->second->post_recv(ib::RecvWr{});
    }
    deliver_up(cqe);
  });
  if (config_.mode == Mode::kDatagram) {
    ud_qp_ = &hca_.create_ud_qp(scq_, rcq_);
    for (int i = 0; i < config_.prepost_recvs; ++i) {
      ud_qp_->post_recv(ib::RecvWr{});
    }
  }
}

void IpoibDevice::link(IpoibDevice& a, IpoibDevice& b) {
  if (a.config_.mode == Mode::kDatagram) {
    assert(b.config_.mode == Mode::kDatagram);
    a.neighbors_[b.lid()] = b.ud_qp_->qpn();
    b.neighbors_[a.lid()] = a.ud_qp_->qpn();
    return;
  }
  assert(b.config_.mode == Mode::kConnected);
  if (a.peers_.count(b.lid()) != 0) return;  // already connected
  ib::RcQp& qa = a.hca_.create_rc_qp(a.scq_, a.rcq_);
  ib::RcQp& qb = b.hca_.create_rc_qp(b.scq_, b.rcq_);
  qa.connect(b.lid(), qb.qpn());
  qb.connect(a.lid(), qa.qpn());
  a.peers_[b.lid()] = &qa;
  b.peers_[a.lid()] = &qb;
  a.by_qpn_[qa.qpn()] = &qa;
  b.by_qpn_[qb.qpn()] = &qb;
  for (int i = 0; i < a.config_.prepost_recvs; ++i) {
    qa.post_recv(ib::RecvWr{});
    qb.post_recv(ib::RecvWr{});
  }
}

sim::Duration IpoibDevice::tx_cpu_cost(const IpPacket& pkt) const {
  if (pkt.payload_bytes == 0) return config_.cpu_per_ack;
  return config_.cpu_per_packet +
         sim::duration_ceil(static_cast<double>(pkt.payload_bytes) *
                            config_.cpu_per_byte);
}

void IpoibDevice::send_ip(IpPacket&& pkt) {
  assert(pkt.payload_bytes + pkt.header_bytes <= config_.mtu &&
         "IP packet exceeds device MTU");
  pkt.src = lid();
  ++stats_.ip_tx;
  // Host transmit path: serialize on the tx CPU, then hand to the QP.
  sim::Simulator& s = sim();
  const sim::Time start = std::max(s.now(), tx_cpu_busy_) + tx_cpu_cost(pkt);
  tx_cpu_busy_ = start;
  auto shared = std::make_shared<IpPacket>(std::move(pkt));
  s.schedule_at(start, [this, shared] { post_to_fabric(*shared); });
}

void IpoibDevice::post_to_fabric(const IpPacket& pkt) {
  const std::uint64_t ib_len =
      pkt.payload_bytes + pkt.header_bytes + kEncapBytes;
  ib::SendWr wr{.length = ib_len,
                .app_payload = std::make_shared<IpPacket>(pkt)};
  if (config_.mode == Mode::kDatagram) {
    auto it = neighbors_.find(pkt.dst);
    if (it == neighbors_.end()) {
      ++stats_.tx_no_neighbor;
      IBWAN_WARN(sim().now(), "ipoib", "lid=%u no neighbor for dst=%u",
                 lid(), pkt.dst);
      return;
    }
    ud_qp_->post_send(wr, ib::UdDest{pkt.dst, it->second});
  } else {
    auto it = peers_.find(pkt.dst);
    if (it == peers_.end()) {
      ++stats_.tx_no_neighbor;
      IBWAN_WARN(sim().now(), "ipoib", "lid=%u not connected to dst=%u",
                 lid(), pkt.dst);
      return;
    }
    it->second->post_send(wr);
  }
}

void IpoibDevice::deliver_up(const ib::Cqe& cqe) {
  if (!cqe.app_payload) return;
  // Host receive path: serialize on the rx CPU before the socket layer.
  IpPacket pkt = cqe.payload_as<IpPacket>();
  sim::Simulator& s = sim();
  const sim::Time start = std::max(s.now(), rx_cpu_busy_) + tx_cpu_cost(pkt);
  rx_cpu_busy_ = start;
  ++stats_.ip_rx;
  auto shared = std::make_shared<IpPacket>(std::move(pkt));
  s.schedule_at(start, [this, shared] {
    if (ip_sink_) ip_sink_(std::move(*shared));
  });
}

}  // namespace ibwan::ipoib
