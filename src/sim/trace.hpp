// Bounded ring-buffer flight recorder for packet/QP/TCP/MPI/RPC
// events, stamped with simulated time.
//
// The recorder is owned by the Simulator (one per run) and is off
// ("disarmed") by default: an unarmed record() is a single branch.
// When armed it also registers itself as the thread-local sink for
// IBWAN_TRACE log lines, so kTrace-level logging is captured even
// when the process log level would suppress it (see docs/METRICS.md
// §flight recorder and the README debugging section).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace ibwan::sim {

/// Typed event kinds; trace_kind_name() gives the wire/dump spelling.
enum class TraceKind : std::uint8_t {
  // net
  kPktSend,        // a=packet id, b=wire bytes      (link starts serializing)
  kPktDeliver,     // a=packet id, b=wire bytes      (link hands to sink)
  kPktDrop,        // a=packet id, b=wire bytes, c=1 buffer / 2 loss /
                   //   3 fault (Gilbert–Elliott) / 4 link down / 5 no port
  // ib.rc
  kAckSend,        // a=cumulative psn acked
  kAckRecv,        // a=cumulative psn acked, b=msgs completed
  kNakSend,        // a=expected psn, b=got psn
  kRetransmit,     // a=first psn resent, b=next fresh psn
  kRtoFire,        // a=oldest unacked psn
  kWindowStall,    // a=queued msgs, b=inflight msgs  (RC send window full)
  kWindowResume,   // a=stalled ns
  // tcp
  kCwndStall,      // a=cwnd bytes, b=peer window bytes
  kRwndStall,      // a=cwnd bytes, b=peer window bytes
  kFastRetransmit, // a=seq resent
  kTcpRto,         // a=snd_una
  // mpi
  kEagerSend,      // a=dst rank, b=bytes
  kRndvRts,        // a=dst rank, b=bytes            (eager->rendezvous switch)
  kRndvCts,        // a=src rank, b=bytes
  kRndvFin,        // a=dst rank, b=bytes
  kBcastStart,     // a=root, b=bytes
  kBcastDone,      // a=root, b=elapsed ns
  // rpc / nfs
  kRpcIssue,       // a=xid, b=argument bytes
  kRpcComplete,    // a=xid, b=elapsed ns
  kChunkIssue,     // a=wr id, b=chunk bytes         (NFS/RDMA 4 KB chunk)
  kChunkComplete,  // a=wr id, b=elapsed ns
  // fault injection (src/net/faults.hpp)
  kLinkDown,       // a=in-flight+queued bytes at the flap
  kLinkUp,         // a=outage ns
  kBrownoutStart,  // a=squeezed buffer bytes, b=normal buffer bytes
  kBrownoutEnd,    // a=restored buffer bytes
  kQpError,        // a=oldest unacked psn, b=WQEs flushed (RC retry exhausted)
  // sdr (src/sdr/sdr.hpp)
  kSdrChunkSend,   // a=msg id, b=chunk index, c=0 data / 1 parity / 2 retrans
  kSdrNackSend,    // a=msg id, b=missing chunks requested
  kSdrRepair,      // a=msg id, b=group index, c=chunks repaired by parity
  kSdrMsgDone,     // a=msg id, b=message bytes, c=chunks repaired
  kSdrProbe,       // a=msg id, b=probe ordinal
  // free-form (routed IBWAN_TRACE log lines)
  kLog,
};

const char* trace_kind_name(TraceKind kind);

/// Fixed-size POD record; `tag` identifies the emitting instance
/// (link name, "rc-qp3", rank id...), a/b/c are kind-specific (above).
struct TraceEvent {
  Time time = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  TraceKind kind{};
  char tag[15] = {};
  char text[32] = {};  // only for kLog

  std::string format() const;  // one dump line, no newline
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Arm: start recording and become the thread-local IBWAN_TRACE
  /// sink (nesting restores the previous sink on disarm). Ring
  /// storage is allocated lazily on first arm.
  void arm();
  void disarm();
  bool armed() const { return armed_; }

  /// Resize (and clear) the ring. Only meaningful before/between runs.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  void record(Time now, TraceKind kind, const char* tag, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0);
  void record_text(Time now, const char* tag, const char* text);

  /// Events currently held, oldest first (at most capacity()).
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  /// Total events ever recorded, including overwritten ones.
  std::uint64_t recorded() const { return recorded_; }

  /// Human-readable dump, oldest first. Intended for on-demand
  /// inspection and dump-on-test-failure guards.
  void dump(std::FILE* out) const;
  void clear();

 private:
  TraceEvent& next_slot();

  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write position
  std::uint64_t recorded_ = 0;
  bool armed_ = false;
  FlightRecorder* prev_sink_ = nullptr;  // restored on disarm
};

/// True when some recorder on this thread is armed — log_enabled()
/// uses this to let IBWAN_TRACE lines through at low log levels.
bool trace_capture_active();

namespace detail {
/// Route one formatted kTrace log line into the armed recorder.
void route_trace_log(Time now, const char* tag, const char* text);
}  // namespace detail

}  // namespace ibwan::sim
