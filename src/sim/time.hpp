// Simulated-time definitions.
//
// All simulation time is kept in integer nanoseconds. Helper constants and
// conversion utilities keep protocol code free of magic numbers.
#pragma once

#include <cstdint>

namespace ibwan::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using Time = std::uint64_t;
/// A span of simulated time in nanoseconds.
using Duration = std::uint64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Converts a duration to fractional seconds (for reporting only).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a duration to fractional microseconds (for reporting only).
constexpr double to_microseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/// Rounds a fractional nanosecond quantity up to a whole-ns Duration.
/// Serialization times computed from byte counts and rates use this so a
/// transfer never finishes earlier than physically possible.
constexpr Duration duration_ceil(double ns) {
  auto whole = static_cast<Duration>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return v; }
constexpr Duration operator""_us(unsigned long long v) {
  return v * kMicrosecond;
}
constexpr Duration operator""_ms(unsigned long long v) {
  return v * kMillisecond;
}
constexpr Duration operator""_s(unsigned long long v) { return v * kSecond; }
}  // namespace literals

}  // namespace ibwan::sim
