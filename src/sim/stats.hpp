// Measurement utilities: running statistics, log-scale histograms, and
// labelled (x, y) series used by the benchmark harness to print
// paper-style tables.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ibwan::sim {

/// Numerically stable running mean/variance (Welford) with min/max.
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two binned histogram for sizes and latencies. Bin i counts
/// samples in (2^(i-1), 2^i]; samples of 0 or 1 land in bin 0.
class LogHistogram {
 public:
  void add(std::uint64_t v) {
    const int bin = v <= 1 ? 0 : 64 - std::countl_zero(v - 1);
    if (bin >= static_cast<int>(bins_.size())) bins_.resize(bin + 1, 0);
    ++bins_[bin];
    ++total_;
  }

  std::uint64_t total() const { return total_; }

  /// Count of samples in bins below bin_upper, i.e. values <= 2^(bin_upper-1).
  std::uint64_t count_below(int bin_upper) const {
    std::uint64_t c = 0;
    for (int i = 0; i < bin_upper && i < static_cast<int>(bins_.size()); ++i)
      c += bins_[i];
    return c;
  }

  const std::vector<std::uint64_t>& bins() const { return bins_; }

  /// Approximate p-quantile (returns the lower edge of the bin). The
  /// p≈1.0 fall-through lands in the last occupied bin and must report
  /// the same lower edge the in-loop path would — not the upper edge.
  std::uint64_t quantile(double p) const {
    if (total_ == 0) return 0;
    // Clamp before the cast: converting a negative or NaN double to an
    // unsigned integer is undefined behaviour. !(p > 0) catches NaN too.
    if (!(p > 0.0)) p = 0.0;
    if (p > 1.0) p = 1.0;
    const auto target =
        static_cast<std::uint64_t>(p * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      seen += bins_[i];
      if (seen > target) return i == 0 ? 0 : (1ULL << (i - 1));
    }
    return bins_.size() < 2 ? 0 : (1ULL << (bins_.size() - 2));
  }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// A labelled series of (x, y) points; benches collect one Series per
/// curve and print them side by side.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;

  void add(double x, double y) { points.emplace_back(x, y); }

  /// y value at x, or NaN if absent. x values are often computed
  /// (delay_us / 1000.0 and the like), so exact double equality would
  /// silently miss; match within a relative epsilon instead.
  double at(double x) const {
    for (const auto& [px, py] : points)
      if (nearly_equal(px, x)) return py;
    return std::numeric_limits<double>::quiet_NaN();
  }

  static bool nearly_equal(double a, double b) {
    if (a == b) return true;  // covers exact matches and both zero
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= scale * 1e-9;
  }
};

}  // namespace ibwan::sim
