#include "sim/metrics.hpp"

#include <algorithm>

namespace ibwan::sim {

namespace {

// Lower-bin-edge quantile over power-of-two bins (same convention as
// LogHistogram::quantile, but usable on merged snapshot bins).
std::uint64_t bins_quantile(const std::vector<std::uint64_t>& bins,
                            std::uint64_t total, double p) {
  if (total == 0) return 0;
  const auto target =
      static_cast<std::uint64_t>(p * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    seen += bins[i];
    if (seen > target) return i == 0 ? 0 : (1ULL << (i - 1));
  }
  return bins.size() < 2 ? 0 : (1ULL << (bins.size() - 2));
}

void json_string(std::FILE* out, const std::string& s) {
  std::fputc('"', out);
  for (char c : s) {
    if (c == '"' || c == '\\') std::fputc('\\', out);
    std::fputc(c, out);
  }
  std::fputc('"', out);
}

// Merge two path-sorted row vectors; `combine(dst, src)` folds a
// same-path row, new paths copy over.
template <typename Row, typename Combine>
void merge_rows(std::vector<Row>& dst, const std::vector<Row>& src,
                Combine combine) {
  std::vector<Row> out;
  out.reserve(dst.size() + src.size());
  std::size_t i = 0, j = 0;
  while (i < dst.size() || j < src.size()) {
    if (j >= src.size() || (i < dst.size() && dst[i].path < src[j].path)) {
      out.push_back(std::move(dst[i++]));
    } else if (i >= dst.size() || src[j].path < dst[i].path) {
      out.push_back(src[j++]);
    } else {
      combine(dst[i], src[j]);
      out.push_back(std::move(dst[i]));
      ++i;
      ++j;
    }
  }
  dst = std::move(out);
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const char* metric_unit_name(MetricUnit unit) {
  switch (unit) {
    case MetricUnit::kCount: return "count";
    case MetricUnit::kPackets: return "packets";
    case MetricUnit::kBytes: return "bytes";
    case MetricUnit::kMessages: return "messages";
    case MetricUnit::kNanoseconds: return "ns";
  }
  return "?";
}

MetricsRegistry::Entry& MetricsRegistry::lookup(std::string_view scope,
                                                std::string_view name,
                                                MetricKind kind,
                                                MetricUnit unit) {
  std::string path;
  path.reserve(scope.size() + 1 + name.size());
  path.append(scope);
  path.push_back('/');
  path.append(name);
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    assert(it->second.kind == kind && it->second.unit == unit &&
           "metric re-registered with a different kind or unit");
    (void)unit;
    return it->second;
  }
  std::size_t index = 0;
  switch (kind) {
    case MetricKind::kCounter:
      index = counters_.size();
      counters_.push_back(Counter(&enabled_));
      break;
    case MetricKind::kGauge:
      index = gauges_.size();
      gauges_.push_back(Gauge(&enabled_));
      break;
    case MetricKind::kHistogram:
      index = histograms_.size();
      histograms_.push_back(Histogram(&enabled_));
      break;
  }
  return entries_.emplace(std::move(path), Entry{kind, unit, index})
      .first->second;
}

Counter& MetricsRegistry::counter(std::string_view scope,
                                  std::string_view name, MetricUnit unit) {
  return counters_[lookup(scope, name, MetricKind::kCounter, unit).index];
}

Gauge& MetricsRegistry::gauge(std::string_view scope, std::string_view name,
                              MetricUnit unit) {
  return gauges_[lookup(scope, name, MetricKind::kGauge, unit).index];
}

Histogram& MetricsRegistry::histogram(std::string_view scope,
                                      std::string_view name,
                                      MetricUnit unit) {
  return histograms_[lookup(scope, name, MetricKind::kHistogram, unit).index];
}

std::vector<MetricsRegistry::Info> MetricsRegistry::inventory() const {
  std::vector<Info> out;
  out.reserve(entries_.size());
  for (const auto& [path, entry] : entries_)
    out.push_back(Info{path, entry.kind, entry.unit});
  return out;  // std::map iteration is already path-sorted
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  if (!enabled_) return snap;
  for (const auto& [path, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::kCounter: {
        const Counter& c = counters_[entry.index];
        snap.counters.push_back({path, entry.unit, c.value()});
        break;
      }
      case MetricKind::kGauge: {
        const Gauge& g = gauges_[entry.index];
        snap.gauges.push_back({path, entry.unit, g.value(), g.max()});
        break;
      }
      case MetricKind::kHistogram: {
        const Histogram& h = histograms_[entry.index];
        snap.histograms.push_back(
            {path, entry.unit, h.count(), h.stats().min(), h.stats().max(),
             h.stats().mean(), h.stats().sum(), h.bins().quantile(0.50),
             h.bins().quantile(0.99), h.bins().bins()});
        break;
      }
    }
  }
  return snap;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  merge_rows(counters, other.counters,
             [](CounterRow& a, const CounterRow& b) { a.value += b.value; });
  merge_rows(gauges, other.gauges, [](GaugeRow& a, const GaugeRow& b) {
    a.value = std::max(a.value, b.value);
    a.max = std::max(a.max, b.max);
  });
  merge_rows(histograms, other.histograms,
             [](HistogramRow& a, const HistogramRow& b) {
               if (b.count == 0) return;
               if (a.count == 0) {
                 a.min = b.min;
                 a.max = b.max;
               } else {
                 a.min = std::min(a.min, b.min);
                 a.max = std::max(a.max, b.max);
               }
               a.sum += b.sum;
               a.count += b.count;
               a.mean = a.sum / static_cast<double>(a.count);
               if (b.bins.size() > a.bins.size()) a.bins.resize(b.bins.size(), 0);
               for (std::size_t i = 0; i < b.bins.size(); ++i)
                 a.bins[i] += b.bins[i];
               a.p50 = bins_quantile(a.bins, a.count, 0.50);
               a.p99 = bins_quantile(a.bins, a.count, 0.99);
             });
}

void MetricsSnapshot::write_json(std::FILE* out) const {
  std::fputs("{\n  \"schema\": \"ibwan.metrics.v1\",\n  \"counters\": [", out);
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const auto& r = counters[i];
    std::fputs(i ? ",\n    " : "\n    ", out);
    std::fputs("{\"name\": ", out);
    json_string(out, r.path);
    std::fprintf(out, ", \"unit\": \"%s\", \"value\": %llu}",
                 metric_unit_name(r.unit),
                 static_cast<unsigned long long>(r.value));
  }
  std::fputs(counters.empty() ? "],\n" : "\n  ],\n", out);
  std::fputs("  \"gauges\": [", out);
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const auto& r = gauges[i];
    std::fputs(i ? ",\n    " : "\n    ", out);
    std::fputs("{\"name\": ", out);
    json_string(out, r.path);
    std::fprintf(out, ", \"unit\": \"%s\", \"value\": %lld, \"max\": %lld}",
                 metric_unit_name(r.unit), static_cast<long long>(r.value),
                 static_cast<long long>(r.max));
  }
  std::fputs(gauges.empty() ? "],\n" : "\n  ],\n", out);
  std::fputs("  \"histograms\": [", out);
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& r = histograms[i];
    std::fputs(i ? ",\n    " : "\n    ", out);
    std::fputs("{\"name\": ", out);
    json_string(out, r.path);
    std::fprintf(out,
                 ", \"unit\": \"%s\", \"count\": %llu, \"min\": %.9g, "
                 "\"max\": %.9g, \"mean\": %.9g, \"sum\": %.9g, \"p50\": "
                 "%llu, \"p99\": %llu, \"bins\": [",
                 metric_unit_name(r.unit),
                 static_cast<unsigned long long>(r.count), r.min, r.max,
                 r.mean, r.sum, static_cast<unsigned long long>(r.p50),
                 static_cast<unsigned long long>(r.p99));
    for (std::size_t b = 0; b < r.bins.size(); ++b)
      std::fprintf(out, "%s%llu", b ? ", " : "",
                   static_cast<unsigned long long>(r.bins[b]));
    std::fputs("]}", out);
  }
  std::fputs(histograms.empty() ? "]\n}\n" : "\n  ]\n}\n", out);
}

bool MetricsSnapshot::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_json(f);
  std::fclose(f);
  return true;
}

void MetricsSnapshot::write_csv(std::FILE* out) const {
  std::fputs("name,kind,unit,value,max,count,min,mean,p50,p99\n", out);
  for (const auto& r : counters)
    std::fprintf(out, "%s,counter,%s,%llu,,,,,,\n", r.path.c_str(),
                 metric_unit_name(r.unit),
                 static_cast<unsigned long long>(r.value));
  for (const auto& r : gauges)
    std::fprintf(out, "%s,gauge,%s,%lld,%lld,,,,,\n", r.path.c_str(),
                 metric_unit_name(r.unit), static_cast<long long>(r.value),
                 static_cast<long long>(r.max));
  for (const auto& r : histograms)
    std::fprintf(out, "%s,histogram,%s,,%.9g,%llu,%.9g,%.9g,%llu,%llu\n",
                 r.path.c_str(), metric_unit_name(r.unit), r.max,
                 static_cast<unsigned long long>(r.count), r.min, r.mean,
                 static_cast<unsigned long long>(r.p50),
                 static_cast<unsigned long long>(r.p99));
}

bool MetricsSnapshot::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  write_csv(f);
  std::fclose(f);
  return true;
}

MetricsAggregator& MetricsAggregator::global() {
  // NOLINT-IBWAN(CONC003): export-time aggregator; merged after the
  // engine has joined its site threads (mutex-guarded internally)
  static MetricsAggregator agg;
  return agg;
}

void MetricsAggregator::activate() {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = true;
}

bool MetricsAggregator::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void MetricsAggregator::absorb(const MetricsSnapshot& snap) {
  std::lock_guard<std::mutex> lock(mu_);
  merged_.merge(snap);
}

MetricsSnapshot MetricsAggregator::merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_;
}

void MetricsAggregator::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  active_ = false;
  merged_ = MetricsSnapshot{};
}

}  // namespace ibwan::sim
