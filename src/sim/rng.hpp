// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** — fast, high-quality, and fully reproducible across
// platforms (unlike distributions from <random>, whose output is
// implementation-defined).
#pragma once

#include <cstdint>
#include <cmath>

namespace ibwan::sim {

/// Deterministic RNG with convenience draws used by workload generators.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform draw over the full 64-bit range.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponential draw with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ibwan::sim
