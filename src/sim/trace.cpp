#include "sim/trace.hpp"

#include <algorithm>

namespace ibwan::sim {

namespace {
// The armed recorder acting as this thread's IBWAN_TRACE sink. Sweeps
// run one simulator per worker thread, so thread-local keeps
// concurrently armed recorders independent.
// NOLINT-IBWAN(CONC003): thread_local by design — one recorder per
// worker thread is exactly the per-LP isolation the rule wants
thread_local FlightRecorder* t_sink = nullptr;

void copy_padded(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  if (src)
    for (; i + 1 < cap && src[i]; ++i) dst[i] = src[i];
  dst[i] = '\0';
}
}  // namespace

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPktSend: return "pkt-send";
    case TraceKind::kPktDeliver: return "pkt-deliver";
    case TraceKind::kPktDrop: return "pkt-drop";
    case TraceKind::kAckSend: return "ack-send";
    case TraceKind::kAckRecv: return "ack-recv";
    case TraceKind::kNakSend: return "nak-send";
    case TraceKind::kRetransmit: return "retransmit";
    case TraceKind::kRtoFire: return "rto-fire";
    case TraceKind::kWindowStall: return "window-stall";
    case TraceKind::kWindowResume: return "window-resume";
    case TraceKind::kCwndStall: return "cwnd-stall";
    case TraceKind::kRwndStall: return "rwnd-stall";
    case TraceKind::kFastRetransmit: return "fast-retransmit";
    case TraceKind::kTcpRto: return "tcp-rto";
    case TraceKind::kEagerSend: return "eager-send";
    case TraceKind::kRndvRts: return "rndv-rts";
    case TraceKind::kRndvCts: return "rndv-cts";
    case TraceKind::kRndvFin: return "rndv-fin";
    case TraceKind::kBcastStart: return "bcast-start";
    case TraceKind::kBcastDone: return "bcast-done";
    case TraceKind::kRpcIssue: return "rpc-issue";
    case TraceKind::kRpcComplete: return "rpc-complete";
    case TraceKind::kChunkIssue: return "chunk-issue";
    case TraceKind::kChunkComplete: return "chunk-complete";
    case TraceKind::kLinkDown: return "link-down";
    case TraceKind::kLinkUp: return "link-up";
    case TraceKind::kBrownoutStart: return "brownout-start";
    case TraceKind::kBrownoutEnd: return "brownout-end";
    case TraceKind::kQpError: return "qp-error";
    case TraceKind::kSdrChunkSend: return "sdr-chunk-send";
    case TraceKind::kSdrNackSend: return "sdr-nack-send";
    case TraceKind::kSdrRepair: return "sdr-repair";
    case TraceKind::kSdrMsgDone: return "sdr-msg-done";
    case TraceKind::kSdrProbe: return "sdr-probe";
    case TraceKind::kLog: return "log";
  }
  return "?";
}

std::string TraceEvent::format() const {
  char buf[160];
  if (kind == TraceKind::kLog) {
    std::snprintf(buf, sizeof(buf), "[%12.3fus] %-15s %s: %s",
                  to_microseconds(time), trace_kind_name(kind), tag, text);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "[%12.3fus] %-15s %s: a=%llu b=%llu c=%llu",
                  to_microseconds(time), trace_kind_name(kind), tag,
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(c));
  }
  return buf;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

FlightRecorder::~FlightRecorder() {
  if (armed_) disarm();
}

void FlightRecorder::arm() {
  if (armed_) return;
  if (ring_.empty()) ring_.resize(capacity_);
  armed_ = true;
  prev_sink_ = t_sink;
  t_sink = this;
}

void FlightRecorder::disarm() {
  if (!armed_) return;
  armed_ = false;
  if (t_sink == this) t_sink = prev_sink_;
  prev_sink_ = nullptr;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  capacity_ = std::max<std::size_t>(capacity, 1);
  ring_.clear();
  if (armed_) ring_.resize(capacity_);
  head_ = 0;
  recorded_ = 0;
}

TraceEvent& FlightRecorder::next_slot() {
  TraceEvent& slot = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  ++recorded_;
  return slot;
}

void FlightRecorder::record(Time now, TraceKind kind, const char* tag,
                            std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) {
  if (!armed_) return;
  TraceEvent& e = next_slot();
  e.time = now;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.c = c;
  copy_padded(e.tag, sizeof(e.tag), tag);
  e.text[0] = '\0';
}

void FlightRecorder::record_text(Time now, const char* tag,
                                 const char* text) {
  if (!armed_) return;
  TraceEvent& e = next_slot();
  e.time = now;
  e.kind = TraceKind::kLog;
  e.a = e.b = e.c = 0;
  copy_padded(e.tag, sizeof(e.tag), tag);
  copy_padded(e.text, sizeof(e.text), text);
}

std::size_t FlightRecorder::size() const {
  return recorded_ < capacity_ ? static_cast<std::size_t>(recorded_)
                               : capacity_;
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest event: head_ when the ring has wrapped, slot 0 otherwise.
  const std::size_t start = recorded_ < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ring_[(start + i) % capacity_]);
  return out;
}

void FlightRecorder::dump(std::FILE* out) const {
  const auto evs = events();
  std::fprintf(out, "--- flight recorder: %zu event(s) held, %llu recorded ---\n",
               evs.size(), static_cast<unsigned long long>(recorded_));
  for (const auto& e : evs) std::fprintf(out, "%s\n", e.format().c_str());
}

void FlightRecorder::clear() {
  head_ = 0;
  recorded_ = 0;
}

bool trace_capture_active() { return t_sink != nullptr; }

namespace detail {
void route_trace_log(Time now, const char* tag, const char* text) {
  if (t_sink) t_sink->record_text(now, tag, text);
}
}  // namespace detail

}  // namespace ibwan::sim
