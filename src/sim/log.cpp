#include "sim/log.hpp"

namespace ibwan::sim {

namespace {
LogLevel g_level = LogLevel::kOff;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_line(LogLevel level, Time now, const char* tag, const char* fmt,
              ...) {
  if (static_cast<int>(g_level) < static_cast<int>(level)) return;
  std::fprintf(stderr, "[%12.3fus] %s: ", to_microseconds(now), tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace ibwan::sim
