#include "sim/log.hpp"

#include "sim/trace.hpp"

namespace ibwan::sim {

namespace {
LogLevel g_level = LogLevel::kOff;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_line(LogLevel level, Time now, const char* tag, const char* fmt,
              ...) {
  if (!log_enabled(level)) return;
  char msg[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  if (level == LogLevel::kTrace && trace_capture_active())
    detail::route_trace_log(now, tag, msg);
  if (static_cast<int>(g_level) >= static_cast<int>(level))
    std::fprintf(stderr, "[%12.3fus] %s: %s\n", to_microseconds(now), tag,
                 msg);
}

}  // namespace ibwan::sim
