// Minimal leveled logging stamped with simulated time.
//
// Logging is off by default (benchmarks simulate millions of packets);
// tests and examples can raise the level for specific investigations.
#pragma once

#include <cstdarg>
#include <cstdio>

#include "sim/time.hpp"

namespace ibwan::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log threshold.
LogLevel log_level();
void set_log_level(LogLevel level);

/// True when an armed FlightRecorder on this thread is capturing
/// kTrace lines (defined in trace.cpp).
bool trace_capture_active();

/// Whether a line at `level` should be formatted at all: either the
/// process threshold admits it, or it is a kTrace line and an armed
/// flight recorder wants it even though stderr logging is quieter.
inline bool log_enabled(LogLevel level) {
  if (static_cast<int>(log_level()) >= static_cast<int>(level)) return true;
  return level == LogLevel::kTrace && trace_capture_active();
}

/// printf-style log line: "[   12.345us] tag: message". Lines at
/// kTrace are also routed to the armed flight recorder (if any);
/// stderr output still obeys the process threshold.
void log_line(LogLevel level, Time now, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace ibwan::sim

// Guarded macros avoid formatting cost when the level is disabled.
#define IBWAN_LOG(level, sim_now, tag, ...)                         \
  do {                                                              \
    if (::ibwan::sim::log_enabled(level)) {                         \
      ::ibwan::sim::log_line(level, (sim_now), (tag), __VA_ARGS__); \
    }                                                               \
  } while (0)

#define IBWAN_DEBUG(sim_now, tag, ...) \
  IBWAN_LOG(::ibwan::sim::LogLevel::kDebug, sim_now, tag, __VA_ARGS__)
#define IBWAN_TRACE(sim_now, tag, ...) \
  IBWAN_LOG(::ibwan::sim::LogLevel::kTrace, sim_now, tag, __VA_ARGS__)
#define IBWAN_WARN(sim_now, tag, ...) \
  IBWAN_LOG(::ibwan::sim::LogLevel::kWarn, sim_now, tag, __VA_ARGS__)
