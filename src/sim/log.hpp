// Minimal leveled logging stamped with simulated time.
//
// Logging is off by default (benchmarks simulate millions of packets);
// tests and examples can raise the level for specific investigations.
#pragma once

#include <cstdarg>
#include <cstdio>

#include "sim/time.hpp"

namespace ibwan::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Process-wide log threshold.
LogLevel log_level();
void set_log_level(LogLevel level);

/// printf-style log line: "[   12.345us] tag: message".
void log_line(LogLevel level, Time now, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace ibwan::sim

// Guarded macros avoid formatting cost when the level is disabled.
#define IBWAN_LOG(level, sim_now, tag, ...)                         \
  do {                                                              \
    if (static_cast<int>(::ibwan::sim::log_level()) >=              \
        static_cast<int>(level)) {                                  \
      ::ibwan::sim::log_line(level, (sim_now), (tag), __VA_ARGS__); \
    }                                                               \
  } while (0)

#define IBWAN_DEBUG(sim_now, tag, ...) \
  IBWAN_LOG(::ibwan::sim::LogLevel::kDebug, sim_now, tag, __VA_ARGS__)
#define IBWAN_TRACE(sim_now, tag, ...) \
  IBWAN_LOG(::ibwan::sim::LogLevel::kTrace, sim_now, tag, __VA_ARGS__)
#define IBWAN_WARN(sim_now, tag, ...) \
  IBWAN_LOG(::ibwan::sim::LogLevel::kWarn, sim_now, tag, __VA_ARGS__)
