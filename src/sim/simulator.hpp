// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered event queue. Events are arbitrary
// callbacks; ties are broken by insertion order so runs are fully
// deterministic. Everything in the library (links, HCAs, TCP timers,
// MPI progress) is driven by this one clock.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ibwan::sim {

/// Handle identifying a scheduled event; usable with Simulator::cancel().
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` ns from now. Returns a cancellable id.
  EventId schedule(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at absolute time `t` (must not be in the past).
  EventId schedule_at(Time t, Callback cb) {
    assert(t >= now_ && "cannot schedule into the past");
    const EventId id = next_seq_++;
    queue_.push(Entry{t, id, std::move(cb)});
    return id;
  }

  /// Cancels a pending event. Cancelling an already-run or unknown id is a
  /// harmless no-op (timers commonly race with the work they guard).
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Runs until the event queue drains.
  void run() {
    while (step()) {
    }
  }

  /// Runs events with time <= t, then advances the clock to exactly t.
  /// Returns true if events remain scheduled after t.
  bool run_until(Time t) {
    while (!queue_.empty() && queue_.top().time <= t) {
      step();
    }
    if (now_ < t) now_ = t;
    return !queue_.empty();
  }

  /// Runs for `d` ns of simulated time from the current instant.
  bool run_for(Duration d) { return run_until(now_ + d); }

  /// Executes the next event, if any. Returns false when the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      // priority_queue::top() is const; the callback is moved out under a
      // const_cast, which is safe because the entry is popped immediately.
      Entry& top = const_cast<Entry&>(queue_.top());
      const Time t = top.time;
      const EventId id = top.seq;
      Callback cb = std::move(top.cb);
      queue_.pop();
      if (auto it = cancelled_.find(id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      assert(t >= now_);
      now_ = t;
      ++executed_;
      cb();
      return true;
    }
    return false;
  }

  /// Number of events executed so far (for performance reporting).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending.
  std::size_t pending() const { return queue_.size(); }

  /// Simulator-owned RNG so all stochastic behaviour shares one seed.
  Rng& rng() { return rng_; }
  void seed(std::uint64_t s) { rng_.reseed(s); }

 private:
  struct Entry {
    Time time;
    EventId seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
  Time now_ = 0;
  EventId next_seq_ = 1;
  std::uint64_t executed_ = 0;
  Rng rng_;
};

}  // namespace ibwan::sim
