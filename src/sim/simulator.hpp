// Discrete-event simulation engine.
//
// A Simulator owns a time-ordered event queue. Events are arbitrary
// callbacks; ties are broken by insertion order so runs are fully
// deterministic. Everything in the library (links, HCAs, TCP timers,
// MPI progress) is driven by this one clock.
//
// Two structures back the queue, both feeding off one slot pool that
// stores the callbacks:
//
//   - an indexed 4-ary min-heap over (time, seq) for future events.
//     Heap entries are 16-byte PODs (time, seq|slot packed), so the four
//     children scanned per sift level share one cache line and sifting
//     never moves a callback. Each slot records its heap position, so
//     cancel() removes the event in place in O(log n) — no tombstone
//     set, no deferred garbage — and cancelling a stale id is an O(1)
//     generation-check no-op.
//
//   - a same-instant FIFO for events scheduled at exactly `now()` (the
//     coroutine layer and completion dispatch produce these in bulk).
//     They never touch the heap: append and fire are O(1), and the
//     global sequence number keeps their ordering against heap events
//     bit-for-bit identical to a single queue.
//
// Freed slots recycle through a free list and callbacks are
// InlineFunction (see inline_function.hpp), so steady-state traffic —
// schedule/fire/cancel churn with captures up to 48 bytes — runs with
// zero heap allocations and zero callback moves on the schedule path.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace ibwan::sim {

/// Handle identifying a scheduled event; usable with Simulator::cancel().
/// Encodes (slot generation << 32 | slot index); generations start at 1,
/// so a forged small-integer id never matches a live event.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Callback = InlineFunction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run `delay` ns from now. Returns a cancellable id.
  /// Accepts any void() callable; captures are constructed in place.
  template <class F>
  EventId schedule(Duration delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Schedules `cb` at absolute time `t` (must not be in the past).
  template <class F>
  EventId schedule_at(Time t, F&& cb) {
    assert(t >= now_ && "cannot schedule into the past");
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      s.cb = std::forward<F>(cb);
    } else {
      s.cb.emplace(std::forward<F>(cb));
    }
    const std::uint64_t seq = next_seq_++;
    assert(seq < (1ull << kSeqBits) && "event sequence space exhausted");
    const std::uint64_t key = (seq << kSlotBits) | slot;
    if (t == now_) {
      // Same-instant dispatch: O(1) FIFO append, no heap traffic. The
      // FIFO only ever holds events for the current instant — the heap
      // is never fired past a live FIFO entry, so time cannot advance
      // while one is pending.
      assert(fifo_head_ == fifo_.size() || fifo_time_ == now_);
      fifo_time_ = now_;
      s.pos = kInFifo;
      fifo_.push_back(FifoEntry{key, s.gen});
      ++fifo_live_;
    } else {
      heap_.emplace_back();  // open a hole; sift_up fills it
      sift_up(heap_.size() - 1, HeapEntry{t, key});
    }
    return make_id(slot, s.gen);
  }

  /// Cancels a pending event in place (O(log n) for future events, O(1)
  /// for same-instant ones). Cancelling an already-run or unknown id is
  /// an O(1) no-op (timers commonly race with the work they guard); it
  /// leaves no residue behind, and the captured state is destroyed
  /// immediately.
  void cancel(EventId id) {
    const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<std::uint32_t>(id >> 32);
    // A generation match implies the event is pending: both firing and
    // cancellation bump the slot's generation when they release it.
    if (slot >= slots_.size() || slots_[slot].gen != gen) return;
    Slot& s = slots_[slot];
    if (s.pos == kInFifo) {
      // The FIFO entry stays behind; the generation bump below marks it
      // stale and the drain skips it. Bounded: the FIFO never outlives
      // the current instant.
      --fifo_live_;
    } else {
      remove_at(s.pos);
    }
    s.cb.reset();
    free_slot(slot);
  }

  /// Runs until the event queue drains.
  void run() {
    while (next_event_time() != kNoEvent) fire_one();
  }

  /// Runs events with time <= t, then advances the clock to exactly t.
  /// Returns true if events remain scheduled after t.
  bool run_until(Time t) {
    for (;;) {
      const Time nt = next_event_time();
      if (nt == kNoEvent || nt > t) break;
      fire_one();
    }
    if (now_ < t) now_ = t;
    return pending() > 0;
  }

  /// Runs for `d` ns of simulated time from the current instant.
  bool run_for(Duration d) { return run_until(now_ + d); }

  /// Executes the next event, if any. Returns false when the queue is empty.
  bool step() {
    if (next_event_time() == kNoEvent) return false;
    fire_one();
    return true;
  }

  /// Sentinel returned by peek_next_time() when the queue is empty.
  static constexpr Time kNoEventTime = ~Time{0};

  /// Time of the earliest pending event, or kNoEventTime when idle.
  /// Used by the site-parallel engine (engine.hpp) to compute the
  /// global safe horizon.
  Time peek_next_time() { return next_event_time(); }

  /// Fires events with time strictly below `h`, leaving the clock at
  /// the last fired event (the clock does NOT advance to h — an event
  /// scheduled exactly at the horizon belongs to the next window and
  /// may still be preceded by cross-site arrivals at the same instant).
  /// Returns the number of events fired.
  std::uint64_t run_events_before(Time h) {
    std::uint64_t fired = 0;
    for (;;) {
      const Time nt = next_event_time();
      if (nt == kNoEvent || nt >= h) break;
      fire_one();
      ++fired;
    }
    return fired;
  }

  /// Number of events executed so far (for performance reporting).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (cancelled events excluded).
  std::size_t pending() const { return heap_.size() + fifo_live_; }

  /// Total callback slots ever allocated. Bounded by the maximum number
  /// of *concurrently* pending events — it must not grow with the number
  /// of schedule/fire/cancel operations (regression hook for the old
  /// tombstone-set leak).
  std::size_t slot_capacity() const { return slots_.size(); }

  /// Simulator-owned RNG so all stochastic behaviour shares one seed.
  Rng& rng() { return rng_; }
  void seed(std::uint64_t s) {
    seed_ = s;
    rng_.reseed(s);
  }

  /// Independent RNG derived from the run seed and a stream name
  /// (FNV-1a). Consumers that must not perturb the main stream — fault
  /// injection, optional instrumentation — draw from their own named
  /// stream, so enabling them leaves rng()'s sequence untouched.
  Rng rng_stream(std::string_view name) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ULL;
    }
    // NOLINT-IBWAN(DET004): this IS the stream factory — the state is
    // overwritten from the run seed on the next line
    Rng r;
    r.reseed(seed_ ^ h);
    return r;
  }

  /// Per-run observability (docs/METRICS.md): every layer registers
  /// its instruments here. Disabled by default — enabling must not
  /// change simulated behaviour, only record it.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Per-run packet flight recorder; disarmed by default.
  FlightRecorder& recorder() { return recorder_; }

 private:
  // seq gets 40 bits (~10^12 events per run), slot 24 (16M concurrently
  // pending events). seq is unique, so the packed key's slot bits never
  // influence ordering; they just ride along to keep the entry at 16 B.
  static constexpr unsigned kSlotBits = 24;
  static constexpr unsigned kSeqBits = 64 - kSlotBits;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint32_t kNone = 0xffffffffu;
  static constexpr std::uint32_t kInFifo = 0xfffffffeu;
  static constexpr Time kNoEvent = ~Time{0};

  struct HeapEntry {
    Time time;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & kSlotMask;
    }
  };
  static_assert(sizeof(HeapEntry) == 16);

  struct FifoEntry {
    std::uint64_t key;  // same packing as HeapEntry::key
    std::uint32_t gen;  // stale (cancelled / slot reused) when != slot gen
  };

  struct Slot {
    std::uint32_t gen = 1;
    std::uint32_t pos = kNone;  // heap position / kInFifo while pending,
                                // free-list link while free
    Callback cb;
  };
  static_assert(sizeof(Slot) == 64, "one event slot per cache line");

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.key < b.key;
  }

  /// Time of the next live event (kNoEvent if none), popping any stale
  /// cancelled entries off the FIFO front on the way.
  Time next_event_time() {
    while (fifo_head_ != fifo_.size()) {
      const FifoEntry& e = fifo_[fifo_head_];
      if (slots_[static_cast<std::uint32_t>(e.key) & kSlotMask].gen == e.gen) {
        return fifo_time_;  // never later than any heap event
      }
      pop_fifo_front();
    }
    return heap_.empty() ? kNoEvent : heap_[0].time;
  }

  /// Fires the earliest live event. Precondition: next_event_time() was
  /// just called and did not return kNoEvent (so a live FIFO entry, if
  /// any, sits exactly at the FIFO front).
  void fire_one() {
    if (fifo_head_ != fifo_.size()) {
      const FifoEntry e = fifo_[fifo_head_];
      // A heap event at the same instant with a smaller sequence number
      // was scheduled earlier and must fire first.
      if (heap_.empty() || heap_[0].time > fifo_time_ ||
          heap_[0].key > e.key) {
        pop_fifo_front();
        --fifo_live_;
        const std::uint32_t slot = static_cast<std::uint32_t>(e.key) & kSlotMask;
        Slot& s = slots_[slot];
        assert(fifo_time_ == now_);
        Callback cb = std::move(s.cb);
        free_slot(slot);
        ++executed_;
        cb();
        return;
      }
    }
    fire_top();
  }

  void pop_fifo_front() {
    if (++fifo_head_ == fifo_.size()) {
      fifo_.clear();
      fifo_head_ = 0;
    }
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNone) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].pos;
      return slot;
    }
    if (slots_.size() > kSlotMask) {
      std::fprintf(stderr, "Simulator: > %u concurrently pending events\n",
                   kSlotMask);
      std::abort();
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void free_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    ++s.gen;  // invalidates outstanding EventIds for this slot
    s.pos = free_head_;
    free_head_ = slot;
  }

  // sift_up/sift_down place `e` starting the search at position `i`,
  // whose current contents the caller has already saved or vacated.
  void sift_up(std::size_t i, const HeapEntry& e) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      slots_[heap_[i].slot()].pos = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = e;
    slots_[e.slot()].pos = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i, const HeapEntry& e) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best;
      if (first + 4 <= n) {
        // Full fan-out (the common case): tournament min — the two
        // halves compare independently, halving the serial chain.
        const std::size_t b01 =
            earlier(heap_[first + 1], heap_[first]) ? first + 1 : first;
        const std::size_t b23 =
            earlier(heap_[first + 3], heap_[first + 2]) ? first + 3 : first + 2;
        best = earlier(heap_[b23], heap_[b01]) ? b23 : b01;
      } else {
        best = first;
        for (std::size_t c = first + 1; c < n; ++c) {
          if (earlier(heap_[c], heap_[best])) best = c;
        }
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      slots_[heap_[i].slot()].pos = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = e;
    slots_[e.slot()].pos = static_cast<std::uint32_t>(i);
  }

  /// Removes the entry at heap position `pos`, refilling the hole with
  /// the last entry.
  void remove_at(std::size_t pos) {
    const HeapEntry moved = heap_.back();
    heap_.pop_back();
    if (pos == heap_.size()) return;  // removed the last entry
    // The replacement may need to travel either direction.
    if (pos > 0 && earlier(moved, heap_[(pos - 1) / 4])) {
      sift_up(pos, moved);
    } else {
      sift_down(pos, moved);
    }
  }

  void fire_top() {
    const HeapEntry top = heap_[0];
    const std::uint32_t slot = top.slot();
    Slot& s = slots_[slot];
    assert(top.time >= now_);
    now_ = top.time;
    Callback cb = std::move(s.cb);
    // Pop the root: refill with the last entry.
    const HeapEntry moved = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0, moved);
    // Free before invoking so (a) the callback can recycle the slot for
    // events it schedules and (b) cancel() of the firing event's own id
    // from inside the callback is a generation-checked no-op.
    free_slot(slot);
    ++executed_;
    cb();
  }

  std::vector<HeapEntry> heap_;
  std::vector<FifoEntry> fifo_;
  std::size_t fifo_head_ = 0;
  std::size_t fifo_live_ = 0;
  Time fifo_time_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNone;
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t seed_ = 0x9e3779b97f4a7c15ULL;  // Rng's default seed
  Rng rng_;
  MetricsRegistry metrics_;
  FlightRecorder recorder_;
};

}  // namespace ibwan::sim
