// Per-simulator metrics registry: named counters, gauges, and
// histograms with hierarchical `<instance>/<layer>/<metric>` paths.
//
// Design constraints (see docs/METRICS.md for the full schema):
//  * Near-zero cost when disabled. Instruments are registered eagerly
//    in layer constructors but every mutation is gated on a single
//    bool owned by the registry, so a disabled run pays one predicted
//    branch per tick and allocates nothing beyond registration.
//  * One registry per Simulator. Sweeps run one simulator per grid
//    point on a thread pool; keeping the registry inside the
//    simulator keeps ticks unsynchronised. Cross-run aggregation goes
//    through the mutex-protected MetricsAggregator instead.
//  * Deterministic export: snapshots are sorted by path, so two runs
//    with identical seeds produce identical JSON/CSV bytes.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace ibwan::sim {

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Unit tags exported alongside every metric; docs/METRICS.md keys its
/// inventory on (path, kind, unit).
enum class MetricUnit {
  kCount,        // dimensionless event count
  kPackets,      // wire packets / datagrams / segments
  kBytes,        // payload or wire bytes
  kMessages,     // application-level messages / RPC calls / NFS ops
  kNanoseconds,  // simulated time
};

const char* metric_kind_name(MetricKind kind);
const char* metric_unit_name(MetricUnit unit);

/// Monotonic event counter. `add` is a no-op while the owning registry
/// is disabled.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (*enabled_) value_ += n;
  }
  std::uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Instantaneous level with a high-watermark. `set`/`add` are no-ops
/// while the owning registry is disabled.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!*enabled_) return;
    value_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  std::int64_t value() const { return value_; }
  std::int64_t max() const { return max_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Distribution instrument: Welford running stats plus power-of-two
/// bins (for quantiles). `observe` is a no-op while disabled.
class Histogram {
 public:
  void observe(std::uint64_t v) {
    if (!*enabled_) return;
    stats_.add(static_cast<double>(v));
    bins_.add(v);
  }
  std::uint64_t count() const { return bins_.total(); }
  const OnlineStats& stats() const { return stats_; }
  const LogHistogram& bins() const { return bins_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  OnlineStats stats_;
  LogHistogram bins_;
};

/// Value copy of a registry at a point in simulated time. Rows are
/// sorted by path; a snapshot taken while the registry is disabled is
/// empty. Snapshots from different simulators merge (counters sum,
/// gauges take the max, histogram bins add).
struct MetricsSnapshot {
  struct CounterRow {
    std::string path;
    MetricUnit unit;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string path;
    MetricUnit unit;
    std::int64_t value;  // last set; after merge: max of last values
    std::int64_t max;    // high-watermark
  };
  struct HistogramRow {
    std::string path;
    MetricUnit unit;
    std::uint64_t count;
    double min, max, mean, sum;
    std::uint64_t p50, p99;  // lower bin edges, recomputed after merge
    std::vector<std::uint64_t> bins;  // power-of-two bins, bin 0 = values <= 1
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Fold `other` into this snapshot (same-path rows combine; new
  /// paths are inserted keeping sort order).
  void merge(const MetricsSnapshot& other);

  /// "ibwan.metrics.v1" JSON document (docs/METRICS.md §export).
  void write_json(std::FILE* out) const;
  bool write_json(const std::string& path) const;

  /// Flat CSV: name,kind,unit,value,max,count,min,mean,p50,p99.
  void write_csv(std::FILE* out) const;
  bool write_csv(const std::string& path) const;
};

/// Registry of instruments for one simulator. Disabled by default;
/// instruments registered while disabled still exist (registration is
/// how the schema dump enumerates the namespace) but never mutate.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Get-or-register. `scope` is `<instance>/<layer>` (e.g.
  /// "node3/ib.rc"), `name` the metric leaf. Returned references stay
  /// valid for the registry's lifetime. Re-registering an existing
  /// path returns the same instrument; kind/unit must match.
  Counter& counter(std::string_view scope, std::string_view name,
                   MetricUnit unit = MetricUnit::kCount);
  Gauge& gauge(std::string_view scope, std::string_view name,
               MetricUnit unit = MetricUnit::kCount);
  Histogram& histogram(std::string_view scope, std::string_view name,
                       MetricUnit unit = MetricUnit::kCount);

  /// Registered paths with kind/unit, sorted by path — the machine
  /// half of the docs/METRICS.md inventory check.
  struct Info {
    std::string path;
    MetricKind kind;
    MetricUnit unit;
  };
  std::vector<Info> inventory() const;

  /// Sorted value copy; empty while disabled.
  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricKind kind;
    MetricUnit unit;
    std::size_t index;  // into the kind-specific deque
  };
  Entry& lookup(std::string_view scope, std::string_view name,
                MetricKind kind, MetricUnit unit);

  bool enabled_ = false;
  std::map<std::string, Entry, std::less<>> entries_;
  // Deques: stable addresses as instruments are added.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

/// Process-wide sink for cross-simulator aggregation (bench --metrics).
/// Inactive by default; when active, core::Testbed enables each new
/// simulator's registry and absorbs its snapshot on teardown.
class MetricsAggregator {
 public:
  static MetricsAggregator& global();

  void activate();
  bool active() const;
  void absorb(const MetricsSnapshot& snap);
  MetricsSnapshot merged() const;
  void reset();  // deactivate and drop accumulated rows (tests)

 private:
  mutable std::mutex mu_;
  bool active_ = false;
  MetricsSnapshot merged_;
};

}  // namespace ibwan::sim
