#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace ibwan::sim {

SiteEngine::SiteEngine(int sites, int threads) {
  assert(sites >= 1);
  sites_.reserve(static_cast<std::size_t>(sites));
  for (int i = 0; i < sites; ++i) {
    sites_.push_back(std::make_unique<Simulator>());
  }
  if (threads <= 0) {
    // Worker count is a pure wall-clock knob: it never influences event
    // order, so reading the machine here cannot leak into outputs.
    // NOLINT-IBWAN(DET001): hardware_concurrency sizes the worker pool
    // only; simulated results are thread-count invariant by design
    const unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(hw == 0 ? 1 : hw);
  }
  threads_ = std::min(threads, sites);
  if (threads_ < 1) threads_ = 1;
  if (sites_.size() > 1 && threads_ > 1) {
    pool_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int w = 1; w < threads_; ++w) {
      pool_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

SiteEngine::~SiteEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_go_.notify_all();
  for (std::thread& t : pool_) t.join();
}

SiteEngine::Channel& SiteEngine::make_channel(int src_site, int dst_site) {
  assert(src_site >= 0 && src_site < sites());
  assert(dst_site >= 0 && dst_site < sites());
  assert(src_site != dst_site);
  const int id = static_cast<int>(channels_.size());
  channels_.push_back(std::unique_ptr<Channel>(new Channel(
      id, src_site, dst_site, sites_[std::size_t(src_site)].get())));
  return *channels_.back();
}

void SiteEngine::seed(std::uint64_t s) {
  for (auto& site : sites_) site->seed(s);
}

Time SiteEngine::now() const {
  Time t = 0;
  for (const auto& site : sites_) t = std::max(t, site->now());
  return t;
}

std::uint64_t SiteEngine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& site : sites_) n += site->events_executed();
  return n;
}

void SiteEngine::run() {
  if (!parallel()) {
    sites_[0]->run();
    return;
  }
  run_parallel();
}

void SiteEngine::run_parallel() {
  if (channels_.empty()) {
    // No LP boundaries were wired, so the sites cannot interact; each
    // simply drains independently.
    for (auto& site : sites_) site->run();
    return;
  }
  if (lookahead_ <= 0) {
    std::fprintf(stderr,
                 "SiteEngine: parallel run requires a positive lookahead\n");
    std::abort();
  }
  for (;;) {
    // Barrier phase (single-threaded): find the global minimum next
    // event across site queues and channel buffers.
    Time m = Simulator::kNoEventTime;
    for (auto& site : sites_) m = std::min(m, site->peek_next_time());
    for (const auto& ch : channels_) {
      for (const Channel::Entry& e : ch->buf_) m = std::min(m, e.at);
    }
    if (m == Simulator::kNoEventTime) return;  // everything drained

    const Time horizon = m + lookahead_;
    assert(horizon > m && "lookahead overflow");
    ++stats_.windows;
    merge_channels(horizon);
    run_window(horizon);
  }
}

void SiteEngine::merge_channels(Time horizon) {
  // Collect every buffered entry with arrival < horizon, per
  // destination, and schedule them in (arrival, push time, channel id,
  // push seq) order — unique keys, so the order is total and
  // reproducible. The push-time key replays the sequential engine's
  // FIFO-by-schedule-order rule for same-instant arrivals from
  // different senders; channel id only breaks exact double ties, where
  // wiring order matches the sequential posting order.
  struct Ref {
    Time at;
    Time pushed;
    int chan;
    std::uint64_t seq;
    Channel* owner;
    std::size_t index;
  };
  std::vector<Ref> due;
  for (const auto& ch : channels_) {
    auto& buf = ch->buf_;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (buf[i].at < horizon) {
        due.push_back(
            Ref{buf[i].at, buf[i].pushed, ch->id_, buf[i].seq, ch.get(), i});
      }
    }
  }
  if (due.empty()) return;
  std::sort(due.begin(), due.end(), [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.pushed != b.pushed) return a.pushed < b.pushed;
    if (a.chan != b.chan) return a.chan < b.chan;
    return a.seq < b.seq;
  });
  for (Ref& r : due) {
    Channel::Entry& e = r.owner->buf_[r.index];
    Simulator& dst = *sites_[static_cast<std::size_t>(r.owner->dst_)];
    assert(e.at >= dst.now() && "channel arrival violates the lookahead");
    if (dst.peek_next_time() == e.at) ++stats_.tie_arrivals;
    dst.schedule_at(e.at, std::move(e.cb));
    ++stats_.channel_msgs;
  }
  // Compact each touched buffer, preserving the order of survivors.
  for (const auto& ch : channels_) {
    auto& buf = ch->buf_;
    if (buf.empty()) continue;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (buf[i].cb) {  // merged entries had their callback moved out
        if (keep != i) buf[keep] = std::move(buf[i]);
        ++keep;
      }
    }
    buf.resize(keep);
  }
}

void SiteEngine::run_window(Time horizon) {
  if (threads_ == 1 || pool_.empty()) {
    for (auto& site : sites_) site->run_events_before(horizon);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    horizon_ = horizon;
    working_ = static_cast<int>(pool_.size());
    ++gen_;
  }
  cv_go_.notify_all();
  run_share(/*worker=*/0, horizon);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return working_ == 0; });
}

void SiteEngine::run_share(int worker, Time horizon) {
  // Static partition: site i always runs on worker i % threads. The
  // split affects only which core does the work, never event order.
  const int n = sites();
  for (int i = worker; i < n; i += threads_) {
    sites_[static_cast<std::size_t>(i)]->run_events_before(horizon);
  }
}

void SiteEngine::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Time horizon;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_go_.wait(lock, [&] { return stop_ || gen_ != seen; });
      if (stop_) return;
      seen = gen_;
      horizon = horizon_;
    }
    run_share(worker, horizon);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--working_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace ibwan::sim
