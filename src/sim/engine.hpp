// Conservative site-parallel discrete-event engine (DESIGN.md §13).
//
// A SiteEngine partitions one simulation into K logical processes
// ("sites"), each owning a full Simulator — event queue, RNG streams,
// metrics registry, flight recorder. The only way simulated causality
// crosses a site boundary is a Channel: a time-stamped message queue
// attached to a WAN link (net::Link in channel mode). Because the
// paper's WAN imposes a fixed lower bound on cross-site latency
// (propagation + emulated distance, Table 1's 5 µs/km), an event at
// one site can never affect another site sooner than that bound — the
// classic Chandy–Misra conservative lookahead.
//
// The run loop is a windowed barrier protocol (YAWNS-style):
//
//   1. Barrier (one thread): m = min over every site's next event time
//      and every channel's buffered arrivals; horizon H = m + lookahead.
//      Buffered channel entries with arrival < H are merged into their
//      destination site's queue, ordered by (arrival, source-site push
//      time, channel id, push seq) — a total order, so the merge is
//      bit-reproducible, and the push-time key makes same-instant
//      arrivals from different senders land in the order the
//      sequential engine would have scheduled them.
//   2. Window (parallel): each site fires its events with time strictly
//      below H. Any event fired has time >= m, so a message it pushes
//      arrives at >= m + lookahead = H — never inside the open window.
//      An event exactly at H waits for the next window (the torn-horizon
//      case: a same-instant cross-site arrival may still have to merge
//      ahead of it).
//
// Determinism: per-site ordering is the sequential Simulator's
// (time, seq); cross-site merge order is (timestamp, push time,
// channel, seq); neither depends on thread count or scheduling, so a
// 1-worker and an 8-worker run of the same partition produce
// byte-identical outputs.
// A 1-site engine degenerates to Simulator::run() — today's sequential
// path — which is the differential oracle (IBWAN_THREADS=1).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ibwan::sim {

class SiteEngine {
 public:
  /// Cross-site message queue: the LP boundary. All pushes happen from
  /// the source site's window (its worker thread); the engine drains
  /// the buffer single-threaded at the next barrier. The barrier's
  /// mutex orders the two phases, so the buffer is never touched
  /// concurrently.
  class Channel {
   public:
    /// Queues `cb` to run on the destination site at absolute time
    /// `arrival`. Must satisfy arrival >= source site now + lookahead
    /// (checked at the merge). `cb` runs on the destination site's
    /// worker thread and must only touch destination-site state.
    /// The entry is stamped with the source site's current simulated
    /// time: when several channels deliver to one site at the same
    /// instant (an N-site hub), the merge replays the sequential
    /// engine's order — whichever sender scheduled its delivery first
    /// goes first — instead of an arbitrary channel-id order.
    void push(Time arrival, Simulator::Callback cb) {
      buf_.push_back(
          Entry{arrival, src_sim_->now(), next_seq_++, std::move(cb)});
    }

    int src_site() const { return src_; }
    int dst_site() const { return dst_; }

   private:
    friend class SiteEngine;
    struct Entry {
      Time at;
      Time pushed;        // source-site clock at push: first tie-break
      std::uint64_t seq;  // per-channel push counter: merge tie-break
      Simulator::Callback cb;
    };
    Channel(int id, int src, int dst, const Simulator* src_sim)
        : id_(id), src_(src), dst_(dst), src_sim_(src_sim) {}
    int id_;  // creation order: tie-break after the push stamp
    int src_;
    int dst_;
    const Simulator* src_sim_;
    std::uint64_t next_seq_ = 0;
    std::vector<Entry> buf_;
  };

  struct Stats {
    std::uint64_t windows = 0;        // barrier rounds executed
    std::uint64_t channel_msgs = 0;   // cross-site messages merged
    std::uint64_t tie_arrivals = 0;   // arrivals that tied a local event
  };

  /// `sites` logical processes; `threads` <= 0 picks
  /// min(sites, hardware_concurrency). With threads == 1 the windowed
  /// loop runs entirely on the calling thread (same algorithm, same
  /// outputs — thread count never affects event order).
  explicit SiteEngine(int sites, int threads = 0);
  ~SiteEngine();

  SiteEngine(const SiteEngine&) = delete;
  SiteEngine& operator=(const SiteEngine&) = delete;

  int sites() const { return static_cast<int>(sites_.size()); }
  int threads() const { return threads_; }
  /// True when the engine actually partitions (more than one site).
  bool parallel() const { return sites_.size() > 1; }

  Simulator& site(int i) { return *sites_[static_cast<std::size_t>(i)]; }

  /// Creates a src→dst channel. Call during wiring (single-threaded);
  /// creation order fixes the merge tie-break id.
  Channel& make_channel(int src_site, int dst_site);

  /// Conservative lookahead: the minimum simulated delay of any
  /// cross-site channel. Must be > 0 before run() on a parallel
  /// engine; derived by the fabric from the WAN link's propagation +
  /// emulated one-way delay.
  void set_lookahead(Duration l) { lookahead_ = l; }
  Duration lookahead() const { return lookahead_; }

  /// Seeds every site identically, so per-site named RNG streams match
  /// the sequential run's (stream identity is (seed, name), and
  /// instance names are globally unique).
  void seed(std::uint64_t s);

  /// Runs until every site's queue and every channel drains.
  void run();

  /// Max over site clocks — equals the sequential run's final now().
  Time now() const;

  /// Sum of events fired across sites.
  std::uint64_t events_executed() const;

  const Stats& stats() const { return stats_; }

 private:
  void run_parallel();
  void merge_channels(Time horizon);
  void run_window(Time horizon);
  void worker_loop(int worker);
  void run_share(int worker, Time horizon);

  std::vector<std::unique_ptr<Simulator>> sites_;
  std::vector<std::unique_ptr<Channel>> channels_;
  Duration lookahead_ = 0;
  Stats stats_;

  // Worker pool (threads_ - 1 spawned threads; the caller is worker 0).
  // A generation-counted barrier: bumping gen_ under the mutex releases
  // the workers into run_share(horizon_); working_ counts them back in.
  int threads_ = 1;
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_go_;
  std::condition_variable cv_done_;
  std::uint64_t gen_ = 0;
  int working_ = 0;
  Time horizon_ = 0;
  bool stop_ = false;
};

}  // namespace ibwan::sim
