// Awaitable coroutine type.
//
// Coro<T> is for composable async functions (collectives built on
// point-to-point, RPC built on sockets): it starts eagerly, suspends at
// the first blocking point, and resumes its awaiter on completion via
// symmetric transfer. The handle owns the frame; destruction after
// completion is automatic through RAII. Task (task.hpp) remains the
// detached, top-level "simulated thread".
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace ibwan::sim {

template <typename T = void>
class [[nodiscard]] Coro;

namespace detail {

struct CoroPromiseBase {
  std::coroutine_handle<> continuation = nullptr;
  bool done = false;

  std::suspend_never initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      CoroPromiseBase& p = h.promise();
      p.done = true;
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  [[noreturn]] void unhandled_exception() { std::terminate(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Coro {
 public:
  struct promise_type : detail::CoroPromiseBase {
    std::optional<T> value;
    Coro get_return_object() {
      return Coro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Coro(Coro&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() {
    if (h_) h_.destroy();
  }

  bool done() const { return h_.promise().done; }

  auto operator co_await() {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return h.promise().done; }
      void await_suspend(std::coroutine_handle<> caller) noexcept {
        h.promise().continuation = caller;
      }
      T await_resume() { return std::move(*h.promise().value); }
    };
    return Awaiter{h_};
  }

 private:
  explicit Coro(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Coro<void> {
 public:
  struct promise_type : detail::CoroPromiseBase {
    Coro get_return_object() {
      return Coro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Coro(Coro&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Coro(const Coro&) = delete;
  Coro& operator=(const Coro&) = delete;
  ~Coro() {
    if (h_) h_.destroy();
  }

  bool done() const { return h_.promise().done; }

  auto operator co_await() {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return h.promise().done; }
      void await_suspend(std::coroutine_handle<> caller) noexcept {
        h.promise().continuation = caller;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{h_};
  }

 private:
  explicit Coro(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace ibwan::sim
