// Coroutine support on top of the discrete-event simulator.
//
// Protocol drivers and benchmark "programs" (MPI ranks, NFS client
// threads, TCP applications) are written as C++20 coroutines that
// co_await simulated time and completion events. A Task runs eagerly
// when called and destroys its own frame on completion, so spawning a
// simulated thread is just calling the coroutine function.
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ibwan::sim {

/// Detached, self-destroying coroutine. The return object carries no state;
/// lifetime is managed entirely by the coroutine machinery.
struct Task {
  struct promise_type {
    Task get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };
};

/// Awaitable that resumes the coroutine after `delay` ns of simulated time.
/// Always suspends (a zero delay is a cooperative yield).
class SleepAwaiter {
 public:
  SleepAwaiter(Simulator& sim, Duration delay) : sim_(sim), delay_(delay) {}
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.schedule(delay_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  Duration delay_;
};

inline SleepAwaiter sleep_for(Simulator& sim, Duration d) { return {sim, d}; }

/// Resumable multi-waiter event. fire() releases every coroutine currently
/// (or subsequently) waiting; a fired trigger stays fired until reset().
class Trigger {
 public:
  explicit Trigger(Simulator& sim) : sim_(sim) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  bool fired() const { return fired_; }

  void fire() {
    if (fired_) return;
    fired_ = true;
    release_all();
  }

  /// Re-arms the trigger. Only valid when no coroutine is waiting.
  void reset() {
    assert(waiters_.empty());
    fired_ = false;
  }

  auto wait() {
    struct Awaiter {
      Trigger& t;
      bool await_ready() const noexcept { return t.fired_; }
      void await_suspend(std::coroutine_handle<> h) {
        t.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  void release_all() {
    // Hand-off through the scheduler keeps resumption non-reentrant and
    // deterministic with respect to other same-time events.
    for (auto h : waiters_) {
      sim_.schedule(0, [h] { h.resume(); });
    }
    waiters_.clear();
  }

  Simulator& sim_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Join-counter for fork/join program structure: add() before spawning,
/// done() at each completion, co_await wait() to join.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : trigger_(sim) {}

  void add(int n = 1) { count_ += n; }
  void done() {
    assert(count_ > 0);
    if (--count_ == 0) trigger_.fire();
  }
  auto wait() { return trigger_.wait(); }
  int count() const { return count_; }

 private:
  int count_ = 0;
  Trigger trigger_;
};

/// Counting semaphore with FIFO wakeup, for bounding concurrency
/// (e.g. outstanding RPC chunks, connection backlog).
class Semaphore {
 public:
  Semaphore(Simulator& sim, int permits) : sim_(sim), permits_(permits) {}

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() const noexcept { return s.try_acquire(); }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  bool try_acquire() {
    if (permits_ > 0) {
      --permits_;
      return true;
    }
    return false;
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      // Permit is handed directly to the released waiter.
      sim_.schedule(0, [h] { h.resume(); });
    } else {
      ++permits_;
    }
  }

  int available() const { return permits_; }

 private:
  Simulator& sim_;
  int permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot value channel bridging callback-style completion to coroutines.
/// Future<T> is a copyable handle to shared state; set_value() resumes the
/// (single) awaiting coroutine through the scheduler.
template <typename T>
class Future {
 public:
  explicit Future(Simulator& sim) : state_(std::make_shared<State>(sim)) {}

  void set_value(T v) {
    assert(!state_->value.has_value() && "future set twice");
    state_->value = std::move(v);
    if (state_->waiter) {
      auto h = state_->waiter;
      state_->waiter = nullptr;
      state_->sim.schedule(0, [h] { h.resume(); });
    }
  }

  bool ready() const { return state_->value.has_value(); }

  auto operator co_await() {
    struct Awaiter {
      std::shared_ptr<State> s;
      bool await_ready() const noexcept { return s->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        assert(s->waiter == nullptr && "future awaited twice");
        s->waiter = h;
      }
      T await_resume() { return std::move(*s->value); }
    };
    return Awaiter{state_};
  }

 private:
  struct State {
    explicit State(Simulator& s) : sim(s) {}
    Simulator& sim;
    std::optional<T> value;
    std::coroutine_handle<> waiter = nullptr;
  };
  std::shared_ptr<State> state_;
};

/// Marker type for Future<void>-style signalling.
struct Unit {};

}  // namespace ibwan::sim
