// Small-buffer-optimized move-only callable for simulator events.
//
// The event loop schedules millions of short-lived callbacks whose
// captures are almost always a node pointer plus a couple of integers.
// std::function copies that pattern fine, but its type-erased storage is
// moved through the priority queue on every sift and falls back to the
// heap for captures past ~16 bytes. InlineFunction gives the engine a
// callable that (a) stores any capture up to kInlineCapacity bytes in
// place — no allocation on the schedule hot path — and (b) is move-only,
// so captures holding unique_ptr or other move-only state schedule
// directly without shared_ptr wrapping.
//
// Callables larger than the buffer (or with stronger alignment than
// max_align_t, or throwing moves) degrade gracefully to a single heap
// allocation; behaviour is identical either way.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ibwan::sim {

class InlineFunction {
 public:
  /// Sized for the library's common captures: a `this` pointer, a
  /// shared_ptr payload, and a few 64-bit ids fit without allocating.
  /// 48 + the vtable pointer keeps sizeof(InlineFunction) at 56, so an
  /// event slot (8 bytes of header + callback) is exactly a cache line.
  static constexpr std::size_t kInlineCapacity = 48;

  /// Captures needing over-aligned storage (> 8) take the heap path;
  /// none of the simulator's callbacks do, and the relaxed alignment is
  /// what keeps the object — and the event slots built around it — from
  /// padding out to 64+16 bytes.
  static constexpr std::size_t kInlineAlign = 8;

  InlineFunction() noexcept = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Constructs the callable directly in this object's storage (the
  /// scheduling hot path: captures are written straight into the event
  /// slot, never moved through a temporary).
  template <class F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kVTable<D, /*Inline=*/true>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kVTable<D, /*Inline=*/false>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Destroys the held callable (and its captures), leaving *this empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  /// True when the held callable lives in the inline buffer (test hook).
  bool is_inline() const noexcept { return vt_ != nullptr && vt_->inline_storage; }

 private:
  struct VTable {
    void (*invoke)(void*);
    // Move-constructs src's callable into dst and destroys src's.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
    // Relocation is a plain byte copy (trivially-copyable inline capture,
    // or the heap pointer itself): take() skips the indirect call.
    bool trivial_relocate;
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D, bool Inline>
  struct Ops {
    static void invoke(void* p) {
      if constexpr (Inline) {
        (*static_cast<D*>(p))();
      } else {
        (**static_cast<D**>(p))();
      }
    }
    static void relocate(void* src, void* dst) noexcept {
      if constexpr (Inline) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      } else {
        // Heap case: ownership transfers by moving the pointer itself.
        ::new (dst) D*(*static_cast<D**>(src));
      }
    }
    static void destroy(void* p) noexcept {
      if constexpr (Inline) {
        static_cast<D*>(p)->~D();
      } else {
        delete *static_cast<D**>(p);
      }
    }
  };

  template <class D, bool Inline>
  static constexpr VTable kVTable{
      &Ops<D, Inline>::invoke, &Ops<D, Inline>::relocate,
      &Ops<D, Inline>::destroy, Inline,
      /*trivial_relocate=*/!Inline || std::is_trivially_copyable_v<D>};

  void take(InlineFunction& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      if (vt_->trivial_relocate) {
        __builtin_memcpy(buf_, other.buf_, kInlineCapacity);
      } else {
        vt_->relocate(other.buf_, buf_);
      }
      other.vt_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineCapacity];
  const VTable* vt_ = nullptr;
};

}  // namespace ibwan::sim
