// ONC-RPC-style request/reply transport, over TCP (record marking) or
// over RDMA (the NFS/RDMA design: inline call/reply messages, bulk data
// moved by server-initiated RDMA in fixed-size chunks).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ib/cq.hpp"
#include "ib/hca.hpp"
#include "ib/qp.hpp"
#include "sdr/sdr.hpp"
#include "sim/coro.hpp"
#include "sim/metrics.hpp"
#include "sim/task.hpp"
#include "tcp/tcp.hpp"

namespace ibwan::rpc {

using net::NodeId;

/// A call as seen by the server handler.
struct CallArgs {
  std::uint32_t proc = 0;
  /// Serialized argument bytes (inline in the call message).
  std::uint64_t arg_bytes = 0;
  /// Bulk payload the client is pushing (e.g. NFS WRITE data).
  std::uint64_t data_to_server = 0;
  /// Typed argument descriptor.
  std::shared_ptr<const void> body;

  template <typename T>
  const T& args_as() const {
    return *static_cast<const T*>(body.get());
  }
};

/// The server handler's reply.
struct ReplyInfo {
  /// Serialized result bytes (inline in the reply message).
  std::uint64_t reply_bytes = 0;
  /// Bulk payload returned to the client (e.g. NFS READ data).
  std::uint64_t data_to_client = 0;
  std::shared_ptr<const void> body;
  /// False when the transport gave up — the retry budget was exhausted
  /// (TCP transport) or the underlying QP flushed (RDMA transport).
  /// The payload fields are meaningless in that case.
  bool ok = true;
};

/// Client-side bounded retry-with-backoff for timed-out calls.
/// timeout == 0 (the default) preserves the wait-forever behaviour;
/// chaos runs set a finite budget so a faulted WAN cannot hang a
/// caller. Retries reuse the xid, so a duplicate execution on the
/// server is absorbed by the first reply winning (ONC-RPC semantics;
/// handlers are idempotent the way NFS ops are).
struct RpcRetryConfig {
  sim::Duration timeout = 0;
  int max_retries = 3;
  double backoff = 2.0;
};

/// Server-side dispatch: one concurrently-running coroutine per call.
using Handler = std::function<sim::Coro<ReplyInfo>(const CallArgs&)>;

/// RPC header sizes (call/reply message framing).
inline constexpr std::uint32_t kCallHeaderBytes = 128;
inline constexpr std::uint32_t kReplyHeaderBytes = 96;

class RpcClient {
 public:
  virtual ~RpcClient() = default;
  /// Issues a call and suspends until the reply (and all bulk data)
  /// has arrived. Thread-safe in the simulated sense: any number of
  /// coroutines may have calls in flight.
  virtual sim::Coro<ReplyInfo> call(CallArgs args) = 0;
};

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

class TcpRpcServer {
 public:
  TcpRpcServer(tcp::TcpStack& stack, tcp::Port port);
  void set_handler(Handler h) { handler_ = std::move(h); }

 private:
  sim::Task serve(tcp::TcpConnection& conn,
                  std::shared_ptr<const void> marker);

  tcp::TcpStack& stack_;
  Handler handler_;
  sim::Counter* obs_calls_served_;  // "node<lid>/rpc.tcp" calls_served
};

class TcpRpcClient : public RpcClient {
 public:
  /// Opens one connection to the server (NFS mounts share a connection
  /// across client threads, as in the paper's IOzone setup).
  TcpRpcClient(tcp::TcpStack& stack, NodeId server, tcp::Port port);

  sim::Coro<ReplyInfo> call(CallArgs args) override;

  void set_retry(const RpcRetryConfig& retry) { retry_ = retry; }

 private:
  struct Pending;
  sim::Simulator& sim_;
  tcp::TcpConnection& conn_;
  std::uint64_t next_xid_ = 1;
  RpcRetryConfig retry_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;

  // Registered metrics (docs/METRICS.md §rpc); scope "node<lid>/rpc.tcp".
  struct Obs {
    sim::Counter* calls;
    sim::Counter* retries;
    sim::Counter* call_failures;
    sim::Gauge* inflight;
    sim::Histogram* call_ns;
  };
  Obs obs_;
  char trace_tag_[12];  // "rpc-c<lid>"
};

// ---------------------------------------------------------------------------
// RDMA transport
// ---------------------------------------------------------------------------

struct RdmaRpcConfig {
  /// Bulk data is fragmented into chunks of this size and moved with
  /// RDMA (writes for server->client, reads for client->server). The
  /// paper's NFS/RDMA design uses 4 KB — the root of its WAN cliff.
  std::uint32_t chunk_bytes = 4096;
};

class RdmaRpcServer {
 public:
  RdmaRpcServer(ib::Hca& hca, RdmaRpcConfig config = {});
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Connection establishment (out-of-band CM exchange): creates the
  /// server-side QP and cross-connects it with the client's.
  ib::RcQp* accept(ib::RcQp& client_qp, ib::Lid client_lid);

  const RdmaRpcConfig& config() const { return config_; }

 private:
  friend class RdmaRpcClient;
  struct CallMsg;
  // CallMsg passes by value: coroutine parameters must not reference
  // storage owned by the triggering completion event.
  sim::Task serve(ib::RcQp* qp, CallMsg call);
  void on_recv(const ib::Cqe& cqe);

  ib::Hca& hca_;
  RdmaRpcConfig config_;
  Handler handler_;
  ib::Cq scq_;
  ib::Cq rcq_;
  std::unordered_map<ib::Qpn, ib::RcQp*> by_qpn_;
  std::vector<ib::RcQp*> qps_;
  std::unordered_map<std::uint64_t, std::shared_ptr<sim::WaitGroup>>
      read_waiters_;
  /// Issue timestamps of outstanding chunk RDMA reads, keyed by wr_id.
  std::unordered_map<std::uint64_t, sim::Time> read_issued_;
  std::uint64_t next_read_id_ = 1;

  // Registered metrics (docs/METRICS.md §rpc); scope "node<lid>/rpc.rdma".
  struct Obs {
    sim::Counter* chunks_read;
    sim::Counter* chunks_written;
    sim::Histogram* chunk_read_ns;
  };
  Obs obs_;
  char trace_tag_[12];  // "rpc-s<lid>"
};

class RdmaRpcClient : public RpcClient {
 public:
  RdmaRpcClient(ib::Hca& hca, RdmaRpcServer& server);

  sim::Coro<ReplyInfo> call(CallArgs args) override;

 private:
  struct Pending;
  void on_recv(const ib::Cqe& cqe);
  /// QP retry exhaustion flushed a WQE: every outstanding call fails
  /// with ok=false (there is no path left to a reply).
  void fail_all_pending();

  ib::Hca& hca_;
  ib::Cq scq_;
  ib::Cq rcq_;
  ib::RcQp* qp_ = nullptr;
  std::uint64_t next_xid_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;

  // Registered metrics (docs/METRICS.md §rpc); scope "node<lid>/rpc.rdma".
  struct Obs {
    sim::Counter* calls;
    sim::Counter* call_failures;
    sim::Gauge* inflight;
    sim::Histogram* call_ns;
  };
  Obs obs_;
  char trace_tag_[12];  // "rpc-c<lid>"
};

// ---------------------------------------------------------------------------
// SDR transport (RPC over software-defined reliability, DESIGN.md §14)
// ---------------------------------------------------------------------------
//
// Call and reply each travel as one reliable SDR message (header + args
// + bulk data), so FEC repairs WAN loss locally at the receiver instead
// of stalling an RC window — the serving-scenario alternative measured
// by bench/ext_kv_serving. A hard send failure (probe exhaustion on a
// severed WAN) surfaces as ReplyInfo::ok == false, like the other
// transports' give-up paths.

class SdrRpcServer {
 public:
  explicit SdrRpcServer(ib::Hca& hca, sdr::SdrConfig config = {});
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Address clients send calls to (out-of-band exchange, as for CM).
  ib::UdDest dest() const { return ep_.dest(); }
  sdr::SdrEndpoint& endpoint() { return ep_; }

 private:
  friend class SdrRpcClient;
  struct CallMsg;
  struct ReplyMsg;
  // CallMsg passes by value: coroutine parameters must not reference
  // storage owned by the triggering delivery event.
  sim::Task serve(CallMsg call);

  ib::Hca& hca_;
  Handler handler_;
  sdr::SdrEndpoint ep_;
  sim::Counter* obs_calls_served_;  // "node<lid>/rpc.sdr" calls_served
};

class SdrRpcClient : public RpcClient {
 public:
  SdrRpcClient(ib::Hca& hca, SdrRpcServer& server,
               sdr::SdrConfig config = {});

  sim::Coro<ReplyInfo> call(CallArgs args) override;

  void set_retry(const RpcRetryConfig& retry) { retry_ = retry; }

 private:
  struct Pending;
  void on_message(const std::shared_ptr<const void>& app);
  /// The transport reported the request undeliverable (probe budget
  /// exhausted): fail the call immediately instead of waiting out the
  /// timeout ladder.
  void fail_call(std::uint64_t xid);

  ib::Hca& hca_;
  sim::Simulator& sim_;
  sdr::SdrEndpoint ep_;
  ib::UdDest server_;
  std::uint64_t next_xid_ = 1;
  RpcRetryConfig retry_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;

  // Registered metrics (docs/METRICS.md §rpc); scope "node<lid>/rpc.sdr".
  struct Obs {
    sim::Counter* calls;
    sim::Counter* retries;
    sim::Counter* call_failures;
    sim::Gauge* inflight;
    sim::Histogram* call_ns;
  };
  Obs obs_;
  char trace_tag_[12];  // "rpc-c<lid>"
};

}  // namespace ibwan::rpc
