// RPC over RDMA (the Noronha et al. NFS/RDMA design the paper measures):
// inline call and reply messages over an RC channel; bulk data moved by
// the server with RDMA — writes toward the client for READ-style
// replies, reads from the client for WRITE-style calls — fragmented
// into fixed-size chunks (4 KB), which is what makes NFS/RDMA
// latency-bound on long WAN paths (Figure 13).
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "rpc/rpc.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace ibwan::rpc {

struct RdmaRpcServer::CallMsg {
  std::uint64_t xid = 0;
  CallArgs args;
};

namespace {
struct ReplyMsg {
  std::uint64_t xid = 0;
  ReplyInfo reply;
};
/// Send-CQE wr_id tags for the server-side read-completion dispatch.
constexpr std::uint64_t kWrReadBase = 1'000'000;
}  // namespace

struct RdmaRpcClient::Pending {
  explicit Pending(sim::Simulator& sim) : trigger(sim) {}
  sim::Trigger trigger;
  ReplyInfo reply;
  bool done = false;
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

RdmaRpcServer::RdmaRpcServer(ib::Hca& hca, RdmaRpcConfig config)
    : hca_(hca), config_(config), scq_(hca.sim()), rcq_(hca.sim()) {
  auto& m = hca_.sim().metrics();
  const std::string scope =
      "node" + std::to_string(hca_.lid()) + "/rpc.rdma";
  using sim::MetricUnit;
  obs_.chunks_read = &m.counter(scope, "chunks_read", MetricUnit::kCount);
  obs_.chunks_written =
      &m.counter(scope, "chunks_written", MetricUnit::kCount);
  obs_.chunk_read_ns =
      &m.histogram(scope, "chunk_read_ns", MetricUnit::kNanoseconds);
  std::snprintf(trace_tag_, sizeof(trace_tag_), "rpc-s%u", hca_.lid());
  rcq_.set_callback([this](const ib::Cqe& e) { on_recv(e); });
  // Send completions: dispatch chunk-read completions to their waiters.
  scq_.set_callback([this](const ib::Cqe& e) {
    if (e.type != ib::CqeType::kRdmaReadComplete) return;
    auto it = read_waiters_.find(e.wr_id);
    if (it == read_waiters_.end()) return;
    auto wg = it->second;
    read_waiters_.erase(it);
    if (auto issued = read_issued_.find(e.wr_id);
        issued != read_issued_.end()) {
      // Flushed reads (QP retry exhaustion) still release the waiter so
      // the serve coroutine unwinds, but record no timing — the chunk
      // never arrived.
      if (e.success) {
        const sim::Time elapsed = hca_.sim().now() - issued->second;
        obs_.chunk_read_ns->observe(elapsed);
        if (sim::FlightRecorder& fr = hca_.sim().recorder(); fr.armed()) {
          fr.record(hca_.sim().now(), sim::TraceKind::kChunkComplete,
                    trace_tag_, e.wr_id, e.byte_len,
                    static_cast<std::uint64_t>(elapsed));
        }
      }
      read_issued_.erase(issued);
    }
    wg->done();
  });
}

ib::RcQp* RdmaRpcServer::accept(ib::RcQp& client_qp, ib::Lid client_lid) {
  ib::RcQp& qp = hca_.create_rc_qp(scq_, rcq_);
  qp.connect(client_lid, client_qp.qpn());
  client_qp.connect(hca_.lid(), qp.qpn());
  by_qpn_[qp.qpn()] = &qp;
  qps_.push_back(&qp);
  for (int i = 0; i < 256; ++i) {
    qp.post_recv(ib::RecvWr{});
    client_qp.post_recv(ib::RecvWr{});
  }
  return &qp;
}

void RdmaRpcServer::on_recv(const ib::Cqe& cqe) {
  auto it = by_qpn_.find(cqe.qpn);
  if (it == by_qpn_.end()) return;
  it->second->post_recv(ib::RecvWr{});  // repost the consumed receive
  if (!cqe.success) return;             // flushed receive: nothing arrived
  if (!cqe.app_payload) return;
  serve(it->second, cqe.payload_as<CallMsg>());
}

sim::Task RdmaRpcServer::serve(ib::RcQp* qp, CallMsg call) {
  assert(handler_ && "RdmaRpcServer has no handler");
  // WRITE-style bulk: pull the client's data with chunked RDMA reads
  // before running the handler.
  if (call.args.data_to_server > 0) {
    const std::uint64_t chunks =
        (call.args.data_to_server + config_.chunk_bytes - 1) /
        config_.chunk_bytes;
    auto wg = std::make_shared<sim::WaitGroup>(hca_.sim());
    wg->add(static_cast<int>(chunks));
    std::uint64_t remaining = call.args.data_to_server;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t n =
          std::min<std::uint64_t>(remaining, config_.chunk_bytes);
      remaining -= n;
      const std::uint64_t wr_id = kWrReadBase + next_read_id_++;
      read_waiters_[wr_id] = wg;
      read_issued_[wr_id] = hca_.sim().now();
      obs_.chunks_read->add();
      if (sim::FlightRecorder& fr = hca_.sim().recorder(); fr.armed()) {
        fr.record(hca_.sim().now(), sim::TraceKind::kChunkIssue,
                  trace_tag_, wr_id, n, 0);
      }
      qp->post_send(ib::SendWr{.wr_id = wr_id,
                               .opcode = ib::Opcode::kRdmaRead,
                               .length = n,
                               .remote_addr = c * config_.chunk_bytes});
    }
    co_await wg->wait();
  }

  ReplyInfo reply = co_await handler_(call.args);

  // READ-style bulk: push chunked RDMA writes, then the inline reply.
  // RC ordering guarantees the client sees the reply only after all the
  // data has been placed — no extra round trip needed.
  if (reply.data_to_client > 0) {
    std::uint64_t remaining = reply.data_to_client;
    std::uint64_t offset = 0;
    while (remaining > 0) {
      const std::uint64_t n =
          std::min<std::uint64_t>(remaining, config_.chunk_bytes);
      obs_.chunks_written->add();
      qp->post_send(ib::SendWr{.opcode = ib::Opcode::kRdmaWrite,
                               .length = n,
                               .remote_addr = offset});
      offset += n;
      remaining -= n;
    }
  }
  auto msg = std::make_shared<ReplyMsg>();
  msg->xid = call.xid;
  msg->reply = reply;
  qp->post_send(ib::SendWr{.length = kReplyHeaderBytes + reply.reply_bytes,
                           .app_payload = std::move(msg)});
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

RdmaRpcClient::RdmaRpcClient(ib::Hca& hca, RdmaRpcServer& server)
    : hca_(hca), scq_(hca.sim()), rcq_(hca.sim()) {
  auto& m = hca_.sim().metrics();
  const std::string scope =
      "node" + std::to_string(hca_.lid()) + "/rpc.rdma";
  using sim::MetricUnit;
  obs_.calls = &m.counter(scope, "calls", MetricUnit::kCount);
  obs_.call_failures =
      &m.counter(scope, "call_failures", MetricUnit::kCount);
  obs_.inflight = &m.gauge(scope, "inflight", MetricUnit::kCount);
  obs_.call_ns = &m.histogram(scope, "call_ns", MetricUnit::kNanoseconds);
  std::snprintf(trace_tag_, sizeof(trace_tag_), "rpc-c%u", hca_.lid());
  rcq_.set_callback([this](const ib::Cqe& e) { on_recv(e); });
  // A flushed send completion means the QP exhausted its retry budget
  // (WAN severed past the IB timeout horizon): no call on this
  // connection can ever complete, so fail them all.
  scq_.set_callback([this](const ib::Cqe& e) {
    if (!e.success) fail_all_pending();
  });
  qp_ = &hca_.create_rc_qp(scq_, rcq_);
  server.accept(*qp_, hca_.lid());
}

void RdmaRpcClient::fail_all_pending() {
  if (pending_.empty()) return;
  // Deterministic completion order: fail by ascending xid, not map order.
  std::vector<std::uint64_t> xids;
  xids.reserve(pending_.size());
  for (const auto& [xid, p] : pending_) xids.push_back(xid);
  std::sort(xids.begin(), xids.end());
  for (std::uint64_t xid : xids) {
    auto p = pending_.at(xid);
    p->reply = ReplyInfo{};
    p->reply.ok = false;
    p->done = true;
    obs_.call_failures->add();
    p->trigger.fire();
  }
  pending_.clear();
}

void RdmaRpcClient::on_recv(const ib::Cqe& cqe) {
  qp_->post_recv(ib::RecvWr{});
  if (!cqe.success) {
    fail_all_pending();
    return;
  }
  if (!cqe.app_payload) return;
  const ReplyMsg& msg = cqe.payload_as<ReplyMsg>();
  auto it = pending_.find(msg.xid);
  if (it == pending_.end()) return;
  auto p = it->second;
  pending_.erase(it);
  p->reply = msg.reply;
  p->done = true;
  p->trigger.fire();
}

sim::Coro<ReplyInfo> RdmaRpcClient::call(CallArgs args) {
  const std::uint64_t xid = next_xid_++;
  const sim::Time t0 = hca_.sim().now();
  auto p = std::make_shared<Pending>(hca_.sim());
  pending_[xid] = p;
  obs_.calls->add();
  obs_.inflight->set(static_cast<std::int64_t>(pending_.size()));
  if (sim::FlightRecorder& fr = hca_.sim().recorder(); fr.armed()) {
    fr.record(t0, sim::TraceKind::kRpcIssue, trace_tag_, xid, args.proc,
              args.arg_bytes + args.data_to_server);
  }
  auto msg = std::make_shared<RdmaRpcServer::CallMsg>();
  msg->xid = xid;
  msg->args = args;
  qp_->post_send(ib::SendWr{.length = kCallHeaderBytes + args.arg_bytes,
                            .app_payload = std::move(msg)});
  if (!p->done) co_await p->trigger.wait();
  const sim::Time elapsed = hca_.sim().now() - t0;
  obs_.call_ns->observe(elapsed);
  obs_.inflight->set(static_cast<std::int64_t>(pending_.size()));
  if (sim::FlightRecorder& fr = hca_.sim().recorder(); fr.armed()) {
    fr.record(hca_.sim().now(), sim::TraceKind::kRpcComplete, trace_tag_,
              xid, args.proc, static_cast<std::uint64_t>(elapsed));
  }
  co_return p->reply;
}

}  // namespace ibwan::rpc
