// RPC over the SDR reliability layer: call and reply are each one
// reliable SDR message (inline header + args + bulk payload bytes), so
// redundancy-coded chunks — not an RC retransmission window — carry the
// exchange across a lossy WAN. The client keeps the same bounded
// retry-with-backoff contract as the TCP transport (same xid on resend,
// first reply wins), plus an early-failure path: when the SDR sender
// exhausts its probe budget the request provably never arrives, so the
// call fails immediately with ok == false.
#include <cassert>
#include <cstdio>
#include <string>
#include <utility>

#include "rpc/rpc.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace ibwan::rpc {

struct SdrRpcServer::CallMsg {
  std::uint64_t xid = 0;
  ib::UdDest reply_to{};
  CallArgs args;
};

struct SdrRpcServer::ReplyMsg {
  std::uint64_t xid = 0;
  ReplyInfo reply;
};

struct SdrRpcClient::Pending {
  explicit Pending(sim::Simulator& sim) : trigger(sim) {}
  sim::Trigger trigger;
  ReplyInfo reply;
  bool done = false;
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

SdrRpcServer::SdrRpcServer(ib::Hca& hca, sdr::SdrConfig config)
    : hca_(hca), ep_(hca, config) {
  obs_calls_served_ = &hca_.sim().metrics().counter(
      "node" + std::to_string(hca_.lid()) + "/rpc.sdr", "calls_served",
      sim::MetricUnit::kCount);
  ep_.set_delivery_handler([this](const ib::UdDest&, std::uint64_t,
                                  const std::shared_ptr<const void>& app) {
    if (!app) return;  // not an RPC message (raw SDR traffic)
    serve(*static_cast<const CallMsg*>(app.get()));
  });
}

sim::Task SdrRpcServer::serve(CallMsg call) {
  assert(handler_ && "SdrRpcServer has no handler");
  obs_calls_served_->add();
  ReplyInfo reply = co_await handler_(call.args);
  auto msg = std::make_shared<ReplyMsg>();
  msg->xid = call.xid;
  msg->reply = reply;
  // Reply loss (or a severed WAN) is the client's problem: its timeout
  // ladder resends the call, and the duplicate execution is absorbed by
  // the first reply winning, as on the TCP transport.
  ep_.send(call.reply_to,
           kReplyHeaderBytes + reply.reply_bytes + reply.data_to_client, {},
           std::move(msg));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

SdrRpcClient::SdrRpcClient(ib::Hca& hca, SdrRpcServer& server,
                           sdr::SdrConfig config)
    : hca_(hca), sim_(hca.sim()), ep_(hca, config), server_(server.dest()) {
  auto& m = sim_.metrics();
  const std::string scope = "node" + std::to_string(hca_.lid()) + "/rpc.sdr";
  using sim::MetricUnit;
  obs_.calls = &m.counter(scope, "calls", MetricUnit::kCount);
  obs_.retries = &m.counter(scope, "retries", MetricUnit::kCount);
  obs_.call_failures = &m.counter(scope, "call_failures", MetricUnit::kCount);
  obs_.inflight = &m.gauge(scope, "inflight", MetricUnit::kCount);
  obs_.call_ns = &m.histogram(scope, "call_ns", MetricUnit::kNanoseconds);
  std::snprintf(trace_tag_, sizeof(trace_tag_), "rpc-c%u", hca_.lid());
  ep_.set_delivery_handler([this](const ib::UdDest&, std::uint64_t,
                                  const std::shared_ptr<const void>& app) {
    on_message(app);
  });
}

void SdrRpcClient::on_message(const std::shared_ptr<const void>& app) {
  if (!app) return;
  const auto& msg = *static_cast<const SdrRpcServer::ReplyMsg*>(app.get());
  auto it = pending_.find(msg.xid);
  if (it == pending_.end()) return;  // duplicate reply of a retried call
  auto p = it->second;
  pending_.erase(it);
  p->reply = msg.reply;
  p->done = true;
  p->trigger.fire();
}

void SdrRpcClient::fail_call(std::uint64_t xid) {
  auto it = pending_.find(xid);
  if (it == pending_.end()) return;
  auto p = it->second;
  pending_.erase(it);
  p->reply = ReplyInfo{};
  p->reply.ok = false;
  p->done = true;
  obs_.call_failures->add();
  p->trigger.fire();
}

sim::Coro<ReplyInfo> SdrRpcClient::call(CallArgs args) {
  const std::uint64_t xid = next_xid_++;
  const sim::Time t0 = sim_.now();
  auto p = std::make_shared<Pending>(sim_);
  pending_[xid] = p;
  obs_.calls->add();
  obs_.inflight->set(static_cast<std::int64_t>(pending_.size()));
  if (sim::FlightRecorder& fr = sim_.recorder(); fr.armed()) {
    fr.record(t0, sim::TraceKind::kRpcIssue, trace_tag_, xid, args.proc,
              args.arg_bytes + args.data_to_server);
  }
  sim::Duration timeout = retry_.timeout;
  for (int attempt = 0;; ++attempt) {
    auto msg = std::make_shared<SdrRpcServer::CallMsg>();
    msg->xid = xid;
    msg->reply_to = ep_.dest();
    msg->args = args;
    // Bulk data travels inline in the SDR message. A hard send failure
    // (probe exhaustion) fails the call on the spot — no reply can ever
    // come back for a request the transport gave up on.
    ep_.send(
        server_, kCallHeaderBytes + args.arg_bytes + args.data_to_server,
        [this, xid](bool ok) {
          if (!ok) fail_call(xid);
        },
        std::move(msg));
    if (timeout == 0) {  // no budget configured: wait forever
      if (!p->done) co_await p->trigger.wait();
      break;
    }
    const sim::EventId timer =
        sim_.schedule(timeout, [p] { p->trigger.fire(); });
    if (!p->done) co_await p->trigger.wait();
    if (p->done) {
      sim_.cancel(timer);  // no-op if the timer is what woke us
      break;
    }
    p->trigger.reset();  // timed out; re-arm for the next attempt
    if (attempt >= retry_.max_retries) {
      pending_.erase(xid);
      p->reply = ReplyInfo{};
      p->reply.ok = false;
      p->done = true;
      obs_.call_failures->add();
      break;
    }
    obs_.retries->add();
    timeout = static_cast<sim::Duration>(static_cast<double>(timeout) *
                                         retry_.backoff);
  }
  const sim::Time elapsed = sim_.now() - t0;
  obs_.call_ns->observe(elapsed);
  obs_.inflight->set(static_cast<std::int64_t>(pending_.size()));
  if (sim::FlightRecorder& fr = sim_.recorder(); fr.armed()) {
    fr.record(sim_.now(), sim::TraceKind::kRpcComplete, trace_tag_, xid,
              args.proc, static_cast<std::uint64_t>(elapsed));
  }
  co_return p->reply;
}

}  // namespace ibwan::rpc
