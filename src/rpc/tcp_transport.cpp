// RPC over TCP: record-marked call and reply messages on one stream.
#include <cassert>
#include <cstdio>
#include <string>

#include "rpc/rpc.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace ibwan::rpc {

namespace {
/// One record on the stream (either direction).
struct Record {
  bool is_call = false;
  std::uint64_t xid = 0;
  CallArgs args;    // valid when is_call
  ReplyInfo reply;  // valid when !is_call
};
}  // namespace

struct TcpRpcClient::Pending {
  explicit Pending(sim::Simulator& sim) : trigger(sim) {}
  sim::Trigger trigger;
  ReplyInfo reply;
  bool done = false;
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

TcpRpcServer::TcpRpcServer(tcp::TcpStack& stack, tcp::Port port)
    : stack_(stack) {
  obs_calls_served_ = &stack_.sim().metrics().counter(
      "node" + std::to_string(stack_.lid()) + "/rpc.tcp", "calls_served",
      sim::MetricUnit::kCount);
  stack_.listen(port, [this](tcp::TcpConnection& conn) {
    conn.set_on_marker([this, &conn](std::shared_ptr<const void> marker) {
      serve(conn, std::move(marker));
    });
  });
}

sim::Task TcpRpcServer::serve(tcp::TcpConnection& conn,
                              std::shared_ptr<const void> marker) {
  const Record& rec = *static_cast<const Record*>(marker.get());
  assert(rec.is_call);
  assert(handler_ && "TcpRpcServer has no handler");
  obs_calls_served_->add();
  ReplyInfo reply = co_await handler_(rec.args);
  auto out = std::make_shared<Record>();
  out->is_call = false;
  out->xid = rec.xid;
  out->reply = reply;
  // READ-style bulk data travels inline in the reply stream.
  conn.send_marked(kReplyHeaderBytes + reply.reply_bytes +
                       reply.data_to_client,
                   std::move(out));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

TcpRpcClient::TcpRpcClient(tcp::TcpStack& stack, NodeId server,
                           tcp::Port port)
    : sim_(stack.sim()), conn_(stack.connect(server, port)) {
  auto& m = sim_.metrics();
  const std::string scope =
      "node" + std::to_string(stack.lid()) + "/rpc.tcp";
  using sim::MetricUnit;
  obs_.calls = &m.counter(scope, "calls", MetricUnit::kCount);
  obs_.retries = &m.counter(scope, "retries", MetricUnit::kCount);
  obs_.call_failures =
      &m.counter(scope, "call_failures", MetricUnit::kCount);
  obs_.inflight = &m.gauge(scope, "inflight", MetricUnit::kCount);
  obs_.call_ns = &m.histogram(scope, "call_ns", MetricUnit::kNanoseconds);
  std::snprintf(trace_tag_, sizeof(trace_tag_), "rpc-c%u", stack.lid());
  conn_.set_on_marker([this](std::shared_ptr<const void> marker) {
    const Record& rec = *static_cast<const Record*>(marker.get());
    assert(!rec.is_call);
    auto it = pending_.find(rec.xid);
    if (it == pending_.end()) return;
    auto p = it->second;
    pending_.erase(it);
    p->reply = rec.reply;
    p->done = true;
    p->trigger.fire();
  });
}

sim::Coro<ReplyInfo> TcpRpcClient::call(CallArgs args) {
  const std::uint64_t xid = next_xid_++;
  const sim::Time t0 = sim_.now();
  auto p = std::make_shared<Pending>(sim_);
  pending_[xid] = p;
  obs_.calls->add();
  obs_.inflight->set(static_cast<std::int64_t>(pending_.size()));
  if (sim::FlightRecorder& fr = sim_.recorder(); fr.armed()) {
    fr.record(t0, sim::TraceKind::kRpcIssue, trace_tag_, xid, args.proc,
              args.arg_bytes + args.data_to_server);
  }
  sim::Duration timeout = retry_.timeout;
  for (int attempt = 0;; ++attempt) {
    auto record = std::make_shared<Record>();
    record->is_call = true;
    record->xid = xid;
    record->args = args;
    // WRITE-style bulk data travels inline in the call stream. Retries
    // resend the whole record under the same xid; a duplicate reply (the
    // first attempt limping home late) is ignored by the unknown-xid
    // check in the marker callback.
    conn_.send_marked(
        kCallHeaderBytes + args.arg_bytes + args.data_to_server,
        std::move(record));
    if (timeout == 0) {  // no budget configured: wait forever
      if (!p->done) co_await p->trigger.wait();
      break;
    }
    const sim::EventId timer =
        sim_.schedule(timeout, [p] { p->trigger.fire(); });
    if (!p->done) co_await p->trigger.wait();
    if (p->done) {
      sim_.cancel(timer);  // no-op if the timer is what woke us
      break;
    }
    p->trigger.reset();  // timed out; re-arm for the next attempt
    if (attempt >= retry_.max_retries) {
      pending_.erase(xid);
      p->reply = ReplyInfo{};
      p->reply.ok = false;
      p->done = true;
      obs_.call_failures->add();
      break;
    }
    obs_.retries->add();
    timeout = static_cast<sim::Duration>(static_cast<double>(timeout) *
                                         retry_.backoff);
  }
  const sim::Time elapsed = sim_.now() - t0;
  obs_.call_ns->observe(elapsed);
  obs_.inflight->set(static_cast<std::int64_t>(pending_.size()));
  if (sim::FlightRecorder& fr = sim_.recorder(); fr.armed()) {
    fr.record(sim_.now(), sim::TraceKind::kRpcComplete, trace_tag_, xid,
              args.proc, static_cast<std::uint64_t>(elapsed));
  }
  co_return p->reply;
}

}  // namespace ibwan::rpc
