#include "net/fabric.hpp"

#include <cassert>
#include <string>
#include <utility>

namespace ibwan::net {

namespace {

bool partitionable(const sim::SiteEngine& engine, const FabricConfig& cfg) {
  // Flat WAN loss draws from the main RNG stream at serialization time;
  // splitting the clusters would split that stream, so such configs
  // stay sequential (the named-stream fault models are fine).
  return engine.parallel() && !cfg.back_to_back &&
         cfg.longbow.loss_rate == 0.0;
}

}  // namespace

Fabric::Fabric(sim::Simulator& sim, const FabricConfig& config)
    : sim_(sim), sim_b_(sim), config_(config) {
  if (config_.back_to_back) {
    assert(config_.nodes_a == 1 && config_.nodes_b == 1 &&
           "back-to-back mode is exactly two hosts");
    build_back_to_back();
  } else {
    assert(config_.nodes_a >= 1 && config_.nodes_b >= 1);
    build_cluster_of_clusters();
  }
}

Fabric::Fabric(sim::SiteEngine& engine, const FabricConfig& config)
    : engine_(&engine),
      sim_(engine.site(0)),
      sim_b_(partitionable(engine, config) ? engine.site(1) : engine.site(0)),
      config_(config) {
  if (config_.back_to_back) {
    assert(config_.nodes_a == 1 && config_.nodes_b == 1 &&
           "back-to-back mode is exactly two hosts");
    build_back_to_back();
    return;
  }
  assert(config_.nodes_a >= 1 && config_.nodes_b >= 1);
  build_cluster_of_clusters();
  if (partitioned()) {
    // The WAN links are the LP boundaries: deliveries cross via engine
    // channels, and the safe horizon derives from the minimum one-way
    // latency those links can impose.
    longbows_->wan_link_a_to_b().set_channel(&engine_->make_channel(0, 1));
    longbows_->wan_link_b_to_a().set_channel(&engine_->make_channel(1, 0));
    engine_->set_lookahead(config_.longbow.base_propagation);
  }
}

void Fabric::run_all() {
  if (engine_ != nullptr && partitioned()) {
    engine_->run();
  } else {
    sim_.run();
  }
}

sim::Time Fabric::max_now() const {
  if (engine_ != nullptr) return engine_->now();
  return sim_.now();
}

NodeId Fabric::node_id(Cluster c, int index) const {
  if (c == Cluster::kA) {
    assert(index < config_.nodes_a);
    return static_cast<NodeId>(index);
  }
  assert(index < config_.nodes_b);
  return static_cast<NodeId>(config_.nodes_a + index);
}

void Fabric::set_wan_delay(sim::Duration oneway) {
  if (longbows_) longbows_->set_oneway_delay(oneway);
  if (partitioned()) {
    // The emulated distance raises the minimum cross-site latency, so
    // the conservative horizon may stretch with it: lookahead is the
    // WAN link's propagation plus the emulated one-way delay (jitter
    // only ever adds on top).
    engine_->set_lookahead(config_.longbow.base_propagation + oneway);
  }
}

sim::Duration Fabric::wan_delay() const {
  return longbows_ ? longbows_->oneway_delay() : 0;
}

Link* Fabric::make_link(sim::Simulator& sim, const Link::Config& cfg,
                        std::string name) {
  links_.push_back(std::make_unique<Link>(sim, cfg, std::move(name)));
  return links_.back().get();
}

void Fabric::build_back_to_back() {
  nodes_.push_back(std::make_unique<Node>(sim_, 0));
  nodes_.push_back(std::make_unique<Node>(sim_, 1));
  const Link::Config cable{.bytes_per_ns = config_.lan_rate,
                           .propagation = config_.host_link_prop};
  Link* a2b = make_link(sim_, cable, "cable-0to1");
  Link* b2a = make_link(sim_, cable, "cable-1to0");
  a2b->set_sink([this](Packet&& p) { nodes_[1]->deliver(std::move(p)); });
  b2a->set_sink([this](Packet&& p) { nodes_[0]->deliver(std::move(p)); });
  nodes_[0]->attach_uplink(a2b);
  nodes_[1]->attach_uplink(b2a);
}

void Fabric::build_cluster_of_clusters() {
  // Everything cluster-local — nodes, star links, the switch, the
  // Longbow router, and the outbound WAN link — is built on that
  // cluster's simulator (both clusters share one in sequential mode).
  const int total = config_.nodes_a + config_.nodes_b;
  for (int i = 0; i < total; ++i) {
    const auto id = static_cast<NodeId>(i);
    nodes_.push_back(std::make_unique<Node>(sim_of_node(id), id));
  }
  switches_.push_back(
      std::make_unique<Switch>(sim_, "switch-a", config_.switch_latency));
  switches_.push_back(
      std::make_unique<Switch>(sim_b_, "switch-b", config_.switch_latency));
  Switch* sw_a = switches_[0].get();
  Switch* sw_b = switches_[1].get();

  const Link::Config host_link{.bytes_per_ns = config_.lan_rate,
                               .propagation = config_.host_link_prop};

  // Host <-> local switch star.
  for (int i = 0; i < total; ++i) {
    Node* n = nodes_[i].get();
    Switch* sw = i < config_.nodes_a ? sw_a : sw_b;
    sim::Simulator& site = sim_of_node(static_cast<NodeId>(i));
    const std::string tag = "host" + std::to_string(i);
    Link* up = make_link(site, host_link, tag + "-up");
    Link* down = make_link(site, host_link, tag + "-down");
    up->set_sink([sw](Packet&& p) { sw->receive(std::move(p)); });
    down->set_sink([n](Packet&& p) { n->deliver(std::move(p)); });
    n->attach_uplink(up);
    const int port = sw->add_port(down);
    sw->set_route(n->id(), port);
  }

  // Longbow pair joins the two switches.
  longbows_ = std::make_unique<LongbowPair>(sim_, sim_b_, config_.longbow);
  Longbow* lb_a = &longbows_->side_a();
  Longbow* lb_b = &longbows_->side_b();

  // switch-a <-> longbow-a LAN links.
  Link* swa_to_lba = make_link(sim_, host_link, "swa-to-lba");
  Link* lba_to_swa = make_link(sim_, host_link, "lba-to-swa");
  swa_to_lba->set_sink(
      [lb_a](Packet&& p) { lb_a->receive_from_lan(std::move(p)); });
  lba_to_swa->set_sink([sw_a](Packet&& p) { sw_a->receive(std::move(p)); });
  lb_a->set_lan_tx(lba_to_swa);
  sw_a->set_default_route(sw_a->add_port(swa_to_lba));

  // switch-b <-> longbow-b LAN links.
  Link* swb_to_lbb = make_link(sim_b_, host_link, "swb-to-lbb");
  Link* lbb_to_swb = make_link(sim_b_, host_link, "lbb-to-swb");
  swb_to_lbb->set_sink(
      [lb_b](Packet&& p) { lb_b->receive_from_lan(std::move(p)); });
  lbb_to_swb->set_sink([sw_b](Packet&& p) { sw_b->receive(std::move(p)); });
  lb_b->set_lan_tx(lbb_to_swb);
  sw_b->set_default_route(sw_b->add_port(swb_to_lbb));
}

}  // namespace ibwan::net
