#include "net/fabric.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace ibwan::net {

namespace {

bool partitionable(const sim::SiteEngine& engine, const TopologyConfig& topo) {
  if (!engine.parallel() || topo.back_to_back) return false;
  // The partition is exactly one logical process per topology site. A
  // smaller engine would have to co-locate sites, and a co-located
  // site's WAN deliveries are ordinary local events — at a same-instant
  // arrival tie with a channel merge they would fire in slot order, not
  // the sequential engine's schedule order, breaking byte-identity.
  if (engine.sites() != static_cast<int>(topo.sites.size())) return false;
  // Flat WAN loss draws from the main RNG stream at serialization time;
  // splitting the sites would split that stream, so such configs stay
  // sequential (the named-stream fault models are fine).
  for (const WanEdgeConfig& e : topo.wan) {
    if (e.longbow.loss_rate != 0.0) return false;
  }
  return true;
}

std::string site_letter(int site) {
  if (site < 26) return std::string(1, static_cast<char>('a' + site));
  return "s" + std::to_string(site);
}

void check_topology(const TopologyConfig& topo) {
  const std::string err = validate_topology(topo);
  if (!err.empty()) {
    std::fprintf(stderr, "Fabric: %s\n", err.c_str());
    std::abort();
  }
}

}  // namespace

TopologyConfig to_topology(const FabricConfig& config) {
  TopologyConfig topo;
  topo.sites = {SiteConfig{.nodes = config.nodes_a},
                SiteConfig{.nodes = config.nodes_b}};
  if (!config.back_to_back) {
    topo.wan = {
        WanEdgeConfig{.site_a = 0, .site_b = 1, .longbow = config.longbow}};
  }
  topo.lan_rate = config.lan_rate;
  topo.host_link_prop = config.host_link_prop;
  topo.switch_latency = config.switch_latency;
  topo.back_to_back = config.back_to_back;
  return topo;
}

Fabric::Fabric(sim::Simulator& sim, const FabricConfig& config)
    : Fabric(sim, to_topology(config)) {}

Fabric::Fabric(sim::SiteEngine& engine, const FabricConfig& config)
    : Fabric(engine, to_topology(config)) {}

Fabric::Fabric(sim::Simulator& sim, const TopologyConfig& topo)
    : sim_(sim), topo_(topo) {
  check_topology(topo_);
  init_sites(false);
  routes_ = compute_wan_routes(topo_);
  if (topo_.back_to_back) {
    build_back_to_back();
  } else {
    build_topology();
  }
}

Fabric::Fabric(sim::SiteEngine& engine, const TopologyConfig& topo)
    : engine_(&engine), sim_(engine.site(0)), topo_(topo) {
  check_topology(topo_);
  init_sites(partitionable(engine, topo_));
  routes_ = compute_wan_routes(topo_);
  if (topo_.back_to_back) {
    build_back_to_back();
    return;
  }
  build_topology();
  if (partitioned()) {
    // WAN edges crossing LP boundaries deliver via engine channels, and
    // the safe horizon derives from the minimum one-way latency any of
    // those links can impose.
    for (std::size_t e = 0; e < wan_pairs_.size(); ++e) {
      const WanEdgeConfig& we = topo_.wan[e];
      const int lx = site_lp_[std::size_t(we.site_a)];
      const int ly = site_lp_[std::size_t(we.site_b)];
      if (lx == ly) continue;
      wan_pairs_[e]->wan_link_a_to_b().set_channel(
          &engine_->make_channel(lx, ly));
      wan_pairs_[e]->wan_link_b_to_a().set_channel(
          &engine_->make_channel(ly, lx));
    }
    update_lookahead();
  }
}

void Fabric::init_sites(bool partitionable_now) {
  const int n = site_count();
  site_base_.assign(std::size_t(n) + 1, 0);
  for (int s = 0; s < n; ++s) {
    site_base_[std::size_t(s) + 1] =
        site_base_[std::size_t(s)] + topo_.sites[std::size_t(s)].nodes;
  }
  site_lp_.assign(std::size_t(n), 0);
  site_sims_.assign(std::size_t(n), &sim_);
  if (partitionable_now) {
    // One logical process per site (partitionable() guarantees the
    // engine matches the topology exactly).
    for (int s = 0; s < n; ++s) {
      site_lp_[std::size_t(s)] = s;
      site_sims_[std::size_t(s)] = &engine_->site(s);
    }
  }
}

bool Fabric::partitioned() const {
  for (sim::Simulator* s : site_sims_) {
    if (s != site_sims_.front()) return true;
  }
  return false;
}

void Fabric::run_all() {
  if (engine_ != nullptr && partitioned()) {
    engine_->run();
  } else {
    sim_.run();
  }
}

sim::Time Fabric::max_now() const {
  if (engine_ != nullptr) return engine_->now();
  return sim_.now();
}

int Fabric::site_of(NodeId id) const {
  const int n = site_count();
  for (int s = 0; s + 1 < n; ++s) {
    if (static_cast<int>(id) < site_base_[std::size_t(s) + 1]) return s;
  }
  return n - 1;
}

NodeId Fabric::node_id(int site, int index) const {
  assert(site >= 0 && site < site_count());
  assert(index >= 0 && index < topo_.sites[std::size_t(site)].nodes);
  return static_cast<NodeId>(site_base_[std::size_t(site)] + index);
}

int Fabric::wan_hops(int site_a, int site_b) const {
  if (site_a == site_b) return 0;
  return routes_.hops[std::size_t(site_a)][std::size_t(site_b)];
}

void Fabric::set_wan_delay(sim::Duration oneway) {
  for (auto& pair : wan_pairs_) pair->set_oneway_delay(oneway);
  if (partitioned()) update_lookahead();
}

void Fabric::set_wan_delay(int edge, sim::Duration oneway) {
  wan_pairs_.at(std::size_t(edge))->set_oneway_delay(oneway);
  if (partitioned()) update_lookahead();
}

sim::Duration Fabric::wan_delay() const {
  return wan_pairs_.empty() ? 0 : wan_pairs_.front()->oneway_delay();
}

void Fabric::update_lookahead() {
  // The emulated distance raises the minimum cross-site latency, so the
  // conservative horizon may stretch with it: lookahead is the smallest
  // cross-LP WAN edge's propagation plus its emulated one-way delay
  // (jitter only ever adds on top).
  sim::Duration min_l = 0;
  bool any = false;
  for (std::size_t e = 0; e < wan_pairs_.size(); ++e) {
    const WanEdgeConfig& we = topo_.wan[e];
    if (site_lp_[std::size_t(we.site_a)] == site_lp_[std::size_t(we.site_b)]) {
      continue;
    }
    const sim::Duration l =
        we.longbow.base_propagation + wan_pairs_[e]->oneway_delay();
    if (!any || l < min_l) {
      min_l = l;
      any = true;
    }
  }
  if (any) engine_->set_lookahead(min_l);
}

Link* Fabric::make_link(sim::Simulator& sim, const Link::Config& cfg,
                        std::string name) {
  links_.push_back(std::make_unique<Link>(sim, cfg, std::move(name)));
  return links_.back().get();
}

void Fabric::build_back_to_back() {
  nodes_.push_back(std::make_unique<Node>(sim_, 0));
  nodes_.push_back(std::make_unique<Node>(sim_, 1));
  const Link::Config cable{.bytes_per_ns = topo_.lan_rate,
                           .propagation = topo_.host_link_prop};
  Link* a2b = make_link(sim_, cable, "cable-0to1");
  Link* b2a = make_link(sim_, cable, "cable-1to0");
  a2b->set_sink([this](Packet&& p) { nodes_[1]->deliver(std::move(p)); });
  b2a->set_sink([this](Packet&& p) { nodes_[0]->deliver(std::move(p)); });
  nodes_[0]->attach_uplink(a2b);
  nodes_[1]->attach_uplink(b2a);
}

void Fabric::build_topology() {
  // Everything site-local — hosts, star links, switches, Longbow
  // routers, and outbound WAN links — is built on that site's simulator
  // (all sites share one in sequential mode).
  const int n_sites = site_count();
  const int total = site_base_[std::size_t(n_sites)];

  // WAN degree decides Longbow naming and default routes.
  std::vector<int> degree(std::size_t(n_sites), 0);
  for (const WanEdgeConfig& e : topo_.wan) {
    ++degree[std::size_t(e.site_a)];
    ++degree[std::size_t(e.site_b)];
  }

  for (int i = 0; i < total; ++i) {
    const auto id = static_cast<NodeId>(i);
    nodes_.push_back(std::make_unique<Node>(sim_of_node(id), id));
  }

  // Per-site switches: one star switch, or leaves plus a spine for
  // fat-tree sites. The spine (or the star switch) faces the WAN.
  std::vector<std::vector<Switch*>> leaves;
  leaves.resize(std::size_t(n_sites));
  wan_switch_.assign(std::size_t(n_sites), nullptr);
  for (int s = 0; s < n_sites; ++s) {
    const std::string ls = site_letter(s);
    const int nl = topo_.sites[std::size_t(s)].leaf_switches;
    if (nl <= 1) {
      switches_.push_back(std::make_unique<Switch>(
          sim_of_site(s), "switch-" + ls, topo_.switch_latency));
      wan_switch_[std::size_t(s)] = switches_.back().get();
      continue;
    }
    for (int k = 0; k < nl; ++k) {
      switches_.push_back(std::make_unique<Switch>(
          sim_of_site(s), "switch-" + ls + "-leaf" + std::to_string(k),
          topo_.switch_latency));
      leaves[std::size_t(s)].push_back(switches_.back().get());
    }
    switches_.push_back(std::make_unique<Switch>(
        sim_of_site(s), "switch-" + ls + "-spine", topo_.switch_latency));
    wan_switch_[std::size_t(s)] = switches_.back().get();
  }

  const Link::Config host_link{.bytes_per_ns = topo_.lan_rate,
                               .propagation = topo_.host_link_prop};

  // Host <-> attachment-switch star, all hosts in id order. Fat-tree
  // hosts round-robin across their site's leaves.
  for (int i = 0; i < total; ++i) {
    Node* n = nodes_[std::size_t(i)].get();
    const int s = site_of(static_cast<NodeId>(i));
    const auto& site_leaves = leaves[std::size_t(s)];
    Switch* sw =
        site_leaves.empty()
            ? wan_switch_[std::size_t(s)]
            : site_leaves[std::size_t(i - site_base_[std::size_t(s)]) %
                          site_leaves.size()];
    sim::Simulator& site = sim_of_site(s);
    const std::string tag = "host" + std::to_string(i);
    Link* up = make_link(site, host_link, tag + "-up");
    Link* down = make_link(site, host_link, tag + "-down");
    up->set_sink([sw](Packet&& p) { sw->receive(std::move(p)); });
    down->set_sink([n](Packet&& p) { n->deliver(std::move(p)); });
    n->attach_uplink(up);
    const int port = sw->add_port(down);
    sw->set_route(n->id(), port);
  }

  // Fat-tree sites: leaf <-> spine trunks. A leaf's default route is
  // its only uplink; the spine learns which leaf owns each local host.
  for (int s = 0; s < n_sites; ++s) {
    if (leaves[std::size_t(s)].empty()) continue;
    const std::string ls = site_letter(s);
    Switch* spine = wan_switch_[std::size_t(s)];
    std::vector<int> spine_port;
    for (std::size_t k = 0; k < leaves[std::size_t(s)].size(); ++k) {
      Switch* leaf = leaves[std::size_t(s)][k];
      const std::string kk = std::to_string(k);
      // NOLINT-IBWAN(CONC001): construction-time wiring, engine not started
      Link* up = make_link(sim_of_site(s), host_link,
                           "sw" + ls + "-leaf" + kk + "-to-spine");
      // NOLINT-IBWAN(CONC001): construction-time wiring, engine not started
      Link* down = make_link(sim_of_site(s), host_link,
                             "sw" + ls + "-spine-to-leaf" + kk);
      up->set_sink([spine](Packet&& p) { spine->receive(std::move(p)); });
      down->set_sink([leaf](Packet&& p) { leaf->receive(std::move(p)); });
      leaf->set_default_route(leaf->add_port(up));
      spine_port.push_back(spine->add_port(down));
    }
    for (int i = site_base_[std::size_t(s)]; i < site_base_[std::size_t(s) + 1];
         ++i) {
      const std::size_t local = std::size_t(i - site_base_[std::size_t(s)]);
      spine->set_route(static_cast<NodeId>(i),
                       spine_port[local % spine_port.size()]);
    }
  }

  // WAN edges, in config order: the Longbow pair, then each side's LAN
  // attachment. Tags keep the classic two-cluster names when a site has
  // a single WAN uplink ("longbow-a", "wan-a2b", "swa-to-lba", ...) and
  // append the peer's letter otherwise ("longbow-ab", "wan-ab2b", ...).
  // A degree-1 site also keeps the classic default route out its only
  // uplink; explicit per-destination routes are installed below either
  // way.
  wan_ports_.assign(std::size_t(n_sites), {});
  for (std::size_t e = 0; e < topo_.wan.size(); ++e) {
    const WanEdgeConfig& we = topo_.wan[e];
    const int x = we.site_a;
    const int y = we.site_b;
    const std::string lx = site_letter(x);
    const std::string ly = site_letter(y);
    const std::string tx = degree[std::size_t(x)] == 1 ? lx : lx + ly;
    const std::string ty = degree[std::size_t(y)] == 1 ? ly : ly + lx;
    wan_pairs_.push_back(std::make_unique<LongbowPair>(
        sim_of_site(x), sim_of_site(y), we.longbow,
        LongbowPair::Names{.side_a = "longbow-" + tx,
                           .side_b = "longbow-" + ty,
                           .wan_a2b = "wan-" + tx + "2" + ty,
                           .wan_b2a = "wan-" + ty + "2" + tx}));
    LongbowPair* pair = wan_pairs_.back().get();
    const auto attach = [&](int site, const std::string& ls,
                            const std::string& ts, Longbow* lb) {
      Switch* sw = wan_switch_[std::size_t(site)];
      Link* sw_to_lb =
          // NOLINT-IBWAN(CONC001): construction-time wiring, engine idle
          make_link(sim_of_site(site), host_link, "sw" + ls + "-to-lb" + ts);
      Link* lb_to_sw =
          // NOLINT-IBWAN(CONC001): construction-time wiring, engine idle
          make_link(sim_of_site(site), host_link, "lb" + ts + "-to-sw" + ls);
      sw_to_lb->set_sink(
          [lb](Packet&& p) { lb->receive_from_lan(std::move(p)); });
      // Switches with several WAN attachments take WAN ingress through
      // the same-instant demux (Switch::receive_wan) so cross-edge
      // arrival ties serialize in edge order under both engines. A
      // degree-1 site (every two-cluster fabric) keeps the direct path
      // and the classic event schedule.
      if (degree[std::size_t(site)] > 1) {
        const int edge_ord = static_cast<int>(e);
        lb_to_sw->set_sink([sw, edge_ord](Packet&& p) {
          sw->receive_wan(edge_ord, std::move(p));
        });
      } else {
        lb_to_sw->set_sink([sw](Packet&& p) { sw->receive(std::move(p)); });
      }
      lb->set_lan_tx(lb_to_sw);
      const int port = sw->add_port(sw_to_lb);
      if (degree[std::size_t(site)] == 1) sw->set_default_route(port);
      wan_ports_[std::size_t(site)].push_back({static_cast<int>(e), port});
    };
    attach(x, lx, tx, &pair->side_a());
    attach(y, ly, ty, &pair->side_b());
  }

  // Static remote routes: every site's WAN-facing switch learns, for
  // each remote host, the egress port toward the shortest-path edge.
  // Unreachable destinations get no route and count as no-route drops.
  for (int s = 0; s < n_sites; ++s) {
    Switch* sw = wan_switch_[std::size_t(s)];
    for (int d = 0; d < n_sites; ++d) {
      if (d == s) continue;
      const int e = routes_.next_edge[std::size_t(s)][std::size_t(d)];
      if (e < 0) continue;
      int port = -1;
      for (const auto& [edge, p] : wan_ports_[std::size_t(s)]) {
        if (edge == e) {
          port = p;
          break;
        }
      }
      assert(port >= 0 && "routed edge must be attached to the site switch");
      for (int i = site_base_[std::size_t(d)];
           i < site_base_[std::size_t(d) + 1]; ++i) {
        sw->set_route(static_cast<NodeId>(i), port);
      }
    }
  }
}

}  // namespace ibwan::net
