// Point-to-point unidirectional link.
//
// A link serializes packets at a fixed byte rate, then delivers them to
// its sink after a propagation delay (plus an adjustable extra delay —
// the Obsidian Longbow distance-emulation knob). Two queues feed the
// serializer: a control lane (transport ACK/NAK and similar) that is
// always scheduled ahead of the bulk-data lane, modelling the arbitration
// real ports perform so responder traffic is not starved by deep send
// queues. Optional finite buffering and random loss support
// failure-injection experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

class Link {
 public:
  struct Config {
    /// Serialization rate in bytes per nanosecond (8 Gb/s data = 1.0).
    double bytes_per_ns = 1.0;
    /// Propagation delay, sender to receiver.
    sim::Duration propagation = 0;
    /// Bytes that may be queued awaiting serialization; 0 = unbounded.
    std::uint64_t buffer_bytes = 0;
    /// Probability that a packet is corrupted in flight and discarded.
    double loss_rate = 0.0;
  };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t packets_dropped_buffer = 0;
    std::uint64_t packets_dropped_loss = 0;
  };

  Link(sim::Simulator& sim, Config config, std::string name = "link");

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Receiver of delivered packets. Must be set before first send.
  void set_sink(std::function<void(Packet&&)> sink) {
    sink_ = std::move(sink);
  }

  /// Enqueues a packet. Returns false when dropped (buffer overflow).
  bool send(Packet&& p);

  /// Additional one-way delay (Longbow emulated distance). Takes effect
  /// for packets serialized after the call.
  void set_extra_delay(sim::Duration d) { extra_delay_ = d; }
  sim::Duration extra_delay() const { return extra_delay_; }

  /// Bytes currently waiting to go onto the wire.
  std::uint64_t queued_bytes() const { return queued_bytes_; }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  const std::string& name() const { return name_; }

 private:
  void start_next();

  // Registered metrics (docs/METRICS.md §net.link); scope "<name>/net.link".
  struct Obs {
    sim::Counter* pkts_sent;
    sim::Counter* bytes_sent;
    sim::Counter* drops_buffer;
    sim::Counter* drops_loss;
    sim::Counter* busy_ns;
    sim::Gauge* queued_bytes;
  };

  sim::Simulator& sim_;
  Config config_;
  std::string name_;
  Obs obs_;
  std::function<void(Packet&&)> sink_;
  std::deque<Packet> q_control_;
  std::deque<Packet> q_data_;
  bool busy_ = false;
  std::uint64_t queued_bytes_ = 0;
  sim::Duration extra_delay_ = 0;
  Stats stats_;
};

}  // namespace ibwan::net
