// Point-to-point unidirectional link.
//
// A link serializes packets at a fixed byte rate, then delivers them to
// its sink after a propagation delay (plus an adjustable extra delay —
// the Obsidian Longbow distance-emulation knob). Two queues feed the
// serializer: a control lane (transport ACK/NAK and similar) that is
// always scheduled ahead of the bulk-data lane, modelling the arbitration
// real ports perform so responder traffic is not starved by deep send
// queues. Optional finite buffering and random loss support
// failure-injection experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

class Link {
 public:
  struct Config {
    /// Serialization rate in bytes per nanosecond (8 Gb/s data = 1.0).
    double bytes_per_ns = 1.0;
    /// Propagation delay, sender to receiver.
    sim::Duration propagation = 0;
    /// Bytes that may be queued awaiting serialization; 0 = unbounded.
    std::uint64_t buffer_bytes = 0;
    /// Probability that a packet is corrupted in flight and discarded.
    double loss_rate = 0.0;
  };

  // The counters below carry the conservation invariant and may only be
  // written by link.cpp (ibwan-lint INV001 enforces the `lint:conserved`
  // ones; bytes_sent shares its name with per-QP/MPI stats whose writes
  // are equally legal, so it is covered by the invariant check in tests
  // rather than the name-keyed lint).
  struct Stats {
    std::uint64_t packets_sent = 0;       // lint:conserved
    std::uint64_t bytes_sent = 0;
    std::uint64_t packets_delivered = 0;  // lint:conserved
    std::uint64_t bytes_delivered = 0;    // lint:conserved
    std::uint64_t packets_dropped_buffer = 0;    // lint:conserved
    std::uint64_t packets_dropped_loss = 0;      // lint:conserved
    std::uint64_t packets_dropped_fault = 0;     // lint:conserved (injected)
    std::uint64_t packets_dropped_down = 0;      // lint:conserved (flaps)
    std::uint64_t packets_dropped_brownout = 0;  // lint:conserved (squeeze)
    /// Bytes of every in-flight drop (loss + fault + down). Buffer drops
    /// never reach the wire, so after the queue drains:
    ///   bytes_sent == bytes_delivered + bytes_dropped.
    std::uint64_t bytes_dropped = 0;  // lint:conserved
    std::uint64_t flaps = 0;          // lint:conserved
    std::uint64_t down_ns = 0;        // lint:conserved
  };

  Link(sim::Simulator& sim, Config config, std::string name = "link");

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Receiver of delivered packets. Must be set before first send.
  void set_sink(std::function<void(Packet&&)> sink) {
    sink_ = std::move(sink);
  }

  /// Enqueues a packet. Returns false when dropped (buffer overflow).
  bool send(Packet&& p);

  /// Additional one-way delay (Longbow emulated distance). Takes effect
  /// for packets serialized after the call.
  void set_extra_delay(sim::Duration d) { extra_delay_ = d; }
  sim::Duration extra_delay() const { return extra_delay_; }

  // --- Fault-injection hooks (driven by net::FaultPlan) -------------

  /// Per-packet injected-loss decision, consulted at serialization time.
  /// The model must draw from its own RNG stream (Simulator::rng_stream),
  /// never Simulator::rng(), so installing it cannot perturb fault-free
  /// runs. Applied after the flat config loss_rate draw; drops count as
  /// packets_dropped_fault.
  void set_loss_model(std::function<bool(const Packet&)> model) {
    loss_model_ = std::move(model);
  }

  /// Per-packet extra propagation delay (WAN jitter); same RNG-stream
  /// rule as set_loss_model. Jitter may reorder deliveries, as real
  /// WAN jitter does.
  void set_jitter_model(std::function<sim::Duration()> model) {
    jitter_model_ = std::move(model);
  }

  /// Takes the link down / brings it back up. Going down kills whatever
  /// is serializing or propagating (it was on the wire) and pauses the
  /// serializer; queued packets wait and resume on the up transition.
  void set_down(bool down);
  bool down() const { return down_; }

  /// Temporarily squeezes (or relaxes) the send buffer — a WAN-router
  /// brownout. Overflow drops during the override additionally count as
  /// packets_dropped_brownout; clear restores config().buffer_bytes.
  void set_buffer_override(std::uint64_t bytes);
  void clear_buffer_override();

  // --- Site-parallel execution (sim/engine.hpp, DESIGN.md §13) ------

  /// Makes this link an LP boundary: instead of scheduling a local
  /// delivery event, serialized packets are pushed into `ch` stamped
  /// with their arrival time, and the sink runs on the destination
  /// site. Serialization, loss draws, jitter, and flap handling stay on
  /// the sender's site, so RNG streams and counters are byte-identical
  /// to the sequential path. Set during wiring, before any traffic.
  void set_channel(sim::SiteEngine::Channel* ch) { channel_ = ch; }

  /// Absolute times at which a *scheduled* fault plan takes this link
  /// down (union window starts, ascending). Channel mode consults the
  /// schedule at push time to kill in-flight packets exactly where the
  /// sequential epoch check would: a down transition strictly after
  /// serialization end and no later than arrival. Direct set_down()
  /// calls outside the registered schedule do not kill channel-mode
  /// in-flight packets — scheduled plans (net::FaultPlan) are the
  /// supported fault source under PDES.
  void set_down_schedule(std::vector<sim::Time> down_starts) {
    down_starts_ = std::move(down_starts);
  }

  /// Bytes currently waiting to go onto the wire.
  std::uint64_t queued_bytes() const { return queued_bytes_; }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  const std::string& name() const { return name_; }

 private:
  void start_next();
  void drop_down(const Packet& p);
  void deliver_via_channel(const std::shared_ptr<Packet>& pkt,
                           sim::Duration delay);
  std::shared_ptr<Packet> alloc_packet(Packet&& p);
  void recycle_packet(const std::shared_ptr<Packet>& pkt);

  // Registered metrics (docs/METRICS.md §net.link); scope "<name>/net.link".
  struct Obs {
    sim::Counter* pkts_sent;
    sim::Counter* bytes_sent;
    sim::Counter* pkts_delivered;
    sim::Counter* bytes_delivered;
    sim::Counter* drops_buffer;
    sim::Counter* drops_loss;
    sim::Counter* drops_fault;
    sim::Counter* drops_link_down;
    sim::Counter* drops_brownout;
    sim::Counter* bytes_dropped;
    sim::Counter* flaps;
    sim::Counter* down_ns;
    sim::Counter* busy_ns;
    sim::Gauge* queued_bytes;
    sim::Histogram* jitter_ns;
  };

  sim::Simulator& sim_;
  Config config_;
  std::string name_;
  Obs obs_;
  std::function<void(Packet&&)> sink_;
  std::function<bool(const Packet&)> loss_model_;
  std::function<sim::Duration()> jitter_model_;
  std::deque<Packet> q_control_;
  std::deque<Packet> q_data_;
  bool busy_ = false;
  bool down_ = false;
  std::uint64_t down_epoch_ = 0;  // bumped on every down transition
  sim::Time down_since_ = 0;
  bool buffer_override_active_ = false;
  std::uint64_t buffer_override_ = 0;
  std::uint64_t queued_bytes_ = 0;
  sim::Duration extra_delay_ = 0;
  sim::SiteEngine::Channel* channel_ = nullptr;
  std::vector<sim::Time> down_starts_;
  /// Recycled packet allocations (site-local links only; see
  /// Link::alloc_packet). Bounded so a burst cannot pin memory forever.
  static constexpr std::size_t kPktPoolCap = 256;
  std::vector<std::shared_ptr<Packet>> pkt_pool_;
  Stats stats_;
};

}  // namespace ibwan::net
