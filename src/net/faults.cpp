#include "net/faults.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <optional>
#include <utility>

namespace ibwan::net {

namespace {

// ---- Minimal JSON reader -------------------------------------------
//
// Enough JSON for fault plans: objects, arrays, numbers, strings,
// booleans, null. No dependencies, rejects trailing garbage, reports
// the byte offset of the first error.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Key order preserved so "unknown key" errors are stable.
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* err)
      : text_(text), err_(err) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (err_ && err_->empty())
      *err_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return parse_string(&out->string);
    }
    if (c == 't' || c == 'f') return parse_keyword(out);
    if (c == 'n') return parse_keyword(out);
    return parse_number(out);
  }

  bool parse_keyword(JsonValue* out) {
    auto match = [this](const char* kw) {
      const std::size_t n = std::string(kw).size();
      if (text_.compare(pos_, n, kw) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return fail("invalid keyword");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          default: return fail("unsupported escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  /// Containers recurse through parse_value; a hostile input of "[[[["
  /// repeated would otherwise turn into unbounded C++ stack growth.
  static constexpr int kMaxDepth = 64;

  struct DepthGuard {
    explicit DepthGuard(int& depth) : depth_(depth) { ++depth_; }
    ~DepthGuard() { --depth_; }
    int& depth_;
  };

  bool parse_array(JsonValue* out) {
    const DepthGuard guard(depth_);
    if (depth_ > kMaxDepth) return fail("nesting deeper than 64 levels");
    out->type = JsonValue::Type::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      skip_ws();
      if (!parse_value(&v)) return false;
      out->array.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue* out) {
    const DepthGuard guard(depth_);
    if (depth_ > kMaxDepth) return fail("nesting deeper than 64 levels");
    out->type = JsonValue::Type::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      // A duplicated key means one of the two settings would silently
      // win; refuse the plan instead of guessing which one was meant.
      if (out->find(key) != nullptr)
        return fail("duplicate key \"" + key + "\"");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* err_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

// ---- JSON -> FaultPlanConfig ---------------------------------------

bool reject_unknown_keys(const JsonValue& obj,
                         std::initializer_list<const char*> known,
                         const char* where, std::string* err) {
  for (const auto& [key, value] : obj.object) {
    if (std::find_if(known.begin(), known.end(), [&](const char* k) {
          return key == k;
        }) == known.end()) {
      if (err) *err = std::string("unknown key \"") + key + "\" in " + where;
      return false;
    }
  }
  return true;
}

bool get_number(const JsonValue& obj, const char* key, const char* where,
                double* out, std::string* err) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;  // optional, keep default
  if (v->type != JsonValue::Type::kNumber) {
    if (err)
      *err = std::string("\"") + key + "\" in " + where + " must be a number";
    return false;
  }
  *out = v->number;
  return true;
}

sim::Duration us_to_ns(double us) {
  return static_cast<sim::Duration>(us * 1000.0);
}

// Value validation: casting a NaN/infinite/negative double to the
// unsigned Duration type is undefined behaviour, and a probability
// outside [0, 1] silently saturates the Gilbert-Elliott chain. Bound
// times to ~11.5 simulated days (1e12 us) so the ns conversion cannot
// overflow either.
constexpr double kMaxPlanUs = 1e12;

bool check_probability(double v, const char* key, const char* where,
                       std::string* err) {
  if (std::isfinite(v) && v >= 0.0 && v <= 1.0) return true;
  if (err)
    *err = std::string("\"") + key + "\" in " + where +
           " must be a probability in [0, 1]";
  return false;
}

bool check_duration_us(double v, const char* key, const char* where,
                       std::string* err) {
  if (std::isfinite(v) && v >= 0.0 && v <= kMaxPlanUs) return true;
  if (err)
    *err = std::string("\"") + key + "\" in " + where +
           " must be a duration in [0, 1e12] us";
  return false;
}

bool check_byte_count(double v, const char* key, const char* where,
                      std::string* err) {
  if (std::isfinite(v) && v >= 0.0 && v <= 9.0e18) return true;
  if (err)
    *err = std::string("\"") + key + "\" in " + where +
           " must be a byte count in [0, 9e18]";
  return false;
}

bool parse_ge(const JsonValue& v, GilbertElliott* ge, std::string* err) {
  if (v.type != JsonValue::Type::kObject) {
    if (err) *err = "\"gilbert_elliott\" must be an object";
    return false;
  }
  if (!reject_unknown_keys(
          v, {"p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"},
          "gilbert_elliott", err))
    return false;
  if (!get_number(v, "p_good_to_bad", "gilbert_elliott", &ge->p_good_to_bad,
                  err) ||
      !get_number(v, "p_bad_to_good", "gilbert_elliott", &ge->p_bad_to_good,
                  err) ||
      !get_number(v, "loss_good", "gilbert_elliott", &ge->loss_good, err) ||
      !get_number(v, "loss_bad", "gilbert_elliott", &ge->loss_bad, err))
    return false;
  return check_probability(ge->p_good_to_bad, "p_good_to_bad",
                           "gilbert_elliott", err) &&
         check_probability(ge->p_bad_to_good, "p_bad_to_good",
                           "gilbert_elliott", err) &&
         check_probability(ge->loss_good, "loss_good", "gilbert_elliott",
                           err) &&
         check_probability(ge->loss_bad, "loss_bad", "gilbert_elliott", err);
}

bool parse_flaps(const JsonValue& v, std::vector<FlapWindow>* out,
                 std::string* err) {
  if (v.type != JsonValue::Type::kArray) {
    if (err) *err = "\"flaps\" must be an array";
    return false;
  }
  for (const JsonValue& w : v.array) {
    if (w.type != JsonValue::Type::kObject) {
      if (err) *err = "\"flaps\" entries must be objects";
      return false;
    }
    if (!reject_unknown_keys(w, {"down_at_us", "down_for_us"}, "flaps", err))
      return false;
    double at = 0, dur = 0;
    if (!get_number(w, "down_at_us", "flaps", &at, err) ||
        !get_number(w, "down_for_us", "flaps", &dur, err))
      return false;
    if (!check_duration_us(at, "down_at_us", "flaps", err) ||
        !check_duration_us(dur, "down_for_us", "flaps", err))
      return false;
    out->push_back(FlapWindow{us_to_ns(at), us_to_ns(dur)});
  }
  return true;
}

bool parse_brownouts(const JsonValue& v, std::vector<BrownoutWindow>* out,
                     std::string* err) {
  if (v.type != JsonValue::Type::kArray) {
    if (err) *err = "\"brownouts\" must be an array";
    return false;
  }
  for (const JsonValue& w : v.array) {
    if (w.type != JsonValue::Type::kObject) {
      if (err) *err = "\"brownouts\" entries must be objects";
      return false;
    }
    if (!reject_unknown_keys(w, {"at_us", "for_us", "buffer_bytes"},
                             "brownouts", err))
      return false;
    double at = 0, dur = 0, bytes = 0;
    if (!get_number(w, "at_us", "brownouts", &at, err) ||
        !get_number(w, "for_us", "brownouts", &dur, err) ||
        !get_number(w, "buffer_bytes", "brownouts", &bytes, err))
      return false;
    if (!check_duration_us(at, "at_us", "brownouts", err) ||
        !check_duration_us(dur, "for_us", "brownouts", err) ||
        !check_byte_count(bytes, "buffer_bytes", "brownouts", err))
      return false;
    out->push_back(BrownoutWindow{us_to_ns(at), us_to_ns(dur),
                                  static_cast<std::uint64_t>(bytes)});
  }
  return true;
}

std::optional<FaultPlanConfig>& global_plan_slot() {
  // NOLINT-IBWAN(CONC003): loaded once from --faults before the engine
  // starts; read-only while LPs run
  static std::optional<FaultPlanConfig> plan;
  return plan;
}

}  // namespace

FaultPlan::FaultPlan(sim::Simulator& sim, Link& link,
                     const FaultPlanConfig& cfg)
    : sim_(sim),
      link_(link),
      cfg_(cfg),
      ge_rng_(sim.rng_stream(link.name() + "/faults.ge")),
      jitter_rng_(sim.rng_stream(link.name() + "/faults.jitter")) {
  if (cfg_.ge.enabled()) {
    link_.set_loss_model([this](const Packet&) { return ge_draw(); });
  }
  if (cfg_.jitter_max > 0) {
    link_.set_jitter_model([this] {
      return static_cast<sim::Duration>(jitter_rng_.uniform(
          static_cast<std::uint64_t>(cfg_.jitter_max) + 1));
    });
  }
  const sim::Time now = sim_.now();
  for (const FlapWindow& w : cfg_.flaps) {
    sim_.schedule_at(std::max(now, w.down_at), [this] {
      if (down_nest_++ == 0) link_.set_down(true);
    });
    sim_.schedule_at(std::max(now, w.down_at + w.down_for), [this] {
      if (--down_nest_ == 0) link_.set_down(false);
    });
  }
  if (!cfg_.flaps.empty()) {
    // Static union of the scheduled outages, for the channel-mode
    // in-flight kill check (Link::set_down_schedule). Replay the exact
    // event sequence scheduled above — (time, schedule order), nest
    // counting — and record every 0→1 transition.
    std::vector<std::pair<sim::Time, int>> edges;
    edges.reserve(cfg_.flaps.size() * 2);
    for (const FlapWindow& w : cfg_.flaps) {
      edges.emplace_back(std::max(now, w.down_at), +1);
      edges.emplace_back(std::max(now, w.down_at + w.down_for), -1);
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<sim::Time> starts;
    int nest = 0;
    for (const auto& [t, d] : edges) {
      if (d > 0 && nest == 0) starts.push_back(t);
      nest += d;
    }
    link_.set_down_schedule(std::move(starts));
  }
  for (const BrownoutWindow& w : cfg_.brownouts) {
    const std::uint64_t bytes = w.buffer_bytes;
    sim_.schedule_at(std::max(now, w.at), [this, bytes] {
      ++brownout_nest_;
      link_.set_buffer_override(bytes);
    });
    sim_.schedule_at(std::max(now, w.at + w.duration), [this] {
      if (--brownout_nest_ == 0) link_.clear_buffer_override();
    });
  }
}

bool FaultPlan::ge_draw() {
  // Advance the chain first, then draw loss from the new state, so a
  // burst can start on the packet that enters the bad state.
  if (bad_) {
    if (ge_rng_.chance(cfg_.ge.p_bad_to_good)) bad_ = false;
  } else {
    if (ge_rng_.chance(cfg_.ge.p_good_to_bad)) bad_ = true;
  }
  return ge_rng_.chance(bad_ ? cfg_.ge.loss_bad : cfg_.ge.loss_good);
}

bool parse_fault_plan(const std::string& text, FaultPlanConfig* out,
                      std::string* err) {
  if (err) err->clear();
  JsonValue root;
  JsonParser parser(text, err);
  if (!parser.parse(&root)) return false;
  if (root.type != JsonValue::Type::kObject) {
    if (err) *err = "fault plan must be a JSON object";
    return false;
  }
  if (!reject_unknown_keys(
          root, {"gilbert_elliott", "jitter_max_us", "flaps", "brownouts"},
          "fault plan", err))
    return false;
  FaultPlanConfig cfg;
  if (const JsonValue* ge = root.find("gilbert_elliott")) {
    if (!parse_ge(*ge, &cfg.ge, err)) return false;
  }
  double jitter_us = 0.0;
  if (!get_number(root, "jitter_max_us", "fault plan", &jitter_us, err))
    return false;
  if (!check_duration_us(jitter_us, "jitter_max_us", "fault plan", err))
    return false;
  cfg.jitter_max = us_to_ns(jitter_us);
  if (const JsonValue* flaps = root.find("flaps")) {
    if (!parse_flaps(*flaps, &cfg.flaps, err)) return false;
  }
  if (const JsonValue* brownouts = root.find("brownouts")) {
    if (!parse_brownouts(*brownouts, &cfg.brownouts, err)) return false;
  }
  *out = std::move(cfg);
  return true;
}

bool load_fault_plan(const std::string& path, FaultPlanConfig* out,
                     std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse_fault_plan(text, out, err);
}

const FaultPlanConfig* global_fault_plan() {
  const auto& slot = global_plan_slot();
  return slot.has_value() ? &*slot : nullptr;
}

void set_global_fault_plan(const FaultPlanConfig& cfg) {
  global_plan_slot() = cfg;
}

void clear_global_fault_plan() { global_plan_slot().reset(); }

}  // namespace ibwan::net
