#include "net/topology.hpp"

#include <cstdint>
#include <limits>

namespace ibwan::net {

TopologyConfig TopologyConfig::hub_spoke(int spokes, int nodes_per_site,
                                         const LongbowPair::Config& longbow) {
  TopologyConfig topo;
  topo.sites.assign(static_cast<std::size_t>(spokes) + 1,
                    SiteConfig{.nodes = nodes_per_site});
  for (int s = 1; s <= spokes; ++s) {
    topo.wan.push_back(
        WanEdgeConfig{.site_a = 0, .site_b = s, .longbow = longbow});
  }
  return topo;
}

TopologyConfig TopologyConfig::full_mesh(int n_sites, int nodes_per_site,
                                         const LongbowPair::Config& longbow) {
  TopologyConfig topo;
  topo.sites.assign(static_cast<std::size_t>(n_sites),
                    SiteConfig{.nodes = nodes_per_site});
  for (int a = 0; a < n_sites; ++a) {
    for (int b = a + 1; b < n_sites; ++b) {
      topo.wan.push_back(
          WanEdgeConfig{.site_a = a, .site_b = b, .longbow = longbow});
    }
  }
  return topo;
}

std::string validate_topology(const TopologyConfig& topo) {
  const int n = static_cast<int>(topo.sites.size());
  if (n == 0) return "topology has no sites";
  for (int s = 0; s < n; ++s) {
    if (topo.sites[s].nodes < 1) {
      return "site " + std::to_string(s) + " has no nodes";
    }
    if (topo.sites[s].leaf_switches < 1) {
      return "site " + std::to_string(s) + " has no switches";
    }
  }
  if (topo.back_to_back) {
    if (n != 2 || topo.sites[0].nodes != 1 || topo.sites[1].nodes != 1 ||
        !topo.wan.empty()) {
      return "back-to-back mode is exactly two one-node sites and no WAN";
    }
    return "";
  }
  std::vector<std::vector<bool>> seen(
      static_cast<std::size_t>(n), std::vector<bool>(std::size_t(n), false));
  for (std::size_t e = 0; e < topo.wan.size(); ++e) {
    const WanEdgeConfig& w = topo.wan[e];
    if (w.site_a < 0 || w.site_a >= n || w.site_b < 0 || w.site_b >= n) {
      return "WAN edge " + std::to_string(e) + " references a missing site";
    }
    if (w.site_a == w.site_b) {
      return "WAN edge " + std::to_string(e) + " is a self-loop";
    }
    if (seen[w.site_a][w.site_b]) {
      return "duplicate WAN edge between sites " + std::to_string(w.site_a) +
             " and " + std::to_string(w.site_b);
    }
    seen[w.site_a][w.site_b] = seen[w.site_b][w.site_a] = true;
  }
  return "";
}

WanRoutes compute_wan_routes(const TopologyConfig& topo) {
  const int n = static_cast<int>(topo.sites.size());
  WanRoutes r;
  r.next_edge.assign(std::size_t(n), std::vector<int>(std::size_t(n), -1));
  r.hops.assign(std::size_t(n), std::vector<int>(std::size_t(n), -1));

  // Adjacency: (neighbor, edge index, weight). Edge order in the config
  // is the final tie-break, so relaxation visits edges in config order.
  struct Arc {
    int to;
    int edge;
    sim::Duration w;
  };
  std::vector<std::vector<Arc>> adj;
  adj.resize(std::size_t(n));
  for (std::size_t e = 0; e < topo.wan.size(); ++e) {
    const WanEdgeConfig& we = topo.wan[e];
    const sim::Duration w =
        we.longbow.base_propagation + 2 * we.longbow.pipeline_latency;
    adj[we.site_a].push_back(Arc{we.site_b, static_cast<int>(e), w});
    adj[we.site_b].push_back(Arc{we.site_a, static_cast<int>(e), w});
  }

  // O(V^2) Dijkstra from every source with a total order on paths:
  // (latency, hop count, lowest edge index on improvement). The graph
  // is a handful of sites, and the strict ordering makes the routing
  // table a pure function of the config — no container iteration order
  // or floating point involved.
  constexpr sim::Duration kInf = std::numeric_limits<sim::Duration>::max();
  for (int src = 0; src < n; ++src) {
    std::vector<sim::Duration> dist(std::size_t(n), kInf);
    std::vector<int> hops(std::size_t(n), -1);
    std::vector<int> first(std::size_t(n), -1);  // first edge out of src
    std::vector<bool> done(std::size_t(n), false);
    dist[src] = 0;
    hops[src] = 0;
    for (int round = 0; round < n; ++round) {
      int u = -1;
      for (int v = 0; v < n; ++v) {
        if (done[v] || dist[v] == kInf) continue;
        if (u == -1 || dist[v] < dist[u] ||
            (dist[v] == dist[u] && hops[v] < hops[u])) {
          u = v;
        }
      }
      if (u == -1) break;
      done[u] = true;
      for (const Arc& a : adj[u]) {
        if (dist[u] == kInf) continue;
        const sim::Duration nd = dist[u] + a.w;
        const int nh = hops[u] + 1;
        const int nf = u == src ? a.edge : first[u];
        const bool better =
            nd < dist[a.to] || (nd == dist[a.to] && nh < hops[a.to]) ||
            (nd == dist[a.to] && nh == hops[a.to] && first[a.to] != -1 &&
             nf < first[a.to]);
        if (better) {
          dist[a.to] = nd;
          hops[a.to] = nh;
          first[a.to] = nf;
        }
      }
    }
    for (int dst = 0; dst < n; ++dst) {
      if (dst == src || dist[dst] == kInf) continue;
      r.next_edge[src][dst] = first[dst];
      r.hops[src][dst] = hops[dst];
    }
  }
  return r;
}

namespace {

/// Host up to (and including the hop through) the site's WAN-facing
/// switch: one cable in a star, two cables and two hops via leaf and
/// spine in a fat-tree. Symmetric, so it doubles as the ingress cost.
sim::Duration site_edge_ns(const TopologyConfig& topo, int site) {
  const SiteConfig& s = topo.sites[std::size_t(site)];
  if (s.leaf_switches <= 1) {
    return topo.host_link_prop + topo.switch_latency;
  }
  return 2 * topo.host_link_prop + 2 * topo.switch_latency;
}

}  // namespace

sim::Duration path_floor_ns(const TopologyConfig& topo,
                            const WanRoutes& routes, int src_site,
                            int dst_site, sim::Duration wan_delay) {
  if (src_site == dst_site) {
    const SiteConfig& s = topo.sites[std::size_t(src_site)];
    if (s.leaf_switches <= 1) {
      return 2 * topo.host_link_prop + topo.switch_latency;
    }
    // Worst intra-site pair: host -> leaf -> spine -> leaf -> host.
    return 4 * topo.host_link_prop + 3 * topo.switch_latency;
  }
  if (routes.next_edge[std::size_t(src_site)][std::size_t(dst_site)] < 0) {
    return -1;
  }
  sim::Duration total = site_edge_ns(topo, src_site) +
                        site_edge_ns(topo, dst_site) +
                        2 * topo.host_link_prop;  // switch <-> Longbow cables
  int at = src_site;
  while (at != dst_site) {
    const int e = routes.next_edge[std::size_t(at)][std::size_t(dst_site)];
    const WanEdgeConfig& we = topo.wan[std::size_t(e)];
    total += 2 * we.longbow.pipeline_latency + we.longbow.base_propagation +
             wan_delay;
    const int next = we.site_a == at ? we.site_b : we.site_a;
    if (next != dst_site) {
      // Transit through an intermediate site's WAN switch: off one
      // Longbow, one switch hop, onto the next Longbow.
      total += 2 * topo.host_link_prop + topo.switch_latency;
    }
    at = next;
  }
  return total;
}

}  // namespace ibwan::net
