// Deterministic WAN fault injection.
//
// A FaultPlan attaches to one Link and drives four fault sources:
//
//   - Gilbert–Elliott bursty loss: a two-state (good/bad) Markov chain
//     advanced per packet, with a state-dependent drop probability —
//     the standard model for correlated WAN loss, which i.i.d.
//     `loss_rate` cannot reproduce.
//   - Link flaps: scheduled down/up windows. Going down kills whatever
//     is on the wire and pauses the serializer (see Link::set_down).
//   - Jitter: bounded uniform extra per-packet propagation delay.
//   - Brownouts: temporary squeezes of the WAN send buffer.
//
// Every random draw comes from a *named* RNG stream derived from the
// run seed (Simulator::rng_stream), never from Simulator::rng() — so a
// run with faults enabled-but-inert is byte-identical to one without
// the plan, and the committed CSVs stay reproducible.
//
// Plans load from JSON (times in microseconds):
//
//   {
//     "gilbert_elliott": { "p_good_to_bad": 0.01, "p_bad_to_good": 0.2,
//                          "loss_good": 0.0, "loss_bad": 0.3 },
//     "jitter_max_us": 20,
//     "flaps":     [ { "down_at_us": 5000, "down_for_us": 800 } ],
//     "brownouts": [ { "at_us": 20000, "for_us": 5000,
//                      "buffer_bytes": 16384 } ]
//   }
//
// Benches accept `--faults plan.json` (bench::init); core::Testbed
// applies the process-global plan to both WAN directions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

/// Two-state Gilbert–Elliott bursty-loss parameters. All probabilities
/// are per packet.
struct GilbertElliott {
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 0.0;
  double loss_good = 0.0;
  double loss_bad = 0.0;

  bool enabled() const {
    return p_good_to_bad > 0.0 || loss_good > 0.0 || loss_bad > 0.0;
  }
};

/// One scheduled outage window (absolute simulated times).
struct FlapWindow {
  sim::Time down_at = 0;
  sim::Duration down_for = 0;
};

/// One scheduled buffer squeeze window.
struct BrownoutWindow {
  sim::Time at = 0;
  sim::Duration duration = 0;
  std::uint64_t buffer_bytes = 0;
};

struct FaultPlanConfig {
  GilbertElliott ge;
  /// Uniform extra per-packet delay in [0, jitter_max]; 0 disables.
  sim::Duration jitter_max = 0;
  std::vector<FlapWindow> flaps;
  std::vector<BrownoutWindow> brownouts;

  bool any() const {
    return ge.enabled() || jitter_max > 0 || !flaps.empty() ||
           !brownouts.empty();
  }
};

/// Drives one Link's fault hooks from a FaultPlanConfig. Construct
/// after Simulator::seed() so the named streams derive from the run
/// seed. Windows already in the past are applied at the current
/// instant; overlapping windows nest (the link comes back up / relaxes
/// when the last overlapping window ends).
class FaultPlan {
 public:
  FaultPlan(sim::Simulator& sim, Link& link, const FaultPlanConfig& cfg);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  bool in_bad_state() const { return bad_; }

 private:
  bool ge_draw();

  sim::Simulator& sim_;
  Link& link_;
  FaultPlanConfig cfg_;
  sim::Rng ge_rng_;
  sim::Rng jitter_rng_;
  bool bad_ = false;
  int down_nest_ = 0;
  int brownout_nest_ = 0;
};

/// Parses a fault plan from JSON text / a file. Returns false and sets
/// *err on malformed input. Unknown keys are rejected so typos do not
/// silently disable a fault source.
bool parse_fault_plan(const std::string& text, FaultPlanConfig* out,
                      std::string* err);
bool load_fault_plan(const std::string& path, FaultPlanConfig* out,
                     std::string* err);

/// Process-global plan applied by core::Testbed to the WAN links of
/// every fabric it builds. Set once (bench::init --faults) before
/// testbeds are constructed; sweeps read it from worker threads.
const FaultPlanConfig* global_fault_plan();
void set_global_fault_plan(const FaultPlanConfig& cfg);
void clear_global_fault_plan();

}  // namespace ibwan::net
