// Wire packets.
//
// The simulator never copies payload bytes; a Packet carries byte *counts*
// plus a shared protocol header object. Endpoints know the concrete header
// type for the traffic they exchange (IB verbs packets everywhere in this
// library, since TCP/IPoIB rides on IB).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace ibwan::net {

/// Globally unique node identifier; doubles as the InfiniBand LID.
using NodeId = std::uint32_t;

struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  /// Total size on the wire, including all protocol headers.
  std::uint32_t wire_size = 0;
  /// Unique id for tracing/debugging.
  std::uint64_t id = 0;
  /// Control-plane packet (transport ACK/NAK): ports schedule these ahead
  /// of bulk data so responder traffic is never starved by deep queues.
  bool control = false;
  /// Protocol header/body descriptor; type is agreed between endpoints.
  std::shared_ptr<const void> payload;
  /// Invoked by the first link when the packet finishes serializing onto
  /// the wire (used for transmit-completion semantics, e.g. UD send CQEs).
  std::function<void()> on_serialized;

  template <typename T>
  const T& as() const {
    return *static_cast<const T*>(payload.get());
  }
};

}  // namespace ibwan::net
