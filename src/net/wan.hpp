// Obsidian Longbow XR model.
//
// A Longbow pair extends an InfiniBand subnet across a WAN: each router
// bridges its local (DDR) fabric onto a long-haul SDR-rate link. In the
// paper's "basic switch mode" the pair is transparent to IB except for
// added latency. The routers expose the paper's key knob: a configurable
// packet delay that emulates wire distance (5 us per km).
#pragma once

#include <memory>
#include <string>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

class FaultPlan;
struct FaultPlanConfig;

/// One Longbow router: two-port store-and-forward bridge with a fixed
/// pipeline latency per traversal.
class Longbow {
 public:
  Longbow(sim::Simulator& sim, std::string name,
          sim::Duration pipeline_latency)
      : sim_(sim), name_(std::move(name)), latency_(pipeline_latency) {
    auto& m = sim_.metrics();
    obs_forwarded_ = &m.counter(name_ + "/net.wan", "pkts_forwarded",
                                sim::MetricUnit::kPackets);
    obs_drops_no_port_ = &m.counter(name_ + "/net.wan", "drops_no_port",
                                    sim::MetricUnit::kPackets);
  }

  Longbow(const Longbow&) = delete;
  Longbow& operator=(const Longbow&) = delete;

  void set_lan_tx(Link* l) { lan_tx_ = l; }
  void set_wan_tx(Link* l) { wan_tx_ = l; }

  void receive_from_lan(Packet&& p) { forward(std::move(p), wan_tx_); }
  void receive_from_wan(Packet&& p) { forward(std::move(p), lan_tx_); }

  const std::string& name() const { return name_; }

  /// Packets that arrived for an unconnected port (misconfiguration or a
  /// chaos plan that severed the topology) — never dropped silently.
  std::uint64_t drops_no_port() const { return drops_no_port_; }

 private:
  void forward(Packet&& p, Link* out);

  sim::Simulator& sim_;
  std::string name_;
  sim::Duration latency_;
  Link* lan_tx_ = nullptr;
  Link* wan_tx_ = nullptr;
  std::uint64_t drops_no_port_ = 0;
  sim::Counter* obs_forwarded_ = nullptr;
  sim::Counter* obs_drops_no_port_ = nullptr;
};

/// The deployed unit: two Longbows and the long-haul fiber between them.
/// set_oneway_delay() is the paper's distance-emulation web knob.
class LongbowPair {
 public:
  struct Config {
    /// WAN data rate in bytes/ns; IB SDR payload rate is 8 Gb/s = 1.0.
    double wan_rate = 1.0;
    /// Fixed pipeline latency of each router.
    sim::Duration pipeline_latency = 1'700;
    /// Propagation of the physical WAN fiber at zero emulated distance.
    sim::Duration base_propagation = 500;
    /// WAN-side buffering per direction; 0 = unbounded.
    std::uint64_t buffer_bytes = 0;
    /// WAN loss probability (failure injection).
    double loss_rate = 0.0;
  };

  /// Instance names for the routers and long-haul links — metric scopes
  /// and fault RNG stream identities derive from them, so a fabric with
  /// several pairs (an N-site topology graph) must hand every pair a
  /// distinct set. The defaults are the classic two-cluster names.
  struct Names {
    std::string side_a = "longbow-a";
    std::string side_b = "longbow-b";
    std::string wan_a2b = "wan-a2b";
    std::string wan_b2a = "wan-b2a";
  };

  LongbowPair(sim::Simulator& sim, const Config& config)
      : LongbowPair(sim, sim, config) {}

  /// Site-partitioned construction (DESIGN.md §13): side A and the
  /// a→b long-haul link live on `sim_a`, side B and b→a on `sim_b`.
  /// With two distinct simulators the caller must also attach PDES
  /// channels to both WAN links (Link::set_channel) — the fabric does.
  LongbowPair(sim::Simulator& sim_a, sim::Simulator& sim_b,
              const Config& config);
  LongbowPair(sim::Simulator& sim_a, sim::Simulator& sim_b,
              const Config& config, const Names& names);
  ~LongbowPair();

  Longbow& side_a() { return *a_; }
  Longbow& side_b() { return *b_; }

  /// Attaches a fault plan to both WAN directions (net/faults.hpp).
  /// Call after Simulator::seed() so the fault RNG streams derive from
  /// the run seed. Replaces any previously applied plan's RNG-driven
  /// models; scheduled windows from an earlier plan still fire.
  void apply_faults(const FaultPlanConfig& cfg);

  /// The raw long-haul links, exposed so tests and chaos harnesses can
  /// install targeted fault hooks (Link::set_loss_model and friends).
  Link& wan_link_a_to_b() { return *a_to_b_; }
  Link& wan_link_b_to_a() { return *b_to_a_; }

  /// Emulated one-way wire delay (Table 1: 5 us of delay per km).
  void set_oneway_delay(sim::Duration d) {
    a_to_b_->set_extra_delay(d);
    b_to_a_->set_extra_delay(d);
  }
  sim::Duration oneway_delay() const { return a_to_b_->extra_delay(); }

  /// Traffic counters for the long-haul link (used by tests asserting,
  /// e.g., that a hierarchical broadcast crosses the WAN exactly once).
  const Link::Stats& wan_stats_a_to_b() const { return a_to_b_->stats(); }
  const Link::Stats& wan_stats_b_to_a() const { return b_to_a_->stats(); }

 private:
  sim::Simulator& sim_;    // side A's simulator
  sim::Simulator& sim_b_;  // side B's simulator (== sim_ when sequential)
  std::unique_ptr<Longbow> a_;
  std::unique_ptr<Longbow> b_;
  std::unique_ptr<Link> a_to_b_;
  std::unique_ptr<Link> b_to_a_;
  std::unique_ptr<FaultPlan> faults_a_to_b_;
  std::unique_ptr<FaultPlan> faults_b_to_a_;
};

}  // namespace ibwan::net
