#include "net/switch.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::net {

std::shared_ptr<Packet> Switch::alloc_packet(Packet&& p) {
  // Same recycling scheme as Link::alloc_packet: the hop-delay callback
  // needs the packet on the heap, and reusing one control block per
  // in-flight hop removes an allocation per forwarded packet. A pooled
  // entry is reusable only once the lambda that captured it has run
  // (use_count back to 1).
  if (!pkt_pool_.empty() && pkt_pool_.back().use_count() == 1) {
    std::shared_ptr<Packet> sp = std::move(pkt_pool_.back());
    pkt_pool_.pop_back();
    *sp = std::move(p);
    return sp;
  }
  return std::make_shared<Packet>(std::move(p));
}

void Switch::recycle_packet(const std::shared_ptr<Packet>& pkt) {
  if (pkt_pool_.size() >= kPktPoolCap) return;
  // Drop payload/callback references now so pooling a packet never pins
  // application data beyond its delivery.
  pkt->payload.reset();
  pkt->on_serialized = nullptr;
  pkt_pool_.push_back(pkt);
}

void Switch::receive_wan(int edge, Packet&& p) {
  wan_buf_.emplace_back(edge, std::move(p));
  if (!wan_flush_pending_) {
    wan_flush_pending_ = true;
    // Scheduled at the current instant: the flush lands behind every
    // event already queued for this nanosecond, so all tied WAN
    // arrivals are buffered before the sort runs.
    sim_.schedule(0, [this] { flush_wan(); });
  }
}

void Switch::flush_wan() {
  wan_flush_pending_ = false;
  std::stable_sort(
      wan_buf_.begin(), wan_buf_.end(),
      [](const std::pair<int, Packet>& a, const std::pair<int, Packet>& b) {
        return a.first < b.first;
      });
  for (auto& [edge, pkt] : wan_buf_) receive(std::move(pkt));
  wan_buf_.clear();
}

void Switch::receive(Packet&& p) {
  int port = default_port_;
  if (auto it = routes_.find(p.dst); it != routes_.end()) port = it->second;
  if (port < 0 || port >= static_cast<int>(ports_.size())) {
    ++drops_no_route_;
    obs_drops_noroute_->add();
    if (drops_no_route_ <= kNoRouteWarnLimit) {
      IBWAN_WARN(sim_.now(), name_.c_str(), "no route for dst=%u, dropping%s",
                 p.dst,
                 drops_no_route_ == kNoRouteWarnLimit
                     ? " (further no-route warnings rate-limited)"
                     : "");
    } else if ((drops_no_route_ & (drops_no_route_ - 1)) == 0) {
      IBWAN_WARN(sim_.now(), name_.c_str(),
                 "%llu no-route drops so far (warnings rate-limited)",
                 static_cast<unsigned long long>(drops_no_route_));
    }
    return;
  }
  ++forwarded_;
  obs_forwarded_->add();
  Link* out = ports_[port];
  auto shared = alloc_packet(std::move(p));
  sim_.schedule(hop_latency_, [this, out, shared] {
    Packet fwd = std::move(*shared);
    recycle_packet(shared);
    out->send(std::move(fwd));
  });
}

}  // namespace ibwan::net
