#include "net/switch.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::net {

void Switch::receive(Packet&& p) {
  int port = default_port_;
  if (auto it = routes_.find(p.dst); it != routes_.end()) port = it->second;
  if (port < 0 || port >= static_cast<int>(ports_.size())) {
    obs_drops_noroute_->add();
    IBWAN_WARN(sim_.now(), name_.c_str(), "no route for dst=%u, dropping",
               p.dst);
    return;
  }
  ++forwarded_;
  obs_forwarded_->add();
  Link* out = ports_[port];
  auto shared = std::make_shared<Packet>(std::move(p));
  sim_.schedule(hop_latency_, [out, shared] {
    out->send(std::move(*shared));
  });
}

}  // namespace ibwan::net
