#include "net/wan.hpp"

#include <utility>

#include "net/faults.hpp"
#include "sim/log.hpp"

namespace ibwan::net {

void Longbow::forward(Packet&& p, Link* out) {
  if (out == nullptr) {
    ++drops_no_port_;
    obs_drops_no_port_->add();
    sim_.recorder().record(sim_.now(), sim::TraceKind::kPktDrop,
                           name_.c_str(), p.id, p.wire_size, /*c=*/5);
    IBWAN_WARN(sim_.now(), name_.c_str(), "port not connected, dropping");
    return;
  }
  obs_forwarded_->add();
  auto shared = std::make_shared<Packet>(std::move(p));
  sim_.schedule(latency_, [out, shared] { out->send(std::move(*shared)); });
}

LongbowPair::LongbowPair(sim::Simulator& sim_a, sim::Simulator& sim_b,
                         const Config& config)
    : LongbowPair(sim_a, sim_b, config, Names{}) {}

LongbowPair::LongbowPair(sim::Simulator& sim_a, sim::Simulator& sim_b,
                         const Config& config, const Names& names)
    : sim_(sim_a), sim_b_(sim_b) {
  // Each side — router and outbound long-haul link — lives on its own
  // site's simulator, so serialization, loss draws, and flap events for
  // a direction all run on the sending site (sequential mode passes the
  // same simulator twice and nothing changes).
  a_ = std::make_unique<Longbow>(sim_a, names.side_a, config.pipeline_latency);
  b_ = std::make_unique<Longbow>(sim_b, names.side_b, config.pipeline_latency);

  Link::Config wan{.bytes_per_ns = config.wan_rate,
                   .propagation = config.base_propagation,
                   .buffer_bytes = config.buffer_bytes,
                   .loss_rate = config.loss_rate};
  a_to_b_ = std::make_unique<Link>(sim_a, wan, names.wan_a2b);
  b_to_a_ = std::make_unique<Link>(sim_b, wan, names.wan_b2a);
  a_to_b_->set_sink([this](Packet&& p) { b_->receive_from_wan(std::move(p)); });
  b_to_a_->set_sink([this](Packet&& p) { a_->receive_from_wan(std::move(p)); });
  a_->set_wan_tx(a_to_b_.get());
  b_->set_wan_tx(b_to_a_.get());
}

LongbowPair::~LongbowPair() = default;

void LongbowPair::apply_faults(const FaultPlanConfig& cfg) {
  faults_a_to_b_ = std::make_unique<FaultPlan>(sim_, *a_to_b_, cfg);
  faults_b_to_a_ = std::make_unique<FaultPlan>(sim_b_, *b_to_a_, cfg);
}

}  // namespace ibwan::net
