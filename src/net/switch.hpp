// Cut-through crossbar switch with static destination routing.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

class Switch {
 public:
  Switch(sim::Simulator& sim, std::string name, sim::Duration hop_latency)
      : sim_(sim), name_(std::move(name)), hop_latency_(hop_latency) {
    auto& m = sim_.metrics();
    const std::string scope = name_ + "/net.switch";
    obs_forwarded_ =
        &m.counter(scope, "pkts_forwarded", sim::MetricUnit::kPackets);
    obs_drops_noroute_ =
        &m.counter(scope, "drops_no_route", sim::MetricUnit::kPackets);
  }

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Registers an egress link; returns the port index.
  int add_port(Link* tx) {
    ports_.push_back(tx);
    return static_cast<int>(ports_.size()) - 1;
  }

  /// Static route: packets for `dst` leave via `port`.
  void set_route(NodeId dst, int port) { routes_[dst] = port; }

  /// Fallback port for unknown destinations (the WAN uplink).
  void set_default_route(int port) { default_port_ = port; }

  /// Ingress from any attached link.
  void receive(Packet&& p);

  const std::string& name() const { return name_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  sim::Duration hop_latency_;
  std::vector<Link*> ports_;
  std::unordered_map<NodeId, int> routes_;
  int default_port_ = -1;
  std::uint64_t forwarded_ = 0;
  sim::Counter* obs_forwarded_ = nullptr;
  sim::Counter* obs_drops_noroute_ = nullptr;
};

}  // namespace ibwan::net
