// Cut-through crossbar switch with static destination routing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

class Switch {
 public:
  Switch(sim::Simulator& sim, std::string name, sim::Duration hop_latency)
      : sim_(sim), name_(std::move(name)), hop_latency_(hop_latency) {
    auto& m = sim_.metrics();
    const std::string scope = name_ + "/net.switch";
    obs_forwarded_ =
        &m.counter(scope, "pkts_forwarded", sim::MetricUnit::kPackets);
    obs_drops_noroute_ =
        &m.counter(scope, "drops_no_route", sim::MetricUnit::kPackets);
  }

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Registers an egress link; returns the port index.
  int add_port(Link* tx) {
    ports_.push_back(tx);
    return static_cast<int>(ports_.size()) - 1;
  }

  /// Static route: packets for `dst` leave via `port`.
  void set_route(NodeId dst, int port) { routes_[dst] = port; }

  /// Fallback port for unknown destinations (the WAN uplink of a site
  /// with a single WAN attachment, or a leaf's spine uplink).
  void set_default_route(int port) { default_port_ = port; }

  /// Ingress from any attached link.
  void receive(Packet&& p);

  /// Ingress from WAN edge attachment `edge`, used on switches with
  /// more than one WAN attachment. Same-instant arrivals from
  /// different edges are buffered and forwarded at the end of the
  /// instant in edge order: without the demux, cross-edge ties fire in
  /// engine-dependent schedule order (the sequential engine breaks
  /// them by global event sequence, which the site-parallel merge
  /// cannot reconstruct), and the first shared egress queue would
  /// serialize them differently. Forwarding still happens in the same
  /// nanosecond, so the demux shifts no timing — only the tie order
  /// (DESIGN.md §13).
  void receive_wan(int edge, Packet&& p);

  const std::string& name() const { return name_; }
  std::uint64_t forwarded() const { return forwarded_; }
  /// Packets dropped for lack of a usable route — exact, regardless of
  /// warning rate limiting.
  std::uint64_t drops_no_route() const { return drops_no_route_; }

 private:
  std::shared_ptr<Packet> alloc_packet(Packet&& p);
  void recycle_packet(const std::shared_ptr<Packet>& pkt);
  void flush_wan();

  sim::Simulator& sim_;
  std::string name_;
  sim::Duration hop_latency_;
  std::vector<Link*> ports_;
  std::unordered_map<NodeId, int> routes_;
  int default_port_ = -1;
  // Conservation: forwarded_ + drops_no_route_ == packets received
  // (receive + receive_wan); written only by switch.cpp (INV001).
  std::uint64_t forwarded_ = 0;       // lint:conserved
  std::uint64_t drops_no_route_ = 0;  // lint:conserved
  /// First kNoRouteWarnLimit no-route drops warn individually; after
  /// that only power-of-two drop counts emit a suppressed-count summary,
  /// so a misrouted incast logs O(log drops) lines instead of one per
  /// packet.
  static constexpr std::uint64_t kNoRouteWarnLimit = 8;
  /// Recycled forward allocations (switch hops are always site-local,
  /// so unlike Link there is no channel-mode exclusion). Bounded so a
  /// burst cannot pin memory forever.
  static constexpr std::size_t kPktPoolCap = 64;
  std::vector<std::shared_ptr<Packet>> pkt_pool_;
  /// Same-instant WAN ingress buffer (receive_wan): drained by a flush
  /// event scheduled at the arrival instant.
  std::vector<std::pair<int, Packet>> wan_buf_;
  bool wan_flush_pending_ = false;
  sim::Counter* obs_forwarded_ = nullptr;
  sim::Counter* obs_drops_noroute_ = nullptr;
};

}  // namespace ibwan::net
