#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::net {

using sim::MetricUnit;
using sim::TraceKind;

Link::Link(sim::Simulator& sim, Config config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  assert(config_.bytes_per_ns > 0.0);
  auto& m = sim_.metrics();
  const std::string scope = name_ + "/net.link";
  obs_.pkts_sent = &m.counter(scope, "pkts_sent", MetricUnit::kPackets);
  obs_.bytes_sent = &m.counter(scope, "bytes_sent", MetricUnit::kBytes);
  obs_.pkts_delivered =
      &m.counter(scope, "pkts_delivered", MetricUnit::kPackets);
  obs_.bytes_delivered =
      &m.counter(scope, "bytes_delivered", MetricUnit::kBytes);
  obs_.drops_buffer = &m.counter(scope, "drops_buffer", MetricUnit::kPackets);
  obs_.drops_loss = &m.counter(scope, "drops_loss", MetricUnit::kPackets);
  obs_.drops_fault = &m.counter(scope, "drops_fault", MetricUnit::kPackets);
  obs_.drops_link_down =
      &m.counter(scope, "drops_link_down", MetricUnit::kPackets);
  obs_.drops_brownout =
      &m.counter(scope, "drops_brownout", MetricUnit::kPackets);
  obs_.bytes_dropped = &m.counter(scope, "bytes_dropped", MetricUnit::kBytes);
  obs_.flaps = &m.counter(scope, "flaps", MetricUnit::kCount);
  obs_.down_ns = &m.counter(scope, "down_ns", MetricUnit::kNanoseconds);
  obs_.busy_ns = &m.counter(scope, "busy_ns", MetricUnit::kNanoseconds);
  obs_.queued_bytes = &m.gauge(scope, "queued_bytes", MetricUnit::kBytes);
  obs_.jitter_ns = &m.histogram(scope, "jitter_ns", MetricUnit::kNanoseconds);
}

bool Link::send(Packet&& p) {
  assert(sink_ && "link sink not connected");
  const std::uint64_t cap =
      buffer_override_active_ ? buffer_override_ : config_.buffer_bytes;
  if (cap != 0 && queued_bytes_ + p.wire_size > cap) {
    ++stats_.packets_dropped_buffer;
    obs_.drops_buffer->add();
    if (buffer_override_active_) {
      ++stats_.packets_dropped_brownout;
      obs_.drops_brownout->add();
    }
    sim_.recorder().record(sim_.now(), TraceKind::kPktDrop, name_.c_str(),
                           p.id, p.wire_size, /*c=*/1);
    IBWAN_WARN(sim_.now(), name_.c_str(), "buffer drop pkt=%llu size=%u",
               static_cast<unsigned long long>(p.id), p.wire_size);
    return false;
  }
  queued_bytes_ += p.wire_size;
  obs_.queued_bytes->set(static_cast<std::int64_t>(queued_bytes_));
  (p.control ? q_control_ : q_data_).push_back(std::move(p));
  if (!busy_) start_next();
  return true;
}

void Link::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  if (down) {
    ++down_epoch_;  // kills everything serializing or propagating
    ++stats_.flaps;
    obs_.flaps->add();
    down_since_ = sim_.now();
    sim_.recorder().record(sim_.now(), TraceKind::kLinkDown, name_.c_str(),
                           queued_bytes_);
    IBWAN_WARN(sim_.now(), name_.c_str(), "link down (%llu bytes queued)",
               static_cast<unsigned long long>(queued_bytes_));
  } else {
    const sim::Duration outage = sim_.now() - down_since_;
    stats_.down_ns += outage;
    obs_.down_ns->add(outage);
    sim_.recorder().record(sim_.now(), TraceKind::kLinkUp, name_.c_str(),
                           outage);
    IBWAN_WARN(sim_.now(), name_.c_str(), "link up after %llu ns",
               static_cast<unsigned long long>(outage));
    if (!busy_) start_next();
  }
}

void Link::set_buffer_override(std::uint64_t bytes) {
  buffer_override_active_ = true;
  buffer_override_ = bytes;
  sim_.recorder().record(sim_.now(), TraceKind::kBrownoutStart, name_.c_str(),
                         bytes, config_.buffer_bytes);
}

void Link::clear_buffer_override() {
  buffer_override_active_ = false;
  sim_.recorder().record(sim_.now(), TraceKind::kBrownoutEnd, name_.c_str(),
                         config_.buffer_bytes);
}

void Link::drop_down(const Packet& p) {
  ++stats_.packets_dropped_down;
  stats_.bytes_dropped += p.wire_size;
  obs_.drops_link_down->add();
  obs_.bytes_dropped->add(p.wire_size);
  sim_.recorder().record(sim_.now(), TraceKind::kPktDrop, name_.c_str(), p.id,
                         p.wire_size, /*c=*/4);
}

std::shared_ptr<Packet> Link::alloc_packet(Packet&& p) {
  // Site-local links churn through one shared_ptr<Packet> per packet on
  // the serialize->deliver hot path; recycling the control block
  // removes that allocation. Channel-mode (LP-boundary) packets are
  // excluded: the destination site drops its reference on another
  // thread, so handing the pointer back to this link's pool would race.
  // A pooled entry is reusable only once every lambda that captured it
  // has run (use_count back to 1).
  if (channel_ == nullptr && !pkt_pool_.empty() &&
      pkt_pool_.back().use_count() == 1) {
    std::shared_ptr<Packet> sp = std::move(pkt_pool_.back());
    pkt_pool_.pop_back();
    *sp = std::move(p);
    return sp;
  }
  return std::make_shared<Packet>(std::move(p));
}

void Link::recycle_packet(const std::shared_ptr<Packet>& pkt) {
  if (channel_ != nullptr || pkt_pool_.size() >= kPktPoolCap) return;
  // Drop payload/callback references now so pooling a packet never pins
  // application data beyond its delivery.
  pkt->payload.reset();
  pkt->on_serialized = nullptr;
  pkt_pool_.push_back(pkt);
}

void Link::deliver_via_channel(const std::shared_ptr<Packet>& pkt,
                               sim::Duration delay) {
  const sim::Time arrival = sim_.now() + delay;
  // Replicate the sequential in-flight epoch check from the static
  // fault schedule: a down transition strictly after serialization end
  // and no later than arrival kills the packet mid-flight. (Transitions
  // at or before serialization end were already caught by the sender's
  // down/epoch check above.)
  const auto flap =
      std::upper_bound(down_starts_.begin(), down_starts_.end(), sim_.now());
  if (flap != down_starts_.end() && *flap <= arrival) {
    drop_down(*pkt);
    return;
  }
  // Delivered-side accounting happens at push time on the sender's
  // site: the counters are run totals read after the drain, and the
  // trace row carries the arrival timestamp, so end states match the
  // sequential run exactly.
  if (sim_.recorder().armed())
    sim_.recorder().record(arrival, TraceKind::kPktDeliver, name_.c_str(),
                           pkt->id, pkt->wire_size);
  ++stats_.packets_delivered;
  stats_.bytes_delivered += pkt->wire_size;
  obs_.pkts_delivered->add();
  obs_.bytes_delivered->add(pkt->wire_size);
  // on_serialized already fired on this site; clear it here so the
  // destination's copy never touches sender-site captures.
  pkt->on_serialized = nullptr;
  channel_->push(arrival, [this, pkt] {
    // Runs on the destination site's worker at `arrival`; the sink and
    // the packet are immutable after the push.
    Packet delivered = *pkt;
    sink_(std::move(delivered));
  });
}

void Link::start_next() {
  if (down_) {  // serializer pauses; set_down(false) restarts it
    busy_ = false;
    return;
  }
  std::deque<Packet>* q =
      !q_control_.empty() ? &q_control_ : (!q_data_.empty() ? &q_data_ : nullptr);
  if (q == nullptr) {
    busy_ = false;
    return;
  }
  busy_ = true;
  auto pkt = alloc_packet(std::move(q->front()));
  q->pop_front();
  const sim::Duration ser = sim::duration_ceil(
      static_cast<double>(pkt->wire_size) / config_.bytes_per_ns);
  if (sim_.recorder().armed())
    sim_.recorder().record(sim_.now(), TraceKind::kPktSend, name_.c_str(),
                           pkt->id, pkt->wire_size);
  const std::uint64_t epoch = down_epoch_;
  sim_.schedule(ser, [this, pkt, ser, epoch] {
    queued_bytes_ -= pkt->wire_size;
    ++stats_.packets_sent;
    stats_.bytes_sent += pkt->wire_size;
    obs_.pkts_sent->add();
    obs_.bytes_sent->add(pkt->wire_size);
    obs_.busy_ns->add(ser);
    obs_.queued_bytes->set(static_cast<std::int64_t>(queued_bytes_));
    if (pkt->on_serialized) pkt->on_serialized();
    if (down_ || epoch != down_epoch_) {
      // The flap hit while this packet was on the wire.
      drop_down(*pkt);
      recycle_packet(pkt);
      start_next();
      return;
    }
    // Flat config loss draws first, and only when configured, so the main
    // RNG stream sees the exact same sequence whether or not a fault
    // model is installed.
    const bool lost =
        config_.loss_rate > 0.0 && sim_.rng().chance(config_.loss_rate);
    if (lost) {
      ++stats_.packets_dropped_loss;
      stats_.bytes_dropped += pkt->wire_size;
      obs_.drops_loss->add();
      obs_.bytes_dropped->add(pkt->wire_size);
      sim_.recorder().record(sim_.now(), TraceKind::kPktDrop, name_.c_str(),
                             pkt->id, pkt->wire_size, /*c=*/2);
      recycle_packet(pkt);
    } else if (loss_model_ && loss_model_(*pkt)) {
      ++stats_.packets_dropped_fault;
      stats_.bytes_dropped += pkt->wire_size;
      obs_.drops_fault->add();
      obs_.bytes_dropped->add(pkt->wire_size);
      sim_.recorder().record(sim_.now(), TraceKind::kPktDrop, name_.c_str(),
                             pkt->id, pkt->wire_size, /*c=*/3);
      recycle_packet(pkt);
    } else {
      sim::Duration delay = config_.propagation + extra_delay_;
      if (jitter_model_) {
        const sim::Duration jitter = jitter_model_();
        obs_.jitter_ns->observe(static_cast<std::uint64_t>(jitter));
        delay += jitter;
      }
      if (channel_ != nullptr) {
        deliver_via_channel(pkt, delay);
      } else {
        const std::uint64_t fly_epoch = down_epoch_;
        sim_.schedule(delay, [this, pkt, fly_epoch] {
          if (fly_epoch != down_epoch_) {
            // A flap killed the packet mid-flight, even if the link is
            // already back up by now.
            drop_down(*pkt);
            recycle_packet(pkt);
            return;
          }
          if (sim_.recorder().armed())
            sim_.recorder().record(sim_.now(), TraceKind::kPktDeliver,
                                   name_.c_str(), pkt->id, pkt->wire_size);
          ++stats_.packets_delivered;
          stats_.bytes_delivered += pkt->wire_size;
          obs_.pkts_delivered->add();
          obs_.bytes_delivered->add(pkt->wire_size);
          Packet delivered = *pkt;
          delivered.on_serialized = nullptr;
          recycle_packet(pkt);
          sink_(std::move(delivered));
        });
      }
    }
    start_next();
  });
}

}  // namespace ibwan::net
