#include "net/link.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::net {

Link::Link(sim::Simulator& sim, Config config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  assert(config_.bytes_per_ns > 0.0);
}

bool Link::send(Packet&& p) {
  assert(sink_ && "link sink not connected");
  if (config_.buffer_bytes != 0 &&
      queued_bytes_ + p.wire_size > config_.buffer_bytes) {
    ++stats_.packets_dropped_buffer;
    IBWAN_WARN(sim_.now(), name_.c_str(), "buffer drop pkt=%llu size=%u",
               static_cast<unsigned long long>(p.id), p.wire_size);
    return false;
  }
  queued_bytes_ += p.wire_size;
  (p.control ? q_control_ : q_data_).push_back(std::move(p));
  if (!busy_) start_next();
  return true;
}

void Link::start_next() {
  std::deque<Packet>* q =
      !q_control_.empty() ? &q_control_ : (!q_data_.empty() ? &q_data_ : nullptr);
  if (q == nullptr) {
    busy_ = false;
    return;
  }
  busy_ = true;
  auto pkt = std::make_shared<Packet>(std::move(q->front()));
  q->pop_front();
  const sim::Duration ser = sim::duration_ceil(
      static_cast<double>(pkt->wire_size) / config_.bytes_per_ns);
  sim_.schedule(ser, [this, pkt] {
    queued_bytes_ -= pkt->wire_size;
    ++stats_.packets_sent;
    stats_.bytes_sent += pkt->wire_size;
    if (pkt->on_serialized) pkt->on_serialized();
    const bool lost =
        config_.loss_rate > 0.0 && sim_.rng().chance(config_.loss_rate);
    if (lost) {
      ++stats_.packets_dropped_loss;
    } else {
      sim_.schedule(config_.propagation + extra_delay_, [this, pkt] {
        Packet delivered = *pkt;
        delivered.on_serialized = nullptr;
        sink_(std::move(delivered));
      });
    }
    start_next();
  });
}

}  // namespace ibwan::net
