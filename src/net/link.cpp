#include "net/link.hpp"

#include <cassert>
#include <memory>
#include <utility>

#include "sim/log.hpp"

namespace ibwan::net {

using sim::MetricUnit;
using sim::TraceKind;

Link::Link(sim::Simulator& sim, Config config, std::string name)
    : sim_(sim), config_(config), name_(std::move(name)) {
  assert(config_.bytes_per_ns > 0.0);
  auto& m = sim_.metrics();
  const std::string scope = name_ + "/net.link";
  obs_.pkts_sent = &m.counter(scope, "pkts_sent", MetricUnit::kPackets);
  obs_.bytes_sent = &m.counter(scope, "bytes_sent", MetricUnit::kBytes);
  obs_.drops_buffer = &m.counter(scope, "drops_buffer", MetricUnit::kPackets);
  obs_.drops_loss = &m.counter(scope, "drops_loss", MetricUnit::kPackets);
  obs_.busy_ns = &m.counter(scope, "busy_ns", MetricUnit::kNanoseconds);
  obs_.queued_bytes = &m.gauge(scope, "queued_bytes", MetricUnit::kBytes);
}

bool Link::send(Packet&& p) {
  assert(sink_ && "link sink not connected");
  if (config_.buffer_bytes != 0 &&
      queued_bytes_ + p.wire_size > config_.buffer_bytes) {
    ++stats_.packets_dropped_buffer;
    obs_.drops_buffer->add();
    sim_.recorder().record(sim_.now(), TraceKind::kPktDrop, name_.c_str(),
                           p.id, p.wire_size, /*c=*/1);
    IBWAN_WARN(sim_.now(), name_.c_str(), "buffer drop pkt=%llu size=%u",
               static_cast<unsigned long long>(p.id), p.wire_size);
    return false;
  }
  queued_bytes_ += p.wire_size;
  obs_.queued_bytes->set(static_cast<std::int64_t>(queued_bytes_));
  (p.control ? q_control_ : q_data_).push_back(std::move(p));
  if (!busy_) start_next();
  return true;
}

void Link::start_next() {
  std::deque<Packet>* q =
      !q_control_.empty() ? &q_control_ : (!q_data_.empty() ? &q_data_ : nullptr);
  if (q == nullptr) {
    busy_ = false;
    return;
  }
  busy_ = true;
  auto pkt = std::make_shared<Packet>(std::move(q->front()));
  q->pop_front();
  const sim::Duration ser = sim::duration_ceil(
      static_cast<double>(pkt->wire_size) / config_.bytes_per_ns);
  if (sim_.recorder().armed())
    sim_.recorder().record(sim_.now(), TraceKind::kPktSend, name_.c_str(),
                           pkt->id, pkt->wire_size);
  sim_.schedule(ser, [this, pkt, ser] {
    queued_bytes_ -= pkt->wire_size;
    ++stats_.packets_sent;
    stats_.bytes_sent += pkt->wire_size;
    obs_.pkts_sent->add();
    obs_.bytes_sent->add(pkt->wire_size);
    obs_.busy_ns->add(ser);
    obs_.queued_bytes->set(static_cast<std::int64_t>(queued_bytes_));
    if (pkt->on_serialized) pkt->on_serialized();
    const bool lost =
        config_.loss_rate > 0.0 && sim_.rng().chance(config_.loss_rate);
    if (lost) {
      ++stats_.packets_dropped_loss;
      obs_.drops_loss->add();
      sim_.recorder().record(sim_.now(), TraceKind::kPktDrop, name_.c_str(),
                             pkt->id, pkt->wire_size, /*c=*/2);
    } else {
      sim_.schedule(config_.propagation + extra_delay_, [this, pkt] {
        if (sim_.recorder().armed())
          sim_.recorder().record(sim_.now(), TraceKind::kPktDeliver,
                                 name_.c_str(), pkt->id, pkt->wire_size);
        Packet delivered = *pkt;
        delivered.on_serialized = nullptr;
        sink_(std::move(delivered));
      });
    }
    start_next();
  });
}

}  // namespace ibwan::net
