// End host attachment point.
//
// A Node owns nothing about protocols: it forwards outbound packets onto
// its fabric uplink and hands inbound packets to whatever registered as
// the receiver (the HCA, in this library).
#pragma once

#include <cassert>
#include <functional>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

class Node {
 public:
  Node(sim::Simulator& sim, NodeId id) : sim_(sim), id_(id) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  sim::Simulator& sim() { return sim_; }

  /// Wires this node's transmit side to a fabric link (set by the Fabric).
  void attach_uplink(Link* tx) { uplink_ = tx; }
  Link* uplink() { return uplink_; }

  /// Registers the packet consumer (one per node; the HCA).
  void set_receiver(std::function<void(Packet&&)> rx) {
    receiver_ = std::move(rx);
  }

  bool send(Packet&& p) {
    assert(uplink_ && "node not attached to fabric");
    p.src = id_;
    return uplink_->send(std::move(p));
  }

  void deliver(Packet&& p) {
    if (receiver_) receiver_(std::move(p));
  }

 private:
  sim::Simulator& sim_;
  NodeId id_;
  Link* uplink_ = nullptr;
  std::function<void(Packet&&)> receiver_;
};

}  // namespace ibwan::net
