// N-site topology graphs (DESIGN.md §15).
//
// A TopologyConfig describes the whole fabric as a graph: N sites (each
// a DDR star — or a small two-level fat-tree — around its switches) and
// a WAN graph of Longbow-pair edges between sites. Point-to-point,
// hub/spoke, and full-mesh shapes are all expressible; the paper's
// two-cluster testbed (Figure 2) is the special case of two sites and
// one edge, and FabricConfig remains a thin wrapper for it.
//
// Routing is static and computed at build time: a deterministic
// shortest-path pass over the WAN graph (edge weight = the minimum
// one-way latency the edge can impose, ties broken by hop count then
// edge index) yields, for every (site, destination-site) pair, the WAN
// edge a packet takes next. The fabric turns that table into explicit
// per-destination switch routes, so no switch relies on a default-route
// escape hatch to reach a remote host.
#pragma once

#include <string>
#include <vector>

#include "net/wan.hpp"
#include "sim/time.hpp"

namespace ibwan::net {

/// One site: `nodes` hosts in a star around a single switch, or — with
/// `leaf_switches` > 1 — a two-level fat-tree where hosts round-robin
/// across the leaves and every leaf uplinks to one spine. The spine (or
/// the single star switch) owns the site's WAN attachments.
struct SiteConfig {
  int nodes = 1;
  int leaf_switches = 1;
};

/// One WAN edge: a Longbow pair joining two sites' WAN-facing switches
/// over a long-haul fiber, with the usual per-pair knobs.
struct WanEdgeConfig {
  int site_a = 0;
  int site_b = 1;
  LongbowPair::Config longbow{};
};

struct TopologyConfig {
  std::vector<SiteConfig> sites;
  std::vector<WanEdgeConfig> wan;
  /// Host and switch link data rate, bytes/ns (IB DDR payload = 2.0).
  double lan_rate = 2.0;
  /// Host-to-switch (and switch-to-Longbow) cable propagation.
  sim::Duration host_link_prop = 100;
  /// Switch cut-through latency per hop.
  sim::Duration switch_latency = 200;
  /// Back-to-back mode: exactly two one-node sites, one cable, no
  /// switches or Longbows (the Figure 3 latency baseline).
  bool back_to_back = false;

  int total_nodes() const {
    int n = 0;
    for (const SiteConfig& s : sites) n += s.nodes;
    return n;
  }

  /// Site 0 is the hub; sites 1..spokes each connect to it by one edge.
  static TopologyConfig hub_spoke(int spokes, int nodes_per_site,
                                  const LongbowPair::Config& longbow = {});
  /// Every site pair gets a direct edge (edges ordered lexicographically).
  static TopologyConfig full_mesh(int n_sites, int nodes_per_site,
                                  const LongbowPair::Config& longbow = {});
};

/// Non-empty human-readable reason when the topology is malformed
/// (no sites, nonpositive node counts, dangling/self-loop/duplicate WAN
/// edges, back-to-back shape violations); empty string when valid.
std::string validate_topology(const TopologyConfig& topo);

/// Build-time static routes over the WAN graph.
struct WanRoutes {
  /// next_edge[src][dst]: index into TopologyConfig::wan of the edge a
  /// packet at site src takes toward site dst; -1 when src == dst or
  /// dst is unreachable.
  std::vector<std::vector<int>> next_edge;
  /// WAN edges crossed on the routed src→dst path; -1 when unreachable.
  std::vector<std::vector<int>> hops;
};

WanRoutes compute_wan_routes(const TopologyConfig& topo);

/// One-way zero-load latency floor (ns) from a host in `src_site` to a
/// host in `dst_site` along the routed path: every LAN cable hop, switch
/// hop, Longbow pipeline, WAN propagation, and `wan_delay` of emulated
/// distance per WAN edge crossed. Intra-site floors account for the
/// fat-tree (host→leaf→spine→leaf→host) when a site has multiple leaf
/// switches; cross-leaf is assumed for multi-leaf endpoints (the floor
/// of the worst intra-site pair). Returns -1 when dst is unreachable.
sim::Duration path_floor_ns(const TopologyConfig& topo,
                            const WanRoutes& routes, int src_site,
                            int dst_site, sim::Duration wan_delay);

}  // namespace ibwan::net
