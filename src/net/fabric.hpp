// Cluster-of-clusters fabric builder.
//
// Reproduces the paper's testbed (Figure 2): two clusters, each a DDR
// star around one switch, joined by an Obsidian Longbow pair over a WAN
// link. A back-to-back mode (two hosts, one cable) provides the Figure 3
// baseline.
//
// Node ids: cluster A gets 0..nodes_a-1, cluster B gets
// nodes_a..nodes_a+nodes_b-1. Ids double as IB LIDs.
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/wan.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

enum class Cluster { kA, kB };

struct FabricConfig {
  int nodes_a = 2;
  int nodes_b = 2;
  /// Host and switch link data rate, bytes/ns (IB DDR payload = 2.0).
  double lan_rate = 2.0;
  /// Host-to-switch cable propagation.
  sim::Duration host_link_prop = 100;
  /// Switch cut-through latency per hop.
  sim::Duration switch_latency = 200;
  /// Back-to-back mode: exactly two nodes and one cable, no switches or
  /// Longbows (latency baseline).
  bool back_to_back = false;
  LongbowPair::Config longbow{};
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, const FabricConfig& config);

  /// Site-partitioned construction (DESIGN.md §13): cluster A (nodes,
  /// switch, Longbow side A, outbound WAN link) is built on engine site
  /// 0, cluster B on site 1, and the WAN links become LP boundaries via
  /// engine channels. Requires a 2-site partitionable topology: with a
  /// 1-site engine, a back-to-back config, or flat WAN loss (which
  /// draws from the main RNG at serialization time and therefore needs
  /// one global stream), everything lands on site 0 and run_all()
  /// degenerates to the sequential path.
  Fabric(sim::SiteEngine& engine, const FabricConfig& config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_.at(id); }

  /// Node id for the i-th host of a cluster.
  NodeId node_id(Cluster c, int index) const;
  Cluster cluster_of(NodeId id) const {
    return id < static_cast<NodeId>(config_.nodes_a) ? Cluster::kA
                                                     : Cluster::kB;
  }

  /// True when src→dst traffic crosses the WAN link.
  bool crosses_wan(NodeId src, NodeId dst) const {
    return !config_.back_to_back && cluster_of(src) != cluster_of(dst);
  }

  /// Distance-emulation knob (no-op in back-to-back mode).
  void set_wan_delay(sim::Duration oneway);
  sim::Duration wan_delay() const;

  LongbowPair* longbows() { return longbows_.get(); }
  const FabricConfig& config() const { return config_; }
  /// Site A's simulator (the only one in sequential mode). Prefer
  /// sim_of()/node().sim() in code that must be partition-correct.
  sim::Simulator& sim() { return sim_; }

  /// The simulator a cluster's components live on. Same object for
  /// both clusters unless the fabric was built partitioned.
  sim::Simulator& sim_of(Cluster c) {
    return c == Cluster::kA ? sim_ : sim_b_;
  }
  sim::Simulator& sim_of_node(NodeId id) { return sim_of(cluster_of(id)); }

  /// True when the two clusters run as separate logical processes.
  bool partitioned() const { return &sim_ != &sim_b_; }
  sim::SiteEngine* engine() { return engine_; }

  /// Drives the whole simulation to drain: the engine's windowed loop
  /// when partitioned, plain Simulator::run() otherwise.
  void run_all();

  /// Max over site clocks — equals sim().now() in sequential mode and
  /// the sequential run's final clock in partitioned mode.
  sim::Time max_now() const;

 private:
  void build_back_to_back();
  void build_cluster_of_clusters();
  Link* make_link(sim::Simulator& sim, const Link::Config& cfg,
                  std::string name);

  sim::SiteEngine* engine_ = nullptr;
  sim::Simulator& sim_;    // site A
  sim::Simulator& sim_b_;  // site B (== sim_ when not partitioned)
  FabricConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::unique_ptr<LongbowPair> longbows_;
};

}  // namespace ibwan::net
