// Cluster-of-clusters fabric builder.
//
// Reproduces the paper's testbed (Figure 2): two clusters, each a DDR
// star around one switch, joined by an Obsidian Longbow pair over a WAN
// link. A back-to-back mode (two hosts, one cable) provides the Figure 3
// baseline.
//
// Node ids: cluster A gets 0..nodes_a-1, cluster B gets
// nodes_a..nodes_a+nodes_b-1. Ids double as IB LIDs.
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/wan.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

enum class Cluster { kA, kB };

struct FabricConfig {
  int nodes_a = 2;
  int nodes_b = 2;
  /// Host and switch link data rate, bytes/ns (IB DDR payload = 2.0).
  double lan_rate = 2.0;
  /// Host-to-switch cable propagation.
  sim::Duration host_link_prop = 100;
  /// Switch cut-through latency per hop.
  sim::Duration switch_latency = 200;
  /// Back-to-back mode: exactly two nodes and one cable, no switches or
  /// Longbows (latency baseline).
  bool back_to_back = false;
  LongbowPair::Config longbow{};
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, const FabricConfig& config);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_.at(id); }

  /// Node id for the i-th host of a cluster.
  NodeId node_id(Cluster c, int index) const;
  Cluster cluster_of(NodeId id) const {
    return id < static_cast<NodeId>(config_.nodes_a) ? Cluster::kA
                                                     : Cluster::kB;
  }

  /// True when src→dst traffic crosses the WAN link.
  bool crosses_wan(NodeId src, NodeId dst) const {
    return !config_.back_to_back && cluster_of(src) != cluster_of(dst);
  }

  /// Distance-emulation knob (no-op in back-to-back mode).
  void set_wan_delay(sim::Duration oneway);
  sim::Duration wan_delay() const;

  LongbowPair* longbows() { return longbows_.get(); }
  const FabricConfig& config() const { return config_; }
  sim::Simulator& sim() { return sim_; }

 private:
  void build_back_to_back();
  void build_cluster_of_clusters();
  Link* make_link(const Link::Config& cfg, std::string name);

  sim::Simulator& sim_;
  FabricConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::unique_ptr<LongbowPair> longbows_;
};

}  // namespace ibwan::net
