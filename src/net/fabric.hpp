// Topology-graph fabric builder (DESIGN.md §15).
//
// A Fabric realizes a TopologyConfig: N sites (DDR stars or small
// fat-trees around their switches) joined by a WAN graph of Obsidian
// Longbow pairs, with per-destination static routes computed at build
// time by a shortest-path pass over the WAN graph. The paper's testbed
// (Figure 2) — two clusters and one Longbow pair — is the two-site
// special case, kept available through the FabricConfig wrapper below;
// a back-to-back mode (two hosts, one cable) provides the Figure 3
// baseline.
//
// Node ids are assigned site-major: site 0 gets 0..n0-1, site 1 the
// next n1 ids, and so on. Ids double as IB LIDs.
#pragma once

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "net/topology.hpp"
#include "net/wan.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace ibwan::net {

/// Two-site compatibility view: site 0 is cluster A, every other site
/// is cluster B. The MPI layer and the original benches address the
/// paper's testbed through this enum.
enum class Cluster { kA, kB };

/// The classic two-cluster description (Figure 2), now a thin wrapper:
/// the fabric converts it to a two-site TopologyConfig and builds
/// through the same graph path, producing byte-identical wiring,
/// instrument names, and event order.
struct FabricConfig {
  int nodes_a = 2;
  int nodes_b = 2;
  /// Host and switch link data rate, bytes/ns (IB DDR payload = 2.0).
  double lan_rate = 2.0;
  /// Host-to-switch cable propagation.
  sim::Duration host_link_prop = 100;
  /// Switch cut-through latency per hop.
  sim::Duration switch_latency = 200;
  /// Back-to-back mode: exactly two nodes and one cable, no switches or
  /// Longbows (latency baseline).
  bool back_to_back = false;
  LongbowPair::Config longbow{};
};

/// The two-site TopologyConfig a FabricConfig denotes.
TopologyConfig to_topology(const FabricConfig& config);

class Fabric {
 public:
  Fabric(sim::Simulator& sim, const FabricConfig& config);
  Fabric(sim::Simulator& sim, const TopologyConfig& topo);

  /// Site-partitioned construction (DESIGN.md §13): each topology site
  /// becomes a logical process and every WAN edge gets a pair of
  /// channels (one per direction). The conservative lookahead is the
  /// minimum one-way latency any cross-LP WAN edge can impose. The
  /// partition must be exact — one engine site per topology site.
  /// Configs the partition cannot support — a mismatched engine size,
  /// back-to-back, or flat WAN loss (which draws from the main RNG at
  /// serialization time and therefore needs one global stream) — land
  /// entirely on engine site 0 and run_all() degenerates to the
  /// sequential path.
  Fabric(sim::SiteEngine& engine, const FabricConfig& config);
  Fabric(sim::SiteEngine& engine, const TopologyConfig& topo);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_.at(id); }

  // --- Topology-graph view ------------------------------------------

  const TopologyConfig& topology() const { return topo_; }
  int site_count() const { return static_cast<int>(topo_.sites.size()); }
  int site_of(NodeId id) const;
  /// Node id for the i-th host of a site.
  NodeId node_id(int site, int index) const;
  /// WAN edges crossed on the routed path between two sites; -1 when
  /// unreachable, 0 for the same site.
  int wan_hops(int site_a, int site_b) const;

  int wan_edge_count() const { return static_cast<int>(wan_pairs_.size()); }
  /// The Longbow pair realizing WAN edge e (TopologyConfig::wan order).
  LongbowPair& wan_pair(int e) { return *wan_pairs_.at(std::size_t(e)); }
  /// A site's WAN-facing switch (the spine in a fat-tree site).
  Switch& site_switch(int site) { return *wan_switch_.at(std::size_t(site)); }

  // --- Two-site compatibility view ----------------------------------

  /// Node id for the i-th host of a cluster.
  NodeId node_id(Cluster c, int index) const {
    return node_id(c == Cluster::kA ? 0 : 1, index);
  }
  Cluster cluster_of(NodeId id) const {
    return site_of(id) == 0 ? Cluster::kA : Cluster::kB;
  }

  /// True when src→dst traffic crosses any WAN link.
  bool crosses_wan(NodeId src, NodeId dst) const {
    return !topo_.back_to_back && site_of(src) != site_of(dst);
  }

  /// Distance-emulation knob: applies to every WAN edge (no-op in
  /// back-to-back mode). The per-edge overload emulates asymmetric
  /// distances.
  void set_wan_delay(sim::Duration oneway);
  void set_wan_delay(int edge, sim::Duration oneway);
  sim::Duration wan_delay() const;

  /// First WAN pair — the only one in two-site fabrics; nullptr in
  /// back-to-back mode. Multi-edge topologies use wan_pair(e).
  LongbowPair* longbows() {
    return wan_pairs_.empty() ? nullptr : wan_pairs_.front().get();
  }
  /// Site 0's simulator (the only one in sequential mode). Prefer
  /// sim_of_site()/node().sim() in code that must be partition-correct.
  sim::Simulator& sim() { return sim_; }

  /// The simulator a site's components live on. Same object for every
  /// site unless the fabric was built partitioned.
  sim::Simulator& sim_of_site(int site) {
    return *site_sims_.at(std::size_t(site));
  }
  sim::Simulator& sim_of(Cluster c) {
    return sim_of_site(c == Cluster::kA ? 0 : (site_count() > 1 ? 1 : 0));
  }
  sim::Simulator& sim_of_node(NodeId id) { return sim_of_site(site_of(id)); }

  /// True when at least two sites run as separate logical processes.
  bool partitioned() const;
  sim::SiteEngine* engine() { return engine_; }

  /// Drives the whole simulation to drain: the engine's windowed loop
  /// when partitioned, plain Simulator::run() otherwise.
  void run_all();

  /// Max over site clocks — equals sim().now() in sequential mode and
  /// the sequential run's final clock in partitioned mode.
  sim::Time max_now() const;

 private:
  void init_sites(bool partitionable_now);
  void build_back_to_back();
  void build_topology();
  void update_lookahead();
  Link* make_link(sim::Simulator& sim, const Link::Config& cfg,
                  std::string name);

  sim::SiteEngine* engine_ = nullptr;
  sim::Simulator& sim_;  // site 0
  TopologyConfig topo_;
  WanRoutes routes_;
  std::vector<int> site_base_;  // first node id per site, total appended
  std::vector<int> site_lp_;    // engine site per topology site
  std::vector<sim::Simulator*> site_sims_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<Switch*> wan_switch_;
  std::vector<std::unique_ptr<LongbowPair>> wan_pairs_;
  /// Egress port on site_switch(site) toward each incident WAN edge.
  std::vector<std::vector<std::pair<int, int>>> wan_ports_;  // (edge, port)
};

}  // namespace ibwan::net
