// NFS over RDMA and over IPoIB.
//
// Single-server / multiple-clients, ONC-RPC based, as in the paper's
// Section 2.3 and the NFS/RDMA design it measures (Noronha et al.,
// ICPP'07). The server is transport-agnostic: the same handler serves a
// TcpRpcServer (NFS over IPoIB) or an RdmaRpcServer (NFS/RDMA, where
// READ replies are placed by 4 KB RDMA writes).
//
// An IOzone-style multi-threaded sequential read/write driver reproduces
// the paper's Figure 13 workload (512 MB file, 256 KB records).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "rpc/rpc.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"

namespace ibwan::nfs {

using FileHandle = std::uint32_t;

enum class Proc : std::uint32_t {
  kGetattr = 1,
  kRead = 6,
  kWrite = 7,
};

struct ReadArgs {
  FileHandle fh = 0;
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
};

struct WriteArgs {
  FileHandle fh = 0;
  std::uint64_t offset = 0;
  std::uint64_t count = 0;
};

struct NfsConfig {
  /// Server CPU per RPC (request decode, export/cache lookup, encode).
  sim::Duration per_op_cpu = 25 * sim::kMicrosecond;
  /// Server CPU per bulk chunk (RDMA work-request posting and
  /// registration handling). Only charged when chunk_bytes > 0.
  sim::Duration per_chunk_cpu = 3 * sim::kMicrosecond;
  /// Chunk size the transport fragments bulk data into; 0 for inline
  /// (TCP) transports.
  std::uint32_t chunk_bytes = 0;
};

/// In-memory export: a set of files with sizes (the paper's working set
/// is server-cached; no disk model is needed to reproduce Figure 13).
class NfsServer {
 public:
  NfsServer(sim::Simulator& sim, NfsConfig config);

  void add_file(FileHandle fh, std::uint64_t size) { files_[fh] = size; }
  std::uint64_t file_size(FileHandle fh) const {
    auto it = files_.find(fh);
    return it == files_.end() ? 0 : it->second;
  }

  /// The RPC dispatch to install on a transport server.
  rpc::Handler handler();

  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t getattrs = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  sim::Coro<rpc::ReplyInfo> dispatch(const rpc::CallArgs& call);
  sim::Coro<rpc::ReplyInfo> dispatch_inner(const rpc::CallArgs& call);
  /// Serializes handler CPU on the (single) server, like knfsd threads
  /// contending for cores.
  sim::SleepAwaiter charge_cpu(sim::Duration d);

  sim::Simulator& sim_;
  NfsConfig config_;
  std::unordered_map<FileHandle, std::uint64_t> files_;
  sim::Time cpu_busy_ = 0;
  Stats stats_;

  // Registered metrics (docs/METRICS.md §nfs); scope "nfs-server/nfs".
  struct Obs {
    sim::Counter* reads;
    sim::Counter* writes;
    sim::Counter* getattrs;
    sim::Counter* bytes_read;
    sim::Counter* bytes_written;
    sim::Gauge* inflight_ops;
    sim::Histogram* op_ns;
  };
  Obs obs_;
  std::int64_t inflight_ = 0;
};

/// Client-side NFS operations over any RPC transport.
class NfsClient {
 public:
  explicit NfsClient(rpc::RpcClient& rpc) : rpc_(rpc) {}

  /// Returns bytes actually read (truncated at EOF).
  sim::Coro<std::uint64_t> read(FileHandle fh, std::uint64_t offset,
                                std::uint64_t count);
  sim::Coro<void> write(FileHandle fh, std::uint64_t offset,
                        std::uint64_t count);
  sim::Coro<std::uint64_t> getattr(FileHandle fh);

 private:
  rpc::RpcClient& rpc_;
};

/// IOzone-style sequential throughput driver.
struct IozoneConfig {
  FileHandle fh = 1;
  std::uint64_t file_bytes = 512ull << 20;
  std::uint64_t record_bytes = 256 << 10;
  int threads = 1;
  bool write = false;
};

struct IozoneResult {
  double mbytes_per_sec = 0;
  double seconds = 0;
  std::uint64_t bytes = 0;
};

/// Runs the workload to completion (drives the simulator) and reports
/// aggregate throughput. Threads divide the file into contiguous
/// regions and stream records concurrently over the shared mount.
/// `sim` is the client's own site; passing the owning SiteEngine drains
/// every site and reads the merged end time, which is required when the
/// testbed runs site-parallel (and equivalent when sequential).
IozoneResult run_iozone(sim::Simulator& sim, NfsClient& client,
                        const IozoneConfig& cfg,
                        sim::SiteEngine* engine = nullptr);

}  // namespace ibwan::nfs
