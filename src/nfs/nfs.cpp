#include "nfs/nfs.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <string>

namespace ibwan::nfs {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

NfsServer::NfsServer(sim::Simulator& sim, NfsConfig config)
    : sim_(sim), config_(config) {
  auto& m = sim_.metrics();
  const std::string scope = "nfs-server/nfs";
  using sim::MetricUnit;
  obs_.reads = &m.counter(scope, "reads", MetricUnit::kCount);
  obs_.writes = &m.counter(scope, "writes", MetricUnit::kCount);
  obs_.getattrs = &m.counter(scope, "getattrs", MetricUnit::kCount);
  obs_.bytes_read = &m.counter(scope, "bytes_read", MetricUnit::kBytes);
  obs_.bytes_written =
      &m.counter(scope, "bytes_written", MetricUnit::kBytes);
  obs_.inflight_ops = &m.gauge(scope, "inflight_ops", MetricUnit::kCount);
  obs_.op_ns = &m.histogram(scope, "op_ns", MetricUnit::kNanoseconds);
}

rpc::Handler NfsServer::handler() {
  return [this](const rpc::CallArgs& call) { return dispatch(call); };
}

sim::SleepAwaiter NfsServer::charge_cpu(sim::Duration d) {
  cpu_busy_ = std::max(sim_.now(), cpu_busy_) + d;
  return sim::SleepAwaiter(sim_, cpu_busy_ - sim_.now());
}

sim::Coro<rpc::ReplyInfo> NfsServer::dispatch(const rpc::CallArgs& call) {
  const sim::Time t0 = sim_.now();
  obs_.inflight_ops->set(++inflight_);
  rpc::ReplyInfo reply = co_await dispatch_inner(call);
  obs_.inflight_ops->set(--inflight_);
  obs_.op_ns->observe(sim_.now() - t0);
  co_return reply;
}

sim::Coro<rpc::ReplyInfo> NfsServer::dispatch_inner(
    const rpc::CallArgs& call) {
  switch (static_cast<Proc>(call.proc)) {
    case Proc::kGetattr: {
      ++stats_.getattrs;
      obs_.getattrs->add();
      co_await charge_cpu(config_.per_op_cpu);
      co_return rpc::ReplyInfo{.reply_bytes = 96};
    }
    case Proc::kRead: {
      const auto& args = call.args_as<ReadArgs>();
      ++stats_.reads;
      obs_.reads->add();
      const std::uint64_t size = file_size(args.fh);
      const std::uint64_t n =
          args.offset >= size
              ? 0
              : std::min<std::uint64_t>(args.count, size - args.offset);
      sim::Duration cpu = config_.per_op_cpu;
      if (config_.chunk_bytes > 0 && n > 0) {
        const std::uint64_t chunks =
            (n + config_.chunk_bytes - 1) / config_.chunk_bytes;
        cpu += chunks * config_.per_chunk_cpu;
      }
      co_await charge_cpu(cpu);
      stats_.bytes_read += n;
      obs_.bytes_read->add(n);
      co_return rpc::ReplyInfo{.reply_bytes = 120, .data_to_client = n};
    }
    case Proc::kWrite: {
      const auto& args = call.args_as<WriteArgs>();
      ++stats_.writes;
      obs_.writes->add();
      sim::Duration cpu = config_.per_op_cpu;
      if (config_.chunk_bytes > 0 && args.count > 0) {
        const std::uint64_t chunks =
            (args.count + config_.chunk_bytes - 1) / config_.chunk_bytes;
        cpu += chunks * config_.per_chunk_cpu;
      }
      co_await charge_cpu(cpu);
      auto& size = files_[args.fh];
      size = std::max(size, args.offset + args.count);
      stats_.bytes_written += args.count;
      obs_.bytes_written->add(args.count);
      co_return rpc::ReplyInfo{.reply_bytes = 120};
    }
  }
  assert(false && "unknown NFS procedure");
  co_return rpc::ReplyInfo{};
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

sim::Coro<std::uint64_t> NfsClient::read(FileHandle fh, std::uint64_t offset,
                                         std::uint64_t count) {
  auto args = std::make_shared<ReadArgs>();
  args->fh = fh;
  args->offset = offset;
  args->count = count;
  // Named locals rather than temporaries inside the co_await expression:
  // GCC 12 double-destroys aggregate temporaries passed by value into an
  // awaited coroutine.
  rpc::CallArgs call{.proc = std::uint32_t(Proc::kRead),
                     .arg_bytes = 48,
                     .body = std::move(args)};
  rpc::ReplyInfo reply = co_await rpc_.call(std::move(call));
  co_return reply.data_to_client;
}

sim::Coro<void> NfsClient::write(FileHandle fh, std::uint64_t offset,
                                 std::uint64_t count) {
  auto args = std::make_shared<WriteArgs>();
  args->fh = fh;
  args->offset = offset;
  args->count = count;
  rpc::CallArgs call{.proc = std::uint32_t(Proc::kWrite),
                     .arg_bytes = 48,
                     .data_to_server = count,
                     .body = std::move(args)};
  co_await rpc_.call(std::move(call));
}

sim::Coro<std::uint64_t> NfsClient::getattr(FileHandle fh) {
  auto args = std::make_shared<ReadArgs>();
  args->fh = fh;
  rpc::CallArgs call{.proc = std::uint32_t(Proc::kGetattr),
                     .arg_bytes = 32,
                     .body = std::move(args)};
  rpc::ReplyInfo reply = co_await rpc_.call(std::move(call));
  co_return reply.reply_bytes;
}

// ---------------------------------------------------------------------------
// IOzone-style driver
// ---------------------------------------------------------------------------

namespace {
sim::Task iozone_thread(NfsClient& client, const IozoneConfig& cfg,
                        std::uint64_t begin, std::uint64_t end,
                        std::uint64_t* moved, sim::WaitGroup* wg) {
  for (std::uint64_t off = begin; off < end; off += cfg.record_bytes) {
    const std::uint64_t n =
        std::min<std::uint64_t>(cfg.record_bytes, end - off);
    if (cfg.write) {
      co_await client.write(cfg.fh, off, n);
      *moved += n;
    } else {
      *moved += co_await client.read(cfg.fh, off, n);
    }
  }
  wg->done();
}
}  // namespace

IozoneResult run_iozone(sim::Simulator& sim, NfsClient& client,
                        const IozoneConfig& cfg, sim::SiteEngine* engine) {
  assert(cfg.threads >= 1);
  sim::WaitGroup wg(sim);
  wg.add(cfg.threads);
  std::uint64_t moved = 0;
  const std::uint64_t region =
      (cfg.file_bytes + cfg.threads - 1) / cfg.threads;
  const sim::Time t0 = sim.now();
  for (int t = 0; t < cfg.threads; ++t) {
    const std::uint64_t begin = static_cast<std::uint64_t>(t) * region;
    const std::uint64_t end =
        std::min<std::uint64_t>(cfg.file_bytes, begin + region);
    if (begin >= end) {
      wg.done();
      continue;
    }
    iozone_thread(client, cfg, begin, end, &moved, &wg);
  }
  bool finished = false;
  [](sim::WaitGroup& w, bool* flag) -> sim::Task {
    co_await w.wait();
    *flag = true;
  }(wg, &finished);
  if (engine != nullptr) {
    engine->run();
  } else {
    sim.run();
  }
  assert(finished && "IOzone workload deadlocked");
  IozoneResult r;
  r.bytes = moved;
  // The merged end time (max over site clocks) equals the sequential
  // run's final now(), so both modes report identical seconds.
  const sim::Time t_end = engine != nullptr ? engine->now() : sim.now();
  r.seconds = sim::to_seconds(t_end - t0);
  r.mbytes_per_sec =
      r.seconds > 0 ? static_cast<double>(moved) / r.seconds / 1e6 : 0;
  return r;
}

}  // namespace ibwan::nfs
