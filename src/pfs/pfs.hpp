// Parallel-filesystem striping — the "parallel file-systems" context the
// paper's conclusions name for future IB-WAN work (and the Lustre-over-
// UltraScienceNet comparison in its related work [6]).
//
// A StripedFile spreads a logical file round-robin across several
// object servers (each an independent NFS mount) and issues the
// per-stripe sub-I/Os concurrently. Striping is the file-system
// incarnation of the paper's parallel-streams optimization: each server
// connection contributes its own in-flight window, so aggregate WAN
// throughput scales with stripe count until the link saturates.
#pragma once

#include <cstdint>
#include <vector>

#include "nfs/nfs.hpp"
#include "sim/coro.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"

namespace ibwan::pfs {

struct StripeConfig {
  /// Bytes per stripe unit before moving to the next object server.
  std::uint64_t stripe_bytes = 1 << 20;
};

class StripedFile {
 public:
  /// `targets` are the object servers' client mounts; all hold the
  /// same file handle (each stores its own stripes).
  StripedFile(sim::Simulator& sim, std::vector<nfs::NfsClient*> targets,
              nfs::FileHandle fh, StripeConfig config = {});

  /// Reads [offset, offset+count); sub-reads run concurrently across
  /// the object servers. Returns bytes read.
  sim::Coro<std::uint64_t> read(std::uint64_t offset, std::uint64_t count);
  /// Writes [offset, offset+count) across the stripes.
  sim::Coro<void> write(std::uint64_t offset, std::uint64_t count);

  int stripe_count() const { return static_cast<int>(targets_.size()); }
  const StripeConfig& config() const { return config_; }

 private:
  struct SubIo {
    int target = 0;
    std::uint64_t offset = 0;  // offset within the object
    std::uint64_t count = 0;
  };
  std::vector<SubIo> plan(std::uint64_t offset, std::uint64_t count) const;

  sim::Simulator& sim_;
  std::vector<nfs::NfsClient*> targets_;
  nfs::FileHandle fh_;
  StripeConfig config_;
};

/// Sequential read-throughput driver over a striped file (the IOzone
/// analogue for the PFS extension bench).
struct PfsWorkloadResult {
  double mbytes_per_sec = 0;
  std::uint64_t bytes = 0;
};

/// `sim` is the clients' own site; passing the owning SiteEngine drains
/// every site and reads the merged end time, which is required when the
/// testbed runs site-parallel (and equivalent when sequential).
PfsWorkloadResult run_striped_read(sim::Simulator& sim, StripedFile& file,
                                   std::uint64_t file_bytes,
                                   std::uint64_t record_bytes, int threads,
                                   sim::SiteEngine* engine = nullptr);

}  // namespace ibwan::pfs
