#include "pfs/pfs.hpp"

#include <algorithm>
#include <cassert>

#include "sim/task.hpp"

namespace ibwan::pfs {

StripedFile::StripedFile(sim::Simulator& sim,
                         std::vector<nfs::NfsClient*> targets,
                         nfs::FileHandle fh, StripeConfig config)
    : sim_(sim), targets_(std::move(targets)), fh_(fh), config_(config) {
  assert(!targets_.empty());
  assert(config_.stripe_bytes > 0);
}

std::vector<StripedFile::SubIo> StripedFile::plan(std::uint64_t offset,
                                                  std::uint64_t count) const {
  // Coalesce consecutive stripe units per target into one sub-I/O each
  // (offset within the object file = unit index on that target).
  const int k = stripe_count();
  std::vector<SubIo> ios;
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + count;
  while (pos < end) {
    const std::uint64_t unit = pos / config_.stripe_bytes;
    const int target = static_cast<int>(unit % k);
    const std::uint64_t unit_off = pos % config_.stripe_bytes;
    const std::uint64_t n =
        std::min(end - pos, config_.stripe_bytes - unit_off);
    const std::uint64_t obj_off =
        (unit / k) * config_.stripe_bytes + unit_off;
    // Merge with the previous sub-I/O to this target when contiguous.
    if (!ios.empty() && ios.back().target == target &&
        ios.back().offset + ios.back().count == obj_off) {
      ios.back().count += n;
    } else {
      ios.push_back(SubIo{target, obj_off, n});
    }
    pos += n;
  }
  return ios;
}

namespace {
sim::Task sub_read(nfs::NfsClient* client, nfs::FileHandle fh,
                   std::uint64_t offset, std::uint64_t count,
                   std::uint64_t* got, sim::WaitGroup* wg) {
  *got += co_await client->read(fh, offset, count);
  wg->done();
}

sim::Task sub_write(nfs::NfsClient* client, nfs::FileHandle fh,
                    std::uint64_t offset, std::uint64_t count,
                    sim::WaitGroup* wg) {
  co_await client->write(fh, offset, count);
  wg->done();
}
}  // namespace

sim::Coro<std::uint64_t> StripedFile::read(std::uint64_t offset,
                                           std::uint64_t count) {
  const auto ios = plan(offset, count);
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(ios.size()));
  std::uint64_t got = 0;
  for (const SubIo& io : ios) {
    sub_read(targets_[io.target], fh_, io.offset, io.count, &got, &wg);
  }
  co_await wg.wait();
  co_return got;
}

sim::Coro<void> StripedFile::write(std::uint64_t offset,
                                   std::uint64_t count) {
  const auto ios = plan(offset, count);
  sim::WaitGroup wg(sim_);
  wg.add(static_cast<int>(ios.size()));
  for (const SubIo& io : ios) {
    sub_write(targets_[io.target], fh_, io.offset, io.count, &wg);
  }
  co_await wg.wait();
}

namespace {
sim::Task pfs_reader(StripedFile& file, std::uint64_t begin,
                     std::uint64_t end, std::uint64_t record_bytes,
                     std::uint64_t* moved, sim::WaitGroup* wg) {
  for (std::uint64_t off = begin; off < end; off += record_bytes) {
    const std::uint64_t n = std::min(record_bytes, end - off);
    *moved += co_await file.read(off, n);
  }
  wg->done();
}
}  // namespace

PfsWorkloadResult run_striped_read(sim::Simulator& sim, StripedFile& file,
                                   std::uint64_t file_bytes,
                                   std::uint64_t record_bytes, int threads,
                                   sim::SiteEngine* engine) {
  sim::WaitGroup wg(sim);
  wg.add(threads);
  std::uint64_t moved = 0;
  const std::uint64_t region = (file_bytes + threads - 1) / threads;
  const sim::Time t0 = sim.now();
  for (int t = 0; t < threads; ++t) {
    const std::uint64_t begin = static_cast<std::uint64_t>(t) * region;
    const std::uint64_t end = std::min(file_bytes, begin + region);
    if (begin >= end) {
      wg.done();
      continue;
    }
    pfs_reader(file, begin, end, record_bytes, &moved, &wg);
  }
  if (engine != nullptr) {
    engine->run();
  } else {
    sim.run();
  }
  PfsWorkloadResult r;
  r.bytes = moved;
  // Merged end time (max over site clocks) == the sequential final now.
  const sim::Time t_end = engine != nullptr ? engine->now() : sim.now();
  const double secs = sim::to_seconds(t_end - t0);
  r.mbytes_per_sec = secs > 0 ? static_cast<double>(moved) / secs / 1e6 : 0;
  return r;
}

}  // namespace ibwan::pfs
