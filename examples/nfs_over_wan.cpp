// Scenario: a site exports scratch space to a sister cluster over IB
// WAN and wants to know which NFS transport to deploy at its distance.
// Runs the IOzone workload over NFS/RDMA, NFS/IPoIB-RC and
// NFS/IPoIB-UD and prints the recommendation (the Figure 13 decision).
//
//   $ ./nfs_over_wan [distance_km] [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/nfs_bench.hpp"
#include "core/testbed.hpp"

using namespace ibwan;
using core::nfsbench::NfsBenchConfig;
using core::nfsbench::Transport;

int main(int argc, char** argv) {
  const double km = argc > 1 ? std::atof(argv[1]) : 20.0;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 4;
  const sim::Duration delay = core::delay_for_km(km);

  std::printf(
      "NFS read throughput across %.0f km, %d IOzone threads, "
      "64 MB file, 256 KB records\n\n",
      km, threads);

  double best = 0;
  std::string best_name;
  const std::pair<const char*, Transport> transports[] = {
      {"NFS/RDMA    ", Transport::kRdma},
      {"NFS/IPoIB-RC", Transport::kIpoibRc},
      {"NFS/IPoIB-UD", Transport::kIpoibUd},
  };
  for (const auto& [name, t] : transports) {
    const auto r = core::nfsbench::run(NfsBenchConfig{
        .transport = t,
        .wan_delay = delay,
        .threads = threads,
        .file_bytes = 64ull << 20,
    });
    std::printf("  %s  %8.1f MB/s\n", name, r.mbytes_per_sec);
    if (r.mbytes_per_sec > best) {
      best = r.mbytes_per_sec;
      best_name = name;
    }
  }
  std::printf("\nRecommended transport at %.0f km: %s\n", km,
              best_name.c_str());
  std::printf(
      "(The paper's finding: RDMA wins near the machine room; past "
      "~100 km the 4 KB RDMA chunking is latency-bound and IPoIB "
      "connected mode takes over.)\n");
  return 0;
}
