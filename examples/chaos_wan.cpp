// Runs one TCP bulk transfer across the Longbow WAN with the full
// chaos plan attached — Gilbert–Elliott bursty loss, a mid-transfer
// link flap, bounded jitter, and a WAN-buffer brownout — and prints
// the drop accounting the fault subsystem keeps. Two things to notice:
//
//   * conservation: every byte the WAN accepted is either delivered or
//     attributed to a named drop bucket (no silent loss);
//   * determinism: the same seed reproduces the same faulted run
//     byte-for-byte, because each fault generator draws from its own
//     named RNG stream (`Simulator::rng_stream`).
//
// The same plan is available to every bench as a JSON file:
//   build/bench/fig5_rc_bandwidth --faults examples/chaos_plan.json
// Format documented in EXPERIMENTS.md ("Fault plans").
#include <cstdint>
#include <cstdio>

#include "core/report.hpp"
#include "ib/hca.hpp"
#include "ipoib/ipoib.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "net/wan.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp.hpp"

using namespace ibwan;

namespace {

struct Outcome {
  double seconds = 0;
  net::Link::Stats wan;
};

Outcome run_once(std::uint64_t seed) {
  sim::Simulator sim;
  sim.seed(seed);
  net::Fabric fabric(sim, {.nodes_a = 1, .nodes_b = 1});
  ib::Hca hca_a(fabric.node(0), {});
  ib::Hca hca_b(fabric.node(1), {});
  ipoib::IpoibDevice dev_a(hca_a, {}), dev_b(hca_b, {});
  tcp::TcpStack stack_a(dev_a, {}), stack_b(dev_b, {});
  fabric.set_wan_delay(100'000);  // 100 us, a ~20 km Longbow hop
  ipoib::IpoibDevice::link(dev_a, dev_b);

  net::FaultPlanConfig plan;
  plan.ge = {.p_good_to_bad = 0.002,
             .p_bad_to_good = 0.1,
             .loss_good = 0.0001,
             .loss_bad = 0.2};
  plan.jitter_max = 5'000;  // up to 5 us extra per packet
  plan.flaps.push_back({.down_at = 20'000'000, .down_for = 5'000'000});
  plan.brownouts.push_back(
      {.at = 50'000'000, .duration = 20'000'000, .buffer_bytes = 64 << 10});
  fabric.longbows()->apply_faults(plan);

  const std::uint64_t bytes = 16ull << 20;
  stack_b.listen(7, [](tcp::TcpConnection&) {});
  tcp::TcpConnection& c = stack_a.connect(1, 7);
  c.send(bytes);
  sim.run();

  Outcome out;
  out.seconds = sim::to_seconds(sim.now());
  out.wan = fabric.longbows()->wan_link_a_to_b().stats();
  return out;
}

}  // namespace

int main() {
  core::banner(
      "Chaos on the WAN: a 16 MB TCP transfer through bursty loss,\n"
      "a 5 ms link flap, 5 us jitter and a 20 ms buffer brownout");

  const Outcome a = run_once(7);
  const net::Link::Stats& s = a.wan;

  std::printf("  transfer completed in %.3f s (clean WAN: ~0.017 s)\n\n",
              a.seconds);
  std::printf("  WAN a->b accounting (packets):\n");
  std::printf("    %-28s %8llu\n", "sent",
              static_cast<unsigned long long>(s.packets_sent));
  std::printf("    %-28s %8llu\n", "delivered",
              static_cast<unsigned long long>(s.packets_delivered));
  std::printf("    %-28s %8llu\n", "dropped: bursty loss (GE)",
              static_cast<unsigned long long>(s.packets_dropped_fault));
  std::printf("    %-28s %8llu\n", "dropped: link down",
              static_cast<unsigned long long>(s.packets_dropped_down));
  std::printf("    %-28s %8llu\n", "dropped: brownout buffer",
              static_cast<unsigned long long>(s.packets_dropped_brownout));
  std::printf("    %-28s %8llu  (%llu ns down across %llu flap)\n",
              "link flaps", static_cast<unsigned long long>(s.flaps),
              static_cast<unsigned long long>(s.down_ns),
              static_cast<unsigned long long>(s.flaps));

  const std::uint64_t in_flight_drops = s.packets_dropped_loss +
                                        s.packets_dropped_fault +
                                        s.packets_dropped_down;
  std::printf(
      "\n  conservation: sent %llu == delivered %llu + in-flight drops "
      "%llu  %s\n",
      static_cast<unsigned long long>(s.packets_sent),
      static_cast<unsigned long long>(s.packets_delivered),
      static_cast<unsigned long long>(in_flight_drops),
      s.packets_sent == s.packets_delivered + in_flight_drops ? "OK"
                                                              : "VIOLATED");

  const Outcome b = run_once(7);
  std::printf(
      "  determinism: rerun with the same seed -> %.9f s vs %.9f s  %s\n",
      a.seconds, b.seconds,
      a.seconds == b.seconds && b.wan.packets_dropped_fault ==
                                    s.packets_dropped_fault
          ? "identical"
          : "DIVERGED");
  return 0;
}
