// Scenario: you are planning a cluster-of-clusters deployment and need
// the full configuration sheet for a given separation: what the wire
// costs, how to set the MPI protocol threshold, how many TCP streams to
// provision, which NFS transport to mount, and whether your codes will
// tolerate the split. Pulls every policy in the library together.
//
//   $ ./wan_planner [distance_km]
#include <cstdio>
#include <cstdlib>

#include "core/mpi_bench.hpp"
#include "core/nfs_bench.hpp"
#include "core/testbed.hpp"
#include "core/wan_opt.hpp"
#include "ib/perftest.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  const double km = argc > 1 ? std::atof(argv[1]) : 100.0;
  const sim::Duration delay = core::delay_for_km(km);

  std::printf("=== IB WAN deployment plan: %.0f km separation ===\n\n", km);

  // 1. Wire characteristics.
  core::Testbed probe(1, delay);
  const auto lat = ib::perftest::run_latency(
      probe.fabric(), probe.node_a(), probe.node_b(),
      ib::perftest::Transport::kRc, ib::perftest::Op::kSendRecv,
      {.msg_size = 8, .iterations = 50});
  const sim::Duration rtt =
      static_cast<sim::Duration>(lat.avg_us * 2 * 1000);
  std::printf("verbs one-way latency: %.1f us (RTT %.2f ms)\n", lat.avg_us,
              lat.avg_us * 2 / 1000.0);

  core::Testbed bw_tb(1, delay);
  const auto bw = ib::perftest::run_bandwidth(
      bw_tb.fabric(), bw_tb.node_a(), bw_tb.node_b(),
      ib::perftest::Transport::kRc,
      {.msg_size = 1 << 20,
       .iterations = ib::perftest::iters_for_bytes(32 << 20, 1 << 20)});
  std::printf("verbs 1 MB bandwidth:  %.0f MB/s\n\n", bw.mbytes_per_sec);

  // 2. MPI tuning.
  const core::AdaptiveRendezvousThreshold mpi_policy;
  std::printf("MPI rendezvous threshold: set to %llu KB (default 8 KB)\n",
              static_cast<unsigned long long>(
                  mpi_policy.threshold_for_rtt(rtt) >> 10));
  std::printf("MPI collectives: use hierarchical (cluster-comm) variants\n");
  if (delay >= 100'000) {
    std::printf(
        "MPI small messages: enable eager coalescing "
        "(MpiConfig::coalescing)\n");
  }

  // 3. TCP/IPoIB provisioning.
  const core::ParallelStreamPolicy stream_policy;
  for (std::uint32_t window : {256u << 10, 1u << 20}) {
    std::printf(
        "TCP with %4u KB sockets: provision %d parallel stream(s)\n",
        window >> 10, stream_policy.streams_for(rtt, window));
  }

  // 4. NFS transport choice (measured, 4 threads, 32 MB probe file).
  std::printf("\nNFS probe (4 threads):\n");
  double best = 0;
  const char* best_name = "";
  const std::pair<const char*, core::nfsbench::Transport> transports[] = {
      {"NFS/RDMA", core::nfsbench::Transport::kRdma},
      {"NFS/IPoIB-RC", core::nfsbench::Transport::kIpoibRc},
  };
  for (const auto& [name, t] : transports) {
    const auto r = core::nfsbench::run({.transport = t,
                                        .wan_delay = delay,
                                        .threads = 4,
                                        .file_bytes = 32 << 20});
    std::printf("  %-14s %8.1f MB/s\n", name, r.mbytes_per_sec);
    if (r.mbytes_per_sec > best) {
      best = r.mbytes_per_sec;
      best_name = name;
    }
  }
  std::printf("mount recommendation: %s\n", best_name);

  // 5. Application guidance from the Figure 12 result.
  std::printf(
      "\nApplication guidance:\n"
      "  bulk-synchronous, large-message codes (IS/FT-like): %s\n"
      "  latency-bound codes (CG/LU-like): %s\n",
      delay <= 1'000'000 ? "OK to split across sites"
                         : "expect noticeable slowdown",
      delay <= 10'000 ? "OK to split across sites"
                      : "keep within one site");
  return 0;
}
