// Scenario: a lab with two 16-node clusters wants to know which of its
// production codes can run split across buildings or campuses. Runs the
// NAS kernels at several separations and reports the slowdown each one
// tolerates (the Figure 12 question, asked as a deployment decision).
//
//   $ ./nas_campaign
#include <cstdio>

#include "apps/nas.hpp"
#include "core/testbed.hpp"
#include "mpi/mpi.hpp"

using namespace ibwan;

int main() {
  const int per_cluster = 16;
  const double distances_km[] = {0, 2, 20, 200};
  apps::NasConfig cfg{.cls = apps::NasClass::kA, .iterations = 3};
  const apps::NasBenchmark benches[] = {
      apps::make_is(cfg), apps::make_ft(cfg), apps::make_cg(cfg),
      apps::make_ep(cfg)};

  std::printf(
      "NAS class A on 2 x %d processes: slowdown vs same-room placement\n\n",
      per_cluster);
  std::printf("%-6s", "code");
  for (double km : distances_km) std::printf(" %9.0fkm", km);
  std::printf("\n");

  for (const auto& bench : benches) {
    std::printf("%-6s", bench.name.c_str());
    double base = 0;
    for (double km : distances_km) {
      core::Testbed tb(per_cluster, core::delay_for_km(km));
      mpi::Job job(tb.fabric(),
                   mpi::Job::split_placement(tb.fabric(), per_cluster));
      const double secs = apps::run_nas(job, bench);
      if (km == 0) base = secs;
      std::printf(" %10.2fx", base > 0 ? secs / base : 1.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: values near 1.0x mean the code tolerates that "
      "separation (large-message codes like IS/FT do; latency-bound CG "
      "does not).\n");
  return 0;
}
