// Quickstart: build a cluster-of-clusters testbed, dial in a WAN
// distance, and measure verbs-level latency and bandwidth — the
// 60-second tour of the library.
//
//   $ ./quickstart [distance_km]
#include <cstdio>
#include <cstdlib>

#include "core/testbed.hpp"
#include "ib/perftest.hpp"

using namespace ibwan;

int main(int argc, char** argv) {
  const double km = argc > 1 ? std::atof(argv[1]) : 200.0;

  std::printf("Two IB clusters joined by an Obsidian Longbow pair,\n");
  std::printf("emulated separation: %.0f km (%.0f us one-way delay)\n\n",
              km, static_cast<double>(core::delay_for_km(km)) / 1000.0);

  // A Testbed owns a simulator and the fabric of Figure 2: DDR hosts
  // around a switch per cluster, SDR WAN link between the Longbows.
  core::Testbed tb(/*nodes_per_cluster=*/1, core::delay_for_km(km));

  // Verbs-level ping-pong latency between the clusters.
  const auto lat = ib::perftest::run_latency(
      tb.fabric(), tb.node_a(), tb.node_b(), ib::perftest::Transport::kRc,
      ib::perftest::Op::kSendRecv, {.msg_size = 8, .iterations = 100});
  std::printf("RC send/recv latency (8 B):    %10.2f us one-way\n",
              lat.avg_us);

  // Streaming bandwidth: medium vs large messages show the WAN window
  // effect the paper analyzes.
  for (std::uint32_t size : {16u << 10, 1u << 20}) {
    core::Testbed fresh(1, core::delay_for_km(km));
    const auto bw = ib::perftest::run_bandwidth(
        fresh.fabric(), fresh.node_a(), fresh.node_b(),
        ib::perftest::Transport::kRc,
        {.msg_size = size,
         .iterations = ib::perftest::iters_for_bytes(32 << 20, size)});
    std::printf("RC bandwidth, %4u KB messages: %10.2f MB/s\n", size >> 10,
                bw.mbytes_per_sec);
  }

  std::printf(
      "\nTry: ./quickstart 2  (machine-room scale)\n"
      "     ./quickstart 2000 (transcontinental)\n");
  return 0;
}
