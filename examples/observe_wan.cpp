// Walks the Figure 5 RC-bandwidth knee with the observability subsystem
// switched on, printing the per-layer story behind the curve: as the
// emulated WAN delay grows, the verbs-level throughput of a mid-size
// message collapses — and the metrics show why. The RC transport's
// bounded in-flight window (fence-to-16-messages) spends more and more
// of the run stalled waiting for acknowledgements that are a WAN
// round-trip away, while the WAN link itself sits nearly idle.
//
// This is the programmatic face of `--metrics`: enable a testbed's
// registry directly, run a workload, and query the snapshot. The last
// (10 ms) run also arms the packet flight recorder and dumps its tail,
// showing the window-stall / ack-arrival cadence event by event.
//
// See docs/METRICS.md for the full metric inventory.
#include <cstdio>
#include <string>

#include "core/report.hpp"
#include "core/testbed.hpp"
#include "ib/perftest.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"

using namespace ibwan;

namespace {

std::uint64_t counter_value(const sim::MetricsSnapshot& snap,
                            const std::string& path) {
  for (const auto& row : snap.counters) {
    if (row.path == path) return row.value;
  }
  return 0;
}

}  // namespace

int main() {
  core::banner(
      "Cross-layer observability: why the Figure 5 RC knee happens\n"
      "(256 KB messages over RC; metrics registry + flight recorder)");

  const std::uint32_t msg_size = 256u << 10;
  const int iterations = 256;
  const std::vector<sim::Duration> delays = {0, 10'000, 100'000,
                                             1'000'000, 10'000'000};

  std::printf(
      "  %10s %10s %14s %12s %12s %10s\n", "delay", "MB/s",
      "window_stalls", "stalled_ms", "retransmits", "wan_busy%");

  for (std::size_t i = 0; i < delays.size(); ++i) {
    const sim::Duration delay = delays[i];
    core::Testbed tb(1, delay);
    tb.sim().metrics().set_enabled(true);

    // On the deepest-delay run, also capture the event-level tail.
    sim::FlightRecorder& fr = tb.sim().recorder();
    const bool last = i + 1 == delays.size();
    if (last) {
      fr.set_capacity(12);  // keep only the final dozen events
      fr.arm();
    }

    const auto bw = ib::perftest::run_bandwidth(
        tb.fabric(), tb.node_a(), tb.node_b(),
        ib::perftest::Transport::kRc,
        {.msg_size = msg_size, .iterations = iterations});

    const sim::MetricsSnapshot snap = tb.sim().metrics().snapshot();
    const std::string rc = "node" + std::to_string(tb.node_a()) + "/ib.rc/";
    const std::uint64_t stalls = counter_value(snap, rc + "window_stalls");
    const std::uint64_t stall_ns =
        counter_value(snap, rc + "window_stall_ns");
    const std::uint64_t retx =
        counter_value(snap, rc + "pkts_retransmitted");
    const std::uint64_t wan_busy_ns =
        counter_value(snap, "wan-a2b/net.link/busy_ns");
    const double run_ns = bw.seconds * 1e9;
    const double wan_busy_pct =
        run_ns > 0 ? 100.0 * static_cast<double>(wan_busy_ns) / run_ns : 0;

    std::printf("  %8ldus %10.1f %14llu %12.2f %12llu %9.1f%%\n",
                static_cast<long>(delay / 1000), bw.mbytes_per_sec,
                static_cast<unsigned long long>(stalls),
                static_cast<double>(stall_ns) / 1e6,
                static_cast<unsigned long long>(retx), wan_busy_pct);

    if (last) {
      fr.disarm();
      std::printf(
          "\n  Event tail of the 10 ms run — each ack burst releases the\n"
          "  window for one more batch, then the sender stalls again:\n\n");
      fr.dump(stdout);
    }
  }

  std::printf(
      "\n  Reading: the stall count barely moves, but the *time* spent\n"
      "  stalled scales with the WAN round-trip — the 16-message RC\n"
      "  window cannot cover the bandwidth-delay product, so throughput\n"
      "  is window-limited, not wire-limited (the WAN link idles).\n");
  return 0;
}
